//! # LongSight
//!
//! A comprehensive Rust reproduction of *LongSight: Compute-Enabled Memory to
//! Accelerate Large-Context LLMs via Sparse Attention* (MICRO 2025).
//!
//! This umbrella crate re-exports the workspace members; see the individual
//! crates for details:
//!
//! * [`exec`] — deterministic parallel maps (bit-identical at any thread
//!   count; `LONGSIGHT_THREADS` / `--threads`),
//! * [`tensor`] — numeric kernels (packed sign bits, top-k, small linalg),
//! * [`obs`] — sim-time span tracing and metrics (Chrome-trace export),
//! * [`model`] — transformer substrate, synthetic corpora, perplexity,
//! * [`core`] — the paper's algorithm: SCF, ITQ, hybrid attention, tuning,
//! * [`dram`] — LPDDR5X bank/channel timing simulator,
//! * [`cxl`] — CXL.mem link model,
//! * [`faults`] — deterministic fault injection (seeded CXL/NMA/PFU fault
//!   schedules, retry policy, typed fault errors),
//! * [`drex`] — the DReX device: PFUs, NMAs, DCC, data layout, power,
//! * [`gpu`] — analytical H100 roofline model,
//! * [`sched`] — SLO-aware continuous-batching scheduler with a paged
//!   HBM/DReX KV-cache memory manager,
//! * [`system`] — end-to-end serving simulation and baselines.
//!
//! # Quickstart
//!
//! See `examples/quickstart.rs`, which mirrors the paper artifact's
//! `example.py`: it compares dense and LongSight hybrid attention on a
//! long-range corpus and prints perplexities and the KV-cache filter ratio.

#![forbid(unsafe_code)]

pub use longsight_core as core;
pub use longsight_cxl as cxl;
pub use longsight_dram as dram;
pub use longsight_drex as drex;
pub use longsight_exec as exec;
pub use longsight_faults as faults;
pub use longsight_gpu as gpu;
pub use longsight_model as model;
pub use longsight_obs as obs;
pub use longsight_sched as sched;
pub use longsight_system as system;
pub use longsight_tensor as tensor;
