#!/usr/bin/env bash
# Offline CI gate for the LongSight reproduction.
#
# The workspace has zero external dependencies, so every step below runs
# without network access (--offline). Steps:
#   1. formatting check
#   2. lint gate (clippy, warnings are errors)
#   3. no-unwrap gate for the fault-hardened crates
#   4. release build (all crates, all bench targets compile)
#   5. full test suite (unit + property + integration + doc tests)
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== cargo fmt --check =="
cargo fmt --all --check

echo "== cargo clippy -D warnings =="
cargo clippy --workspace --all-targets --offline -- -D warnings

# The error-model refactor removed panicking paths from the CXL link, the
# DReX offload hot path, and the serving stack; keep them out. Test modules
# (everything at and below the first `#[cfg(test)]` in a file) may unwrap.
echo "== no-unwrap gate (cxl, drex offload, system) =="
unwrap_hits=$(
    find crates/cxl/src crates/system/src -name '*.rs' -print0 |
        xargs -0 -I{} sh -c 'awk "/#\\[cfg\\(test\\)\\]/ {exit} /\\.unwrap\\(\\)/ {print FILENAME \":\" FNR \": \" \$0}" {}'
    awk '/#\[cfg\(test\)\]/ {exit} /\.unwrap\(\)/ {print FILENAME ":" FNR ": " $0}' \
        crates/drex/src/offload.rs
)
if [ -n "$unwrap_hits" ]; then
    echo "error: .unwrap() outside tests in fault-hardened code:" >&2
    echo "$unwrap_hits" >&2
    exit 1
fi

echo "== cargo build --release --offline =="
cargo build --release --workspace --offline

echo "== cargo test -q --offline =="
cargo test --workspace --offline -q

echo "CI gate passed."
