#!/usr/bin/env bash
# Offline CI gate for the LongSight reproduction.
#
# The workspace has zero external dependencies, so every step below runs
# without network access (--offline). Steps:
#   1. formatting check
#   2. lint gate (clippy, warnings are errors)
#   3. no-unwrap gate for the fault-hardened crates
#   3b. packed-sign-store gate (no per-key SignBits in the hybrid scan)
#   4. sim-time-only gate (no wall-clock reads in the instrumented crates)
#   5. release build (all crates, all bench targets compile), then the
#      scf kernel smoke (packed scan bit-identical to and faster than the
#      per-key walk)
#   6. observability smoke: serve/profile with --trace-out, validate the
#      exported Chrome trace JSON round-trips through `trace-validate`
#   7. scheduler smoke: SLO-mixed loadtest under the slo-aware policy with
#      a traced run, validated the same way
#   8. fleet smokes: multi-replica routing, then the 2-replica crash run
#      with --timeseries-out validated by `perf-diff --self-check`
#   9. lookahead smoke: speculative loadtest with a traced run, validated
#      the same way
#  10. session smoke: 2-replica session workload under affinity routing
#      with a traced run, validated the same way
#  11. perf trajectory gate: `perf-diff --gate results/trajectory.tsv`
#      re-reads the checked-in goldens and fails on a >10% interactive-p99
#      regression against the pinned values
#  12. rustdoc gate (missing/broken docs are errors)
#  13. full test suite (unit + property + integration + doc tests)
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== cargo fmt --check =="
cargo fmt --all --check

echo "== cargo clippy -D warnings =="
cargo clippy --workspace --all-targets --offline -- -D warnings

# The error-model refactor removed panicking paths from the CXL link, the
# DReX offload hot path, the serving stack, and the scheduler/router; keep
# them out. Test modules (everything at and below the first `#[cfg(test)]`
# in a file) may unwrap.
echo "== no-unwrap gate (cxl, drex offload, system, sched) =="
unwrap_hits=$(
    find crates/cxl/src crates/system/src crates/sched/src -name '*.rs' -print0 |
        xargs -0 -I{} sh -c 'awk "/#\\[cfg\\(test\\)\\]/ {exit} /\\.unwrap\\(\\)/ {print FILENAME \":\" FNR \": \" \$0}" {}'
    awk '/#\[cfg\(test\)\]/ {exit} /\.unwrap\(\)/ {print FILENAME ":" FNR ": " $0}' \
        crates/drex/src/offload.rs
)
if [ -n "$unwrap_hits" ]; then
    echo "error: .unwrap() outside tests in fault-hardened code:" >&2
    echo "$unwrap_hits" >&2
    exit 1
fi

# The hybrid scan hot path must stream the packed SignArena, not rebuild
# per-key SignBits heap objects (the regression the bitplane kernel
# removed). Query-side sign packing is fine; per-key construction, a
# per-key vector, or the old HeadSignCache are not. Test modules may do
# whatever they like.
echo "== packed-sign-store gate (no per-key SignBits in the hybrid scan) =="
packed_hits=$(
    awk '/#\[cfg\(test\)\]/ {exit} /SignBits::from_slice|Vec<SignBits>|HeadSignCache/ {print FILENAME ":" FNR ": " $0}' \
        crates/core/src/hybrid.rs
)
if [ -n "$packed_hits" ]; then
    echo "error: per-key SignBits construction in the hybrid scan hot path:" >&2
    echo "$packed_hits" >&2
    exit 1
fi

# Traces and metrics must carry *simulated* time only: a wall-clock read
# anywhere in the instrumented crates would break byte-identical exports
# across thread counts and reruns.
echo "== sim-time gate (no std::time::Instant / SystemTime) =="
clock_hits=$(grep -rn 'std::time::Instant\|SystemTime' \
    crates/obs/src crates/system/src crates/drex/src \
    crates/dram/src crates/cxl/src crates/faults/src || true)
if [ -n "$clock_hits" ]; then
    echo "error: wall-clock reads in sim-time-instrumented crates:" >&2
    echo "$clock_hits" >&2
    exit 1
fi

# Every `#[ignore]` must carry a reason string (`#[ignore = "..."]`) so a
# skipped test is never silent about why. The four annotated manual
# harnesses — three in tests/itq_diagnostics.rs and one in
# tests/param_tuning.rs — pass this gate because they name their reason.
echo "== annotated-ignore gate (no bare #[ignore]) =="
ignore_hits=$(grep -rn '#\[ignore\]' tests crates || true)
if [ -n "$ignore_hits" ]; then
    echo "error: bare #[ignore] without a reason string:" >&2
    echo "$ignore_hits" >&2
    exit 1
fi

echo "== cargo build --release --offline =="
cargo build --release --workspace --offline

# The packed scan kernel must stay bit-identical to the per-key walk and
# faster than it (the bench target asserts both and exits non-zero
# otherwise); the packed row's absolute ns/key is additionally pinned in
# results/trajectory.tsv via the perf gate below.
echo "== scf kernel smoke (per-key vs bitplane-packed) =="
cargo bench -p longsight-bench --bench scf_kernel --offline

echo "== observability smoke (serve/profile --trace-out, trace-validate) =="
obs_tmp=$(mktemp -d)
trap 'rm -rf "$obs_tmp"' EXIT
target/release/longsight serve --model 8b --ctx 131072 --users 4 \
    --trace-out "$obs_tmp/serve_trace.json" --metrics-out "$obs_tmp/serve_metrics.json"
target/release/longsight profile --model 8b --duration 5 \
    --fault-profile mild --fault-seed 11 --host-kernels on \
    --trace-out "$obs_tmp/profile_trace.json" --metrics-out "$obs_tmp/profile_metrics.json"
target/release/longsight trace-validate --file "$obs_tmp/serve_trace.json"
target/release/longsight trace-validate --file "$obs_tmp/profile_trace.json"

echo "== scheduler smoke (SLO-mixed loadtest, trace-validate) =="
target/release/longsight loadtest --model 1b --rate 8 --duration 4 \
    --ctx-min 16384 --ctx-max 32768 --sched slo-aware --mix 0.5,0.3,0.2 \
    --prefill-chunk 128 --watermark 0.01 \
    --trace-out "$obs_tmp/sched_trace.json"
target/release/longsight trace-validate --file "$obs_tmp/sched_trace.json"

echo "== fleet smoke (2-replica loadtest, both routers) =="
target/release/longsight loadtest --model 1b --rate 12 --duration 4 \
    --ctx-min 16384 --ctx-max 32768 --replicas 2 --router jsq \
    --trace-out "$obs_tmp/fleet_trace.json"
target/release/longsight trace-validate --file "$obs_tmp/fleet_trace.json"
target/release/longsight loadtest --model 1b --rate 12 --duration 4 \
    --ctx-min 16384 --ctx-max 32768 --replicas 2 --router rr

echo "== fleet availability smoke (2-replica crash profile, trace + timeseries) =="
target/release/longsight loadtest --model 1b --rate 10 --duration 6 \
    --ctx-min 16384 --ctx-max 32768 --sched slo-aware --replicas 2 --router jsq \
    --crash-profile 0.1 --crash-seed 11 --breaker on \
    --trace-out "$obs_tmp/fleet_faults_trace.json" \
    --timeseries-out "$obs_tmp/fleet_ts.tsv"
target/release/longsight trace-validate --file "$obs_tmp/fleet_faults_trace.json"
target/release/longsight perf-diff --self-check "$obs_tmp/fleet_ts.tsv"

echo "== lookahead smoke (speculative loadtest, trace-validate) =="
target/release/longsight loadtest --model 8b --rate 2 --duration 4 \
    --ctx-min 131072 --ctx-max 131072 --lookahead on \
    --trace-out "$obs_tmp/lookahead_trace.json"
target/release/longsight trace-validate --file "$obs_tmp/lookahead_trace.json"

echo "== session smoke (2-replica affinity loadtest, trace-validate) =="
target/release/longsight loadtest --model 1b --duration 8 \
    --ctx-min 16384 --ctx-max 32768 --out-min 16 --out-max 64 \
    --replicas 2 --router affinity \
    --sessions 4 --turns 3 --think-time-ms 1500 --reuse 0.9 \
    --trace-out "$obs_tmp/session_trace.json"
target/release/longsight trace-validate --file "$obs_tmp/session_trace.json"

# Interactive tail-latency trajectory: the checked-in goldens must not
# regress the interactive p99 request latency more than 10% past the values
# pinned in results/trajectory.tsv. Regenerating a golden with a worse tail
# forces an explicit, same-commit update of the trajectory file. The key
# grammar and golden-table parsing live in `longsight perf-diff` (tested in
# crates/cli/src/perf.rs), not in ad-hoc awk here.
echo "== perf trajectory gate (interactive p99 vs results/trajectory.tsv) =="
target/release/longsight perf-diff --gate results/trajectory.tsv

echo "== cargo doc -D warnings =="
RUSTDOCFLAGS='-D warnings' cargo doc --workspace --no-deps --offline --quiet

echo "== cargo test -q --offline =="
cargo test --workspace --offline -q

echo "CI gate passed."
