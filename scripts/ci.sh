#!/usr/bin/env bash
# Offline CI gate for the LongSight reproduction.
#
# The workspace has zero external dependencies, so every step below runs
# without network access (--offline). Steps:
#   1. formatting check
#   2. release build (all crates, all bench targets compile)
#   3. full test suite (unit + property + integration + doc tests)
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== cargo fmt --check =="
cargo fmt --all --check

echo "== cargo build --release --offline =="
cargo build --release --workspace --offline

echo "== cargo test -q --offline =="
cargo test --workspace --offline -q

echo "CI gate passed."
