//! DReX device walkthrough: populate per-head vector databases over the CXL
//! load/store interface, submit a sparse-attention offload, and inspect the
//! top-k response and the device-side timing (paper §6–7).
//!
//! ```text
//! cargo run --release --example drex_offload
//! ```

use longsight::core::{RotationTable, ThresholdTable};
use longsight::cxl::CxlLink;
use longsight::dram::Geometry;
use longsight::drex::layout::{UserPartition, MAX_CONTEXT_SLICE_KEYS};
use longsight::drex::{DrexDevice, DrexParams, RequestDescriptor};
use longsight::tensor::SimRng;

fn main() {
    let layers = 2;
    let kv_heads = 4;
    let head_dim = 64;
    let mut dev = DrexDevice::new(
        DrexParams::paper(),
        CxlLink::pcie5_x16(),
        Geometry::drex(),
        ThresholdTable::uniform(layers, kv_heads, 34),
        RotationTable::identity(layers, kv_heads, head_dim),
        head_dim,
    );
    println!(
        "DReX: {} GB capacity, {} packages x {} channels x {} banks",
        dev.capacity() >> 30,
        Geometry::drex().packages,
        Geometry::drex().channels,
        Geometry::drex().banks,
    );

    // Data layout planning for a 1M-token Llama-3-8B user.
    let plan = UserPartition::plan(&Geometry::drex(), 8, 32, 128, 1 << 20, 0);
    println!(
        "layout: 1M-token Llama-3-8B user -> {} slices/head ({} keys max per slice), \
         {} packages touched, {:.1} GiB footprint",
        plan.slices[0].len(),
        MAX_CONTEXT_SLICE_KEYS,
        plan.packages_touched(),
        plan.footprint_bytes() as f64 / (1u64 << 30) as f64,
    );

    // Populate a user context: the GPU flushes staging-buffer blocks of 128.
    let mut rng = SimRng::seed_from(7);
    let user = dev.register_user();
    let context = 4096usize;
    for layer in 0..layers {
        for head in 0..kv_heads {
            for block in 0..context / 128 {
                let keys: Vec<Vec<f32>> = (0..128)
                    .map(|i| {
                        let mut k = rng.normal_vec(head_dim);
                        k[0] += (block * 128 + i) as f32 * 1e-4; // mild drift
                        k
                    })
                    .collect();
                let values: Vec<Vec<f32>> = (0..128).map(|_| rng.normal_vec(head_dim)).collect();
                dev.write_kv_block(user, layer, head, &keys, &values)
                    .expect("capacity is ample");
            }
        }
    }
    println!(
        "\npopulated user {user}: {} keys per head, {:.1} MiB used",
        dev.stored_keys(user, 0, 0),
        dev.bytes_used() as f64 / (1 << 20) as f64
    );

    // Offload one layer's sparse attention (4 query heads per KV head).
    let queries: Vec<Vec<Vec<f32>>> = (0..kv_heads)
        .map(|_| (0..2).map(|_| rng.normal_vec(head_dim)).collect())
        .collect();
    let req = RequestDescriptor {
        user,
        layer: 0,
        queries,
    };
    let out = dev.offload(&req, 64, 0.0).expect("user exists");

    println!("\noffload response (k = 64):");
    for (h, per_query) in out.response.hits.iter().enumerate() {
        let hits = &per_query[0];
        println!(
            "  kv head {h}: {} hits, best (idx {}, score {:.3}), worst score {:.3}",
            hits.len(),
            hits.first().map(|x| x.index).unwrap_or(0),
            hits.first().map(|x| x.score).unwrap_or(0.0),
            hits.last().map(|x| x.score).unwrap_or(0.0),
        );
    }
    let t = out.timing;
    println!("\ndevice timing:");
    println!("  descriptor submitted : {:>9.2} us", t.submitted_ns / 1e3);
    println!(
        "  device compute done  : {:>9.2} us",
        t.device_done_ns / 1e3
    );
    println!("  observed by GPU      : {:>9.2} us", t.observed_ns / 1e3);
    println!("  of which value/CXL   : {:>9.2} us", t.value_read_ns / 1e3);
    let c = t.critical_head;
    println!(
        "  critical head: filter {:.2} us, bitmap {:.2} us, addr {:.2} us, fetch+dot {:.2} us, topk {:.2} us",
        c.filter_ns / 1e3,
        c.bitmap_ns / 1e3,
        c.addr_gen_ns / 1e3,
        c.fetch_score_ns / 1e3,
        c.topk_ns / 1e3
    );
}
