//! Quickstart — the Rust analogue of the paper artifact's `src/example.py`:
//! "prints baseline perplexity, sparse perplexity, and filter ratio on an
//! example passage."
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use longsight::core::{training, ItqConfig};
use longsight::core::{HybridConfig, LongSightBackend, ThresholdTable};
use longsight::model::{
    corpus, perplexity, DenseBackend, InductionParams, Model, ModelConfig, ModelWeights,
};
use longsight::tensor::SimRng;

fn main() {
    // A tiny Llama-shaped model whose loss genuinely depends on long-range
    // retrieval (hand-constructed induction heads; see DESIGN.md).
    let cfg = ModelConfig::tiny();
    let mut rng = SimRng::seed_from(2025);
    let model = Model::new(ModelWeights::induction(
        &cfg,
        &InductionParams::default(),
        &mut rng,
    ));
    println!("model: {}", cfg);

    // An example passage with motif reuse at short and long range.
    let text = corpus::generate(&corpus::CorpusConfig::long_book(cfg.vocab), 1024, &mut rng);
    println!(
        "passage: {} tokens, {:.0}% predictable via long-range retrieval",
        text.tokens.len(),
        100.0 * text.predictable_fraction()
    );

    // Baseline: exact dense attention.
    let dense = perplexity::evaluate(&model, &text, &mut DenseBackend::new(), 64);
    println!("dense perplexity:     {:.2}", dense.perplexity);

    // LongSight hybrid attention: 256-token window, 16 sinks, top-128
    // retrieval, SCF threshold at just over half the dimensions, ITQ
    // rotations trained on a calibration prefix.
    let rotations = training::train_rotations(&model, &text.tokens[..512], &ItqConfig::default());
    let mut hybrid = LongSightBackend::new(
        HybridConfig {
            window: 256,
            sinks: 16,
            top_k: 128,
        },
        ThresholdTable::uniform(cfg.layers, cfg.kv_heads, cfg.head_dim as u32 / 2 + 5),
        rotations,
    );
    let sparse = perplexity::evaluate(&model, &text, &mut hybrid, 64);
    println!("LongSight perplexity: {:.2}", sparse.perplexity);
    println!(
        "perplexity increase:  {:+.2}%",
        100.0 * sparse.relative_increase_over(&dense)
    );

    let stats = hybrid.stats();
    println!(
        "KV cache filter ratio (non-window): {:.1}x",
        stats.filter_ratio_nonwindow()
    );
    println!(
        "sparsity (KV accesses avoided vs dense): {:.1}%",
        100.0 * stats.sparsity()
    );
}
