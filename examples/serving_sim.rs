//! Serving simulation — one H100 + one DReX serving long-context users,
//! compared against the dense 1-GPU baseline (the scenario of paper Fig 7).
//!
//! ```text
//! cargo run --release --example serving_sim -- [context_tokens] [users]
//! ```

use longsight::gpu::{DataParallelGpus, GpuSpec};
use longsight::model::ModelConfig;
use longsight::system::{GpuOnlySystem, LongSightConfig, LongSightSystem, ServingSystem};

fn main() {
    let mut args = std::env::args().skip(1);
    let context: usize = args.next().and_then(|s| s.parse().ok()).unwrap_or(262_144);
    let users: usize = args.next().and_then(|s| s.parse().ok()).unwrap_or(8);

    let model = ModelConfig::llama3_8b();
    println!("model: {model}, context {context} tokens, {users} users\n");

    let mut dense = GpuOnlySystem {
        gpus: DataParallelGpus::new(GpuSpec::h100_sxm(), 1),
        model: model.clone(),
    };
    match dense.evaluate(users, context) {
        Ok(r) => println!(
            "1-GPU dense:  {:>8.1} tok/s  ({:.2} ms/token)",
            r.throughput_tps,
            r.latency_ms()
        ),
        Err(e) => println!("1-GPU dense:  infeasible ({e})"),
    }

    let mut ls = LongSightSystem::new(LongSightConfig::paper_default(), model.clone());
    match ls.evaluate(users, context) {
        Ok(r) => {
            println!(
                "LongSight:    {:>8.1} tok/s  ({:.2} ms/token)",
                r.throughput_tps,
                r.latency_ms()
            );
            let b = r.breakdown;
            println!("\nper-token latency breakdown:");
            println!("  GPU weights/FFN : {:>10.1} us", b.gpu_weights_ns / 1e3);
            println!("  GPU window attn : {:>10.1} us", b.gpu_attention_ns / 1e3);
            println!("  GPU ITQ + merge : {:>10.1} us", b.gpu_merge_ns / 1e3);
            println!("  DReX offload    : {:>10.1} us", b.drex_offload_ns / 1e3);
            println!("  CXL transfers   : {:>10.1} us", b.cxl_ns / 1e3);
        }
        Err(e) => println!("LongSight:    infeasible ({e})"),
    }

    println!(
        "\ncapacity: 1-GPU max users at this context: {}, LongSight: {}",
        dense.max_users(context),
        ls.max_users(context)
    );
}
