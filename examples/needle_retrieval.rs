//! Needle retrieval during live generation: a "needle" motif is planted at
//! the start of a long context; after the filler, the model is prompted with
//! the needle's prefix and asked to continue it. Dense attention and
//! LongSight's hybrid attention retrieve the needle; a small sliding window
//! cannot — the motivating scenario of the paper in miniature.
//!
//! ```text
//! cargo run --release --example needle_retrieval -- [filler_tokens]
//! ```

use longsight::core::{HybridConfig, LongSightBackend, RotationTable, ThresholdTable};
use longsight::model::{
    DenseBackend, Generator, InductionParams, Model, ModelConfig, ModelWeights, Sampling,
    SlidingWindowBackend,
};
use longsight::tensor::SimRng;

fn main() {
    let filler_len: usize = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(1500);

    let cfg = ModelConfig::tiny();
    let mut rng = SimRng::seed_from(2025);
    let model = Model::new(ModelWeights::induction(
        &cfg,
        &InductionParams::default(),
        &mut rng,
    ));

    // The needle: a distinctive token string planted at the very start.
    // Filler tokens come from a disjoint range so that chance collisions
    // cannot create competing "what followed token X" evidence.
    let needle: Vec<u32> = vec![11, 22, 33, 44, 55, 66];
    let mut prompt = needle.clone();
    prompt.extend((0..filler_len).map(|_| (rng.below(cfg.vocab - 128) + 128) as u32));
    prompt.extend(&needle[..2]); // ask the model to continue "111 222 ..."
    let expected = &needle[2..];
    println!(
        "needle {:?} planted {} tokens back; prompting with its first 2 tokens\n",
        needle,
        filler_len + needle.len()
    );

    let window = 128;
    // Teacher-forced continuation: at each step feed the *true* needle token
    // and record the model's top-1 prediction — every step is then a clean,
    // independent retrieval probe.
    let run = |name: &str, backend: &mut dyn longsight::model::AttentionBackend| {
        let mut g = Generator::new(&model, backend);
        g.prefill(&prompt);
        let mut predictions = Vec::new();
        for &truth in expected {
            let logits = g.last_logits().expect("prefilled").to_vec();
            let top = longsight::tensor::vecops::argmax(&logits).expect("vocab") as u32;
            predictions.push(top);
            g.prefill(&[truth]);
        }
        let hits = predictions
            .iter()
            .zip(expected)
            .filter(|(a, b)| a == b)
            .count();
        println!(
            "{name:<22} predicted {:?}  ({hits}/{} needle tokens recovered)",
            predictions,
            expected.len()
        );
    };
    let _ = Sampling::Greedy;

    run("dense attention:", &mut DenseBackend::new());
    run(
        "sliding window (128):",
        &mut SlidingWindowBackend::new(window, 16),
    );
    let mut hybrid = LongSightBackend::new(
        HybridConfig {
            window,
            sinks: 16,
            top_k: 64,
        },
        ThresholdTable::uniform(cfg.layers, cfg.kv_heads, cfg.head_dim as u32 / 2 + 2),
        RotationTable::identity(cfg.layers, cfg.kv_heads, cfg.head_dim),
    );
    run("LongSight hybrid:", &mut hybrid);

    let s = hybrid.stats();
    println!(
        "\nLongSight touched {:.1}x fewer non-window keys than dense attention \
         (filter ratio), retrieving only {} values per query",
        s.filter_ratio_nonwindow(),
        64
    );
}
