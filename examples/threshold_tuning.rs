//! The paper's SCF threshold-tuning loop (§8.1.3) running end to end: start
//! from thresholds that filter nothing, repeatedly raise the threshold of
//! the KV head with the lowest filter ratio, stop when perplexity exceeds
//! the 5 % budget.
//!
//! ```text
//! cargo run --release --example threshold_tuning
//! ```

use longsight::core::tuner::{tune_thresholds, ProbeResult, TunerConfig};
use longsight::core::{training, HybridConfig, ItqConfig, LongSightBackend};
use longsight::model::{corpus, perplexity, InductionParams, Model, ModelConfig, ModelWeights};
use longsight::tensor::SimRng;

fn main() {
    let cfg = ModelConfig::tiny();
    let mut rng = SimRng::seed_from(2025);
    let model = Model::new(ModelWeights::induction(
        &cfg,
        &InductionParams::default(),
        &mut rng,
    ));
    let text = corpus::generate(&corpus::CorpusConfig::long_book(cfg.vocab), 768, &mut rng);
    let rotations = training::train_rotations(&model, &text.tokens[..512], &ItqConfig::default());

    let hybrid_cfg = HybridConfig {
        window: 192,
        sinks: 16,
        top_k: 96,
    };

    println!(
        "tuning SCF thresholds for {} ({} KV-head databases)...",
        cfg,
        cfg.databases_per_user()
    );
    let mut probes = 0usize;
    let outcome = tune_thresholds(
        cfg.layers,
        cfg.kv_heads,
        &TunerConfig {
            quality_budget: 0.05,
            step: 4,
            max_threshold: cfg.head_dim as u32,
            max_rounds: 48,
        },
        |thresholds| {
            probes += 1;
            let mut backend =
                LongSightBackend::new(hybrid_cfg.clone(), thresholds.clone(), rotations.clone());
            let r = perplexity::evaluate(&model, &text, &mut backend, 48);
            print!(".");
            use std::io::Write as _;
            std::io::stdout().flush().ok();
            ProbeResult {
                quality: r.perplexity,
                stats: backend.take_stats(),
            }
        },
    );
    println!("\n");

    println!("probes run:          {}", outcome.probes);
    println!("baseline perplexity: {:.2}", outcome.baseline_quality);
    println!(
        "tuned perplexity:    {:.2} ({:+.2}%)",
        outcome.final_quality,
        100.0 * outcome.quality_increase()
    );
    println!(
        "filter ratio:        {:.1}x (non-window)",
        outcome.final_stats.filter_ratio_nonwindow()
    );
    println!(
        "\nper-head thresholds (layer, kv_head) -> threshold / {}:",
        cfg.head_dim
    );
    for ((layer, head), th) in outcome.thresholds.iter() {
        println!("  ({layer}, {head}) -> {th}");
    }
}
