//! A minimal wall-clock timing harness for the bench targets.
//!
//! The workspace builds with zero external dependencies, so the criterion
//! micro-benchmark framework is replaced by this module: calibrated inner
//! iteration counts, a warmup pass, and median-of-N sampling. It reports the
//! `[min median max]` triple per benchmark in the same shape the criterion
//! goldens under `results/` used, so regenerated outputs stay diffable.
//!
//! Sample counts are tuned for benchmark stability, not statistical rigor —
//! the results/ goldens are shape references (is this microseconds or
//! milliseconds?), not regression gates.
//!
//! # Example
//!
//! ```
//! use longsight_bench::timing;
//!
//! let t = timing::measure(|| std::hint::black_box(7u64.wrapping_mul(13)));
//! assert!(t.min_ns <= t.median_ns && t.median_ns <= t.max_ns);
//! ```

use std::time::Instant;

/// Target wall-clock time for one timed sample, in nanoseconds. The inner
/// iteration count is calibrated so a sample takes about this long.
const TARGET_SAMPLE_NS: f64 = 2_000_000.0;

/// Number of timed samples per benchmark (the median of these is reported).
const SAMPLES: usize = 25;

/// Warmup budget before sampling, in nanoseconds.
const WARMUP_NS: f64 = 100_000_000.0;

/// Per-iteration timing statistics from [`measure`].
#[derive(Debug, Clone, Copy)]
pub struct Timing {
    /// Fastest sample's mean nanoseconds per iteration.
    pub min_ns: f64,
    /// Median sample's mean nanoseconds per iteration.
    pub median_ns: f64,
    /// Slowest sample's mean nanoseconds per iteration.
    pub max_ns: f64,
    /// Inner iterations per sample (after calibration).
    pub iters_per_sample: u64,
}

/// Times `f`, returning per-iteration statistics.
///
/// Calibrates an inner iteration count targeting ~2 ms per sample, warms
/// up for ~100 ms, then records 25 samples and summarizes them. Wrap
/// inputs/outputs in [`std::hint::black_box`] inside `f` to keep the
/// optimizer honest.
pub fn measure<R, F: FnMut() -> R>(mut f: F) -> Timing {
    // Calibration: grow the iteration count until one batch is measurable,
    // then scale to the target sample time.
    let mut iters: u64 = 1;
    let per_iter_ns = loop {
        let start = Instant::now();
        for _ in 0..iters {
            std::hint::black_box(f());
        }
        let elapsed = start.elapsed().as_nanos() as f64;
        if elapsed >= 10_000.0 || iters >= 1 << 40 {
            break elapsed / iters as f64;
        }
        iters *= 10;
    };
    let iters_per_sample = ((TARGET_SAMPLE_NS / per_iter_ns).max(1.0)) as u64;

    // Warmup: reach steady state (caches, branch predictors, allocator).
    let warm_start = Instant::now();
    while (warm_start.elapsed().as_nanos() as f64) < WARMUP_NS {
        std::hint::black_box(f());
    }

    let mut samples: Vec<f64> = (0..SAMPLES)
        .map(|_| {
            let start = Instant::now();
            for _ in 0..iters_per_sample {
                std::hint::black_box(f());
            }
            start.elapsed().as_nanos() as f64 / iters_per_sample as f64
        })
        .collect();
    samples.sort_by(f64::total_cmp);
    Timing {
        min_ns: samples[0],
        median_ns: samples[SAMPLES / 2],
        max_ns: samples[SAMPLES - 1],
        iters_per_sample,
    }
}

/// Formats nanoseconds the way the criterion goldens did (`4.40 ns`,
/// `509.22 us`, `66.02 ms`).
fn fmt_time(ns: f64) -> String {
    if ns >= 1e6 {
        format!("{:.2} ms", ns / 1e6)
    } else if ns >= 1e3 {
        format!("{:.2} us", ns / 1e3)
    } else {
        format!("{ns:.2} ns")
    }
}

/// Formats an element rate (`607.62 Melem/s`, `29.07 Gelem/s`).
fn fmt_rate(elems_per_sec: f64) -> String {
    if elems_per_sec >= 1e9 {
        format!("{:.2} Gelem/s", elems_per_sec / 1e9)
    } else if elems_per_sec >= 1e6 {
        format!("{:.2} Melem/s", elems_per_sec / 1e6)
    } else {
        format!("{:.2} Kelem/s", elems_per_sec / 1e3)
    }
}

/// Times `f` and prints a criterion-style report line.
///
/// With `elements = Some(n)`, a throughput line (`n` elements per iteration)
/// is printed below the timing line.
pub fn bench_report<R, F: FnMut() -> R>(name: &str, elements: Option<u64>, f: F) -> Timing {
    let t = measure(f);
    println!(
        "{name:<23} time:   [{} {} {}]",
        fmt_time(t.min_ns),
        fmt_time(t.median_ns),
        fmt_time(t.max_ns)
    );
    if let Some(n) = elements {
        let rate = |ns: f64| n as f64 / (ns * 1e-9);
        println!(
            "{:<23} thrpt:  [{} {} {}]",
            "",
            fmt_rate(rate(t.max_ns)),
            fmt_rate(rate(t.median_ns)),
            fmt_rate(rate(t.min_ns))
        );
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn measure_orders_statistics() {
        let t = measure(|| std::hint::black_box((0..100u64).sum::<u64>()));
        assert!(t.min_ns > 0.0);
        assert!(t.min_ns <= t.median_ns);
        assert!(t.median_ns <= t.max_ns);
        assert!(t.iters_per_sample >= 1);
    }

    #[test]
    fn formats_match_golden_shapes() {
        assert_eq!(fmt_time(4.4028), "4.40 ns");
        assert_eq!(fmt_time(509_220.0), "509.22 us");
        assert_eq!(fmt_time(66_018_000.0), "66.02 ms");
        assert_eq!(fmt_rate(607.62e6), "607.62 Melem/s");
        assert_eq!(fmt_rate(29.072e9), "29.07 Gelem/s");
    }
}
