//! Fig 7 driver: decode-phase throughput and per-token latency for the four
//! systems across models, context lengths, and user counts — plus the host
//! scan-kernel microbench that keeps the bitplane SCF path honest.

use crate::timing;
use longsight_core::{filter_block_packed, scf_pass, PFU_BLOCK_KEYS};
use longsight_gpu::{DataParallelGpus, GpuSpec};
use longsight_model::ModelConfig;
use longsight_system::{
    AttAccSystem, GpuOnlySystem, LongSightConfig, LongSightSystem, ServingSystem, StepReport,
};
use longsight_tensor::{SignArena, SignBits, SimRng};

/// One Fig 7 cell.
#[derive(Debug, Clone, PartialEq)]
pub struct Fig7Point {
    /// System name.
    pub system: String,
    /// Model name.
    pub model: &'static str,
    /// Context length.
    pub context: usize,
    /// Users.
    pub users: usize,
    /// Report, or `None` when infeasible (the paper's missing entries).
    pub report: Option<StepReport>,
}

/// Builds the four systems of Fig 7 for a model.
pub fn systems(model: &ModelConfig) -> Vec<Box<dyn ServingSystem>> {
    vec![
        Box::new(GpuOnlySystem {
            gpus: DataParallelGpus::new(GpuSpec::h100_sxm(), 1),
            model: model.clone(),
        }),
        Box::new(GpuOnlySystem {
            gpus: DataParallelGpus::new(GpuSpec::h100_sxm(), 2),
            model: model.clone(),
        }),
        Box::new(AttAccSystem::h100_pim(model.clone())),
        Box::new(LongSightSystem::new(
            LongSightConfig::paper_default(),
            model.clone(),
        )),
    ]
}

/// The context sweep of Fig 7 (32K → 1M).
pub fn contexts() -> Vec<usize> {
    vec![32_768, 65_536, 131_072, 262_144, 524_288, 1 << 20]
}

/// Evaluates every (system × context × user-count) cell for a model.
///
/// `user_counts` of `0` means "the system's maximum batch at this context".
pub fn sweep(model: &ModelConfig, user_counts: &[usize]) -> Vec<Fig7Point> {
    // Every cell is an independent pure evaluation (no serving system
    // mutates state across calls), so the grid runs on the deterministic
    // parallel map with one freshly built system per cell; rows come back in
    // the same context → system → users order the serial loops produced.
    let n_sys = systems(model).len();
    let cells: Vec<(usize, usize, usize)> = contexts()
        .into_iter()
        .flat_map(|ctx| (0..n_sys).flat_map(move |s| user_counts.iter().map(move |&u| (ctx, s, u))))
        .collect();
    longsight_exec::deterministic_map(&cells, |_, &(ctx, s, u)| {
        let mut sys = systems(model).swap_remove(s);
        let users = if u == 0 { sys.max_users(ctx).max(1) } else { u };
        let report = sys.evaluate(users, ctx).ok();
        Fig7Point {
            system: sys.name(),
            model: model.name,
            context: ctx,
            users,
            report,
        }
    })
}

/// The headline comparison (§9.1): at the maximum context a single GPU
/// supports, LongSight's best throughput and per-user rate vs. the 1-GPU
/// system. Returns `(throughput_gain, tps_per_user_gain)`.
pub fn headline_speedup(model: &ModelConfig) -> (f64, f64) {
    let mut gpu = GpuOnlySystem {
        gpus: DataParallelGpus::new(GpuSpec::h100_sxm(), 1),
        model: model.clone(),
    };
    let mut ls = LongSightSystem::new(LongSightConfig::paper_default(), model.clone());

    // Max context a single GPU supports with at least one user.
    let ctx = longsight_gpu::max_context(&GpuSpec::h100_sxm(), model, 1);
    // Round down to a power-of-two-ish grid point.
    let ctx = contexts()
        .into_iter()
        .rfind(|&c| c <= ctx)
        .unwrap_or(32_768);

    let gpu_users = gpu.max_users(ctx).max(1);
    let g = gpu
        .evaluate(gpu_users, ctx)
        .expect("1-GPU must run at its own max context");
    let ls_users = ls.max_users(ctx).max(1);
    let l = ls.evaluate(ls_users, ctx).expect("LongSight must run");

    let throughput_gain = l.throughput_tps / g.throughput_tps;
    // Per-user rate at matched (single-user) load.
    let g1 = gpu.evaluate(1, ctx).expect("single user");
    let l1 = ls.evaluate(1, ctx).expect("single user");
    let per_user_gain = l1.tps_per_user() / g1.tps_per_user();
    (throughput_gain, per_user_gain)
}

/// Host wall-clock comparison of the two SCF scan kernels over the same
/// sign store: the legacy per-key `scf_pass` walk over heap-allocated
/// `SignBits` vs the bitplane [`filter_block_packed`] kernel streaming a
/// packed [`SignArena`] in 128-key PFU blocks.
#[derive(Debug, Clone, Copy)]
pub struct ScanKernelBench {
    /// Keys in the scanned region.
    pub keys: usize,
    /// Sign dimension (head_dim after rotation).
    pub dim: usize,
    /// SCF threshold applied by both kernels.
    pub threshold: u32,
    /// Median per-key cost of the per-key scan, ns.
    pub per_key_ns_per_key: f64,
    /// Median per-key cost of the packed block kernel, ns.
    pub packed_ns_per_key: f64,
    /// Whether the two kernels produced the same survivor set (must be true;
    /// the ci smoke asserts it).
    pub identical: bool,
}

impl ScanKernelBench {
    /// Packed-kernel speedup over the per-key scan.
    pub fn speedup(&self) -> f64 {
        self.per_key_ns_per_key / self.packed_ns_per_key
    }
}

/// Times both scan kernels over `keys` random sign vectors of `dim`
/// dimensions and cross-checks their survivor sets bit-for-bit.
///
/// The threshold is placed one standard deviation above the random-sign
/// mean (`dim/2 + √dim/2`), giving a realistically sparse survivor rate in
/// the ballpark of the paper's ~20× filter ratio.
pub fn scan_kernel_bench(keys: usize, dim: usize) -> ScanKernelBench {
    let threshold = (dim as f64 / 2.0 + (dim as f64).sqrt() / 2.0).round() as u32;
    let mut rng = SimRng::seed_from(0x5CF);
    let mut per_key: Vec<SignBits> = Vec::with_capacity(keys);
    let mut arena = SignArena::new(dim);
    for _ in 0..keys {
        let v = rng.normal_vec(dim);
        per_key.push(SignBits::from_slice(&v));
        arena.push_signs_of(&v);
    }
    let q = SignBits::from_slice(&rng.normal_vec(dim));

    let mut identical = true;
    let mut block = 0;
    while block < keys {
        let end = (block + PFU_BLOCK_KEYS).min(keys);
        let bitmap = filter_block_packed(&q, &arena, block..end, threshold);
        for (i, k) in per_key[block..end].iter().enumerate() {
            if (bitmap >> i & 1 == 1) != scf_pass(&q, k, threshold) {
                identical = false;
            }
        }
        block = end;
    }

    let t_per_key = timing::measure(|| {
        let mut survivors = 0u32;
        for k in &per_key {
            survivors += u32::from(scf_pass(&q, k, threshold));
        }
        survivors
    });
    let t_packed = timing::measure(|| {
        let mut survivors = 0u32;
        let mut block = 0;
        while block < keys {
            let end = (block + PFU_BLOCK_KEYS).min(keys);
            survivors += filter_block_packed(&q, &arena, block..end, threshold).count_ones();
            block = end;
        }
        survivors
    });
    ScanKernelBench {
        keys,
        dim,
        threshold,
        per_key_ns_per_key: t_per_key.median_ns / keys as f64,
        packed_ns_per_key: t_packed.median_ns / keys as f64,
        identical,
    }
}

/// Renders the microbench as table rows for [`crate::print_table`] with the
/// headers `["kernel", "keys", "dim", "ns per key", "speedup"]` — the
/// `packed scan` row's `ns per key` field is the one `trajectory.tsv` pins
/// via `perf-diff --gate`.
pub fn scan_kernel_rows(b: &ScanKernelBench) -> Vec<Vec<String>> {
    vec![
        vec![
            "per-key scan".into(),
            b.keys.to_string(),
            b.dim.to_string(),
            format!("{:.3}", b.per_key_ns_per_key),
            "1.00x".into(),
        ],
        vec![
            "packed scan".into(),
            b.keys.to_string(),
            b.dim.to_string(),
            format!("{:.3}", b.packed_ns_per_key),
            format!(
                "{:.2}x (bit-identical: {})",
                b.speedup(),
                if b.identical { "yes" } else { "NO" }
            ),
        ],
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scan_kernels_agree_bit_for_bit() {
        // Odd dim exercises the generic lane arm; the wall-clock numbers are
        // host-dependent, so only shape and identity are asserted here.
        let b = scan_kernel_bench(4096, 67);
        assert!(b.identical, "packed kernel diverged from per-key scan");
        assert!(b.per_key_ns_per_key > 0.0);
        assert!(b.packed_ns_per_key > 0.0);
        let rows = scan_kernel_rows(&b);
        assert_eq!(rows.len(), 2);
        assert_eq!(rows[1][0], "packed scan");
    }

    #[test]
    fn longsight_wins_headline_at_max_gpu_context() {
        // Paper: "up to 8.1–9.6× higher throughput and 3.6–11.9× higher
        // tokens per second per user" at the max 1-GPU context. We assert
        // the direction and a conservative magnitude.
        for model in [ModelConfig::llama3_1b(), ModelConfig::llama3_8b()] {
            let (tp, pu) = headline_speedup(&model);
            assert!(
                tp > 2.0,
                "{}: throughput gain {tp:.2} too small",
                model.name
            );
            assert!(pu > 1.5, "{}: per-user gain {pu:.2} too small", model.name);
        }
    }

    #[test]
    fn only_longsight_reaches_one_million_tokens() {
        let model = ModelConfig::llama3_8b();
        let points = sweep(&model, &[1]);
        let at_1m: Vec<&Fig7Point> = points.iter().filter(|p| p.context == 1 << 20).collect();
        let ls = at_1m
            .iter()
            .find(|p| p.system == "LongSight")
            .expect("LongSight row exists");
        assert!(ls.report.is_some(), "LongSight must serve 1M tokens");
        let dense1 = at_1m
            .iter()
            .find(|p| p.system == "1-GPU dense")
            .expect("1-GPU row exists");
        assert!(
            dense1.report.is_none(),
            "one GPU cannot hold a 1M dense KV cache"
        );
    }
}
