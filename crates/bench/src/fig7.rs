//! Fig 7 driver: decode-phase throughput and per-token latency for the four
//! systems across models, context lengths, and user counts.

use longsight_gpu::{DataParallelGpus, GpuSpec};
use longsight_model::ModelConfig;
use longsight_system::{
    AttAccSystem, GpuOnlySystem, LongSightConfig, LongSightSystem, ServingSystem, StepReport,
};

/// One Fig 7 cell.
#[derive(Debug, Clone, PartialEq)]
pub struct Fig7Point {
    /// System name.
    pub system: String,
    /// Model name.
    pub model: &'static str,
    /// Context length.
    pub context: usize,
    /// Users.
    pub users: usize,
    /// Report, or `None` when infeasible (the paper's missing entries).
    pub report: Option<StepReport>,
}

/// Builds the four systems of Fig 7 for a model.
pub fn systems(model: &ModelConfig) -> Vec<Box<dyn ServingSystem>> {
    vec![
        Box::new(GpuOnlySystem {
            gpus: DataParallelGpus::new(GpuSpec::h100_sxm(), 1),
            model: model.clone(),
        }),
        Box::new(GpuOnlySystem {
            gpus: DataParallelGpus::new(GpuSpec::h100_sxm(), 2),
            model: model.clone(),
        }),
        Box::new(AttAccSystem::h100_pim(model.clone())),
        Box::new(LongSightSystem::new(
            LongSightConfig::paper_default(),
            model.clone(),
        )),
    ]
}

/// The context sweep of Fig 7 (32K → 1M).
pub fn contexts() -> Vec<usize> {
    vec![32_768, 65_536, 131_072, 262_144, 524_288, 1 << 20]
}

/// Evaluates every (system × context × user-count) cell for a model.
///
/// `user_counts` of `0` means "the system's maximum batch at this context".
pub fn sweep(model: &ModelConfig, user_counts: &[usize]) -> Vec<Fig7Point> {
    // Every cell is an independent pure evaluation (no serving system
    // mutates state across calls), so the grid runs on the deterministic
    // parallel map with one freshly built system per cell; rows come back in
    // the same context → system → users order the serial loops produced.
    let n_sys = systems(model).len();
    let cells: Vec<(usize, usize, usize)> = contexts()
        .into_iter()
        .flat_map(|ctx| (0..n_sys).flat_map(move |s| user_counts.iter().map(move |&u| (ctx, s, u))))
        .collect();
    longsight_exec::deterministic_map(&cells, |_, &(ctx, s, u)| {
        let mut sys = systems(model).swap_remove(s);
        let users = if u == 0 { sys.max_users(ctx).max(1) } else { u };
        let report = sys.evaluate(users, ctx).ok();
        Fig7Point {
            system: sys.name(),
            model: model.name,
            context: ctx,
            users,
            report,
        }
    })
}

/// The headline comparison (§9.1): at the maximum context a single GPU
/// supports, LongSight's best throughput and per-user rate vs. the 1-GPU
/// system. Returns `(throughput_gain, tps_per_user_gain)`.
pub fn headline_speedup(model: &ModelConfig) -> (f64, f64) {
    let mut gpu = GpuOnlySystem {
        gpus: DataParallelGpus::new(GpuSpec::h100_sxm(), 1),
        model: model.clone(),
    };
    let mut ls = LongSightSystem::new(LongSightConfig::paper_default(), model.clone());

    // Max context a single GPU supports with at least one user.
    let ctx = longsight_gpu::max_context(&GpuSpec::h100_sxm(), model, 1);
    // Round down to a power-of-two-ish grid point.
    let ctx = contexts()
        .into_iter()
        .rfind(|&c| c <= ctx)
        .unwrap_or(32_768);

    let gpu_users = gpu.max_users(ctx).max(1);
    let g = gpu
        .evaluate(gpu_users, ctx)
        .expect("1-GPU must run at its own max context");
    let ls_users = ls.max_users(ctx).max(1);
    let l = ls.evaluate(ls_users, ctx).expect("LongSight must run");

    let throughput_gain = l.throughput_tps / g.throughput_tps;
    // Per-user rate at matched (single-user) load.
    let g1 = gpu.evaluate(1, ctx).expect("single user");
    let l1 = ls.evaluate(1, ctx).expect("single user");
    let per_user_gain = l1.tps_per_user() / g1.tps_per_user();
    (throughput_gain, per_user_gain)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn longsight_wins_headline_at_max_gpu_context() {
        // Paper: "up to 8.1–9.6× higher throughput and 3.6–11.9× higher
        // tokens per second per user" at the max 1-GPU context. We assert
        // the direction and a conservative magnitude.
        for model in [ModelConfig::llama3_1b(), ModelConfig::llama3_8b()] {
            let (tp, pu) = headline_speedup(&model);
            assert!(
                tp > 2.0,
                "{}: throughput gain {tp:.2} too small",
                model.name
            );
            assert!(pu > 1.5, "{}: per-user gain {pu:.2} too small", model.name);
        }
    }

    #[test]
    fn only_longsight_reaches_one_million_tokens() {
        let model = ModelConfig::llama3_8b();
        let points = sweep(&model, &[1]);
        let at_1m: Vec<&Fig7Point> = points.iter().filter(|p| p.context == 1 << 20).collect();
        let ls = at_1m
            .iter()
            .find(|p| p.system == "LongSight")
            .expect("LongSight row exists");
        assert!(ls.report.is_some(), "LongSight must serve 1M tokens");
        let dense1 = at_1m
            .iter()
            .find(|p| p.system == "1-GPU dense")
            .expect("1-GPU row exists");
        assert!(
            dense1.report.is_none(),
            "one GPU cannot hold a 1M dense KV cache"
        );
    }
}
