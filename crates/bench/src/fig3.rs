//! Fig 3 driver: non-window KV-cache filter ratio vs. context length, for
//! (a) baseline sparse, (b) hybrid, (c) hybrid + ITQ.
//!
//! Long-context points run on generated Q/K/V traces with LLaMA-like key
//! geometry (see `DESIGN.md`); the quality constraint substituting
//! "perplexity within 5 % of dense" is *attention output error ≤ 5 %*
//! relative to exact dense attention over the same trace.

use longsight_core::trace_eval::{evaluate_trace, TraceQuality};
use longsight_core::{HybridConfig, ItqConfig, ItqRotation};
use longsight_model::tracegen::{generate_head_trace, HeadTrace, TraceConfig};
use longsight_tensor::{vecops, Matrix, SimRng};

/// The three algorithm variants of Fig 3.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Fig3Variant {
    /// Pure sparse attention: sinks only, no dense window (Fig 3a).
    BaselineSparse,
    /// Sparse + 1,024-token dense sliding window (Fig 3b).
    Hybrid,
    /// Hybrid with ITQ-rotated sign bits (Fig 3c).
    HybridItq,
}

impl std::fmt::Display for Fig3Variant {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Fig3Variant::BaselineSparse => write!(f, "baseline"),
            Fig3Variant::Hybrid => write!(f, "hybrid"),
            Fig3Variant::HybridItq => write!(f, "hybrid+ITQ"),
        }
    }
}

/// One Fig 3 measurement.
#[derive(Debug, Clone)]
pub struct Fig3Point {
    /// Variant measured.
    pub variant: Fig3Variant,
    /// Context length.
    pub context: usize,
    /// Top-k budget.
    pub k: usize,
    /// Best non-window filter ratio within the quality budget
    /// (`None` when even unfiltered retrieval misses the budget — the
    /// paper's 'X' marks).
    pub filter_ratio: Option<f64>,
    /// SCF threshold achieving it.
    pub threshold: u32,
    /// Top-k recall at that operating point.
    pub recall: f64,
}

/// Quality budget: relative attention-output error vs. dense.
pub const QUALITY_BUDGET: f64 = 0.05;

/// Generates the shared trace for a context length (one representative KV
/// head with Llama-3-8B head dimension).
pub fn trace_for(head_dim: usize, context: usize, seed: u64) -> HeadTrace {
    let mut rng = SimRng::seed_from(seed);
    generate_head_trace(&TraceConfig::llama_like(head_dim, context), &mut rng)
}

/// Trains the ITQ rotation on the first `n_train` keys of a trace.
pub fn train_trace_itq(trace: &HeadTrace, n_train: usize, seed: u64) -> ItqRotation {
    let d = trace.keys.dim();
    let n = n_train.min(trace.len());
    let mut data = Vec::with_capacity(n * d);
    for i in 0..n {
        let k = trace.keys.get(i);
        let norm = vecops::l2_norm(k);
        data.extend(k.iter().map(|x| x / norm.max(1e-9)));
    }
    ItqRotation::train(
        &Matrix::from_vec(n, d, data),
        &ItqConfig {
            iterations: 30,
            seed,
        },
    )
}

/// Measures one Fig 3 point: sweeps the SCF threshold upward and reports the
/// best filter ratio whose output error stays within [`QUALITY_BUDGET`].
pub fn measure(trace: &HeadTrace, variant: Fig3Variant, k: usize) -> Fig3Point {
    let d = trace.keys.dim();
    let rotation = match variant {
        Fig3Variant::HybridItq => train_trace_itq(trace, 1024, 0xF163),
        _ => ItqRotation::identity(d),
    };
    measure_with_rotation(trace, variant, k, &rotation)
}

/// [`measure`] with a caller-provided ITQ rotation, so one training run can
/// serve every `(variant, k)` point on the same trace. Non-ITQ variants
/// ignore `itq_rotation` and use the identity.
pub fn measure_with_rotation(
    trace: &HeadTrace,
    variant: Fig3Variant,
    k: usize,
    itq_rotation: &ItqRotation,
) -> Fig3Point {
    let d = trace.keys.dim();
    let config = HybridConfig {
        window: match variant {
            Fig3Variant::BaselineSparse => 1,
            _ => 1024,
        },
        sinks: 16,
        top_k: k,
    };
    let identity = ItqRotation::identity(d);
    let rotation = match variant {
        Fig3Variant::HybridItq => itq_rotation,
        _ => &identity,
    };

    let mut best: Option<(f64, u32, f64)> = None;
    for th in (0..=d as u32).step_by((d / 32).max(1)) {
        let q: TraceQuality = evaluate_trace(trace, rotation, &config, th);
        if q.output_rel_err <= QUALITY_BUDGET {
            let fr = q.stats.filter_ratio_nonwindow();
            if best.is_none() || fr > best.expect("checked").0 {
                best = Some((fr, th, q.topk_recall));
            }
        } else {
            break;
        }
    }
    Fig3Point {
        variant,
        context: trace.len(),
        k,
        filter_ratio: best.map(|b| b.0),
        threshold: best.map(|b| b.1).unwrap_or(0),
        recall: best.map(|b| b.2).unwrap_or(0.0),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig3_orderings_hold_at_8k() {
        let trace = trace_for(128, 8_192, 42);
        let baseline = measure(&trace, Fig3Variant::BaselineSparse, 1024);
        let hybrid = measure(&trace, Fig3Variant::Hybrid, 1024);
        let itq = measure(&trace, Fig3Variant::HybridItq, 1024);
        let h = hybrid.filter_ratio.expect("hybrid must meet the budget");
        let i = itq.filter_ratio.expect("itq must meet the budget");
        assert!(
            i > h,
            "ITQ must beat raw hybrid filtering: {i:.2} vs {h:.2}"
        );
        // The baseline either fails the budget or filters no better than
        // hybrid (the window relieves the sparse path, §5.3).
        if let Some(b) = baseline.filter_ratio {
            assert!(b <= i, "baseline {b:.2} should not beat hybrid+ITQ {i:.2}");
        }
    }

    #[test]
    fn small_k_fails_budget_at_long_context_for_baseline() {
        // Fig 3a: k = 128 pure-sparse cannot reach the quality target at
        // longer contexts (marked 'X' in the paper).
        let trace = trace_for(128, 16_384, 43);
        let p = measure(&trace, Fig3Variant::BaselineSparse, 128);
        let h = measure(&trace, Fig3Variant::Hybrid, 128);
        // Either infeasible, or clearly worse than hybrid at the same k.
        match (p.filter_ratio, h.filter_ratio) {
            (None, _) => {}
            (Some(b), Some(hh)) => assert!(b <= hh * 1.5),
            (Some(_), None) => panic!("hybrid should not be strictly worse than baseline"),
        }
    }
}
