//! Degradation-curve driver: SLO capacity and degradation counters under
//! injected faults (ISSUE: availability experiment).
//!
//! Sweeps fault rate × offload deadline on a faults-enabled
//! [`LongSightSystem`]. For each cell it reports the largest batch still
//! meeting the latency SLO (via [`max_users_under_slo`], whose `evaluate`
//! routes through the faulted step-cost path) together with the fault
//! counters from a fixed-batch probe of the faulted DReX layer. A second
//! sweep runs the closed-loop serving simulation under token-level faults
//! and reports the retried / degraded / failed counters of
//! [`ServeMetrics`].
//!
//! Everything is seed-deterministic: the same fault seed reproduces the
//! exact fault timeline (and therefore every number here) at any thread
//! count.

use longsight_faults::{FaultInjector, FaultKind, FaultProfile, RetryPolicy};
use longsight_model::ModelConfig;
use longsight_system::serving::{simulate_with_faults, ServeMetrics, WorkloadConfig};
use longsight_system::slo::{max_users_under_slo, SloCapacity};
use longsight_system::{LongSightConfig, LongSightSystem};

/// One cell of the rate × deadline capacity sweep.
#[derive(Debug, Clone)]
pub struct AvailabilityPoint {
    /// Injected fault rate (the [`FaultProfile::scaled`] knob).
    pub rate: f64,
    /// Per-attempt offload deadline, ms.
    pub deadline_ms: f64,
    /// SLO capacity under these faults.
    pub capacity: SloCapacity,
    /// Tokens that retried but completed, in a fixed-batch layer probe.
    pub retried_tokens: usize,
    /// Tokens degraded to window-only attention in the same probe.
    pub degraded_tokens: usize,
    /// CXL link CRC-replay events in the probe.
    pub link_replays: usize,
    /// NMA slices hit by a straggler multiplier in the probe.
    pub straggled_slices: usize,
}

/// Builds a faults-enabled system for one sweep cell.
fn faulted_system(model: &ModelConfig, rate: f64, deadline_ms: f64, seed: u64) -> LongSightSystem {
    let mut cfg = LongSightConfig::paper_default().with_faults(FaultProfile::scaled(rate), seed);
    cfg.retry.offload_deadline_ns = deadline_ms * 1e6;
    LongSightSystem::new(cfg, model.clone())
}

/// Sweeps fault rate × deadline at one context/SLO point.
///
/// `probe_users` fixes the batch size used for the fault-counter probe so
/// the counters are comparable across cells (capacity itself varies).
pub fn capacity_sweep(
    model: &ModelConfig,
    context: usize,
    slo_ms: f64,
    rates: &[f64],
    deadlines_ms: &[f64],
    probe_users: usize,
    seed: u64,
) -> Vec<AvailabilityPoint> {
    let mut points = Vec::new();
    for &deadline_ms in deadlines_ms {
        for &rate in rates {
            let mut sys = faulted_system(model, rate, deadline_ms, seed);
            let capacity = max_users_under_slo(&mut sys, context, slo_ms);
            let probe = sys.drex_layer_faulty(probe_users, context);
            points.push(AvailabilityPoint {
                rate,
                deadline_ms,
                capacity,
                retried_tokens: probe.stats.retried_tokens,
                degraded_tokens: probe.stats.degraded_tokens,
                link_replays: probe
                    .log
                    .count_matching(|k| matches!(k, FaultKind::LinkReplay { .. })),
                straggled_slices: probe.straggled_slices,
            });
        }
    }
    points
}

/// One row of the serving-simulation sweep.
#[derive(Debug, Clone)]
pub struct ServingFaultPoint {
    /// Injected fault rate.
    pub rate: f64,
    /// Metrics of the faulted closed-loop run.
    pub metrics: ServeMetrics,
    /// Fault events logged during the run.
    pub events: usize,
}

/// Runs the closed-loop serving simulation across fault rates.
///
/// Token-level faults (offload timeouts, hard failures) resolve through the
/// retry/deadline degradation policy; the returned metrics carry the
/// retried / degraded / failed counters.
pub fn serving_sweep(
    model: &ModelConfig,
    workload: &WorkloadConfig,
    rates: &[f64],
    seed: u64,
) -> Vec<ServingFaultPoint> {
    let mut points = Vec::new();
    for &rate in rates {
        let mut sys = LongSightSystem::new(LongSightConfig::paper_default(), model.clone());
        let inj = FaultInjector::new(FaultProfile::scaled(rate), seed);
        let retry = RetryPolicy::serving_default();
        let (metrics, log) = simulate_with_faults(&mut sys, model, workload, &inj, &retry);
        points.push(ServingFaultPoint {
            rate,
            metrics,
            events: log.len(),
        });
    }
    points
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn capacity_is_monotone_in_fault_rate() {
        let model = ModelConfig::llama3_1b();
        let rates = [0.0, 0.05, 0.2];
        let pts = capacity_sweep(&model, 131_072, 50.0, &rates, &[2.0], 4, 11);
        for pair in pts.windows(2) {
            assert!(
                pair[1].capacity.users <= pair[0].capacity.users,
                "capacity rose with fault rate: {:?} -> {:?}",
                pair[0].capacity,
                pair[1].capacity
            );
        }
        assert_eq!(pts[0].retried_tokens + pts[0].degraded_tokens, 0);
    }

    #[test]
    fn sweep_is_deterministic() {
        let model = ModelConfig::llama3_1b();
        let run = || capacity_sweep(&model, 131_072, 50.0, &[0.1], &[2.0], 4, 11);
        let (a, b) = (run(), run());
        assert_eq!(a[0].capacity, b[0].capacity);
        assert_eq!(a[0].link_replays, b[0].link_replays);
        assert_eq!(a[0].straggled_slices, b[0].straggled_slices);
    }
}
