//! Shared helpers for the benchmark harness: table rendering and the
//! experiment drivers the figure targets replay.
//!
//! Every paper table/figure has a bench target (`harness = false`) under
//! `benches/` that prints the corresponding rows; `EXPERIMENTS.md` records
//! paper-vs-measured shapes. The drivers live here so tests can assert on
//! the same numbers the benches print.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod availability;
pub mod fig3;
pub mod fig7;
mod table;
pub mod timing;

pub use table::{fmt_ctx, fmt_ns, print_table};
