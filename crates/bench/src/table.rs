//! Plain-text table rendering for the figure/table benches.

/// Prints an aligned text table with a title.
///
/// # Example
///
/// ```
/// longsight_bench::print_table(
///     "demo",
///     &["a", "b"],
///     &[vec!["1".into(), "2".into()]],
/// );
/// ```
pub fn print_table(title: &str, headers: &[&str], rows: &[Vec<String>]) {
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate() {
            if i < widths.len() {
                widths[i] = widths[i].max(cell.len());
            }
        }
    }
    let line: String = widths
        .iter()
        .map(|w| "-".repeat(w + 2))
        .collect::<Vec<_>>()
        .join("+");
    println!("\n== {title} ==");
    println!("{line}");
    let header: Vec<String> = headers
        .iter()
        .zip(&widths)
        .map(|(h, w)| format!(" {h:<w$} "))
        .collect();
    println!("{}", header.join("|"));
    println!("{line}");
    for row in rows {
        let cells: Vec<String> = row
            .iter()
            .zip(&widths)
            .map(|(c, w)| format!(" {c:<w$} "))
            .collect();
        println!("{}", cells.join("|"));
    }
    println!("{line}");
}

/// Formats a nanosecond quantity with a readable unit.
pub fn fmt_ns(ns: f64) -> String {
    if ns >= 1e6 {
        format!("{:.2} ms", ns / 1e6)
    } else if ns >= 1e3 {
        format!("{:.2} us", ns / 1e3)
    } else {
        format!("{ns:.0} ns")
    }
}

/// Formats a context length as `32K` / `1M`.
pub fn fmt_ctx(tokens: usize) -> String {
    if tokens >= 1 << 20 {
        format!("{}M", tokens >> 20)
    } else if tokens >= 1024 {
        format!("{}K", tokens / 1024)
    } else {
        tokens.to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn formats_units() {
        assert_eq!(fmt_ns(100.0), "100 ns");
        assert_eq!(fmt_ns(1500.0), "1.50 us");
        assert_eq!(fmt_ns(2.5e6), "2.50 ms");
        assert_eq!(fmt_ctx(32 * 1024), "32K");
        assert_eq!(fmt_ctx(1 << 20), "1M");
        assert_eq!(fmt_ctx(100), "100");
    }
}
