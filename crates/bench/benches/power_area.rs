//! Regenerates §9.4: power and area analysis.

use longsight_bench::print_table;
use longsight_drex::PowerModel;

fn main() {
    let p = PowerModel::paper();
    let rows = vec![
        vec![
            "LPDDR5X package (peak)".into(),
            format!("{:.1} W x {}", p.package_peak_w, p.packages),
            "-".into(),
        ],
        vec![
            "PFU area overhead".into(),
            "-".into(),
            format!("{:.1} % of DRAM die", p.pfu_area_overhead * 100.0),
        ],
        vec![
            "NMA (16 nm)".into(),
            format!("{:.3} W x {}", p.nma_peak_w, p.nmas),
            format!("{:.1} mm2 x {}", p.nma_area_mm2, p.nmas),
        ],
        vec![
            "DReX unit total (peak)".into(),
            format!("{:.1} W", p.total_peak_w()),
            format!("{:.1} mm2 NMA silicon", p.total_nma_area_mm2()),
        ],
    ];
    print_table(
        "Section 9.4: power and area",
        &["Component", "Power", "Area"],
        &rows,
    );
    println!("paper: 18.7 W/package, 6.7% PFU area, 15.1 mm2 & 1.072 W per NMA, ~158.2 W total");
    println!(
        "measured: {:.1} W total (constants reproduced by the model)",
        p.total_peak_w()
    );
}
