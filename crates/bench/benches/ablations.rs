//! Ablations of LongSight's design choices (paper §6–7):
//!
//! 1. **Channel interleaving of Key Objects** — §7.3.3: "This interleaving is
//!    essential: if surviving Keys ... are accessed from only one memory
//!    channel, the result would be bandwidth imbalance and NMA stalls."
//! 2. **Bank-level filtering parallelism** — Context Slices spanning fewer
//!    banks reduce PFU parallelism (but filtering is rarely the bottleneck).
//! 3. **Staging-buffer flush granularity** — §6: updating DReX in bulk
//!    (groups of 128) "reduces communication overhead compared to sending
//!    one KV vector per generated token".
//! 4. **Polling interval** — the GPU observes completion by polling over CXL.
//! 5. **PFU query-batch width** — one pass filters up to 16 queries.

use longsight_bench::{fmt_ns, print_table};
use longsight_cxl::CxlLink;
use longsight_dram::{ChannelSim, DramTiming, Request};
use longsight_drex::{time_slice_offload, DrexParams, HeadOffloadSpec};
use longsight_model::ModelConfig;
use longsight_system::{LongSightConfig, LongSightSystem, ServingSystem};
use longsight_tensor::SimRng;

/// Builds the per-channel fetch trace for `survivors` of `slice_keys` keys,
/// with accesses spread over `channels` of the 8 (1 = no interleaving).
fn fetch_time(slice_keys: usize, survivors: usize, key_bytes: usize, channels: usize) -> f64 {
    let accesses_total = survivors * key_bytes.div_ceil(32);
    let per_channel = accesses_total.div_ceil(channels);
    let mut rng = SimRng::seed_from(5);
    let stride = slice_keys as f64 / survivors.max(1) as f64;
    let mut by_bank: Vec<Vec<Request>> = vec![Vec::new(); 128];
    for i in 0..per_channel {
        let pos = (((i % survivors.max(1)) as f64 * stride + rng.uniform() * stride) as usize)
            .min(slice_keys - 1);
        let bank = (pos / 1024).min(127);
        let within = pos % 1024;
        by_bank[bank].push(Request::read(bank, within / 64, within % 64));
    }
    let mut reqs = Vec::new();
    let mut i = 0;
    while reqs.len() < per_channel {
        let mut any = false;
        for b in &by_bank {
            if i < b.len() {
                reqs.push(b[i]);
                any = true;
            }
        }
        if !any {
            break;
        }
        i += 1;
    }
    let mut sim = ChannelSim::new(DramTiming::lpddr5x_8533(), 128);
    sim.run(&reqs).iter().map(|c| c.finish).fold(0.0, f64::max)
}

fn main() {
    // --- 1. Channel interleaving ---
    let slice = 131_072;
    let survivors = slice / 20;
    let mut rows = Vec::new();
    for channels in [8usize, 4, 2, 1] {
        let t = fetch_time(slice, survivors, 256, channels);
        rows.push(vec![
            channels.to_string(),
            fmt_ns(t),
            format!("{:.1}x", t / fetch_time(slice, survivors, 256, 8)),
        ]);
    }
    print_table(
        "Ablation 1: key fetch time vs channels used (full slice, 20x filter)",
        &["Channels", "Fetch time", "Slowdown vs 8-ch interleave"],
        &rows,
    );

    // --- 2. Bank-level filtering parallelism ---
    let params = DrexParams::paper();
    let mut rows = Vec::new();
    for keys in [131_072usize, 32_768, 8_192, 1_024] {
        let spec = HeadOffloadSpec {
            context_len: keys,
            head_dim: 128,
            queries: 4,
            k: 1024,
            survivors: keys / 20,
        };
        let t = time_slice_offload(&params, &spec, keys, keys / 20, 3);
        rows.push(vec![
            keys.to_string(),
            (keys.div_ceil(1024) * 8).min(1024).to_string(),
            fmt_ns(t.filter_ns),
            fmt_ns(t.total_ns()),
        ]);
    }
    print_table(
        "Ablation 2: slice size vs banks used (filter stays off the critical path)",
        &["Slice keys", "Banks", "Filter time", "Total offload"],
        &rows,
    );

    // --- 3. Staging-buffer flush granularity ---
    let link = CxlLink::pcie5_x16();
    let cfg = ModelConfig::llama3_8b();
    let tokens = 4096usize;
    let per_token = cfg.kv_bytes_per_token();
    let mut rows = Vec::new();
    for block in [1usize, 8, 128, 1024] {
        let blocks = tokens / block;
        let ns = blocks as f64 * link.transfer_ns(block * per_token);
        rows.push(vec![
            block.to_string(),
            fmt_ns(ns),
            format!(
                "{:.2}x",
                ns / (tokens as f64 * per_token as f64 / link.bandwidth_gbps)
            ),
        ]);
    }
    print_table(
        "Ablation 3: cost of flushing 4096 tokens of KV vs flush-block size",
        &[
            "Block (tokens)",
            "Total transfer",
            "Overhead vs pure bandwidth",
        ],
        &rows,
    );

    // --- 4. Polling interval ---
    let mut rows = Vec::new();
    for poll in [50.0f64, 200.0, 1000.0, 5000.0] {
        let mut sys_cfg = LongSightConfig::paper_default();
        sys_cfg.link.poll_interval_ns = poll;
        let mut sys = LongSightSystem::new(sys_cfg, ModelConfig::llama3_8b());
        let r = sys.evaluate(1, 131_072).expect("feasible");
        rows.push(vec![
            format!("{poll:.0} ns"),
            format!("{:.3} ms", r.latency_ms()),
        ]);
    }
    print_table(
        "Ablation 4: per-token latency vs CXL polling interval (1 user, 128K)",
        &["Poll interval", "Step latency"],
        &rows,
    );

    // --- 5. PFU query-batch width ---
    let mut rows = Vec::new();
    for width in [16usize, 4, 1] {
        let mut p = DrexParams::paper();
        p.pfu_query_batch = width;
        let spec = HeadOffloadSpec {
            context_len: 131_072,
            head_dim: 128,
            queries: 4,
            k: 1024,
            survivors: 131_072 / 20,
        };
        let t = time_slice_offload(&p, &spec, 131_072, 131_072 / 20, 9);
        rows.push(vec![
            width.to_string(),
            fmt_ns(t.filter_ns),
            fmt_ns(t.total_ns()),
        ]);
    }
    print_table(
        "Ablation 5: PFU query-batch width (GQA group of 4 queries)",
        &["Batch width", "Filter time", "Total offload"],
        &rows,
    );
}
