//! Regenerates paper Table 1: model parameters.

use longsight_bench::print_table;
use longsight_model::ModelConfig;

fn main() {
    let rows: Vec<Vec<String>> = [ModelConfig::llama3_1b(), ModelConfig::llama3_8b()]
        .iter()
        .map(|m| {
            vec![
                m.name.to_string(),
                "GQA".into(),
                format!("{}/{}", m.q_heads, m.kv_heads),
                m.head_dim.to_string(),
                m.layers.to_string(),
                "BF16".into(),
                format!("{:.1}", m.weight_bytes() as f64 / 1e9),
                format!("{}", m.kv_bytes_per_token()),
            ]
        })
        .collect();
    print_table(
        "Table 1: model parameters",
        &[
            "Model",
            "Attention",
            "Q/KV heads",
            "Head dim",
            "Layers",
            "Quant",
            "Weights (GB)",
            "KV B/token",
        ],
        &rows,
    );
}
