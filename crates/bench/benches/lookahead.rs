//! Lookahead DReX pipeline under Poisson load: slot-pool size × re-filter
//! penalty sweep at the paper's 8B/128K operating point, against the
//! synchronous (lookahead-off) baseline.
//!
//! Speculation hides the filter→score→top-k chain behind the GPU's dense
//! step, so the hit rows collapse toward the GPU-bound floor; a starved
//! one-slot pool denies issues under batching and its tail falls back
//! toward the serial baseline, and a larger miss penalty only moves the
//! (rare) miss tail.

use longsight_bench::print_table;
use longsight_model::ModelConfig;
use longsight_system::serving::{simulate, WorkloadConfig};
use longsight_system::{LongSightConfig, LongSightSystem, LookaheadConfig};

fn main() {
    let model = ModelConfig::llama3_8b();
    let wl = WorkloadConfig {
        arrivals_per_s: 2.0,
        context_tokens: (131_072, 131_072),
        output_tokens: (32, 128),
        duration_s: 8.0,
        seed: 11,
    };

    // (slots, refilter penalty ms); slots == 0 encodes the off baseline.
    let sweep: [(usize, f64); 5] = [(0, 0.0), (1, 0.25), (4, 0.25), (32, 0.25), (32, 2.0)];

    let mut rows = Vec::new();
    for &(slots, penalty_ms) in &sweep {
        let la = if slots == 0 {
            LookaheadConfig::disabled()
        } else {
            LookaheadConfig {
                slots,
                refilter_penalty_ns: penalty_ms * 1e6,
                ..LookaheadConfig::serving_default()
            }
        };
        let mut sys = LongSightSystem::new(
            LongSightConfig::paper_default().with_lookahead(la),
            model.clone(),
        );
        let m = simulate(&mut sys, &model, &wl);
        let speculated = m.spec_hits + m.spec_misses + m.spec_denied;
        let hit_rate = if speculated == 0 {
            "-".to_string()
        } else {
            format!("{:.1}%", 100.0 * m.spec_hits as f64 / speculated as f64)
        };
        rows.push(vec![
            if slots == 0 {
                "off".to_string()
            } else {
                slots.to_string()
            },
            if slots == 0 {
                "-".to_string()
            } else {
                format!("{penalty_ms:.2} ms")
            },
            hit_rate,
            m.spec_denied.to_string(),
            m.completed.to_string(),
            format!("{:.1}", m.throughput_tps),
            format!("{:.2} ms", m.p50_token_ms),
            format!("{:.2} ms", m.p99_token_ms),
        ]);
    }
    print_table(
        "Lookahead DReX pipeline — Llama-3-8B, 128K contexts, 2 req/s, 8 s window",
        &[
            "Slots",
            "Penalty",
            "Hit rate",
            "Denied",
            "Done",
            "Tok/s",
            "p50 token",
            "p99 token",
        ],
        &rows,
    );
    println!("\nshape: with a healthy slot pool the speculative chain is fully hidden");
    println!("and the p50 token drops to the GPU-bound floor; a one-slot pool denies");
    println!("issues whenever decodes batch up, dragging the tail back toward the");
    println!("synchronous baseline, and a 2 ms re-filter penalty widens only the");
    println!("miss tail (p99), not the p50.");
}
