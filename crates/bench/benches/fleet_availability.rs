//! Fleet availability under replica crashes: goodput and interactive tail
//! latency vs crash rate, with and without the health-aware circuit
//! breaker, at 2 and 4 replicas.
//!
//! Every cell sees byte-identical arrivals and class draws (one workload
//! seed) and a byte-identical crash/brownout timeline (one fault seed, on
//! its own stream domains); only the replica count, crash rate, and
//! breaker mode differ. The trap this bench pins: a crashed replica has
//! every KV page freed, so to a health-blind JSQ router it looks like the
//! *emptiest* node in the fleet and attracts traffic precisely while it
//! can serve none — the naive rows wedge arrivals on dead replicas until
//! repair. The breaker rows learn the crash from observed behavior, fail
//! over, and hold the interactive p99 down. `results/fleet_availability.txt`
//! pins the claim; the bench itself asserts breaker-on beats breaker-off
//! on interactive p99 in every crashy cell.

use longsight_bench::print_table;
use longsight_faults::ReplicaFaultProfile;
use longsight_model::ModelConfig;
use longsight_obs::Recorder;
use longsight_sched::{BreakerConfig, RouterPolicy, SchedPolicy, SloClass, SloMix};
use longsight_system::serving::{
    simulate_fleet_faulty, FleetFaultOptions, SchedOptions, WorkloadConfig,
};
use longsight_system::{LongSightConfig, LongSightSystem, ServingSystem};

fn main() {
    let model = ModelConfig::llama3_1b();
    let wl = WorkloadConfig {
        arrivals_per_s: 10.0,
        context_tokens: (16_384, 32_768),
        output_tokens: (32, 128),
        duration_s: 10.0,
        seed: 11,
    };
    let opts = SchedOptions {
        policy: SchedPolicy::SloAware,
        mix: SloMix::mixed(),
        page_tokens: 1024,
        prefill_chunk_tokens: 128,
        prefill_slots: 1,
        hbm_watermark: 0.01,
    };

    let mut rows = Vec::new();
    for replicas in [2usize, 4] {
        for crash_rate in [0.0f64, 0.05, 0.1] {
            let mut p99_by_mode = [0.0f64; 2];
            for (mode, breaker) in [
                ("off", None),
                ("on", Some(BreakerConfig::serving_default())),
            ] {
                let fopts = FleetFaultOptions {
                    profile: if crash_rate > 0.0 {
                        ReplicaFaultProfile::scaled(crash_rate)
                    } else {
                        ReplicaFaultProfile::disabled()
                    },
                    fault_seed: 11,
                    breaker,
                    shed_queue_cap: None,
                };
                let mut fleet: Vec<Box<dyn ServingSystem>> = (0..replicas)
                    .map(|_| {
                        Box::new(LongSightSystem::new(
                            LongSightConfig::paper_default(),
                            model.clone(),
                        )) as Box<dyn ServingSystem>
                    })
                    .collect();
                let mut rec = Recorder::disabled();
                let (m, rep) = simulate_fleet_faulty(
                    &mut fleet,
                    &model,
                    &wl,
                    &opts,
                    RouterPolicy::JsqSpillover,
                    &fopts,
                    &mut rec,
                );
                assert_eq!(
                    rep.audit_violation, None,
                    "fleet audit must pass for every cell"
                );
                let i = &rep.per_class[SloClass::Interactive.index()];
                let (crashes, redisp, shed, down_s) =
                    rep.faults.as_ref().map_or((0, 0, 0, 0.0), |f| {
                        (
                            f.crashes,
                            f.redispatches.len(),
                            f.shed.len(),
                            f.downtime_ns.iter().sum::<f64>() / 1e9,
                        )
                    });
                let offered = rep.faults.as_ref().map_or(m.completed, |f| f.offered);
                let goodput = if offered == 0 {
                    100.0
                } else {
                    100.0 * m.completed as f64 / offered as f64
                };
                p99_by_mode[usize::from(mode == "on")] = i.p99_request_ms;
                rows.push(vec![
                    format!("{replicas}"),
                    format!("{crash_rate:.2}"),
                    mode.to_string(),
                    crashes.to_string(),
                    format!("{goodput:.1}%"),
                    format!("{:.0} ms", i.p99_request_ms),
                    redisp.to_string(),
                    shed.to_string(),
                    format!("{down_s:.1}"),
                ]);
            }
            if crash_rate > 0.0 {
                assert!(
                    p99_by_mode[1] < p99_by_mode[0],
                    "breaker must hold the interactive p99 below naive JSQ at \
                     {replicas} replicas, crash rate {crash_rate}: \
                     {} ms (on) vs {} ms (off)",
                    p99_by_mode[1],
                    p99_by_mode[0],
                );
            }
        }
    }
    print_table(
        "Fleet availability — Llama-3-1B, 10 req/s mixed SLO load, crash/brownout schedule on seed 11, JSQ router",
        &[
            "Replicas",
            "Crash",
            "Breaker",
            "Crashes",
            "Goodput",
            "int p99 req",
            "Redisp",
            "Shed",
            "Down s",
        ],
        &rows,
    );
    println!("\nshape: crash-rate-0 rows are the immortal-fleet baseline (goodput 100%,");
    println!("no downtime; breaker on/off agree placement-for-placement while every");
    println!("breaker stays closed). Under crashes, a dead replica's freed pages make");
    println!("it the JSQ favourite, so the naive rows park new arrivals on it until");
    println!("repair and the interactive tail blows up; the breaker rows trip on the");
    println!("crash, fail over, probe half-open after repair, and hold the interactive");
    println!("p99 strictly below naive in every crashy cell (asserted). Goodput counts");
    println!("completed-of-offered; evacuated requests are redispatched, never lost.");
}
