//! Regenerates paper Fig 3: non-window KV-cache filter ratios vs. context
//! length for (a) baseline sparse, (b) hybrid, (c) hybrid + ITQ.
//!
//! Long-context points run on generated traces with Llama-3-8B head geometry
//! (`head_dim = 128`); quality constraint: attention output error ≤ 5 % of
//! dense (the perplexity-budget substitution documented in DESIGN.md).
//! Entries printed as `X` could not reach the quality target (as in the
//! paper's Fig 3a for small k).

use longsight_bench::fig3::{measure_with_rotation, trace_for, train_trace_itq, Fig3Variant};
use longsight_bench::{fmt_ctx, print_table};

fn main() {
    let head_dim = 128; // Llama-3-8B KV head geometry
    let contexts = [4_096usize, 8_192, 16_384, 32_768, 65_536, 131_072];
    let ks = [128usize, 1024];

    let mut rows = Vec::new();
    for &ctx in &contexts {
        let trace = trace_for(head_dim, ctx, 0xF163 ^ ctx as u64);
        let rotation = train_trace_itq(&trace, 1024, 0xF163);
        for &k in &ks {
            let mut row = vec![fmt_ctx(ctx), k.to_string()];
            for variant in [
                Fig3Variant::BaselineSparse,
                Fig3Variant::Hybrid,
                Fig3Variant::HybridItq,
            ] {
                let p = measure_with_rotation(&trace, variant, k, &rotation);
                row.push(match p.filter_ratio {
                    Some(r) => format!("{r:.1}x (th {}, recall {:.2})", p.threshold, p.recall),
                    None => "X".into(),
                });
            }
            rows.push(row);
        }
    }
    print_table(
        "Fig 3: non-window KV cache filter ratio (quality within 5% of dense)",
        &[
            "Context",
            "k",
            "(a) baseline sparse",
            "(b) hybrid",
            "(c) hybrid+ITQ",
        ],
        &rows,
    );

    println!("\npaper shape: hybrid more robust than baseline at long context (small-k");
    println!("baseline entries marked X); ITQ raises the achievable filter ratio at");
    println!("matched quality (up to 6.4x for Llama-3-1B / 46x for Llama-3-8B vs hybrid).");

    // §5.4 DynaX comparison row: achievable sparsity at matched quality.
    let trace = trace_for(head_dim, 32_768, 77);
    let rotation = train_trace_itq(&trace, 1024, 0xF163);
    let hybrid = measure_with_rotation(&trace, Fig3Variant::HybridItq, 1024, &rotation);
    if let Some(r) = hybrid.filter_ratio {
        // Sparsity over the full cache including window and top-k accesses.
        let window = 1024.0 + 16.0;
        let accessed = (32_768.0 - window) / r + window;
        let sparsity = 100.0 * (1.0 - accessed / 32_768.0);
        println!("\nDynaX comparison (32K, Llama-3-8B geometry): {sparsity:.1}% sparsity");
        println!("paper: 91.92% sparsity at matched perplexity (DynaX reports 91.77%)");
    }
}
