//! Regenerates paper Fig 4: accuracy vs. KV-cache filter ratio Pareto
//! frontiers at 32K context for LongSight's hybrid ITQ-enhanced algorithm.
//!
//! Accuracy axis: `1 − output_rel_err` relative to dense attention (the
//! inverse-perplexity substitution). Three named example configurations are
//! reported alongside the all-configs frontier, mirroring the figure.

use longsight_bench::fig3::{trace_for, train_trace_itq};
use longsight_bench::print_table;
use longsight_core::trace_eval::evaluate_trace;
use longsight_core::HybridConfig;

#[derive(Clone, Copy, Debug)]
struct Point {
    window: usize,
    k: usize,
    threshold: u32,
    ratio: f64,
    accuracy: f64,
}

fn main() {
    let head_dim = 128;
    let ctx = 32_768;
    let trace = trace_for(head_dim, ctx, 0xF164);
    let rotation = train_trace_itq(&trace, 1024, 0xF164);

    let windows = [256usize, 1024, 4096];
    let ks = [128usize, 256, 512, 1024];
    let mut points: Vec<Point> = Vec::new();
    for &window in &windows {
        for &k in &ks {
            for th in (0..=head_dim as u32).step_by(8) {
                let cfg = HybridConfig {
                    window,
                    sinks: 16,
                    top_k: k,
                };
                let q = evaluate_trace(&trace, &rotation, &cfg, th);
                points.push(Point {
                    window,
                    k,
                    threshold: th,
                    ratio: q.stats.filter_ratio_nonwindow(),
                    accuracy: 1.0 - q.output_rel_err,
                });
                if q.output_rel_err > 0.5 {
                    break; // deep in the useless regime
                }
            }
        }
    }

    // Pareto frontier: maximal accuracy for any given (or higher) ratio.
    let mut frontier: Vec<&Point> = points
        .iter()
        .filter(|p| {
            !points
                .iter()
                .any(|q| q.ratio > p.ratio && q.accuracy > p.accuracy)
        })
        .collect();
    frontier.sort_by(|a, b| a.ratio.total_cmp(&b.ratio));

    let rows: Vec<Vec<String>> = frontier
        .iter()
        .map(|p| {
            vec![
                format!("{:.1}x", p.ratio),
                format!("{:.4}", p.accuracy),
                p.window.to_string(),
                p.k.to_string(),
                p.threshold.to_string(),
            ]
        })
        .collect();
    print_table(
        "Fig 4: accuracy vs filter-ratio Pareto frontier at 32K (all configs)",
        &[
            "Filter ratio",
            "Accuracy (rel. dense)",
            "W",
            "k",
            "threshold",
        ],
        &rows,
    );

    // The figure's three example configurations.
    let mut examples = Vec::new();
    for (w, k) in [(256usize, 128usize), (1024, 1024), (4096, 1024)] {
        let best = points
            .iter()
            .filter(|p| p.window == w && p.k == k && p.accuracy >= 0.95)
            .max_by(|a, b| a.ratio.total_cmp(&b.ratio));
        if let Some(p) = best {
            examples.push(vec![
                format!("W={w}, k={k}"),
                format!("{:.1}x", p.ratio),
                format!("{:.4}", p.accuracy),
            ]);
        }
    }
    print_table(
        "Fig 4: example configurations (accuracy >= 0.95)",
        &["Config", "Best filter ratio", "Accuracy"],
        &examples,
    );
    println!("\npaper shape: large windows (>1024) only pay at the highest accuracy");
    println!("targets; k << 1024 only helps at the lowest accuracy targets; W=k=1024");
    println!("covers a wide range of targets with effective filtering.");
}
