//! Session reuse: prefill work and interactive tail latency vs prefix
//! reuse rate, with the content-keyed prefix cache + session-affine
//! routing against cold JSQ routing, at 2 and 4 replicas.
//!
//! Every cell sees byte-identical session traffic (the reuse draws live
//! on their own RNG stream, so sweeping the reuse rate never moves an
//! arrival, context length, or class); only the reuse rate, router, and
//! cache arming differ. The mechanism this bench pins: a follow-up turn
//! re-sends everything the model already saw, so cold routing pays full
//! re-prefill for a context that grows every turn, while the warm rows
//! resume on the replica that owns the prefix (or — in the
//! ownership-blind warm rows — pull its pages over the pooled-DReX
//! fabric when that is cheaper than recomputing) and prefill only the
//! new suffix. `results/session_reuse.txt` pins the claim; the bench
//! itself asserts that at reuse >= 0.5 every warm cell beats its cold
//! twin on both total prefill work and interactive p99, that the blind
//! rows take the pull path, and that affinity never prefills more than
//! blind routing.

use longsight_bench::print_table;
use longsight_model::ModelConfig;
use longsight_obs::Recorder;
use longsight_sched::{RouterPolicy, SchedPolicy, SloClass, SloMix};
use longsight_system::serving::{simulate_fleet_sessions, SchedOptions, WorkloadConfig};
use longsight_system::{LongSightConfig, LongSightSystem, ServingSystem, SessionOptions};

struct Cell {
    prefill_s: f64,
    p99_ms: f64,
    hits: usize,
    pulls: usize,
    cold_turns: usize,
}

fn run(replicas: usize, reuse: f64, cache_pages: usize, policy: RouterPolicy) -> Cell {
    let model = ModelConfig::llama3_1b();
    let mut fleet: Vec<Box<dyn ServingSystem>> = (0..replicas)
        .map(|_| {
            Box::new(LongSightSystem::new(
                LongSightConfig::paper_default(),
                model.clone(),
            )) as Box<dyn ServingSystem>
        })
        .collect();
    let wl = WorkloadConfig {
        arrivals_per_s: 2.0, // unused: session traffic replaces the Poisson stream
        context_tokens: (32_768, 65_536),
        output_tokens: (16, 64),
        duration_s: 16.0,
        seed: 11,
    };
    // Think times above the ~1-2 s per-turn service time (so most
    // follow-ups arrive after their prefix has been published) but with
    // enough concurrent sessions per replica that queues form: the
    // prefill work a warm resume skips then shortens everyone's wait,
    // which is what moves the tail.
    let sess = SessionOptions {
        sessions: 8 * replicas,
        turns: 4,
        think_time_ms: 3000.0,
        reuse,
        prefix_cache_pages: cache_pages,
    };
    let opts = SchedOptions {
        policy: SchedPolicy::SloAware,
        mix: SloMix::all_interactive(),
        page_tokens: 1024,
        prefill_chunk_tokens: 8192,
        prefill_slots: 1,
        hbm_watermark: 0.9,
    };
    let (_, rep) = simulate_fleet_sessions(
        &mut fleet,
        &model,
        &wl,
        &opts,
        policy,
        &sess,
        &mut Recorder::disabled(),
    );
    assert_eq!(
        rep.audit_violation, None,
        "fleet audit must pass for every cell"
    );
    let s = rep.sessions.as_ref().expect("session summary attached");
    Cell {
        prefill_s: rep.replicas.iter().map(|r| r.prefill_work_ns).sum::<f64>() / 1e9,
        p99_ms: rep.per_class[SloClass::Interactive.index()].p99_request_ms,
        hits: s.prefix_hits,
        pulls: s.pulls.len(),
        cold_turns: s.cold_turns,
    }
}

fn main() {
    let mut rows = Vec::new();
    for replicas in [2usize, 4] {
        for reuse in [0.0f64, 0.5, 0.9] {
            let warm = run(replicas, reuse, 4096, RouterPolicy::Affinity);
            // Ownership-blind routing with the cache still armed: resumes
            // land wherever JSQ sends them, so reuse must go through the
            // pooled-DReX pull path instead of the owner fast path.
            let blind = run(replicas, reuse, 4096, RouterPolicy::JsqSpillover);
            let cold = run(replicas, reuse, 0, RouterPolicy::JsqSpillover);
            for (router, cache, c) in [
                ("affinity", "4096", &warm),
                ("jsq", "4096", &blind),
                ("jsq", "off", &cold),
            ] {
                rows.push(vec![
                    format!("{replicas}"),
                    format!("{reuse:.2}"),
                    router.to_string(),
                    cache.to_string(),
                    format!("{:.2} s", c.prefill_s),
                    c.hits.to_string(),
                    c.pulls.to_string(),
                    c.cold_turns.to_string(),
                    format!("{:.0} ms", c.p99_ms),
                ]);
            }
            if reuse >= 0.5 {
                assert!(
                    blind.pulls > 0,
                    "ownership-blind warm routing must exercise the \
                     pooled-DReX pull path at {replicas} replicas, reuse {reuse}"
                );
                assert!(
                    warm.prefill_s <= blind.prefill_s,
                    "affinity must not prefill more than ownership-blind \
                     routing at {replicas} replicas, reuse {reuse}: \
                     {:.2} s vs {:.2} s",
                    warm.prefill_s,
                    blind.prefill_s,
                );
                assert!(
                    warm.prefill_s < cold.prefill_s,
                    "prefix cache + affinity must cut total prefill work at \
                     {replicas} replicas, reuse {reuse}: \
                     {:.2} s (warm) vs {:.2} s (cold)",
                    warm.prefill_s,
                    cold.prefill_s,
                );
                assert!(
                    warm.p99_ms < cold.p99_ms,
                    "prefix cache + affinity must beat cold routing on the \
                     interactive p99 at {replicas} replicas, reuse {reuse}: \
                     {:.0} ms (warm) vs {:.0} ms (cold)",
                    warm.p99_ms,
                    cold.p99_ms,
                );
            }
        }
    }
    print_table(
        "Session reuse — Llama-3-1B, 4 turns/session on seed 11, prefix cache + affinity vs cold JSQ",
        &[
            "Replicas",
            "Reuse",
            "Router",
            "Cache pg",
            "Prefill",
            "Hits",
            "Pulls",
            "Cold",
            "int p99 req",
        ],
        &rows,
    );
    println!("\nshape: each (replicas, reuse) cell runs three modes on byte-identical");
    println!("session traffic — the reuse draws live on their own RNG stream, so");
    println!("sweeping reuse moves no arrival. The affinity rows resume follow-ups");
    println!("on the replica that owns their prefix, so reuse lands as local pin");
    println!("hits (Hits); the warm jsq rows route ownership-blind, so reuse must");
    println!("go through the pooled-DReX pull path (Pulls, priced at two fabric");
    println!("hops per page) and pays slightly more prefill than affinity; the");
    println!("cache-off jsq rows are the cold baseline, re-prefilling a context");
    println!("that grows every turn. At reuse 0 the cache cannot hit and all three");
    println!("modes collapse to the same work. From reuse 0.5 up, every warm cell");
    println!("beats its cold twin on total prefill work and interactive p99, the");
    println!("blind rows exercise the pull path, and affinity prefills no more");
    println!("than blind routing (all asserted). Cold counts follow-ups whose");
    println!("prefix was unusable: edited context or a reuse-rate miss.");
}
