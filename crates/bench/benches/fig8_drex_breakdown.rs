//! Regenerates paper Fig 8: per-token latency breakdown *inside* a DReX
//! offload — single-user (top) and fully-utilized (bottom) — across context
//! lengths.

use longsight_bench::{fmt_ctx, fmt_ns, print_table};
use longsight_model::ModelConfig;
use longsight_system::{LongSightConfig, LongSightSystem};

fn main() {
    let model = ModelConfig::llama3_8b();
    let sys = LongSightSystem::new(LongSightConfig::paper_default(), model);
    let contexts = [8_192usize, 32_768, 131_072, 524_288, 1 << 20];

    for (label, users_of) in [
        (
            "single user",
            Box::new(|_sys: &LongSightSystem, _c: usize| 1usize)
                as Box<dyn Fn(&LongSightSystem, usize) -> usize>,
        ),
        (
            "fully utilized",
            Box::new(|sys: &LongSightSystem, c: usize| sys.drex_max_users(c).max(1)),
        ),
    ] {
        let mut rows = Vec::new();
        for &ctx in &contexts {
            let users = users_of(&sys, ctx);
            let (_, p) = sys.drex_layer(users, ctx);
            rows.push(vec![
                fmt_ctx(ctx),
                users.to_string(),
                fmt_ns(p.filter_ns),
                fmt_ns(p.bitmap_ns),
                fmt_ns(p.addr_gen_ns),
                fmt_ns(p.fetch_score_ns),
                fmt_ns(p.topk_ns),
                fmt_ns(p.queue_wait_ns),
                fmt_ns(p.value_cxl_ns),
                fmt_ns(p.total_ns()),
            ]);
        }
        print_table(
            &format!("Fig 8: DReX offload latency breakdown ({label}, Llama-3-8B)"),
            &[
                "Context",
                "Users",
                "Filter",
                "Bitmap",
                "AddrGen",
                "Fetch+Dot",
                "Top-k",
                "Queue",
                "Value/CXL",
                "Total",
            ],
            &rows,
        );
    }
    println!("\npaper shape: short contexts dominated by Value reads over CXL; the");
    println!("dot-product share grows with context while Value loading stays a fixed");
    println!("per-user overhead; under full utilization queueing appears and Value");
    println!("reads overlap with dot-product compute.");
}
