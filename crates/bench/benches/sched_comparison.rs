//! FIFO vs SLO-aware continuous batching on an identical mixed fleet
//! (50% interactive / 30% batch / 20% best-effort) under HBM pressure.
//!
//! Both policies see byte-identical arrivals and class draws; only the
//! scheduling decisions differ. The SLO-aware policy must strictly improve
//! the interactive p99 token latency over FIFO — that invariant is also
//! enforced by `tests/scheduler.rs`.

use longsight_bench::print_table;
use longsight_model::ModelConfig;
use longsight_obs::Recorder;
use longsight_sched::{SchedPolicy, SloClass, SloMix};
use longsight_system::serving::{simulate_scheduled, SchedOptions, WorkloadConfig};
use longsight_system::{LongSightConfig, LongSightSystem};

fn main() {
    let model = ModelConfig::llama3_1b();
    let rates = [8.0f64, 16.0];

    let mut rows = Vec::new();
    for &rate in &rates {
        let wl = WorkloadConfig {
            arrivals_per_s: rate,
            context_tokens: (16_384, 32_768),
            output_tokens: (32, 128),
            duration_s: 8.0,
            seed: 11,
        };
        for policy in [SchedPolicy::Fifo, SchedPolicy::SloAware] {
            let opts = SchedOptions {
                policy,
                mix: SloMix::mixed(),
                page_tokens: 1024,
                prefill_chunk_tokens: 128,
                prefill_slots: 1,
                hbm_watermark: 0.01,
            };
            let mut sys = LongSightSystem::new(LongSightConfig::paper_default(), model.clone());
            let mut rec = Recorder::disabled();
            let (_, rep, _) =
                simulate_scheduled(&mut sys, &model, &wl, &opts, None, &mut rec, None);
            for class in SloClass::ALL {
                let c = &rep.per_class[class.index()];
                rows.push(vec![
                    format!("{rate:.0}/s"),
                    policy.name().to_string(),
                    class.name().to_string(),
                    c.completed.to_string(),
                    c.preempted.to_string(),
                    format!("{:.2} ms", c.p50_token_ms),
                    format!("{:.2} ms", c.p99_token_ms),
                    format!("{:.0} ms", c.p99_request_ms),
                ]);
            }
            rows.push(vec![
                format!("{rate:.0}/s"),
                policy.name().to_string(),
                "(pages)".to_string(),
                format!("hbm {}/{}", rep.pages.peak_hbm, rep.pages.hbm_limit),
                format!("{} evict", rep.preemptions),
                format!("{} resume", rep.resumes),
                format!("{:.2} ms restore", rep.restore_charged_ns / 1e6),
                format!("{} chunks", rep.prefill_chunks),
            ]);
        }
    }
    print_table(
        "FIFO vs SLO-aware — Llama-3-1B, 16K-32K mixed fleet, HBM watermark 0.01",
        &[
            "Rate",
            "Policy",
            "Class",
            "Done",
            "Evicted",
            "p50 token",
            "p99 token",
            "p99 request",
        ],
        &rows,
    );
    println!("\nshape: with both policies fed byte-identical arrivals, the SLO-aware");
    println!("scheduler strictly lowers the interactive p99 token latency by evicting");
    println!("best-effort decoders to their DReX-resident tail under HBM pressure and");
    println!("admitting by class priority; best-effort pays with request latency, not");
    println!("failures — evicted work resumes from restored pages or recompute,");
    println!("whichever is cheaper.");
}
