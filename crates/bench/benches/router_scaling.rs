//! JSQ-spillover vs round-robin routing over 1, 2, and 4 replicas on a
//! skewed, best-effort-heavy fleet under HBM pressure.
//!
//! Every cell sees byte-identical arrivals and class draws (one seed pins
//! the whole offered load); only the replica count and the router differ.
//! The claim pinned by `results/router_scaling.txt`: with scavenger
//! traffic dominating the mix, JSQ-spillover keeps best-effort requests
//! off hot replicas, so the interactive p99 stays at or below round-robin
//! at 2 and 4 replicas. At 1 replica the router is a no-op and the two
//! rows must be identical.

use longsight_bench::print_table;
use longsight_model::ModelConfig;
use longsight_obs::Recorder;
use longsight_sched::{RouterPolicy, SchedPolicy, SloClass, SloMix};
use longsight_system::serving::{simulate_fleet, SchedOptions, WorkloadConfig};
use longsight_system::{LongSightConfig, LongSightSystem, ServingSystem};

fn main() {
    let model = ModelConfig::llama3_1b();
    let wl = WorkloadConfig {
        arrivals_per_s: 24.0,
        context_tokens: (16_384, 32_768),
        output_tokens: (32, 128),
        duration_s: 8.0,
        seed: 11,
    };
    let opts = SchedOptions {
        policy: SchedPolicy::SloAware,
        mix: SloMix {
            interactive: 0.2,
            batch: 0.2,
            best_effort: 0.6,
        },
        page_tokens: 1024,
        prefill_chunk_tokens: 128,
        prefill_slots: 1,
        hbm_watermark: 0.01,
    };

    let mut rows = Vec::new();
    for replicas in [1usize, 2, 4] {
        for router in [RouterPolicy::RoundRobin, RouterPolicy::JsqSpillover] {
            let mut fleet: Vec<Box<dyn ServingSystem>> = (0..replicas)
                .map(|_| {
                    Box::new(LongSightSystem::new(
                        LongSightConfig::paper_default(),
                        model.clone(),
                    )) as Box<dyn ServingSystem>
                })
                .collect();
            let mut rec = Recorder::disabled();
            let (m, rep) = simulate_fleet(&mut fleet, &model, &wl, &opts, router, &mut rec);
            assert_eq!(
                rep.audit_violation, None,
                "fleet audit must pass for every cell"
            );
            let i = &rep.per_class[SloClass::Interactive.index()];
            let be = &rep.per_class[SloClass::BestEffort.index()];
            let evictions: usize = rep.replicas.iter().map(|r| r.preemptions).sum();
            rows.push(vec![
                format!("{replicas}"),
                router.name().to_string(),
                m.completed.to_string(),
                format!("{:.1}", m.throughput_tps),
                format!("{:.2} ms", i.p50_token_ms),
                format!("{:.2} ms", i.p99_token_ms),
                format!("{:.0} ms", i.p99_request_ms),
                format!("{:.0} ms", be.p99_request_ms),
                evictions.to_string(),
            ]);
        }
    }
    print_table(
        "JSQ-spillover vs round-robin — Llama-3-1B, 24 req/s skewed mix (0.2/0.2/0.6), HBM watermark 0.01",
        &[
            "Replicas",
            "Router",
            "Done",
            "Tok/s",
            "int p50 tok",
            "int p99 tok",
            "int p99 req",
            "be p99 req",
            "Evict",
        ],
        &rows,
    );
    println!("\nshape: the routers see byte-identical arrivals; at one replica they are");
    println!("the same controller (identical rows). From two replicas up, JSQ-spillover");
    println!("sheds best-effort traffic off hot replicas (>=50% HBM occupancy) before");
    println!("batch (>=75%) and never sheds interactive, so the interactive p99 stays at");
    println!("or below round-robin while scavenger traffic pays with queueing on the");
    println!("colder replicas. Placement is a pure function of (seed, arrival index).");
}
