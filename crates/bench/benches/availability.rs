//! Degradation curves under injected faults (availability experiment).
//!
//! Sweeps fault rate × offload deadline and reports (a) the SLO capacity of
//! a faults-enabled LongSight system — how many users still fit under the
//! latency SLO as NMA stragglers, CXL CRC replays and offload deadline
//! misses pile up — and (b) the closed-loop serving counters (retried /
//! degraded / failed tokens) under token-level faults. Fault rate 0 must
//! reproduce the fault-free numbers exactly.

use longsight_bench::availability::{capacity_sweep, serving_sweep};
use longsight_bench::{fmt_ctx, print_table};
use longsight_model::ModelConfig;
use longsight_system::serving::WorkloadConfig;

fn main() {
    let model = ModelConfig::llama3_8b();
    let context = 131_072;
    let slo_ms = 50.0;
    let rates = [0.0, 0.01, 0.05, 0.10, 0.20];
    let deadlines_ms = [1.0, 2.0, 5.0];
    let probe_users = 16;
    let seed = 11;

    let points = capacity_sweep(
        &model,
        context,
        slo_ms,
        &rates,
        &deadlines_ms,
        probe_users,
        seed,
    );
    let rows: Vec<Vec<String>> = points
        .iter()
        .map(|p| {
            vec![
                format!("{:.2}", p.rate),
                format!("{:.0} ms", p.deadline_ms),
                p.capacity.users.to_string(),
                if p.capacity.users > 0 {
                    format!("{:.1}", p.capacity.throughput_tps)
                } else {
                    "-".into()
                },
                if p.capacity.users > 0 {
                    format!("{:.2} ms", p.capacity.latency_ms)
                } else {
                    "-".into()
                },
                p.retried_tokens.to_string(),
                p.degraded_tokens.to_string(),
                p.link_replays.to_string(),
                p.straggled_slices.to_string(),
            ]
        })
        .collect();
    print_table(
        &format!(
            "Availability: SLO capacity under faults — {} @ {}, {:.0} ms SLO (probe batch {probe_users}, fault seed {seed})",
            model.name,
            fmt_ctx(context),
            slo_ms
        ),
        &[
            "Fault rate",
            "Deadline",
            "Users under SLO",
            "Throughput (tok/s)",
            "Latency",
            "Retried",
            "Degraded",
            "Link replays",
            "Straggled slices",
        ],
        &rows,
    );

    let workload = WorkloadConfig {
        duration_s: 10.0,
        ..WorkloadConfig::long_context_chat()
    };
    let serving = serving_sweep(&model, &workload, &rates, seed);
    let rows: Vec<Vec<String>> = serving
        .iter()
        .map(|p| {
            let m = &p.metrics;
            vec![
                format!("{:.2}", p.rate),
                m.completed.to_string(),
                format!("{:.1}", m.throughput_tps),
                format!("{:.2} ms", m.p99_token_ms),
                m.retried_tokens.to_string(),
                m.degraded_tokens.to_string(),
                m.failed_requests.to_string(),
                format!("{:.4}", m.degraded_quality_delta),
                p.events.to_string(),
            ]
        })
        .collect();
    print_table(
        &format!(
            "Availability: closed-loop serving under token faults — {} ({:.0} s window, fault seed {seed})",
            model.name, workload.duration_s
        ),
        &[
            "Fault rate",
            "Completed",
            "Throughput (tok/s)",
            "p99 token",
            "Retried",
            "Degraded",
            "Failed",
            "Quality delta",
            "Fault events",
        ],
        &rows,
    );

    let baseline = points
        .iter()
        .find(|p| p.rate == 0.0 && p.deadline_ms == 2.0)
        .expect("sweep covers the fault-free cell");
    let worst = points
        .iter()
        .find(|p| p.rate == 0.20 && p.deadline_ms == 2.0)
        .expect("sweep covers the severe cell");
    println!(
        "\ndegradation shape: at a 2 ms deadline, capacity falls {} -> {} users as the fault rate rises 0.00 -> 0.20 (monotone non-increasing across the sweep: {})",
        baseline.capacity.users,
        worst.capacity.users,
        deadlines_ms.iter().all(|&d| {
            points
                .iter()
                .filter(|p| p.deadline_ms == d)
                .collect::<Vec<_>>()
                .windows(2)
                .all(|w| w[1].capacity.users <= w[0].capacity.users)
        })
    );
    println!(
        "rate-0 identity: the fault-free row reports {} retried, {} degraded tokens and {} fault events",
        baseline.retried_tokens,
        baseline.degraded_tokens,
        serving[0].events
    );
}
