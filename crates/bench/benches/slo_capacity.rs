//! §9.1 QoS claim: "LongSight can maintain latency Service Level Objectives
//! (SLOs) while increasing system throughput by serving more users
//! concurrently." For each context length and SLO, the largest batch each
//! system sustains and the throughput it yields.

use longsight_bench::{fmt_ctx, print_table};
use longsight_gpu::{DataParallelGpus, GpuSpec};
use longsight_model::ModelConfig;
use longsight_system::slo::max_users_under_slo;
use longsight_system::{
    AttAccSystem, GpuOnlySystem, LongSightConfig, LongSightSystem, ServingSystem,
};

fn main() {
    let model = ModelConfig::llama3_8b();
    let contexts = [32_768usize, 131_072, 524_288];
    let slos_ms = [20.0f64, 50.0];

    let mut rows = Vec::new();
    for &ctx in &contexts {
        for &slo in &slos_ms {
            let mut systems: Vec<Box<dyn ServingSystem>> = vec![
                Box::new(GpuOnlySystem {
                    gpus: DataParallelGpus::new(GpuSpec::h100_sxm(), 1),
                    model: model.clone(),
                }),
                Box::new(AttAccSystem::h100_pim(model.clone())),
                Box::new(LongSightSystem::new(
                    LongSightConfig::paper_default(),
                    model.clone(),
                )),
            ];
            for sys in &mut systems {
                let cap = max_users_under_slo(sys.as_mut(), ctx, slo);
                rows.push(vec![
                    fmt_ctx(ctx),
                    format!("{slo:.0} ms"),
                    sys.name(),
                    cap.users.to_string(),
                    if cap.users > 0 {
                        format!("{:.1}", cap.throughput_tps)
                    } else {
                        "-".into()
                    },
                    if cap.users > 0 {
                        format!("{:.1} ms", cap.latency_ms)
                    } else {
                        "-".into()
                    },
                ]);
            }
        }
    }
    print_table(
        "SLO capacity — Llama-3-8B (largest batch within the latency SLO)",
        &[
            "Context",
            "SLO",
            "System",
            "Users",
            "Throughput (tok/s)",
            "Latency",
        ],
        &rows,
    );
    println!("\npaper shape (9.1): LongSight sustains more concurrent users within an");
    println!("SLO than GPU-only serving, and the gap widens with context length.");
}
