//! Regenerates paper Fig 10: accuracy vs. normalized throughput Pareto
//! frontiers for LongSight and sliding-window attention at 32K context.
//!
//! Accuracy: attention-output fidelity relative to dense (`1 − rel_err`) on
//! a Llama-3-8B-geometry trace. Throughput: the serving simulator evaluated
//! with the *measured* filter ratio of each algorithm configuration —
//! connecting the algorithm sweep to end-to-end performance, normalized to
//! the dense 1-GPU system at the same context.

use longsight_bench::fig3::{trace_for, train_trace_itq};
use longsight_bench::print_table;
use longsight_core::trace_eval::evaluate_trace;
use longsight_core::{HybridConfig, ItqRotation};
use longsight_gpu::{DataParallelGpus, GpuSpec};
use longsight_model::ModelConfig;
use longsight_system::{
    GpuOnlySystem, LongSightConfig, LongSightSystem, ServingSystem, SlidingWindowSystem,
};

fn main() {
    let model = ModelConfig::llama3_8b();
    let ctx = 32_768usize;
    let users = 8usize;
    let trace = trace_for(128, ctx, 0xF170);
    let rotation = train_trace_itq(&trace, 1024, 0xF170);

    // Dense reference throughput.
    let mut dense = GpuOnlySystem {
        gpus: DataParallelGpus::new(GpuSpec::h100_sxm(), 1),
        model: model.clone(),
    };
    let dense_tput = dense
        .evaluate(users, ctx)
        .expect("dense fits at 32K")
        .throughput_tps;

    // LongSight frontier: sweep (W, k, threshold); accuracy from the trace,
    // throughput from the system model with the measured filter ratio.
    let mut ls_rows = Vec::new();
    for &(w, k) in &[
        (256usize, 256usize),
        (1024, 256),
        (1024, 1024),
        (4096, 1024),
    ] {
        for th in (48..=96u32).step_by(16) {
            let cfg = HybridConfig {
                window: w,
                sinks: 16,
                top_k: k,
            };
            let q = evaluate_trace(&trace, &rotation, &cfg, th);
            let accuracy = 1.0 - q.output_rel_err;
            if accuracy < 0.7 {
                continue;
            }
            let mut sys_cfg = LongSightConfig::paper_default();
            sys_cfg.hybrid = cfg;
            sys_cfg.filter_ratio = q.stats.filter_ratio_nonwindow().max(1.0);
            let mut sys = LongSightSystem::new(sys_cfg, model.clone());
            if let Ok(r) = sys.evaluate(users, ctx) {
                ls_rows.push(vec![
                    format!("W={w} k={k} th={th}"),
                    format!("{accuracy:.4}"),
                    format!("{:.2}x", r.throughput_tps / dense_tput),
                ]);
            }
        }
    }
    print_table(
        "Fig 10: LongSight accuracy vs normalized throughput (32K, 8 users)",
        &[
            "Config",
            "Accuracy (rel. dense)",
            "Throughput (x dense 1-GPU)",
        ],
        &ls_rows,
    );

    // Sliding-window frontier: accuracy = window-only trace fidelity
    // (sparse path disabled), throughput from the window system.
    let mut sw_rows = Vec::new();
    for &w in &[512usize, 1024, 4096, 8192, 16_384] {
        let cfg = HybridConfig {
            window: w,
            sinks: 16,
            top_k: 1, // negligible sparse path
        };
        let q = evaluate_trace(&trace, &ItqRotation::identity(128), &cfg, 129);
        let accuracy = 1.0 - q.output_rel_err;
        let mut sys = SlidingWindowSystem {
            gpus: DataParallelGpus::new(GpuSpec::h100_sxm(), 1),
            model: model.clone(),
            window: w,
            sinks: 16,
        };
        if let Ok(r) = sys.evaluate(users, ctx) {
            sw_rows.push(vec![
                format!("W={w}"),
                format!("{accuracy:.4}"),
                format!("{:.2}x", r.throughput_tps / dense_tput),
            ]);
        }
    }
    print_table(
        "Fig 10: sliding-window accuracy vs normalized throughput (32K, 8 users)",
        &[
            "Config",
            "Accuracy (rel. dense)",
            "Throughput (x dense 1-GPU)",
        ],
        &sw_rows,
    );

    println!("\npaper shape: LongSight substantially expands the Pareto frontier —");
    println!("at matched accuracy it delivers higher normalized throughput than any");
    println!("sliding-window configuration, which must grow W (and lose its speed");
    println!("advantage) to recover accuracy.");
}
