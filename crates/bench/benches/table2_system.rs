//! Regenerates paper Table 2: system configuration used for measurements.

use longsight_bench::print_table;
use longsight_dram::{DramTiming, Geometry};
use longsight_drex::DrexParams;
use longsight_gpu::GpuSpec;

fn main() {
    let gpu = GpuSpec::h100_sxm();
    let drex = DrexParams::paper();
    let geo = Geometry::drex();
    let t = DramTiming::lpddr5x_8533();

    let pfu_count = geo.packages * geo.channels * geo.banks;
    // Each PFU streams one 128-bit column per pfu_dim_ns.
    let pfu_bw_tbps = pfu_count as f64 * 16.0 / drex.pfu_dim_ns / 1000.0;
    let nma_bw_tbps =
        geo.packages as f64 * geo.channels as f64 * t.channel_bandwidth_gbps() / 1000.0;

    let rows = vec![
        vec![
            "GPU".into(),
            gpu.name.into(),
            format!("{:.0} TFLOP/s", gpu.flops_per_ns / 1e3),
            format!("{:.2} TB/s HBM3", gpu.hbm_bytes_per_ns / 1000.0),
            format!("{} GB", gpu.hbm_bytes / 1_000_000_000),
        ],
        vec![
            "DReX (simulated)".into(),
            format!("{} NMA, {} PFU", geo.packages, pfu_count),
            format!(
                "{:.2} TFLOP/s NMAs",
                drex.nma_flops_per_ns * geo.packages as f64 / 1e3
            ),
            format!("{nma_bw_tbps:.1} TB/s (NMAs), {pfu_bw_tbps:.1} TB/s (PFUs)"),
            format!("{} GB LPDDR5X", geo.total_bytes() >> 30),
        ],
    ];
    print_table(
        "Table 2: system configuration",
        &["Device", "Description", "Compute", "Bandwidth", "Capacity"],
        &rows,
    );
    println!("paper Table 2: H100 989 TF/s, 3.35 TB/s, 80 GB; DReX 8 NMA / 8192 PFU, 26.11 TF/s, 1.1 TB/s (NMAs), 104.9 TB/s (PFUs), 512 GB");
}
