//! Closed-loop serving under Poisson load: throughput and latency
//! percentiles vs. offered rate, for LongSight and the dense 1-GPU baseline.
//! (The operating-regime view behind Fig 7's user sweeps.)

use longsight_bench::print_table;
use longsight_gpu::{DataParallelGpus, GpuSpec};
use longsight_model::ModelConfig;
use longsight_system::serving::{simulate, WorkloadConfig};
use longsight_system::{GpuOnlySystem, LongSightConfig, LongSightSystem, ServingSystem};

fn main() {
    let model = ModelConfig::llama3_1b();
    let rates = [1.0f64, 4.0, 16.0];

    let mut rows = Vec::new();
    for &rate in &rates {
        let wl = WorkloadConfig {
            arrivals_per_s: rate,
            context_tokens: (32_768, 131_072),
            output_tokens: (32, 128),
            duration_s: 8.0,
            seed: 11,
        };
        let mut systems: Vec<Box<dyn ServingSystem>> = vec![
            Box::new(GpuOnlySystem {
                gpus: DataParallelGpus::new(GpuSpec::h100_sxm(), 1),
                model: model.clone(),
            }),
            Box::new(LongSightSystem::new(
                LongSightConfig::paper_default(),
                model.clone(),
            )),
        ];
        for sys in &mut systems {
            let m = simulate(sys.as_mut(), &model, &wl);
            rows.push(vec![
                format!("{rate:.0}/s"),
                sys.name(),
                m.completed.to_string(),
                format!("{:.1}", m.throughput_tps),
                format!("{:.1}", m.mean_batch),
                format!("{:.2} ms", m.p50_token_ms),
                format!("{:.2} ms", m.p99_token_ms),
                format!("{:.0} ms", m.p99_request_ms),
            ]);
        }
    }
    print_table(
        "Poisson load test — Llama-3-1B, 32K-128K contexts, 8 s window",
        &[
            "Rate",
            "System",
            "Done",
            "Tok/s",
            "Mean batch",
            "p50 token",
            "p99 token",
            "p99 request",
        ],
        &rows,
    );
    println!("\nshape: as offered load rises, batches grow and token latency climbs;");
    println!("LongSight keeps accepting long-context work the dense GPU must refuse");
    println!("once KV no longer fits.");
}
