//! SCF scan-kernel smoke: times the per-key `scf_pass` walk against the
//! bitplane `filter_block_packed` kernel over the same packed sign store and
//! asserts the packed path is both bit-identical and faster. This is the
//! fast CI guard for the kernel speedup (the full fig7 bench prints the same
//! table inside its golden); `perf-diff --gate` pins the packed row's
//! absolute ns/key via `results/trajectory.tsv`.

use longsight_bench::fig7::{scan_kernel_bench, scan_kernel_rows};
use longsight_bench::print_table;

fn main() {
    let b = scan_kernel_bench(65_536, 128);
    print_table(
        "SCF scan kernel: per-key vs bitplane-packed (host wall-clock)",
        &["kernel", "keys", "dim", "ns per key", "speedup"],
        &scan_kernel_rows(&b),
    );
    assert!(b.identical, "packed kernel diverged from per-key scan");
    assert!(
        b.packed_ns_per_key < b.per_key_ns_per_key,
        "packed kernel must beat the per-key scan: {:.3} vs {:.3} ns/key",
        b.packed_ns_per_key,
        b.per_key_ns_per_key
    );
    println!(
        "\nscf_kernel: packed scan {:.2}x faster than per-key at {} keys x {} dims",
        b.speedup(),
        b.keys,
        b.dim
    );
}
