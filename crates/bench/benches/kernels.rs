//! Micro-benchmarks of the hot kernels: sign packing, SCF block filtering,
//! top-k selection, ITQ rotation, full-precision scoring, and the DRAM
//! channel scheduler. Runs on the in-repo timing harness
//! ([`longsight_bench::timing`]); output shape matches the old criterion
//! goldens in `results/kernels.txt`.

use longsight_bench::timing::bench_report;
use longsight_core::{filter_block, filter_block_packed, ItqConfig, ItqRotation, PFU_BLOCK_KEYS};
use longsight_dram::{ChannelSim, DramTiming, Request};
use longsight_tensor::{vecops, Matrix, SignArena, SignBits, SimRng, TopK};
use std::hint::black_box;

fn bench_sign_packing() {
    let mut rng = SimRng::seed_from(1);
    let v = rng.normal_vec(128);
    bench_report("sign/pack_128d", Some(128), || {
        SignBits::from_slice(black_box(&v))
    });
    let q = SignBits::from_slice(&rng.normal_vec(128));
    let k = SignBits::from_slice(&v);
    bench_report("sign/concordance_128d", Some(128), || {
        black_box(&q).concordance(black_box(&k))
    });
}

fn bench_scf_block() {
    let mut rng = SimRng::seed_from(2);
    let q = SignBits::from_slice(&rng.normal_vec(128));
    let keys: Vec<SignBits> = (0..PFU_BLOCK_KEYS)
        .map(|_| SignBits::from_slice(&rng.normal_vec(128)))
        .collect();
    bench_report(
        "scf/filter_block_128x128",
        Some(PFU_BLOCK_KEYS as u64),
        || filter_block(black_box(&q), black_box(&keys), 70),
    );
    let mut arena = SignArena::new(128);
    for k in &keys {
        arena.push_bits(k);
    }
    bench_report(
        "scf/filter_packed_128x128",
        Some(PFU_BLOCK_KEYS as u64),
        || filter_block_packed(black_box(&q), black_box(&arena), 0..PFU_BLOCK_KEYS, 70),
    );
}

fn bench_topk() {
    let mut rng = SimRng::seed_from(3);
    let scores: Vec<f32> = (0..65_536).map(|_| rng.normal() as f32).collect();
    bench_report("topk/top1024_of_64k", Some(scores.len() as u64), || {
        let mut t = TopK::new(1024);
        for (i, &s) in scores.iter().enumerate() {
            t.push(s, i);
        }
        black_box(t.len())
    });
}

fn bench_scoring() {
    let mut rng = SimRng::seed_from(4);
    let q = rng.normal_vec(128);
    let keys: Vec<Vec<f32>> = (0..1024).map(|_| rng.normal_vec(128)).collect();
    bench_report("score/dot_1024x128", Some(1024), || {
        let mut acc = 0.0f32;
        for k in &keys {
            acc += vecops::dot(black_box(&q), k);
        }
        black_box(acc)
    });
}

fn bench_itq() {
    let mut rng = SimRng::seed_from(5);
    let data = Matrix::random_gaussian(256, 64, &mut rng);
    bench_report("itq_train_256x64_10it", None, || {
        ItqRotation::train(
            black_box(&data),
            &ItqConfig {
                iterations: 10,
                seed: 1,
            },
        )
    });
    let rot = ItqRotation::train(&data, &ItqConfig::default());
    let v = rng.normal_vec(64);
    bench_report("itq_apply_64d", None, || rot.apply(black_box(&v)));
}

fn bench_dram() {
    let reqs: Vec<Request> = (0..4096)
        .map(|i| Request::read(i % 64, (i / 64) % 32, i % 64))
        .collect();
    bench_report("dram/channel_4096_reqs", Some(reqs.len() as u64), || {
        let mut sim = ChannelSim::new(DramTiming::lpddr5x_8533(), 64);
        black_box(sim.run(black_box(&reqs)))
    });
}

fn main() {
    bench_sign_packing();
    bench_scf_block();
    bench_topk();
    bench_scoring();
    bench_itq();
    bench_dram();
}
