//! Criterion micro-benchmarks of the hot kernels: sign packing, SCF block
//! filtering, top-k selection, ITQ rotation, full-precision scoring, and the
//! DRAM channel scheduler.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use longsight_core::{filter_block, ItqConfig, ItqRotation, PFU_BLOCK_KEYS};
use longsight_dram::{ChannelSim, DramTiming, Request};
use longsight_tensor::{vecops, Matrix, SignBits, SimRng, TopK};
use std::hint::black_box;

fn bench_sign_packing(c: &mut Criterion) {
    let mut rng = SimRng::seed_from(1);
    let v = rng.normal_vec(128);
    let mut g = c.benchmark_group("sign");
    g.throughput(Throughput::Elements(128));
    g.bench_function("pack_128d", |b| {
        b.iter(|| SignBits::from_slice(black_box(&v)));
    });
    let q = SignBits::from_slice(&rng.normal_vec(128));
    let k = SignBits::from_slice(&v);
    g.bench_function("concordance_128d", |b| {
        b.iter(|| black_box(&q).concordance(black_box(&k)));
    });
    g.finish();
}

fn bench_scf_block(c: &mut Criterion) {
    let mut rng = SimRng::seed_from(2);
    let q = SignBits::from_slice(&rng.normal_vec(128));
    let keys: Vec<SignBits> = (0..PFU_BLOCK_KEYS)
        .map(|_| SignBits::from_slice(&rng.normal_vec(128)))
        .collect();
    let mut g = c.benchmark_group("scf");
    g.throughput(Throughput::Elements(PFU_BLOCK_KEYS as u64));
    g.bench_function("filter_block_128x128", |b| {
        b.iter(|| filter_block(black_box(&q), black_box(&keys), 70));
    });
    g.finish();
}

fn bench_topk(c: &mut Criterion) {
    let mut rng = SimRng::seed_from(3);
    let scores: Vec<f32> = (0..65_536).map(|_| rng.normal() as f32).collect();
    let mut g = c.benchmark_group("topk");
    g.throughput(Throughput::Elements(scores.len() as u64));
    g.bench_function("top1024_of_64k", |b| {
        b.iter(|| {
            let mut t = TopK::new(1024);
            for (i, &s) in scores.iter().enumerate() {
                t.push(s, i);
            }
            black_box(t.len())
        });
    });
    g.finish();
}

fn bench_scoring(c: &mut Criterion) {
    let mut rng = SimRng::seed_from(4);
    let q = rng.normal_vec(128);
    let keys: Vec<Vec<f32>> = (0..1024).map(|_| rng.normal_vec(128)).collect();
    let mut g = c.benchmark_group("score");
    g.throughput(Throughput::Elements(1024));
    g.bench_function("dot_1024x128", |b| {
        b.iter(|| {
            let mut acc = 0.0f32;
            for k in &keys {
                acc += vecops::dot(black_box(&q), k);
            }
            black_box(acc)
        });
    });
    g.finish();
}

fn bench_itq(c: &mut Criterion) {
    let mut rng = SimRng::seed_from(5);
    let data = Matrix::random_gaussian(256, 64, &mut rng);
    c.bench_function("itq_train_256x64_10it", |b| {
        b.iter(|| {
            ItqRotation::train(
                black_box(&data),
                &ItqConfig {
                    iterations: 10,
                    seed: 1,
                },
            )
        });
    });
    let rot = ItqRotation::train(&data, &ItqConfig::default());
    let v = rng.normal_vec(64);
    c.bench_function("itq_apply_64d", |b| {
        b.iter(|| rot.apply(black_box(&v)));
    });
}

fn bench_dram(c: &mut Criterion) {
    let reqs: Vec<Request> = (0..4096)
        .map(|i| Request::read(i % 64, (i / 64) % 32, i % 64))
        .collect();
    let mut g = c.benchmark_group("dram");
    g.throughput(Throughput::Elements(reqs.len() as u64));
    g.bench_function("channel_4096_reqs", |b| {
        b.iter(|| {
            let mut sim = ChannelSim::new(DramTiming::lpddr5x_8533(), 64);
            black_box(sim.run(black_box(&reqs)))
        });
    });
    g.finish();
}

criterion_group!(
    benches,
    bench_sign_packing,
    bench_scf_block,
    bench_topk,
    bench_scoring,
    bench_itq,
    bench_dram
);
criterion_main!(benches);
