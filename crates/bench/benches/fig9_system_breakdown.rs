//! Regenerates paper Fig 9: system-level per-token latency breakdown for
//! LongSight across user counts and context lengths — showing the bottleneck
//! shifting from GPU (few users) to DReX (many users, short context) and
//! back to GPU (long context, few users fit).

use longsight_bench::{fmt_ctx, fmt_ns, print_table};
use longsight_model::ModelConfig;
use longsight_system::{LongSightConfig, LongSightSystem, ServingSystem};

fn main() {
    for model in [ModelConfig::llama3_1b(), ModelConfig::llama3_8b()] {
        let mut sys = LongSightSystem::new(LongSightConfig::paper_default(), model.clone());
        let contexts = [32_768usize, 131_072, 524_288, 1 << 20];
        let mut rows = Vec::new();
        for &ctx in &contexts {
            let max_u = sys.max_users(ctx).max(1);
            for users in [1usize, (max_u / 4).max(1), max_u] {
                let Ok(r) = sys.evaluate(users, ctx) else {
                    continue;
                };
                let b = r.breakdown;
                let gpu = b.gpu_weights_ns + b.gpu_attention_ns + b.gpu_merge_ns;
                let drex = b.drex_offload_ns + b.cxl_ns;
                let bottleneck = if gpu >= drex { "GPU" } else { "DReX" };
                rows.push(vec![
                    fmt_ctx(ctx),
                    users.to_string(),
                    fmt_ns(b.gpu_weights_ns),
                    fmt_ns(b.gpu_attention_ns),
                    fmt_ns(b.gpu_merge_ns),
                    fmt_ns(b.drex_offload_ns),
                    fmt_ns(b.cxl_ns),
                    fmt_ns(r.step_ns),
                    bottleneck.into(),
                ]);
            }
        }
        print_table(
            &format!(
                "Fig 9: LongSight per-token latency breakdown — {}",
                model.name
            ),
            &[
                "Context",
                "Users",
                "GPU weights",
                "GPU attn",
                "GPU merge",
                "DReX",
                "CXL",
                "Total",
                "Bottleneck",
            ],
            &rows,
        );
    }
    println!("\npaper shape: few users -> GPU-bound at all contexts; many users at");
    println!("short context -> DReX-bound (per-user Value-load overhead); at long");
    println!("contexts fewer users fit, more NMAs serve each, and the GPU becomes");
    println!("the end-to-end bottleneck again.");
}
