//! Regenerates paper Fig 7: decode-phase throughput (across all users) and
//! per-token latency for 1-GPU, 2-GPU, AttAcc, and LongSight, across context
//! lengths and user counts. Missing entries ("-") mean the configuration
//! does not fit in memory, as in the paper.

use longsight_bench::fig7::{headline_speedup, sweep};
use longsight_bench::{fmt_ctx, print_table};
use longsight_model::ModelConfig;

fn main() {
    for model in [ModelConfig::llama3_1b(), ModelConfig::llama3_8b()] {
        // users = 1, 4, 16, and each system's max (0 sentinel).
        let points = sweep(&model, &[1, 4, 16, 0]);
        let mut rows = Vec::new();
        for p in &points {
            let (tput, lat) = match &p.report {
                Some(r) => (
                    format!("{:.1}", r.throughput_tps),
                    format!("{:.2} ms", r.latency_ms()),
                ),
                None => ("-".into(), "-".into()),
            };
            rows.push(vec![
                fmt_ctx(p.context),
                p.system.clone(),
                p.users.to_string(),
                tput,
                lat,
            ]);
        }
        print_table(
            &format!("Fig 7: decode throughput & per-token latency — {}", model.name),
            &["Context", "System", "Users", "Throughput (tok/s)", "Latency"],
            &rows,
        );

        let (tp, pu) = headline_speedup(&model);
        println!(
            "headline ({}): LongSight vs 1-GPU at max 1-GPU context: {tp:.1}x throughput, {pu:.1}x tokens/s/user",
            model.name
        );
    }
    println!("\npaper: up to 8.1-9.6x higher throughput and 3.6-11.9x higher tokens/s/user");
    println!("at the maximum context supported by one GPU; only LongSight reaches 1M");
    println!("tokens with a single GPU; 2-GPU/AttAcc win at short contexts (LongSight");
    println!("pays CXL value-transfer overhead there).");
}
