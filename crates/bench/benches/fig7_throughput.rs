//! Regenerates paper Fig 7: decode-phase throughput (across all users) and
//! per-token latency for 1-GPU, 2-GPU, AttAcc, and LongSight, across context
//! lengths and user counts. Missing entries ("-") mean the configuration
//! does not fit in memory, as in the paper.

use longsight_bench::fig7::{headline_speedup, sweep, Fig7Point};
use longsight_bench::{fmt_ctx, print_table};
use longsight_model::ModelConfig;

/// Median wall-clock of `runs` full sweeps, plus the last sweep's rows.
fn timed_sweep(model: &ModelConfig, users: &[usize], runs: usize) -> (f64, Vec<Fig7Point>) {
    let mut times = Vec::with_capacity(runs);
    let mut points = Vec::new();
    for _ in 0..runs {
        let start = std::time::Instant::now();
        points = sweep(model, users);
        times.push(start.elapsed().as_secs_f64() * 1e3);
    }
    times.sort_by(f64::total_cmp);
    (times[runs / 2], points)
}

fn main() {
    for model in [ModelConfig::llama3_1b(), ModelConfig::llama3_8b()] {
        // users = 1, 4, 16, and each system's max (0 sentinel).
        let points = sweep(&model, &[1, 4, 16, 0]);
        let mut rows = Vec::new();
        for p in &points {
            let (tput, lat) = match &p.report {
                Some(r) => (
                    format!("{:.1}", r.throughput_tps),
                    format!("{:.2} ms", r.latency_ms()),
                ),
                None => ("-".into(), "-".into()),
            };
            rows.push(vec![
                fmt_ctx(p.context),
                p.system.clone(),
                p.users.to_string(),
                tput,
                lat,
            ]);
        }
        print_table(
            &format!(
                "Fig 7: decode throughput & per-token latency — {}",
                model.name
            ),
            &[
                "Context",
                "System",
                "Users",
                "Throughput (tok/s)",
                "Latency",
            ],
            &rows,
        );

        let (tp, pu) = headline_speedup(&model);
        println!(
            "headline ({}): LongSight vs 1-GPU at max 1-GPU context: {tp:.1}x throughput, {pu:.1}x tokens/s/user",
            model.name
        );
    }
    // Serial vs. parallel wall clock on the same grid (the serving sweep is
    // the repo's hottest simulation path). Results must match bit-for-bit.
    let model = ModelConfig::llama3_8b();
    let users = [1usize, 4, 16, 0];
    longsight_exec::set_thread_count(1);
    let (serial_ms, serial_pts) = timed_sweep(&model, &users, 5);
    let cores = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    let threads = cores.max(4);
    longsight_exec::set_thread_count(threads);
    let (par_ms, par_pts) = timed_sweep(&model, &users, 5);
    longsight_exec::set_thread_count(0);
    let identical = serial_pts == par_pts;
    // The ratio only reflects parallel efficiency when the host actually has
    // spare cores; on a 1-core host the 4-thread run just pays scheduling
    // overhead. Recording the core count keeps the checked-in line honest.
    println!(
        "\nthreads-speedup: fig7 sweep ({}) 1 thread {serial_ms:.1} ms -> {threads} threads {par_ms:.1} ms = {:.2}x on a {cores}-core host (bit-identical: {})",
        model.name,
        serial_ms / par_ms,
        if identical { "yes" } else { "NO" }
    );
    assert!(identical, "parallel sweep diverged from serial sweep");

    // Host scan-kernel microbench: per-key SignBits walk vs the bitplane
    // SignArena kernel that the hybrid/trace/device scans run on. Wall-clock
    // numbers vary by host; the packed row's ns/key is pinned (generously)
    // in results/trajectory.tsv and its bit-identity is asserted here and in
    // the scf_kernel ci smoke.
    let kb = longsight_bench::fig7::scan_kernel_bench(65_536, 128);
    print_table(
        "SCF scan kernel: per-key vs bitplane-packed (host wall-clock)",
        &["kernel", "keys", "dim", "ns per key", "speedup"],
        &longsight_bench::fig7::scan_kernel_rows(&kb),
    );
    assert!(kb.identical, "packed kernel diverged from per-key scan");

    println!("\npaper: up to 8.1-9.6x higher throughput and 3.6-11.9x higher tokens/s/user");
    println!("at the maximum context supported by one GPU; only LongSight reaches 1M");
    println!("tokens with a single GPU; 2-GPU/AttAcc win at short contexts (LongSight");
    println!("pays CXL value-transfer overhead there).");
}
