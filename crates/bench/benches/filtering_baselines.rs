//! Algorithmic baseline comparison (paper §3.1, §5.1): per-token SCF vs.
//! blockwise selection (NSA/DynaX-style) vs. Reformer-style LSH, on
//! LLaMA-like key traces — cost (keys fetched) and recall of the true top-k.

use longsight_bench::fig3::{trace_for, train_trace_itq};
use longsight_bench::print_table;
use longsight_core::baseline_filters::{blockwise_surviving_indices, LshFilter};
use longsight_core::{surviving_indices, PFU_BLOCK_KEYS};
use longsight_tensor::{top_k_indices, vecops, SignBits, SimRng};

fn main() {
    let d = 128;
    let ctx = 16_384;
    let trace = trace_for(d, ctx, 0xBA5E);
    let rotation = train_trace_itq(&trace, 1024, 0xBA5E);
    let key_signs: Vec<SignBits> = trace.keys.iter().map(|k| rotation.signs(k)).collect();

    let mut rng = SimRng::seed_from(0xBA5F);
    let lsh = LshFilter::new(d, 32, 8, &mut rng);
    let key_sigs: Vec<Vec<u64>> = trace.keys.iter().map(|k| lsh.signatures(k)).collect();

    // For each method: candidate count + recall of true top-128, averaged
    // over the trace's query probes.
    let k = 128;
    let mut rows = Vec::new();
    let mut totals = vec![(0usize, 0usize); 4]; // (candidates, hits)
    let mut truth_total = 0usize;
    for probe in &trace.queries {
        let scores: Vec<f32> = trace
            .keys
            .iter()
            .map(|key| vecops::dot(&probe.q, key))
            .collect();
        let truth = top_k_indices(&scores, k);
        truth_total += truth.len();
        let q_signs = rotation.signs(&probe.q);

        // Per-token SCF at a mid threshold; blockwise at the same threshold.
        let th = 72;
        let per_token = surviving_indices(&q_signs, &key_signs, th);
        let blockwise = blockwise_surviving_indices(&q_signs, &key_signs, th, PFU_BLOCK_KEYS);
        let lsh_cands = lsh.candidates(&lsh.signatures(&probe.q), &key_sigs);
        let dense: Vec<usize> = (0..trace.keys.len()).collect();

        for (slot, cands) in [&per_token, &blockwise, &lsh_cands, &dense]
            .iter()
            .enumerate()
        {
            totals[slot].0 += cands.len();
            totals[slot].1 += truth.iter().filter(|i| cands.contains(i)).count();
        }
    }
    let n_probes = trace.queries.len();
    for (name, (cands, hits)) in [
        "per-token SCF+ITQ (th 72)",
        "blockwise SCF+ITQ (128-key blocks, th 72)",
        "LSH (32 tables x 8 bits)",
        "dense (fetch everything)",
    ]
    .iter()
    .zip(&totals)
    {
        rows.push(vec![
            name.to_string(),
            format!("{:.0}", *cands as f64 / n_probes as f64),
            format!("{:.1}x", ctx as f64 * n_probes as f64 / *cands as f64),
            format!("{:.3}", *hits as f64 / truth_total as f64),
        ]);
    }
    print_table(
        "Filtering baselines at 16K context (Llama-3-8B key geometry)",
        &[
            "Method",
            "Keys fetched/query",
            "Filter ratio",
            "Top-128 recall",
        ],
        &rows,
    );
    println!("\npaper shape (3.1/5.1): per-token filtering fetches several times fewer");
    println!("keys than block-granular selection at the same threshold; LSH needs");
    println!("multiple hash rounds/tables and still trails a tuned sign filter.");
}
