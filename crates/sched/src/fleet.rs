//! Fleet-level roll-up of per-replica scheduler reports, with the
//! cross-replica invariant audit.
//!
//! A fleet run produces one [`crate::SchedReport`] per replica plus the
//! router's placement log. [`FleetReport`] stitches them together:
//! per-class outcomes roll up by summing counts and recomputing percentiles
//! over the merged latency samples (never by averaging per-replica
//! percentiles), and the audit checks the properties no single replica can
//! see — every arrival placed exactly once, arrivals conserved across the
//! fleet, and every replica's own page-ledger audit clean.

use crate::request::SloClass;
use crate::router::RouterPolicy;
use crate::scheduler::{percentile, ClassReport, SchedReport};

/// One routing decision: `(arrival id, replica index)`.
pub type Placement = (usize, usize);

/// One request moved off a crashed (or tripped) replica and placed again
/// through the router.
#[derive(Debug, Clone, PartialEq)]
pub struct RedispatchRecord {
    /// Arrival id of the moved request.
    pub id: usize,
    /// Replica it was evacuated from.
    pub from: usize,
    /// Replica it landed on.
    pub to: usize,
    /// Simulated time of the redispatch, ns.
    pub at_ns: f64,
    /// Why it moved (e.g. `replica-crash`).
    pub reason: &'static str,
}

/// One arrival the admission controller refused fleet-wide.
#[derive(Debug, Clone, PartialEq)]
pub struct ShedRecord {
    /// Arrival id of the shed request.
    pub id: usize,
    /// Its SLO class.
    pub class: SloClass,
    /// Simulated time of the decision, ns.
    pub at_ns: f64,
    /// Why it was shed (e.g. `queue-cap`, `no-healthy-replica`).
    pub reason: &'static str,
}

/// Fleet-level fault/overload outcome of a run: crash timeline totals, the
/// redispatch and shed logs, and the offered-load denominator. `None` on a
/// [`FleetReport`] means the run had no crash profile and no shedding — the
/// report (text and JSON) is byte-identical to the pre-fault-domain format.
#[derive(Debug, Clone, PartialEq)]
pub struct FleetFaultSummary {
    /// Total arrivals the workload offered (placed + shed).
    pub offered: usize,
    /// Replica crashes observed.
    pub crashes: usize,
    /// Brownout windows observed.
    pub brownouts: usize,
    /// Per-replica downtime, ns of simulated time.
    pub downtime_ns: Vec<f64>,
    /// Every redispatch, in decision order.
    pub redispatches: Vec<RedispatchRecord>,
    /// Every shed arrival, in decision order.
    pub shed: Vec<ShedRecord>,
}

impl FleetFaultSummary {
    /// An empty summary over `replicas` replicas expecting `offered`
    /// arrivals.
    pub fn new(replicas: usize, offered: usize) -> Self {
        Self {
            offered,
            crashes: 0,
            brownouts: 0,
            downtime_ns: vec![0.0; replicas],
            redispatches: Vec::new(),
            shed: Vec::new(),
        }
    }

    /// Shed arrivals of one class.
    pub fn shed_of(&self, class: SloClass) -> usize {
        self.shed.iter().filter(|s| s.class == class).count()
    }
}

/// One cross-replica prefix pull: a resumed session landing on `to` fetched
/// its prefix pages from `from`'s cache over the pooled-DReX fabric.
#[derive(Debug, Clone, PartialEq)]
pub struct PullRecord {
    /// Arrival id of the resuming turn.
    pub id: usize,
    /// Content hash of the pulled prefix.
    pub hash: u64,
    /// Replica whose cache held the prefix.
    pub from: usize,
    /// Replica the turn was placed on.
    pub to: usize,
    /// Pages transferred.
    pub pages: usize,
    /// Simulated time of the pull, ns.
    pub at_ns: f64,
}

/// Session-workload outcome of a fleet run: turn counts, local prefix hits,
/// and the cross-replica pull log. `None` on a [`FleetReport`] means the
/// run had no session workload — text output stays byte-identical to the
/// sessionless format.
#[derive(Debug, Clone, PartialEq)]
pub struct SessionSummary {
    /// Distinct sessions offered.
    pub sessions: usize,
    /// Total turn arrivals offered (across all sessions).
    pub turns: usize,
    /// Follow-up turns that pinned their prefix in the cache of the replica
    /// they were placed on (no fabric transfer).
    pub prefix_hits: usize,
    /// Follow-up turns priced as full re-prefill (no usable cached copy, or
    /// the pull was dearer than recomputing).
    pub cold_turns: usize,
    /// Every cross-replica pull, in decision order.
    pub pulls: Vec<PullRecord>,
}

impl SessionSummary {
    /// Total pages transferred by cross-replica pulls.
    pub fn pulled_pages(&self) -> usize {
        self.pulls.iter().map(|p| p.pages).sum()
    }

    /// The one-line summary appended to fleet text reports.
    pub fn to_text(&self) -> String {
        format!(
            "  sessions: {} sessions, {} turns | prefix hits {} | pulls {} ({} pages) | cold {}\n",
            self.sessions,
            self.turns,
            self.prefix_hits,
            self.pulls.len(),
            self.pulled_pages(),
            self.cold_turns,
        )
    }
}

/// End-of-run SLO error-budget accounting from the telemetry burn-rate
/// engine (see `longsight-obs`): how much of the interactive deadline's
/// error budget the run consumed and how many alert windows fired. Defined
/// here (not in the obs crate) so both `ServeMetrics` and [`FleetReport`]
/// can carry it without a dependency cycle — sched depends on nothing.
/// `None` everywhere unless timeseries telemetry was enabled, which keeps
/// every pre-existing report byte-identical.
#[derive(Debug, Clone, PartialEq)]
pub struct SloBurnSummary {
    /// Interactive deadline in milliseconds.
    pub slo_ms: f64,
    /// Error budget as a miss fraction (0.05 = 5% may miss).
    pub budget: f64,
    /// Interactive completions observed.
    pub completions: u64,
    /// Interactive completions above the deadline.
    pub misses: u64,
    /// Fraction of the error budget consumed (`miss_frac / budget`;
    /// ≥ 1.0 means exhausted).
    pub consumed: f64,
    /// Number of base windows where both the fast and slow burn rates
    /// exceeded the alert threshold.
    pub alert_windows: u64,
    /// Start of the first alert window in simulated ms (0 when none).
    pub first_alert_ms: f64,
}

impl SloBurnSummary {
    /// The two-line summary block appended to serve/fleet text reports.
    pub fn to_text(&self) -> String {
        let mut out = format!(
            "  slo burn: deadline {} ms budget {:.1}% | {} interactive, {} missed | budget consumed {:.1}%\n",
            self.slo_ms,
            self.budget * 100.0,
            self.completions,
            self.misses,
            self.consumed * 100.0,
        );
        if self.alert_windows > 0 {
            out.push_str(&format!(
                "  slo burn alerts: {} window(s), first at {:.0} ms\n",
                self.alert_windows, self.first_alert_ms
            ));
        } else {
            out.push_str("  slo burn alerts: none\n");
        }
        out
    }
}

/// End-of-run fleet summary.
#[derive(Debug, Clone, PartialEq)]
pub struct FleetReport {
    /// Router policy that produced the placements.
    pub router: RouterPolicy,
    /// Per-replica scheduler reports, in replica order.
    pub replicas: Vec<SchedReport>,
    /// Placement log in arrival order (first placement of each arrival;
    /// redispatches are logged in [`FleetFaultSummary::redispatches`]).
    pub placements: Vec<Placement>,
    /// Fleet-wide per-class outcomes (counts summed, percentiles over the
    /// merged samples), indexed by [`SloClass::index`].
    pub per_class: [ClassReport; 3],
    /// First violated cross-replica invariant, if any (must be `None`).
    pub audit_violation: Option<String>,
    /// Crash/redispatch/shed outcome; `None` for fault-free runs.
    pub faults: Option<FleetFaultSummary>,
    /// Session-workload outcome; `None` unless the run carried a session
    /// workload (attached via [`FleetReport::attach_sessions`]).
    pub sessions: Option<SessionSummary>,
    /// SLO error-budget accounting; `None` unless timeseries telemetry was
    /// enabled for the run.
    pub slo_burn: Option<SloBurnSummary>,
}

impl FleetReport {
    /// Builds the fleet report and runs the cross-replica audit.
    ///
    /// `samples` are the merged per-class `(token, request)` latency
    /// samples across every replica; they are sorted here.
    pub fn assemble(
        router: RouterPolicy,
        replicas: Vec<SchedReport>,
        placements: Vec<Placement>,
        samples: [(Vec<f64>, Vec<f64>); 3],
    ) -> Self {
        Self::assemble_with_faults(router, replicas, placements, samples, None)
    }

    /// [`FleetReport::assemble`] with the fault/overload outcome attached;
    /// the audit then also checks the redispatch and shed logs (placed +
    /// shed = offered; per-replica arrivals = placements + redispatches
    /// into it).
    pub fn assemble_with_faults(
        router: RouterPolicy,
        replicas: Vec<SchedReport>,
        placements: Vec<Placement>,
        mut samples: [(Vec<f64>, Vec<f64>); 3],
        faults: Option<FleetFaultSummary>,
    ) -> Self {
        let audit_violation = audit(&replicas, &placements, faults.as_ref());
        let mut per_class: [ClassReport; 3] = Default::default();
        for class in SloClass::ALL {
            let i = class.index();
            let (ref mut tok, ref mut req) = samples[i];
            tok.sort_by(f64::total_cmp);
            req.sort_by(f64::total_cmp);
            let sum = |f: fn(&ClassReport) -> usize| -> usize {
                replicas.iter().map(|r| f(&r.per_class[i])).sum()
            };
            per_class[i] = ClassReport {
                arrived: sum(|c| c.arrived),
                completed: sum(|c| c.completed),
                rejected: sum(|c| c.rejected),
                failed: sum(|c| c.failed),
                preempted: sum(|c| c.preempted),
                tokens: sum(|c| c.tokens),
                p50_token_ms: percentile(tok, 0.5),
                p99_token_ms: percentile(tok, 0.99),
                p50_request_ms: percentile(req, 0.5),
                p99_request_ms: percentile(req, 0.99),
            };
        }
        Self {
            router,
            replicas,
            placements,
            per_class,
            audit_violation,
            faults,
            sessions: None,
            slo_burn: None,
        }
    }

    /// Attaches the session-workload outcome and runs the session audit:
    /// every pull names two distinct in-range replicas and a real arrival,
    /// moves at least one page, and the pull log is conserved against the
    /// replicas' own pin counters (every pin a replica recorded is either a
    /// local hit or a pull onto it — pulled = pinned elsewhere). A violation
    /// lands in [`FleetReport::audit_violation`] like any other.
    pub fn attach_sessions(&mut self, s: SessionSummary) {
        if self.audit_violation.is_none() {
            let offered = match &self.faults {
                Some(f) => f.offered,
                None => self.placements.len(),
            };
            self.audit_violation = audit_sessions(&s, &self.replicas, offered);
        }
        self.sessions = Some(s);
    }

    /// Wraps a single replica's report as a degenerate fleet: the
    /// single-replica serving path stays bit-identical (the report is
    /// embedded untouched, per-class percentiles included) and the audit
    /// still runs over the trivial placement log.
    pub fn single(router: RouterPolicy, report: SchedReport) -> Self {
        let arrived: usize = report.per_class.iter().map(|c| c.arrived).sum();
        let placements: Vec<Placement> = (0..arrived).map(|id| (id, 0)).collect();
        let replicas = vec![report];
        let audit_violation = audit(&replicas, &placements, None);
        Self {
            router,
            per_class: replicas[0].per_class.clone(),
            replicas,
            placements,
            audit_violation,
            faults: None,
            sessions: None,
            slo_burn: None,
        }
    }

    /// Total requests arrived across the fleet.
    pub fn total_arrived(&self) -> usize {
        self.per_class.iter().map(|c| c.arrived).sum()
    }

    /// The placement log as text, one `arrival -> replica` line per
    /// request — the byte-identical determinism artifact.
    pub fn placement_log(&self) -> String {
        let mut out = String::new();
        for &(id, replica) in &self.placements {
            out.push_str(&format!("{id} -> r{replica}\n"));
        }
        out
    }

    /// The fleet summary as printed by `longsight loadtest --replicas`.
    pub fn to_text(&self) -> String {
        let mut out = format!(
            "fleet report ({} router, {} replicas)\n",
            self.router.name(),
            self.replicas.len()
        );
        for (i, rep) in self.replicas.iter().enumerate() {
            let arrived: usize = rep.per_class.iter().map(|c| c.arrived).sum();
            let done: usize = rep.per_class.iter().map(|c| c.completed).sum();
            out.push_str(&format!(
                "  r{i}: arrived {arrived} done {done} | evict {} resume {} | hbm peak {}/{} | drex peak {}/{}\n",
                rep.preemptions,
                rep.resumes,
                rep.pages.peak_hbm,
                rep.pages.hbm_limit,
                rep.pages.peak_drex,
                rep.pages.drex_capacity,
            ));
        }
        out.push_str(
            "  class        arrived done rej fail evict  tok p50/p99 ms      req p50/p99 ms\n",
        );
        for class in SloClass::ALL {
            let c = &self.per_class[class.index()];
            if c.arrived == 0 {
                continue;
            }
            out.push_str(&format!(
                "  {:<12} {:>7} {:>4} {:>3} {:>4} {:>5}  {:>7.2}/{:<8.2} {:>8.1}/{:<8.1}\n",
                class.name(),
                c.arrived,
                c.completed,
                c.rejected,
                c.failed,
                c.preempted,
                c.p50_token_ms,
                c.p99_token_ms,
                c.p50_request_ms,
                c.p99_request_ms,
            ));
        }
        if let Some(f) = &self.faults {
            let done: usize = self.per_class.iter().map(|c| c.completed).sum();
            let goodput = if f.offered == 0 {
                100.0
            } else {
                100.0 * done as f64 / f.offered as f64
            };
            out.push_str(&format!(
                "  faults: crashes {} | brownouts {} | redispatched {} | shed {}\n",
                f.crashes,
                f.brownouts,
                f.redispatches.len(),
                f.shed.len(),
            ));
            let downtime: Vec<String> = f
                .downtime_ns
                .iter()
                .enumerate()
                .map(|(i, &ns)| format!("r{i} {:.2}s", ns / 1e9))
                .collect();
            out.push_str(&format!("  downtime: {}\n", downtime.join(" ")));
            out.push_str(&format!(
                "  shed by class: interactive {} batch {} best-effort {}\n",
                f.shed_of(SloClass::Interactive),
                f.shed_of(SloClass::Batch),
                f.shed_of(SloClass::BestEffort),
            ));
            out.push_str(&format!(
                "  goodput: {done} completed of {} offered ({goodput:.1}%)\n",
                f.offered
            ));
        }
        if let Some(s) = &self.sessions {
            out.push_str(&s.to_text());
        }
        if let Some(b) = &self.slo_burn {
            out.push_str(&b.to_text());
        }
        match &self.audit_violation {
            None => out.push_str("  audit: ok (each arrival placed once, arrivals conserved)\n"),
            Some(v) => out.push_str(&format!("  audit: VIOLATION — {v}\n")),
        }
        out
    }
}

/// The cross-replica invariants:
///
/// 1. No arrival id appears twice in the placement log, and no placed
///    arrival was also shed.
/// 2. Replica indices in the log are in range.
/// 3. Conservation per replica: the requests a replica saw arrive are
///    exactly the ones the router placed on it plus the ones redispatched
///    onto it after a crash.
/// 4. Conservation across the fleet: every offered arrival is placed once
///    or shed with a recorded reason — never lost.
/// 5. Every replica's own page-ledger audit is clean.
fn audit(
    replicas: &[SchedReport],
    placements: &[Placement],
    faults: Option<&FleetFaultSummary>,
) -> Option<String> {
    let offered = match faults {
        Some(f) => f.offered,
        None => placements.len(),
    };
    let mut seen = vec![false; offered];
    let mut per_replica = vec![0usize; replicas.len()];
    for &(id, replica) in placements {
        if replica >= replicas.len() {
            return Some(format!("arrival {id} placed on unknown replica {replica}"));
        }
        // Ids are assigned in arrival order, so any id at or past the
        // offered count has to be a duplicate-or-corrupt entry.
        if id >= seen.len() || seen[id] {
            return Some(format!("arrival {id} placed twice"));
        }
        seen[id] = true;
        per_replica[replica] += 1;
    }
    if let Some(f) = faults {
        for s in &f.shed {
            if s.id >= seen.len() {
                return Some(format!("shed arrival {} was never offered", s.id));
            }
            if seen[s.id] {
                return Some(format!("arrival {} both placed and shed", s.id));
            }
            seen[s.id] = true;
        }
        for r in &f.redispatches {
            if r.to >= replicas.len() || r.from >= replicas.len() {
                return Some(format!(
                    "redispatch of {} names unknown replica {} -> {}",
                    r.id, r.from, r.to
                ));
            }
            if r.id >= offered || !seen[r.id] {
                return Some(format!("redispatched arrival {} was never placed", r.id));
            }
            per_replica[r.to] += 1;
        }
        if placements.len() + f.shed.len() != offered {
            return Some(format!(
                "{} placements + {} shed != {} offered (arrivals lost)",
                placements.len(),
                f.shed.len(),
                offered
            ));
        }
    }
    let mut total = 0usize;
    for (i, rep) in replicas.iter().enumerate() {
        let arrived: usize = rep.per_class.iter().map(|c| c.arrived).sum();
        if arrived != per_replica[i] {
            return Some(format!(
                "replica {i} saw {arrived} arrivals but was routed {}",
                per_replica[i]
            ));
        }
        total += arrived;
        if rep.leaked_pages != 0 {
            return Some(format!("replica {i} leaked {} pages", rep.leaked_pages));
        }
        if let Some(v) = &rep.invariant_violation {
            return Some(format!("replica {i} ledger: {v}"));
        }
    }
    let routed = placements.len() + faults.map_or(0, |f| f.redispatches.len());
    if total != routed {
        return Some(format!(
            "{total} arrivals across replicas but {routed} routed (placements + redispatches)"
        ));
    }
    None
}

/// The session-workload invariants (see [`FleetReport::attach_sessions`]):
///
/// 1. Every pull names two distinct in-range replicas, an offered arrival,
///    and a positive page count.
/// 2. Pin conservation: the prefix pins the replicas recorded between them
///    are exactly the local hits plus the pulls — a pulled prefix is pinned
///    on its destination, so nothing is pinned that was neither hit locally
///    nor pulled from elsewhere.
/// 3. Turn conservation: every follow-up turn (turns minus the opening turn
///    of each session) was priced exactly one way — local hit, pull, or
///    cold re-prefill.
fn audit_sessions(s: &SessionSummary, replicas: &[SchedReport], offered: usize) -> Option<String> {
    for p in &s.pulls {
        if p.from >= replicas.len() || p.to >= replicas.len() {
            return Some(format!(
                "pull of {} names unknown replica {} -> {}",
                p.id, p.from, p.to
            ));
        }
        if p.from == p.to {
            return Some(format!(
                "pull of {} copies replica {} onto itself",
                p.id, p.from
            ));
        }
        if p.id >= offered {
            return Some(format!("pull of {} was never offered", p.id));
        }
        if p.pages == 0 {
            return Some(format!("pull of {} moved zero pages", p.id));
        }
    }
    let pinned: usize = replicas.iter().map(|r| r.pages.prefix_hits).sum();
    if pinned != s.prefix_hits + s.pulls.len() {
        return Some(format!(
            "{pinned} prefix pins across replicas but {} local hits + {} pulls recorded",
            s.prefix_hits,
            s.pulls.len()
        ));
    }
    if s.turns < s.sessions {
        return Some(format!(
            "{} turns for {} sessions (every session opens with a turn)",
            s.turns, s.sessions
        ));
    }
    let follow_ups = s.turns - s.sessions;
    if s.prefix_hits + s.pulls.len() + s.cold_turns != follow_ups {
        return Some(format!(
            "{} hits + {} pulls + {} cold != {follow_ups} follow-up turns (turns lost)",
            s.prefix_hits,
            s.pulls.len(),
            s.cold_turns
        ));
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pages::PageStats;
    use crate::scheduler::SchedPolicy;

    fn report(arrived_per_class: [usize; 3]) -> SchedReport {
        let mut per_class: [ClassReport; 3] = Default::default();
        for (c, &n) in per_class.iter_mut().zip(&arrived_per_class) {
            c.arrived = n;
            c.completed = n;
        }
        SchedReport {
            policy: SchedPolicy::SloAware,
            per_class,
            preemptions: 0,
            resumes: 0,
            restore_charged_ns: 0.0,
            prefill_chunks: 0,
            prefill_work_ns: 0.0,
            pages: PageStats {
                hbm_limit: 10,
                drex_capacity: 10,
                ..Default::default()
            },
            leaked_pages: 0,
            invariant_violation: None,
        }
    }

    fn no_samples() -> [(Vec<f64>, Vec<f64>); 3] {
        Default::default()
    }

    #[test]
    fn clean_fleet_passes_the_audit() {
        let f = FleetReport::assemble(
            RouterPolicy::JsqSpillover,
            vec![report([1, 1, 0]), report([1, 0, 1])],
            vec![(0, 0), (1, 1), (2, 0), (3, 1)],
            no_samples(),
        );
        assert_eq!(f.audit_violation, None);
        assert_eq!(f.total_arrived(), 4);
        assert_eq!(f.per_class[0].arrived, 2);
        assert_eq!(f.placement_log(), "0 -> r0\n1 -> r1\n2 -> r0\n3 -> r1\n");
        assert!(f.to_text().contains("audit: ok"));
    }

    #[test]
    fn double_placement_is_caught() {
        let f = FleetReport::assemble(
            RouterPolicy::RoundRobin,
            vec![report([2, 0, 0]), report([1, 0, 0])],
            vec![(0, 0), (0, 0), (1, 1)],
            no_samples(),
        );
        assert!(f.audit_violation.as_deref().unwrap().contains("twice"));
    }

    #[test]
    fn lost_arrival_is_caught() {
        // Router placed 2 on replica 0, but replica 0 only saw 1 arrive.
        let f = FleetReport::assemble(
            RouterPolicy::RoundRobin,
            vec![report([1, 0, 0]), report([1, 0, 0])],
            vec![(0, 0), (1, 0)],
            no_samples(),
        );
        assert!(f.audit_violation.is_some());
    }

    #[test]
    fn replica_ledger_violations_propagate() {
        let mut bad = report([1, 0, 0]);
        bad.leaked_pages = 3;
        let f = FleetReport::assemble(
            RouterPolicy::JsqSpillover,
            vec![bad],
            vec![(0, 0)],
            no_samples(),
        );
        assert!(f.audit_violation.as_deref().unwrap().contains("leaked"));
    }

    #[test]
    fn fault_audit_accepts_placed_plus_shed_plus_redispatched() {
        // 5 offered: 4 placed (one later redispatched 0 -> 1), 1 shed.
        // Replica 0 saw 2 arrivals (ids 0, 2); replica 1 saw 3 (ids 1, 3
        // and the redispatched 0).
        let mut f = FleetFaultSummary::new(2, 5);
        f.crashes = 1;
        f.redispatches.push(RedispatchRecord {
            id: 0,
            from: 0,
            to: 1,
            at_ns: 1e9,
            reason: "replica-crash",
        });
        f.shed.push(ShedRecord {
            id: 4,
            class: SloClass::BestEffort,
            at_ns: 2e9,
            reason: "queue-cap",
        });
        let rep = FleetReport::assemble_with_faults(
            RouterPolicy::JsqSpillover,
            vec![report([2, 0, 0]), report([3, 0, 0])],
            vec![(0, 0), (1, 1), (2, 0), (3, 1)],
            no_samples(),
            Some(f),
        );
        assert_eq!(rep.audit_violation, None);
        let text = rep.to_text();
        assert!(text.contains("crashes 1"), "{text}");
        assert!(text.contains("redispatched 1"), "{text}");
        assert!(text.contains("shed 1"), "{text}");
        assert!(text.contains("goodput:"), "{text}");
        assert!(text.contains("downtime:"), "{text}");
    }

    #[test]
    fn fault_audit_catches_lost_and_double_counted_arrivals() {
        // Arrival 2 neither placed nor shed: lost.
        let lost = FleetReport::assemble_with_faults(
            RouterPolicy::JsqSpillover,
            vec![report([2, 0, 0])],
            vec![(0, 0), (1, 0)],
            no_samples(),
            Some(FleetFaultSummary::new(1, 3)),
        );
        assert!(lost
            .audit_violation
            .as_deref()
            .unwrap()
            .contains("arrivals lost"));
        // Arrival 1 both placed and shed.
        let mut f = FleetFaultSummary::new(1, 2);
        f.shed.push(ShedRecord {
            id: 1,
            class: SloClass::Interactive,
            at_ns: 0.0,
            reason: "queue-cap",
        });
        let dup = FleetReport::assemble_with_faults(
            RouterPolicy::JsqSpillover,
            vec![report([2, 0, 0])],
            vec![(0, 0), (1, 0)],
            no_samples(),
            Some(f),
        );
        assert!(dup
            .audit_violation
            .as_deref()
            .unwrap()
            .contains("both placed and shed"));
        // A redispatch of an arrival that was never placed.
        let mut f = FleetFaultSummary::new(2, 1);
        f.redispatches.push(RedispatchRecord {
            id: 7,
            from: 0,
            to: 1,
            at_ns: 0.0,
            reason: "replica-crash",
        });
        let ghost = FleetReport::assemble_with_faults(
            RouterPolicy::JsqSpillover,
            vec![report([1, 0, 0]), report([0, 0, 0])],
            vec![(0, 0)],
            no_samples(),
            Some(f),
        );
        assert!(ghost
            .audit_violation
            .as_deref()
            .unwrap()
            .contains("never placed"));
    }

    #[test]
    fn fault_free_summary_lines_are_absent() {
        let f = FleetReport::assemble(
            RouterPolicy::JsqSpillover,
            vec![report([1, 0, 0])],
            vec![(0, 0)],
            no_samples(),
        );
        assert_eq!(f.faults, None);
        let text = f.to_text();
        assert!(!text.contains("faults:"), "{text}");
        assert!(!text.contains("goodput:"), "{text}");
        assert!(!text.contains("sessions:"), "{text}");
    }

    #[test]
    fn session_audit_accepts_conserved_pulls() {
        // 2 sessions x 2 turns: one follow-up hit locally on r0, the other
        // pulled r0 -> r1. Each pin shows up in exactly one replica's stats.
        let mut r0 = report([2, 0, 0]);
        r0.pages.prefix_hits = 1;
        let mut r1 = report([2, 0, 0]);
        r1.pages.prefix_hits = 1;
        let mut f = FleetReport::assemble(
            RouterPolicy::Affinity,
            vec![r0, r1],
            vec![(0, 0), (1, 1), (2, 0), (3, 1)],
            no_samples(),
        );
        f.attach_sessions(SessionSummary {
            sessions: 2,
            turns: 4,
            prefix_hits: 1,
            cold_turns: 0,
            pulls: vec![PullRecord {
                id: 3,
                hash: 0xfeed,
                from: 0,
                to: 1,
                pages: 4,
                at_ns: 1e9,
            }],
        });
        assert_eq!(f.audit_violation, None);
        let text = f.to_text();
        assert!(
            text.contains(
                "sessions: 2 sessions, 4 turns | prefix hits 1 | pulls 1 (4 pages) | cold 0"
            ),
            "{text}"
        );
    }

    #[test]
    fn session_audit_catches_bad_pulls_and_lost_turns() {
        let base = || {
            FleetReport::assemble(
                RouterPolicy::Affinity,
                vec![report([2, 0, 0]), report([2, 0, 0])],
                vec![(0, 0), (1, 1), (2, 0), (3, 1)],
                no_samples(),
            )
        };
        let pull = |from: usize, to: usize, pages: usize| PullRecord {
            id: 3,
            hash: 1,
            from,
            to,
            pages,
            at_ns: 0.0,
        };
        let sess = |pulls: Vec<PullRecord>, hits: usize, cold: usize| SessionSummary {
            sessions: 2,
            turns: 4,
            prefix_hits: hits,
            cold_turns: cold,
            pulls,
        };
        // Self-pull.
        let mut f = base();
        f.attach_sessions(sess(vec![pull(1, 1, 4)], 0, 1));
        assert!(f
            .audit_violation
            .as_deref()
            .unwrap()
            .contains("onto itself"));
        // Zero pages.
        let mut f = base();
        f.attach_sessions(sess(vec![pull(0, 1, 0)], 0, 1));
        assert!(f.audit_violation.as_deref().unwrap().contains("zero pages"));
        // Pin-count mismatch: summary claims a pull but no replica pinned.
        let mut f = base();
        f.attach_sessions(sess(vec![pull(0, 1, 4)], 0, 1));
        assert!(
            f.audit_violation
                .as_deref()
                .unwrap()
                .contains("prefix pins"),
            "{:?}",
            f.audit_violation
        );
        // Lost turn: 2 follow-ups but only 1 priced.
        let mut f = base();
        f.attach_sessions(sess(Vec::new(), 0, 1));
        assert!(
            f.audit_violation.as_deref().unwrap().contains("turns lost"),
            "{:?}",
            f.audit_violation
        );
    }

    #[test]
    fn roll_up_merges_samples_not_percentiles() {
        // Replica 0 has fast tokens, replica 1 slow ones; the fleet p99
        // must come from the merged population, not an average.
        let mut samples = no_samples();
        samples[0].0 = vec![1.0, 1.0, 1.0];
        let f = FleetReport::assemble(
            RouterPolicy::JsqSpillover,
            vec![report([2, 0, 0]), report([1, 0, 0])],
            vec![(0, 0), (1, 0), (2, 1)],
            {
                samples[0].0.push(9.0);
                samples
            },
        );
        assert_eq!(f.per_class[0].p99_token_ms, 9.0);
        assert_eq!(f.per_class[0].p50_token_ms, 1.0);
    }
}
