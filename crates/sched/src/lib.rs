//! longsight-sched — SLO-aware continuous batching over a paged HBM/DReX
//! KV cache.
//!
//! LongSight's two-tier KV layout (HBM-resident sliding window + sinks,
//! long-range tail on DReX) induces a natural paged memory hierarchy. This
//! crate turns that hierarchy into an admission-control and scheduling
//! problem:
//!
//! * [`PagedKvManager`] is the block-granular page ledger: every request
//!   holds window pages against the HBM capacity (gated by a watermark) and
//!   tail pages against the DReX capacity. Admission becomes a memory
//!   decision, and the ledger's invariants (no leaks, watermark never
//!   exceeded) are cheap to audit at the end of a run.
//! * [`Scheduler`] is the continuous-batching state machine: SLO-class
//!   priority queues ([`SloClass`]), chunked prefill interleaved with
//!   decode steps, preemption-by-eviction of best-effort requests to
//!   DReX-resident state, and a deterministic restore-or-recompute cost on
//!   resume.
//!
//! A fleet of replicas scales the same machinery out:
//!
//! * [`Router`] is the deterministic front end over N (GPU, DReX)
//!   replicas: join-shortest-queue on free HBM pages with class-aware
//!   spillover ([`RouterPolicy::JsqSpillover`]), or load-blind round-robin
//!   as the baseline. Each replica keeps its own [`Scheduler`] and
//!   [`PagedKvManager`]; the router only picks where an arrival lands,
//!   from a [`SchedLoad`] snapshot taken at arrival time.
//! * [`FleetReport`] rolls per-replica reports up (counts summed,
//!   percentiles over the merged samples) and audits the cross-replica
//!   invariants: every arrival placed exactly once, arrivals conserved,
//!   every replica's page ledger clean.
//!
//! The crate is dependency-free and knows nothing about latency models or
//! observability: feasibility is a callback, costs arrive precomputed on
//! each [`SchedRequest`], and decisions come back as [`SchedEvent`]s. The
//! serving loop in `longsight-system` owns simulated time and translates
//! events into trace instants, which keeps every scheduling decision —
//! including fleet placement — a pure function of the (seed, workload,
//! config) triple — bit-identical at any thread count.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod fleet;
pub mod pages;
pub mod request;
pub mod router;
pub mod scheduler;

pub use fleet::{
    FleetFaultSummary, FleetReport, Placement, PullRecord, RedispatchRecord, SessionSummary,
    ShedRecord, SloBurnSummary,
};
pub use pages::{AllocError, PageConfig, PageStats, PagedKvManager};
pub use request::{KvDeviceGeometry, ResumePath, SchedRequest, SloClass, SloMix};
pub use router::{
    BreakerConfig, BreakerState, CircuitBreaker, RouteError, Router, RouterPolicy, SchedLoad,
};
pub use scheduler::{
    ActiveEntry, ClassReport, Completion, Evacuated, SchedConfig, SchedEvent, SchedPolicy,
    SchedReport, Scheduler, StepPlan,
};
