//! Continuous-batching scheduler with SLO classes, chunked prefill, and
//! preemption-by-eviction over the paged KV manager.
//!
//! The scheduler owns the admission/queueing/preemption state machine; the
//! serving loop owns simulated time and step costs. Feasibility questions
//! flow through a callback (`feasible(users, max_ctx)`) so the scheduler
//! stays free of any latency model, and decisions come back as
//! [`SchedEvent`]s for the caller to translate into trace instants.
//!
//! Two policies share the machinery:
//!
//! * [`SchedPolicy::Fifo`] reproduces the legacy serving loop op-for-op:
//!   arrival-order admission by step feasibility, no chunked prefill
//!   (prefill folds into the request's own latency), no preemption. Pages
//!   are tracked but never refuse — admission is the feasibility check.
//! * [`SchedPolicy::SloAware`] admits by the page ledger first (strict
//!   priority with head-of-line order per class), interleaves chunked
//!   prefill with decode steps, and evicts best-effort requests to
//!   DReX-resident state when a higher class cannot get HBM pages, charging
//!   the deterministic restore-or-recompute cost on resume.

use crate::pages::{PageConfig, PageStats, PagedKvManager};
use crate::request::{SchedRequest, SloClass};

/// Scheduling policy.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SchedPolicy {
    /// Legacy arrival-order admission (bit-identical to the pre-scheduler
    /// serving loop).
    Fifo,
    /// SLO-class priority admission with paged-memory admission control,
    /// chunked prefill, and best-effort preemption.
    SloAware,
}

impl SchedPolicy {
    /// Parses a CLI policy name (`fifo` or `slo-aware`).
    ///
    /// # Errors
    ///
    /// Returns a message naming the accepted forms.
    pub fn parse(s: &str) -> Result<Self, String> {
        match s {
            "fifo" => Ok(SchedPolicy::Fifo),
            "slo-aware" | "slo_aware" | "sloaware" => Ok(SchedPolicy::SloAware),
            other => Err(format!(
                "invalid scheduler policy '{other}' (use fifo or slo-aware)"
            )),
        }
    }

    /// Short display name.
    pub fn name(self) -> &'static str {
        match self {
            SchedPolicy::Fifo => "fifo",
            SchedPolicy::SloAware => "slo-aware",
        }
    }
}

/// Scheduler configuration.
#[derive(Debug, Clone)]
pub struct SchedConfig {
    /// Policy.
    pub policy: SchedPolicy,
    /// Page-tier capacities.
    pub pages: PageConfig,
    /// Whether the page ledger refuses allocations (SLO-aware) or only
    /// tracks them (FIFO).
    pub enforce_pages: bool,
    /// Tokens kept HBM-resident per request; larger contexts spill their
    /// tail to DReX pages. `usize::MAX` keeps everything HBM-resident.
    pub window_tokens: usize,
    /// Prefill chunk size in prompt tokens (SLO-aware): each scheduled
    /// chunk contributes `prefill_ns × chunk/context` of work to one step.
    pub prefill_chunk_tokens: usize,
    /// Concurrent requests advancing prefill per step. Must be ≥ 1: a
    /// zero-slot scheduler could never finish a prefill, so callers (the
    /// CLI rejects `--prefill-slots 0` up front) must validate before
    /// constructing the config.
    pub prefill_slots: usize,
    /// Low watermark for resuming preempted requests, as a fraction of HBM
    /// capacity. Eviction triggers at the high watermark
    /// (`pages.hbm_watermark`); a preempted request only resumes once usage
    /// would stay at or under `floor(capacity × low)`. Equal watermarks
    /// (the default) disable hysteresis and reproduce the legacy
    /// evict-at-the-ceiling / resume-at-the-ceiling behavior bit-for-bit.
    pub hbm_low_watermark: f64,
}

impl SchedConfig {
    /// FIFO over an untracked (non-enforcing) page ledger — the legacy
    /// serving semantics.
    pub fn fifo(pages: PageConfig, window_tokens: usize) -> Self {
        Self {
            policy: SchedPolicy::Fifo,
            pages,
            enforce_pages: false,
            window_tokens,
            prefill_chunk_tokens: 8192,
            prefill_slots: 1,
            hbm_low_watermark: pages.hbm_watermark,
        }
    }

    /// SLO-aware over an enforcing page ledger.
    pub fn slo_aware(pages: PageConfig, window_tokens: usize, prefill_chunk_tokens: usize) -> Self {
        Self {
            policy: SchedPolicy::SloAware,
            pages,
            enforce_pages: true,
            window_tokens,
            prefill_chunk_tokens: prefill_chunk_tokens.max(1),
            prefill_slots: 1,
            hbm_low_watermark: pages.hbm_watermark,
        }
    }

    /// The resume ceiling in pages: `floor(capacity × low_watermark)`,
    /// snapped like [`PageConfig::hbm_limit_pages`] and never above the
    /// eviction (high) limit.
    fn resume_limit_pages(&self) -> usize {
        let low = PageConfig {
            hbm_watermark: self.hbm_low_watermark,
            ..self.pages
        };
        low.hbm_limit_pages().min(self.pages.hbm_limit_pages())
    }

    fn hbm_pages_for(&self, context: usize) -> usize {
        self.pages.pages_for(context.min(self.window_tokens))
    }

    fn drex_pages_for(&self, context: usize) -> usize {
        self.pages
            .pages_for(context.saturating_sub(self.window_tokens))
    }

    fn chunk_ns_for(&self, req: &SchedRequest) -> f64 {
        if self.prefill_chunk_tokens >= req.context || req.context == 0 {
            req.prefill_ns
        } else {
            req.prefill_ns * (self.prefill_chunk_tokens as f64 / req.context as f64)
        }
    }
}

/// One request in the running batch.
#[derive(Debug, Clone)]
pub struct ActiveEntry {
    /// The request.
    pub req: SchedRequest,
    /// Output tokens left to decode.
    pub remaining: usize,
    /// Tokens decoded so far (the fault-stream token index).
    pub generated: usize,
    /// Prefill (or resume) work left before this request decodes, ns.
    pub prefill_left_ns: f64,
    /// Whether this member decodes in the step planned by
    /// [`Scheduler::plan_step`].
    pub in_decode: bool,
    /// Whether degradation already released the DReX tail.
    pub window_only: bool,
    chunk_ns: f64,
}

#[derive(Debug, Clone)]
struct Waiting {
    req: SchedRequest,
    remaining: usize,
    generated: usize,
    preempted: bool,
    prefill_left_ns: f64,
    window_only: bool,
}

/// A request evacuated from a crashed replica, carrying its decode
/// progress so the router can place it again elsewhere.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Evacuated {
    /// The request descriptor (original arrival time included, so the
    /// crash's latency cost lands in the request's own tail).
    pub req: SchedRequest,
    /// Output tokens still to decode.
    pub remaining: usize,
    /// Tokens decoded before the crash.
    pub generated: usize,
    /// Prefill work still outstanding at crash time, ns (0 when the
    /// request had already reached decode).
    pub prefill_left_ns: f64,
}

/// A scheduling decision, for the caller to emit as a `sched.*` instant.
#[derive(Debug, Clone, PartialEq)]
pub enum SchedEvent {
    /// A request joined the running batch.
    Admitted {
        /// Request ID.
        id: usize,
        /// SLO class.
        class: SloClass,
    },
    /// A request entered the wait queue.
    Queued {
        /// Request ID.
        id: usize,
        /// SLO class.
        class: SloClass,
    },
    /// A request can never be served and was rejected at arrival.
    Rejected {
        /// Request ID.
        id: usize,
        /// SLO class.
        class: SloClass,
    },
    /// A best-effort request was evicted to DReX-resident state.
    Preempted {
        /// Request ID.
        id: usize,
        /// SLO class.
        class: SloClass,
        /// HBM window pages released by the eviction.
        hbm_pages: usize,
    },
    /// A preempted request rejoined the batch.
    Resumed {
        /// Request ID.
        id: usize,
        /// SLO class.
        class: SloClass,
        /// Resume cost charged before it decodes again, ns.
        cost_ns: f64,
        /// `true` when the window restores from DReX, `false` when it
        /// recomputes on the GPU.
        restored: bool,
    },
    /// A degraded request released its DReX tail pages.
    Degraded {
        /// Request ID.
        id: usize,
        /// DReX pages released.
        drex_pages: usize,
    },
    /// A request finished decoding.
    Completed {
        /// Request ID.
        id: usize,
        /// SLO class.
        class: SloClass,
        /// End-to-end latency, ms.
        latency_ms: f64,
    },
    /// A request died under an injected hard fault.
    Failed {
        /// Request ID.
        id: usize,
        /// SLO class.
        class: SloClass,
    },
}

/// What the next synchronized step looks like.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StepPlan {
    /// All batch members (decoding + prefilling).
    pub users: usize,
    /// Members decoding this step.
    pub decode_users: usize,
    /// Largest context among decoding members (0 when none decode).
    pub max_decode_ctx: usize,
    /// Total chunked-prefill work sharing this step, ns.
    pub prefill_ns: f64,
    /// Members advancing prefill this step.
    pub prefill_users: usize,
}

/// A request that completed in the step just advanced.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Completion {
    /// Request ID.
    pub id: usize,
    /// SLO class.
    pub class: SloClass,
    /// End-to-end latency (arrival to last token), ms.
    pub latency_ms: f64,
}

#[derive(Debug, Clone, Default)]
struct ClassAccum {
    arrived: usize,
    completed: usize,
    rejected: usize,
    failed: usize,
    preempted: usize,
    tokens: usize,
    token_lat_ms: Vec<f64>,
    request_lat_ms: Vec<f64>,
}

/// Per-class outcome summary.
///
/// Percentiles use the **ceil nearest-rank** convention:
/// `sorted[ceil(len × p) - 1]`, the smallest sample with at least `p` of
/// the population at or below it. In particular, p99 over fewer than 100
/// samples is the maximum, and p50 of an even-sized population is the
/// lower median.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct ClassReport {
    /// Requests that arrived in this class.
    pub arrived: usize,
    /// Requests fully served.
    pub completed: usize,
    /// Requests rejected at arrival.
    pub rejected: usize,
    /// Requests killed by hard faults.
    pub failed: usize,
    /// Eviction count (a request may be evicted more than once).
    pub preempted: usize,
    /// Tokens decoded.
    pub tokens: usize,
    /// Median per-token latency, ms.
    pub p50_token_ms: f64,
    /// 99th-percentile per-token latency, ms.
    pub p99_token_ms: f64,
    /// Median end-to-end request latency, ms.
    pub p50_request_ms: f64,
    /// 99th-percentile request latency, ms.
    pub p99_request_ms: f64,
}

/// End-of-run scheduler report: per-class latency percentiles, preemption
/// counters, and the page-ledger audit.
#[derive(Debug, Clone, PartialEq)]
pub struct SchedReport {
    /// Policy that produced this report.
    pub policy: SchedPolicy,
    /// Per-class outcomes, indexed by [`SloClass::index`].
    pub per_class: [ClassReport; 3],
    /// Total evictions.
    pub preemptions: usize,
    /// Total resumes of evicted requests.
    pub resumes: usize,
    /// Total resume cost charged, ns.
    pub restore_charged_ns: f64,
    /// Prefill chunks executed.
    pub prefill_chunks: usize,
    /// Total prefill and resume work this replica executed, ns. Chunked
    /// prefill accumulates per executed chunk; FIFO counts the folded
    /// prefill at immediate admission. The `session_reuse` golden asserts
    /// this falls as prefix reuse rises.
    pub prefill_work_ns: f64,
    /// Final page-ledger usage and peaks.
    pub pages: PageStats,
    /// Pages still held by requests no longer active or queued (must be 0).
    pub leaked_pages: usize,
    /// First violated page invariant, if any (must be `None`).
    pub invariant_violation: Option<String>,
}

impl SchedReport {
    /// The per-class table as printed by `longsight loadtest --sched`.
    pub fn to_text(&self) -> String {
        let mut out = format!("scheduler report ({} policy)\n", self.policy.name());
        out.push_str(
            "  class        arrived done rej fail evict  tok p50/p99 ms      req p50/p99 ms\n",
        );
        for class in SloClass::ALL {
            let c = &self.per_class[class.index()];
            if c.arrived == 0 {
                continue;
            }
            out.push_str(&format!(
                "  {:<12} {:>7} {:>4} {:>3} {:>4} {:>5}  {:>7.2}/{:<8.2} {:>8.1}/{:<8.1}\n",
                class.name(),
                c.arrived,
                c.completed,
                c.rejected,
                c.failed,
                c.preempted,
                c.p50_token_ms,
                c.p99_token_ms,
                c.p50_request_ms,
                c.p99_request_ms,
            ));
        }
        out.push_str(&format!(
            "  pages: hbm peak {}/{} | drex peak {}/{} | preemptions {} (resumes {}, restore {:.2} ms) | prefill chunks {} | leaked {}\n",
            self.pages.peak_hbm,
            self.pages.hbm_limit,
            self.pages.peak_drex,
            self.pages.drex_capacity,
            self.preemptions,
            self.resumes,
            self.restore_charged_ns / 1e6,
            self.prefill_chunks,
            self.leaked_pages,
        ));
        if self.pages.prefix_capacity > 0 {
            let pins = self.pages.prefix_hits + self.pages.prefix_misses;
            out.push_str(&format!(
                "  prefix cache: {}/{} pages | pinned {} | hits {}/{} | reclaims {}\n",
                self.pages.prefix_pages,
                self.pages.prefix_capacity,
                self.pages.prefix_pinned,
                self.pages.prefix_hits,
                pins,
                self.pages.prefix_reclaims,
            ));
        }
        out
    }
}

/// Ceil nearest-rank percentile: the smallest sample such that at least
/// `p` of the population is ≤ it, i.e. `sorted[ceil(len × p) - 1]`.
///
/// The previous `.round()` nearest-rank collapsed p99 over small samples
/// onto p50-adjacent ranks (and rounded half *up* at p50, picking the
/// upper median); the ceil convention is monotone in `p` and pins p99 of
/// a <100-sample population to the maximum, which is what the SLO tables
/// report.
pub(crate) fn percentile(sorted: &[f64], p: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    let rank = (sorted.len() as f64 * p).ceil() as usize;
    sorted[rank.clamp(1, sorted.len()) - 1]
}

/// The continuous-batching scheduler state machine.
#[derive(Debug, Clone)]
pub struct Scheduler {
    cfg: SchedConfig,
    pages: PagedKvManager,
    active: Vec<ActiveEntry>,
    waiting: Vec<Waiting>,
    chunks: Vec<(usize, f64)>,
    events: Vec<SchedEvent>,
    record_events: bool,
    rejected: usize,
    preemptions: usize,
    resumes: usize,
    restore_charged_ns: f64,
    prefill_chunks: usize,
    prefill_work_ns: f64,
    class: [ClassAccum; 3],
}

impl Scheduler {
    /// Creates a scheduler over `cfg`.
    pub fn new(cfg: SchedConfig) -> Self {
        debug_assert!(
            cfg.prefill_slots >= 1,
            "prefill_slots = 0 can never finish a prefill; validate before construction"
        );
        let pages = PagedKvManager::new(cfg.pages, cfg.enforce_pages);
        Self {
            cfg,
            pages,
            active: Vec::new(),
            waiting: Vec::new(),
            chunks: Vec::new(),
            events: Vec::new(),
            record_events: false,
            rejected: 0,
            preemptions: 0,
            resumes: 0,
            restore_charged_ns: 0.0,
            prefill_chunks: 0,
            prefill_work_ns: 0.0,
            class: Default::default(),
        }
    }

    /// Enables decision-event collection (for trace emission). Events never
    /// influence scheduling, so this cannot perturb the simulated timeline.
    pub fn set_event_recording(&mut self, on: bool) {
        self.record_events = on;
    }

    fn emit(&mut self, ev: SchedEvent) {
        if self.record_events {
            self.events.push(ev);
        }
    }

    /// Drains the decision events accumulated since the last call.
    pub fn take_events(&mut self) -> Vec<SchedEvent> {
        std::mem::take(&mut self.events)
    }

    /// The running batch, in admission order.
    pub fn active(&self) -> &[ActiveEntry] {
        &self.active
    }

    /// Whether the running batch is empty.
    pub fn active_is_empty(&self) -> bool {
        self.active.is_empty()
    }

    /// Members decoding in the currently planned step (after any deaths).
    pub fn decoding_count(&self) -> usize {
        self.active.iter().filter(|a| a.in_decode).count()
    }

    /// Requests waiting for admission.
    pub fn waiting_len(&self) -> usize {
        self.waiting.len()
    }

    /// Waiting requests of one class — the admission controller's
    /// queue-depth signal.
    pub fn queue_depth(&self, class: SloClass) -> usize {
        self.waiting.iter().filter(|w| w.req.class == class).count()
    }

    /// Waiting requests of every class in one pass, indexed by
    /// [`SloClass::index`] — the telemetry sampler's per-step snapshot.
    pub fn queue_depths(&self) -> [usize; 3] {
        let mut depths = [0usize; 3];
        for w in &self.waiting {
            depths[w.req.class.index()] += 1;
        }
        depths
    }

    /// A replica crash: every page is lost and every in-flight request —
    /// active or queued — is evacuated for redispatch through the router.
    /// Returns the evacuees sorted by arrival id (the canonical redispatch
    /// order). Arrival/outcome counters stay: the requests did arrive here;
    /// where they end up is the fleet's bookkeeping.
    pub fn crash_evacuate(&mut self) -> Vec<Evacuated> {
        self.chunks.clear();
        let active = std::mem::take(&mut self.active);
        let waiting = std::mem::take(&mut self.waiting);
        let mut out = Vec::with_capacity(active.len() + waiting.len());
        for a in active {
            self.pages.free_all(a.req.id);
            out.push(Evacuated {
                req: a.req,
                remaining: a.remaining,
                generated: a.generated,
                prefill_left_ns: a.prefill_left_ns,
            });
        }
        for w in waiting {
            self.pages.free_all(w.req.id);
            out.push(Evacuated {
                req: w.req,
                remaining: w.remaining,
                generated: w.generated,
                prefill_left_ns: w.prefill_left_ns,
            });
        }
        // Prefix discipline under a crash: each evacuee drops its *pin*
        // (refcount decrement), never the shared frames — a prefix pinned by
        // several sessions must survive any one of them evacuating. Only
        // after every pin is dropped does the wipe reclaim the cache
        // wholesale (the pooled-tier content died with the replica). The
        // evacuees' prefix handles are cleared so the redispatch target
        // never unpins a pin it does not hold.
        for e in &mut out {
            if let Some(h) = e.req.prefix_hash.take() {
                self.pages.prefix_unpin(h);
            }
            e.req.pull_ns = f64::INFINITY;
        }
        self.pages.prefix_crash_clear();
        out.sort_by_key(|e| e.req.id);
        out
    }

    /// Accepts a request evacuated from a crashed replica. The KV state
    /// died with the donor, so the request queues behind a deterministic
    /// rebuild charge: requests caught mid-prefill redo the full prefill,
    /// requests that had reached decode pay the restore-vs-recompute
    /// resume cost from the device geometry.
    pub fn on_redispatch(&mut self, e: Evacuated) {
        self.class[e.req.class.index()].arrived += 1;
        let prefill_left_ns = if e.prefill_left_ns > 0.0 {
            e.req.prefill_ns
        } else {
            e.req.resume_cost_ns()
        };
        self.waiting.push(Waiting {
            req: e.req,
            remaining: e.remaining.max(1),
            generated: e.generated,
            preempted: false,
            prefill_left_ns,
            window_only: false,
        });
        self.emit(SchedEvent::Queued {
            id: e.req.id,
            class: e.req.class,
        });
    }

    /// Requests rejected at arrival.
    pub fn rejected(&self) -> usize {
        self.rejected
    }

    /// The page ledger (for invariant checks in tests).
    pub fn pages(&self) -> &PagedKvManager {
        &self.pages
    }

    /// Mutable page ledger — the fleet driver's handle for arming the
    /// prefix cache and pinning/publishing prefixes at injection time. The
    /// scheduler itself only ever *releases* pins (completion, failure,
    /// crash); taking them is a placement decision that lives upstream.
    pub fn pages_mut(&mut self) -> &mut PagedKvManager {
        &mut self.pages
    }

    /// A point-in-time load snapshot for fleet routing: batch and queue
    /// depth plus page usage against the two tier limits.
    pub fn load(&self) -> crate::router::SchedLoad {
        crate::router::SchedLoad {
            active: self.active.len(),
            waiting: self.waiting.len(),
            hbm_used: self.pages.hbm_used(),
            hbm_limit: self.cfg.pages.hbm_limit_pages(),
            drex_used: self.pages.drex_used(),
            drex_capacity: self.cfg.pages.drex_capacity_pages,
        }
    }

    /// Per-class `(token, request)` latency samples accumulated so far, in
    /// recording order. Fleet roll-ups merge these across replicas and
    /// recompute percentiles over the union — averaging per-replica
    /// percentiles would be wrong.
    pub fn class_samples(&self) -> [(&[f64], &[f64]); 3] {
        [0, 1, 2].map(|i| {
            (
                self.class[i].token_lat_ms.as_slice(),
                self.class[i].request_lat_ms.as_slice(),
            )
        })
    }

    fn alloc_tracked(&mut self, id: usize, hbm: usize, drex: usize) {
        // The FIFO ledger is non-enforcing, so this cannot refuse; if a
        // caller misconfigures an enforcing FIFO ledger, the entry is simply
        // not tracked (pages never gate FIFO decisions).
        let _ = self.pages.try_alloc(id, hbm, drex);
    }

    /// Offers an arriving request. `feasible(users, max_ctx)` must answer
    /// whether the system can evaluate a step of that shape.
    ///
    /// FIFO reproduces the legacy loop exactly: join the batch when the
    /// grown batch evaluates at the largest member context (prefill folds
    /// into the request's own latency), reject when even a lone step can
    /// never evaluate, queue otherwise. SLO-aware rejects requests that can
    /// never fit (by feasibility or by page capacity) and queues everything
    /// else; admission happens in [`Scheduler::drain_queue`].
    pub fn on_arrival(
        &mut self,
        req: SchedRequest,
        feasible: &mut dyn FnMut(usize, usize) -> bool,
    ) {
        self.class[req.class.index()].arrived += 1;
        match self.cfg.policy {
            SchedPolicy::Fifo => {
                let max_ctx = self
                    .active
                    .iter()
                    .map(|r| r.req.context)
                    .fold(req.context, usize::max);
                if feasible(self.active.len() + 1, max_ctx) {
                    let mut admitted = req;
                    admitted.arrival_ns -= req.prefill_ns; // fold prefill into latency
                    self.prefill_work_ns += req.prefill_ns;
                    let (hbm, drex) = (
                        self.cfg.hbm_pages_for(req.context),
                        self.cfg.drex_pages_for(req.context),
                    );
                    self.alloc_tracked(admitted.id, hbm, drex);
                    self.active.push(ActiveEntry {
                        req: admitted,
                        remaining: req.output.max(1),
                        generated: 0,
                        prefill_left_ns: 0.0,
                        in_decode: true,
                        window_only: false,
                        chunk_ns: 0.0,
                    });
                    self.emit(SchedEvent::Admitted {
                        id: req.id,
                        class: req.class,
                    });
                } else if !feasible(1, req.context) {
                    self.rejected += 1; // can never be served
                    self.class[req.class.index()].rejected += 1;
                    self.emit(SchedEvent::Rejected {
                        id: req.id,
                        class: req.class,
                    });
                } else {
                    self.waiting.push(Waiting {
                        req,
                        remaining: req.output.max(1),
                        generated: 0,
                        preempted: false,
                        prefill_left_ns: req.prefill_ns,
                        window_only: false,
                    });
                    self.emit(SchedEvent::Queued {
                        id: req.id,
                        class: req.class,
                    });
                }
            }
            SchedPolicy::SloAware => {
                let hbm = self.cfg.hbm_pages_for(req.context);
                let drex = self.cfg.drex_pages_for(req.context);
                let never_fits = hbm > self.pages.config().hbm_limit_pages()
                    || drex > self.pages.config().drex_capacity_pages;
                if never_fits || !feasible(1, req.context) {
                    self.rejected += 1;
                    self.class[req.class.index()].rejected += 1;
                    self.emit(SchedEvent::Rejected {
                        id: req.id,
                        class: req.class,
                    });
                } else {
                    self.waiting.push(Waiting {
                        req,
                        remaining: req.output.max(1),
                        generated: 0,
                        preempted: false,
                        prefill_left_ns: req.prefill_ns,
                        window_only: false,
                    });
                    self.emit(SchedEvent::Queued {
                        id: req.id,
                        class: req.class,
                    });
                }
            }
        }
    }

    /// Admits waiting requests while capacity allows.
    ///
    /// FIFO scans the queue in arrival order and admits every request whose
    /// grown batch evaluates (the legacy `retain`). SLO-aware repeatedly
    /// picks the highest-priority head (class, then arrival order), admits
    /// it by the page ledger — evicting best-effort requests if a higher
    /// class needs HBM pages — and stops at the first head it cannot place
    /// (strict head-of-line, so a lower class can never slip past a blocked
    /// higher class).
    pub fn drain_queue(&mut self, feasible: &mut dyn FnMut(usize, usize) -> bool) {
        match self.cfg.policy {
            SchedPolicy::Fifo => {
                let mut queue = std::mem::take(&mut self.waiting);
                queue.retain(|w| {
                    let max_ctx = self
                        .active
                        .iter()
                        .map(|r| r.req.context)
                        .fold(w.req.context, usize::max);
                    if feasible(self.active.len() + 1, max_ctx) {
                        // Legacy semantics: queue-admitted requests join
                        // decode directly (their prefill was not folded).
                        let (hbm, drex) = (
                            self.cfg.hbm_pages_for(w.req.context),
                            self.cfg.drex_pages_for(w.req.context),
                        );
                        self.alloc_tracked(w.req.id, hbm, drex);
                        self.active.push(ActiveEntry {
                            req: w.req,
                            remaining: w.remaining,
                            generated: w.generated,
                            prefill_left_ns: 0.0,
                            in_decode: true,
                            window_only: false,
                            chunk_ns: 0.0,
                        });
                        self.emit(SchedEvent::Admitted {
                            id: w.req.id,
                            class: w.req.class,
                        });
                        false
                    } else {
                        true
                    }
                });
                self.waiting = queue;
            }
            SchedPolicy::SloAware => {
                while let Some(pick) = (0..self.waiting.len())
                    .min_by_key(|&i| (self.waiting[i].req.class.index(), self.waiting[i].req.id))
                {
                    if !self.try_admit(pick, feasible) {
                        break;
                    }
                }
            }
        }
    }

    /// Attempts to place `self.waiting[pick]` (SLO-aware). Returns whether
    /// it was admitted (and removed from the queue).
    fn try_admit(&mut self, pick: usize, feasible: &mut dyn FnMut(usize, usize) -> bool) -> bool {
        let req = self.waiting[pick].req;
        let need_hbm = self.cfg.hbm_pages_for(req.context);
        // Memory decision first: evict best-effort members if a higher
        // class cannot get its window pages under the watermark.
        while !self.pages.hbm_fits(need_hbm) && req.class != SloClass::BestEffort {
            let Some(victim) = self
                .active
                .iter()
                .rposition(|a| a.req.class == SloClass::BestEffort)
            else {
                break;
            };
            self.evict(victim);
        }
        if !self.pages.hbm_fits(need_hbm) {
            return false;
        }
        // Hysteresis: a preempted request resumes only when usage stays at
        // or under the low watermark, so an eviction at the ceiling is not
        // immediately undone by a resume back to the ceiling (ping-pong).
        // With equal watermarks this is exactly the hbm_fits check above.
        if self.waiting[pick].preempted
            && self.pages.hbm_used() + need_hbm > self.cfg.resume_limit_pages()
        {
            return false;
        }
        if !self.waiting[pick].preempted
            && !self.pages.drex_fits(self.cfg.drex_pages_for(req.context))
        {
            return false;
        }
        // Feasibility belt: never admit a batch the step model cannot
        // evaluate (e.g. the DCC queue depth).
        let max_ctx = self
            .active
            .iter()
            .map(|r| r.req.context)
            .fold(req.context, usize::max);
        if !feasible(self.active.len() + 1, max_ctx) {
            return false;
        }

        // Allocate before dequeuing so a refused ledger (already checked
        // above, so only reachable through ledger drift) degrades to "stays
        // queued" instead of a panic.
        if self.waiting[pick].preempted {
            if self.pages.regain_hbm(req.id, need_hbm).is_err() {
                return false;
            }
        } else if self
            .pages
            .try_alloc(req.id, need_hbm, self.cfg.drex_pages_for(req.context))
            .is_err()
        {
            return false;
        }

        let w = self.waiting.remove(pick);
        if w.preempted {
            let cost = w.req.resume_cost_ns();
            self.resumes += 1;
            self.restore_charged_ns += cost;
            self.active.push(ActiveEntry {
                req: w.req,
                remaining: w.remaining,
                generated: w.generated,
                prefill_left_ns: w.prefill_left_ns + cost,
                in_decode: false,
                window_only: w.window_only,
                chunk_ns: self.cfg.chunk_ns_for(&w.req),
            });
            self.emit(SchedEvent::Resumed {
                id: w.req.id,
                class: w.req.class,
                cost_ns: cost,
                restored: w.req.resume_restores(),
            });
        } else {
            self.active.push(ActiveEntry {
                req: w.req,
                remaining: w.remaining,
                generated: w.generated,
                prefill_left_ns: w.prefill_left_ns,
                in_decode: false,
                window_only: w.window_only,
                chunk_ns: self.cfg.chunk_ns_for(&w.req),
            });
            self.emit(SchedEvent::Admitted {
                id: w.req.id,
                class: w.req.class,
            });
        }
        true
    }

    /// Evicts `self.active[pos]` to DReX-resident state.
    fn evict(&mut self, pos: usize) {
        let a = self.active.remove(pos);
        let freed = self.pages.release_hbm(a.req.id);
        self.preemptions += 1;
        self.class[a.req.class.index()].preempted += 1;
        self.waiting.push(Waiting {
            req: a.req,
            remaining: a.remaining,
            generated: a.generated,
            preempted: true,
            prefill_left_ns: a.prefill_left_ns,
            window_only: a.window_only,
        });
        self.emit(SchedEvent::Preempted {
            id: a.req.id,
            class: a.req.class,
            hbm_pages: freed,
        });
    }

    /// Plans the next synchronized step: who decodes, who advances prefill,
    /// and how much chunked-prefill work shares the step.
    pub fn plan_step(&mut self) -> StepPlan {
        self.chunks.clear();
        match self.cfg.policy {
            SchedPolicy::Fifo => {
                for a in &mut self.active {
                    a.in_decode = true;
                }
                let users = self.active.len();
                let max_ctx = self.active.iter().map(|r| r.req.context).max().unwrap_or(0);
                StepPlan {
                    users,
                    decode_users: users,
                    max_decode_ctx: max_ctx,
                    prefill_ns: 0.0,
                    prefill_users: 0,
                }
            }
            SchedPolicy::SloAware => {
                let mut decode_users = 0usize;
                let mut max_ctx = 0usize;
                for a in &mut self.active {
                    a.in_decode = a.prefill_left_ns <= 0.0;
                    if a.in_decode {
                        decode_users += 1;
                        max_ctx = max_ctx.max(a.req.context);
                    }
                }
                let mut slots = self.cfg.prefill_slots;
                let mut prefill_ns = 0.0f64;
                let mut prefill_users = 0usize;
                for a in &self.active {
                    if slots == 0 {
                        break;
                    }
                    if !a.in_decode {
                        // A zero-prefill request can still owe resume cost;
                        // drain it in one chunk rather than stalling.
                        let budget = if a.chunk_ns > 0.0 {
                            a.chunk_ns
                        } else {
                            a.prefill_left_ns
                        };
                        let chunk = budget.min(a.prefill_left_ns);
                        self.chunks.push((a.req.id, chunk));
                        prefill_ns += chunk;
                        prefill_users += 1;
                        slots -= 1;
                    }
                }
                StepPlan {
                    users: self.active.len(),
                    decode_users,
                    max_decode_ctx: max_ctx,
                    prefill_ns,
                    prefill_users,
                }
            }
        }
    }

    /// Removes hard-failed requests from the batch, freeing their pages.
    pub fn remove_failed(&mut self, dead: &[usize]) {
        if dead.is_empty() {
            return;
        }
        let mut i = 0;
        while i < self.active.len() {
            if dead.contains(&self.active[i].req.id) {
                let a = self.active.remove(i);
                self.pages.free_all(a.req.id);
                if let Some(h) = a.req.prefix_hash {
                    self.pages.prefix_unpin(h);
                }
                self.class[a.req.class.index()].failed += 1;
                self.emit(SchedEvent::Failed {
                    id: a.req.id,
                    class: a.req.class,
                });
            } else {
                i += 1;
            }
        }
    }

    /// A degraded request abandons its long-range tail: release its DReX
    /// pages (idempotent per request).
    pub fn on_degraded(&mut self, id: usize) {
        let Some(i) = self.active.iter().position(|a| a.req.id == id) else {
            return;
        };
        if self.active[i].window_only {
            return;
        }
        self.active[i].window_only = true;
        let freed = self.pages.release_drex(id);
        self.emit(SchedEvent::Degraded {
            id,
            drex_pages: freed,
        });
    }

    /// Applies one step of duration `dt` ending at simulated time `now`:
    /// chunked prefill advances, decoding members emit one token each, and
    /// finished requests retire (freeing their pages). Returns completions
    /// in batch order.
    pub fn advance_step(&mut self, dt: f64, now: f64) -> Vec<Completion> {
        let chunks = std::mem::take(&mut self.chunks);
        for (id, chunk) in chunks {
            if let Some(a) = self.active.iter_mut().find(|a| a.req.id == id) {
                a.prefill_left_ns -= chunk;
                if a.prefill_left_ns <= 1e-6 {
                    a.prefill_left_ns = 0.0;
                }
                self.prefill_chunks += 1;
                self.prefill_work_ns += chunk;
            }
        }
        // Per-class token latencies, capped at 64 per step like the global
        // serving histogram.
        let mut counted = 0usize;
        for i in 0..self.active.len() {
            if !self.active[i].in_decode {
                continue;
            }
            let cls = self.active[i].req.class.index();
            if counted < 64 {
                self.class[cls].token_lat_ms.push(dt / 1e6);
                counted += 1;
            }
            self.class[cls].tokens += 1;
            self.active[i].remaining -= 1;
            self.active[i].generated += 1;
        }
        let mut done = Vec::new();
        let mut i = 0;
        while i < self.active.len() {
            if self.active[i].remaining == 0 {
                let a = self.active.remove(i);
                let latency_ms = (now - a.req.arrival_ns) / 1e6;
                self.pages.free_all(a.req.id);
                if let Some(h) = a.req.prefix_hash {
                    self.pages.prefix_unpin(h);
                }
                let cls = a.req.class.index();
                self.class[cls].completed += 1;
                self.class[cls].request_lat_ms.push(latency_ms);
                self.emit(SchedEvent::Completed {
                    id: a.req.id,
                    class: a.req.class,
                    latency_ms,
                });
                done.push(Completion {
                    id: a.req.id,
                    class: a.req.class,
                    latency_ms,
                });
            } else {
                i += 1;
            }
        }
        done
    }

    /// Builds the end-of-run report, auditing the page ledger: every page
    /// still held must belong to a request that is still active or waiting.
    pub fn finalize(&mut self) -> SchedReport {
        let mut leaked = 0usize;
        for id in self.pages.holder_ids() {
            let live = self.active.iter().any(|a| a.req.id == id)
                || self.waiting.iter().any(|w| w.req.id == id);
            if !live {
                let (h, d) = self.pages.pages_of(id).unwrap_or((0, 0));
                leaked += h + d;
            }
        }
        let mut invariant_violation = self.pages.check_invariants().err();
        // Refcount ≡ live sessions: every outstanding prefix pin must be
        // held by a request that is still active or waiting, one pin each.
        if invariant_violation.is_none() && self.pages.prefix_capacity() > 0 {
            let live_pins = self
                .active
                .iter()
                .filter(|a| a.req.prefix_hash.is_some())
                .count()
                + self
                    .waiting
                    .iter()
                    .filter(|w| w.req.prefix_hash.is_some())
                    .count();
            let refs = self.pages.prefix_pinned_refs();
            if refs != live_pins {
                invariant_violation = Some(format!(
                    "prefix pin drift: {refs} refs held vs {live_pins} live pinned requests"
                ));
            }
        }
        let mut per_class: [ClassReport; 3] = Default::default();
        for (out, acc) in per_class.iter_mut().zip(self.class.iter_mut()) {
            acc.token_lat_ms.sort_by(f64::total_cmp);
            acc.request_lat_ms.sort_by(f64::total_cmp);
            *out = ClassReport {
                arrived: acc.arrived,
                completed: acc.completed,
                rejected: acc.rejected,
                failed: acc.failed,
                preempted: acc.preempted,
                tokens: acc.tokens,
                p50_token_ms: percentile(&acc.token_lat_ms, 0.5),
                p99_token_ms: percentile(&acc.token_lat_ms, 0.99),
                p50_request_ms: percentile(&acc.request_lat_ms, 0.5),
                p99_request_ms: percentile(&acc.request_lat_ms, 0.99),
            };
        }
        SchedReport {
            policy: self.cfg.policy,
            per_class,
            preemptions: self.preemptions,
            resumes: self.resumes,
            restore_charged_ns: self.restore_charged_ns,
            prefill_chunks: self.prefill_chunks,
            prefill_work_ns: self.prefill_work_ns,
            pages: self.pages.stats(),
            leaked_pages: leaked,
            invariant_violation,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::request::SloMix;

    fn req(id: usize, class: SloClass, context: usize, output: usize) -> SchedRequest {
        SchedRequest {
            id,
            class,
            arrival_ns: id as f64 * 1000.0,
            context,
            output,
            prefill_ns: 1e5,
            restore_ns: 1e4,
            recompute_ns: 5e4,
            pull_ns: f64::INFINITY,
            prefix_hash: None,
        }
    }

    fn slo_cfg() -> SchedConfig {
        SchedConfig::slo_aware(
            PageConfig {
                page_tokens: 1024,
                hbm_capacity_pages: 4,
                drex_capacity_pages: 1000,
                hbm_watermark: 1.0,
            },
            1024, // one HBM page per request
            8192,
        )
    }

    #[test]
    fn fifo_admits_in_arrival_order() {
        let mut s = Scheduler::new(SchedConfig::fifo(PageConfig::unbounded(1024), 1024));
        let mut feas = |users: usize, _ctx: usize| users <= 2;
        s.on_arrival(req(0, SloClass::Interactive, 4096, 4), &mut feas);
        s.on_arrival(req(1, SloClass::Interactive, 4096, 4), &mut feas);
        s.on_arrival(req(2, SloClass::Interactive, 4096, 4), &mut feas);
        assert_eq!(s.active().len(), 2);
        assert_eq!(s.waiting_len(), 1);
        // Pages tracked even though never enforced.
        assert_eq!(s.pages().hbm_used(), 2);
        let plan = s.plan_step();
        assert_eq!(plan.decode_users, 2);
        assert_eq!(plan.prefill_ns, 0.0);
    }

    #[test]
    fn fifo_rejects_the_never_servable() {
        let mut s = Scheduler::new(SchedConfig::fifo(PageConfig::unbounded(1024), 1024));
        let mut feas = |_users: usize, ctx: usize| ctx <= 8192;
        s.on_arrival(req(0, SloClass::Interactive, 100_000, 4), &mut feas);
        assert_eq!(s.rejected(), 1);
        assert_eq!(s.active().len(), 0);
    }

    #[test]
    fn slo_admission_is_a_memory_decision() {
        // 4 HBM pages, 1 page per request: the 5th stays queued even though
        // the step model would accept it.
        let mut s = Scheduler::new(slo_cfg());
        let mut feas = |_u: usize, _c: usize| true;
        for i in 0..5 {
            s.on_arrival(req(i, SloClass::Interactive, 1024, 4), &mut feas);
        }
        s.drain_queue(&mut feas);
        assert_eq!(s.active().len(), 4);
        assert_eq!(s.waiting_len(), 1);
        assert_eq!(s.pages().hbm_used(), 4);
    }

    #[test]
    fn interactive_evicts_best_effort_for_hbm() {
        let mut s = Scheduler::new(slo_cfg());
        let mut feas = |_u: usize, _c: usize| true;
        for i in 0..4 {
            s.on_arrival(req(i, SloClass::BestEffort, 4096, 8), &mut feas);
        }
        s.drain_queue(&mut feas);
        assert_eq!(s.active().len(), 4);
        // An interactive arrival must displace the most recent best-effort
        // member, which keeps its DReX tail while waiting.
        s.on_arrival(req(9, SloClass::Interactive, 4096, 8), &mut feas);
        s.drain_queue(&mut feas);
        let classes: Vec<SloClass> = s.active().iter().map(|a| a.req.class).collect();
        assert!(classes.contains(&SloClass::Interactive));
        assert_eq!(s.active().len(), 4);
        assert_eq!(s.waiting_len(), 1);
        let rep = s.finalize();
        assert_eq!(rep.preemptions, 1);
        assert_eq!(rep.leaked_pages, 0);
        assert_eq!(rep.invariant_violation, None);
        // The evicted request still holds its DReX tail (3 pages of 3072
        // non-window tokens), but no HBM.
        let evicted = rep.pages.holders;
        assert_eq!(evicted, 5); // 4 active + 1 preempted
    }

    #[test]
    fn best_effort_never_evicts_best_effort() {
        let mut s = Scheduler::new(slo_cfg());
        let mut feas = |_u: usize, _c: usize| true;
        for i in 0..5 {
            s.on_arrival(req(i, SloClass::BestEffort, 4096, 8), &mut feas);
        }
        s.drain_queue(&mut feas);
        assert_eq!(s.active().len(), 4);
        assert_eq!(s.waiting_len(), 1);
        assert_eq!(s.finalize().preemptions, 0);
    }

    #[test]
    fn resume_charges_the_cheaper_of_restore_and_recompute() {
        let mut s = Scheduler::new(slo_cfg());
        let mut feas = |_u: usize, _c: usize| true;
        let mut be = req(0, SloClass::BestEffort, 4096, 8);
        be.prefill_ns = 0.0; // decodes immediately once admitted
        s.on_arrival(be, &mut feas);
        s.drain_queue(&mut feas);
        // Fill HBM so the interactive arrival forces an eviction.
        for i in 1..4 {
            s.on_arrival(req(i, SloClass::Interactive, 1024, 8), &mut feas);
        }
        s.on_arrival(req(4, SloClass::Interactive, 4096, 8), &mut feas);
        s.drain_queue(&mut feas);
        let rep_mid = s.pages().stats();
        assert!(rep_mid.hbm_used <= 4);
        // Retire the interactive requests so the best-effort one resumes.
        let mut now = 0.0;
        for _ in 0..64 {
            s.drain_queue(&mut feas);
            if s.active_is_empty() {
                break;
            }
            let _ = s.plan_step();
            now += 1e6;
            let _ = s.advance_step(1e6, now);
        }
        let rep = s.finalize();
        assert_eq!(rep.preemptions, 1);
        assert_eq!(rep.resumes, 1);
        assert_eq!(rep.restore_charged_ns, 1e4); // restore_ns < recompute_ns
        assert_eq!(rep.leaked_pages, 0);
        assert_eq!(rep.per_class[SloClass::BestEffort.index()].completed, 1);
    }

    #[test]
    fn chunked_prefill_shares_steps() {
        let mut s = Scheduler::new(slo_cfg());
        let mut feas = |_u: usize, _c: usize| true;
        // 16K context with 8K chunks: two chunks to finish prefill.
        let mut r = req(0, SloClass::Interactive, 16_384, 2);
        r.prefill_ns = 2e6;
        let mut cfg_probe = slo_cfg();
        cfg_probe.pages.hbm_capacity_pages = 100;
        let mut s2 = Scheduler::new(cfg_probe);
        let _ = &mut s;
        s2.on_arrival(r, &mut feas);
        s2.drain_queue(&mut feas);
        let p1 = s2.plan_step();
        assert_eq!(p1.decode_users, 0);
        assert_eq!(p1.prefill_users, 1);
        assert!((p1.prefill_ns - 1e6).abs() < 1e-6); // half the prefill
        let _ = s2.advance_step(p1.prefill_ns, 1e6);
        let p2 = s2.plan_step();
        assert_eq!(p2.prefill_users, 1);
        let _ = s2.advance_step(p2.prefill_ns, 2e6);
        let p3 = s2.plan_step();
        assert_eq!(p3.decode_users, 1, "prefill finished after two chunks");
        let rep = s2.finalize();
        assert_eq!(rep.prefill_chunks, 2);
    }

    #[test]
    fn degradation_releases_the_tail() {
        let mut s = Scheduler::new(slo_cfg());
        let mut feas = |_u: usize, _c: usize| true;
        s.on_arrival(req(0, SloClass::Interactive, 4096, 8), &mut feas);
        s.drain_queue(&mut feas);
        let before = s.pages().drex_used();
        assert!(before > 0);
        s.on_degraded(0);
        assert_eq!(s.pages().drex_used(), 0);
        s.on_degraded(0); // idempotent
        assert_eq!(s.pages().drex_used(), 0);
    }

    #[test]
    fn percentile_uses_ceil_nearest_rank() {
        // p99 over any sample smaller than 100 must be the maximum: with
        // the old `.round()` convention a 4-sample p99 landed on index
        // round(3 × 0.99) = 3 (correct) but a 50-sample p99 landed on
        // round(49 × 0.99) = 49 only by luck of rounding — and p50 of an
        // even population rounded *up* to the upper median.
        let four = [1.0, 2.0, 3.0, 4.0];
        assert_eq!(percentile(&four, 0.99), 4.0);
        assert_eq!(percentile(&four, 0.5), 2.0, "lower median");
        assert_eq!(percentile(&four, 1.0), 4.0);
        assert_eq!(percentile(&four, 0.0), 1.0, "rank clamps to 1");
        let one = [7.0];
        assert_eq!(percentile(&one, 0.5), 7.0);
        assert_eq!(percentile(&one, 0.99), 7.0);
        assert_eq!(percentile(&[], 0.99), 0.0);
        // 50 samples: ceil(50 × 0.99) = 50 → the maximum, and
        // ceil(50 × 0.5) = 25 → the lower median.
        let fifty: Vec<f64> = (1..=50).map(|i| i as f64).collect();
        assert_eq!(percentile(&fifty, 0.99), 50.0);
        assert_eq!(percentile(&fifty, 0.5), 25.0);
        // Monotone in p.
        let mut last = f64::NEG_INFINITY;
        for i in 0..=20 {
            let v = percentile(&fifty, i as f64 / 20.0);
            assert!(v >= last);
            last = v;
        }
    }

    #[test]
    fn crash_evacuate_drains_everything_and_frees_all_pages() {
        let mut s = Scheduler::new(slo_cfg());
        let mut feas = |_u: usize, _c: usize| true;
        for i in 0..6 {
            s.on_arrival(req(i, SloClass::Interactive, 1024, 4), &mut feas);
        }
        s.drain_queue(&mut feas);
        assert_eq!(s.active().len(), 4);
        assert_eq!(s.waiting_len(), 2);
        assert_eq!(s.queue_depth(SloClass::Interactive), 2);
        assert_eq!(s.queue_depth(SloClass::Batch), 0);
        let evac = s.crash_evacuate();
        assert_eq!(evac.len(), 6);
        // Canonical order: sorted by arrival id.
        let ids: Vec<usize> = evac.iter().map(|e| e.req.id).collect();
        assert_eq!(ids, vec![0, 1, 2, 3, 4, 5]);
        assert!(s.active_is_empty());
        assert_eq!(s.waiting_len(), 0);
        assert_eq!(s.pages().hbm_used(), 0);
        assert_eq!(s.pages().drex_used(), 0);
        let rep = s.finalize();
        assert_eq!(rep.leaked_pages, 0);
        assert_eq!(rep.invariant_violation, None);
        // Arrivals stay counted where they landed.
        assert_eq!(rep.per_class[SloClass::Interactive.index()].arrived, 6);
    }

    #[test]
    fn redispatch_charges_rebuild_cost_and_counts_an_arrival() {
        let mut donor = Scheduler::new(slo_cfg());
        let mut feas = |_u: usize, _c: usize| true;
        // One request that reached decode, one caught mid-prefill.
        let mut decoded = req(0, SloClass::Interactive, 1024, 8);
        decoded.prefill_ns = 0.0;
        donor.on_arrival(decoded, &mut feas);
        // 16K context over 8K chunks: still mid-prefill after one step.
        let mut mid = req(1, SloClass::Batch, 16_384, 8);
        mid.prefill_ns = 2e6;
        donor.on_arrival(mid, &mut feas);
        donor.drain_queue(&mut feas);
        let _ = donor.plan_step();
        let _ = donor.advance_step(1e6, 1e6); // id 0 decodes one token
        let evac = donor.crash_evacuate();
        assert_eq!(evac.len(), 2);
        assert_eq!(evac[0].generated, 1);
        assert!(evac[1].prefill_left_ns > 0.0, "still mid-prefill");

        let mut target = Scheduler::new(slo_cfg());
        for e in &evac {
            target.on_redispatch(*e);
        }
        assert_eq!(target.waiting_len(), 2);
        target.drain_queue(&mut feas);
        assert_eq!(target.active().len(), 2);
        // The decoded request pays the resume cost (restore < recompute in
        // this fixture); the mid-prefill one redoes its full prefill.
        let a0 = &target.active()[0];
        assert_eq!(a0.req.id, 0);
        assert_eq!(a0.prefill_left_ns, evac[0].req.resume_cost_ns());
        let a1 = &target.active()[1];
        assert_eq!(a1.req.id, 1);
        assert_eq!(a1.prefill_left_ns, evac[1].req.prefill_ns);
        let rep = target.finalize();
        assert_eq!(rep.per_class[SloClass::Interactive.index()].arrived, 1);
        assert_eq!(rep.per_class[SloClass::Batch.index()].arrived, 1);
    }

    #[test]
    fn mix_classification_is_exhaustive() {
        let m = SloMix::mixed();
        for i in 0..100 {
            let _ = m.classify(i as f64 / 100.0);
        }
    }

    /// Drives one evict→complete→drain cycle at ±1 page around the HBM
    /// ceiling and reports (preemptions, resumes) — the ping-pong probe.
    fn ping_pong_cycle(low_watermark: f64) -> (usize, usize) {
        let mut cfg = slo_cfg(); // 4 pages, 1 page per request
        cfg.hbm_low_watermark = low_watermark;
        let mut s = Scheduler::new(cfg);
        let mut feas = |_u: usize, _c: usize| true;
        // Fill to the ceiling: 3 interactive + 1 best-effort, all decoding.
        for i in 0..3 {
            let mut r = req(i, SloClass::Interactive, 1024, 8);
            r.prefill_ns = 0.0;
            s.on_arrival(r, &mut feas);
        }
        let mut be = req(3, SloClass::BestEffort, 1024, 8);
        be.prefill_ns = 0.0;
        s.on_arrival(be, &mut feas);
        s.drain_queue(&mut feas);
        assert_eq!(s.pages().hbm_used(), 4, "at the ceiling");
        // +1 page: an interactive arrival evicts the best-effort member.
        let mut hot = req(4, SloClass::Interactive, 1024, 1);
        hot.prefill_ns = 0.0;
        s.on_arrival(hot, &mut feas);
        s.drain_queue(&mut feas);
        assert_eq!(s.pages().hbm_used(), 4);
        // -1 page: the one-token request completes, dropping usage to 3.
        let _ = s.plan_step();
        let _ = s.advance_step(1e6, 1e6);
        assert_eq!(s.pages().hbm_used(), 3);
        // The boundary decision: may the evicted best-effort member resume
        // right back to the ceiling?
        s.drain_queue(&mut feas);
        // Another +1-page interactive arrival probes for a second eviction.
        let mut hot2 = req(5, SloClass::Interactive, 1024, 1);
        hot2.prefill_ns = 0.0;
        s.on_arrival(hot2, &mut feas);
        s.drain_queue(&mut feas);
        let rep = s.finalize();
        assert_eq!(rep.leaked_pages, 0);
        assert_eq!(rep.invariant_violation, None);
        (rep.preemptions, rep.resumes)
    }

    #[test]
    fn hysteresis_stops_evict_resume_ping_pong_at_the_ceiling() {
        // Equal watermarks (legacy): the evicted request resumes into the
        // freed page and the next arrival evicts it again — ping-pong.
        assert_eq!(ping_pong_cycle(1.0), (2, 1));
        // Low watermark 0.75 (3 of 4 pages): resuming to 4 pages overshoots
        // the low limit, so the request stays parked and the next arrival
        // admits into the free page without a second eviction.
        assert_eq!(ping_pong_cycle(0.75), (1, 0));
    }

    #[test]
    fn low_watermark_equal_to_high_is_inert() {
        let cfg = slo_cfg();
        assert_eq!(cfg.hbm_low_watermark, cfg.pages.hbm_watermark);
        assert_eq!(cfg.resume_limit_pages(), cfg.pages.hbm_limit_pages());
    }

    #[test]
    fn completion_unpins_and_crash_drops_pins_not_shared_frames() {
        let mut cfg = slo_cfg();
        cfg.pages.hbm_capacity_pages = 16;
        let mut s = Scheduler::new(cfg);
        s.pages_mut().set_prefix_capacity(32);
        assert!(s.pages_mut().prefix_insert(0xbeef, 4));
        let mut feas = |_u: usize, _c: usize| true;
        // Two sessions share the same prefix; a third request is cold.
        for id in 0..2 {
            s.pages_mut().prefix_pin(0xbeef);
            let mut r = req(id, SloClass::Interactive, 1024, 2);
            r.prefix_hash = Some(0xbeef);
            r.prefill_ns = 0.0;
            s.on_arrival(r, &mut feas);
        }
        s.on_arrival(req(2, SloClass::Interactive, 1024, 2), &mut feas);
        s.drain_queue(&mut feas);
        assert_eq!(s.pages().prefix_pinned_refs(), 2);

        // Completion drops exactly one pin; the shared frames stay cached.
        let mut now = 0.0;
        let mut done = 0usize;
        for _ in 0..16 {
            s.drain_queue(&mut feas);
            if s.active_is_empty() {
                break;
            }
            let _ = s.plan_step();
            now += 1e6;
            done += s.advance_step(1e6, now).len();
        }
        assert_eq!(done, 3);
        assert_eq!(s.pages().prefix_pinned_refs(), 0);
        assert_eq!(s.pages().prefix_lookup(0xbeef), Some(4));
        let rep = s.finalize();
        assert_eq!(rep.invariant_violation, None, "refcount ≡ live sessions");
        assert!(rep.prefill_work_ns >= 0.0);
    }

    #[test]
    fn crash_evacuate_unpins_each_evacuee_once_and_wipes_the_cache() {
        let mut cfg = slo_cfg();
        cfg.pages.hbm_capacity_pages = 16;
        let mut s = Scheduler::new(cfg);
        s.pages_mut().set_prefix_capacity(32);
        assert!(s.pages_mut().prefix_insert(0xcafe, 8));
        let mut feas = |_u: usize, _c: usize| true;
        for id in 0..3 {
            s.pages_mut().prefix_pin(0xcafe);
            let mut r = req(id, SloClass::Interactive, 1024, 4);
            r.prefix_hash = Some(0xcafe);
            s.on_arrival(r, &mut feas);
        }
        s.drain_queue(&mut feas);
        assert_eq!(s.pages().prefix_pinned_refs(), 3);
        let evac = s.crash_evacuate();
        assert_eq!(evac.len(), 3);
        // Pins dropped one per evacuee (never a double-free of the shared
        // frames), then the cache wiped; the evacuees carry no stale pin
        // handle into their redispatch target.
        assert_eq!(s.pages().prefix_pinned_refs(), 0);
        assert_eq!(s.pages().prefix_lookup(0xcafe), None);
        for e in &evac {
            assert_eq!(e.req.prefix_hash, None);
            assert!(e.req.pull_ns.is_infinite());
        }
        let rep = s.finalize();
        assert_eq!(rep.leaked_pages, 0);
        assert_eq!(rep.invariant_violation, None);
    }

    #[test]
    fn prefill_work_accumulates_executed_chunks() {
        let mut cfg = slo_cfg();
        cfg.pages.hbm_capacity_pages = 100;
        let mut s = Scheduler::new(cfg);
        let mut feas = |_u: usize, _c: usize| true;
        let mut r = req(0, SloClass::Interactive, 16_384, 1);
        r.prefill_ns = 2e6;
        s.on_arrival(r, &mut feas);
        s.drain_queue(&mut feas);
        let mut now = 0.0;
        for _ in 0..8 {
            if s.active_is_empty() {
                break;
            }
            let _ = s.plan_step();
            now += 1e6;
            let _ = s.advance_step(1e6, now);
        }
        let rep = s.finalize();
        assert!((rep.prefill_work_ns - 2e6).abs() < 1e-3);
    }
}
