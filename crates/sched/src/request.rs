//! Request vocabulary of the scheduler: SLO classes, class mixes, the
//! per-request descriptor, and the device geometry that turns context
//! lengths into page counts and resume costs.

use crate::pages::PageConfig;

/// Service-level objective class of a request, in priority order.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum SloClass {
    /// Latency-sensitive chat traffic: admitted first, never preempted.
    Interactive = 0,
    /// Throughput-oriented batch jobs: admitted behind interactive traffic.
    Batch = 1,
    /// Scavenger traffic: admitted into leftover capacity and evicted to
    /// DReX-resident state when higher classes need HBM pages.
    BestEffort = 2,
}

impl SloClass {
    /// All classes in priority order.
    pub const ALL: [SloClass; 3] = [SloClass::Interactive, SloClass::Batch, SloClass::BestEffort];

    /// Stable index (0 = interactive).
    pub fn index(self) -> usize {
        self as usize
    }

    /// Short display name.
    pub fn name(self) -> &'static str {
        match self {
            SloClass::Interactive => "interactive",
            SloClass::Batch => "batch",
            SloClass::BestEffort => "best-effort",
        }
    }
}

/// Relative weights of the three SLO classes in an offered workload.
///
/// Weights need not sum to 1; they are normalized at classification time.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SloMix {
    /// Weight of [`SloClass::Interactive`].
    pub interactive: f64,
    /// Weight of [`SloClass::Batch`].
    pub batch: f64,
    /// Weight of [`SloClass::BestEffort`].
    pub best_effort: f64,
}

impl SloMix {
    /// Every request is interactive — the legacy single-class workload.
    pub fn all_interactive() -> Self {
        Self {
            interactive: 1.0,
            batch: 0.0,
            best_effort: 0.0,
        }
    }

    /// A representative mixed fleet: half interactive, 30% batch, 20%
    /// best-effort.
    pub fn mixed() -> Self {
        Self {
            interactive: 0.5,
            batch: 0.3,
            best_effort: 0.2,
        }
    }

    /// Whether the mix degenerates to a single interactive class.
    pub fn is_all_interactive(&self) -> bool {
        self.batch <= 0.0 && self.best_effort <= 0.0
    }

    /// Parses `"I,B,E"` comma-separated non-negative weights, e.g.
    /// `"0.5,0.3,0.2"`.
    ///
    /// # Errors
    ///
    /// Returns a message when the shape or values are invalid.
    pub fn parse(s: &str) -> Result<Self, String> {
        let parts: Vec<&str> = s.split(',').collect();
        if parts.len() != 3 {
            return Err(format!(
                "invalid SLO mix '{s}' (expected three comma-separated weights, e.g. 0.5,0.3,0.2)"
            ));
        }
        let mut w = [0.0f64; 3];
        for (slot, part) in w.iter_mut().zip(&parts) {
            *slot = part
                .trim()
                .parse::<f64>()
                .map_err(|_| format!("invalid SLO mix weight '{part}'"))?;
            if !slot.is_finite() || *slot < 0.0 {
                return Err(format!("SLO mix weight '{part}' must be finite and >= 0"));
            }
        }
        if w.iter().sum::<f64>() <= 0.0 {
            return Err(format!("SLO mix '{s}' has zero total weight"));
        }
        Ok(Self {
            interactive: w[0],
            batch: w[1],
            best_effort: w[2],
        })
    }

    /// Maps a uniform draw `u ∈ [0, 1)` to a class by the normalized
    /// cumulative weights.
    pub fn classify(&self, u: f64) -> SloClass {
        let total = self.interactive + self.batch + self.best_effort;
        if total <= 0.0 {
            return SloClass::Interactive;
        }
        let x = u * total;
        if x < self.interactive {
            SloClass::Interactive
        } else if x < self.interactive + self.batch {
            SloClass::Batch
        } else {
            SloClass::BestEffort
        }
    }
}

/// How an evicted request's HBM window comes back: the three-way cheapest-of
/// decision extending the original restore-vs-recompute pair with a pooled
/// prefix pull from a peer replica's cache.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ResumePath {
    /// Restore the window from the local DReX tier over the link.
    Restore,
    /// Pull the session prefix from a peer replica over the pooled fabric.
    Pull,
    /// Recompute the window from scratch on the GPU.
    Recompute,
}

impl ResumePath {
    /// Short display name.
    pub fn name(self) -> &'static str {
        match self {
            ResumePath::Restore => "restore",
            ResumePath::Pull => "pull",
            ResumePath::Recompute => "recompute",
        }
    }
}

/// One request as the scheduler sees it.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SchedRequest {
    /// Arrival-ordered ID (doubles as the priority tiebreaker).
    pub id: usize,
    /// SLO class.
    pub class: SloClass,
    /// Arrival time, ns of simulated time.
    pub arrival_ns: f64,
    /// Prompt length, tokens (frozen at admission).
    pub context: usize,
    /// Output (decode) length, tokens.
    pub output: usize,
    /// Full prefill cost of the prompt, ns.
    pub prefill_ns: f64,
    /// Cost of restoring the evicted HBM window from DReX over the link, ns.
    pub restore_ns: f64,
    /// Cost of recomputing the HBM window from scratch on the GPU, ns.
    pub recompute_ns: f64,
    /// Cost of pulling the session prefix from a peer replica's cache over
    /// the pooled-DReX fabric, ns. `f64::INFINITY` when no remote copy
    /// exists (every cold request).
    pub pull_ns: f64,
    /// Content hash of the prefix this request holds a pin on in its
    /// replica's prefix cache; `None` for cold or unpinned requests. The
    /// scheduler drops the pin on completion, failure, and crash.
    pub prefix_hash: Option<u64>,
}

impl SchedRequest {
    /// The deterministic resume cost: the cheapest of restore-from-DReX,
    /// pull-from-peer, and recompute-on-GPU.
    pub fn resume_cost_ns(&self) -> f64 {
        self.restore_ns.min(self.recompute_ns).min(self.pull_ns)
    }

    /// Which of the three resume paths is cheapest. Ties break toward the
    /// cheaper fabric (restore, then pull) over burning GPU flops.
    pub fn resume_path(&self) -> ResumePath {
        let cost = self.resume_cost_ns();
        if self.restore_ns <= cost {
            ResumePath::Restore
        } else if self.pull_ns <= cost {
            ResumePath::Pull
        } else {
            ResumePath::Recompute
        }
    }

    /// Whether resume would restore from DReX (vs recompute on the GPU).
    pub fn resume_restores(&self) -> bool {
        self.resume_path() == ResumePath::Restore
    }
}

/// How a serving system's device geometry maps contexts onto the two page
/// tiers. Produced by `ServingSystem::kv_geometry` implementations.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct KvDeviceGeometry {
    /// Tokens per page.
    pub page_tokens: usize,
    /// Tokens kept HBM-resident per request (window + sinks). Contexts
    /// beyond this spill to DReX tail pages. `usize::MAX` means the whole
    /// context is HBM-resident (dense baselines).
    pub window_tokens: usize,
    /// HBM pages available for KV windows.
    pub hbm_capacity_pages: usize,
    /// DReX pages available for tails.
    pub drex_capacity_pages: usize,
    /// Link cost of restoring one page from DReX to HBM, ns.
    pub restore_ns_per_page: f64,
    /// GPU cost of recomputing one window token from scratch, ns.
    pub recompute_ns_per_token: f64,
}

impl KvDeviceGeometry {
    /// HBM-resident tokens of a `context`-token request.
    pub fn resident_tokens(&self, context: usize) -> usize {
        context.min(self.window_tokens)
    }

    /// HBM window pages of a `context`-token request.
    pub fn hbm_pages_for(&self, context: usize) -> usize {
        self.resident_tokens(context)
            .div_ceil(self.page_tokens.max(1))
    }

    /// DReX tail pages of a `context`-token request.
    pub fn drex_pages_for(&self, context: usize) -> usize {
        (context.saturating_sub(self.window_tokens)).div_ceil(self.page_tokens.max(1))
    }

    /// Restore-from-DReX cost of the request's window, ns.
    pub fn restore_ns(&self, context: usize) -> f64 {
        self.hbm_pages_for(context) as f64 * self.restore_ns_per_page
    }

    /// Recompute-on-GPU cost of the request's window, ns.
    pub fn recompute_ns(&self, context: usize) -> f64 {
        self.resident_tokens(context) as f64 * self.recompute_ns_per_token
    }

    /// The [`PageConfig`] this geometry induces under `watermark`.
    pub fn page_config(&self, watermark: f64) -> PageConfig {
        PageConfig {
            page_tokens: self.page_tokens.max(1),
            hbm_capacity_pages: self.hbm_capacity_pages,
            drex_capacity_pages: self.drex_capacity_pages,
            hbm_watermark: watermark,
        }
    }

    /// Largest batch of uniform `context`-token requests the two tiers can
    /// hold under `watermark` — the pure *memory* admission limit.
    pub fn memory_max_users(&self, context: usize, watermark: f64) -> usize {
        let cfg = self.page_config(watermark);
        let hbm = self.hbm_pages_for(context);
        let drex = self.drex_pages_for(context);
        let by_hbm = cfg.hbm_limit_pages().checked_div(hbm).unwrap_or(usize::MAX);
        let by_drex = self
            .drex_capacity_pages
            .checked_div(drex)
            .unwrap_or(usize::MAX);
        by_hbm.min(by_drex)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mix_parses_and_classifies() {
        let m = SloMix::parse("0.5,0.3,0.2").unwrap();
        assert_eq!(m.classify(0.0), SloClass::Interactive);
        assert_eq!(m.classify(0.49), SloClass::Interactive);
        assert_eq!(m.classify(0.5), SloClass::Batch);
        assert_eq!(m.classify(0.79), SloClass::Batch);
        assert_eq!(m.classify(0.8), SloClass::BestEffort);
        assert_eq!(m.classify(0.999), SloClass::BestEffort);
    }

    #[test]
    fn mix_normalizes_weights() {
        let m = SloMix::parse("2,1,1").unwrap();
        assert_eq!(m.classify(0.49), SloClass::Interactive);
        assert_eq!(m.classify(0.51), SloClass::Batch);
        assert_eq!(m.classify(0.76), SloClass::BestEffort);
    }

    #[test]
    fn mix_rejects_bad_shapes() {
        assert!(SloMix::parse("1,2").is_err());
        assert!(SloMix::parse("a,b,c").is_err());
        assert!(SloMix::parse("-1,0,0").is_err());
        assert!(SloMix::parse("0,0,0").is_err());
        assert!(SloMix::parse("nan,1,1").is_err());
    }

    #[test]
    fn all_interactive_is_single_class() {
        let m = SloMix::all_interactive();
        assert!(m.is_all_interactive());
        for u in [0.0, 0.3, 0.99] {
            assert_eq!(m.classify(u), SloClass::Interactive);
        }
    }

    #[test]
    fn geometry_splits_window_and_tail() {
        let g = KvDeviceGeometry {
            page_tokens: 1024,
            window_tokens: 1040,
            hbm_capacity_pages: 100,
            drex_capacity_pages: 1000,
            restore_ns_per_page: 100.0,
            recompute_ns_per_token: 10.0,
        };
        // 8K context: 1040 resident (2 pages), 7152 tail (7 pages).
        assert_eq!(g.hbm_pages_for(8192), 2);
        assert_eq!(g.drex_pages_for(8192), 7);
        // Short context: fully resident, no tail.
        assert_eq!(g.hbm_pages_for(512), 1);
        assert_eq!(g.drex_pages_for(512), 0);
        // Restore 2 pages vs recompute 1040 tokens: restore wins.
        assert!(g.restore_ns(8192) < g.recompute_ns(8192));
    }

    #[test]
    fn memory_max_users_takes_the_tighter_tier() {
        let g = KvDeviceGeometry {
            page_tokens: 1024,
            window_tokens: 1024,
            hbm_capacity_pages: 10,
            drex_capacity_pages: 1000,
            restore_ns_per_page: 1.0,
            recompute_ns_per_token: 1.0,
        };
        // Each 64K request: 1 HBM page, 63 DReX pages. HBM limit 9 pages
        // (watermark 0.9) binds first.
        assert_eq!(g.memory_max_users(65_536, 0.9), 9);
        // With plentiful HBM the DReX tier binds: 1000/63 = 15.
        let g2 = KvDeviceGeometry {
            hbm_capacity_pages: 1_000_000,
            ..g
        };
        assert_eq!(g2.memory_max_users(65_536, 0.9), 15);
    }

    #[test]
    fn memory_max_users_edge_cases() {
        let g = KvDeviceGeometry {
            page_tokens: 1024,
            window_tokens: 4096,
            hbm_capacity_pages: 100,
            drex_capacity_pages: 1000,
            restore_ns_per_page: 1.0,
            recompute_ns_per_token: 1.0,
        };
        // Context shorter than the window: fully HBM-resident, zero DReX
        // pages, so the DReX divisor is 0 and only HBM binds (no div-by-zero
        // panic, no phantom DReX limit).
        assert_eq!(g.drex_pages_for(2048), 0);
        assert_eq!(g.memory_max_users(2048, 1.0), 50); // 100 / 2 pages
        assert_eq!(g.memory_max_users(2048, 0.5), 25);
        // One token per page: page math degenerates to token math.
        let fine = KvDeviceGeometry {
            page_tokens: 1,
            window_tokens: 4,
            hbm_capacity_pages: 100,
            drex_capacity_pages: 10,
            ..g
        };
        assert_eq!(fine.hbm_pages_for(4), 4);
        assert_eq!(fine.drex_pages_for(9), 5);
        assert_eq!(fine.memory_max_users(9, 1.0), 2); // DReX: 10 / 5
                                                      // Watermark 0.0: no usable HBM, nothing admits.
        assert_eq!(g.memory_max_users(2048, 0.0), 0);
        // Watermark 1.0 equals raw capacity; above 1.0 clamps back to it.
        assert_eq!(g.memory_max_users(2048, 1.0), g.memory_max_users(2048, 2.0));
        // Zero-page request (context 0): both divisors are 0 → unbounded.
        assert_eq!(g.memory_max_users(0, 1.0), usize::MAX);
    }

    #[test]
    fn resume_picks_the_cheaper_path() {
        let r = SchedRequest {
            id: 0,
            class: SloClass::BestEffort,
            arrival_ns: 0.0,
            context: 4096,
            output: 16,
            prefill_ns: 1e6,
            restore_ns: 5e3,
            recompute_ns: 8e3,
            pull_ns: f64::INFINITY,
            prefix_hash: None,
        };
        assert_eq!(r.resume_cost_ns(), 5e3);
        assert!(r.resume_restores());
        assert_eq!(r.resume_path(), ResumePath::Restore);
    }

    #[test]
    fn resume_three_way_includes_pull() {
        let base = SchedRequest {
            id: 0,
            class: SloClass::Interactive,
            arrival_ns: 0.0,
            context: 4096,
            output: 16,
            prefill_ns: 1e6,
            restore_ns: 5e3,
            recompute_ns: 8e3,
            pull_ns: 3e3,
            prefix_hash: None,
        };
        // Pull is cheapest: the pooled fabric wins.
        assert_eq!(base.resume_cost_ns(), 3e3);
        assert_eq!(base.resume_path(), ResumePath::Pull);
        assert!(!base.resume_restores());
        // Pull ties restore: restore wins (local fabric first).
        let tied = SchedRequest {
            pull_ns: 5e3,
            ..base
        };
        assert_eq!(tied.resume_path(), ResumePath::Restore);
        // Recompute cheapest when both fabrics are expensive.
        let gpu = SchedRequest {
            restore_ns: 9e3,
            pull_ns: 9e3,
            ..base
        };
        assert_eq!(gpu.resume_path(), ResumePath::Recompute);
        assert_eq!(gpu.resume_cost_ns(), 8e3);
    }
}
