//! Deterministic front-end router over a fleet of (GPU, DReX) replicas.
//!
//! The router owns exactly one decision: which replica an arriving request
//! joins. It sees a [`SchedLoad`] snapshot per replica (taken at the
//! request's arrival time) and returns an index. Everything downstream —
//! admission, paging, preemption — stays each replica's own
//! [`crate::Scheduler`].
//!
//! Two policies:
//!
//! * [`RouterPolicy::RoundRobin`] ignores load entirely:
//!   `arrival_index % replicas`. The baseline.
//! * [`RouterPolicy::JsqSpillover`] is join-shortest-queue on free HBM
//!   pages with class-aware spillover: a replica past a class's occupancy
//!   threshold stops accepting that class (best-effort sheds first at 50%
//!   occupancy, batch at 75%, interactive never), so scavenger traffic
//!   drains toward cold replicas before it can crowd the hot ones. When
//!   every replica is past the threshold the full fleet is eligible again
//!   (shedding balances load; it never rejects).
//!
//! Ties on the (free HBM, free DReX) key break by a seeded hash of the
//! arrival index, so placement is a pure function of `(seed, arrival
//! index, load snapshots)` — bit-identical at any worker-thread count.

use crate::request::SloClass;

/// Fleet routing policy.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RouterPolicy {
    /// `arrival_index % replicas`, load-blind.
    RoundRobin,
    /// Join-shortest-queue on free HBM pages with class-aware spillover.
    JsqSpillover,
    /// Session affinity with spillover: a resuming turn lands on the
    /// replica that owns its prefix when that replica is healthy and under
    /// the watermark; otherwise it routes by predicted cost, crediting the
    /// owner the pull price (in pages) it would save. Arrivals without an
    /// owner hint route exactly like [`RouterPolicy::JsqSpillover`].
    Affinity,
}

impl RouterPolicy {
    /// Parses a CLI policy name (`rr`, `jsq`, or `affinity`).
    ///
    /// # Errors
    ///
    /// Returns a message naming the accepted forms.
    pub fn parse(s: &str) -> Result<Self, String> {
        match s {
            "rr" | "round-robin" => Ok(RouterPolicy::RoundRobin),
            "jsq" | "jsq-spillover" => Ok(RouterPolicy::JsqSpillover),
            "affinity" | "session-affinity" => Ok(RouterPolicy::Affinity),
            other => Err(format!(
                "invalid router policy '{other}' (use jsq, rr, or affinity)"
            )),
        }
    }

    /// Short display name.
    pub fn name(self) -> &'static str {
        match self {
            RouterPolicy::RoundRobin => "rr",
            RouterPolicy::JsqSpillover => "jsq",
            RouterPolicy::Affinity => "affinity",
        }
    }
}

/// A replica's load as the router sees it: one snapshot per arrival.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SchedLoad {
    /// Requests in the running batch.
    pub active: usize,
    /// Requests queued for admission.
    pub waiting: usize,
    /// HBM pages currently held.
    pub hbm_used: usize,
    /// HBM pages usable under the watermark.
    pub hbm_limit: usize,
    /// DReX pages currently held.
    pub drex_used: usize,
    /// DReX page capacity.
    pub drex_capacity: usize,
}

impl SchedLoad {
    /// Free HBM pages under the watermark.
    pub fn free_hbm(&self) -> usize {
        self.hbm_limit.saturating_sub(self.hbm_used)
    }

    /// Free DReX pages.
    pub fn free_drex(&self) -> usize {
        self.drex_capacity.saturating_sub(self.drex_used)
    }

    /// HBM occupancy fraction in `[0, 1]` (a zero-limit ledger reads as
    /// fully occupied).
    pub fn hbm_occupancy(&self) -> f64 {
        if self.hbm_limit == 0 {
            return 1.0;
        }
        (self.hbm_used as f64 / self.hbm_limit as f64).min(1.0)
    }
}

/// Occupancy fraction past which a replica sheds this class to the rest of
/// the fleet. Shedding order under rising load: best-effort first, then
/// batch; interactive traffic is never shed.
fn shed_threshold(class: SloClass) -> f64 {
    match class {
        SloClass::Interactive => f64::INFINITY,
        SloClass::Batch => 0.75,
        SloClass::BestEffort => 0.5,
    }
}

/// Typed routing failures (replacing the former panic-on-empty-fleet).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RouteError {
    /// The load-snapshot slice was empty — there is no fleet to route over.
    EmptyFleet,
    /// Every replica's breaker is open: nothing can accept this arrival.
    /// The caller must shed (with a recorded reason) rather than place.
    NoHealthyReplica,
}

impl std::fmt::Display for RouteError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RouteError::EmptyFleet => write!(f, "route over an empty fleet"),
            RouteError::NoHealthyReplica => write!(f, "no healthy replica (all breakers open)"),
        }
    }
}

impl std::error::Error for RouteError {}

/// Circuit-breaker health state of one replica, as the router sees it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BreakerState {
    /// Healthy: eligible for every class.
    Closed,
    /// Tripped (crash or sustained SLO misses): eligible for nothing.
    Open,
    /// Probing after cooldown/recovery: best-effort traffic first; other
    /// classes only when no closed replica exists.
    HalfOpen,
}

impl BreakerState {
    /// Short display name (`closed`/`open`/`half-open`).
    pub fn name(self) -> &'static str {
        match self {
            BreakerState::Closed => "closed",
            BreakerState::Open => "open",
            BreakerState::HalfOpen => "half-open",
        }
    }
}

/// Trip/cooldown thresholds of a per-replica circuit breaker.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BreakerConfig {
    /// Interactive deadline, ms: a completion slower than this counts as a
    /// deadline miss against the replica.
    pub slo_ms: f64,
    /// Consecutive interactive deadline misses that trip a closed breaker.
    pub consecutive_misses: u32,
    /// Degraded tokens accumulated since the breaker last closed that trip
    /// it (sustained brownout pressure).
    pub degraded_tokens_trip: u64,
    /// How long an open breaker waits before probing, ns of simulated time.
    pub cooldown_ns: f64,
    /// Successful (in-deadline) interactive completions a half-open breaker
    /// needs before closing again.
    pub probe_successes: u32,
}

impl BreakerConfig {
    /// Serving defaults: a 2.5 s interactive deadline, trip after 8
    /// consecutive misses or 4096 degraded tokens, probe after a 500 ms
    /// cooldown, close after 4 clean probes.
    pub fn serving_default() -> Self {
        Self {
            slo_ms: 2500.0,
            consecutive_misses: 8,
            degraded_tokens_trip: 4096,
            cooldown_ns: 0.5e9,
            probe_successes: 4,
        }
    }
}

impl Default for BreakerConfig {
    fn default() -> Self {
        Self::serving_default()
    }
}

/// A per-replica circuit breaker: closed → open on a crash or sustained
/// deadline misses / degraded-token pressure, open → half-open after
/// cooldown (or explicit recovery), half-open → closed after enough clean
/// probes — or straight back to open on a probe miss.
///
/// The breaker is driven only by observable serving signals (completion
/// latencies and degraded-token counters), never by the fault schedule
/// itself: the router learns a replica died the same way a real front-end
/// would.
#[derive(Debug, Clone, PartialEq)]
pub struct CircuitBreaker {
    cfg: BreakerConfig,
    state: BreakerState,
    /// Consecutive interactive deadline misses while closed.
    misses: u32,
    /// Degraded tokens since the breaker last closed.
    degraded: u64,
    /// When the breaker opened, ns.
    opened_at_ns: f64,
    /// While true the breaker must not half-open on cooldown (the node is
    /// physically down; recovery is announced via [`CircuitBreaker::on_recovery`]).
    held_open: bool,
    /// Clean probes seen while half-open.
    probes: u32,
}

impl CircuitBreaker {
    /// A closed breaker with the given thresholds.
    pub fn new(cfg: BreakerConfig) -> Self {
        Self {
            cfg,
            state: BreakerState::Closed,
            misses: 0,
            degraded: 0,
            opened_at_ns: 0.0,
            held_open: false,
            probes: 0,
        }
    }

    /// Current state.
    pub fn state(&self) -> BreakerState {
        self.state
    }

    /// True while the breaker is open because the replica is physically
    /// down (crash), as opposed to tripped open by observed slowness. A
    /// tripped-open replica is alive and can take last-resort traffic; a
    /// held-open one cannot serve anything until recovery.
    pub fn is_held_open(&self) -> bool {
        self.state == BreakerState::Open && self.held_open
    }

    fn open(&mut self, now_ns: f64, held: bool) -> Option<BreakerState> {
        self.state = BreakerState::Open;
        self.opened_at_ns = now_ns;
        self.held_open = held;
        self.misses = 0;
        self.probes = 0;
        Some(BreakerState::Open)
    }

    fn close(&mut self) -> Option<BreakerState> {
        self.state = BreakerState::Closed;
        self.misses = 0;
        self.degraded = 0;
        self.probes = 0;
        Some(BreakerState::Closed)
    }

    /// Trips the breaker open and holds it there (a replica crash): no
    /// cooldown probe until [`CircuitBreaker::on_recovery`]. Returns the new
    /// state when this was a transition.
    pub fn force_open(&mut self, now_ns: f64) -> Option<BreakerState> {
        let was_open = self.state == BreakerState::Open;
        let t = self.open(now_ns, true);
        if was_open {
            None
        } else {
            t
        }
    }

    /// The replica came back (repair finished): a held-open breaker moves
    /// to half-open so probe traffic can test it. Returns the new state
    /// when this was a transition.
    pub fn on_recovery(&mut self) -> Option<BreakerState> {
        if self.state == BreakerState::Open {
            self.state = BreakerState::HalfOpen;
            self.held_open = false;
            self.probes = 0;
            Some(BreakerState::HalfOpen)
        } else {
            None
        }
    }

    /// Cooldown tick: an open (not held-open) breaker becomes half-open
    /// once `cooldown_ns` has elapsed. Returns the new state on transition.
    pub fn poll(&mut self, now_ns: f64) -> Option<BreakerState> {
        if self.state == BreakerState::Open
            && !self.held_open
            && now_ns - self.opened_at_ns >= self.cfg.cooldown_ns
        {
            self.state = BreakerState::HalfOpen;
            self.probes = 0;
            Some(BreakerState::HalfOpen)
        } else {
            None
        }
    }

    /// Feeds one observed completion. Only interactive completions count
    /// toward the deadline-miss ladder, but *any* class counts as a clean
    /// half-open probe: the router sends a half-open replica best-effort
    /// traffic first, and a probe only asks whether the node is alive —
    /// requiring an interactive completion to close would quarantine a
    /// repaired replica forever. Returns the new state on transition.
    pub fn note_completion(
        &mut self,
        class: SloClass,
        latency_ms: f64,
        now_ns: f64,
    ) -> Option<BreakerState> {
        let missed = class == SloClass::Interactive && latency_ms > self.cfg.slo_ms;
        match self.state {
            BreakerState::Closed => {
                if class != SloClass::Interactive {
                    return None;
                }
                if missed {
                    self.misses += 1;
                    if self.misses >= self.cfg.consecutive_misses {
                        return self.open(now_ns, false);
                    }
                } else {
                    self.misses = 0;
                }
                None
            }
            BreakerState::HalfOpen => {
                if missed {
                    self.open(now_ns, false)
                } else {
                    self.probes += 1;
                    if self.probes >= self.cfg.probe_successes {
                        self.close()
                    } else {
                        None
                    }
                }
            }
            BreakerState::Open => None,
        }
    }

    /// Feeds newly observed degraded tokens (brownout pressure). A closed
    /// breaker trips once the accumulated count since it last closed
    /// reaches the threshold. Returns the new state on transition.
    pub fn note_degraded(&mut self, tokens: u64, now_ns: f64) -> Option<BreakerState> {
        self.degraded = self.degraded.saturating_add(tokens);
        if self.state == BreakerState::Closed && self.degraded >= self.cfg.degraded_tokens_trip {
            self.open(now_ns, false)
        } else {
            None
        }
    }
}

/// splitmix64 — the deterministic tie-break stream.
fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

/// The fleet router. Stateless apart from its seed: every decision is a
/// pure function of `(seed, arrival_index, class, loads)`.
#[derive(Debug, Clone, Copy)]
pub struct Router {
    policy: RouterPolicy,
    seed: u64,
}

impl Router {
    /// Creates a router with the given tie-break seed (the workload seed,
    /// by convention, so one seed pins the whole run).
    pub fn new(policy: RouterPolicy, seed: u64) -> Self {
        Self { policy, seed }
    }

    /// The policy this router applies.
    pub fn policy(&self) -> RouterPolicy {
        self.policy
    }

    /// Picks the replica for arrival `arrival_index` of `class` given the
    /// per-replica load snapshots.
    ///
    /// # Errors
    ///
    /// [`RouteError::EmptyFleet`] when `loads` is empty.
    pub fn route(
        &self,
        arrival_index: usize,
        class: SloClass,
        loads: &[SchedLoad],
    ) -> Result<usize, RouteError> {
        let all: Vec<usize> = (0..loads.len()).collect();
        self.route_within(arrival_index, class, loads, &all)
    }

    /// Health-aware routing: picks a replica among those whose breaker
    /// admits this class. Closed replicas take every class; half-open ones
    /// take best-effort probe traffic first, and other classes only when no
    /// closed replica exists; open replicas take nothing. With every
    /// breaker closed this is exactly [`Router::route`], placement for
    /// placement.
    ///
    /// # Errors
    ///
    /// [`RouteError::EmptyFleet`] when `loads` is empty (or `states` is
    /// shorter than `loads`), [`RouteError::NoHealthyReplica`] when no
    /// breaker admits the class — the caller sheds, it never loses the
    /// arrival.
    pub fn route_healthy(
        &self,
        arrival_index: usize,
        class: SloClass,
        loads: &[SchedLoad],
        states: &[BreakerState],
    ) -> Result<usize, RouteError> {
        if loads.is_empty() || states.len() < loads.len() {
            return Err(RouteError::EmptyFleet);
        }
        let closed: Vec<usize> = (0..loads.len())
            .filter(|&i| states[i] == BreakerState::Closed)
            .collect();
        let healthy: Vec<usize> = if class == SloClass::BestEffort || closed.is_empty() {
            (0..loads.len())
                .filter(|&i| states[i] != BreakerState::Open)
                .collect()
        } else {
            closed
        };
        if healthy.is_empty() {
            return Err(RouteError::NoHealthyReplica);
        }
        self.route_within(arrival_index, class, loads, &healthy)
    }

    /// Applies the policy over a candidate pool of replica indices.
    fn route_within(
        &self,
        arrival_index: usize,
        class: SloClass,
        loads: &[SchedLoad],
        candidates: &[usize],
    ) -> Result<usize, RouteError> {
        if candidates.is_empty() {
            return Err(RouteError::EmptyFleet);
        }
        match self.policy {
            RouterPolicy::RoundRobin => Ok(candidates[arrival_index % candidates.len()]),
            // Affinity without an owner hint (every cold arrival) is plain
            // JSQ spillover; the owner-aware path is `route_affine`.
            RouterPolicy::JsqSpillover | RouterPolicy::Affinity => {
                Ok(self.jsq_spillover(arrival_index, class, loads, candidates, None))
            }
        }
    }

    /// Session-affine routing: place arrival `arrival_index`, whose prefix
    /// (of `prefix_pages` pages) lives on `owner`, composing with the
    /// breaker machinery exactly like [`Router::route_healthy`].
    ///
    /// Decision order: (1) the owner, when its breaker admits the class,
    /// it is in the healthy pool, and it has free HBM under the watermark —
    /// resuming in place costs no fabric transfer; (2) otherwise spillover
    /// by predicted cost — JSQ over the healthy pool where the owner's
    /// free-HBM key is credited `prefix_pages` pages, the pull price every
    /// *other* replica would pay to fetch the prefix. Without an owner (or
    /// under a non-affinity policy) this is exactly `route_healthy`.
    ///
    /// # Errors
    ///
    /// Same contract as [`Router::route_healthy`].
    pub fn route_affine(
        &self,
        arrival_index: usize,
        class: SloClass,
        loads: &[SchedLoad],
        states: &[BreakerState],
        owner: Option<usize>,
        prefix_pages: usize,
    ) -> Result<usize, RouteError> {
        let Some(own) = owner.filter(|&o| o < loads.len()) else {
            return self.route_healthy(arrival_index, class, loads, states);
        };
        if self.policy != RouterPolicy::Affinity {
            return self.route_healthy(arrival_index, class, loads, states);
        }
        if loads.is_empty() || states.len() < loads.len() {
            return Err(RouteError::EmptyFleet);
        }
        let closed: Vec<usize> = (0..loads.len())
            .filter(|&i| states[i] == BreakerState::Closed)
            .collect();
        let healthy: Vec<usize> = if class == SloClass::BestEffort || closed.is_empty() {
            (0..loads.len())
                .filter(|&i| states[i] != BreakerState::Open)
                .collect()
        } else {
            closed
        };
        if healthy.is_empty() {
            return Err(RouteError::NoHealthyReplica);
        }
        if healthy.contains(&own) && loads[own].free_hbm() > 0 {
            return Ok(own);
        }
        Ok(self.jsq_spillover(
            arrival_index,
            class,
            loads,
            &healthy,
            Some((own, prefix_pages)),
        ))
    }

    fn jsq_spillover(
        &self,
        arrival_index: usize,
        class: SloClass,
        loads: &[SchedLoad],
        candidates: &[usize],
        owner_bonus: Option<(usize, usize)>,
    ) -> usize {
        let threshold = shed_threshold(class);
        // The credited prefix owner stays eligible past the shed threshold:
        // whether crowding it beats paying the pull is exactly the cost
        // comparison the key below performs, so the occupancy filter must
        // not pre-empt it. Breaker gating already happened upstream (the
        // owner is only ever credited inside the healthy candidate pool).
        let eligible: Vec<usize> = candidates
            .iter()
            .copied()
            .filter(|&i| {
                loads[i].hbm_occupancy() < threshold
                    || matches!(owner_bonus, Some((own, _)) if own == i)
            })
            .collect();
        // Every candidate hot: spillover balances, it never rejects — fall
        // back to plain JSQ over the whole candidate pool.
        let pool: Vec<usize> = if eligible.is_empty() {
            candidates.to_vec()
        } else {
            eligible
        };
        // Most free HBM pages wins; free DReX breaks the first tie, the
        // shortest admission queue the second. The prefix owner's key is
        // credited the pull price (in pages) every other replica would pay.
        let key = |i: usize| {
            let bonus = match owner_bonus {
                Some((own, pages)) if own == i => pages,
                _ => 0,
            };
            (
                loads[i].free_hbm() + bonus,
                loads[i].free_drex(),
                usize::MAX - loads[i].waiting,
            )
        };
        let mut best_key = key(pool[0]);
        for &i in &pool[1..] {
            best_key = best_key.max(key(i));
        }
        let tied: Vec<usize> = pool.into_iter().filter(|&i| key(i) == best_key).collect();
        // Seeded rotation among exact ties keeps placement a pure function
        // of (seed, arrival index) without biasing toward low indices.
        let r = splitmix64(self.seed ^ (arrival_index as u64).wrapping_mul(0x243f_6a88_85a3_08d3));
        tied[(r % tied.len() as u64) as usize]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn load(hbm_used: usize, hbm_limit: usize) -> SchedLoad {
        SchedLoad {
            active: 0,
            waiting: 0,
            hbm_used,
            hbm_limit,
            drex_used: 0,
            drex_capacity: 1000,
        }
    }

    #[test]
    fn round_robin_cycles() {
        let r = Router::new(RouterPolicy::RoundRobin, 7);
        let loads = [load(0, 10), load(9, 10), load(5, 10)];
        for i in 0..9 {
            assert_eq!(r.route(i, SloClass::Interactive, &loads).unwrap(), i % 3);
        }
    }

    #[test]
    fn jsq_picks_the_most_free_hbm() {
        let r = Router::new(RouterPolicy::JsqSpillover, 7);
        let loads = [load(8, 10), load(2, 10), load(5, 10)];
        for class in SloClass::ALL {
            assert_eq!(r.route(0, class, &loads).unwrap(), 1);
        }
    }

    #[test]
    fn empty_fleet_is_a_typed_error_not_a_panic() {
        let r = Router::new(RouterPolicy::JsqSpillover, 7);
        assert_eq!(
            r.route(0, SloClass::Interactive, &[]),
            Err(RouteError::EmptyFleet)
        );
        assert!(RouteError::EmptyFleet.to_string().contains("empty fleet"));
        assert!(RouteError::NoHealthyReplica
            .to_string()
            .contains("no healthy replica"));
    }

    #[test]
    fn spillover_sheds_best_effort_before_batch_before_interactive() {
        // Replica 0 at 60% occupancy but with the most free pages (larger
        // device): plain JSQ would pick it for everyone; spillover keeps
        // best-effort off it.
        let loads = [load(60, 100), load(4, 10)];
        assert!(loads[0].free_hbm() > loads[1].free_hbm());
        let r = Router::new(RouterPolicy::JsqSpillover, 7);
        assert_eq!(
            r.route(0, SloClass::BestEffort, &loads).unwrap(),
            1,
            "0 is past 50%"
        );
        assert_eq!(
            r.route(0, SloClass::Batch, &loads).unwrap(),
            0,
            "0 is under 75%"
        );
        assert_eq!(r.route(0, SloClass::Interactive, &loads).unwrap(), 0);
        // Past 75% the batch class sheds too; interactive never does.
        let hot = [load(80, 100), load(4, 10)];
        assert_eq!(r.route(0, SloClass::Batch, &hot).unwrap(), 1);
        assert_eq!(r.route(0, SloClass::Interactive, &hot).unwrap(), 0);
    }

    #[test]
    fn spillover_boundary_at_exactly_50_percent() {
        // The eligibility filter is strict (`occupancy < threshold`), so a
        // replica sitting at exactly 50% no longer takes best-effort
        // traffic — but still takes batch and interactive.
        let loads = [load(50, 100), load(4, 10)];
        assert_eq!(loads[0].hbm_occupancy(), 0.5);
        assert!(loads[0].free_hbm() > loads[1].free_hbm());
        let r = Router::new(RouterPolicy::JsqSpillover, 7);
        assert_eq!(r.route(0, SloClass::BestEffort, &loads).unwrap(), 1);
        assert_eq!(r.route(0, SloClass::Batch, &loads).unwrap(), 0);
        assert_eq!(r.route(0, SloClass::Interactive, &loads).unwrap(), 0);
        // One page under the boundary it still takes everything.
        let under = [load(49, 100), load(4, 10)];
        assert_eq!(r.route(0, SloClass::BestEffort, &under).unwrap(), 0);
    }

    #[test]
    fn spillover_boundary_at_exactly_75_percent() {
        let loads = [load(75, 100), load(4, 10)];
        assert_eq!(loads[0].hbm_occupancy(), 0.75);
        assert!(loads[0].free_hbm() > loads[1].free_hbm());
        let r = Router::new(RouterPolicy::JsqSpillover, 7);
        assert_eq!(r.route(0, SloClass::Batch, &loads).unwrap(), 1);
        assert_eq!(r.route(0, SloClass::Interactive, &loads).unwrap(), 0);
        let under = [load(74, 100), load(4, 10)];
        assert_eq!(r.route(0, SloClass::Batch, &under).unwrap(), 0);
    }

    #[test]
    fn all_hot_falls_back_to_global_jsq() {
        let loads = [load(9, 10), load(7, 10)];
        let r = Router::new(RouterPolicy::JsqSpillover, 7);
        // Both past the best-effort threshold: the freer one still wins.
        assert_eq!(r.route(0, SloClass::BestEffort, &loads).unwrap(), 1);
    }

    #[test]
    fn tie_break_is_a_pure_function_of_seed_and_index() {
        let loads = [load(5, 10), load(5, 10), load(5, 10), load(5, 10)];
        let r = Router::new(RouterPolicy::JsqSpillover, 42);
        let picks: Vec<usize> = (0..64)
            .map(|i| r.route(i, SloClass::Interactive, &loads).unwrap())
            .collect();
        // Reproducible...
        let again: Vec<usize> = (0..64)
            .map(|i| r.route(i, SloClass::Interactive, &loads).unwrap())
            .collect();
        assert_eq!(picks, again);
        // ...seed-dependent...
        let other = Router::new(RouterPolicy::JsqSpillover, 43);
        let shifted: Vec<usize> = (0..64)
            .map(|i| other.route(i, SloClass::Interactive, &loads).unwrap())
            .collect();
        assert_ne!(picks, shifted);
        // ...and not biased onto one replica.
        for rep in 0..4 {
            assert!(picks.contains(&rep), "replica {rep} never picked");
        }
    }

    #[test]
    fn route_healthy_with_all_closed_matches_route() {
        let loads = [load(5, 10), load(3, 10), load(7, 10)];
        let states = [BreakerState::Closed; 3];
        for policy in [RouterPolicy::RoundRobin, RouterPolicy::JsqSpillover] {
            let r = Router::new(policy, 42);
            for i in 0..64 {
                for class in SloClass::ALL {
                    assert_eq!(
                        r.route_healthy(i, class, &loads, &states),
                        r.route(i, class, &loads),
                        "policy {policy:?} arrival {i} class {class:?}"
                    );
                }
            }
        }
    }

    #[test]
    fn route_healthy_skips_open_and_probes_half_open_with_best_effort() {
        let loads = [load(0, 10), load(9, 10)];
        let r = Router::new(RouterPolicy::JsqSpillover, 7);
        // Replica 0 (the freer one) is open: everything lands on 1.
        let states = [BreakerState::Open, BreakerState::Closed];
        for class in SloClass::ALL {
            assert_eq!(r.route_healthy(0, class, &loads, &states).unwrap(), 1);
        }
        // Replica 0 half-open: best-effort probes it, interactive and batch
        // stay on the closed replica.
        let states = [BreakerState::HalfOpen, BreakerState::Closed];
        assert_eq!(
            r.route_healthy(0, SloClass::BestEffort, &loads, &states)
                .unwrap(),
            0
        );
        assert_eq!(
            r.route_healthy(0, SloClass::Interactive, &loads, &states)
                .unwrap(),
            1
        );
        assert_eq!(
            r.route_healthy(0, SloClass::Batch, &loads, &states)
                .unwrap(),
            1
        );
        // No closed replica at all: half-open takes every class rather than
        // shedding traffic a probe could serve.
        let states = [BreakerState::HalfOpen, BreakerState::Open];
        assert_eq!(
            r.route_healthy(0, SloClass::Interactive, &loads, &states)
                .unwrap(),
            0
        );
        // Everything open: a typed shed signal, never a panic.
        let states = [BreakerState::Open, BreakerState::Open];
        assert_eq!(
            r.route_healthy(0, SloClass::Interactive, &loads, &states),
            Err(RouteError::NoHealthyReplica)
        );
    }

    #[test]
    fn breaker_trips_on_consecutive_misses_and_recovers_via_probes() {
        let cfg = BreakerConfig {
            slo_ms: 100.0,
            consecutive_misses: 3,
            degraded_tokens_trip: 1000,
            cooldown_ns: 1e9,
            probe_successes: 2,
        };
        let mut b = CircuitBreaker::new(cfg);
        assert_eq!(b.state(), BreakerState::Closed);
        // Two misses, a hit, two misses: the hit resets the ladder.
        for t in [0.0, 1.0] {
            assert_eq!(b.note_completion(SloClass::Interactive, 200.0, t), None);
        }
        assert_eq!(b.note_completion(SloClass::Interactive, 50.0, 2.0), None);
        assert_eq!(b.note_completion(SloClass::Interactive, 200.0, 3.0), None);
        assert_eq!(b.note_completion(SloClass::Interactive, 200.0, 4.0), None);
        // Third consecutive miss trips it.
        assert_eq!(
            b.note_completion(SloClass::Interactive, 200.0, 5.0),
            Some(BreakerState::Open)
        );
        // Batch misses never count.
        assert_eq!(b.note_completion(SloClass::Batch, 9e9, 6.0), None);
        // Cooldown: not yet... then half-open.
        assert_eq!(b.poll(5.5e8), None);
        assert_eq!(b.poll(5.0 + 1e9), Some(BreakerState::HalfOpen));
        // One clean probe, then the closing one.
        assert_eq!(b.note_completion(SloClass::Interactive, 50.0, 2e9), None);
        assert_eq!(
            b.note_completion(SloClass::Interactive, 50.0, 2e9),
            Some(BreakerState::Closed)
        );
        // A probe miss while half-open reopens immediately.
        b.force_open(3e9);
        assert_eq!(b.on_recovery(), Some(BreakerState::HalfOpen));
        assert_eq!(
            b.note_completion(SloClass::Interactive, 200.0, 4e9),
            Some(BreakerState::Open)
        );
    }

    #[test]
    fn best_effort_probes_close_a_half_open_breaker() {
        let cfg = BreakerConfig {
            probe_successes: 2,
            ..BreakerConfig::serving_default()
        };
        let mut b = CircuitBreaker::new(cfg);
        b.force_open(1e9);
        assert_eq!(b.on_recovery(), Some(BreakerState::HalfOpen));
        // The router probes half-open replicas with best-effort traffic
        // first; those completions have no deadline but prove liveness,
        // so they must be able to close the breaker.
        assert_eq!(b.note_completion(SloClass::BestEffort, 9e9, 2e9), None);
        assert_eq!(
            b.note_completion(SloClass::Batch, 9e9, 2e9),
            Some(BreakerState::Closed)
        );
    }

    #[test]
    fn breaker_holds_open_through_a_crash_until_recovery() {
        let mut b = CircuitBreaker::new(BreakerConfig::serving_default());
        assert_eq!(b.force_open(1e9), Some(BreakerState::Open));
        // Already open: no duplicate transition.
        assert_eq!(b.force_open(1.5e9), None);
        // Cooldown never half-opens a held breaker — the node is down.
        assert_eq!(b.poll(1e12), None);
        assert_eq!(b.on_recovery(), Some(BreakerState::HalfOpen));
        assert_eq!(b.on_recovery(), None);
    }

    #[test]
    fn breaker_trips_on_degraded_token_pressure() {
        let cfg = BreakerConfig {
            degraded_tokens_trip: 100,
            ..BreakerConfig::serving_default()
        };
        let mut b = CircuitBreaker::new(cfg);
        assert_eq!(b.note_degraded(60, 1.0), None);
        assert_eq!(b.note_degraded(60, 2.0), Some(BreakerState::Open));
        assert_eq!(b.state().name(), "open");
    }

    #[test]
    fn policy_parses() {
        assert_eq!(
            RouterPolicy::parse("jsq").unwrap(),
            RouterPolicy::JsqSpillover
        );
        assert_eq!(RouterPolicy::parse("rr").unwrap(), RouterPolicy::RoundRobin);
        assert_eq!(
            RouterPolicy::parse("affinity").unwrap(),
            RouterPolicy::Affinity
        );
        assert_eq!(RouterPolicy::Affinity.name(), "affinity");
        let err = RouterPolicy::parse("bogus").unwrap_err();
        assert!(err.contains("affinity"), "error names every policy: {err}");
    }

    #[test]
    fn affinity_resumes_on_the_owner_when_healthy_and_under_watermark() {
        let r = Router::new(RouterPolicy::Affinity, 7);
        // Replica 1 owns the prefix and has one free page: the resume lands
        // there even though replica 0 is far freer.
        let loads = [load(0, 10), load(9, 10)];
        let states = [BreakerState::Closed; 2];
        assert_eq!(
            r.route_affine(0, SloClass::Interactive, &loads, &states, Some(1), 4)
                .unwrap(),
            1
        );
        // At the watermark (no free page) the owner no longer qualifies and
        // the pull-credited spillover picks the freer replica.
        let full = [load(0, 10), load(10, 10)];
        assert_eq!(
            r.route_affine(0, SloClass::Interactive, &full, &states, Some(1), 4)
                .unwrap(),
            0
        );
    }

    #[test]
    fn affinity_spillover_credits_the_owner_the_pull_price() {
        let r = Router::new(RouterPolicy::Affinity, 7);
        // Owner (replica 1) is at its watermark, so the resume-in-place
        // fast path fails and the decision falls to the cost spillover,
        // where the owner's key is credited the prefix pages every other
        // replica would have to pull.
        let loads = [load(4, 10), load(10, 10)];
        let states = [BreakerState::Closed, BreakerState::HalfOpen];
        // Interactive: half-open owner is out of the pool entirely (a
        // closed replica exists) — spillover to the closed one.
        assert_eq!(
            r.route_affine(0, SloClass::Interactive, &loads, &states, Some(1), 64)
                .unwrap(),
            0
        );
        // Best-effort: the half-open owner is poolable but full; the pull
        // credit (64 pages) outweighs replica 0's 6-page lead, so the
        // arrival stays home rather than paying the fabric pull.
        assert_eq!(
            r.route_affine(0, SloClass::BestEffort, &loads, &states, Some(1), 64)
                .unwrap(),
            1
        );
        // A tiny prefix (1 page) is not worth staying: spillover wins.
        assert_eq!(
            r.route_affine(0, SloClass::BestEffort, &loads, &states, Some(1), 1)
                .unwrap(),
            0
        );
    }

    #[test]
    fn affinity_without_owner_matches_jsq_spillover() {
        let aff = Router::new(RouterPolicy::Affinity, 42);
        let jsq = Router::new(RouterPolicy::JsqSpillover, 42);
        let loads = [load(5, 10), load(3, 10), load(7, 10)];
        let states = [BreakerState::Closed; 3];
        for i in 0..32 {
            for class in SloClass::ALL {
                assert_eq!(
                    aff.route_affine(i, class, &loads, &states, None, 0),
                    jsq.route_healthy(i, class, &loads, &states),
                );
                assert_eq!(
                    aff.route(i, class, &loads),
                    jsq.route(i, class, &loads),
                    "ownerless affinity is plain jsq"
                );
            }
        }
    }

    #[test]
    fn affinity_respects_breakers_like_route_healthy() {
        let r = Router::new(RouterPolicy::Affinity, 7);
        let loads = [load(0, 10), load(2, 10)];
        // Owner open: never placed there, even as owner.
        let states = [BreakerState::Closed, BreakerState::Open];
        assert_eq!(
            r.route_affine(0, SloClass::Interactive, &loads, &states, Some(1), 8)
                .unwrap(),
            0
        );
        // Everything open: shed, exactly like route_healthy.
        let states = [BreakerState::Open, BreakerState::Open];
        assert_eq!(
            r.route_affine(0, SloClass::Interactive, &loads, &states, Some(1), 8),
            Err(RouteError::NoHealthyReplica)
        );
        // Out-of-range owner hints degrade to route_healthy, not a panic.
        let states = [BreakerState::Closed, BreakerState::Closed];
        assert!(r
            .route_affine(0, SloClass::Interactive, &loads, &states, Some(9), 8)
            .is_ok());
    }

    #[test]
    fn occupancy_handles_zero_limit() {
        assert_eq!(load(0, 0).hbm_occupancy(), 1.0);
        assert_eq!(load(5, 10).hbm_occupancy(), 0.5);
    }
}
