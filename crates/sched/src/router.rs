//! Deterministic front-end router over a fleet of (GPU, DReX) replicas.
//!
//! The router owns exactly one decision: which replica an arriving request
//! joins. It sees a [`SchedLoad`] snapshot per replica (taken at the
//! request's arrival time) and returns an index. Everything downstream —
//! admission, paging, preemption — stays each replica's own
//! [`crate::Scheduler`].
//!
//! Two policies:
//!
//! * [`RouterPolicy::RoundRobin`] ignores load entirely:
//!   `arrival_index % replicas`. The baseline.
//! * [`RouterPolicy::JsqSpillover`] is join-shortest-queue on free HBM
//!   pages with class-aware spillover: a replica past a class's occupancy
//!   threshold stops accepting that class (best-effort sheds first at 50%
//!   occupancy, batch at 75%, interactive never), so scavenger traffic
//!   drains toward cold replicas before it can crowd the hot ones. When
//!   every replica is past the threshold the full fleet is eligible again
//!   (shedding balances load; it never rejects).
//!
//! Ties on the (free HBM, free DReX) key break by a seeded hash of the
//! arrival index, so placement is a pure function of `(seed, arrival
//! index, load snapshots)` — bit-identical at any worker-thread count.

use crate::request::SloClass;

/// Fleet routing policy.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RouterPolicy {
    /// `arrival_index % replicas`, load-blind.
    RoundRobin,
    /// Join-shortest-queue on free HBM pages with class-aware spillover.
    JsqSpillover,
}

impl RouterPolicy {
    /// Parses a CLI policy name (`rr` or `jsq`).
    ///
    /// # Errors
    ///
    /// Returns a message naming the accepted forms.
    pub fn parse(s: &str) -> Result<Self, String> {
        match s {
            "rr" | "round-robin" => Ok(RouterPolicy::RoundRobin),
            "jsq" | "jsq-spillover" => Ok(RouterPolicy::JsqSpillover),
            other => Err(format!("invalid router policy '{other}' (use jsq or rr)")),
        }
    }

    /// Short display name.
    pub fn name(self) -> &'static str {
        match self {
            RouterPolicy::RoundRobin => "rr",
            RouterPolicy::JsqSpillover => "jsq",
        }
    }
}

/// A replica's load as the router sees it: one snapshot per arrival.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SchedLoad {
    /// Requests in the running batch.
    pub active: usize,
    /// Requests queued for admission.
    pub waiting: usize,
    /// HBM pages currently held.
    pub hbm_used: usize,
    /// HBM pages usable under the watermark.
    pub hbm_limit: usize,
    /// DReX pages currently held.
    pub drex_used: usize,
    /// DReX page capacity.
    pub drex_capacity: usize,
}

impl SchedLoad {
    /// Free HBM pages under the watermark.
    pub fn free_hbm(&self) -> usize {
        self.hbm_limit.saturating_sub(self.hbm_used)
    }

    /// Free DReX pages.
    pub fn free_drex(&self) -> usize {
        self.drex_capacity.saturating_sub(self.drex_used)
    }

    /// HBM occupancy fraction in `[0, 1]` (a zero-limit ledger reads as
    /// fully occupied).
    pub fn hbm_occupancy(&self) -> f64 {
        if self.hbm_limit == 0 {
            return 1.0;
        }
        (self.hbm_used as f64 / self.hbm_limit as f64).min(1.0)
    }
}

/// Occupancy fraction past which a replica sheds this class to the rest of
/// the fleet. Shedding order under rising load: best-effort first, then
/// batch; interactive traffic is never shed.
fn shed_threshold(class: SloClass) -> f64 {
    match class {
        SloClass::Interactive => f64::INFINITY,
        SloClass::Batch => 0.75,
        SloClass::BestEffort => 0.5,
    }
}

/// splitmix64 — the deterministic tie-break stream.
fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

/// The fleet router. Stateless apart from its seed: every decision is a
/// pure function of `(seed, arrival_index, class, loads)`.
#[derive(Debug, Clone, Copy)]
pub struct Router {
    policy: RouterPolicy,
    seed: u64,
}

impl Router {
    /// Creates a router with the given tie-break seed (the workload seed,
    /// by convention, so one seed pins the whole run).
    pub fn new(policy: RouterPolicy, seed: u64) -> Self {
        Self { policy, seed }
    }

    /// The policy this router applies.
    pub fn policy(&self) -> RouterPolicy {
        self.policy
    }

    /// Picks the replica for arrival `arrival_index` of `class` given the
    /// per-replica load snapshots. `loads` must be non-empty.
    pub fn route(&self, arrival_index: usize, class: SloClass, loads: &[SchedLoad]) -> usize {
        assert!(!loads.is_empty(), "route over an empty fleet");
        match self.policy {
            RouterPolicy::RoundRobin => arrival_index % loads.len(),
            RouterPolicy::JsqSpillover => self.jsq_spillover(arrival_index, class, loads),
        }
    }

    fn jsq_spillover(&self, arrival_index: usize, class: SloClass, loads: &[SchedLoad]) -> usize {
        let threshold = shed_threshold(class);
        let eligible: Vec<usize> = (0..loads.len())
            .filter(|&i| loads[i].hbm_occupancy() < threshold)
            .collect();
        // Every replica hot: shedding balances, it never rejects — fall
        // back to plain JSQ over the whole fleet.
        let pool: Vec<usize> = if eligible.is_empty() {
            (0..loads.len()).collect()
        } else {
            eligible
        };
        // Most free HBM pages wins; free DReX breaks the first tie, the
        // shortest admission queue the second.
        let best_key = pool
            .iter()
            .map(|&i| {
                (
                    loads[i].free_hbm(),
                    loads[i].free_drex(),
                    usize::MAX - loads[i].waiting,
                )
            })
            .max()
            .expect("pool is non-empty");
        let tied: Vec<usize> = pool
            .into_iter()
            .filter(|&i| {
                (
                    loads[i].free_hbm(),
                    loads[i].free_drex(),
                    usize::MAX - loads[i].waiting,
                ) == best_key
            })
            .collect();
        // Seeded rotation among exact ties keeps placement a pure function
        // of (seed, arrival index) without biasing toward low indices.
        let r = splitmix64(self.seed ^ (arrival_index as u64).wrapping_mul(0x243f_6a88_85a3_08d3));
        tied[(r % tied.len() as u64) as usize]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn load(hbm_used: usize, hbm_limit: usize) -> SchedLoad {
        SchedLoad {
            active: 0,
            waiting: 0,
            hbm_used,
            hbm_limit,
            drex_used: 0,
            drex_capacity: 1000,
        }
    }

    #[test]
    fn round_robin_cycles() {
        let r = Router::new(RouterPolicy::RoundRobin, 7);
        let loads = [load(0, 10), load(9, 10), load(5, 10)];
        for i in 0..9 {
            assert_eq!(r.route(i, SloClass::Interactive, &loads), i % 3);
        }
    }

    #[test]
    fn jsq_picks_the_most_free_hbm() {
        let r = Router::new(RouterPolicy::JsqSpillover, 7);
        let loads = [load(8, 10), load(2, 10), load(5, 10)];
        for class in SloClass::ALL {
            assert_eq!(r.route(0, class, &loads), 1);
        }
    }

    #[test]
    fn spillover_sheds_best_effort_before_batch_before_interactive() {
        // Replica 0 at 60% occupancy but with the most free pages (larger
        // device): plain JSQ would pick it for everyone; spillover keeps
        // best-effort off it.
        let loads = [load(60, 100), load(4, 10)];
        assert!(loads[0].free_hbm() > loads[1].free_hbm());
        let r = Router::new(RouterPolicy::JsqSpillover, 7);
        assert_eq!(r.route(0, SloClass::BestEffort, &loads), 1, "0 is past 50%");
        assert_eq!(r.route(0, SloClass::Batch, &loads), 0, "0 is under 75%");
        assert_eq!(r.route(0, SloClass::Interactive, &loads), 0);
        // Past 75% the batch class sheds too; interactive never does.
        let hot = [load(80, 100), load(4, 10)];
        assert_eq!(r.route(0, SloClass::Batch, &hot), 1);
        assert_eq!(r.route(0, SloClass::Interactive, &hot), 0);
    }

    #[test]
    fn all_hot_falls_back_to_global_jsq() {
        let loads = [load(9, 10), load(7, 10)];
        let r = Router::new(RouterPolicy::JsqSpillover, 7);
        // Both past the best-effort threshold: the freer one still wins.
        assert_eq!(r.route(0, SloClass::BestEffort, &loads), 1);
    }

    #[test]
    fn tie_break_is_a_pure_function_of_seed_and_index() {
        let loads = [load(5, 10), load(5, 10), load(5, 10), load(5, 10)];
        let r = Router::new(RouterPolicy::JsqSpillover, 42);
        let picks: Vec<usize> = (0..64)
            .map(|i| r.route(i, SloClass::Interactive, &loads))
            .collect();
        // Reproducible...
        let again: Vec<usize> = (0..64)
            .map(|i| r.route(i, SloClass::Interactive, &loads))
            .collect();
        assert_eq!(picks, again);
        // ...seed-dependent...
        let other = Router::new(RouterPolicy::JsqSpillover, 43);
        let shifted: Vec<usize> = (0..64)
            .map(|i| other.route(i, SloClass::Interactive, &loads))
            .collect();
        assert_ne!(picks, shifted);
        // ...and not biased onto one replica.
        for rep in 0..4 {
            assert!(picks.contains(&rep), "replica {rep} never picked");
        }
    }

    #[test]
    fn policy_parses() {
        assert_eq!(
            RouterPolicy::parse("jsq").unwrap(),
            RouterPolicy::JsqSpillover
        );
        assert_eq!(RouterPolicy::parse("rr").unwrap(), RouterPolicy::RoundRobin);
        assert!(RouterPolicy::parse("bogus").is_err());
    }

    #[test]
    fn occupancy_handles_zero_limit() {
        assert_eq!(load(0, 0).hbm_occupancy(), 1.0);
        assert_eq!(load(5, 10).hbm_occupancy(), 0.5);
    }
}
