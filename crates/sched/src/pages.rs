//! Paged KV-cache memory manager for the two-tier HBM / DReX hierarchy.
//!
//! LongSight's hybrid attention splits every request's KV state into an
//! HBM-resident sliding window (plus sinks) and a DReX-resident long-range
//! tail. This module tracks both tiers at page (block) granularity against
//! the configured device capacities, so admission control becomes a memory
//! decision: a request is admitted iff its window pages fit under the HBM
//! watermark *and* its tail pages fit in DReX.
//!
//! The manager is pure bookkeeping — it never computes latency — and it
//! checks its page-count invariants (per-request sums match the device
//! totals, capacities respected in enforcing mode) after every mutation in
//! debug builds. [`PagedKvManager::check_invariants`] is public so tests can
//! assert them in release builds too.

/// Page-granular capacity description of the two KV tiers.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PageConfig {
    /// Tokens per KV page (block granularity of alloc/free).
    pub page_tokens: usize,
    /// HBM pages available for KV windows (device capacity minus weights).
    pub hbm_capacity_pages: usize,
    /// DReX pages available for long-range tails.
    pub drex_capacity_pages: usize,
    /// High watermark as a fraction of HBM capacity. In enforcing mode no
    /// allocation may push HBM usage past `floor(capacity × watermark)`;
    /// the headroom above it absorbs transient growth.
    pub hbm_watermark: f64,
}

impl PageConfig {
    /// A configuration with effectively unlimited capacity — used when the
    /// serving system cannot describe its device geometry, so the scheduler
    /// falls back to feasibility-only admission while still tracking pages.
    pub fn unbounded(page_tokens: usize) -> Self {
        Self {
            page_tokens: page_tokens.max(1),
            hbm_capacity_pages: usize::MAX / 4,
            drex_capacity_pages: usize::MAX / 4,
            hbm_watermark: 1.0,
        }
    }

    /// Pages needed to hold `tokens` tokens (zero tokens → zero pages).
    pub fn pages_for(&self, tokens: usize) -> usize {
        tokens.div_ceil(self.page_tokens.max(1))
    }

    /// The enforced HBM ceiling: `floor(capacity × watermark)` pages.
    ///
    /// Floor semantics are exact on exact products: the binary product of
    /// e.g. `0.29 × 100` is `28.999…96`, which a bare `as usize` cast
    /// truncated to 28 instead of the mathematically intended 29 (and
    /// `0.3 × 10` to 2 instead of 3). The product is therefore snapped to
    /// the nearest integer first when it sits within a relative epsilon of
    /// one, and floored otherwise.
    pub fn hbm_limit_pages(&self) -> usize {
        let w = self.hbm_watermark.clamp(0.0, 1.0);
        let product = self.hbm_capacity_pages as f64 * w;
        let nearest = product.round();
        let limit = if (product - nearest).abs() <= 1e-9 * nearest.max(1.0) {
            nearest
        } else {
            product.floor()
        };
        (limit as usize).min(self.hbm_capacity_pages)
    }
}

/// Why an allocation was refused (enforcing mode only).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AllocError {
    /// The HBM watermark would be exceeded.
    HbmExhausted {
        /// Pages requested.
        requested: usize,
        /// Pages currently in use.
        used: usize,
        /// The watermark-derived ceiling.
        limit: usize,
    },
    /// The DReX device would overflow.
    DrexExhausted {
        /// Pages requested.
        requested: usize,
        /// Pages currently in use.
        used: usize,
        /// Device capacity.
        capacity: usize,
    },
}

impl std::fmt::Display for AllocError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            AllocError::HbmExhausted {
                requested,
                used,
                limit,
            } => write!(
                f,
                "HBM pages exhausted: want {requested}, {used}/{limit} in use"
            ),
            AllocError::DrexExhausted {
                requested,
                used,
                capacity,
            } => write!(
                f,
                "DReX pages exhausted: want {requested}, {used}/{capacity} in use"
            ),
        }
    }
}

impl std::error::Error for AllocError {}

/// Point-in-time usage summary of the manager.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct PageStats {
    /// HBM pages currently allocated.
    pub hbm_used: usize,
    /// DReX pages currently allocated.
    pub drex_used: usize,
    /// Peak HBM pages ever allocated.
    pub peak_hbm: usize,
    /// Peak DReX pages ever allocated.
    pub peak_drex: usize,
    /// The watermark-derived HBM ceiling.
    pub hbm_limit: usize,
    /// DReX device capacity in pages.
    pub drex_capacity: usize,
    /// Requests currently holding pages.
    pub holders: usize,
    /// Prefix-cache carve-out in pages (0 = cache disabled).
    pub prefix_capacity: usize,
    /// Prefix pages currently cached (pinned or reclaimable).
    pub prefix_pages: usize,
    /// Outstanding prefix pins (one per live request holding a prefix).
    pub prefix_pinned: usize,
    /// Prefix pins that hit a cached entry.
    pub prefix_hits: usize,
    /// Prefix pins that missed.
    pub prefix_misses: usize,
    /// Unpinned prefix entries reclaimed by LRU to make room.
    pub prefix_reclaims: usize,
}

#[derive(Debug, Clone, Copy)]
struct Entry {
    id: usize,
    hbm: usize,
    drex: usize,
}

/// One content-keyed prefix resident in the cache. Pages are shared: any
/// number of live requests may pin the same hash, and the frames are freed
/// only by LRU reclamation (refs == 0) or a crash wipe — never per-request.
#[derive(Debug, Clone, Copy)]
struct PrefixEntry {
    hash: u64,
    pages: usize,
    refs: usize,
    last_use: u64,
}

/// Block-granular allocator over the HBM window tier and the DReX tail tier.
///
/// In *enforcing* mode (`enforce = true`) allocations fail when they would
/// exceed the HBM watermark or the DReX capacity. In tracking mode every
/// allocation succeeds and the manager only records usage and peaks — this
/// is what the FIFO policy uses, where admission is decided by step
/// feasibility alone and pages are bookkeeping.
#[derive(Debug, Clone)]
pub struct PagedKvManager {
    cfg: PageConfig,
    enforce: bool,
    entries: Vec<Entry>,
    hbm_used: usize,
    drex_used: usize,
    peak_hbm: usize,
    peak_drex: usize,
    prefix: Vec<PrefixEntry>,
    prefix_capacity: usize,
    prefix_used: usize,
    prefix_clock: u64,
    prefix_hits: usize,
    prefix_misses: usize,
    prefix_reclaims: usize,
}

impl PagedKvManager {
    /// Creates a manager over `cfg`, enforcing capacities iff `enforce`.
    pub fn new(cfg: PageConfig, enforce: bool) -> Self {
        Self {
            cfg,
            enforce,
            entries: Vec::new(),
            hbm_used: 0,
            drex_used: 0,
            peak_hbm: 0,
            peak_drex: 0,
            prefix: Vec::new(),
            prefix_capacity: 0,
            prefix_used: 0,
            prefix_clock: 0,
            prefix_hits: 0,
            prefix_misses: 0,
            prefix_reclaims: 0,
        }
    }

    /// The capacity configuration.
    pub fn config(&self) -> &PageConfig {
        &self.cfg
    }

    /// Whether capacities are enforced.
    pub fn is_enforcing(&self) -> bool {
        self.enforce
    }

    fn idx(&self, id: usize) -> Option<usize> {
        self.entries.iter().position(|e| e.id == id)
    }

    fn bump_peaks(&mut self) {
        self.peak_hbm = self.peak_hbm.max(self.hbm_used);
        self.peak_drex = self.peak_drex.max(self.drex_used);
    }

    /// Whether `extra` more HBM pages would fit under the watermark ceiling.
    pub fn hbm_fits(&self, extra: usize) -> bool {
        self.hbm_used + extra <= self.cfg.hbm_limit_pages()
    }

    /// Whether `extra` more DReX pages would fit in the device.
    pub fn drex_fits(&self, extra: usize) -> bool {
        self.drex_used + extra <= self.cfg.drex_capacity_pages
    }

    /// Allocates `hbm` window pages and `drex` tail pages for request `id`.
    ///
    /// The request must not already hold pages. In enforcing mode the
    /// allocation is all-or-nothing: on error no state changes.
    ///
    /// # Errors
    ///
    /// Returns the exhausted tier in enforcing mode.
    pub fn try_alloc(&mut self, id: usize, hbm: usize, drex: usize) -> Result<(), AllocError> {
        debug_assert!(
            self.idx(id).is_none(),
            "request {id} already holds pages; free before re-allocating"
        );
        if self.enforce {
            if !self.hbm_fits(hbm) {
                return Err(AllocError::HbmExhausted {
                    requested: hbm,
                    used: self.hbm_used,
                    limit: self.cfg.hbm_limit_pages(),
                });
            }
            if !self.drex_fits(drex) {
                return Err(AllocError::DrexExhausted {
                    requested: drex,
                    used: self.drex_used,
                    capacity: self.cfg.drex_capacity_pages,
                });
            }
        }
        self.entries.push(Entry { id, hbm, drex });
        self.hbm_used += hbm;
        self.drex_used += drex;
        self.bump_peaks();
        debug_assert_eq!(self.check_invariants(), Ok(()));
        Ok(())
    }

    /// Releases request `id`'s HBM window pages (eviction to DReX-resident
    /// state), keeping its tail pages. Returns the pages freed.
    pub fn release_hbm(&mut self, id: usize) -> usize {
        let Some(i) = self.idx(id) else { return 0 };
        let freed = self.entries[i].hbm;
        self.entries[i].hbm = 0;
        self.hbm_used -= freed;
        debug_assert_eq!(self.check_invariants(), Ok(()));
        freed
    }

    /// Re-acquires `hbm` window pages for an evicted request `id` (resume).
    ///
    /// # Errors
    ///
    /// Returns [`AllocError::HbmExhausted`] in enforcing mode when the
    /// watermark would be breached.
    pub fn regain_hbm(&mut self, id: usize, hbm: usize) -> Result<(), AllocError> {
        let Some(i) = self.idx(id) else {
            return self.try_alloc(id, hbm, 0);
        };
        if self.enforce && !self.hbm_fits(hbm) {
            return Err(AllocError::HbmExhausted {
                requested: hbm,
                used: self.hbm_used,
                limit: self.cfg.hbm_limit_pages(),
            });
        }
        self.entries[i].hbm += hbm;
        self.hbm_used += hbm;
        self.bump_peaks();
        debug_assert_eq!(self.check_invariants(), Ok(()));
        Ok(())
    }

    /// Releases request `id`'s DReX tail pages (degradation to window-only
    /// attention abandons the long-range tail). Returns the pages freed.
    pub fn release_drex(&mut self, id: usize) -> usize {
        let Some(i) = self.idx(id) else { return 0 };
        let freed = self.entries[i].drex;
        self.entries[i].drex = 0;
        self.drex_used -= freed;
        debug_assert_eq!(self.check_invariants(), Ok(()));
        freed
    }

    /// Frees everything request `id` holds (completion, failure, rejection
    /// of a resumed request). Returns `(hbm, drex)` pages freed.
    pub fn free_all(&mut self, id: usize) -> (usize, usize) {
        let Some(i) = self.idx(id) else { return (0, 0) };
        let e = self.entries.swap_remove(i);
        self.hbm_used -= e.hbm;
        self.drex_used -= e.drex;
        debug_assert_eq!(self.check_invariants(), Ok(()));
        (e.hbm, e.drex)
    }

    /// Pages currently held by request `id`, as `(hbm, drex)`.
    pub fn pages_of(&self, id: usize) -> Option<(usize, usize)> {
        self.idx(id)
            .map(|i| (self.entries[i].hbm, self.entries[i].drex))
    }

    /// IDs of all requests currently holding pages (unordered).
    pub fn holder_ids(&self) -> Vec<usize> {
        self.entries.iter().map(|e| e.id).collect()
    }

    /// HBM pages currently in use.
    pub fn hbm_used(&self) -> usize {
        self.hbm_used
    }

    /// DReX pages currently in use.
    pub fn drex_used(&self) -> usize {
        self.drex_used
    }

    /// Arms the content-keyed prefix cache with a carve-out of `pages`
    /// DReX-tier pages (0 disables it). The carve-out is a dedicated pool:
    /// cached prefixes never compete with per-request tail pages.
    pub fn set_prefix_capacity(&mut self, pages: usize) {
        self.prefix_capacity = pages;
        debug_assert_eq!(self.check_invariants(), Ok(()));
    }

    /// The prefix-cache carve-out in pages (0 = disabled).
    pub fn prefix_capacity(&self) -> usize {
        self.prefix_capacity
    }

    /// Pages held by the cached prefix `hash`, if resident. Read-only: does
    /// not count as a hit or bump recency.
    pub fn prefix_lookup(&self, hash: u64) -> Option<usize> {
        self.prefix.iter().find(|p| p.hash == hash).map(|p| p.pages)
    }

    /// Pins the cached prefix `hash` for a resuming request, returning its
    /// page count. A pin increments the entry's refcount and shields it
    /// from LRU reclamation until [`Self::prefix_unpin`]. Counts as a hit;
    /// a miss (`None`) is counted too.
    pub fn prefix_pin(&mut self, hash: u64) -> Option<usize> {
        self.prefix_clock += 1;
        let clock = self.prefix_clock;
        match self.prefix.iter_mut().find(|p| p.hash == hash) {
            Some(p) => {
                p.refs += 1;
                p.last_use = clock;
                self.prefix_hits += 1;
                Some(p.pages)
            }
            None => {
                self.prefix_misses += 1;
                None
            }
        }
    }

    /// Drops one pin on prefix `hash`. The frames stay cached (refs may hit
    /// zero, making the entry reclaimable) — shared pages are never freed
    /// per-request.
    pub fn prefix_unpin(&mut self, hash: u64) {
        if let Some(p) = self.prefix.iter_mut().find(|p| p.hash == hash) {
            debug_assert!(p.refs > 0, "unpinning prefix {hash:#x} with no pins");
            p.refs = p.refs.saturating_sub(1);
        }
        debug_assert_eq!(self.check_invariants(), Ok(()));
    }

    /// Publishes `pages` pages under content key `hash`, reclaiming
    /// least-recently-used unpinned entries to make room. Returns `false`
    /// (and changes nothing beyond reclamation already performed) when the
    /// cache is disabled, the prefix alone exceeds the carve-out, or every
    /// resident page is pinned. Re-inserting a resident hash only bumps its
    /// recency.
    pub fn prefix_insert(&mut self, hash: u64, pages: usize) -> bool {
        if self.prefix_capacity == 0 || pages == 0 || pages > self.prefix_capacity {
            return false;
        }
        self.prefix_clock += 1;
        let clock = self.prefix_clock;
        if let Some(p) = self.prefix.iter_mut().find(|p| p.hash == hash) {
            p.last_use = clock;
            debug_assert_eq!(
                p.pages, pages,
                "prefix {hash:#x} re-published with a different page count"
            );
            return true;
        }
        while self.prefix_used + pages > self.prefix_capacity {
            let victim = self
                .prefix
                .iter()
                .enumerate()
                .filter(|(_, p)| p.refs == 0)
                .min_by_key(|(_, p)| p.last_use)
                .map(|(i, _)| i);
            let Some(i) = victim else { return false };
            let evicted = self.prefix.remove(i);
            self.prefix_used -= evicted.pages;
            self.prefix_reclaims += 1;
        }
        self.prefix.push(PrefixEntry {
            hash,
            pages,
            refs: 0,
            last_use: clock,
        });
        self.prefix_used += pages;
        debug_assert_eq!(self.check_invariants(), Ok(()));
        true
    }

    /// Total outstanding pins across all cached prefixes. The fleet audit
    /// requires this to equal the number of live requests holding a prefix.
    pub fn prefix_pinned_refs(&self) -> usize {
        self.prefix.iter().map(|p| p.refs).sum()
    }

    /// Pages belonging to currently-pinned prefixes (the telemetry
    /// sampler's sparkline; shared pages count once however many pins
    /// hold them).
    pub fn prefix_pinned_pages(&self) -> usize {
        self.prefix
            .iter()
            .filter(|p| p.refs > 0)
            .map(|p| p.pages)
            .sum()
    }

    /// Wipes the prefix cache (replica crash: the pooled-tier content is
    /// gone). All pins are implicitly dropped — callers must clear their
    /// per-request prefix handles rather than unpin afterwards. Returns the
    /// pages dropped.
    pub fn prefix_crash_clear(&mut self) -> usize {
        let dropped = self.prefix_used;
        self.prefix.clear();
        self.prefix_used = 0;
        debug_assert_eq!(self.check_invariants(), Ok(()));
        dropped
    }

    /// Usage summary.
    pub fn stats(&self) -> PageStats {
        PageStats {
            hbm_used: self.hbm_used,
            drex_used: self.drex_used,
            peak_hbm: self.peak_hbm,
            peak_drex: self.peak_drex,
            hbm_limit: self.cfg.hbm_limit_pages(),
            drex_capacity: self.cfg.drex_capacity_pages,
            holders: self.entries.len(),
            prefix_capacity: self.prefix_capacity,
            prefix_pages: self.prefix_used,
            prefix_pinned: self.prefix_pinned_refs(),
            prefix_hits: self.prefix_hits,
            prefix_misses: self.prefix_misses,
            prefix_reclaims: self.prefix_reclaims,
        }
    }

    /// Verifies the page-count invariants: per-request sums match the
    /// device totals, IDs are unique, and (in enforcing mode) the HBM
    /// watermark and DReX capacity were never exceeded.
    ///
    /// # Errors
    ///
    /// Returns a description of the first violated invariant.
    pub fn check_invariants(&self) -> Result<(), String> {
        let hbm_sum: usize = self.entries.iter().map(|e| e.hbm).sum();
        let drex_sum: usize = self.entries.iter().map(|e| e.drex).sum();
        if hbm_sum != self.hbm_used {
            return Err(format!(
                "HBM ledger drift: entries sum {hbm_sum} != used {}",
                self.hbm_used
            ));
        }
        if drex_sum != self.drex_used {
            return Err(format!(
                "DReX ledger drift: entries sum {drex_sum} != used {}",
                self.drex_used
            ));
        }
        for (i, e) in self.entries.iter().enumerate() {
            if self.entries[i + 1..].iter().any(|o| o.id == e.id) {
                return Err(format!("duplicate page-table entry for request {}", e.id));
            }
        }
        if self.enforce {
            let limit = self.cfg.hbm_limit_pages();
            if self.hbm_used > limit {
                return Err(format!(
                    "HBM watermark exceeded: {} > {limit} pages",
                    self.hbm_used
                ));
            }
            if self.drex_used > self.cfg.drex_capacity_pages {
                return Err(format!(
                    "DReX capacity exceeded: {} > {} pages",
                    self.drex_used, self.cfg.drex_capacity_pages
                ));
            }
            if self.peak_hbm > limit {
                return Err(format!(
                    "HBM watermark was exceeded at peak: {} > {limit} pages",
                    self.peak_hbm
                ));
            }
        }
        let prefix_sum: usize = self.prefix.iter().map(|p| p.pages).sum();
        if prefix_sum != self.prefix_used {
            return Err(format!(
                "prefix ledger drift: entries sum {prefix_sum} != used {}",
                self.prefix_used
            ));
        }
        if self.prefix_used > self.prefix_capacity {
            return Err(format!(
                "prefix carve-out exceeded: {} > {} pages",
                self.prefix_used, self.prefix_capacity
            ));
        }
        for (i, p) in self.prefix.iter().enumerate() {
            if self.prefix[i + 1..].iter().any(|o| o.hash == p.hash) {
                return Err(format!("duplicate prefix entry for hash {:#x}", p.hash));
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg() -> PageConfig {
        PageConfig {
            page_tokens: 1024,
            hbm_capacity_pages: 100,
            drex_capacity_pages: 1000,
            hbm_watermark: 0.9,
        }
    }

    #[test]
    fn pages_round_up() {
        let c = cfg();
        assert_eq!(c.pages_for(0), 0);
        assert_eq!(c.pages_for(1), 1);
        assert_eq!(c.pages_for(1024), 1);
        assert_eq!(c.pages_for(1025), 2);
    }

    #[test]
    fn watermark_floors() {
        assert_eq!(cfg().hbm_limit_pages(), 90);
    }

    #[test]
    fn watermark_exact_products_do_not_truncate() {
        // Exact mathematical products must floor to themselves even when
        // the binary float product lands just below the integer
        // (0.29 × 100 = 28.999…96 as f64, 0.3 × 10 = 2.999…96).
        let at = |capacity: usize, watermark: f64| {
            PageConfig {
                page_tokens: 1024,
                hbm_capacity_pages: capacity,
                drex_capacity_pages: 0,
                hbm_watermark: watermark,
            }
            .hbm_limit_pages()
        };
        assert_eq!(at(100, 0.29), 29);
        assert_eq!(at(10, 0.3), 3);
        assert_eq!(at(10, 0.7), 7);
        assert_eq!(at(1000, 0.001), 1);
        assert_eq!(at(22_00, 0.01), 22);
        // Non-exact products still floor.
        assert_eq!(at(100, 0.299), 29);
        assert_eq!(at(100, 0.291), 29);
        assert_eq!(at(3, 0.5), 1);
        assert_eq!(at(7, 0.33), 2);
        // Degenerate watermarks clamp to the full range.
        assert_eq!(at(100, 0.0), 0);
        assert_eq!(at(100, 1.0), 100);
        assert_eq!(at(100, 2.0), 100, "watermark clamps to 1");
        assert_eq!(at(100, -1.0), 0, "watermark clamps to 0");
        // The ceiling never exceeds the device capacity, even where the
        // capacity is not exactly representable as f64.
        let huge = usize::MAX / 4;
        assert_eq!(at(huge, 1.0), huge);
    }

    #[test]
    fn alloc_free_balances() {
        let mut m = PagedKvManager::new(cfg(), true);
        m.try_alloc(1, 10, 50).unwrap();
        m.try_alloc(2, 20, 100).unwrap();
        assert_eq!(m.hbm_used(), 30);
        assert_eq!(m.drex_used(), 150);
        assert_eq!(m.free_all(1), (10, 50));
        assert_eq!(m.free_all(2), (20, 100));
        assert_eq!(m.hbm_used(), 0);
        assert_eq!(m.drex_used(), 0);
        assert_eq!(m.stats().peak_hbm, 30);
        m.check_invariants().unwrap();
    }

    #[test]
    fn enforcing_refuses_past_watermark() {
        let mut m = PagedKvManager::new(cfg(), true);
        m.try_alloc(1, 85, 0).unwrap();
        let err = m.try_alloc(2, 10, 0).unwrap_err();
        assert!(matches!(err, AllocError::HbmExhausted { limit: 90, .. }));
        // All-or-nothing: the failed alloc left no residue.
        assert_eq!(m.hbm_used(), 85);
        assert!(m.pages_of(2).is_none());
        m.check_invariants().unwrap();
    }

    #[test]
    fn enforcing_refuses_drex_overflow() {
        let mut m = PagedKvManager::new(cfg(), true);
        let err = m.try_alloc(1, 0, 1001).unwrap_err();
        assert!(matches!(
            err,
            AllocError::DrexExhausted { capacity: 1000, .. }
        ));
    }

    #[test]
    fn tracking_mode_never_refuses() {
        let mut m = PagedKvManager::new(cfg(), false);
        m.try_alloc(1, 500, 5000).unwrap();
        assert_eq!(m.hbm_used(), 500);
        m.check_invariants().unwrap();
    }

    #[test]
    fn eviction_keeps_tail_and_resume_regains_window() {
        let mut m = PagedKvManager::new(cfg(), true);
        m.try_alloc(7, 30, 200).unwrap();
        assert_eq!(m.release_hbm(7), 30);
        assert_eq!(m.pages_of(7), Some((0, 200)));
        m.regain_hbm(7, 30).unwrap();
        assert_eq!(m.pages_of(7), Some((30, 200)));
        m.check_invariants().unwrap();
    }

    #[test]
    fn degradation_releases_tail() {
        let mut m = PagedKvManager::new(cfg(), true);
        m.try_alloc(3, 10, 400).unwrap();
        assert_eq!(m.release_drex(3), 400);
        assert_eq!(m.pages_of(3), Some((10, 0)));
        assert_eq!(m.drex_used(), 0);
    }

    #[test]
    fn missing_ids_are_noops() {
        let mut m = PagedKvManager::new(cfg(), true);
        assert_eq!(m.release_hbm(9), 0);
        assert_eq!(m.release_drex(9), 0);
        assert_eq!(m.free_all(9), (0, 0));
    }

    #[test]
    fn prefix_cache_disabled_by_default() {
        let mut m = PagedKvManager::new(cfg(), true);
        assert_eq!(m.prefix_capacity(), 0);
        assert!(!m.prefix_insert(0xabc, 4));
        assert_eq!(m.prefix_pin(0xabc), None);
        assert_eq!(m.stats().prefix_misses, 1);
        assert_eq!(m.stats().prefix_pages, 0);
    }

    #[test]
    fn prefix_pin_shares_and_unpin_keeps_frames() {
        let mut m = PagedKvManager::new(cfg(), true);
        m.set_prefix_capacity(16);
        assert!(m.prefix_insert(0xa, 6));
        // Two live sessions share the same frames: refcount 2, pages 6 once.
        assert_eq!(m.prefix_pin(0xa), Some(6));
        assert_eq!(m.prefix_pin(0xa), Some(6));
        assert_eq!(m.prefix_pinned_refs(), 2);
        assert_eq!(m.stats().prefix_pages, 6);
        assert_eq!(m.stats().prefix_hits, 2);
        // Unpinning drops refs but never the shared frames.
        m.prefix_unpin(0xa);
        m.prefix_unpin(0xa);
        assert_eq!(m.prefix_pinned_refs(), 0);
        assert_eq!(m.prefix_lookup(0xa), Some(6));
        m.check_invariants().unwrap();
    }

    #[test]
    fn prefix_lru_reclaims_only_unpinned() {
        let mut m = PagedKvManager::new(cfg(), true);
        m.set_prefix_capacity(10);
        assert!(m.prefix_insert(0x1, 4));
        assert!(m.prefix_insert(0x2, 4));
        m.prefix_pin(0x1);
        // 0x2 is older than nothing pinnable but 0x1 is pinned: inserting 6
        // pages must evict 0x2 (LRU unpinned), never 0x1.
        assert!(m.prefix_insert(0x3, 6));
        assert_eq!(m.prefix_lookup(0x1), Some(4));
        assert_eq!(m.prefix_lookup(0x2), None);
        assert_eq!(m.stats().prefix_reclaims, 1);
        // With 0x1 pinned and 0x3 too big to evict enough, a full-width
        // insert fails rather than touching pinned frames.
        m.prefix_pin(0x3);
        assert!(!m.prefix_insert(0x4, 8));
        assert_eq!(m.prefix_lookup(0x1), Some(4));
        assert_eq!(m.prefix_lookup(0x3), Some(6));
        m.check_invariants().unwrap();
    }

    #[test]
    fn prefix_reinsert_bumps_recency_not_pages() {
        let mut m = PagedKvManager::new(cfg(), true);
        m.set_prefix_capacity(8);
        assert!(m.prefix_insert(0x1, 4));
        assert!(m.prefix_insert(0x2, 4));
        // Re-publishing 0x1 makes 0x2 the LRU victim.
        assert!(m.prefix_insert(0x1, 4));
        assert!(m.prefix_insert(0x3, 4));
        assert_eq!(m.prefix_lookup(0x1), Some(4));
        assert_eq!(m.prefix_lookup(0x2), None);
        assert_eq!(m.stats().prefix_pages, 8);
    }

    #[test]
    fn prefix_crash_clear_wipes_everything() {
        let mut m = PagedKvManager::new(cfg(), true);
        m.set_prefix_capacity(16);
        m.prefix_insert(0x1, 4);
        m.prefix_insert(0x2, 8);
        m.prefix_pin(0x1);
        assert_eq!(m.prefix_crash_clear(), 12);
        assert_eq!(m.stats().prefix_pages, 0);
        assert_eq!(m.prefix_pinned_refs(), 0);
        assert_eq!(m.prefix_lookup(0x1), None);
        m.check_invariants().unwrap();
    }

    #[test]
    fn prefix_oversized_insert_refused() {
        let mut m = PagedKvManager::new(cfg(), true);
        m.set_prefix_capacity(4);
        assert!(!m.prefix_insert(0x1, 5));
        assert!(!m.prefix_insert(0x2, 0), "zero-page prefixes are refused");
        assert_eq!(m.stats().prefix_pages, 0);
    }
}
