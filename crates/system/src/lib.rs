//! End-to-end serving simulation for LongSight and the paper's baselines.
//!
//! * [`LongSightSystem`] — GPU + DReX hybrid attention pipeline with
//!   window/offload overlap, NMA contention, CXL polling and value reads,
//! * [`GpuOnlySystem`] — dense attention on 1..N data-parallel GPUs,
//! * [`AttAccSystem`] — GPU + HBM-PIM dense-attention offload,
//! * [`SlidingWindowSystem`] — StreamingLLM-style window attention,
//!
//! all behind the [`ServingSystem`] trait, which yields the throughput /
//! per-token-latency / breakdown rows of the paper's Figs 7–9.
//!
//! # Example
//!
//! ```
//! use longsight_system::{LongSightConfig, LongSightSystem, ServingSystem};
//! use longsight_model::ModelConfig;
//!
//! let mut s = LongSightSystem::new(LongSightConfig::paper_default(), ModelConfig::llama3_1b());
//! let report = s.evaluate(4, 131_072)?;
//! println!("{:.1} tok/s at {:.2} ms/token", report.throughput_tps, report.latency_ms());
//! # Ok::<(), longsight_system::Infeasible>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod attribution;
mod baselines;
pub mod degrade;
mod longsight;
pub mod prefill;
mod report;
pub mod serving;
pub mod session;
pub mod slo;

pub use attribution::{SpecCharge, SpecSample, TokenAttribution};
pub use baselines::{AttAccSystem, GpuOnlySystem, SlidingWindowSystem};
pub use degrade::{DegradeStats, TokenOutcome};
pub use longsight::{
    FaultedLayerReport, IssuedLayer, LongSightConfig, LongSightSystem, LookaheadConfig,
    OffloadProfile,
};
pub use report::{
    Infeasible, OffloadComponents, ServingSystem, SpecStep, StepBreakdown, StepReport,
};
pub use session::SessionOptions;
