//! The paper's comparison systems (§8.2): 1/2-GPU dense serving, AttAcc-style
//! GPU+PIM, and sliding-window attention.

use crate::report::{Infeasible, ServingSystem, StepBreakdown, StepReport};
use longsight_gpu::{decode_step, DataParallelGpus};
use longsight_model::ModelConfig;

/// Dense full attention on 1..N data-parallel GPUs.
#[derive(Debug, Clone)]
pub struct GpuOnlySystem {
    /// The GPU group (weights replicated, users split).
    pub gpus: DataParallelGpus,
    /// Model served.
    pub model: ModelConfig,
}

impl ServingSystem for GpuOnlySystem {
    fn name(&self) -> String {
        format!("{}-GPU dense", self.gpus.count)
    }

    fn evaluate(&mut self, users: usize, context: usize) -> Result<StepReport, Infeasible> {
        if !self.gpus.fits(&self.model, users, context) {
            return Err(Infeasible::GpuMemory);
        }
        let c = self.gpus.decode_step(&self.model, users, context, false, 0);
        let breakdown = StepBreakdown {
            gpu_weights_ns: c.weights_ns,
            gpu_attention_ns: c.attention_ns,
            ..Default::default()
        };
        Ok(StepReport::from_breakdown(users, context, breakdown))
    }

    fn max_users(&self, context: usize) -> usize {
        // Largest batch whose dense KV caches fit.
        let mut users = 0usize;
        while self.gpus.fits(&self.model, users + 1, context) {
            users += 1;
            if users >= 4096 {
                break;
            }
        }
        users
    }

    /// Dense single-tier page map: the whole context is HBM-resident
    /// (window unbounded), so there is no DReX tier and nothing to evict
    /// to — preemption is never profitable here.
    fn kv_geometry(&self, page_tokens: usize) -> Option<longsight_sched::KvDeviceGeometry> {
        let page_tokens = page_tokens.max(1);
        let page_bytes = self.model.kv_bytes_per_token() * page_tokens;
        if page_bytes == 0 {
            return None;
        }
        let free_hbm = self
            .gpus
            .spec
            .hbm_bytes
            .saturating_sub(self.model.weight_bytes())
            * self.gpus.count;
        Some(longsight_sched::KvDeviceGeometry {
            page_tokens,
            window_tokens: usize::MAX,
            hbm_capacity_pages: free_hbm / page_bytes,
            drex_capacity_pages: 0,
            restore_ns_per_page: 0.0,
            recompute_ns_per_token: 0.0,
        })
    }
}

/// Sliding-window (StreamingLLM-style) attention: KV beyond the window is
/// evicted, so memory is context-independent — but so is what the model can
/// see (the quality cost shows in Fig 10).
#[derive(Debug, Clone)]
pub struct SlidingWindowSystem {
    /// The GPU group.
    pub gpus: DataParallelGpus,
    /// Model served.
    pub model: ModelConfig,
    /// Window size.
    pub window: usize,
    /// Attention-sink tokens.
    pub sinks: usize,
}

impl ServingSystem for SlidingWindowSystem {
    fn name(&self) -> String {
        format!("sliding-window(W={})", self.window)
    }

    fn evaluate(&mut self, users: usize, context: usize) -> Result<StepReport, Infeasible> {
        let attended = context.min(self.window + self.sinks);
        // Only the window's KV is resident.
        if !self.gpus.fits(&self.model, users, attended) {
            return Err(Infeasible::GpuMemory);
        }
        let c = self
            .gpus
            .decode_step(&self.model, users, attended, false, 0);
        let breakdown = StepBreakdown {
            gpu_weights_ns: c.weights_ns,
            gpu_attention_ns: c.attention_ns,
            ..Default::default()
        };
        Ok(StepReport::from_breakdown(users, context, breakdown))
    }

    fn max_users(&self, context: usize) -> usize {
        let attended = context.min(self.window + self.sinks);
        let mut users = 0usize;
        while self.gpus.fits(&self.model, users + 1, attended) {
            users += 1;
            if users >= 4096 {
                break;
            }
        }
        users
    }
}

/// AttAcc-style GPU + HBM-PIM system: the GPU runs the compute-bound stages
/// while bank-level PIM units execute *dense* attention at internal DRAM
/// bandwidth. Dense attention remains linear in context — the PIM only
/// raises the bandwidth roof (§3.2).
#[derive(Debug, Clone)]
pub struct AttAccSystem {
    /// The host GPU (weights/FFN) — also hosts the PIM-enabled HBM.
    pub gpus: DataParallelGpus,
    /// Model served.
    pub model: ModelConfig,
    /// Aggregate internal PIM bandwidth, bytes/ns (≈4× external HBM).
    pub pim_bytes_per_ns: f64,
}

impl AttAccSystem {
    /// The configuration used in the paper's comparison: one H100 with
    /// bank-level PIM at 4× the external bandwidth.
    pub fn h100_pim(model: ModelConfig) -> Self {
        let gpus = DataParallelGpus::new(longsight_gpu::GpuSpec::h100_sxm(), 1);
        let pim = gpus.spec.hbm_bytes_per_ns * 4.0;
        Self {
            gpus,
            model,
            pim_bytes_per_ns: pim,
        }
    }
}

impl ServingSystem for AttAccSystem {
    fn name(&self) -> String {
        "AttAcc (GPU+PIM)".into()
    }

    fn evaluate(&mut self, users: usize, context: usize) -> Result<StepReport, Infeasible> {
        if !self.gpus.fits(&self.model, users, context) {
            return Err(Infeasible::GpuMemory);
        }
        let per_gpu_users = self.gpus.users_per_gpu(users);
        // GPU: weight-streaming only (attention is in PIM).
        let c = decode_step(&self.gpus.spec, &self.model, per_gpu_users, 0, false, 0);
        // PIM: stream each user's full KV cache through the in-bank MACs.
        let kv_bytes =
            per_gpu_users as f64 * context as f64 * self.model.kv_bytes_per_token() as f64;
        let pim_ns = kv_bytes / self.pim_bytes_per_ns;
        // NeuPIMs/AttAcc pipeline GPU and PIM stages across the batch: the
        // step is bounded by the slower side plus a handoff overhead.
        let handoff_ns = 2.0 * self.gpus.spec.launch_ns * self.model.layers as f64;
        let step = c.weights_ns.max(pim_ns) + handoff_ns;
        let breakdown = StepBreakdown {
            gpu_weights_ns: c.weights_ns.min(step - handoff_ns),
            gpu_attention_ns: (pim_ns - c.weights_ns).max(0.0),
            gpu_merge_ns: handoff_ns,
            ..Default::default()
        };
        Ok(StepReport::from_breakdown(users, context, breakdown))
    }

    fn max_users(&self, context: usize) -> usize {
        let mut users = 0usize;
        while self.gpus.fits(&self.model, users + 1, context) {
            users += 1;
            if users >= 4096 {
                break;
            }
        }
        users
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use longsight_gpu::GpuSpec;

    fn one_gpu(model: ModelConfig) -> GpuOnlySystem {
        GpuOnlySystem {
            gpus: DataParallelGpus::new(GpuSpec::h100_sxm(), 1),
            model,
        }
    }

    #[test]
    fn dense_gpu_rejects_oversized_context() {
        let mut s = one_gpu(ModelConfig::llama3_8b());
        assert_eq!(s.evaluate(1, 1 << 20).unwrap_err(), Infeasible::GpuMemory);
        assert!(s.evaluate(1, 32_768).is_ok());
    }

    #[test]
    fn two_gpus_double_max_users() {
        let one = one_gpu(ModelConfig::llama3_8b());
        let two = GpuOnlySystem {
            gpus: DataParallelGpus::new(GpuSpec::h100_sxm(), 2),
            model: ModelConfig::llama3_8b(),
        };
        let ctx = 65_536;
        assert_eq!(two.max_users(ctx), 2 * one.max_users(ctx));
    }

    #[test]
    fn sliding_window_cost_is_context_independent() {
        let mut s = SlidingWindowSystem {
            gpus: DataParallelGpus::new(GpuSpec::h100_sxm(), 1),
            model: ModelConfig::llama3_1b(),
            window: 1024,
            sinks: 16,
        };
        let short = s.evaluate(4, 8_192).unwrap();
        let long = s.evaluate(4, 1 << 20).unwrap();
        assert!((short.step_ns - long.step_ns).abs() < 1e-6);
    }

    #[test]
    fn attacc_beats_dense_gpu_at_long_context() {
        let model = ModelConfig::llama3_8b();
        let mut gpu = one_gpu(model.clone());
        let mut attacc = AttAccSystem::h100_pim(model);
        let ctx = 131_072;
        let g = gpu.evaluate(1, ctx).unwrap();
        let a = attacc.evaluate(1, ctx).unwrap();
        assert!(
            a.step_ns < g.step_ns,
            "PIM attention should beat GPU dense attention at 128K: {} vs {}",
            a.step_ns,
            g.step_ns
        );
    }

    #[test]
    fn attacc_is_still_linear_in_context() {
        // Once the PIM side dominates (large batch), dense attention cost
        // still grows linearly with context — PIM only raises the roof.
        let mut attacc = AttAccSystem::h100_pim(ModelConfig::llama3_1b());
        let a = attacc.evaluate(8, 65_536).unwrap();
        let b = attacc.evaluate(8, 262_144).unwrap();
        assert!(
            b.step_ns > 2.0 * a.step_ns,
            "{} vs {}",
            b.step_ns,
            a.step_ns
        );
    }
}
