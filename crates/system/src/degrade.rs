//! Degradation policy for fault-injected serving: per-token offload
//! deadline, bounded retry with exponential backoff, and graceful fallback
//! to dense sliding-window-only attention.
//!
//! A production deployment cannot let one hung NMA stall a synchronized
//! decode step forever. The policy here mirrors what a real serving stack
//! would do: the GPU abandons an offload attempt at the configured deadline,
//! backs off exponentially, retries a bounded number of times, and — if
//! every attempt fails — emits the token from dense window attention alone
//! (the sliding-window + sinks path the GPU computes anyway), sacrificing
//! long-range recall for that one token instead of availability.
//!
//! Two fault processes live at this level, keyed by `(request, token)`:
//! hard per-token failures (the request dies) and per-attempt offload
//! timeouts. Slice-grain faults (NMA stragglers, CXL CRC replays) live at
//! the step-cost level in [`crate::LongSightSystem`]; the two layers sample
//! disjoint event streams, so no fault is ever counted twice.

use longsight_faults::{domain, stream, FaultInjector, FaultKind, FaultLog, RetryPolicy};

/// How one token's offload resolved under the degradation policy.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokenOutcome {
    /// The offload completed, possibly after retries.
    Completed {
        /// Retries needed (0 = first attempt succeeded).
        retries: u32,
    },
    /// Every attempt timed out; the token was emitted from dense
    /// window-only attention.
    Degraded,
    /// The request died unrecoverably (host eviction, link down beyond the
    /// replay budget).
    Failed,
}

/// Aggregate degradation counters across a run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct DegradeStats {
    /// Tokens that needed at least one retry but eventually completed.
    pub retried_tokens: usize,
    /// Tokens that exhausted retries and fell back to window-only attention.
    pub degraded_tokens: usize,
    /// Requests that died unrecoverably.
    pub failed_requests: usize,
}

impl DegradeStats {
    /// Folds one token outcome into the counters.
    pub fn record(&mut self, outcome: TokenOutcome) {
        match outcome {
            TokenOutcome::Completed { retries } if retries > 0 => self.retried_tokens += 1,
            TokenOutcome::Completed { .. } => {}
            TokenOutcome::Degraded => self.degraded_tokens += 1,
            TokenOutcome::Failed => self.failed_requests += 1,
        }
    }
}

/// Resolves one token's offload under the retry/deadline policy.
///
/// Returns the outcome and the *extra* latency the faults added on top of
/// the healthy offload (which the step cost already accounts for): each
/// timed-out attempt costs the full deadline, each retry adds its backoff,
/// and a hard failure is detected at the first deadline expiry.
///
/// Every decision derives from `(inj.seed, request_id, token_idx, attempt)`
/// alone — the resolution is identical at any thread count — and the fault
/// events are appended to `log` in attempt order. Because each attempt's
/// timeout draw is a fixed uniform compared against the rate, a higher
/// timeout rate can only turn successes into retries and retries into
/// degradation: the penalty is monotone in the fault rate.
pub fn resolve_token(
    inj: &FaultInjector,
    retry: &RetryPolicy,
    request_id: u64,
    token_idx: u64,
    log: &mut FaultLog,
) -> (TokenOutcome, f64) {
    let hard_key = stream(domain::HARD, request_id, token_idx, 0);
    if inj.hard_fails(hard_key) {
        log.push(hard_key, FaultKind::HardFail);
        return (TokenOutcome::Failed, retry.offload_deadline_ns);
    }
    let token_key = stream(domain::TOKEN, request_id, token_idx, 0);
    let mut penalty = 0.0;
    for attempt in 0..=retry.max_retries {
        if !inj.attempt_times_out(token_key, attempt) {
            return (TokenOutcome::Completed { retries: attempt }, penalty);
        }
        log.push(token_key, FaultKind::Timeout { attempt });
        penalty += retry.offload_deadline_ns;
        if attempt < retry.max_retries {
            let backoff = retry.backoff_ns(attempt + 1);
            penalty += backoff;
            log.push(
                token_key,
                FaultKind::Retry {
                    attempt: attempt + 1,
                    backoff_ns: backoff,
                },
            );
        }
    }
    log.push(token_key, FaultKind::Degraded);
    (TokenOutcome::Degraded, penalty)
}

#[cfg(test)]
mod tests {
    use super::*;
    use longsight_faults::FaultProfile;

    #[test]
    fn disabled_injector_always_completes_free() {
        let inj = FaultInjector::disabled();
        let retry = RetryPolicy::serving_default();
        let mut log = FaultLog::new();
        for t in 0..100 {
            let (o, p) = resolve_token(&inj, &retry, 1, t, &mut log);
            assert_eq!(o, TokenOutcome::Completed { retries: 0 });
            assert_eq!(p, 0.0);
        }
        assert!(log.is_empty());
    }

    #[test]
    fn guaranteed_timeouts_degrade_with_full_penalty() {
        let inj = FaultInjector::new(
            FaultProfile {
                timeout_rate: 1.0,
                ..FaultProfile::disabled()
            },
            3,
        );
        let retry = RetryPolicy::serving_default();
        let mut log = FaultLog::new();
        let (o, p) = resolve_token(&inj, &retry, 1, 0, &mut log);
        assert_eq!(o, TokenOutcome::Degraded);
        assert_eq!(p, retry.degraded_elapsed_ns());
        // 3 timeouts, 2 retries, 1 degraded marker.
        assert_eq!(log.len(), 6);
        assert_eq!(
            log.count_matching(|k| matches!(k, FaultKind::Timeout { .. })),
            3
        );
    }

    #[test]
    fn penalty_is_monotone_in_timeout_rate() {
        let retry = RetryPolicy::serving_default();
        for token in 0..200u64 {
            let mut prev = 0.0f64;
            for rate in [0.0, 0.1, 0.4, 0.9] {
                let inj = FaultInjector::new(
                    FaultProfile {
                        timeout_rate: rate,
                        ..FaultProfile::disabled()
                    },
                    17,
                );
                let mut log = FaultLog::new();
                let (_, p) = resolve_token(&inj, &retry, 5, token, &mut log);
                assert!(p >= prev, "token {token}: rate {rate} got cheaper");
                prev = p;
            }
        }
    }

    #[test]
    fn zero_deadline_charges_backoffs_only() {
        // A zero offload deadline is a legal (if aggressive) policy: timed-out
        // attempts cost nothing, so a fully-degraded token pays exactly the
        // backoff schedule and a healthy token pays nothing.
        let retry = RetryPolicy {
            offload_deadline_ns: 0.0,
            ..RetryPolicy::serving_default()
        };
        let all_fail = FaultInjector::new(
            FaultProfile {
                timeout_rate: 1.0,
                ..FaultProfile::disabled()
            },
            3,
        );
        let mut log = FaultLog::new();
        let (o, p) = resolve_token(&all_fail, &retry, 1, 0, &mut log);
        assert_eq!(o, TokenOutcome::Degraded);
        assert_eq!(p, retry.backoff_ns(1) + retry.backoff_ns(2));
        let none_fail = FaultInjector::disabled();
        let (o, p) = resolve_token(&none_fail, &retry, 1, 0, &mut log);
        assert_eq!(o, TokenOutcome::Completed { retries: 0 });
        assert_eq!(p, 0.0);
    }

    #[test]
    fn success_on_the_final_attempt_exhausts_the_budget_without_degrading() {
        // Find a token whose first `max_retries` attempts all time out but
        // whose last one succeeds: the outcome must be Completed with the
        // full retry count and the penalty must charge every failed attempt
        // plus every backoff — the boundary just short of degradation.
        let retry = RetryPolicy::serving_default();
        let inj = FaultInjector::new(
            FaultProfile {
                timeout_rate: 0.8,
                ..FaultProfile::disabled()
            },
            29,
        );
        let mut found = false;
        for token in 0..4000u64 {
            let mut log = FaultLog::new();
            let (o, p) = resolve_token(&inj, &retry, 9, token, &mut log);
            if o == (TokenOutcome::Completed {
                retries: retry.max_retries,
            }) {
                let expected = retry.max_retries as f64 * retry.offload_deadline_ns
                    + (1..=retry.max_retries)
                        .map(|a| retry.backoff_ns(a))
                        .sum::<f64>();
                assert_eq!(p, expected, "token {token}");
                // Every failed attempt logged a timeout and a retry; the
                // success itself leaves no degraded marker.
                assert_eq!(log.len(), 2 * retry.max_retries as usize);
                assert_eq!(log.count_matching(|k| matches!(k, FaultKind::Degraded)), 0);
                found = true;
                break;
            }
        }
        assert!(found, "no last-attempt success in 4000 tokens at rate 0.8");
    }

    #[test]
    fn backoff_saturates_at_the_cap() {
        let retry = RetryPolicy {
            offload_deadline_ns: 1.0e6,
            max_retries: 6,
            backoff_base_ns: 50_000.0,
            backoff_multiplier: 4.0,
            backoff_cap_ns: 200_000.0,
        };
        // 50 µs, 200 µs, then flat at the cap instead of 800 µs, 3.2 ms, ...
        assert_eq!(retry.backoff_ns(1), 50_000.0);
        assert_eq!(retry.backoff_ns(2), 200_000.0);
        for a in 3..=6 {
            assert_eq!(retry.backoff_ns(a), retry.backoff_cap_ns, "attempt {a}");
        }
        // The degraded worst case uses the saturated schedule.
        let inj = FaultInjector::new(
            FaultProfile {
                timeout_rate: 1.0,
                ..FaultProfile::disabled()
            },
            3,
        );
        let mut log = FaultLog::new();
        let (o, p) = resolve_token(&inj, &retry, 1, 0, &mut log);
        assert_eq!(o, TokenOutcome::Degraded);
        assert_eq!(p, retry.degraded_elapsed_ns());
        assert_eq!(p, 7.0 * 1.0e6 + 50_000.0 + 200_000.0 + 4.0 * 200_000.0);
    }

    #[test]
    fn stats_record_each_outcome_class() {
        let mut s = DegradeStats::default();
        s.record(TokenOutcome::Completed { retries: 0 });
        s.record(TokenOutcome::Completed { retries: 2 });
        s.record(TokenOutcome::Degraded);
        s.record(TokenOutcome::Failed);
        assert_eq!(
            s,
            DegradeStats {
                retried_tokens: 1,
                degraded_tokens: 1,
                failed_requests: 1,
            }
        );
    }
}
