//! Service-Level-Objective analysis (paper §4 point 3, §9.1).
//!
//! Attention offloads sit on the critical path of token generation: at 100
//! tokens/s with 32 layers, each layer has a budget of a few hundred
//! microseconds. §9.1's claim is that LongSight "can maintain latency SLOs
//! while increasing system throughput by serving more users concurrently";
//! these helpers quantify that.

use crate::report::ServingSystem;

/// Result of an SLO capacity search.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SloCapacity {
    /// Largest batch meeting the SLO (0 when even one user misses it).
    pub users: usize,
    /// Throughput at that batch, tokens/s.
    pub throughput_tps: f64,
    /// Per-token latency at that batch, ms.
    pub latency_ms: f64,
}

/// Finds the largest user count whose per-token latency stays within
/// `slo_ms`, by binary search over the feasible range.
pub fn max_users_under_slo(
    system: &mut dyn ServingSystem,
    context: usize,
    slo_ms: f64,
) -> SloCapacity {
    let cap = system.max_users(context);
    if cap == 0 {
        return SloCapacity {
            users: 0,
            throughput_tps: 0.0,
            latency_ms: f64::INFINITY,
        };
    }
    let meets = |sys: &mut dyn ServingSystem, users: usize| -> Option<(f64, f64)> {
        sys.evaluate(users, context)
            .ok()
            .filter(|r| r.latency_ms() <= slo_ms)
            .map(|r| (r.throughput_tps, r.latency_ms()))
    };
    // Latency is monotone in batch size for all systems here, so binary
    // search applies.
    let (mut lo, mut hi) = (0usize, cap);
    let mut best = None;
    while lo < hi {
        let mid = (lo + hi).div_ceil(2);
        match meets(system, mid) {
            Some(r) => {
                best = Some((mid, r));
                lo = mid;
            }
            None => hi = mid - 1,
        }
    }
    match best {
        Some((users, (tput, lat))) => SloCapacity {
            users,
            throughput_tps: tput,
            latency_ms: lat,
        },
        None => SloCapacity {
            users: 0,
            throughput_tps: 0.0,
            latency_ms: f64::INFINITY,
        },
    }
}

/// The per-layer attention latency budget implied by a generation rate
/// (paper §4: ~"a few hundred microseconds" at 100 tok/s and 32 layers).
pub fn per_layer_budget_ns(tokens_per_second: f64, layers: usize) -> f64 {
    1e9 / tokens_per_second / layers as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::baselines::GpuOnlySystem;
    use crate::longsight::{LongSightConfig, LongSightSystem};
    use longsight_gpu::{DataParallelGpus, GpuSpec};
    use longsight_model::ModelConfig;

    #[test]
    fn paper_example_budget() {
        // 100 tok/s, 32 layers → 312.5 µs per layer.
        let b = per_layer_budget_ns(100.0, 32);
        assert!((b - 312_500.0).abs() < 1.0);
    }

    #[test]
    fn longsight_serves_more_users_under_slo_than_dense_gpu() {
        let model = ModelConfig::llama3_8b();
        let ctx = 131_072;
        let slo_ms = 50.0;
        let mut dense = GpuOnlySystem {
            gpus: DataParallelGpus::new(GpuSpec::h100_sxm(), 1),
            model: model.clone(),
        };
        let mut ls = LongSightSystem::new(LongSightConfig::paper_default(), model);
        let d = max_users_under_slo(&mut dense, ctx, slo_ms);
        let l = max_users_under_slo(&mut ls, ctx, slo_ms);
        assert!(
            l.users > d.users,
            "LongSight should fit more users under a {slo_ms} ms SLO: {} vs {}",
            l.users,
            d.users
        );
        assert!(l.throughput_tps > d.throughput_tps);
    }

    #[test]
    fn tighter_slo_means_fewer_users() {
        let mut ls =
            LongSightSystem::new(LongSightConfig::paper_default(), ModelConfig::llama3_1b());
        let loose = max_users_under_slo(&mut ls, 131_072, 100.0);
        let tight = max_users_under_slo(&mut ls, 131_072, 10.0);
        assert!(tight.users <= loose.users);
    }

    #[test]
    fn impossible_slo_returns_zero_users() {
        let mut ls =
            LongSightSystem::new(LongSightConfig::paper_default(), ModelConfig::llama3_8b());
        let r = max_users_under_slo(&mut ls, 262_144, 1e-6);
        assert_eq!(r.users, 0);
        assert!(r.latency_ms.is_infinite());
    }
}
