//! Shared serving-performance report types.

use longsight_obs::Recorder;
use longsight_sched::KvDeviceGeometry;

/// Per-token latency breakdown of one decode step (Fig 9's categories).
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct StepBreakdown {
    /// GPU weight-streaming work (projections + FFN), ns.
    pub gpu_weights_ns: f64,
    /// GPU dense (window or full) attention, ns — only the portion *not*
    /// hidden behind the DReX offload.
    pub gpu_attention_ns: f64,
    /// GPU ITQ rotation + softmax/SV merge of retrieved results, ns.
    pub gpu_merge_ns: f64,
    /// DReX offload wait — device compute not hidden behind GPU work, ns.
    pub drex_offload_ns: f64,
    /// CXL value/descriptor transfer and polling, ns.
    pub cxl_ns: f64,
}

impl StepBreakdown {
    /// Total per-token latency.
    pub fn total_ns(&self) -> f64 {
        self.gpu_weights_ns
            + self.gpu_attention_ns
            + self.gpu_merge_ns
            + self.drex_offload_ns
            + self.cxl_ns
    }
}

/// Finer-grained attribution of the *visible* (non-overlapped) offload
/// time within one decode step, split along the DReX pipeline phases.
///
/// The four components always sum exactly to
/// `breakdown.drex_offload_ns + breakdown.cxl_ns`: the filter/score/queue
/// shares are proportional splits of the visible wait by the measured
/// [`OffloadProfile`](crate::longsight::OffloadProfile) fractions, and the
/// link share is the exact remainder.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct OffloadComponents {
    /// PFU filtering, bitmap reads, and address generation, ns.
    pub filter_ns: f64,
    /// Key fetch + dot-product scoring + top-k ranking, ns.
    pub score_ns: f64,
    /// Waiting for a free NMA (multi-user contention), ns.
    pub queue_ns: f64,
    /// CXL descriptor submit, completion polling, and value transfer, ns.
    pub link_ns: f64,
}

impl OffloadComponents {
    /// Sum of the four components.
    pub fn total_ns(&self) -> f64 {
        self.filter_ns + self.score_ns + self.queue_ns + self.link_ns
    }
}

/// Lookahead-speculation timing attached to a [`StepReport`] when the
/// async offload pipeline is enabled.
///
/// The report's headline numbers (`step_ns`, `breakdown`, `offload`)
/// describe the *hit* path — the speculative chain issued at step *t−1*
/// landed and only the un-hideable remainder is visible. This struct keeps
/// the serial path alongside so the serving loop can charge the exact
/// synchronous timing (plus the configured re-filter penalty) whenever a
/// speculation misses or slot backpressure denies the issue.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SpecStep {
    /// Full unoverlapped filter→score→top-k→link chain across all layers,
    /// ns. This is what one speculative slot occupies per step.
    pub chain_ns: f64,
    /// Synchronous per-token step latency (identical bits to the
    /// lookahead-off `step_ns`), ns.
    pub serial_step_ns: f64,
    /// Visible offload wait on the synchronous path, ns.
    pub serial_visible_ns: f64,
    /// Visible offload wait on the hit path — chain minus what hides
    /// behind the GPU's serial + attention work, ns.
    pub hit_visible_ns: f64,
    /// Deterministic re-filter penalty charged once per missed step, ns.
    pub refilter_penalty_ns: f64,
    /// Per-token speculation miss probability.
    pub miss_rate: f64,
    /// Bound on concurrent in-flight speculative chains per device.
    pub slots: usize,
    /// Seed for the miss-draw stream (`domain::SPEC`).
    pub seed: u64,
}

/// Result of evaluating one serving configuration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StepReport {
    /// Concurrent users served.
    pub users: usize,
    /// Context length per user, tokens.
    pub context: usize,
    /// Per-token (per decode step) latency, ns.
    pub step_ns: f64,
    /// Aggregate decode throughput across all users, tokens/second.
    pub throughput_tps: f64,
    /// Latency breakdown.
    pub breakdown: StepBreakdown,
    /// Phase-level attribution of the visible offload wait, when the
    /// system can provide it (LongSight only; baselines report `None`).
    pub offload: Option<OffloadComponents>,
    /// Lookahead speculation timing (LongSight with `--lookahead on`;
    /// `None` everywhere else, including the lookahead-off path).
    pub spec: Option<SpecStep>,
}

impl StepReport {
    /// Builds a report from a breakdown.
    pub fn from_breakdown(users: usize, context: usize, breakdown: StepBreakdown) -> Self {
        let step_ns = breakdown.total_ns();
        Self {
            users,
            context,
            step_ns,
            throughput_tps: if step_ns > 0.0 {
                users as f64 * 1e9 / step_ns
            } else {
                0.0
            },
            breakdown,
            offload: None,
            spec: None,
        }
    }

    /// Attaches phase-level offload attribution.
    pub fn with_offload(mut self, offload: OffloadComponents) -> Self {
        self.offload = Some(offload);
        self
    }

    /// Attaches lookahead speculation timing.
    pub fn with_spec(mut self, spec: SpecStep) -> Self {
        self.spec = Some(spec);
        self
    }

    /// Per-user tokens/second (the "tokens per second per user" of §1).
    pub fn tps_per_user(&self) -> f64 {
        self.throughput_tps / self.users.max(1) as f64
    }

    /// Per-token latency in milliseconds.
    pub fn latency_ms(&self) -> f64 {
        self.step_ns / 1e6
    }

    /// The evaluation row as printed by `longsight serve`.
    pub fn to_text(&self, name: &str) -> String {
        let b = self.breakdown;
        let mut out = format!(
            "{name}: {} users @ {} tokens\n  throughput: {:.1} tok/s ({:.1} tok/s/user)\n  per-token latency: {:.3} ms\n",
            self.users,
            self.context,
            self.throughput_tps,
            self.tps_per_user(),
            self.latency_ms()
        );
        out.push_str(&format!(
            "  breakdown: weights {:.2} ms | attn {:.2} ms | merge {:.2} ms | drex {:.2} ms | cxl {:.2} ms\n",
            b.gpu_weights_ns / 1e6,
            b.gpu_attention_ns / 1e6,
            b.gpu_merge_ns / 1e6,
            b.drex_offload_ns / 1e6,
            b.cxl_ns / 1e6
        ));
        out
    }
}

/// Why a configuration cannot run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Infeasible {
    /// KV cache + weights exceed GPU HBM.
    GpuMemory,
    /// Context does not fit the DReX device for this many users.
    DrexMemory,
    /// Batch exceeds the DCC request-queue depth (512).
    QueueDepth,
}

impl std::fmt::Display for Infeasible {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Infeasible::GpuMemory => write!(f, "exceeds GPU HBM capacity"),
            Infeasible::DrexMemory => write!(f, "exceeds DReX memory capacity"),
            Infeasible::QueueDepth => write!(f, "exceeds DCC queue depth"),
        }
    }
}

/// A serving system that can be asked for a decode-step evaluation.
pub trait ServingSystem {
    /// Human-readable name for tables.
    fn name(&self) -> String;

    /// Evaluates one decode step at a batch of `users`, each with `context`
    /// tokens of history.
    ///
    /// # Errors
    ///
    /// Returns the reason when the configuration cannot run.
    fn evaluate(&mut self, users: usize, context: usize) -> Result<StepReport, Infeasible>;

    /// Largest batch this system can serve at `context` (0 when even one
    /// user is infeasible).
    fn max_users(&self, context: usize) -> usize;

    /// Records an expanded trace of one decode step's internal timeline
    /// (GPU phases, offload pipeline, link activity) into `rec`, anchored
    /// at simulated time `anchor_ns`.
    ///
    /// Purely observational: implementations must not change any state
    /// that [`ServingSystem::evaluate`] depends on, and with a disabled
    /// recorder this must be free. The default records nothing, which is
    /// correct for systems without internal structure worth tracing.
    fn record_step_detail(
        &mut self,
        _users: usize,
        _context: usize,
        _rec: &mut Recorder,
        _anchor_ns: f64,
    ) {
    }

    /// How this system's devices map request contexts onto HBM window pages
    /// and DReX tail pages, at `page_tokens` tokens per page — the paged
    /// KV-cache surface the SLO-aware scheduler allocates against.
    ///
    /// `None` (the default) means the system exposes no page accounting;
    /// the scheduler then falls back to an unbounded ledger and admission
    /// degenerates to step feasibility alone.
    fn kv_geometry(&self, page_tokens: usize) -> Option<KvDeviceGeometry> {
        let _ = page_tokens;
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn throughput_is_users_over_step() {
        let b = StepBreakdown {
            gpu_weights_ns: 1e6,
            ..Default::default()
        };
        let r = StepReport::from_breakdown(10, 1024, b);
        assert!((r.throughput_tps - 10.0 * 1e9 / 1e6).abs() < 1e-6);
        assert!((r.tps_per_user() - 1000.0).abs() < 1e-9);
        assert!((r.latency_ms() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn breakdown_total_sums_components() {
        let b = StepBreakdown {
            gpu_weights_ns: 1.0,
            gpu_attention_ns: 2.0,
            gpu_merge_ns: 3.0,
            drex_offload_ns: 4.0,
            cxl_ns: 5.0,
        };
        assert_eq!(b.total_ns(), 15.0);
    }
}
