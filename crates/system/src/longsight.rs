//! The LongSight serving system: GPU + DReX collaborative hybrid attention
//! (paper §6, Fig 2b).
//!
//! Per decode step, per layer: the GPU writes a Request Descriptor into the
//! DCC queue, performs dense attention over the sliding window while DReX
//! filters/scores/ranks the long-range keys, polls for completion, reads the
//! top-k values over CXL, and finishes with a single softmax + SV merge.
//! The dense window attention *overlaps* the offload; whichever is slower
//! paces the layer.

use crate::degrade::DegradeStats;
use crate::report::{
    Infeasible, OffloadComponents, ServingSystem, SpecStep, StepBreakdown, StepReport,
};
use longsight_core::HybridConfig;
use longsight_cxl::CxlLink;
use longsight_dram::Geometry;
use longsight_drex::layout::{self, MAX_CONTEXT_SLICE_KEYS};
use longsight_drex::{
    time_slice_offload, try_time_slice_offload_traced, DccSim, DrexParams, HeadOffloadSpec,
    HeadOffloadTiming, REQUEST_QUEUE_DEPTH,
};
use longsight_faults::{
    domain, stream, FaultInjector, FaultKind, FaultLog, FaultProfile, RetryPolicy,
};
use longsight_gpu::{decode_step, GpuSpec};
use longsight_model::ModelConfig;
use longsight_obs::{ArgVal, Recorder};

/// Configuration of a LongSight deployment: one GPU + one DReX unit.
#[derive(Debug, Clone)]
pub struct LongSightConfig {
    /// The GPU.
    pub gpu: GpuSpec,
    /// DReX hardware parameters.
    pub drex: DrexParams,
    /// DReX memory geometry.
    pub geometry: Geometry,
    /// CXL link between GPU and DReX.
    pub link: CxlLink,
    /// Hybrid attention parameters (window, sinks, k).
    pub hybrid: HybridConfig,
    /// Expected non-window KV-cache filter ratio achieved by tuned SCF
    /// thresholds (the paper measures ≈20× on average, §8.2).
    pub filter_ratio: f64,
    /// Fault-injection profile. Disabled by default: every evaluation takes
    /// the exact fault-free code path and stays bit-identical to the
    /// pre-fault model.
    pub faults: FaultProfile,
    /// Retry/deadline policy applied when faults are enabled.
    pub retry: RetryPolicy,
    /// Seed of the deterministic fault schedule (CLI `--fault-seed`).
    pub fault_seed: u64,
    /// Lookahead (speculative async offload) pipeline. Disabled by default:
    /// every evaluation takes the exact synchronous code path and stays
    /// bit-identical to the pre-lookahead model.
    pub lookahead: LookaheadConfig,
}

impl LongSightConfig {
    /// The paper's system: H100 + DReX, W = 1024, 16 sinks, k = 1024,
    /// 20× filter ratio.
    pub fn paper_default() -> Self {
        Self {
            gpu: GpuSpec::h100_sxm(),
            drex: DrexParams::paper(),
            geometry: Geometry::drex(),
            link: CxlLink::pcie5_x16(),
            hybrid: HybridConfig::paper_default(),
            filter_ratio: 20.0,
            faults: FaultProfile::disabled(),
            retry: RetryPolicy::serving_default(),
            fault_seed: 0,
            lookahead: LookaheadConfig::disabled(),
        }
    }

    /// Enables fault injection with `profile` and `seed`, keeping the
    /// default retry policy.
    pub fn with_faults(mut self, profile: FaultProfile, seed: u64) -> Self {
        self.faults = profile;
        self.fault_seed = seed;
        self
    }

    /// Sets the lookahead pipeline configuration.
    pub fn with_lookahead(mut self, lookahead: LookaheadConfig) -> Self {
        self.lookahead = lookahead;
        self
    }
}

/// Configuration of the lookahead speculation pipeline: the bounded pool of
/// in-flight DReX offload slots that issue step *t+1*'s filter→score→top-k
/// chain during step *t* and hide it behind the GPU's dense work.
///
/// Disabled (`enabled == false`), every knob is inert and the system is
/// bit-identical to the synchronous model. Misses are drawn from the
/// deterministic `domain::SPEC` stream keyed by `(request, token, seed)`,
/// so a run is reproducible at any worker-thread count.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LookaheadConfig {
    /// Whether speculative issue is on.
    pub enabled: bool,
    /// Bound on concurrent in-flight speculative chains per DReX device
    /// (shared by the whole batch; exhaustion denies the issue and the
    /// token falls back to the synchronous path).
    pub slots: usize,
    /// Probability that a speculated region is stale by the time the token
    /// consumes it (context grew past the speculated region, or an
    /// eviction/restore invalidated its pages).
    pub miss_rate: f64,
    /// Deterministic re-filter penalty charged once per missed step, on
    /// top of the synchronous timing, ns.
    pub refilter_penalty_ns: f64,
    /// Seed of the miss-draw stream.
    pub seed: u64,
}

impl LookaheadConfig {
    /// Lookahead off; the knobs hold the serving defaults so flipping
    /// `enabled` is enough to opt in.
    pub fn disabled() -> Self {
        Self {
            enabled: false,
            ..Self::serving_default()
        }
    }

    /// The serving default: 32 pooled slots, a 2% stale-speculation rate,
    /// and a 0.25 ms re-filter penalty per missed step.
    pub fn serving_default() -> Self {
        Self {
            enabled: true,
            slots: 32,
            miss_rate: 0.02,
            refilter_penalty_ns: 250_000.0,
            seed: 0,
        }
    }
}

/// Detailed timing of one DReX offload under load (drives Fig 8).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct OffloadProfile {
    /// PFU filtering, ns.
    pub filter_ns: f64,
    /// Bitmap reads, ns.
    pub bitmap_ns: f64,
    /// Address generation, ns.
    pub addr_gen_ns: f64,
    /// Key fetch + dot-product, ns.
    pub fetch_score_ns: f64,
    /// Top-k ranking, ns.
    pub topk_ns: f64,
    /// Waiting for a free NMA (multi-user contention), ns.
    pub queue_wait_ns: f64,
    /// Polling + top-k value transfer over CXL, ns.
    pub value_cxl_ns: f64,
}

impl OffloadProfile {
    /// Total observed offload latency.
    pub fn total_ns(&self) -> f64 {
        self.filter_ns
            + self.bitmap_ns
            + self.addr_gen_ns
            + self.fetch_score_ns
            + self.topk_ns
            + self.queue_wait_ns
            + self.value_cxl_ns
    }
}

/// Splits the step's *visible* offload wait along the measured profile
/// fractions. The link share is the exact remainder, so the four components
/// always sum to `visible_ns` bit-for-bit.
fn visible_components(profile: &OffloadProfile, visible_ns: f64) -> OffloadComponents {
    let total = profile.total_ns();
    if total <= 0.0 || visible_ns <= 0.0 {
        return OffloadComponents::default();
    }
    let scale = visible_ns / total;
    let filter = (profile.filter_ns + profile.bitmap_ns + profile.addr_gen_ns) * scale;
    let score = (profile.fetch_score_ns + profile.topk_ns) * scale;
    let queue = profile.queue_wait_ns * scale;
    OffloadComponents {
        filter_ns: filter,
        score_ns: score,
        queue_ns: queue,
        link_ns: visible_ns - filter - score - queue,
    }
}

/// The issue half of one layer's DReX offload: descriptor submit, PFU/NMA
/// chain timing, and DCC slot scheduling for the whole batch — everything
/// the device pipeline does before the GPU observes completion. This is
/// what a speculative lookahead slot carries in flight; the complete half
/// ([`LongSightSystem::drex_layer_complete`]) adds completion polling and
/// the value read.
#[derive(Debug, Clone)]
pub struct IssuedLayer {
    /// Device completion of the critical user's last slice, ns relative to
    /// the issue instant.
    pub ready_rel_ns: f64,
    /// Worst NMA queueing of the critical user plus the descriptor submit,
    /// ns.
    pub queue_wait_ns: f64,
    /// CXL descriptor submit cost, ns.
    pub submit_ns: f64,
    /// Response Descriptor payload, bytes.
    pub response_bytes: usize,
    /// Batch size issued.
    pub users: usize,
    /// Context Slices per head.
    pub slices: usize,
    /// Device-phase timing of the critical (full-size) slice chain.
    pub chain: HeadOffloadTiming,
}

/// One layer's offload timing under fault injection, with the degradation
/// bookkeeping needed by the availability experiment.
#[derive(Debug, Clone)]
pub struct FaultedLayerReport {
    /// Layer pacing time including retries and degradation waits, ns.
    pub layer_ns: f64,
    /// Fault-free profile of the critical chain (for breakdown reporting).
    pub profile: OffloadProfile,
    /// Deterministic fault event timeline of this layer evaluation.
    pub log: FaultLog,
    /// Retried/degraded token counters.
    pub stats: DegradeStats,
    /// Total CXL CRC replay rounds paid by unresolved users.
    pub replay_rounds: usize,
    /// Slice executions that ran on a straggling NMA.
    pub straggled_slices: usize,
}

/// The LongSight serving system.
#[derive(Debug, Clone)]
pub struct LongSightSystem {
    /// Deployment configuration.
    pub config: LongSightConfig,
    /// Model served.
    pub model: ModelConfig,
}

impl LongSightSystem {
    /// Creates the system.
    pub fn new(config: LongSightConfig, model: ModelConfig) -> Self {
        Self { config, model }
    }

    /// The sparse (offloaded) region size for a context length.
    fn region(&self, context: usize) -> usize {
        context.saturating_sub(self.config.hybrid.window + self.config.hybrid.sinks)
    }

    /// Times one layer's DReX offloads for a batch and returns
    /// `(last-user observed completion ns, profile of the last user)`.
    pub fn drex_layer(&self, users: usize, context: usize) -> (f64, OffloadProfile) {
        let mut rec = Recorder::disabled();
        self.drex_layer_traced(users, context, &mut rec, 0.0)
    }

    /// [`LongSightSystem::drex_layer`] that also records the layer's
    /// internal timeline into `rec`, anchored at simulated time
    /// `anchor_ns`: the critical slice's PFU/NMA phase chain
    /// (`nma.critical` track), every user's slice executions on the
    /// per-NMA tracks, the CXL descriptor submit / completion poll / value
    /// transfer (`cxl` track), and the whole offload envelope (`drex`
    /// track). The returned numbers are bit-identical to the plain call —
    /// with a disabled recorder this *is* the plain call.
    pub fn drex_layer_traced(
        &self,
        users: usize,
        context: usize,
        rec: &mut Recorder,
        anchor_ns: f64,
    ) -> (f64, OffloadProfile) {
        match self.drex_layer_issue(users, context, rec, anchor_ns) {
            Some(issued) => self.drex_layer_complete(&issued, rec, anchor_ns),
            None => (
                0.0,
                OffloadProfile {
                    filter_ns: 0.0,
                    bitmap_ns: 0.0,
                    addr_gen_ns: 0.0,
                    fetch_score_ns: 0.0,
                    topk_ns: 0.0,
                    queue_wait_ns: 0.0,
                    value_cxl_ns: 0.0,
                },
            ),
        }
    }

    /// Issues one layer's offloads for the batch: times the slice chain,
    /// schedules every user's slices on the NMA pool, and returns the
    /// in-flight state up to (but not including) completion polling and the
    /// value read. Returns `None` when there is nothing to offload (empty
    /// region or batch).
    ///
    /// Composing this with [`LongSightSystem::drex_layer_complete`] is
    /// bit-identical to [`LongSightSystem::drex_layer_traced`] — the split
    /// exists so the lookahead pipeline can put the issue half in flight a
    /// step early.
    pub fn drex_layer_issue(
        &self,
        users: usize,
        context: usize,
        rec: &mut Recorder,
        anchor_ns: f64,
    ) -> Option<IssuedLayer> {
        let cfg = &self.config;
        let region = self.region(context);
        let kv = self.model.kv_heads;
        let d = self.model.head_dim;
        let k = cfg.hybrid.top_k;
        let group = self.model.group_size();

        if region == 0 || users == 0 {
            return None;
        }

        let survivors_total = ((region as f64 / cfg.filter_ratio) as usize).min(region);
        let spec = HeadOffloadSpec {
            context_len: region,
            head_dim: d,
            queries: group,
            k: k.min(region),
            survivors: survivors_total,
        };

        // Distinct slice shapes: full slices plus one remainder.
        let slices = region.div_ceil(MAX_CONTEXT_SLICE_KEYS);
        let full_keys = region.min(MAX_CONTEXT_SLICE_KEYS);
        let rem_keys = region - (slices - 1) * MAX_CONTEXT_SLICE_KEYS;
        let surv = |keys: usize| -> usize {
            ((survivors_total as f64) * keys as f64 / region as f64).round() as usize
        };
        // The full and remainder shapes are independent seeded simulations,
        // so they time concurrently; each call returns exactly what a serial
        // call with the same (shape, seed) returns.
        let slice_timings = if rem_keys == full_keys {
            vec![time_slice_offload(
                &cfg.drex,
                &spec,
                full_keys,
                surv(full_keys).min(full_keys),
                17,
            )]
        } else {
            let shapes = [(full_keys, 17u64), (rem_keys, 18u64)];
            longsight_exec::deterministic_map(&shapes, |_, &(keys, seed)| {
                time_slice_offload(&cfg.drex, &spec, keys, surv(keys).min(keys), seed)
            })
        };
        let t_full = slice_timings[0].total_ns();
        let t_rem = slice_timings.last().expect("non-empty").total_ns();

        // Schedule every user's slices on the NMA pool.
        let mut dcc = DccSim::new(cfg.drex.clone(), cfg.link.clone(), cfg.geometry.packages);
        let desc_bytes = 8 + self.model.q_heads * d * 2;
        let submit = cfg.link.descriptor_submit_ns(desc_bytes);
        // Response Descriptor: "a list of 1,024 × H top Keys and Values"
        // (§7.3.1) — k entries per KV head, shared by the GQA group.
        let response_bytes = kv * k.min(region) * (d * 2 + 8);

        if rec.is_enabled() {
            // Phase detail of the critical (full-size) slice, anchored where
            // NMA work begins — after the descriptor submit.
            let nma_track = rec.track("nma.critical");
            let _ = try_time_slice_offload_traced(
                &cfg.drex,
                &spec,
                full_keys,
                surv(full_keys).min(full_keys),
                17,
                rec,
                nma_track,
                anchor_ns + submit,
            );
        }
        // Shadow scheduler for span emission at absolute sim time: the busy
        // timeline is shift-invariant, so replaying the identical schedule
        // from `anchor_ns + submit` reproduces the real one exactly, offset.
        let mut shadow = rec
            .is_enabled()
            .then(|| DccSim::new(cfg.drex.clone(), cfg.link.clone(), cfg.geometry.packages));

        let mut last_done = 0.0f64;
        let mut last_wait = 0.0f64;
        for u in 0..users {
            let mut works = Vec::with_capacity(kv * slices);
            for h in 0..kv {
                for s in 0..slices {
                    let pkg = (u * kv + h + s * kv) % cfg.geometry.packages;
                    let dur = if s + 1 == slices { t_rem } else { t_full };
                    works.push((pkg, dur));
                }
            }
            let (done, wait) = dcc.schedule_slices(submit, &works);
            if let Some(sh) = shadow.as_mut() {
                let label = format!("offload.u{u}");
                sh.schedule_slices_traced(anchor_ns + submit, &works, rec, &label);
            }
            if done >= last_done {
                last_done = done;
                last_wait = wait;
            }
        }

        Some(IssuedLayer {
            ready_rel_ns: last_done,
            queue_wait_ns: last_wait + submit,
            submit_ns: submit,
            response_bytes,
            users,
            slices,
            chain: slice_timings[0],
        })
    }

    /// Completes an issued layer: the GPU polls for device completion, reads
    /// the top-k values over CXL, and the critical chain's profile is
    /// decomposed. Returns `(last-user observed completion ns, profile)`,
    /// both relative to the issue instant.
    pub fn drex_layer_complete(
        &self,
        issued: &IssuedLayer,
        rec: &mut Recorder,
        anchor_ns: f64,
    ) -> (f64, OffloadProfile) {
        let cfg = &self.config;
        let ready_rel = issued.ready_rel_ns;
        let value_cxl = cfg.link.polled_completion_ns(ready_rel) - ready_rel
            + cfg.link.transfer_ns(issued.response_bytes);
        let observed = ready_rel + value_cxl;

        if rec.is_enabled() {
            let cxl_track = rec.track("cxl");
            let desc_bytes = 8 + self.model.q_heads * self.model.head_dim * 2;
            let _ = cfg
                .link
                .descriptor_submit_ns_traced(desc_bytes, rec, cxl_track, anchor_ns);
            let polled = cfg.link.polled_completion_ns(ready_rel);
            rec.leaf_with(
                cxl_track,
                "cxl.poll",
                anchor_ns + ready_rel,
                anchor_ns + polled,
                &[("ready_at_ns", ArgVal::F(ready_rel))],
            );
            let _ = cfg.link.transfer_ns_traced(
                issued.response_bytes,
                0,
                rec,
                cxl_track,
                anchor_ns + polled,
            );
            let drex_track = rec.track("drex");
            rec.leaf_with(
                drex_track,
                "drex.offload",
                anchor_ns,
                anchor_ns + observed,
                &[
                    ("users", ArgVal::U(issued.users as u64)),
                    ("slices", ArgVal::U(issued.slices as u64)),
                    ("queue_wait_ns", ArgVal::F(issued.queue_wait_ns)),
                ],
            );
        }

        // Decompose the critical chain's device time for the profile (the
        // full-slice timing computed at issue).
        let chain = issued.chain;
        let profile = OffloadProfile {
            filter_ns: chain.filter_ns,
            bitmap_ns: chain.bitmap_ns,
            addr_gen_ns: chain.addr_gen_ns,
            fetch_score_ns: chain.fetch_score_ns,
            topk_ns: chain.topk_ns,
            queue_wait_ns: issued.queue_wait_ns,
            value_cxl_ns: value_cxl,
        };
        (observed, profile)
    }

    /// Times one layer's offloads under fault injection with the
    /// retry/deadline degradation policy.
    ///
    /// Per retry round, the *whole* batch's slice workloads are scheduled on
    /// the NMA pool with per-slice straggler multipliers, and each user's
    /// value read pays its sampled CXL CRC replay rounds. A user whose
    /// observed completion beats the per-request offload deadline resolves;
    /// the rest pay the full deadline plus an exponential backoff and retry.
    /// Users that exhaust the retry budget degrade to dense window-only
    /// attention for this token.
    ///
    /// Retried attempts are charged full-batch contention (the NMA pool does
    /// not empty out just because one request is retrying), so a faulted
    /// layer is never cheaper than the fault-free one, and every fault
    /// decision derives from `(fault_seed, user, head, slice, attempt)` —
    /// the timeline is identical at any thread count.
    pub fn drex_layer_faulty(&self, users: usize, context: usize) -> FaultedLayerReport {
        let cfg = &self.config;
        let inj = FaultInjector::new(cfg.faults.clone(), cfg.fault_seed);
        let retry = cfg.retry;
        let (clean_ns, profile) = self.drex_layer(users, context);
        let mut report = FaultedLayerReport {
            layer_ns: clean_ns,
            profile,
            log: FaultLog::new(),
            stats: DegradeStats::default(),
            replay_rounds: 0,
            straggled_slices: 0,
        };
        if !inj.is_enabled() || users == 0 || self.region(context) == 0 {
            return report;
        }

        let region = self.region(context);
        let kv = self.model.kv_heads;
        let d = self.model.head_dim;
        let k = cfg.hybrid.top_k;
        let group = self.model.group_size();
        let survivors_total = ((region as f64 / cfg.filter_ratio) as usize).min(region);
        let spec = HeadOffloadSpec {
            context_len: region,
            head_dim: d,
            queries: group,
            k: k.min(region),
            survivors: survivors_total,
        };
        let slices = region.div_ceil(MAX_CONTEXT_SLICE_KEYS);
        let full_keys = region.min(MAX_CONTEXT_SLICE_KEYS);
        let rem_keys = region - (slices - 1) * MAX_CONTEXT_SLICE_KEYS;
        let surv = |keys: usize| -> usize {
            ((survivors_total as f64) * keys as f64 / region as f64).round() as usize
        };
        let t_full = time_slice_offload(
            &cfg.drex,
            &spec,
            full_keys,
            surv(full_keys).min(full_keys),
            17,
        )
        .total_ns();
        let t_rem = if rem_keys == full_keys {
            t_full
        } else {
            time_slice_offload(&cfg.drex, &spec, rem_keys, surv(rem_keys).min(rem_keys), 18)
                .total_ns()
        };
        let desc_bytes = 8 + self.model.q_heads * d * 2;
        let submit = cfg.link.descriptor_submit_ns(desc_bytes);
        let response_bytes = kv * k.min(region) * (d * 2 + 8);

        let mut elapsed = vec![0.0f64; users];
        let mut resolved = vec![false; users];
        for attempt in 0..=retry.max_retries {
            if resolved.iter().all(|&r| r) {
                break;
            }
            // Full-batch contention every round: resolved users' completed
            // work still occupies the pool from this step's perspective.
            let mut dcc = DccSim::new(cfg.drex.clone(), cfg.link.clone(), cfg.geometry.packages);
            let mut observed = vec![0.0f64; users];
            for (u, obs) in observed.iter_mut().enumerate() {
                let mut works = Vec::with_capacity(kv * slices);
                for h in 0..kv {
                    for s in 0..slices {
                        let pkg = (u * kv + h + s * kv) % cfg.geometry.packages;
                        let base = if s + 1 == slices { t_rem } else { t_full };
                        let key = stream(
                            domain::SLICE,
                            u as u64,
                            (h * slices + s) as u64,
                            attempt as u64,
                        );
                        let mult = inj.straggler_multiplier(key);
                        if mult > 1.0 && !resolved[u] {
                            report
                                .log
                                .push(key, FaultKind::Straggler { multiplier: mult });
                            report.straggled_slices += 1;
                        }
                        works.push((pkg, base * mult));
                    }
                }
                let (done, _) = dcc.schedule_slices(submit, &works);
                let link_key = stream(domain::LINK, u as u64, attempt as u64, 0);
                let replays = inj.link_replays(link_key);
                if replays > 0 && !resolved[u] {
                    report.log.push(link_key, FaultKind::LinkReplay { replays });
                    report.replay_rounds += replays as usize;
                }
                *obs = done + cfg.link.polled_completion_ns_with_replays(done, replays) - done
                    + cfg.link.transfer_ns_with_replays(response_bytes, replays);
            }
            for u in 0..users {
                if resolved[u] {
                    continue;
                }
                let token_key = stream(domain::TOKEN, u as u64, attempt as u64, 0);
                if observed[u] <= retry.offload_deadline_ns {
                    elapsed[u] += observed[u];
                    resolved[u] = true;
                    if attempt > 0 {
                        report.stats.retried_tokens += 1;
                    }
                } else {
                    report.log.push(token_key, FaultKind::Timeout { attempt });
                    elapsed[u] += retry.offload_deadline_ns;
                    if attempt < retry.max_retries {
                        let backoff = retry.backoff_ns(attempt + 1);
                        elapsed[u] += backoff;
                        report.log.push(
                            token_key,
                            FaultKind::Retry {
                                attempt: attempt + 1,
                                backoff_ns: backoff,
                            },
                        );
                    } else {
                        report.log.push(token_key, FaultKind::Degraded);
                        report.stats.degraded_tokens += 1;
                    }
                }
            }
        }
        // A faulted layer is paced by its slowest user and never beats the
        // fault-free schedule (multipliers ≥ 1, failed attempts cost the
        // full deadline).
        report.layer_ns = elapsed.iter().fold(clean_ns, |acc, &e| acc.max(e));
        report
    }

    /// Times one layer's offloads for a *heterogeneous* batch — one context
    /// length per user (paper §7.3.3: "LongSight does not statically
    /// allocate equal context lengths to all users"). Returns the last
    /// user's observed completion.
    pub fn drex_layer_mixed(&self, contexts: &[usize]) -> f64 {
        let cfg = &self.config;
        let kv = self.model.kv_heads;
        let d = self.model.head_dim;
        let group = self.model.group_size();
        let mut dcc = DccSim::new(cfg.drex.clone(), cfg.link.clone(), cfg.geometry.packages);
        let desc_bytes = 8 + self.model.q_heads * d * 2;
        let submit = cfg.link.descriptor_submit_ns(desc_bytes);

        // Users overwhelmingly share slice shapes, so first collect the
        // distinct (keys, survivors) pairs across the whole batch, then time
        // them concurrently — each timing is an independent seeded
        // simulation, identical to what the old lazy per-shape cache
        // computed serially.
        let mut shapes: Vec<(usize, usize)> = Vec::new();
        for &ctx in contexts {
            let region = self.region(ctx);
            if region == 0 {
                continue;
            }
            let survivors_total = ((region as f64 / cfg.filter_ratio) as usize).min(region);
            let slices = region.div_ceil(MAX_CONTEXT_SLICE_KEYS);
            let mut remaining = region;
            for _ in 0..slices {
                let keys = remaining.min(MAX_CONTEXT_SLICE_KEYS);
                remaining -= keys;
                let survivors =
                    ((survivors_total as f64) * keys as f64 / region as f64).round() as usize;
                let shape = (keys, survivors.min(keys));
                if !shapes.contains(&shape) {
                    shapes.push(shape);
                }
            }
        }
        let shape_times = longsight_exec::deterministic_map(&shapes, |_, &(keys, survivors)| {
            let spec = HeadOffloadSpec {
                context_len: keys,
                head_dim: d,
                queries: group,
                k: cfg.hybrid.top_k.min(keys.max(1)),
                survivors,
            };
            time_slice_offload(&cfg.drex, &spec, keys, survivors, 23).total_ns()
        });
        let slice_time = |keys: usize, survivors: usize| -> f64 {
            let at = shapes
                .iter()
                .position(|&s| s == (keys, survivors))
                .expect("every scheduled shape was collected above");
            shape_times[at]
        };

        let mut last_done = 0.0f64;
        for (u, &ctx) in contexts.iter().enumerate() {
            let region = self.region(ctx);
            if region == 0 {
                continue;
            }
            let survivors_total = ((region as f64 / cfg.filter_ratio) as usize).min(region);
            let slices = region.div_ceil(MAX_CONTEXT_SLICE_KEYS);
            let mut works = Vec::with_capacity(kv * slices);
            let mut remaining = region;
            for s in 0..slices {
                let keys = remaining.min(MAX_CONTEXT_SLICE_KEYS);
                remaining -= keys;
                let survivors =
                    ((survivors_total as f64) * keys as f64 / region as f64).round() as usize;
                let dur = slice_time(keys, survivors.min(keys));
                for h in 0..kv {
                    let pkg = (u * kv + h + s * kv) % cfg.geometry.packages;
                    works.push((pkg, dur));
                }
            }
            let (done, _) = dcc.schedule_slices(submit, &works);
            let response_bytes = kv * cfg.hybrid.top_k.min(region) * (d * 2 + 8);
            let observed = done + cfg.link.polled_completion_ns(done) - done
                + cfg.link.transfer_ns(response_bytes);
            last_done = last_done.max(observed);
        }
        last_done
    }

    /// Evaluates one decode step for a heterogeneous batch (one context per
    /// user). Throughput counts every user once per step.
    ///
    /// # Errors
    ///
    /// Returns the first capacity violation.
    pub fn evaluate_mixed(&mut self, contexts: &[usize]) -> Result<StepReport, Infeasible> {
        let cfg = &self.config;
        let users = contexts.len();
        if users > REQUEST_QUEUE_DEPTH {
            return Err(Infeasible::QueueDepth);
        }
        let resident = cfg.hybrid.window + cfg.hybrid.sinks;
        if !longsight_gpu::fits_in_hbm(&cfg.gpu, &self.model, users, resident) {
            return Err(Infeasible::GpuMemory);
        }
        // DReX capacity: sum of per-user footprints.
        let per_token = longsight_drex::layout::ObjectFootprint::for_keys(1, self.model.head_dim)
            .total()
            * self.model.kv_heads
            * self.model.layers;
        let total: usize = contexts.iter().map(|&c| self.region(c) * per_token).sum();
        if total > cfg.geometry.total_bytes() {
            return Err(Infeasible::DrexMemory);
        }

        let layers = self.model.layers as f64;
        let max_region = contexts.iter().map(|&c| self.region(c)).max().unwrap_or(0);
        let k_merged = if max_region > 0 {
            cfg.hybrid.top_k.min(max_region)
        } else {
            0
        };
        let gpu = decode_step(
            &cfg.gpu,
            &self.model,
            users,
            resident.min(contexts.iter().copied().max().unwrap_or(0)),
            true,
            k_merged,
        );
        let drex_layer_ns = self.drex_layer_mixed(contexts);

        let gpu_serial_layer = (gpu.weights_ns + gpu.itq_ns + gpu.merge_ns) / layers;
        let attn_layer = gpu.attention_ns / layers;
        let overlap = attn_layer.max(drex_layer_ns);
        let step_ns = (gpu_serial_layer + overlap) * layers;
        let drex_visible = (drex_layer_ns - attn_layer).max(0.0) * layers;
        let breakdown = StepBreakdown {
            gpu_weights_ns: gpu.weights_ns,
            gpu_attention_ns: attn_layer.min(overlap) * layers,
            gpu_merge_ns: gpu.itq_ns + gpu.merge_ns,
            drex_offload_ns: drex_visible * 0.7,
            cxl_ns: drex_visible * 0.3,
        };
        let _ = step_ns;
        let avg_ctx = contexts.iter().sum::<usize>() / users.max(1);
        Ok(StepReport::from_breakdown(users, avg_ctx, breakdown))
    }

    /// Evaluates one decode step under fault injection, returning the step
    /// report together with the fault timeline and degradation counters of
    /// the representative layer.
    ///
    /// With faults disabled this is exactly [`ServingSystem::evaluate`] plus
    /// an empty log. The decode step repeats the same per-layer offload
    /// schedule `layers` times, so the per-layer degradation counters are
    /// reported once (per-step counts scale linearly).
    ///
    /// # Errors
    ///
    /// Returns the first capacity violation.
    pub fn evaluate_with_faults(
        &mut self,
        users: usize,
        context: usize,
    ) -> Result<(StepReport, FaultLog, DegradeStats), Infeasible> {
        let cfg = &self.config;
        let resident = (cfg.hybrid.window + cfg.hybrid.sinks).min(context);
        if users > REQUEST_QUEUE_DEPTH {
            return Err(Infeasible::QueueDepth);
        }
        if !longsight_gpu::fits_in_hbm(&cfg.gpu, &self.model, users, resident) {
            return Err(Infeasible::GpuMemory);
        }
        if self.drex_max_users(context) < users {
            return Err(Infeasible::DrexMemory);
        }

        let layers = self.model.layers as f64;
        let k_merged = if self.region(context) > 0 {
            cfg.hybrid.top_k.min(self.region(context))
        } else {
            0
        };
        let gpu = decode_step(&cfg.gpu, &self.model, users, resident, true, k_merged);
        let faulted = self.drex_layer_faulty(users, context);

        let attn_layer = gpu.attention_ns / layers;
        let overlap = attn_layer.max(faulted.layer_ns);
        let drex_visible = (faulted.layer_ns - attn_layer).max(0.0) * layers;
        let breakdown = StepBreakdown {
            gpu_weights_ns: gpu.weights_ns,
            gpu_attention_ns: attn_layer.min(overlap) * layers,
            gpu_merge_ns: gpu.itq_ns + gpu.merge_ns,
            drex_offload_ns: drex_visible * 0.7,
            cxl_ns: drex_visible * 0.3,
        };
        let report = StepReport::from_breakdown(users, context, breakdown)
            .with_offload(visible_components(&faulted.profile, drex_visible));
        let report = if self.config.lookahead.enabled {
            let gpu_serial_layer = (gpu.weights_ns + gpu.itq_ns + gpu.merge_ns) / layers;
            self.lookahead_report(
                report,
                drex_visible,
                gpu_serial_layer,
                attn_layer,
                faulted.layer_ns,
                &faulted.profile,
                layers,
            )
        } else {
            report
        };
        Ok((report, faulted.log, faulted.stats))
    }

    /// Rewrites a synchronous step report into the lookahead *hit*-path
    /// report, keeping the serial timing alongside in [`SpecStep`].
    ///
    /// On a hit, the chain issued at step *t−1* is already in flight, so
    /// the whole per-layer GPU budget (serial work + window attention)
    /// hides it; only the remainder stays visible. The serial numbers are
    /// carried over bit-for-bit so a miss (or a slot denial) can charge
    /// the exact synchronous timing.
    #[allow(clippy::too_many_arguments)]
    fn lookahead_report(
        &self,
        serial: StepReport,
        serial_visible_ns: f64,
        gpu_serial_layer: f64,
        attn_layer: f64,
        drex_layer_ns: f64,
        profile: &OffloadProfile,
        layers: f64,
    ) -> StepReport {
        let la = self.config.lookahead;
        // A chain issued at step t (when the GPU passes layer ℓ) is needed
        // at step t+1's visit to the same layer — one full revisit period
        // later. Its overlap budget is therefore the GPU work of a whole
        // step, not one layer's slice.
        let budget = (gpu_serial_layer + attn_layer) * layers;
        let hidden_layer = self.config.link.overlapped_ns(drex_layer_ns, budget);
        let hit_visible = (drex_layer_ns - hidden_layer) * layers;
        let breakdown = StepBreakdown {
            gpu_weights_ns: serial.breakdown.gpu_weights_ns,
            gpu_attention_ns: serial.breakdown.gpu_attention_ns,
            gpu_merge_ns: serial.breakdown.gpu_merge_ns,
            drex_offload_ns: hit_visible * 0.7,
            cxl_ns: hit_visible * 0.3,
        };
        StepReport::from_breakdown(serial.users, serial.context, breakdown)
            .with_offload(visible_components(profile, hit_visible))
            .with_spec(SpecStep {
                chain_ns: drex_layer_ns * layers,
                serial_step_ns: serial.step_ns,
                serial_visible_ns,
                hit_visible_ns: hit_visible,
                refilter_penalty_ns: la.refilter_penalty_ns,
                miss_rate: la.miss_rate,
                slots: la.slots,
                seed: la.seed,
            })
    }

    /// Maximum users limited by DReX capacity and queue depth.
    pub fn drex_max_users(&self, context: usize) -> usize {
        let region = self.region(context).max(1);
        let cap = layout::max_users(
            &self.config.geometry,
            self.model.kv_heads,
            self.model.layers,
            self.model.head_dim,
            region,
        );
        cap.min(REQUEST_QUEUE_DEPTH)
    }
}

impl ServingSystem for LongSightSystem {
    fn name(&self) -> String {
        "LongSight".into()
    }

    fn evaluate(&mut self, users: usize, context: usize) -> Result<StepReport, Infeasible> {
        if self.config.faults.is_enabled() {
            return self.evaluate_with_faults(users, context).map(|(r, _, _)| r);
        }
        let cfg = &self.config;
        let resident = (cfg.hybrid.window + cfg.hybrid.sinks).min(context);
        if users > REQUEST_QUEUE_DEPTH {
            return Err(Infeasible::QueueDepth);
        }
        if !longsight_gpu::fits_in_hbm(&cfg.gpu, &self.model, users, resident) {
            return Err(Infeasible::GpuMemory);
        }
        if self.drex_max_users(context) < users {
            return Err(Infeasible::DrexMemory);
        }

        let layers = self.model.layers as f64;
        let k_merged = if self.region(context) > 0 {
            cfg.hybrid.top_k.min(self.region(context))
        } else {
            0
        };
        let gpu = decode_step(&cfg.gpu, &self.model, users, resident, true, k_merged);
        let (drex_layer_ns, profile) = self.drex_layer(users, context);

        // Per layer: serial GPU work, then window attention overlapped with
        // the offload.
        let gpu_serial_layer = (gpu.weights_ns + gpu.itq_ns + gpu.merge_ns) / layers;
        let attn_layer = gpu.attention_ns / layers;
        let overlap = attn_layer.max(drex_layer_ns);
        let step_ns = (gpu_serial_layer + overlap) * layers;

        // Breakdown: attention is visible up to the overlap; any remainder
        // is DReX wait (device + CXL attributed proportionally).
        let drex_visible = (drex_layer_ns - attn_layer).max(0.0) * layers;
        let breakdown = StepBreakdown {
            gpu_weights_ns: gpu.weights_ns,
            gpu_attention_ns: attn_layer.min(overlap) * layers,
            gpu_merge_ns: gpu.itq_ns + gpu.merge_ns,
            drex_offload_ns: drex_visible * 0.7,
            cxl_ns: drex_visible * 0.3,
        };
        // Note: breakdown components are constructed to sum to step_ns.
        debug_assert!((breakdown.total_ns() - step_ns).abs() < 1e-3 * step_ns.max(1.0));
        let report = StepReport::from_breakdown(users, context, breakdown)
            .with_offload(visible_components(&profile, drex_visible));
        if self.config.lookahead.enabled {
            return Ok(self.lookahead_report(
                report,
                drex_visible,
                gpu_serial_layer,
                attn_layer,
                drex_layer_ns,
                &profile,
                layers,
            ));
        }
        Ok(report)
    }

    fn max_users(&self, context: usize) -> usize {
        let resident = (self.config.hybrid.window + self.config.hybrid.sinks).min(context);
        let mut users = 0usize;
        let cap = self.drex_max_users(context);
        while users < cap
            && longsight_gpu::fits_in_hbm(&self.config.gpu, &self.model, users + 1, resident)
        {
            users += 1;
            if users >= REQUEST_QUEUE_DEPTH {
                break;
            }
        }
        users
    }

    /// LongSight's two-tier page map: window + sink tokens hold HBM pages
    /// carved from the GPU's free memory after weights; everything beyond
    /// the window holds DReX tail pages. Restoring an evicted window moves
    /// its pages back over the CXL link; recomputing it re-runs prefill
    /// over the window on the GPU roofline.
    fn kv_geometry(&self, page_tokens: usize) -> Option<longsight_sched::KvDeviceGeometry> {
        let page_tokens = page_tokens.max(1);
        let cfg = &self.config;
        let window_tokens = cfg.hybrid.window + cfg.hybrid.sinks;
        let page_bytes = self.model.kv_bytes_per_token() * page_tokens;
        if page_bytes == 0 {
            return None;
        }
        let free_hbm = cfg.gpu.hbm_bytes.saturating_sub(self.model.weight_bytes());
        let drex_pages = layout::device_kv_pages(
            &cfg.geometry,
            self.model.kv_heads,
            self.model.layers,
            self.model.head_dim,
            page_tokens,
        );
        // Recompute cost per window token: the prefill roofline over one
        // window, amortized.
        let window_prefill =
            crate::prefill::prefill_cost(&cfg.gpu, &cfg.link, &self.model, window_tokens, 1024)
                .total_ns;
        Some(longsight_sched::KvDeviceGeometry {
            page_tokens,
            window_tokens,
            hbm_capacity_pages: free_hbm / page_bytes,
            drex_capacity_pages: drex_pages,
            restore_ns_per_page: cfg.link.transfer_ns(page_bytes),
            recompute_ns_per_token: window_prefill / window_tokens.max(1) as f64,
        })
    }

    /// Records one decode step's internal timeline: the per-layer serial
    /// GPU work and window attention (`gpu` track), the full offload
    /// pipeline via [`LongSightSystem::drex_layer_traced`], a
    /// `drex.faulted_layer` envelope when fault injection stretches the
    /// layer, and a `layers.remaining` span standing in for the repeated
    /// layers. Observational only — no serving state changes.
    fn record_step_detail(
        &mut self,
        users: usize,
        context: usize,
        rec: &mut Recorder,
        anchor_ns: f64,
    ) {
        if !rec.is_enabled() || users == 0 {
            return;
        }
        let cfg = &self.config;
        let resident = (cfg.hybrid.window + cfg.hybrid.sinks).min(context);
        let layers = self.model.layers as f64;
        let k_merged = if self.region(context) > 0 {
            cfg.hybrid.top_k.min(self.region(context))
        } else {
            0
        };
        let gpu = decode_step(&cfg.gpu, &self.model, users, resident, true, k_merged);
        let gpu_serial_layer = (gpu.weights_ns + gpu.itq_ns + gpu.merge_ns) / layers;
        let attn_layer = gpu.attention_ns / layers;
        let gpu_track = rec.track("gpu");
        rec.leaf_with(
            gpu_track,
            "gpu.serial",
            anchor_ns,
            anchor_ns + gpu_serial_layer,
            &[("users", ArgVal::U(users as u64))],
        );
        rec.leaf_with(
            gpu_track,
            "gpu.window_attn",
            anchor_ns + gpu_serial_layer,
            anchor_ns + gpu_serial_layer + attn_layer,
            &[("resident_tokens", ArgVal::U(resident as u64))],
        );

        let drex_anchor = anchor_ns + gpu_serial_layer;
        let faulted = cfg
            .faults
            .is_enabled()
            .then(|| self.drex_layer_faulty(users, context));
        let fault_span = faulted.as_ref().map(|f| {
            let drex_track = rec.track("drex");
            rec.open_with(
                drex_track,
                "drex.faulted_layer",
                drex_anchor,
                &[
                    ("events", ArgVal::U(f.log.len() as u64)),
                    ("replay_rounds", ArgVal::U(f.replay_rounds as u64)),
                    ("straggled_slices", ArgVal::U(f.straggled_slices as u64)),
                ],
            )
        });
        let (drex_ns, _) = self.drex_layer_traced(users, context, rec, drex_anchor);
        let layer_drex = faulted
            .as_ref()
            .map_or(drex_ns, |f| f.layer_ns.max(drex_ns));
        if let Some(span) = fault_span {
            rec.close(span, drex_anchor + layer_drex);
        }

        let layer_ns = gpu_serial_layer + attn_layer.max(layer_drex);
        if self.model.layers > 1 {
            rec.leaf_with(
                gpu_track,
                "layers.remaining",
                anchor_ns + layer_ns,
                anchor_ns + layer_ns * layers,
                &[("layers", ArgVal::U(self.model.layers as u64 - 1))],
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn system(model: ModelConfig) -> LongSightSystem {
        LongSightSystem::new(LongSightConfig::paper_default(), model)
    }

    #[test]
    fn supports_one_million_token_context() {
        // Headline: 1 GPU + 1 DReX serves 1M-token contexts for both models.
        for model in [ModelConfig::llama3_1b(), ModelConfig::llama3_8b()] {
            let mut s = system(model);
            let r = s.evaluate(1, 1 << 20).expect("1M context must be feasible");
            assert!(r.step_ns > 0.0);
            assert!(s.max_users(1 << 20) >= 1);
        }
    }

    #[test]
    fn offload_scales_sublinearly_with_context() {
        let s = system(ModelConfig::llama3_8b());
        let (t32, _) = s.drex_layer(1, 32_768);
        let (t256, _) = s.drex_layer(1, 262_144);
        assert!(
            t256 < 8.0 * t32,
            "8x context must cost < 8x: {t32} -> {t256}"
        );
        assert!(t256 > t32);
    }

    #[test]
    fn value_transfer_dominates_short_contexts() {
        // Fig 8: short contexts are bottlenecked by value reads over CXL.
        let s = system(ModelConfig::llama3_8b());
        let (_, p) = s.drex_layer(1, 8_192);
        assert!(
            p.value_cxl_ns > p.fetch_score_ns,
            "value CXL {} should dominate fetch {} at 8K",
            p.value_cxl_ns,
            p.fetch_score_ns
        );
        // And the dot-product share grows with context.
        let (_, p2) = s.drex_layer(1, 1 << 20);
        assert!(p2.fetch_score_ns > p.fetch_score_ns * 10.0);
    }

    #[test]
    fn multi_user_contention_appears_beyond_nma_count() {
        let s = system(ModelConfig::llama3_8b());
        let (_, p1) = s.drex_layer(1, 131_072);
        let (_, p64) = s.drex_layer(64, 131_072);
        assert!(
            p64.queue_wait_ns > p1.queue_wait_ns,
            "64 users must queue: {} vs {}",
            p64.queue_wait_ns,
            p1.queue_wait_ns
        );
    }

    #[test]
    fn serves_more_users_than_dense_gpu_at_long_context() {
        let model = ModelConfig::llama3_8b();
        let mut ls = system(model.clone());
        let dense = crate::baselines::GpuOnlySystem {
            gpus: longsight_gpu::DataParallelGpus::new(GpuSpec::h100_sxm(), 1),
            model,
        };
        let ctx = 131_072;
        use crate::report::ServingSystem as _;
        assert!(ls.max_users(ctx) > dense.max_users(ctx));
        let _ = ls.evaluate(4, ctx).unwrap();
    }

    #[test]
    fn throughput_saturates_with_users() {
        // Fig 7: throughput plateaus once DReX is the bottleneck.
        let mut s = system(ModelConfig::llama3_1b());
        let ctx = 262_144;
        let cap = s.max_users(ctx).min(256);
        let mid = s.evaluate((cap / 2).max(1), ctx).unwrap();
        let full = s.evaluate(cap, ctx).unwrap();
        let gain = full.throughput_tps / mid.throughput_tps;
        assert!(
            gain < 2.0,
            "doubling users near saturation must not double throughput (gain {gain})"
        );
        assert!(full.throughput_tps >= mid.throughput_tps * 0.8);
    }

    #[test]
    fn mixed_batch_matches_uniform_when_contexts_equal() {
        let mut s = system(ModelConfig::llama3_8b());
        let uniform = s.evaluate(4, 131_072).unwrap();
        let mixed = s.evaluate_mixed(&[131_072; 4]).unwrap();
        let rel = (mixed.step_ns - uniform.step_ns).abs() / uniform.step_ns;
        assert!(
            rel < 0.05,
            "uniform-context mixed batch should match evaluate(): {} vs {}",
            mixed.step_ns,
            uniform.step_ns
        );
    }

    #[test]
    fn mixed_batch_is_paced_by_the_longest_context() {
        let mut s = system(ModelConfig::llama3_8b());
        let short = s.evaluate_mixed(&[32_768; 4]).unwrap();
        let skewed = s
            .evaluate_mixed(&[32_768, 32_768, 32_768, 524_288])
            .unwrap();
        assert!(
            skewed.step_ns > short.step_ns,
            "one long-context user must slow the synchronized step"
        );
    }

    #[test]
    fn mixed_batch_capacity_uses_summed_footprints() {
        let mut s = system(ModelConfig::llama3_8b());
        // 3 users at 1M fit (max_users(1M) >= 3)…
        assert!(s.evaluate_mixed(&[1 << 20; 3]).is_ok());
        // …but 5 do not.
        assert!(s.evaluate_mixed(&[1 << 20; 5]).is_err());
    }

    #[test]
    fn disabled_faults_change_nothing() {
        let model = ModelConfig::llama3_8b();
        let mut plain = system(model.clone());
        let mut with = LongSightSystem::new(
            LongSightConfig::paper_default().with_faults(FaultProfile::disabled(), 99),
            model,
        );
        let a = plain.evaluate(8, 131_072).unwrap();
        let b = with.evaluate(8, 131_072).unwrap();
        assert_eq!(a, b, "a zero-rate profile must be bit-identical");
        let (c, log, stats) = with.evaluate_with_faults(8, 131_072).unwrap();
        assert_eq!(a, c);
        assert!(log.is_empty());
        assert_eq!(stats, crate::degrade::DegradeStats::default());
    }

    #[test]
    fn faulted_layer_never_beats_clean_and_is_monotone() {
        let model = ModelConfig::llama3_8b();
        let clean = system(model.clone());
        let (clean_ns, _) = clean.drex_layer(8, 131_072);
        let mut prev = clean_ns;
        for rate in [0.02, 0.1, 0.4] {
            let s = LongSightSystem::new(
                LongSightConfig::paper_default().with_faults(FaultProfile::scaled(rate), 5),
                model.clone(),
            );
            let r = s.drex_layer_faulty(8, 131_072);
            assert!(
                r.layer_ns >= prev - 1e-6,
                "rate {rate}: faulted layer got cheaper ({} < {prev})",
                r.layer_ns
            );
            prev = r.layer_ns;
        }
    }

    #[test]
    fn faulted_layer_report_is_deterministic() {
        let model = ModelConfig::llama3_1b();
        let cfg = LongSightConfig::paper_default().with_faults(FaultProfile::severe(), 11);
        let a = LongSightSystem::new(cfg.clone(), model.clone()).drex_layer_faulty(16, 131_072);
        let b = LongSightSystem::new(cfg, model).drex_layer_faulty(16, 131_072);
        assert_eq!(a.layer_ns, b.layer_ns);
        assert_eq!(a.log.to_text(), b.log.to_text());
        assert!(!a.log.is_empty(), "severe profile must inject events");
    }

    #[test]
    fn breakdown_sums_to_step() {
        let mut s = system(ModelConfig::llama3_8b());
        let r = s.evaluate(8, 131_072).unwrap();
        assert!((r.breakdown.total_ns() - r.step_ns).abs() < 1e-3 * r.step_ns);
    }

    #[test]
    fn lookahead_disabled_is_bit_identical() {
        let model = ModelConfig::llama3_8b();
        let mut plain = system(model.clone());
        let mut gated = LongSightSystem::new(
            LongSightConfig::paper_default().with_lookahead(LookaheadConfig::disabled()),
            model,
        );
        let a = plain.evaluate(8, 131_072).unwrap();
        let b = gated.evaluate(8, 131_072).unwrap();
        assert_eq!(a, b, "disabled lookahead changed the step report");
        assert!(a.spec.is_none());
    }

    #[test]
    fn lookahead_hit_path_hides_the_chain_but_keeps_the_serial_bits() {
        let model = ModelConfig::llama3_8b();
        let mut plain = system(model.clone());
        let mut ahead = LongSightSystem::new(
            LongSightConfig::paper_default().with_lookahead(LookaheadConfig::serving_default()),
            model,
        );
        let serial = plain.evaluate(8, 131_072).unwrap();
        let hit = ahead.evaluate(8, 131_072).unwrap();
        let spec = hit.spec.expect("lookahead on must attach SpecStep");

        // The serial path is carried over bit-for-bit for the miss charge.
        assert_eq!(spec.serial_step_ns.to_bits(), serial.step_ns.to_bits());
        // A hit can only hide work, never invent speedup beyond the chain.
        assert!(hit.step_ns <= serial.step_ns);
        assert!(hit.step_ns >= serial.step_ns - spec.chain_ns);
        assert!(spec.hit_visible_ns <= spec.serial_visible_ns);
        assert!(spec.chain_ns >= spec.serial_visible_ns);
        // At the paper default the GPU budget covers the chain entirely.
        assert_eq!(spec.hit_visible_ns, 0.0, "8B/128K chain should hide fully");
    }

    #[test]
    fn issue_and_complete_compose_to_the_fused_layer() {
        let s = system(ModelConfig::llama3_8b());
        let (fused_ns, fused_profile) = s.drex_layer(8, 131_072);
        let mut rec = Recorder::disabled();
        let issued = s
            .drex_layer_issue(8, 131_072, &mut rec, 0.0)
            .expect("non-empty region");
        let (split_ns, split_profile) = s.drex_layer_complete(&issued, &mut rec, 0.0);
        assert_eq!(fused_ns.to_bits(), split_ns.to_bits());
        assert_eq!(fused_profile, split_profile);
        assert!(issued.ready_rel_ns > 0.0 && issued.ready_rel_ns < split_ns);
    }
}
