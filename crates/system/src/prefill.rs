//! Prefill-stage modeling (paper §6).
//!
//! During prefill the GPU builds the KV cache with matrix–matrix work (high
//! throughput); once the staging threshold is reached it prepares Key Sign
//! Objects, Key Objects, and Value Objects in groups of 128 and writes them
//! to DReX — "object preparation and transfer are handled by separate GPU
//! kernels that execute off the critical path of the Prefill stage". The
//! paper's evaluation excludes prefill (§8.1.2); this model exists to check
//! that the off-critical-path claim holds: DReX population bandwidth must
//! keep up with prefill compute.

use longsight_cxl::CxlLink;
use longsight_gpu::GpuSpec;
use longsight_model::ModelConfig;
use longsight_tensor::SignBits;

/// Cost of prefilling one user's prompt.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PrefillCost {
    /// GPU compute time (projections, attention, FFN over the prompt), ns.
    pub gpu_ns: f64,
    /// Time to prepare and push KV objects to DReX over CXL, ns.
    pub kv_write_ns: f64,
    /// End-to-end prefill latency with write/compute overlap, ns.
    pub total_ns: f64,
}

impl PrefillCost {
    /// Whether DReX population stayed off the critical path.
    pub fn write_hidden(&self) -> bool {
        self.kv_write_ns <= self.gpu_ns
    }
}

/// Models prefill of `prompt` tokens for one user, with `window` tokens
/// retained in HBM (everything older is flushed to DReX in 128-KV groups).
pub fn prefill_cost(
    gpu: &GpuSpec,
    link: &CxlLink,
    cfg: &ModelConfig,
    prompt: usize,
    window: usize,
) -> PrefillCost {
    // GPU compute: 2 flops per parameter per token, plus quadratic attention
    // (flash-style streaming, compute-bound in prefill).
    let h = cfg.hidden_dim() as f64;
    let params = cfg.layers as f64
        * (h * h + 2.0 * cfg.kv_dim() as f64 * h + h * h + 3.0 * cfg.ffn_dim as f64 * h);
    let proj_flops = 2.0 * params * prompt as f64;
    let attn_flops = cfg.layers as f64
        * 2.0
        * 2.0
        * cfg.q_heads as f64
        * cfg.head_dim as f64
        * (prompt as f64 * prompt as f64 / 2.0);
    let weight_bytes = params * 2.0;
    let gpu_ns = gpu.op_ns(proj_flops + attn_flops, weight_bytes);

    // KV objects flushed to DReX: everything beyond the window, in blocks of
    // 128, each carrying keys + values + sign objects.
    let flushed = prompt.saturating_sub(window);
    let per_token = cfg.kv_bytes_per_token() // BF16 K+V across layers/heads
        + cfg.layers * cfg.kv_heads * SignBits::storage_bytes(cfg.head_dim);
    let blocks = flushed.div_ceil(128);
    let bytes = flushed * per_token;
    // Each block is one bulk CXL write; base latencies pipeline across
    // blocks, so cost ≈ bandwidth term + one latency per in-flight batch.
    let kv_write_ns = if flushed == 0 {
        0.0
    } else {
        bytes as f64 / link.bandwidth_gbps + link.base_latency_ns * (blocks as f64).min(8.0)
    };

    PrefillCost {
        gpu_ns,
        kv_write_ns,
        total_ns: gpu_ns.max(kv_write_ns),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn writes_stay_off_critical_path_for_long_prompts() {
        // The paper's design premise: object preparation/transfer hides
        // behind prefill compute.
        let gpu = GpuSpec::h100_sxm();
        let link = CxlLink::pcie5_x16();
        for cfg in [ModelConfig::llama3_1b(), ModelConfig::llama3_8b()] {
            for prompt in [16_384usize, 131_072, 1 << 20] {
                let c = prefill_cost(&gpu, &link, &cfg, prompt, 1024);
                assert!(
                    c.write_hidden(),
                    "{} at {prompt}: writes {} ns exceed compute {} ns",
                    cfg.name,
                    c.kv_write_ns,
                    c.gpu_ns
                );
            }
        }
    }

    #[test]
    fn prefill_scales_superlinearly_with_prompt() {
        let gpu = GpuSpec::h100_sxm();
        let link = CxlLink::pcie5_x16();
        let cfg = ModelConfig::llama3_8b();
        let a = prefill_cost(&gpu, &link, &cfg, 32_768, 1024);
        let b = prefill_cost(&gpu, &link, &cfg, 131_072, 1024);
        assert!(
            b.gpu_ns > 4.0 * a.gpu_ns,
            "quadratic attention term must show"
        );
    }

    #[test]
    fn short_prompts_write_nothing() {
        let gpu = GpuSpec::h100_sxm();
        let link = CxlLink::pcie5_x16();
        let cfg = ModelConfig::llama3_1b();
        let c = prefill_cost(&gpu, &link, &cfg, 512, 1024);
        assert_eq!(c.kv_write_ns, 0.0);
        assert_eq!(c.total_ns, c.gpu_ns);
    }
}
