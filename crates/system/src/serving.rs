//! Discrete-event serving simulation: Poisson request arrivals, continuous
//! batching of synchronized decode steps, per-request latency percentiles.
//!
//! The paper's serving claims (§9.1) are about *operating points*: how many
//! concurrent users a system sustains, where throughput plateaus, and what
//! happens to quality of service as load grows. This module turns the
//! per-step cost models into a closed-loop simulation producing those
//! curves: requests arrive over time, join the running batch (continuous
//! batching), decode their output tokens, and leave.

use crate::attribution::{attribution_parts, TokenAttribution};
use crate::degrade::{resolve_token, DegradeStats, TokenOutcome};
use crate::prefill::prefill_cost;
use crate::report::{ServingSystem, StepReport};
use longsight_cxl::CxlLink;
use longsight_faults::{FaultInjector, FaultLog, RetryPolicy};
use longsight_gpu::GpuSpec;
use longsight_model::ModelConfig;
use longsight_obs::json::fmt_f64;
use longsight_obs::{ArgVal, Recorder};
use longsight_tensor::SimRng;

/// Offered-load description.
#[derive(Debug, Clone)]
pub struct WorkloadConfig {
    /// Mean request arrival rate (Poisson), requests per second.
    pub arrivals_per_s: f64,
    /// Uniform range of per-request context lengths (prompt tokens).
    pub context_tokens: (usize, usize),
    /// Uniform range of output (decode) lengths.
    pub output_tokens: (usize, usize),
    /// Simulated wall-clock duration, seconds.
    pub duration_s: f64,
    /// RNG seed.
    pub seed: u64,
}

impl WorkloadConfig {
    /// A steady long-context chat workload.
    pub fn long_context_chat() -> Self {
        Self {
            arrivals_per_s: 2.0,
            context_tokens: (65_536, 131_072),
            output_tokens: (64, 256),
            duration_s: 30.0,
            seed: 7,
        }
    }
}

/// Aggregate results of a serving run.
#[derive(Debug, Clone, PartialEq)]
pub struct ServeMetrics {
    /// Requests fully served.
    pub completed: usize,
    /// Requests rejected at arrival (no capacity at any point in the run).
    pub rejected: usize,
    /// Requests still in flight at the end.
    pub in_flight: usize,
    /// Generated tokens per second over the simulated window.
    pub throughput_tps: f64,
    /// Median per-token (decode step) latency, ms.
    pub p50_token_ms: f64,
    /// 99th-percentile per-token latency, ms.
    pub p99_token_ms: f64,
    /// Median end-to-end request latency (arrival → last token), ms.
    pub p50_request_ms: f64,
    /// 99th-percentile request latency, ms.
    pub p99_request_ms: f64,
    /// Mean batch size across decode steps.
    pub mean_batch: f64,
    /// Tokens whose offload needed at least one retry but completed
    /// (zero on fault-free runs).
    pub retried_tokens: usize,
    /// Tokens that exhausted the retry budget and were emitted from dense
    /// window-only attention (zero on fault-free runs).
    pub degraded_tokens: usize,
    /// Requests that died unrecoverably under injected hard faults
    /// (zero on fault-free runs).
    pub failed_requests: usize,
    /// Quality delta of degradation: the fraction of generated tokens that
    /// lost long-range top-k attention (their recall over the non-window
    /// region dropped to zero for that step).
    pub degraded_quality_delta: f64,
}

impl ServeMetrics {
    /// The run summary as printed by `longsight loadtest` (four lines:
    /// completion counts, throughput, token and request latency).
    pub fn to_text(&self) -> String {
        format!(
            "  completed {} | rejected {} | in flight {}\n  throughput: {:.1} tok/s | mean batch {:.1}\n  token latency  p50 {:.2} ms  p99 {:.2} ms\n  request latency p50 {:.1} ms  p99 {:.1} ms\n",
            self.completed,
            self.rejected,
            self.in_flight,
            self.throughput_tps,
            self.mean_batch,
            self.p50_token_ms,
            self.p99_token_ms,
            self.p50_request_ms,
            self.p99_request_ms,
        )
    }

    /// Every field as a flat JSON object (stable key order).
    pub fn to_json(&self) -> String {
        format!(
            "{{\"completed\":{},\"rejected\":{},\"in_flight\":{},\"throughput_tps\":{},\"p50_token_ms\":{},\"p99_token_ms\":{},\"p50_request_ms\":{},\"p99_request_ms\":{},\"mean_batch\":{},\"retried_tokens\":{},\"degraded_tokens\":{},\"failed_requests\":{},\"degraded_quality_delta\":{}}}",
            self.completed,
            self.rejected,
            self.in_flight,
            fmt_f64(self.throughput_tps),
            fmt_f64(self.p50_token_ms),
            fmt_f64(self.p99_token_ms),
            fmt_f64(self.p50_request_ms),
            fmt_f64(self.p99_request_ms),
            fmt_f64(self.mean_batch),
            self.retried_tokens,
            self.degraded_tokens,
            self.failed_requests,
            fmt_f64(self.degraded_quality_delta),
        )
    }
}

fn percentile(sorted: &[f64], p: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    let idx = ((sorted.len() - 1) as f64 * p).round() as usize;
    sorted[idx]
}

#[derive(Debug, Clone)]
struct ActiveRequest {
    id: usize,
    arrival_ns: f64,
    context: usize,
    remaining: usize,
    generated: usize,
}

/// Runs the closed-loop simulation of `system` under `workload`.
///
/// Admission: an arriving request joins the batch if the system can evaluate
/// the grown batch at the largest member context; otherwise it waits in an
/// unbounded queue (and counts toward request latency). Steps are
/// synchronized across the batch (all users advance one token per step), and
/// contexts are frozen at admission — decode extends them by at most a few
/// hundred tokens, negligible against 64K+ prompts.
pub fn simulate(
    system: &mut dyn ServingSystem,
    model: &ModelConfig,
    workload: &WorkloadConfig,
) -> ServeMetrics {
    simulate_impl(
        system,
        model,
        workload,
        None,
        &mut Recorder::disabled(),
        None,
    )
    .0
}

/// [`simulate`] under token-level fault injection.
///
/// Each generated token resolves through the retry/deadline degradation
/// policy ([`crate::degrade::resolve_token`]): sampled offload timeouts cost
/// the full deadline plus backoff, exhausted retries degrade the token to
/// dense window-only attention, and hard faults kill the request. The
/// synchronized batch is paced by its worst token, so a step's latency grows
/// by the largest penalty in the batch.
///
/// Returns the metrics together with the deterministic fault event log —
/// every decision derives from `(inj.seed, request id, token index,
/// attempt)`, so two runs with the same seed produce byte-identical logs and
/// identical metrics at any thread count. With a disabled injector this is
/// exactly [`simulate`] plus an empty log.
pub fn simulate_with_faults(
    system: &mut dyn ServingSystem,
    model: &ModelConfig,
    workload: &WorkloadConfig,
    inj: &FaultInjector,
    retry: &RetryPolicy,
) -> (ServeMetrics, FaultLog) {
    simulate_impl(
        system,
        model,
        workload,
        Some((inj, retry)),
        &mut Recorder::disabled(),
        None,
    )
}

/// [`simulate`] / [`simulate_with_faults`] with observability attached.
///
/// Every decode step emits a `decode.step` span on the `serving` track
/// (with a nested `decode.retry_wait` child when fault penalties stretch
/// the step), the first evaluation of each distinct `(batch, context)`
/// shape records the system's expanded internal timeline at the simulated
/// time it was first needed, every fault event lands on the `faults` track
/// as an instant (1:1 with the returned [`FaultLog`]), and the run's
/// aggregate counters/latency histograms populate `rec.metrics`. When
/// `attr` is given, each generated token's latency is decomposed into the
/// eight attribution components.
///
/// The simulated timeline is bit-identical to the unobserved entry points:
/// recording only reads simulation state.
pub fn simulate_observed(
    system: &mut dyn ServingSystem,
    model: &ModelConfig,
    workload: &WorkloadConfig,
    faults: Option<(&FaultInjector, &RetryPolicy)>,
    rec: &mut Recorder,
    attr: Option<&mut TokenAttribution>,
) -> (ServeMetrics, FaultLog) {
    simulate_impl(system, model, workload, faults, rec, attr)
}

fn simulate_impl(
    system: &mut dyn ServingSystem,
    model: &ModelConfig,
    workload: &WorkloadConfig,
    faults: Option<(&FaultInjector, &RetryPolicy)>,
    rec: &mut Recorder,
    mut attr: Option<&mut TokenAttribution>,
) -> (ServeMetrics, FaultLog) {
    let faults = faults.filter(|(inj, _)| inj.is_enabled());
    let mut fault_log = FaultLog::new();
    let mut degrade = DegradeStats::default();
    let mut rng = SimRng::seed_from(workload.seed);
    let gpu = GpuSpec::h100_sxm();
    let link = CxlLink::pcie5_x16();

    // Pre-generate arrivals.
    let mut arrivals: Vec<ActiveRequest> = Vec::new();
    let mut t = 0.0f64;
    let horizon_ns = workload.duration_s * 1e9;
    loop {
        let gap = -((1.0 - rng.uniform()).ln()) / workload.arrivals_per_s * 1e9;
        t += gap;
        if t >= horizon_ns {
            break;
        }
        let (c0, c1) = workload.context_tokens;
        let (o0, o1) = workload.output_tokens;
        let context = c0 + rng.below((c1 - c0).max(1));
        let output = o0 + rng.below((o1 - o0).max(1));
        arrivals.push(ActiveRequest {
            id: arrivals.len(),
            arrival_ns: t,
            context,
            remaining: output.max(1),
            generated: 0,
        });
    }
    let total_arrived = arrivals.len();
    // Each request's prefill cost depends only on its own context length, so
    // the per-user costs compute up front on the deterministic parallel map
    // (bit-identical to calling `prefill_cost` at admission time).
    let mut prefill_ns: Vec<f64> = longsight_exec::deterministic_map(&arrivals, |_, a| {
        prefill_cost(&gpu, &link, model, a.context, 1024).total_ns
    });
    arrivals.reverse(); // pop from the back in time order
    prefill_ns.reverse();

    let mut now = 0.0f64;
    let mut active: Vec<ActiveRequest> = Vec::new();
    let mut queue: Vec<ActiveRequest> = Vec::new();
    let mut step_times: Vec<(f64, usize)> = Vec::new();
    let mut request_latencies: Vec<f64> = Vec::new();
    let mut rejected = 0usize;
    let mut generated_tokens = 0usize;
    let serving_track = rec.track("serving");
    let faults_track = rec.track("faults");
    let mut fault_cursor = 0usize;
    // Step-cost cache keyed by (batch, context bucket). The first (and
    // only) evaluation of each shape also records the system's expanded
    // step timeline, anchored at the simulated time it was first needed.
    let mut cache: Vec<((usize, usize), Option<StepReport>)> = Vec::new();

    let mut step_cost = |sys: &mut dyn ServingSystem,
                         users: usize,
                         ctx: usize,
                         rec: &mut Recorder,
                         at_ns: f64|
     -> Option<StepReport> {
        let bucket = ctx.next_power_of_two();
        if let Some(&(_, v)) = cache.iter().find(|&&(k, _)| k == (users, bucket)) {
            return v;
        }
        let v = sys.evaluate(users, bucket).ok();
        if v.is_some() {
            sys.record_step_detail(users, bucket, rec, at_ns);
        }
        cache.push(((users, bucket), v));
        v
    };

    loop {
        // Admit arrivals up to `now` (prefill cost charged to the request).
        while arrivals.last().is_some_and(|a| a.arrival_ns <= now) {
            let a = arrivals.pop().expect("checked");
            let pf_ns = prefill_ns.pop().expect("paired with arrivals");
            let max_ctx = active
                .iter()
                .chain(std::iter::once(&a))
                .map(|r| r.context)
                .max()
                .expect("non-empty");
            if step_cost(system, active.len() + 1, max_ctx, rec, now).is_some() {
                let mut admitted = a;
                admitted.arrival_ns -= pf_ns; // fold prefill into latency
                active.push(admitted);
            } else if step_cost(system, 1, a.context, rec, now).is_none() {
                rejected += 1; // can never be served
            } else {
                queue.push(a);
            }
        }
        // Drain the wait queue when capacity allows.
        queue.retain(|a| {
            let max_ctx = active
                .iter()
                .map(|r| r.context)
                .chain(std::iter::once(a.context))
                .max()
                .expect("non-empty");
            if step_cost(system, active.len() + 1, max_ctx, rec, now).is_some() {
                active.push(a.clone());
                false
            } else {
                true
            }
        });

        if active.is_empty() {
            match arrivals.last() {
                Some(a) => {
                    now = a.arrival_ns;
                    continue;
                }
                None => break,
            }
        }

        // One synchronized decode step.
        let users = active.len();
        let max_ctx = active.iter().map(|r| r.context).max().expect("non-empty");
        let report = step_cost(system, users, max_ctx, rec, now)
            .expect("active batch was admitted, so it must evaluate");
        let base_dt = report.step_ns;
        let mut dt = base_dt;
        let step_start = now;
        let mut batch_died = false;
        if let Some((inj, retry)) = faults {
            // Resolve every member's token through the degradation policy.
            // The batch is synchronized, so the worst member's retry/backoff
            // penalty paces the whole step; hard-failed requests leave the
            // batch without emitting this token.
            let mut max_penalty = 0.0f64;
            let mut dead: Vec<usize> = Vec::new();
            for r in &active {
                let (outcome, penalty) =
                    resolve_token(inj, retry, r.id as u64, r.generated as u64, &mut fault_log);
                degrade.record(outcome);
                if matches!(outcome, TokenOutcome::Failed) {
                    dead.push(r.id);
                } else {
                    max_penalty = max_penalty.max(penalty);
                }
            }
            // Replay this step's fault events onto the trace (1:1 with the
            // log) at the step's start time.
            fault_cursor += fault_log.record_tail_into(fault_cursor, rec, faults_track, step_start);
            active.retain(|r| !dead.contains(&r.id));
            dt += max_penalty;
            batch_died = active.is_empty();
        }
        if rec.is_enabled() {
            let span = rec.open_with(
                serving_track,
                "decode.step",
                step_start,
                &[
                    ("users", ArgVal::U(users as u64)),
                    ("ctx", ArgVal::U(max_ctx as u64)),
                ],
            );
            if dt > base_dt {
                // The worst token's deadline overrun paces the batch.
                rec.leaf_with(
                    serving_track,
                    "decode.retry_wait",
                    step_start + base_dt,
                    step_start + dt,
                    &[("penalty_ns", ArgVal::F(dt - base_dt))],
                );
            }
            rec.close(span, step_start + dt);
        }
        now += dt;
        if batch_died {
            continue;
        }
        if now > 4.0 * horizon_ns {
            break; // overload guard: stop accounting far past the window
        }
        step_times.push((dt, active.len()));
        if let Some(a) = attr.as_deref_mut() {
            a.record_step(attribution_parts(&report, dt), dt, active.len().min(64));
        }
        generated_tokens += active.len();
        for r in &mut active {
            r.remaining -= 1;
            r.generated += 1;
        }
        active.retain(|r| {
            if r.remaining == 0 {
                request_latencies.push((now - r.arrival_ns) / 1e6);
                false
            } else {
                true
            }
        });
    }

    let mut token_lat: Vec<f64> = Vec::new();
    for &(dt, users) in &step_times {
        for _ in 0..users.min(64) {
            token_lat.push(dt / 1e6);
        }
    }
    token_lat.sort_by(f64::total_cmp);
    request_latencies.sort_by(f64::total_cmp);

    let span_s = (now.max(1.0)) / 1e9;
    let metrics = ServeMetrics {
        completed: request_latencies.len(),
        rejected,
        in_flight: total_arrived
            - request_latencies.len()
            - rejected
            - queue.len()
            - degrade.failed_requests,
        throughput_tps: generated_tokens as f64 / span_s,
        p50_token_ms: percentile(&token_lat, 0.5),
        p99_token_ms: percentile(&token_lat, 0.99),
        p50_request_ms: percentile(&request_latencies, 0.5),
        p99_request_ms: percentile(&request_latencies, 0.99),
        mean_batch: if step_times.is_empty() {
            0.0
        } else {
            step_times.iter().map(|&(_, u)| u as f64).sum::<f64>() / step_times.len() as f64
        },
        retried_tokens: degrade.retried_tokens,
        degraded_tokens: degrade.degraded_tokens,
        failed_requests: degrade.failed_requests,
        degraded_quality_delta: if generated_tokens == 0 {
            0.0
        } else {
            degrade.degraded_tokens as f64 / generated_tokens as f64
        },
    };
    if rec.is_enabled() {
        for &t in &token_lat {
            rec.observe("serving.token_latency_ms", t);
        }
        for &r in &request_latencies {
            rec.observe("serving.request_latency_ms", r);
        }
        rec.counter_add("serving.completed", metrics.completed as u64);
        rec.counter_add("serving.rejected", metrics.rejected as u64);
        rec.counter_add("serving.generated_tokens", generated_tokens as u64);
        rec.counter_add("serving.retried_tokens", metrics.retried_tokens as u64);
        rec.counter_add("serving.degraded_tokens", metrics.degraded_tokens as u64);
        rec.counter_add("serving.failed_requests", metrics.failed_requests as u64);
        rec.counter_add("serving.fault_events", fault_log.len() as u64);
        rec.gauge_set("serving.throughput_tps", metrics.throughput_tps);
        rec.gauge_set("serving.mean_batch", metrics.mean_batch);
        rec.gauge_set("serving.p50_token_ms", metrics.p50_token_ms);
        rec.gauge_set("serving.p99_token_ms", metrics.p99_token_ms);
    }
    (metrics, fault_log)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::longsight::{LongSightConfig, LongSightSystem};

    fn run(arrivals_per_s: f64, seed: u64) -> ServeMetrics {
        let model = ModelConfig::llama3_1b();
        let mut sys = LongSightSystem::new(LongSightConfig::paper_default(), model.clone());
        let wl = WorkloadConfig {
            arrivals_per_s,
            context_tokens: (32_768, 65_536),
            output_tokens: (16, 64),
            duration_s: 5.0,
            seed,
        };
        simulate(&mut sys, &model, &wl)
    }

    #[test]
    fn deterministic_given_seed() {
        assert_eq!(run(2.0, 3), run(2.0, 3));
    }

    #[test]
    fn completes_requests_at_moderate_load() {
        let m = run(2.0, 1);
        assert!(m.completed > 0, "some requests must finish: {m:?}");
        assert!(m.p99_token_ms >= m.p50_token_ms);
        assert!(m.p99_request_ms >= m.p50_request_ms);
        assert!(m.throughput_tps > 0.0);
    }

    #[test]
    fn higher_load_means_bigger_batches_and_latency() {
        let low = run(1.0, 5);
        let high = run(16.0, 5);
        assert!(
            high.mean_batch > low.mean_batch,
            "more arrivals must grow the batch: {} vs {}",
            low.mean_batch,
            high.mean_batch
        );
        assert!(
            high.p50_token_ms >= low.p50_token_ms,
            "token latency should not shrink under load"
        );
    }

    #[test]
    fn disabled_injector_matches_fault_free_simulate() {
        let model = ModelConfig::llama3_1b();
        let mut sys = LongSightSystem::new(LongSightConfig::paper_default(), model.clone());
        let wl = WorkloadConfig {
            arrivals_per_s: 2.0,
            context_tokens: (32_768, 65_536),
            output_tokens: (16, 64),
            duration_s: 5.0,
            seed: 3,
        };
        let plain = simulate(&mut sys, &model, &wl);
        let (faulted, log) = simulate_with_faults(
            &mut sys,
            &model,
            &wl,
            &FaultInjector::disabled(),
            &RetryPolicy::serving_default(),
        );
        assert_eq!(plain, faulted);
        assert!(log.is_empty());
        assert_eq!(plain.degraded_tokens, 0);
        assert_eq!(plain.degraded_quality_delta, 0.0);
    }

    #[test]
    fn injected_timeouts_degrade_and_slow_the_run() {
        use longsight_faults::{FaultKind, FaultProfile};
        let model = ModelConfig::llama3_1b();
        let mut sys = LongSightSystem::new(LongSightConfig::paper_default(), model.clone());
        let wl = WorkloadConfig {
            arrivals_per_s: 2.0,
            context_tokens: (32_768, 65_536),
            output_tokens: (16, 64),
            duration_s: 5.0,
            seed: 3,
        };
        let plain = simulate(&mut sys, &model, &wl);
        let inj = FaultInjector::new(
            FaultProfile {
                timeout_rate: 0.3,
                ..FaultProfile::disabled()
            },
            7,
        );
        let retry = RetryPolicy::serving_default();
        let (m, log) = simulate_with_faults(&mut sys, &model, &wl, &inj, &retry);
        assert!(
            m.retried_tokens > 0,
            "30% timeouts must force retries: {m:?}"
        );
        // Degraded tokens in the metrics must equal Degraded events in the
        // log, and each one came from max_retries+1 logged timeouts.
        assert_eq!(
            m.degraded_tokens,
            log.count_matching(|k| matches!(k, FaultKind::Degraded))
        );
        let timeouts = log.count_matching(|k| matches!(k, FaultKind::Timeout { .. }));
        assert!(timeouts >= m.degraded_tokens * (retry.max_retries as usize + 1));
        assert!(
            m.p50_token_ms >= plain.p50_token_ms,
            "deadline penalties cannot make tokens faster"
        );
        assert!(m.throughput_tps <= plain.throughput_tps);
        // Determinism: same seed, same timeline.
        let (m2, log2) = simulate_with_faults(&mut sys, &model, &wl, &inj, &retry);
        assert_eq!(m, m2);
        assert_eq!(log.to_text(), log2.to_text());
    }

    #[test]
    fn hard_faults_kill_requests() {
        use longsight_faults::FaultProfile;
        let model = ModelConfig::llama3_1b();
        let mut sys = LongSightSystem::new(LongSightConfig::paper_default(), model.clone());
        let wl = WorkloadConfig {
            arrivals_per_s: 4.0,
            context_tokens: (32_768, 65_536),
            output_tokens: (32, 128),
            duration_s: 5.0,
            seed: 5,
        };
        let inj = FaultInjector::new(
            FaultProfile {
                hard_fail_rate: 0.02,
                ..FaultProfile::disabled()
            },
            13,
        );
        let (m, _) =
            simulate_with_faults(&mut sys, &model, &wl, &inj, &RetryPolicy::serving_default());
        assert!(m.failed_requests > 0, "2% per-token hard faults: {m:?}");
        let plain = simulate(&mut sys, &model, &wl);
        assert!(m.completed < plain.completed + m.failed_requests + 1);
    }

    #[test]
    fn request_latency_includes_prefill() {
        let m = run(0.5, 9);
        // A 32K-prompt prefill alone is ~0.1+ ms on the roofline; with decode
        // of ≥16 tokens the p50 request latency must exceed several ms.
        assert!(
            m.p50_request_ms > 1.0,
            "suspiciously low request latency: {m:?}"
        );
    }
}
