//! Discrete-event serving simulation: Poisson request arrivals, continuous
//! batching of synchronized decode steps, per-request latency percentiles.
//!
//! The paper's serving claims (§9.1) are about *operating points*: how many
//! concurrent users a system sustains, where throughput plateaus, and what
//! happens to quality of service as load grows. This module turns the
//! per-step cost models into a closed-loop simulation producing those
//! curves: requests arrive over time, join the running batch (continuous
//! batching), decode their output tokens, and leave.
//!
//! Scheduling is delegated to `longsight-sched`. The default FIFO policy
//! reproduces the original serving loop op-for-op (bit-identical metrics);
//! [`simulate_scheduled`] exposes the SLO-aware policy, where admission is
//! a paged-memory decision over HBM window pages and DReX tail pages,
//! prefill is chunked and overlapped with decode, and best-effort requests
//! are evicted to DReX-resident state when higher classes need HBM.

use crate::attribution::{
    attribution_parts, SpecCharge, SpecSample, TokenAttribution, OVERLAP_HIDDEN, SPEC_MISS,
};
use crate::degrade::{resolve_token, DegradeStats, TokenOutcome};
use crate::prefill::prefill_cost;
use crate::report::{ServingSystem, SpecStep, StepReport};
use crate::session::{self, SessionOptions};
use longsight_cxl::CxlLink;
use longsight_drex::SpecSlotPool;
use longsight_faults::{
    domain, fleet_schedule, stream, unit_draw, FaultInjector, FaultLog, ReplicaEvent,
    ReplicaEventKind, ReplicaFaultProfile, RetryPolicy,
};
use longsight_gpu::GpuSpec;
use longsight_model::ModelConfig;
use longsight_obs::json::fmt_f64;
use longsight_obs::{ArgVal, Recorder, TrackId};
use longsight_sched::{
    BreakerConfig, BreakerState, CircuitBreaker, FleetFaultSummary, FleetReport, KvDeviceGeometry,
    Placement, PullRecord, RedispatchRecord, Router, RouterPolicy, SchedConfig, SchedEvent,
    SchedPolicy, SchedReport, SchedRequest, Scheduler, SessionSummary, ShedRecord, SloBurnSummary,
    SloClass, SloMix,
};
use longsight_tensor::SimRng;
use std::collections::HashMap;

/// XOR'd into the workload seed for the SLO-class stream, so class draws
/// never perturb the arrival-process stream (FIFO metrics stay bit-exact
/// for any mix).
const CLASS_SEED: u64 = 0x736c_6f63;

/// Offered-load description.
#[derive(Debug, Clone)]
pub struct WorkloadConfig {
    /// Mean request arrival rate (Poisson), requests per second.
    pub arrivals_per_s: f64,
    /// Uniform range of per-request context lengths (prompt tokens).
    pub context_tokens: (usize, usize),
    /// Uniform range of output (decode) lengths.
    pub output_tokens: (usize, usize),
    /// Simulated wall-clock duration, seconds.
    pub duration_s: f64,
    /// RNG seed.
    pub seed: u64,
}

impl WorkloadConfig {
    /// A steady long-context chat workload.
    pub fn long_context_chat() -> Self {
        Self {
            arrivals_per_s: 2.0,
            context_tokens: (65_536, 131_072),
            output_tokens: (64, 256),
            duration_s: 30.0,
            seed: 7,
        }
    }
}

/// Scheduler policy and paged-KV knobs for [`simulate_scheduled`].
#[derive(Debug, Clone)]
pub struct SchedOptions {
    /// Scheduling policy.
    pub policy: SchedPolicy,
    /// SLO-class mix of the offered load (classes drawn from a dedicated
    /// RNG stream, so the arrival process is identical across mixes).
    pub mix: SloMix,
    /// Tokens per KV page.
    pub page_tokens: usize,
    /// Prefill chunk size, prompt tokens (SLO-aware only).
    pub prefill_chunk_tokens: usize,
    /// Concurrent requests advancing prefill per step (SLO-aware only).
    /// Must be ≥ 1 — the CLI rejects `--prefill-slots 0` up front.
    pub prefill_slots: usize,
    /// Fraction of HBM pages the SLO-aware allocator may use.
    pub hbm_watermark: f64,
}

impl SchedOptions {
    /// The legacy serving behavior: FIFO admission, single-class load.
    pub fn fifo() -> Self {
        Self {
            policy: SchedPolicy::Fifo,
            mix: SloMix::all_interactive(),
            page_tokens: 1024,
            prefill_chunk_tokens: 8192,
            prefill_slots: 1,
            hbm_watermark: 0.9,
        }
    }

    /// SLO-aware scheduling over the given class mix.
    pub fn slo_aware(mix: SloMix) -> Self {
        Self {
            policy: SchedPolicy::SloAware,
            ..Self::fifo()
        }
        .with_mix(mix)
    }

    fn with_mix(mut self, mix: SloMix) -> Self {
        self.mix = mix;
        self
    }
}

/// Fleet-level fault-domain and overload-control knobs for
/// [`simulate_fleet_faulty`]. The [`FleetFaultOptions::disabled`] value
/// makes that entry point byte-identical to [`simulate_fleet`].
#[derive(Debug, Clone, PartialEq)]
pub struct FleetFaultOptions {
    /// Replica crash/recovery and DReX-brownout schedule parameters.
    pub profile: ReplicaFaultProfile,
    /// Seed of the replica fault streams (independent of the workload
    /// seed, so the offered load never shifts with the fault draw).
    pub fault_seed: u64,
    /// Health-aware routing: `Some` arms a per-replica circuit breaker
    /// and routes around open replicas; `None` is the naive baseline
    /// where the router stays blind to replica health.
    pub breaker: Option<BreakerConfig>,
    /// Admission control: `Some(n)` caps per-replica queue depth at `n`
    /// best-effort / `2n` batch / `4n` interactive requests and sheds
    /// arrivals no replica can take. `None` admits everything.
    pub shed_queue_cap: Option<usize>,
}

impl FleetFaultOptions {
    /// No replica faults, no breaker, no shedding: the fleet is immortal
    /// and the simulation is byte-identical to the pre-fault-domain path.
    pub fn disabled() -> Self {
        Self {
            profile: ReplicaFaultProfile::disabled(),
            fault_seed: 0,
            breaker: None,
            shed_queue_cap: None,
        }
    }

    /// Whether any fault-domain machinery is armed (crash/brownout
    /// schedule, breaker, or shedding). When false the fleet driver runs
    /// the exact legacy code path.
    pub fn is_active(&self) -> bool {
        self.profile.is_enabled() || self.breaker.is_some() || self.shed_queue_cap.is_some()
    }
}

impl Default for FleetFaultOptions {
    fn default() -> Self {
        Self::disabled()
    }
}

/// Per-class queue-depth cap derived from the single shed knob: the
/// shedding order is best-effort first (cap `n`), then batch (`2n`);
/// interactive keeps the deepest queue (`4n`), so it is only ever shed
/// when the whole fleet is past capacity for everyone.
fn class_queue_cap(base: usize, class: SloClass) -> usize {
    match class {
        SloClass::Interactive => base.saturating_mul(4),
        SloClass::Batch => base.saturating_mul(2),
        SloClass::BestEffort => base,
    }
}

/// Trace instant name of a breaker transition.
/// Routing eligibility for a breaker-guarded fleet. Normally each
/// replica's breaker state is used as-is, but when *every* breaker is
/// open the tripped-open ones (slow, not dead) are offered as half-open
/// last resorts: an overloaded-but-alive replica always beats shedding,
/// and interactive work is never dropped while a live replica remains.
/// Only when every open breaker is held open (every replica physically
/// down) does the fleet report no healthy target.
fn breaker_health(bs: &[CircuitBreaker]) -> Vec<BreakerState> {
    let mut health: Vec<BreakerState> = bs.iter().map(CircuitBreaker::state).collect();
    if health.iter().all(|&s| s == BreakerState::Open) {
        for (h, b) in health.iter_mut().zip(bs) {
            if !b.is_held_open() {
                *h = BreakerState::HalfOpen;
            }
        }
    }
    health
}

fn breaker_instant_name(state: BreakerState) -> &'static str {
    match state {
        BreakerState::Closed => "breaker.close",
        BreakerState::Open => "breaker.open",
        BreakerState::HalfOpen => "breaker.half_open",
    }
}

/// Numeric encoding of a breaker state for the `r{i}.breaker` telemetry
/// gauge: 0 = closed, 1 = half-open, 2 = open, so a sparkline of the
/// series rises when a replica trips and falls as probes close it.
fn breaker_level(state: BreakerState) -> f64 {
    match state {
        BreakerState::Closed => 0.0,
        BreakerState::HalfOpen => 1.0,
        BreakerState::Open => 2.0,
    }
}

/// Aggregate results of a serving run.
#[derive(Debug, Clone, PartialEq)]
pub struct ServeMetrics {
    /// Requests fully served.
    pub completed: usize,
    /// Requests rejected at arrival (no capacity at any point in the run).
    pub rejected: usize,
    /// Requests still in flight at the end.
    pub in_flight: usize,
    /// Generated tokens per second over the simulated window.
    pub throughput_tps: f64,
    /// Median per-token (decode step) latency, ms.
    pub p50_token_ms: f64,
    /// 99th-percentile per-token latency, ms.
    pub p99_token_ms: f64,
    /// Median end-to-end request latency (arrival → last token), ms.
    pub p50_request_ms: f64,
    /// 99th-percentile request latency, ms.
    pub p99_request_ms: f64,
    /// Mean batch size across decode steps.
    pub mean_batch: f64,
    /// Tokens whose offload needed at least one retry but completed
    /// (zero on fault-free runs).
    pub retried_tokens: usize,
    /// Tokens that exhausted the retry budget and were emitted from dense
    /// window-only attention (zero on fault-free runs).
    pub degraded_tokens: usize,
    /// Requests that died unrecoverably under injected hard faults
    /// (zero on fault-free runs).
    pub failed_requests: usize,
    /// Quality delta of degradation: the fraction of generated tokens that
    /// lost long-range top-k attention (their recall over the non-window
    /// region dropped to zero for that step).
    pub degraded_quality_delta: f64,
    /// Speculative lookahead chains that landed and hid their offload wait
    /// (zero with the lookahead pipeline off).
    pub spec_hits: usize,
    /// Speculative chains invalidated before use — a stale context draw or
    /// an injected fault voiding the in-flight slice (zero with lookahead
    /// off).
    pub spec_misses: usize,
    /// Speculative issues denied by slot-pool backpressure (zero with
    /// lookahead off).
    pub spec_denied: usize,
    /// SLO error-budget accounting from the burn-rate engine; `None`
    /// unless timeseries telemetry was enabled, so all pre-existing
    /// output stays byte-identical.
    pub slo_burn: Option<SloBurnSummary>,
}

impl ServeMetrics {
    /// The run summary as printed by `longsight loadtest` (four lines:
    /// completion counts, throughput, token and request latency).
    pub fn to_text(&self) -> String {
        let mut out = format!(
            "  completed {} | rejected {} | in flight {}\n  throughput: {:.1} tok/s | mean batch {:.1}\n  token latency  p50 {:.2} ms  p99 {:.2} ms\n  request latency p50 {:.1} ms  p99 {:.1} ms\n",
            self.completed,
            self.rejected,
            self.in_flight,
            self.throughput_tps,
            self.mean_batch,
            self.p50_token_ms,
            self.p99_token_ms,
            self.p50_request_ms,
            self.p99_request_ms,
        );
        if let Some(b) = &self.slo_burn {
            out.push_str(&b.to_text());
        }
        out
    }

    /// Every field as a flat JSON object (stable key order). The
    /// speculation counters appear only when any is non-zero, so
    /// lookahead-off output is byte-identical to builds that predate them.
    pub fn to_json(&self) -> String {
        let spec = if self.spec_hits + self.spec_misses + self.spec_denied > 0 {
            format!(
                ",\"spec_hits\":{},\"spec_misses\":{},\"spec_denied\":{}",
                self.spec_hits, self.spec_misses, self.spec_denied
            )
        } else {
            String::new()
        };
        // Like the speculation counters: present only for telemetry-enabled
        // runs, so telemetry-off JSON is byte-identical to older builds.
        let burn = match &self.slo_burn {
            None => String::new(),
            Some(b) => format!(
                ",\"slo_burn\":{{\"slo_ms\":{},\"budget\":{},\"completions\":{},\"misses\":{},\"consumed\":{},\"alert_windows\":{},\"first_alert_ms\":{}}}",
                fmt_f64(b.slo_ms),
                fmt_f64(b.budget),
                b.completions,
                b.misses,
                fmt_f64(b.consumed),
                b.alert_windows,
                fmt_f64(b.first_alert_ms),
            ),
        };
        format!(
            "{{\"completed\":{},\"rejected\":{},\"in_flight\":{},\"throughput_tps\":{},\"p50_token_ms\":{},\"p99_token_ms\":{},\"p50_request_ms\":{},\"p99_request_ms\":{},\"mean_batch\":{},\"retried_tokens\":{},\"degraded_tokens\":{},\"failed_requests\":{},\"degraded_quality_delta\":{}{spec}{burn}}}",
            self.completed,
            self.rejected,
            self.in_flight,
            fmt_f64(self.throughput_tps),
            fmt_f64(self.p50_token_ms),
            fmt_f64(self.p99_token_ms),
            fmt_f64(self.p50_request_ms),
            fmt_f64(self.p99_request_ms),
            fmt_f64(self.mean_batch),
            self.retried_tokens,
            self.degraded_tokens,
            self.failed_requests,
            fmt_f64(self.degraded_quality_delta),
        )
    }

    /// Parses the output of [`ServeMetrics::to_json`] back into a value.
    ///
    /// Round-trips bit-exactly for finite fields; non-finite floats
    /// serialize as `null` and parse back as `0.0`.
    ///
    /// # Errors
    ///
    /// Returns a message when the text is not valid JSON or a field is
    /// missing or of the wrong type.
    pub fn from_json(text: &str) -> Result<Self, String> {
        use longsight_obs::json::{parse, Value};
        let v = parse(text)?;
        let get_usize = |key: &str| -> Result<usize, String> {
            let f = v
                .get(key)
                .and_then(Value::as_f64)
                .ok_or_else(|| format!("missing or non-numeric field '{key}'"))?;
            Ok(f as usize)
        };
        let get_f64 = |key: &str| -> Result<f64, String> {
            let field = v.get(key).ok_or_else(|| format!("missing field '{key}'"))?;
            match field {
                Value::Null => Ok(0.0), // fmt_f64 writes non-finite as null
                other => other
                    .as_f64()
                    .ok_or_else(|| format!("non-numeric field '{key}'")),
            }
        };
        // Optional: absent in lookahead-off output (and pre-lookahead JSON).
        let get_spec = |key: &str| -> Result<usize, String> {
            match v.get(key) {
                None => Ok(0),
                Some(f) => f
                    .as_f64()
                    .map(|x| x as usize)
                    .ok_or_else(|| format!("non-numeric field '{key}'")),
            }
        };
        Ok(Self {
            completed: get_usize("completed")?,
            rejected: get_usize("rejected")?,
            in_flight: get_usize("in_flight")?,
            throughput_tps: get_f64("throughput_tps")?,
            p50_token_ms: get_f64("p50_token_ms")?,
            p99_token_ms: get_f64("p99_token_ms")?,
            p50_request_ms: get_f64("p50_request_ms")?,
            p99_request_ms: get_f64("p99_request_ms")?,
            mean_batch: get_f64("mean_batch")?,
            retried_tokens: get_usize("retried_tokens")?,
            degraded_tokens: get_usize("degraded_tokens")?,
            failed_requests: get_usize("failed_requests")?,
            degraded_quality_delta: get_f64("degraded_quality_delta")?,
            spec_hits: get_spec("spec_hits")?,
            spec_misses: get_spec("spec_misses")?,
            spec_denied: get_spec("spec_denied")?,
            slo_burn: match v.get("slo_burn") {
                None => None,
                Some(b) => {
                    let bf = |key: &str| -> Result<f64, String> {
                        match b.get(key) {
                            Some(Value::Null) => Ok(0.0),
                            Some(x) => x
                                .as_f64()
                                .ok_or_else(|| format!("non-numeric slo_burn field '{key}'")),
                            None => Err(format!("missing slo_burn field '{key}'")),
                        }
                    };
                    Some(SloBurnSummary {
                        slo_ms: bf("slo_ms")?,
                        budget: bf("budget")?,
                        completions: bf("completions")? as u64,
                        misses: bf("misses")? as u64,
                        consumed: bf("consumed")?,
                        alert_windows: bf("alert_windows")? as u64,
                        first_alert_ms: bf("first_alert_ms")?,
                    })
                }
            },
        })
    }
}

fn percentile(sorted: &[f64], p: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    let idx = ((sorted.len() - 1) as f64 * p).round() as usize;
    sorted[idx]
}

#[derive(Debug, Clone)]
pub(crate) struct Arrival {
    pub(crate) id: usize,
    pub(crate) arrival_ns: f64,
    pub(crate) context: usize,
    pub(crate) output: usize,
}

/// Pre-generates the run's arrival process, class draws, and prefill
/// costs. Both the single-replica loop and the fleet driver draw from this
/// one function, so the offered load is byte-identical regardless of how
/// many replicas serve it: arrivals from the workload seed, classes from a
/// dedicated stream (`seed ^ CLASS_SEED`), prefill costs on the
/// deterministic parallel map. Vectors come back reversed — pop from the
/// back in time order.
fn gen_arrivals(
    model: &ModelConfig,
    workload: &WorkloadConfig,
    mix: &SloMix,
) -> (Vec<Arrival>, Vec<SloClass>, Vec<f64>) {
    let mut rng = SimRng::seed_from(workload.seed);
    let gpu = GpuSpec::h100_sxm();
    let link = CxlLink::pcie5_x16();
    let mut arrivals: Vec<Arrival> = Vec::new();
    let mut t = 0.0f64;
    let horizon_ns = workload.duration_s * 1e9;
    loop {
        let gap = -((1.0 - rng.uniform()).ln()) / workload.arrivals_per_s * 1e9;
        t += gap;
        if t >= horizon_ns {
            break;
        }
        let (c0, c1) = workload.context_tokens;
        let (o0, o1) = workload.output_tokens;
        let context = c0 + rng.below((c1 - c0).max(1));
        let output = o0 + rng.below((o1 - o0).max(1));
        arrivals.push(Arrival {
            id: arrivals.len(),
            arrival_ns: t,
            context,
            output,
        });
    }
    // SLO classes draw from their own stream: the arrival process above is
    // identical for every mix (and for the legacy single-class runs).
    let mut class_rng = SimRng::seed_from(workload.seed ^ CLASS_SEED);
    let mut classes: Vec<SloClass> = arrivals
        .iter()
        .map(|_| mix.classify(class_rng.uniform()))
        .collect();
    // Each request's prefill cost depends only on its own context length, so
    // the per-user costs compute up front on the deterministic parallel map
    // (bit-identical to calling `prefill_cost` at admission time).
    let mut prefill_ns: Vec<f64> = longsight_exec::deterministic_map(&arrivals, |_, a| {
        prefill_cost(&gpu, &link, model, a.context, 1024).total_ns
    });
    arrivals.reverse(); // pop from the back in time order
    prefill_ns.reverse();
    classes.reverse();
    (arrivals, classes, prefill_ns)
}

/// The step-cost cache shared by feasibility probes and step execution,
/// keyed by `(batch, context bucket)`. The first (and only) evaluation of
/// each shape also records the system's expanded step timeline, anchored
/// at the simulated time it was first needed.
fn cached_step_cost(
    cache: &mut Vec<((usize, usize), Option<StepReport>)>,
    sys: &mut dyn ServingSystem,
    users: usize,
    ctx: usize,
    rec: &mut Recorder,
    at_ns: f64,
) -> Option<StepReport> {
    let bucket = ctx.next_power_of_two();
    if let Some(&(_, v)) = cache.iter().find(|&&(k, _)| k == (users, bucket)) {
        return v;
    }
    let v = sys.evaluate(users, bucket).ok();
    if v.is_some() {
        sys.record_step_detail(users, bucket, rec, at_ns);
    }
    cache.push(((users, bucket), v));
    v
}

/// Runs the closed-loop simulation of `system` under `workload`.
///
/// Admission: an arriving request joins the batch if the system can evaluate
/// the grown batch at the largest member context; otherwise it waits in an
/// unbounded queue (and counts toward request latency). Steps are
/// synchronized across the batch (all users advance one token per step), and
/// contexts are frozen at admission — decode extends them by at most a few
/// hundred tokens, negligible against 64K+ prompts.
pub fn simulate(
    system: &mut dyn ServingSystem,
    model: &ModelConfig,
    workload: &WorkloadConfig,
) -> ServeMetrics {
    sched_impl(
        system,
        model,
        workload,
        &SchedOptions::fifo(),
        None,
        &mut Recorder::disabled(),
        None,
    )
    .0
}

/// [`simulate`] under token-level fault injection.
///
/// Each generated token resolves through the retry/deadline degradation
/// policy ([`crate::degrade::resolve_token`]): sampled offload timeouts cost
/// the full deadline plus backoff, exhausted retries degrade the token to
/// dense window-only attention, and hard faults kill the request. The
/// synchronized batch is paced by its worst token, so a step's latency grows
/// by the largest penalty in the batch.
///
/// Returns the metrics together with the deterministic fault event log —
/// every decision derives from `(inj.seed, request id, token index,
/// attempt)`, so two runs with the same seed produce byte-identical logs and
/// identical metrics at any thread count. With a disabled injector this is
/// exactly [`simulate`] plus an empty log.
pub fn simulate_with_faults(
    system: &mut dyn ServingSystem,
    model: &ModelConfig,
    workload: &WorkloadConfig,
    inj: &FaultInjector,
    retry: &RetryPolicy,
) -> (ServeMetrics, FaultLog) {
    let (m, _, log) = sched_impl(
        system,
        model,
        workload,
        &SchedOptions::fifo(),
        Some((inj, retry)),
        &mut Recorder::disabled(),
        None,
    );
    (m, log)
}

/// [`simulate`] / [`simulate_with_faults`] with observability attached.
///
/// Every decode step emits a `decode.step` span on the `serving` track
/// (with a nested `decode.retry_wait` child when fault penalties stretch
/// the step), the first evaluation of each distinct `(batch, context)`
/// shape records the system's expanded internal timeline at the simulated
/// time it was first needed, every fault event lands on the `faults` track
/// as an instant (1:1 with the returned [`FaultLog`]), scheduling decisions
/// land on the `sched` track as instants, and the run's aggregate
/// counters/latency histograms populate `rec.metrics`. When `attr` is
/// given, each generated token's latency is decomposed into the eight
/// attribution components.
///
/// The simulated timeline is bit-identical to the unobserved entry points:
/// recording only reads simulation state.
pub fn simulate_observed(
    system: &mut dyn ServingSystem,
    model: &ModelConfig,
    workload: &WorkloadConfig,
    faults: Option<(&FaultInjector, &RetryPolicy)>,
    rec: &mut Recorder,
    attr: Option<&mut TokenAttribution>,
) -> (ServeMetrics, FaultLog) {
    let (m, _, log) = sched_impl(
        system,
        model,
        workload,
        &SchedOptions::fifo(),
        faults,
        rec,
        attr,
    );
    (m, log)
}

/// The full serving simulation under an explicit scheduler configuration,
/// returning the per-class [`SchedReport`] alongside the aggregate metrics.
///
/// With `SchedOptions::fifo()` this is exactly [`simulate_observed`]
/// (bit-identical metrics). With an SLO-aware policy, admission allocates
/// HBM window pages and DReX tail pages against the system's
/// [`ServingSystem::kv_geometry`], prefill is chunked (overlapping the
/// memory-bound decode steps), and best-effort requests are preempted to
/// DReX-resident state when higher classes need HBM pages, paying the
/// cheaper of restore-over-CXL or recompute-on-GPU at resume.
pub fn simulate_scheduled(
    system: &mut dyn ServingSystem,
    model: &ModelConfig,
    workload: &WorkloadConfig,
    opts: &SchedOptions,
    faults: Option<(&FaultInjector, &RetryPolicy)>,
    rec: &mut Recorder,
    attr: Option<&mut TokenAttribution>,
) -> (ServeMetrics, SchedReport, FaultLog) {
    sched_impl(system, model, workload, opts, faults, rec, attr)
}

/// Translates scheduler decision events into `sched.*` trace instants.
fn flush_sched_events(sched: &mut Scheduler, rec: &mut Recorder, track: TrackId, at_ns: f64) {
    if !rec.is_enabled() {
        return;
    }
    for ev in sched.take_events() {
        match ev {
            SchedEvent::Admitted { id, class } => rec.instant_with(
                track,
                "sched.admit",
                at_ns,
                &[
                    ("id", ArgVal::U(id as u64)),
                    ("class", ArgVal::S(class.name())),
                ],
            ),
            SchedEvent::Queued { id, class } => rec.instant_with(
                track,
                "sched.queue",
                at_ns,
                &[
                    ("id", ArgVal::U(id as u64)),
                    ("class", ArgVal::S(class.name())),
                ],
            ),
            SchedEvent::Rejected { id, class } => rec.instant_with(
                track,
                "sched.reject",
                at_ns,
                &[
                    ("id", ArgVal::U(id as u64)),
                    ("class", ArgVal::S(class.name())),
                ],
            ),
            SchedEvent::Preempted {
                id,
                class,
                hbm_pages,
            } => rec.instant_with(
                track,
                "sched.preempt",
                at_ns,
                &[
                    ("id", ArgVal::U(id as u64)),
                    ("class", ArgVal::S(class.name())),
                    ("hbm_pages", ArgVal::U(hbm_pages as u64)),
                ],
            ),
            SchedEvent::Resumed {
                id,
                class,
                cost_ns,
                restored,
            } => rec.instant_with(
                track,
                "sched.resume",
                at_ns,
                &[
                    ("id", ArgVal::U(id as u64)),
                    ("class", ArgVal::S(class.name())),
                    ("cost_ns", ArgVal::F(cost_ns)),
                    ("restored", ArgVal::U(restored as u64)),
                ],
            ),
            SchedEvent::Degraded { id, drex_pages } => rec.instant_with(
                track,
                "sched.degrade",
                at_ns,
                &[
                    ("id", ArgVal::U(id as u64)),
                    ("drex_pages", ArgVal::U(drex_pages as u64)),
                ],
            ),
            SchedEvent::Completed {
                id,
                class,
                latency_ms,
            } => rec.instant_with(
                track,
                "sched.complete",
                at_ns,
                &[
                    ("id", ArgVal::U(id as u64)),
                    ("class", ArgVal::S(class.name())),
                    ("latency_ms", ArgVal::F(latency_ms)),
                ],
            ),
            SchedEvent::Failed { id, class } => rec.instant_with(
                track,
                "sched.fail",
                at_ns,
                &[
                    ("id", ArgVal::U(id as u64)),
                    ("class", ArgVal::S(class.name())),
                ],
            ),
        }
    }
}

/// The paged-KV surface: how this system's devices map contexts onto HBM
/// window pages and DReX tail pages. Systems without page accounting get
/// an unbounded ledger (admission degenerates to step feasibility).
fn geometry_for(system: &dyn ServingSystem, opts: &SchedOptions) -> KvDeviceGeometry {
    system
        .kv_geometry(opts.page_tokens)
        .unwrap_or(KvDeviceGeometry {
            page_tokens: opts.page_tokens.max(1),
            window_tokens: usize::MAX,
            hbm_capacity_pages: usize::MAX / 4,
            drex_capacity_pages: usize::MAX / 4,
            restore_ns_per_page: 0.0,
            recompute_ns_per_token: 0.0,
        })
}

fn sched_config_for(geometry: &KvDeviceGeometry, opts: &SchedOptions) -> SchedConfig {
    let page_cfg = geometry.page_config(opts.hbm_watermark);
    let mut sched_cfg = match opts.policy {
        SchedPolicy::Fifo => SchedConfig::fifo(page_cfg, geometry.window_tokens),
        SchedPolicy::SloAware => {
            SchedConfig::slo_aware(page_cfg, geometry.window_tokens, opts.prefill_chunk_tokens)
        }
    };
    // Validated at the CLI boundary (`--prefill-slots 0` is rejected with
    // an error, not clamped); `Scheduler::new` debug-asserts the contract.
    sched_cfg.prefill_slots = opts.prefill_slots;
    sched_cfg
}

/// Resolves one speculated decode step against the slot pool.
///
/// Each decoding member `(request id, token index)` tries to occupy one
/// slot for the chain issued at the previous step. A denied issue (pool
/// exhausted) leaves the member on the synchronous path. An issued member
/// then draws its miss on the dedicated `domain::SPEC` stream — stale
/// speculation (context grew past the speculated region or an
/// eviction/restore invalidated pages, modeled by `miss_rate`) or, under
/// fault injection, an in-flight void (the slice timeout/bit-flip classes
/// hitting the speculative chain). Every decision is a pure function of
/// `(seed, id, token)`, so the schedule is bit-identical at any thread
/// count and across reruns. Emits `spec.issue` / `spec.hit` / `spec.miss`
/// instants and returns the member counts `(hits, misses, denied)`.
fn resolve_spec_step(
    pool: &mut SpecSlotPool,
    s: &SpecStep,
    members: impl Iterator<Item = (u64, u64)>,
    inj: Option<&FaultInjector>,
    rec: &mut Recorder,
    track: TrackId,
    now_ns: f64,
) -> (usize, usize, usize) {
    pool.release_until(now_ns);
    let (mut hits, mut misses, mut denied) = (0usize, 0usize, 0usize);
    for (id, tok) in members {
        if !pool.try_issue(now_ns, s.chain_ns) {
            denied += 1;
            continue;
        }
        if rec.is_enabled() {
            rec.instant_with(
                track,
                "spec.issue",
                now_ns,
                &[("id", ArgVal::U(id)), ("tok", ArgVal::U(tok))],
            );
        }
        let stale = unit_draw(s.seed, stream(domain::SPEC, id, tok, 0), 0) < s.miss_rate;
        // An injected fault voids the in-flight slice: the same classes
        // that would corrupt a synchronous offload (hard slice timeouts,
        // PFU bit-flips) kill the speculative copy. The draw lives on its
        // own stream coordinate so the retry ladder's sequence
        // (`domain::TOKEN`) is untouched — a voided slot charges a miss
        // and is never double-retried.
        let voided = inj.is_some_and(|inj| {
            let void_rate = inj.profile.timeout_rate + inj.profile.bitflip_rate;
            void_rate > 0.0 && inj.uniform(stream(domain::SPEC, id, tok, 1), 0) < void_rate
        });
        if stale || voided {
            misses += 1;
            if rec.is_enabled() {
                rec.instant_with(
                    track,
                    "spec.miss",
                    now_ns,
                    &[
                        ("id", ArgVal::U(id)),
                        ("tok", ArgVal::U(tok)),
                        ("void", ArgVal::U(u64::from(voided))),
                    ],
                );
            }
        } else {
            hits += 1;
            if rec.is_enabled() {
                rec.instant_with(
                    track,
                    "spec.hit",
                    now_ns,
                    &[("id", ArgVal::U(id)), ("tok", ArgVal::U(tok))],
                );
            }
        }
    }
    (hits, misses, denied)
}

/// How a resolved speculation paces the synchronized step: any miss runs
/// the synchronous path plus the deterministic re-filter penalty, a
/// denial-only step runs the synchronous path, an all-hit step keeps the
/// hit-path timing.
fn spec_pacing(s: &SpecStep, hit_step_ns: f64, misses: usize, denied: usize) -> (f64, SpecCharge) {
    if misses > 0 {
        (s.serial_step_ns + s.refilter_penalty_ns, SpecCharge::Miss)
    } else if denied > 0 {
        (s.serial_step_ns, SpecCharge::Denied)
    } else {
        (hit_step_ns, SpecCharge::Hit)
    }
}

fn sched_impl(
    system: &mut dyn ServingSystem,
    model: &ModelConfig,
    workload: &WorkloadConfig,
    opts: &SchedOptions,
    faults: Option<(&FaultInjector, &RetryPolicy)>,
    rec: &mut Recorder,
    mut attr: Option<&mut TokenAttribution>,
) -> (ServeMetrics, SchedReport, FaultLog) {
    let faults = faults.filter(|(inj, _)| inj.is_enabled());
    let mut fault_log = FaultLog::new();
    let mut degrade = DegradeStats::default();
    let horizon_ns = workload.duration_s * 1e9;
    let (mut arrivals, mut classes, mut prefill_ns) = gen_arrivals(model, workload, &opts.mix);
    let total_arrived = arrivals.len();

    let geometry = geometry_for(system, opts);
    let mut sched = Scheduler::new(sched_config_for(&geometry, opts));
    sched.set_event_recording(rec.is_enabled());

    let mut now = 0.0f64;
    let mut step_times: Vec<(f64, usize)> = Vec::new();
    let mut request_latencies: Vec<f64> = Vec::new();
    let mut generated_tokens = 0usize;
    let serving_track = rec.track("serving");
    let faults_track = rec.track("faults");
    let sched_track = rec.track("sched");
    let mut fault_cursor = 0usize;
    // Lazily sized from the first speculated report, so the pool bound
    // comes from the system's own lookahead config; stays `None` (and the
    // `spec` track uncreated) for every lookahead-off run.
    let mut spec_pool: Option<SpecSlotPool> = None;
    let (mut spec_hits, mut spec_misses, mut spec_denied) = (0usize, 0usize, 0usize);
    let mut cache: Vec<((usize, usize), Option<StepReport>)> = Vec::new();
    let mut step_cost = |sys: &mut dyn ServingSystem,
                         users: usize,
                         ctx: usize,
                         rec: &mut Recorder,
                         at_ns: f64|
     -> Option<StepReport> {
        cached_step_cost(&mut cache, sys, users, ctx, rec, at_ns)
    };

    let ts_on = rec.timeseries.is_enabled();
    let mut admitted_ts: Vec<f64> = Vec::new();
    loop {
        // Admission and queue drain are the scheduler's decisions; the step
        // model only answers feasibility. (FIFO issues the exact legacy
        // sequence of feasibility probes, so the step-detail anchors in the
        // trace are unchanged.)
        {
            let mut feas = |users: usize, ctx: usize| -> bool {
                step_cost(system, users, ctx, rec, now).is_some()
            };
            while arrivals.last().is_some_and(|a| a.arrival_ns <= now) {
                let a = arrivals.pop().expect("checked");
                let pf_ns = prefill_ns.pop().expect("paired with arrivals");
                let class = classes.pop().expect("paired with arrivals");
                // Arrival timestamps are staged outside the closure scope
                // (which holds `rec` via `feas`) and recorded just below.
                if ts_on {
                    admitted_ts.push(a.arrival_ns);
                }
                let req = SchedRequest {
                    id: a.id,
                    class,
                    arrival_ns: a.arrival_ns,
                    context: a.context,
                    output: a.output,
                    prefill_ns: pf_ns,
                    restore_ns: geometry.restore_ns(a.context),
                    recompute_ns: geometry.recompute_ns(a.context),
                    pull_ns: f64::INFINITY,
                    prefix_hash: None,
                };
                sched.on_arrival(req, &mut feas);
            }
            sched.drain_queue(&mut feas);
        }
        flush_sched_events(&mut sched, rec, sched_track, now);
        if ts_on {
            for &t in &admitted_ts {
                rec.timeseries.rate_add("arrivals", t, 1.0);
            }
            admitted_ts.clear();
            sample_sched_timeseries(rec, "", now, &sched);
        }

        if sched.active_is_empty() {
            match arrivals.last() {
                Some(a) => {
                    now = a.arrival_ns;
                    continue;
                }
                None => break,
            }
        }

        // One synchronized step: the decoding members advance one token;
        // chunked prefill shares the step (SLO-aware only).
        let plan = sched.plan_step();
        let report = if plan.decode_users > 0 {
            Some(
                step_cost(system, plan.decode_users, plan.max_decode_ctx, rec, now)
                    .expect("a decode subset of an admitted batch must evaluate"),
            )
        } else {
            None
        };
        let mut base_dt = report.map_or(0.0, |r| r.step_ns);
        // With the lookahead pipeline on, the chain for this step was
        // issued speculatively at the previous one: resolve every decoding
        // member against the slot pool before the step's duration is
        // fixed. Lookahead-off reports carry no `spec`, so this block (and
        // the `spec` track) never exists on that path.
        let mut spec_charge: Option<SpecCharge> = None;
        let mut spec_step_counts = (0usize, 0usize, 0usize);
        let mut spec_penalty_ns = 0.0f64;
        if let Some(s) = report.and_then(|r| r.spec) {
            let pool = spec_pool.get_or_insert_with(|| SpecSlotPool::new(s.slots));
            let spec_track = rec.track("spec");
            let (hits, misses, denied) = resolve_spec_step(
                pool,
                &s,
                sched
                    .active()
                    .iter()
                    .filter(|r| r.in_decode)
                    .map(|r| (r.req.id as u64, r.generated as u64)),
                faults.map(|(inj, _)| inj),
                rec,
                spec_track,
                now,
            );
            let (paced, charge) = spec_pacing(&s, base_dt, misses, denied);
            base_dt = paced;
            if charge == SpecCharge::Miss {
                spec_penalty_ns = s.refilter_penalty_ns;
            }
            spec_charge = Some(charge);
            spec_step_counts = (hits, misses, denied);
            spec_hits += hits;
            spec_misses += misses;
            spec_denied += denied;
        }
        // Chunked prefill hides inside the memory-bound decode step; only a
        // pure-prefill step pays chunk time alone. FIFO plans no chunks, so
        // `work_dt == base_dt` exactly.
        let work_dt = base_dt.max(plan.prefill_ns);
        let mut dt = work_dt;
        let step_start = now;
        let mut batch_died = false;
        if let Some((inj, retry)) = faults {
            // Resolve every decoding member's token through the degradation
            // policy. The batch is synchronized, so the worst member's
            // retry/backoff penalty paces the whole step; hard-failed
            // requests leave the batch without emitting this token.
            let mut max_penalty = 0.0f64;
            let mut dead: Vec<usize> = Vec::new();
            let mut degraded_ids: Vec<usize> = Vec::new();
            for r in sched.active() {
                if !r.in_decode {
                    continue;
                }
                let (outcome, penalty) = resolve_token(
                    inj,
                    retry,
                    r.req.id as u64,
                    r.generated as u64,
                    &mut fault_log,
                );
                degrade.record(outcome);
                match outcome {
                    TokenOutcome::Failed => dead.push(r.req.id),
                    TokenOutcome::Degraded => {
                        degraded_ids.push(r.req.id);
                        max_penalty = max_penalty.max(penalty);
                    }
                    TokenOutcome::Completed { .. } => max_penalty = max_penalty.max(penalty),
                }
            }
            // Replay this step's fault events onto the trace (1:1 with the
            // log) at the step's start time.
            fault_cursor += fault_log.record_tail_into(fault_cursor, rec, faults_track, step_start);
            sched.remove_failed(&dead);
            // A degraded request lost its long-range path: its DReX tail
            // pages come back to the pool.
            for id in degraded_ids {
                sched.on_degraded(id);
            }
            dt += max_penalty;
            batch_died = sched.active_is_empty();
        }
        if rec.is_enabled() {
            if plan.decode_users > 0 {
                let span = rec.open_with(
                    serving_track,
                    "decode.step",
                    step_start,
                    &[
                        ("users", ArgVal::U(plan.users as u64)),
                        ("ctx", ArgVal::U(plan.max_decode_ctx as u64)),
                    ],
                );
                if dt > work_dt {
                    // The worst token's deadline overrun paces the batch.
                    rec.leaf_with(
                        serving_track,
                        "decode.retry_wait",
                        step_start + work_dt,
                        step_start + dt,
                        &[("penalty_ns", ArgVal::F(dt - work_dt))],
                    );
                }
                rec.close(span, step_start + dt);
            } else {
                rec.leaf_with(
                    serving_track,
                    "prefill.step",
                    step_start,
                    step_start + dt,
                    &[
                        ("users", ArgVal::U(plan.prefill_users as u64)),
                        ("prefill_ns", ArgVal::F(plan.prefill_ns)),
                    ],
                );
            }
        }
        now += dt;
        if batch_died {
            flush_sched_events(&mut sched, rec, sched_track, now);
            continue;
        }
        if now > 4.0 * horizon_ns {
            break; // overload guard: stop accounting far past the window
        }
        let decoding = sched.decoding_count();
        if decoding > 0 {
            step_times.push((dt, decoding));
            if let (Some(a), Some(r)) = (attr.as_deref_mut(), report.as_ref()) {
                let parts = attribution_parts(r, dt, spec_charge);
                a.record_step(parts, dt, decoding.min(64));
                if let (Some(charge), Some(s)) = (spec_charge, r.spec) {
                    let (h, m, d) = spec_step_counts;
                    a.record_spec_step(
                        SpecSample {
                            charge,
                            chain_ns: s.chain_ns,
                            hit_visible_ns: s.hit_visible_ns,
                            serial_visible_ns: s.serial_visible_ns,
                            spec_miss_ns: parts[SPEC_MISS],
                            overlap_hidden_ns: parts[OVERLAP_HIDDEN],
                            penalty_ns: spec_penalty_ns,
                        },
                        h,
                        m,
                        d,
                    );
                }
            }
            generated_tokens += decoding;
        }
        for c in sched.advance_step(dt, now) {
            request_latencies.push(c.latency_ms);
            if ts_on {
                rec.timeseries
                    .observe_ms("lat.request_ms", now, c.latency_ms);
                if c.class == SloClass::Interactive {
                    rec.timeseries.slo_sample(now, c.latency_ms);
                }
            }
        }
        flush_sched_events(&mut sched, rec, sched_track, now);
        if ts_on {
            if decoding > 0 {
                rec.timeseries.rate_add("tokens", now, decoding as f64);
            }
            sample_sched_timeseries(rec, "", now, &sched);
        }
    }

    let mut token_lat: Vec<f64> = Vec::new();
    for &(dt, users) in &step_times {
        for _ in 0..users.min(64) {
            token_lat.push(dt / 1e6);
        }
    }
    token_lat.sort_by(f64::total_cmp);
    request_latencies.sort_by(f64::total_cmp);

    let span_s = (now.max(1.0)) / 1e9;
    let slo_burn = finalize_slo_burn(rec);
    let metrics = ServeMetrics {
        completed: request_latencies.len(),
        rejected: sched.rejected(),
        in_flight: total_arrived
            - request_latencies.len()
            - sched.rejected()
            - sched.waiting_len()
            - degrade.failed_requests,
        throughput_tps: generated_tokens as f64 / span_s,
        p50_token_ms: percentile(&token_lat, 0.5),
        p99_token_ms: percentile(&token_lat, 0.99),
        p50_request_ms: percentile(&request_latencies, 0.5),
        p99_request_ms: percentile(&request_latencies, 0.99),
        mean_batch: if step_times.is_empty() {
            0.0
        } else {
            step_times.iter().map(|&(_, u)| u as f64).sum::<f64>() / step_times.len() as f64
        },
        retried_tokens: degrade.retried_tokens,
        degraded_tokens: degrade.degraded_tokens,
        failed_requests: degrade.failed_requests,
        degraded_quality_delta: if generated_tokens == 0 {
            0.0
        } else {
            degrade.degraded_tokens as f64 / generated_tokens as f64
        },
        spec_hits,
        spec_misses,
        spec_denied,
        slo_burn,
    };
    let sched_report = sched.finalize();
    if rec.is_enabled() {
        for &t in &token_lat {
            rec.observe("serving.token_latency_ms", t);
        }
        for &r in &request_latencies {
            rec.observe("serving.request_latency_ms", r);
        }
        rec.counter_add("serving.completed", metrics.completed as u64);
        rec.counter_add("serving.rejected", metrics.rejected as u64);
        rec.counter_add("serving.generated_tokens", generated_tokens as u64);
        rec.counter_add("serving.retried_tokens", metrics.retried_tokens as u64);
        rec.counter_add("serving.degraded_tokens", metrics.degraded_tokens as u64);
        rec.counter_add("serving.failed_requests", metrics.failed_requests as u64);
        rec.counter_add("serving.fault_events", fault_log.len() as u64);
        // Speculation counters exist only when a slot pool did: metrics
        // exports of lookahead-off runs keep their exact key set.
        if let Some(pool) = &spec_pool {
            rec.counter_add("serving.spec_hits", metrics.spec_hits as u64);
            rec.counter_add("serving.spec_misses", metrics.spec_misses as u64);
            rec.counter_add("serving.spec_denied", metrics.spec_denied as u64);
            rec.gauge_set("serving.spec_peak_slots", pool.peak_occupancy() as f64);
        }
        rec.gauge_set("serving.throughput_tps", metrics.throughput_tps);
        rec.gauge_set("serving.mean_batch", metrics.mean_batch);
        rec.gauge_set("serving.p50_token_ms", metrics.p50_token_ms);
        rec.gauge_set("serving.p99_token_ms", metrics.p99_token_ms);
        rec.counter_add("sched.preemptions", sched_report.preemptions as u64);
        rec.counter_add("sched.resumes", sched_report.resumes as u64);
        rec.counter_add("sched.prefill_chunks", sched_report.prefill_chunks as u64);
        rec.gauge_set("sched.peak_hbm_pages", sched_report.pages.peak_hbm as f64);
        rec.gauge_set("sched.peak_drex_pages", sched_report.pages.peak_drex as f64);
    }
    (metrics, sched_report, fault_log)
}

/// Records one telemetry sampling point for a scheduler: queue depth per
/// SLO class, batch size, and page occupancy in both tiers. `prefix` is
/// empty on the single-replica path and `r{i}.` inside fleets; series
/// intern themselves on first touch, so the per-sample cost is a window
/// index plus a hash lookup.
fn sample_sched_timeseries(rec: &mut Recorder, prefix: &str, now_ns: f64, sched: &Scheduler) {
    if !rec.timeseries.is_enabled() {
        return;
    }
    let q = sched.queue_depths();
    let load = sched.load();
    let ts = &mut rec.timeseries;
    ts.gauge(&format!("{prefix}queue.interactive"), now_ns, q[0] as f64);
    ts.gauge(&format!("{prefix}queue.batch"), now_ns, q[1] as f64);
    ts.gauge(&format!("{prefix}queue.best_effort"), now_ns, q[2] as f64);
    ts.gauge(&format!("{prefix}active"), now_ns, load.active as f64);
    ts.gauge(&format!("{prefix}hbm_pages"), now_ns, load.hbm_used as f64);
    ts.gauge(
        &format!("{prefix}drex_pages"),
        now_ns,
        load.drex_used as f64,
    );
    // Prefix-cache gauges exist only when the cache is armed (session
    // runs), so every sessionless series list is byte-identical.
    if sched.pages().prefix_capacity() > 0 {
        let stats = sched.pages().stats();
        let lookups = stats.prefix_hits + stats.prefix_misses;
        if lookups > 0 {
            ts.gauge(
                &format!("{prefix}prefix.reuse"),
                now_ns,
                stats.prefix_hits as f64 / lookups as f64,
            );
        }
        ts.gauge(
            &format!("{prefix}prefix.pinned_pages"),
            now_ns,
            sched.pages().prefix_pinned_pages() as f64,
        );
    }
}

/// Drains the burn-rate engine at end of run: emits one `slo.burn` trace
/// instant per alert window on a dedicated `slo` track and returns the
/// budget summary for `ServeMetrics`/`FleetReport`. Returns `None` — and
/// interns no track — when timeseries telemetry is off, keeping
/// telemetry-off traces byte-identical.
fn finalize_slo_burn(rec: &mut Recorder) -> Option<SloBurnSummary> {
    if !rec.timeseries.is_enabled() {
        return None;
    }
    let alerts = rec.timeseries.burn_alerts();
    let totals = rec.timeseries.burn_totals();
    let slo_track = rec.track("slo");
    for a in &alerts {
        rec.instant_with(
            slo_track,
            "slo.burn",
            a.t_ns,
            &[
                ("window", ArgVal::U(a.window as u64)),
                ("fast", ArgVal::F(a.fast)),
                ("slow", ArgVal::F(a.slow)),
            ],
        );
    }
    Some(SloBurnSummary {
        slo_ms: totals.slo_ms,
        budget: totals.budget,
        completions: totals.completions,
        misses: totals.misses,
        consumed: totals.consumed,
        alert_windows: alerts.len() as u64,
        first_alert_ms: alerts.first().map_or(0.0, |a| a.t_ns / 1e6),
    })
}

/// One replica's incremental simulation state inside a fleet run: its own
/// scheduler, page ledger, clock, and step-cost cache. The fleet driver
/// advances each replica to every arrival time, routes from the live
/// [`Scheduler::load`] snapshots, and injects into exactly one replica.
struct ReplicaSim {
    sched: Scheduler,
    now: f64,
    step_times: Vec<(f64, usize)>,
    request_latencies: Vec<f64>,
    generated_tokens: usize,
    cache: Vec<((usize, usize), Option<StepReport>)>,
    serving_track: TrackId,
    sched_track: TrackId,
    /// Per-replica speculative slot pool: the tentpole pools slots per
    /// *device*, so replicas share nothing and multi-stream DReX sharing
    /// happens inside one replica's pool across its batched requests.
    spec_pool: Option<SpecSlotPool>,
    spec_track_name: String,
    spec_counts: (usize, usize, usize),
    /// Telemetry series prefix (`r{idx}.`), mirroring the track names.
    ts_prefix: String,
    /// Crashed and not yet repaired: time passes but no step runs, so
    /// anything queued here wedges until the `Up` event (what a naive
    /// router keeps feeding).
    down: bool,
    /// Fraction of the DReX offload budget retained this step; `1.0`
    /// outside brownouts, `profile.brownout_topk_factor` inside one.
    brownout_factor: f64,
    /// Tokens decoded under a shrunken brownout budget.
    degraded_tokens: usize,
    /// Completion log with classes, in completion order — the observable
    /// signal the circuit breaker is driven by.
    completions: Vec<(SloClass, f64)>,
    /// Prefix publications scheduled by the session driver: `(request id,
    /// content hash, pages)`, inserted into the replica's prefix cache
    /// when that request completes. Always empty on sessionless runs.
    pending_publish: Vec<(usize, u64, usize)>,
}

impl ReplicaSim {
    fn new(
        geometry: &KvDeviceGeometry,
        opts: &SchedOptions,
        rec: &mut Recorder,
        idx: usize,
    ) -> Self {
        let mut sched = Scheduler::new(sched_config_for(geometry, opts));
        sched.set_event_recording(rec.is_enabled());
        Self {
            sched,
            now: 0.0,
            step_times: Vec::new(),
            request_latencies: Vec::new(),
            generated_tokens: 0,
            cache: Vec::new(),
            serving_track: rec.track(&format!("r{idx}.serving")),
            sched_track: rec.track(&format!("r{idx}.sched")),
            spec_pool: None,
            // Interned lazily on the first speculated step, like the
            // single-replica `spec` track: lookahead-off fleet traces keep
            // their exact track list.
            spec_track_name: format!("r{idx}.spec"),
            spec_counts: (0, 0, 0),
            ts_prefix: format!("r{idx}."),
            down: false,
            brownout_factor: 1.0,
            degraded_tokens: 0,
            completions: Vec::new(),
            pending_publish: Vec::new(),
        }
    }

    /// Offers an arriving request to this replica's scheduler.
    fn inject(&mut self, sys: &mut dyn ServingSystem, rec: &mut Recorder, req: SchedRequest) {
        let Self {
            sched, cache, now, ..
        } = self;
        let mut feas = |users: usize, ctx: usize| -> bool {
            cached_step_cost(cache, sys, users, ctx, rec, *now).is_some()
        };
        sched.on_arrival(req, &mut feas);
    }

    /// Runs this replica forward until its clock reaches `t` (idling
    /// straight to `t` when the batch empties), mirroring the
    /// single-replica loop: drain the admission queue, plan a step,
    /// advance. The overload guard caps runaway accounting exactly like
    /// the single-replica path.
    fn advance_to(
        &mut self,
        sys: &mut dyn ServingSystem,
        rec: &mut Recorder,
        t: f64,
        horizon_ns: f64,
    ) {
        if self.down {
            // A crashed replica idles: its clock tracks fleet time but no
            // queue drains and no step runs until the `Up` event.
            self.now = self.now.max(t);
            return;
        }
        loop {
            self.drain(sys, rec);
            if self.sched.active_is_empty() {
                self.now = self.now.max(t);
                return;
            }
            if self.now >= t || self.now > 4.0 * horizon_ns {
                return;
            }
            self.step(sys, rec);
        }
    }

    /// Runs this replica to completion after the last arrival.
    fn drain_all(&mut self, sys: &mut dyn ServingSystem, rec: &mut Recorder, horizon_ns: f64) {
        if self.down {
            return;
        }
        loop {
            self.drain(sys, rec);
            if self.sched.active_is_empty() || self.now > 4.0 * horizon_ns {
                return;
            }
            self.step(sys, rec);
        }
    }

    fn drain(&mut self, sys: &mut dyn ServingSystem, rec: &mut Recorder) {
        let Self {
            sched, cache, now, ..
        } = self;
        let mut feas = |users: usize, ctx: usize| -> bool {
            cached_step_cost(cache, sys, users, ctx, rec, *now).is_some()
        };
        sched.drain_queue(&mut feas);
        flush_sched_events(&mut self.sched, rec, self.sched_track, self.now);
    }

    /// One synchronized step, identical in structure to the single-replica
    /// loop's fault-free path (fleet mode does not inject faults).
    fn step(&mut self, sys: &mut dyn ServingSystem, rec: &mut Recorder) {
        let plan = self.sched.plan_step();
        let report = if plan.decode_users > 0 {
            Some(
                cached_step_cost(
                    &mut self.cache,
                    sys,
                    plan.decode_users,
                    plan.max_decode_ctx,
                    rec,
                    self.now,
                )
                .expect("a decode subset of an admitted batch must evaluate"),
            )
        } else {
            None
        };
        let mut base_dt = report.map_or(0.0, |r| r.step_ns);
        // Same speculation resolution as the single-replica loop (fleet
        // mode injects no faults, so no void draws); draws key off the
        // global request id, so a request resolves identically wherever
        // the router placed it.
        if let Some(s) = report.and_then(|r| r.spec) {
            let pool = self
                .spec_pool
                .get_or_insert_with(|| SpecSlotPool::new(s.slots));
            let spec_track = rec.track(&self.spec_track_name);
            let (hits, misses, denied) = resolve_spec_step(
                pool,
                &s,
                self.sched
                    .active()
                    .iter()
                    .filter(|r| r.in_decode)
                    .map(|r| (r.req.id as u64, r.generated as u64)),
                None,
                rec,
                spec_track,
                self.now,
            );
            let (paced, _) = spec_pacing(&s, base_dt, misses, denied);
            base_dt = paced;
            self.spec_counts.0 += hits;
            self.spec_counts.1 += misses;
            self.spec_counts.2 += denied;
        }
        if self.brownout_factor < 1.0 {
            // Brownout: the DReX tier runs on a shrunken top-k budget, so
            // the offload share of the step contracts proportionally and
            // every token decoded under it loses part of its long-range
            // attention (charged below through the degraded-token path).
            if let Some(r) = report {
                let offload = r.breakdown.drex_offload_ns + r.breakdown.cxl_ns;
                base_dt = (base_dt - (1.0 - self.brownout_factor) * offload).max(0.0);
            }
        }
        let dt = base_dt.max(plan.prefill_ns);
        let step_start = self.now;
        if rec.is_enabled() {
            if plan.decode_users > 0 {
                rec.leaf_with(
                    self.serving_track,
                    "decode.step",
                    step_start,
                    step_start + dt,
                    &[
                        ("users", ArgVal::U(plan.users as u64)),
                        ("ctx", ArgVal::U(plan.max_decode_ctx as u64)),
                    ],
                );
            } else {
                rec.leaf_with(
                    self.serving_track,
                    "prefill.step",
                    step_start,
                    step_start + dt,
                    &[
                        ("users", ArgVal::U(plan.prefill_users as u64)),
                        ("prefill_ns", ArgVal::F(plan.prefill_ns)),
                    ],
                );
            }
        }
        self.now += dt;
        let decoding = self.sched.decoding_count();
        let ts_on = rec.timeseries.is_enabled();
        if decoding > 0 {
            self.step_times.push((dt, decoding));
            self.generated_tokens += decoding;
            if ts_on {
                rec.timeseries.rate_add("tokens", self.now, decoding as f64);
            }
            if self.brownout_factor < 1.0 {
                self.degraded_tokens += decoding;
                if ts_on {
                    rec.timeseries.rate_add(
                        &format!("{}degraded_tok", self.ts_prefix),
                        self.now,
                        decoding as f64,
                    );
                }
            }
        }
        for c in self.sched.advance_step(dt, self.now) {
            // A completed turn publishes its prefix under its content key
            // (session runs only; the list stays empty otherwise).
            if !self.pending_publish.is_empty() {
                if let Some(pos) = self.pending_publish.iter().position(|p| p.0 == c.id) {
                    let (_, hash, pages) = self.pending_publish.swap_remove(pos);
                    self.sched.pages_mut().prefix_insert(hash, pages);
                }
            }
            self.request_latencies.push(c.latency_ms);
            self.completions.push((c.class, c.latency_ms));
            if ts_on {
                rec.timeseries
                    .observe_ms("lat.request_ms", self.now, c.latency_ms);
                if c.class == SloClass::Interactive {
                    rec.timeseries.slo_sample(self.now, c.latency_ms);
                }
            }
        }
        flush_sched_events(&mut self.sched, rec, self.sched_track, self.now);
        sample_sched_timeseries(rec, &self.ts_prefix, self.now, &self.sched);
    }
}

/// Closed-loop serving over a fleet of replicas behind a deterministic
/// front-end router.
///
/// The offered load is generated exactly as in [`simulate_scheduled`]
/// (same seed, same streams); the router then places each arrival on one
/// replica — join-shortest-queue on free HBM pages with class-aware
/// spillover, or round-robin — from [`Scheduler::load`] snapshots taken
/// after every replica has advanced to the arrival time. Placement is a
/// pure function of `(seed, arrival index, load)`, so the whole fleet
/// timeline is bit-identical at any worker-thread count.
///
/// With a single system this delegates to the single-replica path and is
/// bit-identical to [`simulate_scheduled`] (the report comes back wrapped
/// in a degenerate [`FleetReport`]). This entry point never injects
/// replica faults; [`simulate_fleet_faulty`] adds the fleet failure
/// domains on top and is byte-identical to this one when its options are
/// disabled.
///
/// Routing decisions land on the `router` track as `route.place`
/// instants; each replica gets its own `r<i>.serving` / `r<i>.sched`
/// tracks.
///
/// # Panics
///
/// Panics when `systems` is empty.
pub fn simulate_fleet(
    systems: &mut [Box<dyn ServingSystem>],
    model: &ModelConfig,
    workload: &WorkloadConfig,
    opts: &SchedOptions,
    router_policy: RouterPolicy,
    rec: &mut Recorder,
) -> (ServeMetrics, FleetReport) {
    simulate_fleet_faulty(
        systems,
        model,
        workload,
        opts,
        router_policy,
        &FleetFaultOptions::disabled(),
        rec,
    )
}

/// [`simulate_fleet`] with fleet-level failure domains armed: a
/// deterministic replica crash/brownout timeline drawn from
/// `fopts.fault_seed` (never the workload seed — offered load and fault
/// schedule are independent streams), per-replica circuit breakers
/// driving health-aware failover routing, and an SLO-aware admission
/// controller that sheds arrivals the fleet has no queue room for.
///
/// A crash evacuates every in-flight request on the replica (its KV pages
/// are gone) and redispatches each through the router onto a surviving
/// replica, where it queues behind the restore-vs-recompute rebuild
/// charge of that replica's [`KvDeviceGeometry`]. Every arrival is placed
/// once, redispatched with a recorded reason, or shed — never lost; the
/// [`FleetReport`] audit enforces exactly that.
///
/// With [`FleetFaultOptions::disabled`] this runs the legacy code path
/// op-for-op: placements, metrics, report, and trace are byte-identical
/// to [`simulate_fleet`].
///
/// # Panics
///
/// Panics when `systems` is empty, or when fault options are active over
/// a single-replica fleet (there is nothing to fail over to; the CLI
/// rejects the combination).
pub fn simulate_fleet_faulty(
    systems: &mut [Box<dyn ServingSystem>],
    model: &ModelConfig,
    workload: &WorkloadConfig,
    opts: &SchedOptions,
    router_policy: RouterPolicy,
    fopts: &FleetFaultOptions,
    rec: &mut Recorder,
) -> (ServeMetrics, FleetReport) {
    assert!(!systems.is_empty(), "fleet needs at least one replica");
    assert!(
        systems.len() > 1 || !fopts.is_active(),
        "fleet fault domains need at least two replicas"
    );
    if systems.len() == 1 {
        let (m, rep, _) = sched_impl(systems[0].as_mut(), model, workload, opts, None, rec, None);
        let mut fleet = FleetReport::single(router_policy, rep);
        fleet.slo_burn = m.slo_burn.clone();
        return (m, fleet);
    }
    let n = systems.len();
    let horizon_ns = workload.duration_s * 1e9;
    let (mut arrivals, mut classes, mut prefill_ns) = gen_arrivals(model, workload, &opts.mix);
    let total_arrived = arrivals.len();
    let router = Router::new(router_policy, workload.seed);
    let router_track = rec.track("router");

    let active = fopts.is_active();
    // The fault track is interned only when a fault domain is armed, so
    // disabled runs keep their exact track list.
    let fault_track = if active {
        Some(rec.track("fleet.faults"))
    } else {
        None
    };
    let track = fault_track.unwrap_or(router_track);
    let mut events: Vec<ReplicaEvent> = if fopts.profile.is_enabled() {
        fleet_schedule(&fopts.profile, fopts.fault_seed, n, workload.duration_s)
    } else {
        Vec::new()
    };
    events.reverse(); // pop from the back in time order
    let mut breakers: Option<Vec<CircuitBreaker>> = fopts
        .breaker
        .map(|cfg| (0..n).map(|_| CircuitBreaker::new(cfg)).collect());
    let mut summary = FleetFaultSummary::new(n, total_arrived);
    let mut down_since = vec![0.0f64; n];
    let mut fed_completions = vec![0usize; n];
    let mut fed_degraded = vec![0u64; n];

    let mut replicas: Vec<ReplicaSim> = Vec::with_capacity(systems.len());
    let mut geometries: Vec<KvDeviceGeometry> = Vec::with_capacity(systems.len());
    for (i, sys) in systems.iter_mut().enumerate() {
        let g = geometry_for(sys.as_ref(), opts);
        replicas.push(ReplicaSim::new(&g, opts, rec, i));
        geometries.push(g);
    }

    let mut placements: Vec<Placement> = Vec::with_capacity(total_arrived);
    while let Some(a) = arrivals.pop() {
        let pf_ns = prefill_ns.pop().expect("paired with arrivals");
        let class = classes.pop().expect("paired with arrivals");
        while events.last().is_some_and(|e| e.at_ns <= a.arrival_ns) {
            let e = events.pop().expect("checked non-empty");
            apply_fleet_event(
                e,
                &fopts.profile,
                &router,
                &mut replicas,
                systems,
                &geometries,
                &mut breakers,
                &mut summary,
                &mut down_since,
                horizon_ns,
                rec,
                track,
            );
        }
        for (r, sys) in replicas.iter_mut().zip(systems.iter_mut()) {
            r.advance_to(sys.as_mut(), rec, a.arrival_ns, horizon_ns);
        }
        if let Some(bs) = breakers.as_mut() {
            feed_breakers(
                &replicas,
                bs,
                &mut fed_completions,
                &mut fed_degraded,
                a.arrival_ns,
                rec,
                track,
            );
            if rec.timeseries.is_enabled() {
                for (i, b) in bs.iter().enumerate() {
                    rec.timeseries.gauge(
                        &format!("r{i}.breaker"),
                        a.arrival_ns,
                        breaker_level(b.state()),
                    );
                }
            }
        }
        let loads: Vec<_> = replicas.iter().map(|r| r.sched.load()).collect();
        let pick = if !active {
            match router.route(a.id, class, &loads) {
                Ok(p) => p,
                // Unreachable over a non-empty fleet; a lost arrival here
                // would trip the report audit, not vanish silently.
                Err(_) => continue,
            }
        } else {
            // Health gate first (a naive baseline sees every replica as
            // closed — it stays blind to downtime and wedges whatever it
            // places on a dead node), then the admission controller's
            // per-class queue caps on top.
            let health: Vec<BreakerState> = match breakers.as_ref() {
                Some(bs) => breaker_health(bs),
                None => vec![BreakerState::Closed; n],
            };
            let gated: Vec<BreakerState> = match fopts.shed_queue_cap {
                Some(cap) => health
                    .iter()
                    .enumerate()
                    .map(|(i, &s)| {
                        if replicas[i].sched.queue_depth(class) >= class_queue_cap(cap, class) {
                            BreakerState::Open
                        } else {
                            s
                        }
                    })
                    .collect(),
                None => health.clone(),
            };
            match router.route_healthy(a.id, class, &loads, &gated) {
                Ok(p) => p,
                Err(_) => {
                    let reason = if health.iter().all(|&s| s == BreakerState::Open) {
                        "no-healthy-replica"
                    } else {
                        "queue-cap"
                    };
                    summary.shed.push(ShedRecord {
                        id: a.id,
                        class,
                        at_ns: a.arrival_ns,
                        reason,
                    });
                    if rec.is_enabled() {
                        rec.instant_with(
                            track,
                            "shed",
                            a.arrival_ns,
                            &[
                                ("id", ArgVal::U(a.id as u64)),
                                ("class", ArgVal::S(class.name())),
                                ("reason", ArgVal::S(reason)),
                            ],
                        );
                    }
                    rec.timeseries.rate_add("fleet.shed", a.arrival_ns, 1.0);
                    continue;
                }
            }
        };
        placements.push((a.id, pick));
        if rec.is_enabled() {
            rec.instant_with(
                router_track,
                "route.place",
                a.arrival_ns,
                &[
                    ("id", ArgVal::U(a.id as u64)),
                    ("replica", ArgVal::U(pick as u64)),
                    ("class", ArgVal::S(class.name())),
                    ("free_hbm", ArgVal::U(loads[pick].free_hbm() as u64)),
                ],
            );
        }
        let g = &geometries[pick];
        let req = SchedRequest {
            id: a.id,
            class,
            arrival_ns: a.arrival_ns,
            context: a.context,
            output: a.output,
            prefill_ns: pf_ns,
            restore_ns: g.restore_ns(a.context),
            recompute_ns: g.recompute_ns(a.context),
            pull_ns: f64::INFINITY,
            prefix_hash: None,
        };
        replicas[pick].inject(systems[pick].as_mut(), rec, req);
        if rec.timeseries.is_enabled() {
            rec.timeseries.rate_add("fleet.admit", a.arrival_ns, 1.0);
            let prefix = replicas[pick].ts_prefix.clone();
            sample_sched_timeseries(rec, &prefix, a.arrival_ns, &replicas[pick].sched);
        }
    }
    // The tail of the fault timeline (repairs in particular) runs before
    // the final drain, so every crashed replica comes back up and serves
    // out whatever a naive router parked on it.
    while let Some(e) = events.pop() {
        apply_fleet_event(
            e,
            &fopts.profile,
            &router,
            &mut replicas,
            systems,
            &geometries,
            &mut breakers,
            &mut summary,
            &mut down_since,
            horizon_ns,
            rec,
            track,
        );
    }
    for (r, sys) in replicas.iter_mut().zip(systems.iter_mut()) {
        r.drain_all(sys.as_mut(), rec, horizon_ns);
    }

    // Fleet-wide aggregates: merged samples, summed counters, the span of
    // the slowest replica.
    let mut token_lat: Vec<f64> = Vec::new();
    let mut request_latencies: Vec<f64> = Vec::new();
    let mut generated_tokens = 0usize;
    let mut batch_users = 0usize;
    let mut batch_steps = 0usize;
    let mut rejected = 0usize;
    let mut waiting = 0usize;
    let (mut spec_hits, mut spec_misses, mut spec_denied) = (0usize, 0usize, 0usize);
    let mut degraded_tokens = 0usize;
    let mut fleet_now = 0.0f64;
    let mut reports: Vec<SchedReport> = Vec::with_capacity(replicas.len());
    let mut samples: [(Vec<f64>, Vec<f64>); 3] = Default::default();
    for r in replicas.iter_mut() {
        for &(dt, users) in &r.step_times {
            for _ in 0..users.min(64) {
                token_lat.push(dt / 1e6);
            }
            batch_users += users;
            batch_steps += 1;
        }
        request_latencies.extend_from_slice(&r.request_latencies);
        generated_tokens += r.generated_tokens;
        degraded_tokens += r.degraded_tokens;
        rejected += r.sched.rejected();
        waiting += r.sched.waiting_len();
        spec_hits += r.spec_counts.0;
        spec_misses += r.spec_counts.1;
        spec_denied += r.spec_counts.2;
        fleet_now = fleet_now.max(r.now);
        reports.push(r.sched.finalize());
        for (i, (tok, req)) in r.sched.class_samples().iter().enumerate() {
            samples[i].0.extend_from_slice(tok);
            samples[i].1.extend_from_slice(req);
        }
    }
    token_lat.sort_by(f64::total_cmp);
    request_latencies.sort_by(f64::total_cmp);
    let span_s = fleet_now.max(1.0) / 1e9;
    let shed_total = summary.shed.len();
    let metrics = ServeMetrics {
        completed: request_latencies.len(),
        rejected,
        in_flight: total_arrived - request_latencies.len() - rejected - waiting - shed_total,
        throughput_tps: generated_tokens as f64 / span_s,
        p50_token_ms: percentile(&token_lat, 0.5),
        p99_token_ms: percentile(&token_lat, 0.99),
        p50_request_ms: percentile(&request_latencies, 0.5),
        p99_request_ms: percentile(&request_latencies, 0.99),
        mean_batch: if batch_steps == 0 {
            0.0
        } else {
            batch_users as f64 / batch_steps as f64
        },
        retried_tokens: 0,
        degraded_tokens,
        failed_requests: 0,
        // Brownout tokens keep the HBM window but lose a `1 - factor`
        // slice of their long-range top-k budget.
        degraded_quality_delta: if degraded_tokens == 0 {
            0.0
        } else {
            (1.0 - fopts.profile.brownout_topk_factor) * degraded_tokens as f64
                / generated_tokens.max(1) as f64
        },
        spec_hits,
        spec_misses,
        spec_denied,
        slo_burn: finalize_slo_burn(rec),
    };
    let fault_counts = (
        summary.crashes,
        summary.brownouts,
        summary.redispatches.len(),
        summary.shed.len(),
    );
    let mut fleet = if active {
        FleetReport::assemble_with_faults(
            router_policy,
            reports,
            placements,
            samples,
            Some(summary),
        )
    } else {
        FleetReport::assemble(router_policy, reports, placements, samples)
    };
    fleet.slo_burn = metrics.slo_burn.clone();
    if rec.is_enabled() {
        rec.counter_add("serving.completed", metrics.completed as u64);
        rec.counter_add("serving.rejected", metrics.rejected as u64);
        rec.counter_add("serving.generated_tokens", generated_tokens as u64);
        rec.counter_add("router.placements", fleet.placements.len() as u64);
        rec.gauge_set("serving.throughput_tps", metrics.throughput_tps);
        rec.gauge_set("serving.mean_batch", metrics.mean_batch);
        if active {
            rec.counter_add("fleet.crashes", fault_counts.0 as u64);
            rec.counter_add("fleet.brownouts", fault_counts.1 as u64);
            rec.counter_add("fleet.redispatched", fault_counts.2 as u64);
            rec.counter_add("fleet.shed", fault_counts.3 as u64);
        }
    }
    (metrics, fleet)
}

/// [`simulate_fleet`] under a multi-turn session workload with the
/// content-keyed cross-replica prefix cache armed.
///
/// The offered load comes from the session generator (see
/// [`crate::session`]) instead of the Poisson process: each session's
/// turns extend the same growing context, and every completed turn
/// publishes its KV-prefix under a content hash into its replica's
/// prefix-cache carve-out. A follow-up turn then resumes one of three
/// ways, cheapest first:
///
/// 1. **Local hit** — the placement replica still caches the prefix: the
///    turn pins it and pays prefill only for the suffix (the new user
///    message).
/// 2. **Pooled-DReX pull** — another replica owns the prefix: the pages
///    transfer over the CXL fabric at the target geometry's
///    per-page restore price × 2 (two fabric hops through the pooled
///    tier — the same [`longsight_cxl::CxlLink`]-derived transfer model,
///    and the same CRC-replay fault path, as a preemption restore),
///    charged on top of the suffix prefill and taken only when cheaper
///    than re-prefilling from scratch. Pulls are traced as `prefix.pull`
///    spans on the `sessions` track and logged as [`PullRecord`]s.
/// 3. **Cold re-prefill** — no usable copy (or the pull is dearer): full
///    prefill, exactly like a fresh request.
///
/// Routing honors session affinity when `router_policy` is
/// [`RouterPolicy::Affinity`]: a resuming turn lands on its owning
/// replica while that replica is healthy and under the spillover bonus's
/// occupancy ceiling, and otherwise falls back to cost-aware JSQ with
/// the owner's free-page key credited by the cached prefix size.
///
/// The scheduler releases each turn's pin on completion, failure, or
/// crash; the fleet audit checks the pull log is conserved against the
/// replicas' pin counters (pulled = pinned elsewhere). With
/// [`SessionOptions::disabled`] this delegates to [`simulate_fleet`]
/// byte-for-byte.
///
/// # Panics
///
/// Panics when `systems` is empty.
pub fn simulate_fleet_sessions(
    systems: &mut [Box<dyn ServingSystem>],
    model: &ModelConfig,
    workload: &WorkloadConfig,
    opts: &SchedOptions,
    router_policy: RouterPolicy,
    sess: &SessionOptions,
    rec: &mut Recorder,
) -> (ServeMetrics, FleetReport) {
    assert!(!systems.is_empty(), "fleet needs at least one replica");
    if !sess.is_active() {
        return simulate_fleet(systems, model, workload, opts, router_policy, rec);
    }
    let n = systems.len();
    let horizon_ns = workload.duration_s * 1e9;
    let (mut arrivals, mut classes, mut prefill_ns, mut turns) =
        session::gen_session_turns(model, workload, &opts.mix, sess);
    let total_arrived = arrivals.len();
    let router = Router::new(router_policy, workload.seed);
    let router_track = rec.track("router");
    let sessions_track = rec.track("sessions");

    let mut replicas: Vec<ReplicaSim> = Vec::with_capacity(n);
    let mut geometries: Vec<KvDeviceGeometry> = Vec::with_capacity(n);
    for (i, sys) in systems.iter_mut().enumerate() {
        let g = geometry_for(sys.as_ref(), opts);
        let mut r = ReplicaSim::new(&g, opts, rec, i);
        r.sched
            .pages_mut()
            .set_prefix_capacity(sess.prefix_cache_pages);
        replicas.push(r);
        geometries.push(g);
    }

    // Content hash -> replica whose cache holds (or will hold) the prefix.
    let mut owners: HashMap<u64, usize> = HashMap::new();
    let mut placements: Vec<Placement> = Vec::with_capacity(total_arrived);
    let mut sessions_seen = 0usize;
    let mut local_hits = 0usize;
    let mut cold_turns = 0usize;
    let mut pulls: Vec<PullRecord> = Vec::new();
    let states = vec![BreakerState::Closed; n];

    while let Some(a) = arrivals.pop() {
        let pf_ns = prefill_ns.pop().expect("paired with arrivals");
        let class = classes.pop().expect("paired with arrivals");
        let turn = turns.pop().expect("paired with arrivals");
        if turn.turn == 0 {
            sessions_seen += 1;
        }
        for (r, sys) in replicas.iter_mut().zip(systems.iter_mut()) {
            r.advance_to(sys.as_mut(), rec, a.arrival_ns, horizon_ns);
        }
        let loads: Vec<_> = replicas.iter().map(|r| r.sched.load()).collect();
        // The owning replica only counts while its cache still holds the
        // prefix (LRU reclaim or a wipe orphans the owner map entry).
        let mut owner: Option<usize> = None;
        let mut owner_pages = 0usize;
        if let Some(h) = turn.pin_hash {
            if let Some(&o) = owners.get(&h) {
                if let Some(p) = replicas[o].sched.pages().prefix_lookup(h) {
                    owner = Some(o);
                    owner_pages = p;
                }
            }
        }
        let routed = match router_policy {
            RouterPolicy::Affinity => {
                router.route_affine(a.id, class, &loads, &states, owner, owner_pages)
            }
            _ => router.route(a.id, class, &loads),
        };
        let pick = match routed {
            Ok(p) => p,
            // Unreachable over a non-empty healthy fleet; a lost arrival
            // here would trip the report audit, not vanish silently.
            Err(_) => continue,
        };
        placements.push((a.id, pick));
        if rec.is_enabled() {
            rec.instant_with(
                router_track,
                "route.place",
                a.arrival_ns,
                &[
                    ("id", ArgVal::U(a.id as u64)),
                    ("replica", ArgVal::U(pick as u64)),
                    ("class", ArgVal::S(class.name())),
                    ("free_hbm", ArgVal::U(loads[pick].free_hbm() as u64)),
                ],
            );
        }
        let g = &geometries[pick];
        // Three-way resume pricing: local pin, cross-replica pull, or
        // cold re-prefill.
        let mut prefill = pf_ns;
        let mut pull_field = f64::INFINITY;
        let mut prefix_hash: Option<u64> = None;
        if let Some(h) = turn.pin_hash {
            let suffix_frac = (a.context - turn.prefix_tokens) as f64 / a.context.max(1) as f64;
            let suffix_ns = pf_ns * suffix_frac;
            if replicas[pick].sched.pages_mut().prefix_pin(h).is_some() {
                prefill = suffix_ns;
                prefix_hash = Some(h);
                local_hits += 1;
            } else if let Some(o) = owner.filter(|&o| o != pick) {
                // Two fabric hops through the pooled tier: source DReX ->
                // fabric -> target DReX, priced per page by the same
                // CxlLink-derived transfer model as a preemption restore.
                let pull_ns = owner_pages as f64 * g.restore_ns_per_page * 2.0;
                if pull_ns + suffix_ns < pf_ns
                    && replicas[pick]
                        .sched
                        .pages_mut()
                        .prefix_insert(h, owner_pages)
                {
                    let pinned = replicas[pick].sched.pages_mut().prefix_pin(h);
                    debug_assert_eq!(pinned, Some(owner_pages));
                    prefill = suffix_ns + pull_ns;
                    pull_field = pull_ns;
                    prefix_hash = Some(h);
                    pulls.push(PullRecord {
                        id: a.id,
                        hash: h,
                        from: o,
                        to: pick,
                        pages: owner_pages,
                        at_ns: a.arrival_ns,
                    });
                    if rec.is_enabled() {
                        rec.leaf_with(
                            sessions_track,
                            "prefix.pull",
                            a.arrival_ns,
                            a.arrival_ns + pull_ns,
                            &[
                                ("id", ArgVal::U(a.id as u64)),
                                ("from", ArgVal::U(o as u64)),
                                ("to", ArgVal::U(pick as u64)),
                                ("pages", ArgVal::U(owner_pages as u64)),
                            ],
                        );
                    }
                    rec.timeseries.rate_add("sessions.pull", a.arrival_ns, 1.0);
                }
            }
        }
        if turn.turn > 0 && prefix_hash.is_none() {
            cold_turns += 1;
        }
        // This turn's completion publishes the next turn's prefix here.
        let publish_pages = turn.publish_tokens.div_ceil(g.page_tokens.max(1));
        replicas[pick]
            .pending_publish
            .push((a.id, turn.publish_hash, publish_pages));
        owners.insert(turn.publish_hash, pick);
        let req = SchedRequest {
            id: a.id,
            class,
            arrival_ns: a.arrival_ns,
            context: a.context,
            output: a.output,
            prefill_ns: prefill,
            restore_ns: g.restore_ns(a.context),
            recompute_ns: g.recompute_ns(a.context),
            pull_ns: pull_field,
            prefix_hash,
        };
        replicas[pick].inject(systems[pick].as_mut(), rec, req);
        if rec.timeseries.is_enabled() {
            rec.timeseries.rate_add("fleet.admit", a.arrival_ns, 1.0);
            let prefix = replicas[pick].ts_prefix.clone();
            sample_sched_timeseries(rec, &prefix, a.arrival_ns, &replicas[pick].sched);
        }
    }
    for (r, sys) in replicas.iter_mut().zip(systems.iter_mut()) {
        r.drain_all(sys.as_mut(), rec, horizon_ns);
    }

    // Fleet-wide aggregates, exactly as in the fault driver's fault-free
    // shape: merged samples, summed counters, the span of the slowest
    // replica.
    let mut token_lat: Vec<f64> = Vec::new();
    let mut request_latencies: Vec<f64> = Vec::new();
    let mut generated_tokens = 0usize;
    let mut batch_users = 0usize;
    let mut batch_steps = 0usize;
    let mut rejected = 0usize;
    let mut waiting = 0usize;
    let (mut spec_hits, mut spec_misses, mut spec_denied) = (0usize, 0usize, 0usize);
    let mut fleet_now = 0.0f64;
    let mut reports: Vec<SchedReport> = Vec::with_capacity(replicas.len());
    let mut samples: [(Vec<f64>, Vec<f64>); 3] = Default::default();
    for r in replicas.iter_mut() {
        for &(dt, users) in &r.step_times {
            for _ in 0..users.min(64) {
                token_lat.push(dt / 1e6);
            }
            batch_users += users;
            batch_steps += 1;
        }
        request_latencies.extend_from_slice(&r.request_latencies);
        generated_tokens += r.generated_tokens;
        rejected += r.sched.rejected();
        waiting += r.sched.waiting_len();
        spec_hits += r.spec_counts.0;
        spec_misses += r.spec_counts.1;
        spec_denied += r.spec_counts.2;
        fleet_now = fleet_now.max(r.now);
        reports.push(r.sched.finalize());
        for (i, (tok, req)) in r.sched.class_samples().iter().enumerate() {
            samples[i].0.extend_from_slice(tok);
            samples[i].1.extend_from_slice(req);
        }
    }
    token_lat.sort_by(f64::total_cmp);
    request_latencies.sort_by(f64::total_cmp);
    let span_s = fleet_now.max(1.0) / 1e9;
    let metrics = ServeMetrics {
        completed: request_latencies.len(),
        rejected,
        in_flight: total_arrived - request_latencies.len() - rejected - waiting,
        throughput_tps: generated_tokens as f64 / span_s,
        p50_token_ms: percentile(&token_lat, 0.5),
        p99_token_ms: percentile(&token_lat, 0.99),
        p50_request_ms: percentile(&request_latencies, 0.5),
        p99_request_ms: percentile(&request_latencies, 0.99),
        mean_batch: if batch_steps == 0 {
            0.0
        } else {
            batch_users as f64 / batch_steps as f64
        },
        retried_tokens: 0,
        degraded_tokens: 0,
        failed_requests: 0,
        degraded_quality_delta: 0.0,
        spec_hits,
        spec_misses,
        spec_denied,
        slo_burn: finalize_slo_burn(rec),
    };
    let mut fleet = FleetReport::assemble(router_policy, reports, placements, samples);
    fleet.slo_burn = metrics.slo_burn.clone();
    fleet.attach_sessions(SessionSummary {
        sessions: sessions_seen,
        turns: total_arrived,
        prefix_hits: local_hits,
        cold_turns,
        pulls,
    });
    if rec.is_enabled() {
        rec.counter_add("serving.completed", metrics.completed as u64);
        rec.counter_add("serving.rejected", metrics.rejected as u64);
        rec.counter_add("serving.generated_tokens", generated_tokens as u64);
        rec.counter_add("router.placements", fleet.placements.len() as u64);
        rec.gauge_set("serving.throughput_tps", metrics.throughput_tps);
        rec.gauge_set("serving.mean_batch", metrics.mean_batch);
        if let Some(s) = &fleet.sessions {
            rec.counter_add("sessions.turns", s.turns as u64);
            rec.counter_add("sessions.prefix_hits", s.prefix_hits as u64);
            rec.counter_add("sessions.pulls", s.pulls.len() as u64);
            rec.counter_add("sessions.pulled_pages", s.pulled_pages() as u64);
            rec.counter_add("sessions.cold_turns", s.cold_turns as u64);
        }
    }
    (metrics, fleet)
}

/// Applies one replica fault-timeline event to the fleet.
///
/// `Down` advances the replica to the crash instant, evacuates its entire
/// in-flight set (pages freed — the KV state is gone), and redispatches
/// each evacuee through the router onto a surviving replica, where it
/// queues behind the target geometry's rebuild charge (full prefill when
/// caught mid-prefill, restore-vs-recompute otherwise). When every other
/// replica is also down the evacuee parks on the crashed replica and
/// resumes after repair — redispatch never loses a request. `Up` restores
/// the replica (and moves a held-open breaker to half-open); brownout
/// events toggle the replica's offload-budget factor.
#[allow(clippy::too_many_arguments)]
fn apply_fleet_event(
    e: ReplicaEvent,
    profile: &ReplicaFaultProfile,
    router: &Router,
    replicas: &mut [ReplicaSim],
    systems: &mut [Box<dyn ServingSystem>],
    geometries: &[KvDeviceGeometry],
    breakers: &mut Option<Vec<CircuitBreaker>>,
    summary: &mut FleetFaultSummary,
    down_since: &mut [f64],
    horizon_ns: f64,
    rec: &mut Recorder,
    track: TrackId,
) {
    let r = e.replica;
    match e.kind {
        ReplicaEventKind::Down => {
            replicas[r].advance_to(systems[r].as_mut(), rec, e.at_ns, horizon_ns);
            let evac = replicas[r].sched.crash_evacuate();
            replicas[r].down = true;
            down_since[r] = e.at_ns;
            summary.crashes += 1;
            if rec.timeseries.is_enabled() {
                rec.timeseries.gauge(&format!("r{r}.up"), e.at_ns, 0.0);
                let prefix = replicas[r].ts_prefix.clone();
                sample_sched_timeseries(rec, &prefix, e.at_ns, &replicas[r].sched);
            }
            if rec.is_enabled() {
                rec.instant_with(
                    track,
                    "replica.down",
                    e.at_ns,
                    &[
                        ("replica", ArgVal::U(r as u64)),
                        ("evacuated", ArgVal::U(evac.len() as u64)),
                    ],
                );
            }
            if let Some(bs) = breakers.as_mut() {
                if let Some(s) = bs[r].force_open(e.at_ns) {
                    if rec.timeseries.is_enabled() {
                        rec.timeseries
                            .gauge(&format!("r{r}.breaker"), e.at_ns, breaker_level(s));
                    }
                    if rec.is_enabled() {
                        rec.instant_with(
                            track,
                            breaker_instant_name(s),
                            e.at_ns,
                            &[("replica", ArgVal::U(r as u64))],
                        );
                    }
                }
            }
            // Survivors advance to the crash instant so every failover
            // decision is taken from one consistent snapshot.
            for i in 0..replicas.len() {
                if i != r && !replicas[i].down {
                    replicas[i].advance_to(systems[i].as_mut(), rec, e.at_ns, horizon_ns);
                }
            }
            for ev in evac {
                let loads: Vec<_> = replicas.iter().map(|x| x.sched.load()).collect();
                // Redispatch always routes around dead nodes, breaker or
                // not: the crashed stack is gone, not just slow. The
                // naive baseline differs only on *new* arrivals.
                let states: Vec<BreakerState> = match breakers.as_ref() {
                    Some(bs) => breaker_health(bs),
                    None => replicas
                        .iter()
                        .map(|x| {
                            if x.down {
                                BreakerState::Open
                            } else {
                                BreakerState::Closed
                            }
                        })
                        .collect(),
                };
                let (to, reason) =
                    match router.route_healthy(ev.req.id, ev.req.class, &loads, &states) {
                        Ok(t) => (t, "replica-crash"),
                        Err(_) => (r, "no-healthy-replica"),
                    };
                let mut moved = ev;
                moved.req.restore_ns = geometries[to].restore_ns(moved.req.context);
                moved.req.recompute_ns = geometries[to].recompute_ns(moved.req.context);
                replicas[to].sched.on_redispatch(moved);
                summary.redispatches.push(RedispatchRecord {
                    id: ev.req.id,
                    from: r,
                    to,
                    at_ns: e.at_ns,
                    reason,
                });
                if rec.is_enabled() {
                    rec.instant_with(
                        track,
                        "redispatch",
                        e.at_ns,
                        &[
                            ("id", ArgVal::U(ev.req.id as u64)),
                            ("from", ArgVal::U(r as u64)),
                            ("to", ArgVal::U(to as u64)),
                            ("class", ArgVal::S(ev.req.class.name())),
                        ],
                    );
                }
                rec.timeseries.rate_add("fleet.redispatch", e.at_ns, 1.0);
            }
        }
        ReplicaEventKind::Up => {
            summary.downtime_ns[r] += e.at_ns - down_since[r];
            replicas[r].now = replicas[r].now.max(e.at_ns);
            replicas[r].down = false;
            if rec.timeseries.is_enabled() {
                rec.timeseries.gauge(&format!("r{r}.up"), e.at_ns, 1.0);
            }
            if rec.is_enabled() {
                rec.instant_with(
                    track,
                    "replica.up",
                    e.at_ns,
                    &[("replica", ArgVal::U(r as u64))],
                );
            }
            if let Some(bs) = breakers.as_mut() {
                if let Some(s) = bs[r].on_recovery() {
                    if rec.timeseries.is_enabled() {
                        rec.timeseries
                            .gauge(&format!("r{r}.breaker"), e.at_ns, breaker_level(s));
                    }
                    if rec.is_enabled() {
                        rec.instant_with(
                            track,
                            breaker_instant_name(s),
                            e.at_ns,
                            &[("replica", ArgVal::U(r as u64))],
                        );
                    }
                }
            }
        }
        ReplicaEventKind::BrownoutStart => {
            if !replicas[r].down {
                replicas[r].advance_to(systems[r].as_mut(), rec, e.at_ns, horizon_ns);
                replicas[r].brownout_factor = profile.brownout_topk_factor;
                summary.brownouts += 1;
                if rec.is_enabled() {
                    rec.instant_with(
                        track,
                        "replica.brownout_start",
                        e.at_ns,
                        &[
                            ("replica", ArgVal::U(r as u64)),
                            ("topk_factor", ArgVal::F(profile.brownout_topk_factor)),
                        ],
                    );
                }
            }
        }
        ReplicaEventKind::BrownoutEnd => {
            replicas[r].advance_to(systems[r].as_mut(), rec, e.at_ns, horizon_ns);
            replicas[r].brownout_factor = 1.0;
            if rec.is_enabled() {
                rec.instant_with(
                    track,
                    "replica.brownout_end",
                    e.at_ns,
                    &[("replica", ArgVal::U(r as u64))],
                );
            }
        }
    }
}

/// Feeds each breaker the completions and degraded tokens its replica
/// produced since the last arrival, then ticks the cooldown — the breaker
/// observes exactly what a real front-end can observe, never the fault
/// schedule itself. Transitions land on the fault track.
fn feed_breakers(
    replicas: &[ReplicaSim],
    breakers: &mut [CircuitBreaker],
    fed_completions: &mut [usize],
    fed_degraded: &mut [u64],
    now_ns: f64,
    rec: &mut Recorder,
    track: TrackId,
) {
    for (i, r) in replicas.iter().enumerate() {
        let mut transitions: Vec<BreakerState> = Vec::new();
        while fed_completions[i] < r.completions.len() {
            let (class, lat) = r.completions[fed_completions[i]];
            fed_completions[i] += 1;
            if let Some(s) = breakers[i].note_completion(class, lat, now_ns) {
                transitions.push(s);
            }
        }
        let total = r.degraded_tokens as u64;
        if total > fed_degraded[i] {
            let delta = total - fed_degraded[i];
            fed_degraded[i] = total;
            if let Some(s) = breakers[i].note_degraded(delta, now_ns) {
                transitions.push(s);
            }
        }
        if let Some(s) = breakers[i].poll(now_ns) {
            transitions.push(s);
        }
        if rec.is_enabled() {
            for s in transitions {
                rec.instant_with(
                    track,
                    breaker_instant_name(s),
                    now_ns,
                    &[("replica", ArgVal::U(i as u64))],
                );
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::longsight::{LongSightConfig, LongSightSystem};

    fn run(arrivals_per_s: f64, seed: u64) -> ServeMetrics {
        let model = ModelConfig::llama3_1b();
        let mut sys = LongSightSystem::new(LongSightConfig::paper_default(), model.clone());
        let wl = WorkloadConfig {
            arrivals_per_s,
            context_tokens: (32_768, 65_536),
            output_tokens: (16, 64),
            duration_s: 5.0,
            seed,
        };
        simulate(&mut sys, &model, &wl)
    }

    #[test]
    fn deterministic_given_seed() {
        assert_eq!(run(2.0, 3), run(2.0, 3));
    }

    #[test]
    fn completes_requests_at_moderate_load() {
        let m = run(2.0, 1);
        assert!(m.completed > 0, "some requests must finish: {m:?}");
        assert!(m.p99_token_ms >= m.p50_token_ms);
        assert!(m.p99_request_ms >= m.p50_request_ms);
        assert!(m.throughput_tps > 0.0);
    }

    #[test]
    fn higher_load_means_bigger_batches_and_latency() {
        let low = run(1.0, 5);
        let high = run(16.0, 5);
        assert!(
            high.mean_batch > low.mean_batch,
            "more arrivals must grow the batch: {} vs {}",
            low.mean_batch,
            high.mean_batch
        );
        assert!(
            high.p50_token_ms >= low.p50_token_ms,
            "token latency should not shrink under load"
        );
    }

    #[test]
    fn disabled_injector_matches_fault_free_simulate() {
        let model = ModelConfig::llama3_1b();
        let mut sys = LongSightSystem::new(LongSightConfig::paper_default(), model.clone());
        let wl = WorkloadConfig {
            arrivals_per_s: 2.0,
            context_tokens: (32_768, 65_536),
            output_tokens: (16, 64),
            duration_s: 5.0,
            seed: 3,
        };
        let plain = simulate(&mut sys, &model, &wl);
        let (faulted, log) = simulate_with_faults(
            &mut sys,
            &model,
            &wl,
            &FaultInjector::disabled(),
            &RetryPolicy::serving_default(),
        );
        assert_eq!(plain, faulted);
        assert!(log.is_empty());
        assert_eq!(plain.degraded_tokens, 0);
        assert_eq!(plain.degraded_quality_delta, 0.0);
    }

    #[test]
    fn injected_timeouts_degrade_and_slow_the_run() {
        use longsight_faults::{FaultKind, FaultProfile};
        let model = ModelConfig::llama3_1b();
        let mut sys = LongSightSystem::new(LongSightConfig::paper_default(), model.clone());
        let wl = WorkloadConfig {
            arrivals_per_s: 2.0,
            context_tokens: (32_768, 65_536),
            output_tokens: (16, 64),
            duration_s: 5.0,
            seed: 3,
        };
        let plain = simulate(&mut sys, &model, &wl);
        let inj = FaultInjector::new(
            FaultProfile {
                timeout_rate: 0.3,
                ..FaultProfile::disabled()
            },
            7,
        );
        let retry = RetryPolicy::serving_default();
        let (m, log) = simulate_with_faults(&mut sys, &model, &wl, &inj, &retry);
        assert!(
            m.retried_tokens > 0,
            "30% timeouts must force retries: {m:?}"
        );
        // Degraded tokens in the metrics must equal Degraded events in the
        // log, and each one came from max_retries+1 logged timeouts.
        assert_eq!(
            m.degraded_tokens,
            log.count_matching(|k| matches!(k, FaultKind::Degraded))
        );
        let timeouts = log.count_matching(|k| matches!(k, FaultKind::Timeout { .. }));
        assert!(timeouts >= m.degraded_tokens * (retry.max_retries as usize + 1));
        assert!(
            m.p50_token_ms >= plain.p50_token_ms,
            "deadline penalties cannot make tokens faster"
        );
        assert!(m.throughput_tps <= plain.throughput_tps);
        // Determinism: same seed, same timeline.
        let (m2, log2) = simulate_with_faults(&mut sys, &model, &wl, &inj, &retry);
        assert_eq!(m, m2);
        assert_eq!(log.to_text(), log2.to_text());
    }

    #[test]
    fn hard_faults_kill_requests() {
        use longsight_faults::FaultProfile;
        let model = ModelConfig::llama3_1b();
        let mut sys = LongSightSystem::new(LongSightConfig::paper_default(), model.clone());
        let wl = WorkloadConfig {
            arrivals_per_s: 4.0,
            context_tokens: (32_768, 65_536),
            output_tokens: (32, 128),
            duration_s: 5.0,
            seed: 5,
        };
        let inj = FaultInjector::new(
            FaultProfile {
                hard_fail_rate: 0.02,
                ..FaultProfile::disabled()
            },
            13,
        );
        let (m, _) =
            simulate_with_faults(&mut sys, &model, &wl, &inj, &RetryPolicy::serving_default());
        assert!(m.failed_requests > 0, "2% per-token hard faults: {m:?}");
        let plain = simulate(&mut sys, &model, &wl);
        assert!(m.completed < plain.completed + m.failed_requests + 1);
    }

    #[test]
    fn request_latency_includes_prefill() {
        let m = run(0.5, 9);
        // A 32K-prompt prefill alone is ~0.1+ ms on the roofline; with decode
        // of ≥16 tokens the p50 request latency must exceed several ms.
        assert!(
            m.p50_request_ms > 1.0,
            "suspiciously low request latency: {m:?}"
        );
    }

    #[test]
    fn metrics_json_round_trips_bit_exactly() {
        let m = run(2.0, 3);
        let parsed = ServeMetrics::from_json(&m.to_json()).expect("own JSON must parse");
        assert_eq!(m, parsed);
    }

    #[test]
    fn metrics_json_round_trips_non_finite_as_zero() {
        let mut m = run(2.0, 3);
        m.throughput_tps = f64::NAN;
        m.mean_batch = f64::INFINITY;
        let parsed = ServeMetrics::from_json(&m.to_json()).expect("nulls must parse");
        assert_eq!(parsed.throughput_tps, 0.0);
        assert_eq!(parsed.mean_batch, 0.0);
        assert_eq!(parsed.completed, m.completed);
    }

    #[test]
    fn from_json_rejects_missing_fields() {
        assert!(ServeMetrics::from_json("{\"completed\":1}").is_err());
        assert!(ServeMetrics::from_json("not json").is_err());
    }

    fn session_fleet(
        replicas: usize,
        reuse: f64,
        cache_pages: usize,
        policy: RouterPolicy,
    ) -> (ServeMetrics, FleetReport) {
        let model = ModelConfig::llama3_1b();
        let mut systems: Vec<Box<dyn ServingSystem>> = (0..replicas)
            .map(|_| {
                Box::new(LongSightSystem::new(
                    LongSightConfig::paper_default(),
                    model.clone(),
                )) as Box<dyn ServingSystem>
            })
            .collect();
        let wl = WorkloadConfig {
            arrivals_per_s: 2.0,
            context_tokens: (32_768, 65_536),
            output_tokens: (16, 64),
            duration_s: 12.0,
            seed: 11,
        };
        // Think times comfortably above the ~1-2 s service time, so most
        // follow-ups arrive after their prefix has been published.
        let sess = SessionOptions {
            sessions: 6,
            turns: 3,
            think_time_ms: 1500.0,
            reuse,
            prefix_cache_pages: cache_pages,
        };
        simulate_fleet_sessions(
            &mut systems,
            &model,
            &wl,
            &SchedOptions::slo_aware(SloMix::all_interactive()),
            policy,
            &sess,
            &mut Recorder::disabled(),
        )
    }

    #[test]
    fn session_fleet_passes_audit_and_reuses_prefixes() {
        let (_, fleet) = session_fleet(2, 1.0, 4096, RouterPolicy::Affinity);
        assert_eq!(fleet.audit_violation, None, "{:?}", fleet.audit_violation);
        let s = fleet.sessions.as_ref().expect("session summary attached");
        assert_eq!(s.sessions, 6);
        assert_eq!(s.turns, 18);
        assert!(
            s.prefix_hits + s.pulls.len() > 0,
            "full reuse with a generous cache must hit: {s:?}"
        );
        // Deterministic: the placement log and summary reproduce exactly.
        let (_, again) = session_fleet(2, 1.0, 4096, RouterPolicy::Affinity);
        assert_eq!(fleet.placement_log(), again.placement_log());
        assert_eq!(fleet.sessions, again.sessions);
    }

    #[test]
    fn session_reuse_cuts_prefill_work_vs_cold_routing() {
        let (_, warm) = session_fleet(2, 1.0, 4096, RouterPolicy::Affinity);
        let (_, cold) = session_fleet(2, 1.0, 0, RouterPolicy::JsqSpillover);
        assert_eq!(cold.audit_violation, None);
        let work = |f: &FleetReport| -> f64 { f.replicas.iter().map(|r| r.prefill_work_ns).sum() };
        assert!(
            work(&warm) < work(&cold),
            "prefix reuse must cut prefill work: warm {} vs cold {}",
            work(&warm),
            work(&cold)
        );
        let s = cold.sessions.as_ref().expect("summary present even cold");
        assert_eq!(s.prefix_hits, 0);
        assert!(s.pulls.is_empty());
        assert_eq!(s.cold_turns, s.turns - s.sessions);
    }

    #[test]
    fn sessions_off_is_byte_identical_to_plain_fleet() {
        let model = ModelConfig::llama3_1b();
        let make = || -> Vec<Box<dyn ServingSystem>> {
            (0..2)
                .map(|_| {
                    Box::new(LongSightSystem::new(
                        LongSightConfig::paper_default(),
                        model.clone(),
                    )) as Box<dyn ServingSystem>
                })
                .collect()
        };
        let wl = WorkloadConfig {
            arrivals_per_s: 2.0,
            context_tokens: (32_768, 65_536),
            output_tokens: (16, 64),
            duration_s: 5.0,
            seed: 3,
        };
        let opts = SchedOptions::slo_aware(SloMix::all_interactive());
        let (m1, f1) = simulate_fleet(
            &mut make(),
            &model,
            &wl,
            &opts,
            RouterPolicy::JsqSpillover,
            &mut Recorder::disabled(),
        );
        let (m2, f2) = simulate_fleet_sessions(
            &mut make(),
            &model,
            &wl,
            &opts,
            RouterPolicy::JsqSpillover,
            &SessionOptions::disabled(),
            &mut Recorder::disabled(),
        );
        assert_eq!(m1, m2);
        assert_eq!(f1.placement_log(), f2.placement_log());
        assert_eq!(f1.to_text(), f2.to_text());
    }
}
