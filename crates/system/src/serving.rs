//! Discrete-event serving simulation: Poisson request arrivals, continuous
//! batching of synchronized decode steps, per-request latency percentiles.
//!
//! The paper's serving claims (§9.1) are about *operating points*: how many
//! concurrent users a system sustains, where throughput plateaus, and what
//! happens to quality of service as load grows. This module turns the
//! per-step cost models into a closed-loop simulation producing those
//! curves: requests arrive over time, join the running batch (continuous
//! batching), decode their output tokens, and leave.
//!
//! Scheduling is delegated to `longsight-sched`. The default FIFO policy
//! reproduces the original serving loop op-for-op (bit-identical metrics);
//! [`simulate_scheduled`] exposes the SLO-aware policy, where admission is
//! a paged-memory decision over HBM window pages and DReX tail pages,
//! prefill is chunked and overlapped with decode, and best-effort requests
//! are evicted to DReX-resident state when higher classes need HBM.

use crate::attribution::{attribution_parts, TokenAttribution};
use crate::degrade::{resolve_token, DegradeStats, TokenOutcome};
use crate::prefill::prefill_cost;
use crate::report::{ServingSystem, StepReport};
use longsight_cxl::CxlLink;
use longsight_faults::{FaultInjector, FaultLog, RetryPolicy};
use longsight_gpu::GpuSpec;
use longsight_model::ModelConfig;
use longsight_obs::json::fmt_f64;
use longsight_obs::{ArgVal, Recorder, TrackId};
use longsight_sched::{
    KvDeviceGeometry, SchedConfig, SchedEvent, SchedPolicy, SchedReport, SchedRequest, Scheduler,
    SloMix,
};
use longsight_tensor::SimRng;

/// XOR'd into the workload seed for the SLO-class stream, so class draws
/// never perturb the arrival-process stream (FIFO metrics stay bit-exact
/// for any mix).
const CLASS_SEED: u64 = 0x736c_6f63;

/// Offered-load description.
#[derive(Debug, Clone)]
pub struct WorkloadConfig {
    /// Mean request arrival rate (Poisson), requests per second.
    pub arrivals_per_s: f64,
    /// Uniform range of per-request context lengths (prompt tokens).
    pub context_tokens: (usize, usize),
    /// Uniform range of output (decode) lengths.
    pub output_tokens: (usize, usize),
    /// Simulated wall-clock duration, seconds.
    pub duration_s: f64,
    /// RNG seed.
    pub seed: u64,
}

impl WorkloadConfig {
    /// A steady long-context chat workload.
    pub fn long_context_chat() -> Self {
        Self {
            arrivals_per_s: 2.0,
            context_tokens: (65_536, 131_072),
            output_tokens: (64, 256),
            duration_s: 30.0,
            seed: 7,
        }
    }
}

/// Scheduler policy and paged-KV knobs for [`simulate_scheduled`].
#[derive(Debug, Clone)]
pub struct SchedOptions {
    /// Scheduling policy.
    pub policy: SchedPolicy,
    /// SLO-class mix of the offered load (classes drawn from a dedicated
    /// RNG stream, so the arrival process is identical across mixes).
    pub mix: SloMix,
    /// Tokens per KV page.
    pub page_tokens: usize,
    /// Prefill chunk size, prompt tokens (SLO-aware only).
    pub prefill_chunk_tokens: usize,
    /// Fraction of HBM pages the SLO-aware allocator may use.
    pub hbm_watermark: f64,
}

impl SchedOptions {
    /// The legacy serving behavior: FIFO admission, single-class load.
    pub fn fifo() -> Self {
        Self {
            policy: SchedPolicy::Fifo,
            mix: SloMix::all_interactive(),
            page_tokens: 1024,
            prefill_chunk_tokens: 8192,
            hbm_watermark: 0.9,
        }
    }

    /// SLO-aware scheduling over the given class mix.
    pub fn slo_aware(mix: SloMix) -> Self {
        Self {
            policy: SchedPolicy::SloAware,
            ..Self::fifo()
        }
        .with_mix(mix)
    }

    fn with_mix(mut self, mix: SloMix) -> Self {
        self.mix = mix;
        self
    }
}

/// Aggregate results of a serving run.
#[derive(Debug, Clone, PartialEq)]
pub struct ServeMetrics {
    /// Requests fully served.
    pub completed: usize,
    /// Requests rejected at arrival (no capacity at any point in the run).
    pub rejected: usize,
    /// Requests still in flight at the end.
    pub in_flight: usize,
    /// Generated tokens per second over the simulated window.
    pub throughput_tps: f64,
    /// Median per-token (decode step) latency, ms.
    pub p50_token_ms: f64,
    /// 99th-percentile per-token latency, ms.
    pub p99_token_ms: f64,
    /// Median end-to-end request latency (arrival → last token), ms.
    pub p50_request_ms: f64,
    /// 99th-percentile request latency, ms.
    pub p99_request_ms: f64,
    /// Mean batch size across decode steps.
    pub mean_batch: f64,
    /// Tokens whose offload needed at least one retry but completed
    /// (zero on fault-free runs).
    pub retried_tokens: usize,
    /// Tokens that exhausted the retry budget and were emitted from dense
    /// window-only attention (zero on fault-free runs).
    pub degraded_tokens: usize,
    /// Requests that died unrecoverably under injected hard faults
    /// (zero on fault-free runs).
    pub failed_requests: usize,
    /// Quality delta of degradation: the fraction of generated tokens that
    /// lost long-range top-k attention (their recall over the non-window
    /// region dropped to zero for that step).
    pub degraded_quality_delta: f64,
}

impl ServeMetrics {
    /// The run summary as printed by `longsight loadtest` (four lines:
    /// completion counts, throughput, token and request latency).
    pub fn to_text(&self) -> String {
        format!(
            "  completed {} | rejected {} | in flight {}\n  throughput: {:.1} tok/s | mean batch {:.1}\n  token latency  p50 {:.2} ms  p99 {:.2} ms\n  request latency p50 {:.1} ms  p99 {:.1} ms\n",
            self.completed,
            self.rejected,
            self.in_flight,
            self.throughput_tps,
            self.mean_batch,
            self.p50_token_ms,
            self.p99_token_ms,
            self.p50_request_ms,
            self.p99_request_ms,
        )
    }

    /// Every field as a flat JSON object (stable key order).
    pub fn to_json(&self) -> String {
        format!(
            "{{\"completed\":{},\"rejected\":{},\"in_flight\":{},\"throughput_tps\":{},\"p50_token_ms\":{},\"p99_token_ms\":{},\"p50_request_ms\":{},\"p99_request_ms\":{},\"mean_batch\":{},\"retried_tokens\":{},\"degraded_tokens\":{},\"failed_requests\":{},\"degraded_quality_delta\":{}}}",
            self.completed,
            self.rejected,
            self.in_flight,
            fmt_f64(self.throughput_tps),
            fmt_f64(self.p50_token_ms),
            fmt_f64(self.p99_token_ms),
            fmt_f64(self.p50_request_ms),
            fmt_f64(self.p99_request_ms),
            fmt_f64(self.mean_batch),
            self.retried_tokens,
            self.degraded_tokens,
            self.failed_requests,
            fmt_f64(self.degraded_quality_delta),
        )
    }

    /// Parses the output of [`ServeMetrics::to_json`] back into a value.
    ///
    /// Round-trips bit-exactly for finite fields; non-finite floats
    /// serialize as `null` and parse back as `0.0`.
    ///
    /// # Errors
    ///
    /// Returns a message when the text is not valid JSON or a field is
    /// missing or of the wrong type.
    pub fn from_json(text: &str) -> Result<Self, String> {
        use longsight_obs::json::{parse, Value};
        let v = parse(text)?;
        let get_usize = |key: &str| -> Result<usize, String> {
            let f = v
                .get(key)
                .and_then(Value::as_f64)
                .ok_or_else(|| format!("missing or non-numeric field '{key}'"))?;
            Ok(f as usize)
        };
        let get_f64 = |key: &str| -> Result<f64, String> {
            let field = v.get(key).ok_or_else(|| format!("missing field '{key}'"))?;
            match field {
                Value::Null => Ok(0.0), // fmt_f64 writes non-finite as null
                other => other
                    .as_f64()
                    .ok_or_else(|| format!("non-numeric field '{key}'")),
            }
        };
        Ok(Self {
            completed: get_usize("completed")?,
            rejected: get_usize("rejected")?,
            in_flight: get_usize("in_flight")?,
            throughput_tps: get_f64("throughput_tps")?,
            p50_token_ms: get_f64("p50_token_ms")?,
            p99_token_ms: get_f64("p99_token_ms")?,
            p50_request_ms: get_f64("p50_request_ms")?,
            p99_request_ms: get_f64("p99_request_ms")?,
            mean_batch: get_f64("mean_batch")?,
            retried_tokens: get_usize("retried_tokens")?,
            degraded_tokens: get_usize("degraded_tokens")?,
            failed_requests: get_usize("failed_requests")?,
            degraded_quality_delta: get_f64("degraded_quality_delta")?,
        })
    }
}

fn percentile(sorted: &[f64], p: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    let idx = ((sorted.len() - 1) as f64 * p).round() as usize;
    sorted[idx]
}

#[derive(Debug, Clone)]
struct Arrival {
    id: usize,
    arrival_ns: f64,
    context: usize,
    output: usize,
}

/// Runs the closed-loop simulation of `system` under `workload`.
///
/// Admission: an arriving request joins the batch if the system can evaluate
/// the grown batch at the largest member context; otherwise it waits in an
/// unbounded queue (and counts toward request latency). Steps are
/// synchronized across the batch (all users advance one token per step), and
/// contexts are frozen at admission — decode extends them by at most a few
/// hundred tokens, negligible against 64K+ prompts.
pub fn simulate(
    system: &mut dyn ServingSystem,
    model: &ModelConfig,
    workload: &WorkloadConfig,
) -> ServeMetrics {
    sched_impl(
        system,
        model,
        workload,
        &SchedOptions::fifo(),
        None,
        &mut Recorder::disabled(),
        None,
    )
    .0
}

/// [`simulate`] under token-level fault injection.
///
/// Each generated token resolves through the retry/deadline degradation
/// policy ([`crate::degrade::resolve_token`]): sampled offload timeouts cost
/// the full deadline plus backoff, exhausted retries degrade the token to
/// dense window-only attention, and hard faults kill the request. The
/// synchronized batch is paced by its worst token, so a step's latency grows
/// by the largest penalty in the batch.
///
/// Returns the metrics together with the deterministic fault event log —
/// every decision derives from `(inj.seed, request id, token index,
/// attempt)`, so two runs with the same seed produce byte-identical logs and
/// identical metrics at any thread count. With a disabled injector this is
/// exactly [`simulate`] plus an empty log.
pub fn simulate_with_faults(
    system: &mut dyn ServingSystem,
    model: &ModelConfig,
    workload: &WorkloadConfig,
    inj: &FaultInjector,
    retry: &RetryPolicy,
) -> (ServeMetrics, FaultLog) {
    let (m, _, log) = sched_impl(
        system,
        model,
        workload,
        &SchedOptions::fifo(),
        Some((inj, retry)),
        &mut Recorder::disabled(),
        None,
    );
    (m, log)
}

/// [`simulate`] / [`simulate_with_faults`] with observability attached.
///
/// Every decode step emits a `decode.step` span on the `serving` track
/// (with a nested `decode.retry_wait` child when fault penalties stretch
/// the step), the first evaluation of each distinct `(batch, context)`
/// shape records the system's expanded internal timeline at the simulated
/// time it was first needed, every fault event lands on the `faults` track
/// as an instant (1:1 with the returned [`FaultLog`]), scheduling decisions
/// land on the `sched` track as instants, and the run's aggregate
/// counters/latency histograms populate `rec.metrics`. When `attr` is
/// given, each generated token's latency is decomposed into the eight
/// attribution components.
///
/// The simulated timeline is bit-identical to the unobserved entry points:
/// recording only reads simulation state.
pub fn simulate_observed(
    system: &mut dyn ServingSystem,
    model: &ModelConfig,
    workload: &WorkloadConfig,
    faults: Option<(&FaultInjector, &RetryPolicy)>,
    rec: &mut Recorder,
    attr: Option<&mut TokenAttribution>,
) -> (ServeMetrics, FaultLog) {
    let (m, _, log) = sched_impl(
        system,
        model,
        workload,
        &SchedOptions::fifo(),
        faults,
        rec,
        attr,
    );
    (m, log)
}

/// The full serving simulation under an explicit scheduler configuration,
/// returning the per-class [`SchedReport`] alongside the aggregate metrics.
///
/// With `SchedOptions::fifo()` this is exactly [`simulate_observed`]
/// (bit-identical metrics). With an SLO-aware policy, admission allocates
/// HBM window pages and DReX tail pages against the system's
/// [`ServingSystem::kv_geometry`], prefill is chunked (overlapping the
/// memory-bound decode steps), and best-effort requests are preempted to
/// DReX-resident state when higher classes need HBM pages, paying the
/// cheaper of restore-over-CXL or recompute-on-GPU at resume.
pub fn simulate_scheduled(
    system: &mut dyn ServingSystem,
    model: &ModelConfig,
    workload: &WorkloadConfig,
    opts: &SchedOptions,
    faults: Option<(&FaultInjector, &RetryPolicy)>,
    rec: &mut Recorder,
    attr: Option<&mut TokenAttribution>,
) -> (ServeMetrics, SchedReport, FaultLog) {
    sched_impl(system, model, workload, opts, faults, rec, attr)
}

/// Translates scheduler decision events into `sched.*` trace instants.
fn flush_sched_events(sched: &mut Scheduler, rec: &mut Recorder, track: TrackId, at_ns: f64) {
    if !rec.is_enabled() {
        return;
    }
    for ev in sched.take_events() {
        match ev {
            SchedEvent::Admitted { id, class } => rec.instant_with(
                track,
                "sched.admit",
                at_ns,
                &[
                    ("id", ArgVal::U(id as u64)),
                    ("class", ArgVal::S(class.name())),
                ],
            ),
            SchedEvent::Queued { id, class } => rec.instant_with(
                track,
                "sched.queue",
                at_ns,
                &[
                    ("id", ArgVal::U(id as u64)),
                    ("class", ArgVal::S(class.name())),
                ],
            ),
            SchedEvent::Rejected { id, class } => rec.instant_with(
                track,
                "sched.reject",
                at_ns,
                &[
                    ("id", ArgVal::U(id as u64)),
                    ("class", ArgVal::S(class.name())),
                ],
            ),
            SchedEvent::Preempted {
                id,
                class,
                hbm_pages,
            } => rec.instant_with(
                track,
                "sched.preempt",
                at_ns,
                &[
                    ("id", ArgVal::U(id as u64)),
                    ("class", ArgVal::S(class.name())),
                    ("hbm_pages", ArgVal::U(hbm_pages as u64)),
                ],
            ),
            SchedEvent::Resumed {
                id,
                class,
                cost_ns,
                restored,
            } => rec.instant_with(
                track,
                "sched.resume",
                at_ns,
                &[
                    ("id", ArgVal::U(id as u64)),
                    ("class", ArgVal::S(class.name())),
                    ("cost_ns", ArgVal::F(cost_ns)),
                    ("restored", ArgVal::U(restored as u64)),
                ],
            ),
            SchedEvent::Degraded { id, drex_pages } => rec.instant_with(
                track,
                "sched.degrade",
                at_ns,
                &[
                    ("id", ArgVal::U(id as u64)),
                    ("drex_pages", ArgVal::U(drex_pages as u64)),
                ],
            ),
            SchedEvent::Completed {
                id,
                class,
                latency_ms,
            } => rec.instant_with(
                track,
                "sched.complete",
                at_ns,
                &[
                    ("id", ArgVal::U(id as u64)),
                    ("class", ArgVal::S(class.name())),
                    ("latency_ms", ArgVal::F(latency_ms)),
                ],
            ),
            SchedEvent::Failed { id, class } => rec.instant_with(
                track,
                "sched.fail",
                at_ns,
                &[
                    ("id", ArgVal::U(id as u64)),
                    ("class", ArgVal::S(class.name())),
                ],
            ),
        }
    }
}

fn sched_impl(
    system: &mut dyn ServingSystem,
    model: &ModelConfig,
    workload: &WorkloadConfig,
    opts: &SchedOptions,
    faults: Option<(&FaultInjector, &RetryPolicy)>,
    rec: &mut Recorder,
    mut attr: Option<&mut TokenAttribution>,
) -> (ServeMetrics, SchedReport, FaultLog) {
    let faults = faults.filter(|(inj, _)| inj.is_enabled());
    let mut fault_log = FaultLog::new();
    let mut degrade = DegradeStats::default();
    let mut rng = SimRng::seed_from(workload.seed);
    let gpu = GpuSpec::h100_sxm();
    let link = CxlLink::pcie5_x16();

    // Pre-generate arrivals.
    let mut arrivals: Vec<Arrival> = Vec::new();
    let mut t = 0.0f64;
    let horizon_ns = workload.duration_s * 1e9;
    loop {
        let gap = -((1.0 - rng.uniform()).ln()) / workload.arrivals_per_s * 1e9;
        t += gap;
        if t >= horizon_ns {
            break;
        }
        let (c0, c1) = workload.context_tokens;
        let (o0, o1) = workload.output_tokens;
        let context = c0 + rng.below((c1 - c0).max(1));
        let output = o0 + rng.below((o1 - o0).max(1));
        arrivals.push(Arrival {
            id: arrivals.len(),
            arrival_ns: t,
            context,
            output,
        });
    }
    let total_arrived = arrivals.len();
    // SLO classes draw from their own stream: the arrival process above is
    // identical for every mix (and for the legacy single-class runs).
    let mut class_rng = SimRng::seed_from(workload.seed ^ CLASS_SEED);
    let mut classes: Vec<longsight_sched::SloClass> = arrivals
        .iter()
        .map(|_| opts.mix.classify(class_rng.uniform()))
        .collect();
    // Each request's prefill cost depends only on its own context length, so
    // the per-user costs compute up front on the deterministic parallel map
    // (bit-identical to calling `prefill_cost` at admission time).
    let mut prefill_ns: Vec<f64> = longsight_exec::deterministic_map(&arrivals, |_, a| {
        prefill_cost(&gpu, &link, model, a.context, 1024).total_ns
    });
    arrivals.reverse(); // pop from the back in time order
    prefill_ns.reverse();
    classes.reverse();

    // The paged-KV surface: how this system's devices map contexts onto HBM
    // window pages and DReX tail pages. Systems without page accounting get
    // an unbounded ledger (admission degenerates to step feasibility).
    let geometry = system
        .kv_geometry(opts.page_tokens)
        .unwrap_or(KvDeviceGeometry {
            page_tokens: opts.page_tokens.max(1),
            window_tokens: usize::MAX,
            hbm_capacity_pages: usize::MAX / 4,
            drex_capacity_pages: usize::MAX / 4,
            restore_ns_per_page: 0.0,
            recompute_ns_per_token: 0.0,
        });
    let page_cfg = geometry.page_config(opts.hbm_watermark);
    let sched_cfg = match opts.policy {
        SchedPolicy::Fifo => SchedConfig::fifo(page_cfg, geometry.window_tokens),
        SchedPolicy::SloAware => {
            SchedConfig::slo_aware(page_cfg, geometry.window_tokens, opts.prefill_chunk_tokens)
        }
    };
    let mut sched = Scheduler::new(sched_cfg);
    sched.set_event_recording(rec.is_enabled());

    let mut now = 0.0f64;
    let mut step_times: Vec<(f64, usize)> = Vec::new();
    let mut request_latencies: Vec<f64> = Vec::new();
    let mut generated_tokens = 0usize;
    let serving_track = rec.track("serving");
    let faults_track = rec.track("faults");
    let sched_track = rec.track("sched");
    let mut fault_cursor = 0usize;
    // Step-cost cache keyed by (batch, context bucket). The first (and
    // only) evaluation of each shape also records the system's expanded
    // step timeline, anchored at the simulated time it was first needed.
    let mut cache: Vec<((usize, usize), Option<StepReport>)> = Vec::new();

    let mut step_cost = |sys: &mut dyn ServingSystem,
                         users: usize,
                         ctx: usize,
                         rec: &mut Recorder,
                         at_ns: f64|
     -> Option<StepReport> {
        let bucket = ctx.next_power_of_two();
        if let Some(&(_, v)) = cache.iter().find(|&&(k, _)| k == (users, bucket)) {
            return v;
        }
        let v = sys.evaluate(users, bucket).ok();
        if v.is_some() {
            sys.record_step_detail(users, bucket, rec, at_ns);
        }
        cache.push(((users, bucket), v));
        v
    };

    loop {
        // Admission and queue drain are the scheduler's decisions; the step
        // model only answers feasibility. (FIFO issues the exact legacy
        // sequence of feasibility probes, so the step-detail anchors in the
        // trace are unchanged.)
        {
            let mut feas = |users: usize, ctx: usize| -> bool {
                step_cost(system, users, ctx, rec, now).is_some()
            };
            while arrivals.last().is_some_and(|a| a.arrival_ns <= now) {
                let a = arrivals.pop().expect("checked");
                let pf_ns = prefill_ns.pop().expect("paired with arrivals");
                let class = classes.pop().expect("paired with arrivals");
                let req = SchedRequest {
                    id: a.id,
                    class,
                    arrival_ns: a.arrival_ns,
                    context: a.context,
                    output: a.output,
                    prefill_ns: pf_ns,
                    restore_ns: geometry.restore_ns(a.context),
                    recompute_ns: geometry.recompute_ns(a.context),
                };
                sched.on_arrival(req, &mut feas);
            }
            sched.drain_queue(&mut feas);
        }
        flush_sched_events(&mut sched, rec, sched_track, now);

        if sched.active_is_empty() {
            match arrivals.last() {
                Some(a) => {
                    now = a.arrival_ns;
                    continue;
                }
                None => break,
            }
        }

        // One synchronized step: the decoding members advance one token;
        // chunked prefill shares the step (SLO-aware only).
        let plan = sched.plan_step();
        let report = if plan.decode_users > 0 {
            Some(
                step_cost(system, plan.decode_users, plan.max_decode_ctx, rec, now)
                    .expect("a decode subset of an admitted batch must evaluate"),
            )
        } else {
            None
        };
        let base_dt = report.map_or(0.0, |r| r.step_ns);
        // Chunked prefill hides inside the memory-bound decode step; only a
        // pure-prefill step pays chunk time alone. FIFO plans no chunks, so
        // `work_dt == base_dt` exactly.
        let work_dt = base_dt.max(plan.prefill_ns);
        let mut dt = work_dt;
        let step_start = now;
        let mut batch_died = false;
        if let Some((inj, retry)) = faults {
            // Resolve every decoding member's token through the degradation
            // policy. The batch is synchronized, so the worst member's
            // retry/backoff penalty paces the whole step; hard-failed
            // requests leave the batch without emitting this token.
            let mut max_penalty = 0.0f64;
            let mut dead: Vec<usize> = Vec::new();
            let mut degraded_ids: Vec<usize> = Vec::new();
            for r in sched.active() {
                if !r.in_decode {
                    continue;
                }
                let (outcome, penalty) = resolve_token(
                    inj,
                    retry,
                    r.req.id as u64,
                    r.generated as u64,
                    &mut fault_log,
                );
                degrade.record(outcome);
                match outcome {
                    TokenOutcome::Failed => dead.push(r.req.id),
                    TokenOutcome::Degraded => {
                        degraded_ids.push(r.req.id);
                        max_penalty = max_penalty.max(penalty);
                    }
                    TokenOutcome::Completed { .. } => max_penalty = max_penalty.max(penalty),
                }
            }
            // Replay this step's fault events onto the trace (1:1 with the
            // log) at the step's start time.
            fault_cursor += fault_log.record_tail_into(fault_cursor, rec, faults_track, step_start);
            sched.remove_failed(&dead);
            // A degraded request lost its long-range path: its DReX tail
            // pages come back to the pool.
            for id in degraded_ids {
                sched.on_degraded(id);
            }
            dt += max_penalty;
            batch_died = sched.active_is_empty();
        }
        if rec.is_enabled() {
            if plan.decode_users > 0 {
                let span = rec.open_with(
                    serving_track,
                    "decode.step",
                    step_start,
                    &[
                        ("users", ArgVal::U(plan.users as u64)),
                        ("ctx", ArgVal::U(plan.max_decode_ctx as u64)),
                    ],
                );
                if dt > work_dt {
                    // The worst token's deadline overrun paces the batch.
                    rec.leaf_with(
                        serving_track,
                        "decode.retry_wait",
                        step_start + work_dt,
                        step_start + dt,
                        &[("penalty_ns", ArgVal::F(dt - work_dt))],
                    );
                }
                rec.close(span, step_start + dt);
            } else {
                rec.leaf_with(
                    serving_track,
                    "prefill.step",
                    step_start,
                    step_start + dt,
                    &[
                        ("users", ArgVal::U(plan.prefill_users as u64)),
                        ("prefill_ns", ArgVal::F(plan.prefill_ns)),
                    ],
                );
            }
        }
        now += dt;
        if batch_died {
            flush_sched_events(&mut sched, rec, sched_track, now);
            continue;
        }
        if now > 4.0 * horizon_ns {
            break; // overload guard: stop accounting far past the window
        }
        let decoding = sched.decoding_count();
        if decoding > 0 {
            step_times.push((dt, decoding));
            if let (Some(a), Some(r)) = (attr.as_deref_mut(), report.as_ref()) {
                a.record_step(attribution_parts(r, dt), dt, decoding.min(64));
            }
            generated_tokens += decoding;
        }
        for c in sched.advance_step(dt, now) {
            request_latencies.push(c.latency_ms);
        }
        flush_sched_events(&mut sched, rec, sched_track, now);
    }

    let mut token_lat: Vec<f64> = Vec::new();
    for &(dt, users) in &step_times {
        for _ in 0..users.min(64) {
            token_lat.push(dt / 1e6);
        }
    }
    token_lat.sort_by(f64::total_cmp);
    request_latencies.sort_by(f64::total_cmp);

    let span_s = (now.max(1.0)) / 1e9;
    let metrics = ServeMetrics {
        completed: request_latencies.len(),
        rejected: sched.rejected(),
        in_flight: total_arrived
            - request_latencies.len()
            - sched.rejected()
            - sched.waiting_len()
            - degrade.failed_requests,
        throughput_tps: generated_tokens as f64 / span_s,
        p50_token_ms: percentile(&token_lat, 0.5),
        p99_token_ms: percentile(&token_lat, 0.99),
        p50_request_ms: percentile(&request_latencies, 0.5),
        p99_request_ms: percentile(&request_latencies, 0.99),
        mean_batch: if step_times.is_empty() {
            0.0
        } else {
            step_times.iter().map(|&(_, u)| u as f64).sum::<f64>() / step_times.len() as f64
        },
        retried_tokens: degrade.retried_tokens,
        degraded_tokens: degrade.degraded_tokens,
        failed_requests: degrade.failed_requests,
        degraded_quality_delta: if generated_tokens == 0 {
            0.0
        } else {
            degrade.degraded_tokens as f64 / generated_tokens as f64
        },
    };
    let sched_report = sched.finalize();
    if rec.is_enabled() {
        for &t in &token_lat {
            rec.observe("serving.token_latency_ms", t);
        }
        for &r in &request_latencies {
            rec.observe("serving.request_latency_ms", r);
        }
        rec.counter_add("serving.completed", metrics.completed as u64);
        rec.counter_add("serving.rejected", metrics.rejected as u64);
        rec.counter_add("serving.generated_tokens", generated_tokens as u64);
        rec.counter_add("serving.retried_tokens", metrics.retried_tokens as u64);
        rec.counter_add("serving.degraded_tokens", metrics.degraded_tokens as u64);
        rec.counter_add("serving.failed_requests", metrics.failed_requests as u64);
        rec.counter_add("serving.fault_events", fault_log.len() as u64);
        rec.gauge_set("serving.throughput_tps", metrics.throughput_tps);
        rec.gauge_set("serving.mean_batch", metrics.mean_batch);
        rec.gauge_set("serving.p50_token_ms", metrics.p50_token_ms);
        rec.gauge_set("serving.p99_token_ms", metrics.p99_token_ms);
        rec.counter_add("sched.preemptions", sched_report.preemptions as u64);
        rec.counter_add("sched.resumes", sched_report.resumes as u64);
        rec.counter_add("sched.prefill_chunks", sched_report.prefill_chunks as u64);
        rec.gauge_set("sched.peak_hbm_pages", sched_report.pages.peak_hbm as f64);
        rec.gauge_set("sched.peak_drex_pages", sched_report.pages.peak_drex as f64);
    }
    (metrics, sched_report, fault_log)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::longsight::{LongSightConfig, LongSightSystem};

    fn run(arrivals_per_s: f64, seed: u64) -> ServeMetrics {
        let model = ModelConfig::llama3_1b();
        let mut sys = LongSightSystem::new(LongSightConfig::paper_default(), model.clone());
        let wl = WorkloadConfig {
            arrivals_per_s,
            context_tokens: (32_768, 65_536),
            output_tokens: (16, 64),
            duration_s: 5.0,
            seed,
        };
        simulate(&mut sys, &model, &wl)
    }

    #[test]
    fn deterministic_given_seed() {
        assert_eq!(run(2.0, 3), run(2.0, 3));
    }

    #[test]
    fn completes_requests_at_moderate_load() {
        let m = run(2.0, 1);
        assert!(m.completed > 0, "some requests must finish: {m:?}");
        assert!(m.p99_token_ms >= m.p50_token_ms);
        assert!(m.p99_request_ms >= m.p50_request_ms);
        assert!(m.throughput_tps > 0.0);
    }

    #[test]
    fn higher_load_means_bigger_batches_and_latency() {
        let low = run(1.0, 5);
        let high = run(16.0, 5);
        assert!(
            high.mean_batch > low.mean_batch,
            "more arrivals must grow the batch: {} vs {}",
            low.mean_batch,
            high.mean_batch
        );
        assert!(
            high.p50_token_ms >= low.p50_token_ms,
            "token latency should not shrink under load"
        );
    }

    #[test]
    fn disabled_injector_matches_fault_free_simulate() {
        let model = ModelConfig::llama3_1b();
        let mut sys = LongSightSystem::new(LongSightConfig::paper_default(), model.clone());
        let wl = WorkloadConfig {
            arrivals_per_s: 2.0,
            context_tokens: (32_768, 65_536),
            output_tokens: (16, 64),
            duration_s: 5.0,
            seed: 3,
        };
        let plain = simulate(&mut sys, &model, &wl);
        let (faulted, log) = simulate_with_faults(
            &mut sys,
            &model,
            &wl,
            &FaultInjector::disabled(),
            &RetryPolicy::serving_default(),
        );
        assert_eq!(plain, faulted);
        assert!(log.is_empty());
        assert_eq!(plain.degraded_tokens, 0);
        assert_eq!(plain.degraded_quality_delta, 0.0);
    }

    #[test]
    fn injected_timeouts_degrade_and_slow_the_run() {
        use longsight_faults::{FaultKind, FaultProfile};
        let model = ModelConfig::llama3_1b();
        let mut sys = LongSightSystem::new(LongSightConfig::paper_default(), model.clone());
        let wl = WorkloadConfig {
            arrivals_per_s: 2.0,
            context_tokens: (32_768, 65_536),
            output_tokens: (16, 64),
            duration_s: 5.0,
            seed: 3,
        };
        let plain = simulate(&mut sys, &model, &wl);
        let inj = FaultInjector::new(
            FaultProfile {
                timeout_rate: 0.3,
                ..FaultProfile::disabled()
            },
            7,
        );
        let retry = RetryPolicy::serving_default();
        let (m, log) = simulate_with_faults(&mut sys, &model, &wl, &inj, &retry);
        assert!(
            m.retried_tokens > 0,
            "30% timeouts must force retries: {m:?}"
        );
        // Degraded tokens in the metrics must equal Degraded events in the
        // log, and each one came from max_retries+1 logged timeouts.
        assert_eq!(
            m.degraded_tokens,
            log.count_matching(|k| matches!(k, FaultKind::Degraded))
        );
        let timeouts = log.count_matching(|k| matches!(k, FaultKind::Timeout { .. }));
        assert!(timeouts >= m.degraded_tokens * (retry.max_retries as usize + 1));
        assert!(
            m.p50_token_ms >= plain.p50_token_ms,
            "deadline penalties cannot make tokens faster"
        );
        assert!(m.throughput_tps <= plain.throughput_tps);
        // Determinism: same seed, same timeline.
        let (m2, log2) = simulate_with_faults(&mut sys, &model, &wl, &inj, &retry);
        assert_eq!(m, m2);
        assert_eq!(log.to_text(), log2.to_text());
    }

    #[test]
    fn hard_faults_kill_requests() {
        use longsight_faults::FaultProfile;
        let model = ModelConfig::llama3_1b();
        let mut sys = LongSightSystem::new(LongSightConfig::paper_default(), model.clone());
        let wl = WorkloadConfig {
            arrivals_per_s: 4.0,
            context_tokens: (32_768, 65_536),
            output_tokens: (32, 128),
            duration_s: 5.0,
            seed: 5,
        };
        let inj = FaultInjector::new(
            FaultProfile {
                hard_fail_rate: 0.02,
                ..FaultProfile::disabled()
            },
            13,
        );
        let (m, _) =
            simulate_with_faults(&mut sys, &model, &wl, &inj, &RetryPolicy::serving_default());
        assert!(m.failed_requests > 0, "2% per-token hard faults: {m:?}");
        let plain = simulate(&mut sys, &model, &wl);
        assert!(m.completed < plain.completed + m.failed_requests + 1);
    }

    #[test]
    fn request_latency_includes_prefill() {
        let m = run(0.5, 9);
        // A 32K-prompt prefill alone is ~0.1+ ms on the roofline; with decode
        // of ≥16 tokens the p50 request latency must exceed several ms.
        assert!(
            m.p50_request_ms > 1.0,
            "suspiciously low request latency: {m:?}"
        );
    }

    #[test]
    fn metrics_json_round_trips_bit_exactly() {
        let m = run(2.0, 3);
        let parsed = ServeMetrics::from_json(&m.to_json()).expect("own JSON must parse");
        assert_eq!(m, parsed);
    }

    #[test]
    fn metrics_json_round_trips_non_finite_as_zero() {
        let mut m = run(2.0, 3);
        m.throughput_tps = f64::NAN;
        m.mean_batch = f64::INFINITY;
        let parsed = ServeMetrics::from_json(&m.to_json()).expect("nulls must parse");
        assert_eq!(parsed.throughput_tps, 0.0);
        assert_eq!(parsed.mean_batch, 0.0);
        assert_eq!(parsed.completed, m.completed);
    }

    #[test]
    fn from_json_rejects_missing_fields() {
        assert!(ServeMetrics::from_json("{\"completed\":1}").is_err());
        assert!(ServeMetrics::from_json("not json").is_err());
    }
}
