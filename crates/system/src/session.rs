//! Multi-turn session workload model.
//!
//! A session is one user holding a conversation: an opening turn with a
//! fresh prompt, then follow-up turns that arrive after a think-time gap
//! and *extend* the prior context (everything the model already saw plus
//! the answer it produced plus a short new user message). The KV state of
//! the shared prefix is what the content-keyed prefix cache in
//! `longsight-sched` deduplicates: a follow-up that resumes on a replica
//! still holding the prefix pays prefill only for the suffix, and one that
//! resumes elsewhere can pull the pages over the pooled-DReX fabric
//! instead of recomputing (see `simulate_fleet_sessions`).
//!
//! Determinism follows the same stream discipline as the Poisson
//! generator: every session owns a private RNG stream keyed off
//! `workload.seed ^ SESSION_SEED` mixed with the session index, and the
//! reuse draws live on a *separate* stream per session — sweeping the
//! reuse rate never shifts an arrival time, context length, or class, so
//! curves across reuse values compare identical offered load. Generation
//! is a pure function of `(seed, options)`, byte-identical at any worker
//! thread count.

use crate::prefill::prefill_cost;
use crate::serving::{Arrival, WorkloadConfig};
use longsight_cxl::CxlLink;
use longsight_gpu::GpuSpec;
use longsight_model::ModelConfig;
use longsight_sched::{SloClass, SloMix};
use longsight_tensor::SimRng;

/// XOR'd into the workload seed for the per-session streams, so session
/// traffic never perturbs the Poisson arrival stream (sessions-off runs
/// stay bit-exact).
const SESSION_SEED: u64 = 0x7365_7373; // "sess"

/// Stream key of the per-session reuse draws (separate from the shape
/// stream: sweeping `reuse` keeps every arrival byte-identical).
const REUSE_SEED: u64 = 0x7265_7573; // "reus"

/// Stream key of the prefix-hash chain.
const PREFIX_SEED: u64 = 0x7066_6978; // "pfix"

/// Session workload knobs for `simulate_fleet_sessions`. The
/// [`SessionOptions::disabled`] value makes that entry point delegate to
/// the plain fleet driver, byte-identical to a sessionless run.
#[derive(Debug, Clone, PartialEq)]
pub struct SessionOptions {
    /// Concurrent sessions (0 disables the session workload).
    pub sessions: usize,
    /// Turns per session (the opening turn included).
    pub turns: usize,
    /// Mean think time between a turn's arrival and the next, ms
    /// (exponentially distributed).
    pub think_time_ms: f64,
    /// Probability that a follow-up turn can reuse its session's cached
    /// prefix (a non-reusable turn models the user editing earlier
    /// context, which invalidates the content key).
    pub reuse: f64,
    /// Per-replica prefix-cache carve-out in pages (0 = cache off — the
    /// cold-routing baseline: every follow-up pays full re-prefill).
    pub prefix_cache_pages: usize,
}

impl SessionOptions {
    /// No session workload: `simulate_fleet_sessions` runs the plain
    /// fleet driver byte-for-byte.
    pub fn disabled() -> Self {
        Self {
            sessions: 0,
            turns: 0,
            think_time_ms: 0.0,
            reuse: 0.0,
            prefix_cache_pages: 0,
        }
    }

    /// Whether a session workload is armed.
    pub fn is_active(&self) -> bool {
        self.sessions > 0
    }
}

impl Default for SessionOptions {
    fn default() -> Self {
        Self::disabled()
    }
}

/// Session bookkeeping attached to one turn arrival, paired 1:1 with the
/// `Arrival` vector.
#[derive(Debug, Clone)]
pub(crate) struct TurnInfo {
    /// Session index.
    pub(crate) session: usize,
    /// Turn index within the session (0 = opening turn).
    pub(crate) turn: usize,
    /// Content key of the prefix this turn can reuse (`None` for opening
    /// turns and non-reusable follow-ups).
    pub(crate) pin_hash: Option<u64>,
    /// Prompt tokens covered by `pin_hash` — the prefill work a cache hit
    /// skips. Strictly less than the turn's context (the new user message
    /// is always a suffix).
    pub(crate) prefix_tokens: usize,
    /// Content key this turn publishes on completion (its full context
    /// plus its own output — the prefix of the next turn).
    pub(crate) publish_hash: u64,
    /// Tokens covered by `publish_hash`.
    pub(crate) publish_tokens: usize,
}

fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = x;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Pre-generates the session workload: every turn of every session,
/// flattened and sorted by arrival time, with ids assigned in arrival
/// order (the fleet audit requires it). Prefill costs compute on the
/// deterministic parallel map exactly like the Poisson generator's.
/// Vectors come back reversed — pop from the back in time order.
pub(crate) fn gen_session_turns(
    model: &ModelConfig,
    workload: &WorkloadConfig,
    mix: &SloMix,
    sess: &SessionOptions,
) -> (Vec<Arrival>, Vec<SloClass>, Vec<f64>, Vec<TurnInfo>) {
    struct RawTurn {
        arrival_ns: f64,
        context: usize,
        output: usize,
        class: SloClass,
        info: TurnInfo,
    }
    let horizon_ns = workload.duration_s * 1e9;
    let mut raw: Vec<RawTurn> = Vec::with_capacity(sess.sessions * sess.turns.max(1));
    for s in 0..sess.sessions {
        let base = splitmix64(
            workload.seed ^ SESSION_SEED ^ (s as u64).wrapping_mul(0xd6e8_feb8_6659_fd93),
        );
        let mut rng = SimRng::seed_from(base);
        let mut reuse_rng = SimRng::seed_from(splitmix64(base ^ REUSE_SEED));
        // One class per session: a conversation keeps its SLO class.
        let class = mix.classify(rng.uniform());
        // Opening turns spread over the first half of the window, leaving
        // room for follow-ups to land inside it.
        let mut t = rng.uniform() * horizon_ns * 0.5;
        let (c0, c1) = workload.context_tokens;
        let (o0, o1) = workload.output_tokens;
        let mut context = c0 + rng.below((c1 - c0).max(1));
        let mut output = o0 + rng.below((o1 - o0).max(1));
        let mut hash = splitmix64(base ^ PREFIX_SEED);
        for k in 0..sess.turns.max(1) {
            let (pin_hash, prefix_tokens) = if k == 0 {
                (None, 0)
            } else {
                // Think-time gap, then the turn extends the prior state by
                // a short user message. The reuse draw lives on its own
                // stream so arrival shapes are identical across rates.
                t += -((1.0 - rng.uniform()).ln()) * sess.think_time_ms * 1e6;
                let prev_state = context + output;
                let prev_hash = hash;
                let ext = 64 + rng.below(193);
                let reusable = reuse_rng.uniform() < sess.reuse;
                context = prev_state + ext;
                output = o0 + rng.below((o1 - o0).max(1));
                hash = splitmix64(hash ^ (k as u64).wrapping_mul(0x2545_f491_4f6c_dd1d));
                (reusable.then_some(prev_hash), prev_state)
            };
            if t >= 2.0 * horizon_ns {
                break; // drop turns that would only land in the overload guard
            }
            raw.push(RawTurn {
                arrival_ns: t,
                context,
                output,
                class,
                info: TurnInfo {
                    session: s,
                    turn: k,
                    pin_hash,
                    prefix_tokens,
                    publish_hash: hash,
                    publish_tokens: context + output,
                },
            });
        }
    }
    raw.sort_by(|a, b| {
        a.arrival_ns
            .total_cmp(&b.arrival_ns)
            .then(a.info.session.cmp(&b.info.session))
            .then(a.info.turn.cmp(&b.info.turn))
    });
    let mut arrivals: Vec<Arrival> = Vec::with_capacity(raw.len());
    let mut classes: Vec<SloClass> = Vec::with_capacity(raw.len());
    let mut infos: Vec<TurnInfo> = Vec::with_capacity(raw.len());
    for (id, rt) in raw.into_iter().enumerate() {
        arrivals.push(Arrival {
            id,
            arrival_ns: rt.arrival_ns,
            context: rt.context,
            output: rt.output,
        });
        classes.push(rt.class);
        infos.push(rt.info);
    }
    let gpu = GpuSpec::h100_sxm();
    let link = CxlLink::pcie5_x16();
    let mut prefill_ns: Vec<f64> = longsight_exec::deterministic_map(&arrivals, |_, a| {
        prefill_cost(&gpu, &link, model, a.context, 1024).total_ns
    });
    arrivals.reverse(); // pop from the back in time order
    classes.reverse();
    prefill_ns.reverse();
    infos.reverse();
    (arrivals, classes, prefill_ns, infos)
}
