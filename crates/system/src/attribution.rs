//! Per-token latency attribution: where each generated token's latency
//! went, across the whole serving run.
//!
//! The serving simulation knows, for every synchronized decode step, both
//! the step's total duration and its internal breakdown (window attention,
//! weight streaming, merge, the offload pipeline phases, and any fault
//! retry penalty). This module folds those per-step breakdowns into
//! per-component sample populations weighted exactly like the token-latency
//! percentiles in [`crate::serving::ServeMetrics`], so the attribution
//! table's *total* row reproduces the run's reported p50/p99 byte-for-byte
//! and the mean column sums to the mean token latency.

use crate::report::StepReport;

/// Names of the eight attribution components, in table order.
pub const COMPONENT_NAMES: [&str; 8] = [
    "window", "weights", "merge", "filter", "score", "queue", "link", "retry",
];

/// Splits one step's latency into the eight attribution components, ns.
///
/// The first seven come from the step report (GPU breakdown plus the
/// offload phase split when the system provides one; systems without phase
/// attribution lump device time into `score` and transfer time into
/// `link`). The `retry` component is the fault penalty this step paid on
/// top of the fault-free cost.
pub fn attribution_parts(report: &StepReport, dt_ns: f64) -> [f64; 8] {
    let b = report.breakdown;
    let (filter, score, queue, link) = match report.offload {
        Some(o) => (o.filter_ns, o.score_ns, o.queue_ns, o.link_ns),
        None => (0.0, b.drex_offload_ns, 0.0, b.cxl_ns),
    };
    [
        b.gpu_attention_ns,
        b.gpu_weights_ns,
        b.gpu_merge_ns,
        filter,
        score,
        queue,
        link,
        (dt_ns - report.step_ns).max(0.0),
    ]
}

/// Same nearest-rank percentile the serving metrics use.
fn percentile(sorted: &[f64], p: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    let idx = ((sorted.len() - 1) as f64 * p).round() as usize;
    sorted[idx]
}

/// Per-token latency attribution collected across a serving run.
///
/// One sample per generated token (batch size capped at 64 per step, the
/// same cap [`crate::serving::ServeMetrics`] applies to its token-latency
/// percentiles), per component, in milliseconds. The `total` population
/// stores each token's full step latency directly — not the component sum
/// — so its percentiles are bit-identical to the run's reported token
/// latency.
#[derive(Debug, Clone, Default)]
pub struct TokenAttribution {
    samples: [Vec<f64>; 8],
    totals: Vec<f64>,
}

impl TokenAttribution {
    /// An empty collector.
    pub fn new() -> Self {
        Self::default()
    }

    /// Folds one decode step in: `parts` are the per-token component
    /// shares in ns (from [`attribution_parts`]), `dt_ns` the step's total
    /// latency, and `weight` the number of token samples the step
    /// contributes.
    pub fn record_step(&mut self, parts: [f64; 8], dt_ns: f64, weight: usize) {
        for _ in 0..weight {
            for (c, &p) in parts.iter().enumerate() {
                self.samples[c].push(p / 1e6);
            }
            self.totals.push(dt_ns / 1e6);
        }
    }

    /// Number of token samples collected.
    pub fn len(&self) -> usize {
        self.totals.len()
    }

    /// True when no steps were recorded.
    pub fn is_empty(&self) -> bool {
        self.totals.is_empty()
    }

    /// `(mean, p50, p99)` of one component's population, ms.
    pub fn component_stats(&self, c: usize) -> (f64, f64, f64) {
        Self::stats_of(&self.samples[c])
    }

    /// `(mean, p50, p99)` of the total token latency, ms. The percentiles
    /// here equal `ServeMetrics::{p50,p99}_token_ms` of the same run.
    pub fn total_stats(&self) -> (f64, f64, f64) {
        Self::stats_of(&self.totals)
    }

    fn stats_of(samples: &[f64]) -> (f64, f64, f64) {
        if samples.is_empty() {
            return (0.0, 0.0, 0.0);
        }
        let mean = samples.iter().sum::<f64>() / samples.len() as f64;
        let mut sorted = samples.to_vec();
        sorted.sort_by(f64::total_cmp);
        (mean, percentile(&sorted, 0.5), percentile(&sorted, 0.99))
    }

    /// The attribution table: one row per component plus a total row.
    pub fn to_table(&self) -> String {
        let mut out = String::from("  component      mean ms    p50 ms    p99 ms\n");
        for (c, name) in COMPONENT_NAMES.iter().enumerate() {
            let (mean, p50, p99) = self.component_stats(c);
            out.push_str(&format!("  {name:<12} {mean:>9.4} {p50:>9.4} {p99:>9.4}\n"));
        }
        let (mean, p50, p99) = self.total_stats();
        out.push_str(&format!(
            "  {:<12} {mean:>9.4} {p50:>9.4} {p99:>9.4}\n",
            "total"
        ));
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::report::{OffloadComponents, StepBreakdown, StepReport};

    fn report() -> StepReport {
        StepReport::from_breakdown(
            4,
            1024,
            StepBreakdown {
                gpu_weights_ns: 1e6,
                gpu_attention_ns: 2e6,
                gpu_merge_ns: 0.5e6,
                drex_offload_ns: 0.7e6,
                cxl_ns: 0.3e6,
            },
        )
        .with_offload(OffloadComponents {
            filter_ns: 0.1e6,
            score_ns: 0.5e6,
            queue_ns: 0.1e6,
            link_ns: 0.3e6,
        })
    }

    #[test]
    fn parts_sum_to_step_plus_penalty() {
        let r = report();
        let parts = attribution_parts(&r, r.step_ns + 1e6);
        let sum: f64 = parts.iter().sum();
        assert!((sum - (r.step_ns + 1e6)).abs() < 1e-6);
        assert!((parts[7] - 1e6).abs() < 1e-9, "retry absorbs the penalty");
    }

    #[test]
    fn without_offload_detail_device_time_lumps_into_score_and_link() {
        let mut r = report();
        r.offload = None;
        let parts = attribution_parts(&r, r.step_ns);
        assert_eq!(parts[3], 0.0);
        assert_eq!(parts[4], r.breakdown.drex_offload_ns);
        assert_eq!(parts[6], r.breakdown.cxl_ns);
    }

    #[test]
    fn total_percentiles_track_recorded_steps() {
        let r = report();
        let mut a = TokenAttribution::new();
        a.record_step(attribution_parts(&r, r.step_ns), r.step_ns, 3);
        a.record_step(attribution_parts(&r, 2.0 * r.step_ns), 2.0 * r.step_ns, 1);
        assert_eq!(a.len(), 4);
        let (_, p50, p99) = a.total_stats();
        assert!((p50 - r.step_ns / 1e6).abs() < 1e-12);
        assert!((p99 - 2.0 * r.step_ns / 1e6).abs() < 1e-12);
        // Mean column sums to the total mean (component sums are exact
        // per-sample decompositions of dt).
        let comp_mean: f64 = (0..8).map(|c| a.component_stats(c).0).sum();
        let (total_mean, _, _) = a.total_stats();
        assert!((comp_mean - total_mean).abs() < 1e-9 * total_mean.max(1.0));
        let table = a.to_table();
        assert!(table.contains("window"));
        assert!(table.lines().count() == 10, "header + 8 components + total");
    }
}
