//! Per-token latency attribution: where each generated token's latency
//! went, across the whole serving run.
//!
//! The serving simulation knows, for every synchronized decode step, both
//! the step's total duration and its internal breakdown (window attention,
//! weight streaming, merge, the offload pipeline phases, any fault retry
//! penalty, and — with the lookahead pipeline on — the speculation miss
//! charge). This module folds those per-step breakdowns into per-component
//! sample populations weighted exactly like the token-latency percentiles
//! in [`crate::serving::ServeMetrics`], so the attribution table's *total*
//! row reproduces the run's reported p50/p99 byte-for-byte and the mean
//! column sums to the mean token latency.
//!
//! With lookahead on, two extra components appear: `spec_miss` — the time
//! a step paid because its speculation did not cover it (the serialized
//! wait a miss or slot denial re-exposes, plus the re-filter penalty on a
//! true miss) — and `overlap_hidden`, the portion of the offload chain
//! that speculation hid behind GPU compute. `overlap_hidden` is
//! informational: it does not contribute to the token's latency, so the
//! per-token decomposition identity covers every component *except* it,
//! while `overlap_hidden + visible + spec_miss` reconstructs the
//! unoverlapped chain exactly (see [`SpecSample`]).

use crate::report::{SpecStep, StepReport};

/// Names of the attribution components, in table order. The first eight
/// are always populated; `spec_miss` and `overlap_hidden` only with the
/// lookahead pipeline on (their rows are omitted from the table otherwise).
pub const COMPONENT_NAMES: [&str; 10] = [
    "window",
    "weights",
    "merge",
    "filter",
    "score",
    "queue",
    "link",
    "retry",
    "spec_miss",
    "overlap_hidden",
];

/// Index of the `spec_miss` component.
pub const SPEC_MISS: usize = 8;
/// Index of the `overlap_hidden` component (excluded from the dt identity).
pub const OVERLAP_HIDDEN: usize = 9;

/// How the serving loop resolved one speculated decode step.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SpecCharge {
    /// Every issued chain landed: the step ran the hit path.
    Hit,
    /// At least one member's speculation was stale or voided by a fault:
    /// the step ran the synchronous path plus the re-filter penalty.
    Miss,
    /// Slot backpressure denied at least one issue (and nothing missed):
    /// the step ran the synchronous path, no penalty.
    Denied,
}

/// Splits one step's latency into the attribution components, ns.
///
/// The GPU and offload components come from the step report (systems
/// without phase attribution lump device time into `score` and transfer
/// time into `link`). The `retry` component is the fault penalty this step
/// paid on top of its expected cost. For speculated steps (`spec` set and
/// the report carrying a [`SpecStep`]), `spec_miss` absorbs the serialized
/// wait that a miss or denial re-exposed (plus the re-filter penalty on a
/// miss) and `overlap_hidden` reports the chain time hidden behind
/// compute. Components `0..OVERLAP_HIDDEN` sum to `dt_ns` exactly;
/// `overlap_hidden` sits outside the identity.
pub fn attribution_parts(report: &StepReport, dt_ns: f64, spec: Option<SpecCharge>) -> [f64; 10] {
    let b = report.breakdown;
    let (filter, score, queue, link) = match report.offload {
        Some(o) => (o.filter_ns, o.score_ns, o.queue_ns, o.link_ns),
        None => (0.0, b.drex_offload_ns, 0.0, b.cxl_ns),
    };
    let (spec_miss, overlap_hidden, expected) = match (spec, report.spec) {
        (Some(charge), Some(s)) => spec_components(&s, charge, report.step_ns),
        _ => (0.0, 0.0, report.step_ns),
    };
    [
        b.gpu_attention_ns,
        b.gpu_weights_ns,
        b.gpu_merge_ns,
        filter,
        score,
        queue,
        link,
        (dt_ns - expected).max(0.0),
        spec_miss,
        overlap_hidden,
    ]
}

/// `(spec_miss, overlap_hidden, expected_dt)` for one resolved step.
///
/// The identities these satisfy, all by exact construction (the same
/// subtractions [`SpecSample`] pins bit-for-bit):
///
/// * hit: `overlap_hidden = chain − hit_visible`, `spec_miss = 0`;
/// * miss: `overlap_hidden = chain − serial_visible`,
///   `spec_miss = (serial_visible − hit_visible) + penalty`;
/// * denied: as miss, without the penalty.
fn spec_components(s: &SpecStep, charge: SpecCharge, hit_step_ns: f64) -> (f64, f64, f64) {
    match charge {
        SpecCharge::Hit => (0.0, s.chain_ns - s.hit_visible_ns, hit_step_ns),
        SpecCharge::Miss => (
            (s.serial_visible_ns - s.hit_visible_ns) + s.refilter_penalty_ns,
            s.chain_ns - s.serial_visible_ns,
            s.serial_step_ns + s.refilter_penalty_ns,
        ),
        SpecCharge::Denied => (
            s.serial_visible_ns - s.hit_visible_ns,
            s.chain_ns - s.serial_visible_ns,
            s.serial_step_ns,
        ),
    }
}

/// Per-step speculation accounting kept alongside the sample populations,
/// in ns, so tests can reconcile the recorded components against the
/// [`SpecStep`] identities bit-for-bit.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SpecSample {
    /// How the step resolved.
    pub charge: SpecCharge,
    /// Unoverlapped chain time of the step, ns.
    pub chain_ns: f64,
    /// Hit-path visible wait, ns (what the `filter..link` columns carry).
    pub hit_visible_ns: f64,
    /// Synchronous-path visible wait, ns.
    pub serial_visible_ns: f64,
    /// Recorded `spec_miss` component, ns.
    pub spec_miss_ns: f64,
    /// Recorded `overlap_hidden` component, ns.
    pub overlap_hidden_ns: f64,
    /// Re-filter penalty actually charged (0 unless a miss), ns.
    pub penalty_ns: f64,
}

/// Same nearest-rank percentile the serving metrics use.
fn percentile(sorted: &[f64], p: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    let idx = ((sorted.len() - 1) as f64 * p).round() as usize;
    sorted[idx]
}

/// Per-token latency attribution collected across a serving run.
///
/// One sample per generated token (batch size capped at 64 per step, the
/// same cap [`crate::serving::ServeMetrics`] applies to its token-latency
/// percentiles), per component, in milliseconds. The `total` population
/// stores each token's full step latency directly — not the component sum
/// — so its percentiles are bit-identical to the run's reported token
/// latency.
#[derive(Debug, Clone, Default)]
pub struct TokenAttribution {
    samples: [Vec<f64>; 10],
    totals: Vec<f64>,
    spec_hits: usize,
    spec_misses: usize,
    spec_denied: usize,
    spec_steps: Vec<SpecSample>,
}

impl TokenAttribution {
    /// An empty collector.
    pub fn new() -> Self {
        Self::default()
    }

    /// Folds one decode step in: `parts` are the per-token component
    /// shares in ns (from [`attribution_parts`]), `dt_ns` the step's total
    /// latency, and `weight` the number of token samples the step
    /// contributes.
    pub fn record_step(&mut self, parts: [f64; 10], dt_ns: f64, weight: usize) {
        for _ in 0..weight {
            for (c, &p) in parts.iter().enumerate() {
                self.samples[c].push(p / 1e6);
            }
            self.totals.push(dt_ns / 1e6);
        }
    }

    /// Records one speculated step's per-member resolution counts and its
    /// accounting sample. Call once per step with lookahead on, alongside
    /// [`TokenAttribution::record_step`].
    pub fn record_spec_step(
        &mut self,
        sample: SpecSample,
        hits: usize,
        misses: usize,
        denied: usize,
    ) {
        self.spec_hits += hits;
        self.spec_misses += misses;
        self.spec_denied += denied;
        self.spec_steps.push(sample);
    }

    /// `(hits, misses, denied)` speculated-token counts across the run.
    pub fn spec_counts(&self) -> (usize, usize, usize) {
        (self.spec_hits, self.spec_misses, self.spec_denied)
    }

    /// Per-step speculation accounting samples, in recording order.
    pub fn spec_steps(&self) -> &[SpecSample] {
        &self.spec_steps
    }

    /// Whether any speculated step was recorded (drives the extra rows).
    pub fn has_spec(&self) -> bool {
        !self.spec_steps.is_empty()
    }

    /// Number of token samples collected.
    pub fn len(&self) -> usize {
        self.totals.len()
    }

    /// True when no steps were recorded.
    pub fn is_empty(&self) -> bool {
        self.totals.is_empty()
    }

    /// `(mean, p50, p99)` of one component's population, ms.
    pub fn component_stats(&self, c: usize) -> (f64, f64, f64) {
        Self::stats_of(&self.samples[c])
    }

    /// `(mean, p50, p99)` of the total token latency, ms. The percentiles
    /// here equal `ServeMetrics::{p50,p99}_token_ms` of the same run.
    pub fn total_stats(&self) -> (f64, f64, f64) {
        Self::stats_of(&self.totals)
    }

    fn stats_of(samples: &[f64]) -> (f64, f64, f64) {
        if samples.is_empty() {
            return (0.0, 0.0, 0.0);
        }
        let mean = samples.iter().sum::<f64>() / samples.len() as f64;
        let mut sorted = samples.to_vec();
        sorted.sort_by(f64::total_cmp);
        (mean, percentile(&sorted, 0.5), percentile(&sorted, 0.99))
    }

    /// The attribution table: one row per component plus a total row. The
    /// `spec_miss` / `overlap_hidden` rows and the speculation summary line
    /// appear only when a speculated step was recorded, so lookahead-off
    /// tables are unchanged.
    pub fn to_table(&self) -> String {
        // 14 fits `overlap_hidden`; lookahead-off keeps the historical
        // 12-wide grid so existing goldens stay byte-identical.
        let w = if self.has_spec() { 14 } else { 12 };
        let mut out = format!(
            "  {:<w$} {:>9} {:>9} {:>9}\n",
            "component", "mean ms", "p50 ms", "p99 ms"
        );
        let rows = if self.has_spec() { 10 } else { 8 };
        for (c, name) in COMPONENT_NAMES.iter().enumerate().take(rows) {
            let (mean, p50, p99) = self.component_stats(c);
            out.push_str(&format!("  {name:<w$} {mean:>9.4} {p50:>9.4} {p99:>9.4}\n"));
        }
        let (mean, p50, p99) = self.total_stats();
        out.push_str(&format!(
            "  {:<w$} {mean:>9.4} {p50:>9.4} {p99:>9.4}\n",
            "total"
        ));
        if self.has_spec() {
            out.push_str(&format!(
                "  speculation: {} hit | {} miss | {} denied\n",
                self.spec_hits, self.spec_misses, self.spec_denied
            ));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::report::{OffloadComponents, SpecStep, StepBreakdown, StepReport};

    fn report() -> StepReport {
        StepReport::from_breakdown(
            4,
            1024,
            StepBreakdown {
                gpu_weights_ns: 1e6,
                gpu_attention_ns: 2e6,
                gpu_merge_ns: 0.5e6,
                drex_offload_ns: 0.7e6,
                cxl_ns: 0.3e6,
            },
        )
        .with_offload(OffloadComponents {
            filter_ns: 0.1e6,
            score_ns: 0.5e6,
            queue_ns: 0.1e6,
            link_ns: 0.3e6,
        })
    }

    fn spec_report() -> StepReport {
        // Hit path: 0.2 ms visible of a 3 ms chain; serial path would see
        // 1 ms visible on a 5.5 ms step.
        StepReport::from_breakdown(
            4,
            1024,
            StepBreakdown {
                gpu_weights_ns: 1e6,
                gpu_attention_ns: 2e6,
                gpu_merge_ns: 0.5e6,
                drex_offload_ns: 0.14e6,
                cxl_ns: 0.06e6,
            },
        )
        .with_offload(OffloadComponents {
            filter_ns: 0.05e6,
            score_ns: 0.1e6,
            queue_ns: 0.02e6,
            link_ns: 0.03e6,
        })
        .with_spec(SpecStep {
            chain_ns: 3e6,
            serial_step_ns: 4.5e6,
            serial_visible_ns: 1e6,
            hit_visible_ns: 0.2e6,
            refilter_penalty_ns: 0.25e6,
            miss_rate: 0.02,
            slots: 4,
            seed: 0,
        })
    }

    #[test]
    fn parts_sum_to_step_plus_penalty() {
        let r = report();
        let parts = attribution_parts(&r, r.step_ns + 1e6, None);
        let sum: f64 = parts.iter().sum();
        assert!((sum - (r.step_ns + 1e6)).abs() < 1e-6);
        assert!((parts[7] - 1e6).abs() < 1e-9, "retry absorbs the penalty");
        assert_eq!(parts[SPEC_MISS], 0.0);
        assert_eq!(parts[OVERLAP_HIDDEN], 0.0);
    }

    #[test]
    fn without_offload_detail_device_time_lumps_into_score_and_link() {
        let mut r = report();
        r.offload = None;
        let parts = attribution_parts(&r, r.step_ns, None);
        assert_eq!(parts[3], 0.0);
        assert_eq!(parts[4], r.breakdown.drex_offload_ns);
        assert_eq!(parts[6], r.breakdown.cxl_ns);
    }

    #[test]
    fn spec_charges_decompose_each_outcome() {
        let r = spec_report();
        let s = r.spec.unwrap();

        // Hit: dt is the hit step; nothing in spec_miss, the chain's
        // remainder is hidden.
        let hit = attribution_parts(&r, r.step_ns, Some(SpecCharge::Hit));
        assert_eq!(hit[SPEC_MISS], 0.0);
        assert_eq!(
            hit[OVERLAP_HIDDEN].to_bits(),
            (s.chain_ns - s.hit_visible_ns).to_bits()
        );
        let sum: f64 = hit[..OVERLAP_HIDDEN].iter().sum();
        assert!((sum - r.step_ns).abs() < 1e-6);

        // Miss: dt is serial + penalty; spec_miss re-exposes the serialized
        // wait plus the penalty.
        let dt = s.serial_step_ns + s.refilter_penalty_ns;
        let miss = attribution_parts(&r, dt, Some(SpecCharge::Miss));
        assert_eq!(
            miss[SPEC_MISS].to_bits(),
            ((s.serial_visible_ns - s.hit_visible_ns) + s.refilter_penalty_ns).to_bits()
        );
        assert_eq!(
            miss[OVERLAP_HIDDEN].to_bits(),
            (s.chain_ns - s.serial_visible_ns).to_bits()
        );
        let sum: f64 = miss[..OVERLAP_HIDDEN].iter().sum();
        assert!((sum - dt).abs() < 1e-6, "miss parts must decompose dt");

        // Denied: serial timing, no penalty.
        let denied = attribution_parts(&r, s.serial_step_ns, Some(SpecCharge::Denied));
        assert_eq!(
            denied[SPEC_MISS].to_bits(),
            (s.serial_visible_ns - s.hit_visible_ns).to_bits()
        );
        let sum: f64 = denied[..OVERLAP_HIDDEN].iter().sum();
        assert!((sum - s.serial_step_ns).abs() < 1e-6);
    }

    #[test]
    fn total_percentiles_track_recorded_steps() {
        let r = report();
        let mut a = TokenAttribution::new();
        a.record_step(attribution_parts(&r, r.step_ns, None), r.step_ns, 3);
        a.record_step(
            attribution_parts(&r, 2.0 * r.step_ns, None),
            2.0 * r.step_ns,
            1,
        );
        assert_eq!(a.len(), 4);
        let (_, p50, p99) = a.total_stats();
        assert!((p50 - r.step_ns / 1e6).abs() < 1e-12);
        assert!((p99 - 2.0 * r.step_ns / 1e6).abs() < 1e-12);
        // Mean column sums to the total mean (component sums are exact
        // per-sample decompositions of dt; overlap_hidden sits outside).
        let comp_mean: f64 = (0..OVERLAP_HIDDEN).map(|c| a.component_stats(c).0).sum();
        let (total_mean, _, _) = a.total_stats();
        assert!((comp_mean - total_mean).abs() < 1e-9 * total_mean.max(1.0));
        let table = a.to_table();
        assert!(table.contains("window"));
        assert!(table.lines().count() == 10, "header + 8 components + total");
        assert!(!table.contains("spec_miss"), "no spec rows without spec");
    }

    #[test]
    fn spec_rows_and_counts_appear_only_when_recorded() {
        let r = spec_report();
        let s = r.spec.unwrap();
        let mut a = TokenAttribution::new();
        let parts = attribution_parts(&r, r.step_ns, Some(SpecCharge::Hit));
        a.record_step(parts, r.step_ns, 4);
        a.record_spec_step(
            SpecSample {
                charge: SpecCharge::Hit,
                chain_ns: s.chain_ns,
                hit_visible_ns: s.hit_visible_ns,
                serial_visible_ns: s.serial_visible_ns,
                spec_miss_ns: parts[SPEC_MISS],
                overlap_hidden_ns: parts[OVERLAP_HIDDEN],
                penalty_ns: 0.0,
            },
            4,
            0,
            0,
        );
        assert!(a.has_spec());
        assert_eq!(a.spec_counts(), (4, 0, 0));
        let table = a.to_table();
        assert!(table.contains("spec_miss") && table.contains("overlap_hidden"));
        assert!(table.contains("speculation: 4 hit | 0 miss | 0 denied"));
        assert_eq!(table.lines().count(), 13, "header + 10 + total + summary");
    }
}
