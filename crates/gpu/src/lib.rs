//! Analytical NPU (GPU) performance model.
//!
//! The decode phase is dominated by two regimes (paper §2.1): weight-streaming
//! matrix work that batches across users (QKV generation, output projection,
//! FFN) and per-user attention that cannot batch. A roofline model —
//! `time = max(flops / peak_compute, bytes / peak_bandwidth)` with efficiency
//! derates and kernel-launch overhead — captures which regime dominates and
//! how latency scales with batch size and context length, which is what the
//! paper's Figs 7 and 9 measure on real hardware.
//!
//! # Example
//!
//! ```
//! use longsight_gpu::{GpuSpec, decode_step};
//! use longsight_model::ModelConfig;
//!
//! let cfg = ModelConfig::llama3_8b();
//! let cost = decode_step(&GpuSpec::h100_sxm(), &cfg, 1, 32_768, false, 0);
//! assert!(cost.total_ns() > 0.0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use longsight_model::ModelConfig;

/// Hardware parameters of one NPU.
#[derive(Debug, Clone, PartialEq)]
pub struct GpuSpec {
    /// Marketing name.
    pub name: &'static str,
    /// Peak dense BF16 throughput, FLOPs per ns.
    pub flops_per_ns: f64,
    /// Peak HBM bandwidth, bytes per ns.
    pub hbm_bytes_per_ns: f64,
    /// HBM capacity in bytes.
    pub hbm_bytes: usize,
    /// Per-kernel launch overhead, ns.
    pub launch_ns: f64,
    /// Sustained fraction of peak compute for dense GEMM.
    pub compute_eff: f64,
    /// Sustained fraction of peak bandwidth for streaming reads.
    pub mem_eff: f64,
}

impl GpuSpec {
    /// NVIDIA H100 SXM per Table 2: 989 TFLOP/s dense BF16, 3.35 TB/s HBM3,
    /// 80 GB.
    pub fn h100_sxm() -> Self {
        Self {
            name: "H100-SXM",
            flops_per_ns: 989e3,
            hbm_bytes_per_ns: 3350.0,
            hbm_bytes: 80_000_000_000,
            launch_ns: 4_000.0,
            compute_eff: 0.55,
            mem_eff: 0.80,
        }
    }

    /// Roofline time for one fused kernel.
    pub fn op_ns(&self, flops: f64, bytes: f64) -> f64 {
        let compute = flops / (self.flops_per_ns * self.compute_eff);
        let memory = bytes / (self.hbm_bytes_per_ns * self.mem_eff);
        compute.max(memory) + self.launch_ns
    }
}

/// Per-decode-step GPU time breakdown, ns.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct DecodeCost {
    /// Weight-streaming work: QKV/O projections + FFN, all layers, batched.
    pub weights_ns: f64,
    /// Attention over the attended KV entries (dense or window), all layers,
    /// all users.
    pub attention_ns: f64,
    /// Runtime ITQ rotation of query vectors (LongSight only).
    pub itq_ns: f64,
    /// Softmax + SV merge over retrieved top-k results (LongSight only).
    pub merge_ns: f64,
}

impl DecodeCost {
    /// Total GPU time per generated token (per decode step).
    pub fn total_ns(&self) -> f64 {
        self.weights_ns + self.attention_ns + self.itq_ns + self.merge_ns
    }
}

/// Number of non-embedding parameters (weights streamed every step).
fn streamed_params(cfg: &ModelConfig) -> f64 {
    let h = cfg.hidden_dim() as f64;
    let kv = cfg.kv_dim() as f64;
    let f = cfg.ffn_dim as f64;
    cfg.layers as f64 * (h * h + 2.0 * kv * h + h * h + 3.0 * f * h)
}

/// Times one decode step.
///
/// * `users` — batch size (weights stream once for all of them),
/// * `attended` — KV entries read densely per user per layer (full context
///   for the dense baseline; `W + sinks` for LongSight's window),
/// * `itq` — whether queries pass the runtime ITQ rotation,
/// * `merged_k` — retrieved top-k entries merged into softmax/SV per user
///   per layer (0 for non-LongSight systems).
pub fn decode_step(
    spec: &GpuSpec,
    cfg: &ModelConfig,
    users: usize,
    attended: usize,
    itq: bool,
    merged_k: usize,
) -> DecodeCost {
    let u = users as f64;
    let layers = cfg.layers as f64;
    let d = cfg.head_dim as f64;
    let params = streamed_params(cfg);

    // Weight-streaming ops: 2 flops per parameter per user; weights read
    // once (BF16) regardless of batch size — this is why batching pays.
    let weights_ns = spec.op_ns(2.0 * params * u, params * 2.0);

    // Attention: per user per layer, QKᵀ + SV over `attended` entries.
    let attn_flops = u * layers * 2.0 * 2.0 * attended as f64 * d * cfg.q_heads as f64;
    let attn_bytes = u * layers * attended as f64 * cfg.kv_dim() as f64 * 2.0 * 2.0;
    let attention_ns = if attended == 0 {
        0.0
    } else {
        spec.op_ns(attn_flops, attn_bytes)
    };

    // ITQ: rotate each query head's vector by a d×d matrix.
    let itq_ns = if itq {
        let flops = u * layers * cfg.q_heads as f64 * 2.0 * d * d;
        let bytes = layers * cfg.kv_heads as f64 * d * d * 2.0; // rotation matrices
        spec.op_ns(flops, bytes)
    } else {
        0.0
    };

    // Merge: softmax over window+k and SV accumulation of the k retrieved
    // values (already on-GPU after the CXL read).
    let merge_ns = if merged_k > 0 {
        let flops = u * layers * cfg.q_heads as f64 * 2.0 * 2.0 * merged_k as f64 * d;
        let bytes = u * layers * cfg.kv_heads as f64 * merged_k as f64 * d * 2.0;
        spec.op_ns(flops, bytes)
    } else {
        0.0
    };

    DecodeCost {
        weights_ns,
        attention_ns,
        itq_ns,
        merge_ns,
    }
}

/// HBM capacity check: weights + KV cache for `users` × `context` tokens.
pub fn fits_in_hbm(spec: &GpuSpec, cfg: &ModelConfig, users: usize, context: usize) -> bool {
    let kv = cfg.kv_bytes_per_token() * context * users;
    cfg.weight_bytes() + kv <= spec.hbm_bytes
}

/// Maximum context length one GPU supports for a batch of `users`
/// (dense KV cache resident in HBM).
pub fn max_context(spec: &GpuSpec, cfg: &ModelConfig, users: usize) -> usize {
    let free = spec.hbm_bytes.saturating_sub(cfg.weight_bytes());
    free / (cfg.kv_bytes_per_token() * users.max(1))
}

/// A data-parallel group of identical GPUs: users split evenly, weights
/// replicated (the paper's 2-GPU baseline, §8.2).
#[derive(Debug, Clone, PartialEq)]
pub struct DataParallelGpus {
    /// Per-GPU spec.
    pub spec: GpuSpec,
    /// Number of GPUs.
    pub count: usize,
}

impl DataParallelGpus {
    /// Creates a group.
    ///
    /// # Panics
    ///
    /// Panics if `count == 0`.
    pub fn new(spec: GpuSpec, count: usize) -> Self {
        assert!(count > 0, "need at least one GPU");
        Self { spec, count }
    }

    /// Users assigned to the busiest GPU.
    pub fn users_per_gpu(&self, users: usize) -> usize {
        users.div_ceil(self.count)
    }

    /// Decode-step time: the busiest GPU bounds the step.
    pub fn decode_step(
        &self,
        cfg: &ModelConfig,
        users: usize,
        attended: usize,
        itq: bool,
        merged_k: usize,
    ) -> DecodeCost {
        decode_step(
            &self.spec,
            cfg,
            self.users_per_gpu(users),
            attended,
            itq,
            merged_k,
        )
    }

    /// Whether the group can host `users` × `context` dense KV caches.
    pub fn fits(&self, cfg: &ModelConfig, users: usize, context: usize) -> bool {
        fits_in_hbm(&self.spec, cfg, self.users_per_gpu(users), context)
    }

    /// Maximum dense context for a batch of `users`.
    pub fn max_context(&self, cfg: &ModelConfig, users: usize) -> usize {
        max_context(&self.spec, cfg, self.users_per_gpu(users))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn h100_roofline_crossover() {
        let g = GpuSpec::h100_sxm();
        // Tiny op: launch-bound.
        assert!((g.op_ns(1.0, 1.0) - g.launch_ns).abs() < 1.0);
        // Huge compute, no bytes: compute-bound.
        let t = g.op_ns(1e12, 0.0);
        assert!((t - 1e12 / (989e3 * 0.55) - g.launch_ns).abs() < 1.0);
    }

    #[test]
    fn decode_attention_scales_with_context() {
        let g = GpuSpec::h100_sxm();
        let cfg = ModelConfig::llama3_8b();
        let short = decode_step(&g, &cfg, 1, 8_192, false, 0);
        let long = decode_step(&g, &cfg, 1, 131_072, false, 0);
        assert!(long.attention_ns > 10.0 * short.attention_ns);
        // Weight streaming is context-independent.
        assert_eq!(long.weights_ns, short.weights_ns);
    }

    #[test]
    fn attention_dominates_at_long_context_single_user() {
        // The paper's motivation: decode attention becomes the bottleneck as
        // context grows.
        let g = GpuSpec::h100_sxm();
        let cfg = ModelConfig::llama3_8b();
        let c = decode_step(&g, &cfg, 1, 131_072, false, 0);
        assert!(
            c.attention_ns > c.weights_ns,
            "attention {} should dominate weights {} at 128K",
            c.attention_ns,
            c.weights_ns
        );
    }

    #[test]
    fn batching_amortizes_weight_streaming() {
        let g = GpuSpec::h100_sxm();
        let cfg = ModelConfig::llama3_1b();
        let one = decode_step(&g, &cfg, 1, 1_024, false, 0);
        let many = decode_step(&g, &cfg, 64, 1_024, false, 0);
        // 64× the users costs far less than 64× the time.
        assert!(many.total_ns() < 16.0 * one.total_ns());
    }

    #[test]
    fn itq_overhead_is_small_fraction_of_step() {
        // Paper §5.4: ITQ runtime cost is < 3% of computing query vectors
        // (and far less of the whole step).
        let g = GpuSpec::h100_sxm();
        let cfg = ModelConfig::llama3_1b();
        let c = decode_step(&g, &cfg, 8, 1_040, true, 1_024);
        assert!(
            c.itq_ns < 0.1 * c.total_ns(),
            "ITQ {} vs total {}",
            c.itq_ns,
            c.total_ns()
        );
    }

    #[test]
    fn h100_max_context_for_llama8b_is_under_512k() {
        // 80 GB − 16 GB weights = 64 GB; at 131,072 B/token → ~488K tokens.
        let g = GpuSpec::h100_sxm();
        let cfg = ModelConfig::llama3_8b();
        let m = max_context(&g, &cfg, 1);
        assert!((400_000..520_000).contains(&m), "got {m}");
        // Paper: 1M-token context is "only possible with 2 H100 GPUs".
        assert!(!fits_in_hbm(&g, &cfg, 1, 1 << 20));
        let two = DataParallelGpus::new(g, 2);
        // Data parallelism does NOT pool KV of one user; but two users at
        // 512K do fit across two GPUs.
        assert!(two.fits(&cfg, 2, 480_000));
    }

    #[test]
    fn data_parallel_splits_users() {
        let two = DataParallelGpus::new(GpuSpec::h100_sxm(), 2);
        assert_eq!(two.users_per_gpu(8), 4);
        assert_eq!(two.users_per_gpu(9), 5);
        let cfg = ModelConfig::llama3_1b();
        let t1 = decode_step(&two.spec, &cfg, 4, 1_024, false, 0);
        let t2 = two.decode_step(&cfg, 8, 1_024, false, 0);
        assert_eq!(t1.total_ns(), t2.total_ns());
    }
}
