//! DRAM timing parameters.
//!
//! All quantities are nanoseconds (`f64`), matching the level of abstraction
//! of DRAMSim3-style simulation: command-to-command constraints over a
//! continuous timeline. The preset reproduces LPDDR5X-8533, the memory the
//! DReX expander is built from (paper §7.1 / Table 2).

/// Command timing constraints for one DRAM device generation.
#[derive(Debug, Clone, PartialEq)]
pub struct DramTiming {
    /// Activate → internal read/write (row access strobe to column).
    pub t_rcd: f64,
    /// Precharge duration.
    pub t_rp: f64,
    /// Minimum row-open time (activate → precharge).
    pub t_ras: f64,
    /// Read latency (column command → first data).
    pub t_cl: f64,
    /// Column-to-column (burst-to-burst, same bank group) gap.
    pub t_ccd: f64,
    /// Activate-to-activate, different banks.
    pub t_rrd: f64,
    /// Four-activate window.
    pub t_faw: f64,
    /// Write recovery (last write data → precharge).
    pub t_wr: f64,
    /// Read-to-precharge.
    pub t_rtp: f64,
    /// Duration one burst occupies the data bus.
    pub burst_ns: f64,
    /// Bytes transferred per burst (column access granularity).
    pub burst_bytes: usize,
    /// Row (page) size in bytes.
    pub row_bytes: usize,
    /// Average refresh interval (all-bank model).
    pub t_refi: f64,
    /// Refresh cycle time (banks unavailable).
    pub t_rfc: f64,
}

impl DramTiming {
    /// LPDDR5X-8533 (16-bit channel, BL16 → 32 B per access, 2 KiB page).
    ///
    /// Peak per-channel bandwidth: `32 B / burst_ns` = 17.07 GB/s, which at
    /// 8 channels/package × 8 packages gives the 1.1 TB/s aggregate the paper
    /// quotes for the NMAs (Table 2).
    pub fn lpddr5x_8533() -> Self {
        Self {
            t_rcd: 18.0,
            t_rp: 18.0,
            t_ras: 42.0,
            t_cl: 18.0,
            t_ccd: 1.875,
            t_rrd: 7.5,
            t_faw: 30.0,
            t_wr: 34.0,
            t_rtp: 7.5,
            burst_ns: 16.0 / 8.533, // 16 beats at 8533 MT/s
            burst_bytes: 32,
            row_bytes: 2048,
            t_refi: 3906.0,
            t_rfc: 280.0,
        }
    }

    /// Fraction of time lost to refresh (`t_rfc / t_refi`).
    pub fn refresh_overhead(&self) -> f64 {
        if self.t_refi <= 0.0 {
            0.0
        } else {
            self.t_rfc / self.t_refi
        }
    }

    /// Peak data-bus bandwidth of one channel in GB/s.
    pub fn channel_bandwidth_gbps(&self) -> f64 {
        self.burst_bytes as f64 / self.burst_ns
    }

    /// Best-case (row hit, open bus) read latency: `t_cl + burst_ns`.
    pub fn row_hit_latency(&self) -> f64 {
        self.t_cl + self.burst_ns
    }

    /// Worst-case single-read latency (row conflict):
    /// `t_rp + t_rcd + t_cl + burst_ns`.
    pub fn row_conflict_latency(&self) -> f64 {
        self.t_rp + self.t_rcd + self.t_cl + self.burst_ns
    }

    /// Columns (burst accesses) per row.
    pub fn cols_per_row(&self) -> usize {
        self.row_bytes / self.burst_bytes
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lpddr5x_bandwidth_matches_paper_aggregate() {
        let t = DramTiming::lpddr5x_8533();
        let per_channel = t.channel_bandwidth_gbps();
        assert!((per_channel - 17.066).abs() < 0.1, "got {per_channel}");
        // 8 packages × 8 channels ≈ 1.09 TB/s (paper: 1.1 TB/s).
        let total_tbps = per_channel * 64.0 / 1000.0;
        assert!((total_tbps - 1.09).abs() < 0.05, "got {total_tbps}");
    }

    #[test]
    fn latency_orderings() {
        let t = DramTiming::lpddr5x_8533();
        assert!(t.row_hit_latency() < t.row_conflict_latency());
        assert!(t.t_ras >= t.t_rcd);
        assert_eq!(t.cols_per_row(), 64);
    }
}
