//! Per-channel FR-FCFS command scheduling over bank state.
//!
//! Each LPDDR5X channel is independent (own command/data bus, own banks), so
//! the device simulator runs one [`ChannelSim`] per channel. The model tracks
//! per-bank row-buffer state and ready times, the shared data bus, command
//! bus occupancy, and the tRRD/tFAW activate constraints — the same set of
//! constraints DRAMSim3 enforces for this access pattern class.

use crate::timing::DramTiming;
use longsight_obs::{ArgVal, Recorder, TrackId};
use std::collections::VecDeque;

/// One column-granularity access request.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Request {
    /// Bank index within the channel.
    pub bank: usize,
    /// Row within the bank.
    pub row: usize,
    /// Column (burst) index within the row.
    pub col: usize,
    /// Write (true) or read (false).
    pub is_write: bool,
    /// Arrival time at the channel controller, ns.
    pub arrival: f64,
}

impl Request {
    /// A read arriving at time zero.
    pub fn read(bank: usize, row: usize, col: usize) -> Self {
        Self {
            bank,
            row,
            col,
            is_write: false,
            arrival: 0.0,
        }
    }
}

/// Completion record for one request.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Completion {
    /// Time the last data beat left the bus, ns.
    pub finish: f64,
    /// Whether the access hit an open row.
    pub row_hit: bool,
}

/// Aggregate statistics of a channel run.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct ChannelStats {
    /// Requests served.
    pub requests: u64,
    /// Row-buffer hits.
    pub row_hits: u64,
    /// Time the last request finished, ns.
    pub finish_time: f64,
    /// Total data-bus busy time, ns.
    pub data_busy: f64,
    /// Sum of per-request latencies (finish − arrival), ns.
    pub total_latency: f64,
}

impl ChannelStats {
    /// Achieved bandwidth in GB/s given the burst size.
    pub fn bandwidth_gbps(&self, burst_bytes: usize) -> f64 {
        if self.finish_time <= 0.0 {
            return 0.0;
        }
        self.requests as f64 * burst_bytes as f64 / self.finish_time
    }

    /// Mean request latency, ns.
    pub fn mean_latency(&self) -> f64 {
        if self.requests == 0 {
            0.0
        } else {
            self.total_latency / self.requests as f64
        }
    }

    /// Row-buffer hit rate.
    pub fn hit_rate(&self) -> f64 {
        if self.requests == 0 {
            0.0
        } else {
            self.row_hits as f64 / self.requests as f64
        }
    }
}

#[derive(Debug, Clone, Default)]
struct BankState {
    open_row: Option<usize>,
    /// Earliest time an ACT may issue.
    act_ready: f64,
    /// Earliest time a column command may issue.
    rw_ready: f64,
    /// Earliest time a PRE may issue.
    pre_ready: f64,
}

/// Command-bus occupancy per command, ns (one command slot per ~tCK).
const CMD_SLOT_NS: f64 = 1.0;

/// FR-FCFS scheduler for one channel.
#[derive(Debug, Clone)]
pub struct ChannelSim {
    timing: DramTiming,
    banks: Vec<BankState>,
    bus_free: f64,
    cmd_free: f64,
    last_act: f64,
    recent_acts: VecDeque<f64>,
    next_refresh: f64,
    stats: ChannelStats,
}

impl ChannelSim {
    /// Creates a channel with `banks` banks, all precharged.
    ///
    /// # Panics
    ///
    /// Panics if `banks == 0`.
    pub fn new(timing: DramTiming, banks: usize) -> Self {
        assert!(banks > 0, "a channel needs at least one bank");
        let next_refresh = timing.t_refi;
        Self {
            timing,
            banks: vec![BankState::default(); banks],
            bus_free: 0.0,
            cmd_free: 0.0,
            last_act: f64::NEG_INFINITY,
            recent_acts: VecDeque::new(),
            next_refresh,
            stats: ChannelStats::default(),
        }
    }

    /// The timing parameters.
    pub fn timing(&self) -> &DramTiming {
        &self.timing
    }

    /// Statistics accumulated so far.
    pub fn stats(&self) -> &ChannelStats {
        &self.stats
    }

    /// Serves a batch of requests with FR-FCFS scheduling and returns each
    /// request's completion, in the order of the input slice.
    ///
    /// # Panics
    ///
    /// Panics if any request names a bank out of range.
    pub fn run(&mut self, requests: &[Request]) -> Vec<Completion> {
        for r in requests {
            assert!(r.bank < self.banks.len(), "bank {} out of range", r.bank);
        }
        let mut completions = vec![
            Completion {
                finish: 0.0,
                row_hit: false
            };
            requests.len()
        ];
        // Pending indices ordered by arrival (stable for ties).
        let mut pending: Vec<usize> = (0..requests.len()).collect();
        pending.sort_by(|&a, &b| {
            requests[a]
                .arrival
                .total_cmp(&requests[b].arrival)
                .then(a.cmp(&b))
        });

        // Real memory controllers schedule over a bounded transaction queue;
        // scanning a fixed-size window keeps the simulation O(n·W).
        const SCHED_WINDOW: usize = 32;

        let mut pending: VecDeque<usize> = pending.into_iter().collect();
        let mut now = 0.0f64;
        while !pending.is_empty() {
            // Requests that have arrived, among the scheduling window.
            let horizon = now.max(requests[*pending.front().expect("non-empty")].arrival);
            now = horizon;

            // FR-FCFS: oldest row hit first (within the window), else oldest.
            let pick_pos = pending
                .iter()
                .take(SCHED_WINDOW)
                .position(|&i| {
                    let r = &requests[i];
                    r.arrival <= horizon && self.banks[r.bank].open_row == Some(r.row)
                })
                .unwrap_or(0);
            let pick = pending.remove(pick_pos).expect("position in range");

            let r = requests[pick];
            let c = self.issue(&r, now);
            completions[pick] = c;
            self.stats.requests += 1;
            if c.row_hit {
                self.stats.row_hits += 1;
            }
            self.stats.finish_time = self.stats.finish_time.max(c.finish);
            self.stats.data_busy += self.timing.burst_ns;
            self.stats.total_latency += c.finish - r.arrival;
        }
        completions
    }

    /// [`ChannelSim::run`] that also emits one `dram.channel` span on `track`
    /// covering the batch (anchored at simulated time `start_ns`; channel
    /// time zero maps to the anchor), with row-hit-rate and bandwidth stats
    /// as span arguments. The returned completions are bit-identical to a
    /// plain `run` — tracing never perturbs the schedule.
    pub fn run_traced(
        &mut self,
        requests: &[Request],
        rec: &mut Recorder,
        track: TrackId,
        start_ns: f64,
    ) -> Vec<Completion> {
        let before = self.stats;
        let completions = self.run(requests);
        if rec.is_enabled() && !completions.is_empty() {
            let finish = completions.iter().fold(0.0f64, |m, c| m.max(c.finish));
            let served = self.stats.requests - before.requests;
            let hits = self.stats.row_hits - before.row_hits;
            let hit_rate = if served == 0 {
                0.0
            } else {
                hits as f64 / served as f64
            };
            rec.leaf_with(
                track,
                "dram.channel",
                start_ns,
                start_ns + finish,
                &[
                    ("requests", ArgVal::U(served)),
                    ("row_hit_rate", ArgVal::F(hit_rate)),
                    (
                        "data_busy_ns",
                        ArgVal::F(self.stats.data_busy - before.data_busy),
                    ),
                ],
            );
        }
        completions
    }

    /// Issues the command sequence for one request starting no earlier than
    /// `now`, updating all state. Returns the completion.
    ///
    /// Each command (PRE/ACT/RD/WR) occupies one command-bus slot; commands
    /// of *different* requests interleave freely, so a request waiting out
    /// tRCD does not block the next request's activate — the controller
    /// pipeline real DRAM schedulers have.
    fn issue(&mut self, r: &Request, now: f64) -> Completion {
        let t = self.timing.clone();

        // All-bank refresh: when the timeline crosses a tREFI boundary every
        // bank precharges and stays busy for tRFC.
        while t.t_refi > 0.0 && now.max(self.cmd_free) >= self.next_refresh {
            let resume = self.next_refresh + t.t_rfc;
            for b in &mut self.banks {
                b.open_row = None;
                b.act_ready = b.act_ready.max(resume);
                b.rw_ready = b.rw_ready.max(resume);
                b.pre_ready = b.pre_ready.max(resume);
            }
            self.next_refresh += t.t_refi;
        }

        let hit = self.banks[r.bank].open_row == Some(r.row);

        if !hit {
            // Precharge if a different row is open.
            if self.banks[r.bank].open_row.is_some() {
                let pre_at = now.max(self.cmd_free).max(self.banks[r.bank].pre_ready);
                self.cmd_free = pre_at + CMD_SLOT_NS;
                self.banks[r.bank].act_ready = self.banks[r.bank].act_ready.max(pre_at + t.t_rp);
                self.banks[r.bank].open_row = None;
            }
            // Activate, honoring tRRD and tFAW across banks.
            let mut act_at = now
                .max(self.cmd_free)
                .max(self.banks[r.bank].act_ready)
                .max(self.last_act + t.t_rrd);
            while self.recent_acts.len() >= 4 {
                let oldest = *self.recent_acts.front().expect("non-empty");
                if act_at < oldest + t.t_faw {
                    act_at = oldest + t.t_faw;
                }
                self.recent_acts.pop_front();
            }
            self.recent_acts.push_back(act_at);
            if self.recent_acts.len() > 4 {
                self.recent_acts.pop_front();
            }
            self.last_act = act_at;
            self.cmd_free = act_at + CMD_SLOT_NS;
            let bank = &mut self.banks[r.bank];
            bank.open_row = Some(r.row);
            bank.rw_ready = act_at + t.t_rcd;
            bank.pre_ready = act_at + t.t_ras;
        }

        // Column command: bank CCD and the shared data bus (data must not
        // start before the bus frees). Column commands are not coupled into
        // `cmd_free`: they issue *later* than the next requests' activates in
        // a pipelined controller, and serializing the next ACT behind this
        // read would model a depth-1 pipeline. The CA bus is far from
        // saturated at one command per burst slot (burst_ns > CMD_SLOT_NS).
        let data_delay = t.t_cl; // writes modeled with the same column latency
        let col_at = now
            .max(self.banks[r.bank].rw_ready)
            .max(self.bus_free - data_delay);
        let data_start = col_at + data_delay;
        let finish = data_start + t.burst_ns;
        self.bus_free = finish;

        let bank = &mut self.banks[r.bank];
        bank.rw_ready = bank.rw_ready.max(col_at + t.t_ccd);
        bank.pre_ready = bank.pre_ready.max(if r.is_write {
            finish + t.t_wr
        } else {
            col_at + t.t_rtp
        });

        Completion {
            finish,
            row_hit: hit,
        }
    }
}

/// Runs one independent [`ChannelSim`] per request batch and returns each
/// channel's completions and final statistics, in input order.
///
/// LPDDR5X channels share nothing (own command/data bus, own banks), so the
/// batches simulate concurrently on the deterministic parallel map
/// ([`longsight_exec::deterministic_map`]); every channel's result is
/// bit-identical to running it alone, at any thread count.
///
/// # Panics
///
/// Panics if `banks == 0` or any request names a bank out of range.
pub fn run_channels(
    timing: &DramTiming,
    banks: usize,
    per_channel: &[Vec<Request>],
) -> Vec<(Vec<Completion>, ChannelStats)> {
    longsight_exec::deterministic_map(per_channel, |_, requests| {
        let mut sim = ChannelSim::new(timing.clone(), banks);
        let completions = sim.run(requests);
        (completions, *sim.stats())
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sim() -> ChannelSim {
        ChannelSim::new(DramTiming::lpddr5x_8533(), 16)
    }

    #[test]
    fn cold_single_read_latency_is_act_rcd_cl_burst() {
        let mut s = sim();
        let c = s.run(&[Request::read(0, 5, 0)]);
        let t = DramTiming::lpddr5x_8533();
        let expect = t.t_rcd + t.t_cl + t.burst_ns;
        assert!(
            (c[0].finish - expect).abs() < 2.0 * 2.0, // two command slots of slack
            "finish {} vs expected ~{expect}",
            c[0].finish
        );
        assert!(!c[0].row_hit);
    }

    #[test]
    fn same_row_reads_hit_and_stream_at_bus_rate() {
        let mut s = sim();
        let reqs: Vec<Request> = (0..64).map(|c| Request::read(0, 7, c)).collect();
        let comps = s.run(&reqs);
        assert!(comps[1..].iter().all(|c| c.row_hit));
        let t = DramTiming::lpddr5x_8533();
        // Steady state: one burst per burst_ns.
        let span = comps.last().unwrap().finish - comps[0].finish;
        let ideal = 63.0 * t.burst_ns;
        assert!(
            span < ideal * 1.2 + 1.0,
            "streaming span {span} too far above ideal {ideal}"
        );
        assert!(span >= ideal - 1e-9, "cannot beat the data bus");
    }

    #[test]
    fn row_conflict_in_same_bank_is_slower_than_bank_parallel() {
        let t = DramTiming::lpddr5x_8533();
        // 8 accesses to 8 different rows of the SAME bank.
        let mut s1 = sim();
        let conflict: Vec<Request> = (0..8).map(|r| Request::read(0, r, 0)).collect();
        let f1 = s1
            .run(&conflict)
            .iter()
            .map(|c| c.finish)
            .fold(0.0, f64::max);
        // 8 accesses to 8 different banks.
        let mut s2 = sim();
        let parallel: Vec<Request> = (0..8).map(|b| Request::read(b, 0, 0)).collect();
        let f2 = s2
            .run(&parallel)
            .iter()
            .map(|c| c.finish)
            .fold(0.0, f64::max);
        assert!(
            f1 > f2,
            "bank conflicts ({f1} ns) must be slower than bank parallelism ({f2} ns)"
        );
        let _ = t;
    }

    #[test]
    fn bandwidth_never_exceeds_bus_peak() {
        let mut s = sim();
        let reqs: Vec<Request> = (0..512)
            .map(|i| Request::read(i % 16, (i / 16) % 4, i % 64))
            .collect();
        s.run(&reqs);
        let t = DramTiming::lpddr5x_8533();
        let bw = s.stats().bandwidth_gbps(t.burst_bytes);
        assert!(
            bw <= t.channel_bandwidth_gbps() + 1e-9,
            "achieved {bw} GB/s exceeds peak {}",
            t.channel_bandwidth_gbps()
        );
        assert!(bw > 0.0);
    }

    #[test]
    fn faw_throttles_activate_bursts() {
        // 8 activates to 8 banks: the 5th..8th must wait for tFAW windows.
        let mut s = sim();
        let reqs: Vec<Request> = (0..8).map(|b| Request::read(b, 1, 0)).collect();
        let comps = s.run(&reqs);
        let t = DramTiming::lpddr5x_8533();
        // The 5th activate can start no earlier than the 1st + tFAW.
        let lower = t.t_faw + t.t_rcd + t.t_cl + t.burst_ns;
        assert!(
            comps[4].finish >= lower - 1e-9,
            "5th access at {} violates tFAW (needs >= {lower})",
            comps[4].finish
        );
    }

    #[test]
    fn later_arrivals_are_not_served_before_they_arrive() {
        let mut s = sim();
        let reqs = vec![
            Request {
                bank: 0,
                row: 0,
                col: 0,
                is_write: false,
                arrival: 1000.0,
            },
            Request {
                bank: 1,
                row: 0,
                col: 0,
                is_write: false,
                arrival: 2000.0,
            },
        ];
        let comps = s.run(&reqs);
        assert!(comps[0].finish >= 1000.0);
        assert!(comps[1].finish >= 2000.0);
    }

    #[test]
    fn refresh_interrupts_long_streams() {
        // A stream long enough to cross several tREFI boundaries loses
        // roughly t_rfc/t_refi of its bandwidth.
        let t = DramTiming::lpddr5x_8533();
        let mut with = ChannelSim::new(t.clone(), 16);
        let reqs: Vec<Request> = (0..8192)
            .map(|c| Request::read(0, c / 64 % 8, c % 64))
            .collect();
        let f_with = with.run(&reqs).iter().map(|c| c.finish).fold(0.0, f64::max);
        let mut no_refresh = t.clone();
        no_refresh.t_refi = 0.0;
        let mut without = ChannelSim::new(no_refresh, 16);
        let f_without = without
            .run(&reqs)
            .iter()
            .map(|c| c.finish)
            .fold(0.0, f64::max);
        assert!(f_with > f_without, "refresh must cost something");
        let overhead = f_with / f_without - 1.0;
        assert!(
            overhead < 3.0 * t.refresh_overhead() + 0.05,
            "refresh overhead {overhead} implausibly high"
        );
    }

    #[test]
    fn short_bursts_may_dodge_refresh_entirely() {
        let t = DramTiming::lpddr5x_8533();
        let mut s = ChannelSim::new(t, 16);
        // Finishes well before the first tREFI at 3.9 us.
        let reqs: Vec<Request> = (0..8).map(|c| Request::read(0, 0, c)).collect();
        let f = s.run(&reqs).iter().map(|c| c.finish).fold(0.0, f64::max);
        assert!(f < 200.0);
    }

    #[test]
    fn run_channels_matches_independent_serial_runs() {
        let t = DramTiming::lpddr5x_8533();
        let batches: Vec<Vec<Request>> = (0..6)
            .map(|ch| {
                (0..256)
                    .map(|i| Request::read((i + ch) % 16, (i / 16 + ch) % 8, i % 64))
                    .collect()
            })
            .collect();
        let parallel = run_channels(&t, 16, &batches);
        assert_eq!(parallel.len(), batches.len());
        for (batch, (comps, stats)) in batches.iter().zip(&parallel) {
            let mut solo = ChannelSim::new(t.clone(), 16);
            let expect = solo.run(batch);
            assert_eq!(comps, &expect, "channel completions diverged");
            assert_eq!(stats, solo.stats(), "channel stats diverged");
        }
    }

    #[test]
    fn writes_delay_subsequent_precharge() {
        let mut s = sim();
        let reqs = vec![
            Request {
                bank: 0,
                row: 0,
                col: 0,
                is_write: true,
                arrival: 0.0,
            },
            // Different row, same bank: forces precharge after the write.
            Request::read(0, 1, 0),
        ];
        let comps = s.run(&reqs);
        let t = DramTiming::lpddr5x_8533();
        // Write finish + tWR + tRP + tRCD + tCL + burst is a lower bound.
        let lower = comps[0].finish + t.t_wr + t.t_rp + t.t_rcd + t.t_cl + t.burst_ns;
        assert!(
            comps[1].finish >= lower - 1e-6,
            "read after write finished too early: {} < {lower}",
            comps[1].finish
        );
    }
}
