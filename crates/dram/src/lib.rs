//! LPDDR5X DRAM timing simulation for the LongSight reproduction.
//!
//! A bank/channel-state, FR-FCFS command scheduler at the same level of
//! abstraction as DRAMSim3 (which the paper uses, §8.2): per-bank row-buffer
//! state, tRCD/tRP/tRAS/tCCD/tRRD/tFAW constraints, a shared per-channel data
//! bus, and the paper's column→row→bank→channel→package address mapping.
//!
//! The `longsight-drex` crate drives this simulator with the key-fetch
//! traces the NMAs generate during sparse attention offloads.
//!
//! # Example
//!
//! ```
//! use longsight_dram::{ChannelSim, DramTiming, Request};
//!
//! let mut ch = ChannelSim::new(DramTiming::lpddr5x_8533(), 16);
//! let done = ch.run(&[Request::read(0, 3, 0), Request::read(0, 3, 1)]);
//! assert!(done[1].row_hit); // second access hits the open row
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod address;
mod channel;
mod timing;

pub use address::{AddressMapping, Geometry, Location};
pub use channel::{run_channels, ChannelSim, ChannelStats, Completion, Request};
pub use timing::DramTiming;
