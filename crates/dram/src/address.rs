//! Physical address mapping (paper §7.3.2).
//!
//! > "DReX employs a simple physical address mapping scheme in which
//! > contiguous physical addresses are first mapped to columns, then rows,
//! > followed by banks, channels, and finally packages."
//!
//! Addresses are byte addresses; the unit of access is one column burst
//! (32 B for LPDDR5X BL16).

/// Geometry of a DReX-style memory system.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Geometry {
    /// Number of LPDDR packages.
    pub packages: usize,
    /// Channels per package.
    pub channels: usize,
    /// Banks per channel.
    pub banks: usize,
    /// Rows per bank.
    pub rows: usize,
    /// Column bursts per row.
    pub cols: usize,
    /// Bytes per column burst.
    pub col_bytes: usize,
}

impl Geometry {
    /// The DReX geometry: 8 packages × 8 channels × 128 banks, 512 GB total
    /// (paper §7.1: "eight LPDDR5X packages, each with eight channels, and
    /// each channel includes 128 banks").
    pub fn drex() -> Self {
        let g = Self {
            packages: 8,
            channels: 8,
            banks: 128,
            rows: 32_768,
            cols: 64,
            col_bytes: 32,
        };
        debug_assert_eq!(g.total_bytes(), 512 * (1usize << 30));
        g
    }

    /// Total capacity in bytes.
    pub fn total_bytes(&self) -> usize {
        self.packages * self.channels * self.banks * self.rows * self.cols * self.col_bytes
    }

    /// Bytes per bank.
    pub fn bank_bytes(&self) -> usize {
        self.rows * self.cols * self.col_bytes
    }
}

/// A decoded physical location.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Location {
    /// Package index.
    pub package: usize,
    /// Channel within the package.
    pub channel: usize,
    /// Bank within the channel.
    pub bank: usize,
    /// Row within the bank.
    pub row: usize,
    /// Column burst within the row.
    pub col: usize,
}

/// Column → row → bank → channel → package address mapping.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AddressMapping {
    geometry: Geometry,
}

impl AddressMapping {
    /// Creates the mapping for a geometry.
    pub fn new(geometry: Geometry) -> Self {
        Self { geometry }
    }

    /// The geometry.
    pub fn geometry(&self) -> &Geometry {
        &self.geometry
    }

    /// Decodes a byte address into a physical location.
    ///
    /// # Panics
    ///
    /// Panics if the address is beyond the device capacity.
    pub fn decode(&self, addr: usize) -> Location {
        let g = &self.geometry;
        assert!(addr < g.total_bytes(), "address {addr:#x} beyond capacity");
        let mut x = addr / g.col_bytes;
        let col = x % g.cols;
        x /= g.cols;
        let row = x % g.rows;
        x /= g.rows;
        let bank = x % g.banks;
        x /= g.banks;
        let channel = x % g.channels;
        x /= g.channels;
        let package = x;
        Location {
            package,
            channel,
            bank,
            row,
            col,
        }
    }

    /// Encodes a physical location back into a byte address.
    ///
    /// # Panics
    ///
    /// Panics if any coordinate is out of range.
    pub fn encode(&self, loc: Location) -> usize {
        let g = &self.geometry;
        assert!(
            loc.package < g.packages
                && loc.channel < g.channels
                && loc.bank < g.banks
                && loc.row < g.rows
                && loc.col < g.cols,
            "location out of range: {loc:?}"
        );
        ((((loc.package * g.channels + loc.channel) * g.banks + loc.bank) * g.rows + loc.row)
            * g.cols
            + loc.col)
            * g.col_bytes
    }

    /// The stride (in bytes) between consecutive channels at fixed
    /// bank/row/col — used to scatter Key vectors across channels (§7.3.2).
    pub fn channel_stride(&self) -> usize {
        let g = &self.geometry;
        g.banks * g.rows * g.cols * g.col_bytes
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn drex_geometry_is_512_gib() {
        assert_eq!(Geometry::drex().total_bytes(), 512 << 30);
        assert_eq!(Geometry::drex().bank_bytes(), 64 << 20);
    }

    #[test]
    fn contiguous_addresses_walk_columns_first() {
        let m = AddressMapping::new(Geometry::drex());
        let a = m.decode(0);
        let b = m.decode(32);
        assert_eq!(a.col, 0);
        assert_eq!(b.col, 1);
        assert_eq!(
            (a.row, a.bank, a.channel, a.package),
            (b.row, b.bank, b.channel, b.package)
        );
    }

    #[test]
    fn row_changes_after_cols_exhaust() {
        let g = Geometry::drex();
        let m = AddressMapping::new(g);
        let loc = m.decode(g.cols * g.col_bytes);
        assert_eq!((loc.col, loc.row), (0, 1));
    }

    #[test]
    fn encode_decode_round_trip() {
        let m = AddressMapping::new(Geometry::drex());
        for addr in [
            0usize,
            32,
            2048,
            123 * 32,
            (1 << 30) + 64 * 32,
            (400usize << 30) + 32,
        ] {
            assert_eq!(m.encode(m.decode(addr)), addr);
        }
    }

    #[test]
    fn channel_stride_jumps_exactly_one_channel() {
        let m = AddressMapping::new(Geometry::drex());
        let a = m.decode(0);
        let b = m.decode(m.channel_stride());
        assert_eq!(b.channel, a.channel + 1);
        assert_eq!(
            (a.bank, a.row, a.col, a.package),
            (b.bank, b.row, b.col, b.package)
        );
    }

    #[test]
    #[should_panic(expected = "beyond capacity")]
    fn decode_out_of_range_panics() {
        let m = AddressMapping::new(Geometry::drex());
        let _ = m.decode(512 << 30);
    }
}
