//! Property-based tests for the DRAM simulator.

use longsight_dram::{AddressMapping, ChannelSim, DramTiming, Geometry, Location, Request};
use proptest::prelude::*;

fn arb_requests(max: usize) -> impl Strategy<Value = Vec<Request>> {
    prop::collection::vec(
        (0usize..16, 0usize..64, 0usize..64, any::<bool>(), 0.0f64..10_000.0),
        1..max,
    )
    .prop_map(|v| {
        v.into_iter()
            .map(|(bank, row, col, is_write, arrival)| Request {
                bank,
                row,
                col,
                is_write,
                arrival,
            })
            .collect()
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn every_request_completes_after_its_arrival(reqs in arb_requests(64)) {
        let mut sim = ChannelSim::new(DramTiming::lpddr5x_8533(), 16);
        let done = sim.run(&reqs);
        for (c, r) in done.iter().zip(&reqs) {
            prop_assert!(c.finish > r.arrival, "finish {} before arrival {}", c.finish, r.arrival);
        }
    }

    #[test]
    fn data_bus_never_double_booked(reqs in arb_requests(48)) {
        let t = DramTiming::lpddr5x_8533();
        let mut sim = ChannelSim::new(t.clone(), 16);
        let mut finishes: Vec<f64> = sim.run(&reqs).iter().map(|c| c.finish).collect();
        finishes.sort_by(f64::total_cmp);
        for w in finishes.windows(2) {
            prop_assert!(
                w[1] - w[0] >= t.burst_ns - 1e-9,
                "bursts {} and {} overlap on the data bus",
                w[0],
                w[1]
            );
        }
    }

    #[test]
    fn bandwidth_bounded_by_bus_peak(reqs in arb_requests(64)) {
        let t = DramTiming::lpddr5x_8533();
        let mut sim = ChannelSim::new(t.clone(), 16);
        sim.run(&reqs);
        prop_assert!(sim.stats().bandwidth_gbps(t.burst_bytes) <= t.channel_bandwidth_gbps() + 1e-9);
    }

    #[test]
    fn first_access_to_each_bank_is_never_a_hit(reqs in arb_requests(48)) {
        let mut sim = ChannelSim::new(DramTiming::lpddr5x_8533(), 16);
        let done = sim.run(&reqs);
        let mut seen = [false; 16];
        // Completion order != issue order in general, but the *input order*
        // of the first per-bank request is the first issued for that bank
        // only under FCFS ties; instead assert globally: hits never exceed
        // requests minus distinct banks touched.
        let distinct: std::collections::BTreeSet<usize> = reqs.iter().map(|r| r.bank).collect();
        let hits = done.iter().filter(|c| c.row_hit).count();
        prop_assert!(hits + distinct.len() <= reqs.len());
        let _ = &mut seen;
    }

    #[test]
    fn address_mapping_round_trips(pkg in 0usize..8, ch in 0usize..8, bank in 0usize..128,
                                   row in 0usize..32_768, col in 0usize..64) {
        let m = AddressMapping::new(Geometry::drex());
        let loc = Location { package: pkg, channel: ch, bank, row, col };
        prop_assert_eq!(m.decode(m.encode(loc)), loc);
    }

    #[test]
    fn address_decode_is_injective_per_column(addr in (0usize..(1 << 30)).prop_map(|a| a * 32)) {
        let m = AddressMapping::new(Geometry::drex());
        let a = m.decode(addr);
        let b = m.decode(addr + 32);
        prop_assert_ne!(a, b, "adjacent columns must decode differently");
    }
}
