//! Property-based tests for the DRAM simulator, on the in-repo
//! [`check`](longsight_tensor::check) runner.

use longsight_dram::{AddressMapping, ChannelSim, DramTiming, Geometry, Location, Request};
use longsight_tensor::check::{run_cases, Gen};
use longsight_tensor::{prop_ensure, prop_ensure_eq, prop_ensure_ne};

/// Random request batch: up to `max` requests over 16 banks.
fn arb_requests(g: &mut Gen, max: usize) -> Vec<Request> {
    let n = g.usize_in(1, max);
    (0..n)
        .map(|_| Request {
            bank: g.usize_in(0, 16),
            row: g.usize_in(0, 64),
            col: g.usize_in(0, 64),
            is_write: g.bool(),
            arrival: g.f64_in(0.0, 10_000.0),
        })
        .collect()
}

#[test]
fn every_request_completes_after_its_arrival() {
    run_cases("every_request_completes_after_its_arrival", 48, |g| {
        let reqs = arb_requests(g, 64);
        let mut sim = ChannelSim::new(DramTiming::lpddr5x_8533(), 16);
        let done = sim.run(&reqs);
        for (c, r) in done.iter().zip(&reqs) {
            prop_ensure!(
                c.finish > r.arrival,
                "finish {} before arrival {}",
                c.finish,
                r.arrival
            );
        }
        Ok(())
    });
}

#[test]
fn data_bus_never_double_booked() {
    run_cases("data_bus_never_double_booked", 48, |g| {
        let reqs = arb_requests(g, 48);
        let t = DramTiming::lpddr5x_8533();
        let mut sim = ChannelSim::new(t.clone(), 16);
        let mut finishes: Vec<f64> = sim.run(&reqs).iter().map(|c| c.finish).collect();
        finishes.sort_by(f64::total_cmp);
        for w in finishes.windows(2) {
            prop_ensure!(
                w[1] - w[0] >= t.burst_ns - 1e-9,
                "bursts {} and {} overlap on the data bus",
                w[0],
                w[1]
            );
        }
        Ok(())
    });
}

#[test]
fn bandwidth_bounded_by_bus_peak() {
    run_cases("bandwidth_bounded_by_bus_peak", 48, |g| {
        let reqs = arb_requests(g, 64);
        let t = DramTiming::lpddr5x_8533();
        let mut sim = ChannelSim::new(t.clone(), 16);
        sim.run(&reqs);
        prop_ensure!(
            sim.stats().bandwidth_gbps(t.burst_bytes) <= t.channel_bandwidth_gbps() + 1e-9
        );
        Ok(())
    });
}

#[test]
fn first_access_to_each_bank_is_never_a_hit() {
    run_cases("first_access_to_each_bank_is_never_a_hit", 48, |g| {
        let reqs = arb_requests(g, 48);
        let mut sim = ChannelSim::new(DramTiming::lpddr5x_8533(), 16);
        let done = sim.run(&reqs);
        // Completion order != issue order in general, but hits can never
        // exceed requests minus distinct banks touched (each bank's first
        // access opens a row).
        let distinct: std::collections::BTreeSet<usize> = reqs.iter().map(|r| r.bank).collect();
        let hits = done.iter().filter(|c| c.row_hit).count();
        prop_ensure!(hits + distinct.len() <= reqs.len());
        Ok(())
    });
}

#[test]
fn address_mapping_round_trips() {
    run_cases("address_mapping_round_trips", 48, |g| {
        let loc = Location {
            package: g.usize_in(0, 8),
            channel: g.usize_in(0, 8),
            bank: g.usize_in(0, 128),
            row: g.usize_in(0, 32_768),
            col: g.usize_in(0, 64),
        };
        let m = AddressMapping::new(Geometry::drex());
        prop_ensure_eq!(m.decode(m.encode(loc)), loc);
        Ok(())
    });
}

#[test]
fn address_decode_is_injective_per_column() {
    run_cases("address_decode_is_injective_per_column", 48, |g| {
        let addr = g.usize_in(0, 1 << 30) * 32;
        let m = AddressMapping::new(Geometry::drex());
        let a = m.decode(addr);
        let b = m.decode(addr + 32);
        prop_ensure_ne!(a, b, "adjacent columns at {addr} decoded identically");
        Ok(())
    });
}
