//! Property-based tests for the transformer substrate.

use longsight_model::{
    corpus, layers, DenseBackend, Model, ModelConfig, ModelWeights, Rope, SlidingWindowBackend,
};
use longsight_tensor::{vecops, SimRng};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// RoPE preserves vector norms at every position.
    #[test]
    fn rope_is_an_isometry(pos in 0usize..200_000, seed in 0u64..500, half in 2usize..32) {
        let dim = 2 * half;
        let rope = Rope::new(dim, 500_000.0);
        let mut rng = SimRng::seed_from(seed);
        let v = rng.normal_vec(dim);
        let r = rope.apply(&v, pos);
        prop_assert!((vecops::l2_norm(&r) - vecops::l2_norm(&v)).abs() < 1e-3);
    }

    /// RoPE dot products depend only on relative position (the property the
    /// KV cache relies on).
    #[test]
    fn rope_relative_invariance(base in 0usize..10_000, delta in 0usize..512, seed in 0u64..300) {
        let rope = Rope::new(16, 10_000.0);
        let mut rng = SimRng::seed_from(seed);
        let q = rng.normal_vec(16);
        let k = rng.normal_vec(16);
        let d1 = vecops::dot(&rope.apply(&q, base + delta), &rope.apply(&k, base));
        let d2 = vecops::dot(&rope.apply(&q, 5_000 + delta), &rope.apply(&k, 5_000));
        let scale = vecops::l2_norm(&q) * vecops::l2_norm(&k);
        prop_assert!((d1 - d2).abs() < 1e-3 * scale.max(1.0));
    }

    /// RMSNorm output always has unit RMS under unit gain.
    #[test]
    fn rmsnorm_normalizes(v in prop::collection::vec(-50.0f32..50.0, 1..64)) {
        let g = vec![1.0; v.len()];
        let out = layers::rmsnorm(&v, &g);
        let r = vecops::rms(&out, 0.0);
        // eps guard allows a small departure for near-zero inputs.
        prop_assert!(r <= 1.0 + 1e-4);
        if vecops::l2_norm(&v) > 1.0 {
            prop_assert!((r - 1.0).abs() < 1e-3);
        }
    }

    /// Corpus generation: exact length, in-vocabulary, deterministic.
    #[test]
    fn corpus_invariants(len in 1usize..2_000, vocab in 8usize..512, seed in 0u64..500) {
        let cfg = corpus::CorpusConfig::long_book(vocab);
        let a = corpus::generate(&cfg, len, &mut SimRng::seed_from(seed));
        let b = corpus::generate(&cfg, len, &mut SimRng::seed_from(seed));
        prop_assert_eq!(a.tokens.len(), len);
        prop_assert_eq!(a.predictable.len(), len);
        prop_assert!(a.tokens.iter().all(|&t| (t as usize) < vocab));
        prop_assert_eq!(a.tokens, b.tokens);
    }

    /// A sliding window covering the whole history is exactly dense — on a
    /// real forward pass, for arbitrary short token sequences.
    #[test]
    fn full_window_forward_equals_dense(tokens in prop::collection::vec(0u32..64, 2..10), seed in 0u64..100) {
        let cfg = ModelConfig::tiny();
        let mut rng = SimRng::seed_from(seed);
        let model = Model::new(ModelWeights::random(&cfg, &mut rng));
        let mut c1 = model.new_cache();
        let mut c2 = model.new_cache();
        let mut dense = DenseBackend::new();
        let mut window = SlidingWindowBackend::new(1024, 0);
        for (pos, &t) in tokens.iter().enumerate() {
            let a = model.forward(t, pos, &mut c1, &mut dense);
            let b = model.forward(t, pos, &mut c2, &mut window);
            for (x, y) in a.iter().zip(&b) {
                prop_assert!((x - y).abs() < 1e-3);
            }
        }
    }
}
