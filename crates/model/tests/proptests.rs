//! Property-based tests for the transformer substrate, on the in-repo
//! [`check`](longsight_tensor::check) runner.

use longsight_model::{
    corpus, layers, DenseBackend, Model, ModelConfig, ModelWeights, Rope, SlidingWindowBackend,
};
use longsight_tensor::check::run_cases;
use longsight_tensor::{prop_ensure, prop_ensure_eq, vecops, SimRng};

/// RoPE preserves vector norms at every position.
#[test]
fn rope_is_an_isometry() {
    run_cases("rope_is_an_isometry", 24, |g| {
        let pos = g.usize_in(0, 200_000);
        let seed = g.u64_in(0, 500);
        let half = g.usize_in(2, 32);
        let dim = 2 * half;
        let rope = Rope::new(dim, 500_000.0);
        let mut rng = SimRng::seed_from(seed);
        let v = rng.normal_vec(dim);
        let r = rope.apply(&v, pos);
        prop_ensure!((vecops::l2_norm(&r) - vecops::l2_norm(&v)).abs() < 1e-3);
        Ok(())
    });
}

/// RoPE dot products depend only on relative position (the property the KV
/// cache relies on).
#[test]
fn rope_relative_invariance() {
    run_cases("rope_relative_invariance", 24, |g| {
        let base = g.usize_in(0, 10_000);
        let delta = g.usize_in(0, 512);
        let seed = g.u64_in(0, 300);
        let rope = Rope::new(16, 10_000.0);
        let mut rng = SimRng::seed_from(seed);
        let q = rng.normal_vec(16);
        let k = rng.normal_vec(16);
        let d1 = vecops::dot(&rope.apply(&q, base + delta), &rope.apply(&k, base));
        let d2 = vecops::dot(&rope.apply(&q, 5_000 + delta), &rope.apply(&k, 5_000));
        let scale = vecops::l2_norm(&q) * vecops::l2_norm(&k);
        prop_ensure!((d1 - d2).abs() < 1e-3 * scale.max(1.0));
        Ok(())
    });
}

/// RMSNorm output always has unit RMS under unit gain.
#[test]
fn rmsnorm_normalizes() {
    run_cases("rmsnorm_normalizes", 24, |g| {
        let v = g.vec_f32(1, 64, -50.0, 50.0);
        let gain = vec![1.0; v.len()];
        let out = layers::rmsnorm(&v, &gain);
        let r = vecops::rms(&out, 0.0);
        // eps guard allows a small departure for near-zero inputs.
        prop_ensure!(r <= 1.0 + 1e-4);
        if vecops::l2_norm(&v) > 1.0 {
            prop_ensure!((r - 1.0).abs() < 1e-3);
        }
        Ok(())
    });
}

/// Corpus generation: exact length, in-vocabulary, deterministic.
#[test]
fn corpus_invariants() {
    run_cases("corpus_invariants", 24, |g| {
        let len = g.usize_in(1, 2_000);
        let vocab = g.usize_in(8, 512);
        let seed = g.u64_in(0, 500);
        let cfg = corpus::CorpusConfig::long_book(vocab);
        let a = corpus::generate(&cfg, len, &mut SimRng::seed_from(seed));
        let b = corpus::generate(&cfg, len, &mut SimRng::seed_from(seed));
        prop_ensure_eq!(a.tokens.len(), len);
        prop_ensure_eq!(a.predictable.len(), len);
        prop_ensure!(a.tokens.iter().all(|&t| (t as usize) < vocab));
        prop_ensure_eq!(a.tokens, b.tokens);
        Ok(())
    });
}

/// A sliding window covering the whole history is exactly dense — on a real
/// forward pass, for arbitrary short token sequences.
#[test]
fn full_window_forward_equals_dense() {
    run_cases("full_window_forward_equals_dense", 24, |g| {
        let n_tokens = g.usize_in(2, 10);
        let tokens: Vec<u32> = (0..n_tokens).map(|_| g.u32_in(0, 64)).collect();
        let seed = g.u64_in(0, 100);
        let cfg = ModelConfig::tiny();
        let mut rng = SimRng::seed_from(seed);
        let model = Model::new(ModelWeights::random(&cfg, &mut rng));
        let mut c1 = model.new_cache();
        let mut c2 = model.new_cache();
        let mut dense = DenseBackend::new();
        let mut window = SlidingWindowBackend::new(1024, 0);
        for (pos, &t) in tokens.iter().enumerate() {
            let a = model.forward(t, pos, &mut c1, &mut dense);
            let b = model.forward(t, pos, &mut c2, &mut window);
            for (x, y) in a.iter().zip(&b) {
                prop_ensure!((x - y).abs() < 1e-3);
            }
        }
        Ok(())
    });
}
