//! Diagnostic harness for the hand-constructed induction circuit.
//!
//! Run with `cargo test -p longsight-model --test circuit_diagnostics -- --nocapture`
//! to print attention distributions layer by layer.

use longsight_model::{
    AttentionBackend, AttentionRequest, DenseBackend, InductionParams, Model, ModelConfig,
    ModelWeights,
};
use longsight_tensor::{vecops, SimRng};

/// A backend that wraps dense attention and records, per layer, the attention
/// weight placed on each candidate for the most recent call.
struct ProbeBackend {
    inner: DenseBackend,
    /// (layer, kv_head, position, weights over 0..=position) of the last call.
    pub last: Vec<(usize, usize, usize, Vec<f32>)>,
}

impl ProbeBackend {
    fn new() -> Self {
        Self {
            inner: DenseBackend::new(),
            last: Vec::new(),
        }
    }
}

impl AttentionBackend for ProbeBackend {
    fn attend(&mut self, req: &AttentionRequest<'_>) -> Vec<Vec<f32>> {
        // Recompute the weights of query head 0 for inspection.
        let q = &req.queries[0];
        let mut scores: Vec<f32> = (0..=req.position)
            .map(|i| vecops::dot(q, req.history.keys().get(i)) * req.scale)
            .collect();
        vecops::softmax_in_place(&mut scores);
        self.last
            .push((req.layer, req.kv_head, req.position, scores));
        self.inner.attend(req)
    }

    fn label(&self) -> String {
        "probe".into()
    }
}

#[test]
fn inspect_attention_patterns() {
    let cfg = ModelConfig::tiny();
    let mut rng = SimRng::seed_from(11);
    let model = Model::new(ModelWeights::induction(
        &cfg,
        &InductionParams::default(),
        &mut rng,
    ));

    // Sequence with an exact repeat: "A B C D E ... A B C D E".
    // After the second 'A', induction should predict 'B'.
    let motif: Vec<u32> = vec![10, 20, 30, 40, 50];
    let mut tokens: Vec<u32> = motif.clone();
    tokens.extend([70u32, 80, 90, 100, 110, 120, 130]);
    tokens.extend(motif.clone());

    let mut cache = model.new_cache();
    let mut probe = ProbeBackend::new();
    let mut logits = Vec::new();
    for (pos, &t) in tokens.iter().enumerate() {
        probe.last.clear();
        logits = model.forward(t, pos, &mut cache, &mut probe);
        if pos >= tokens.len() - motif.len() {
            println!("== position {pos} (token {t}) ==");
            for (layer, kv_head, p, w) in &probe.last {
                if *kv_head != 0 {
                    continue;
                }
                let amax = vecops::argmax(w).unwrap();
                println!(
                    "  layer {layer} kv0 pos {p}: argmax attn -> {amax} (w={:.3}), self w={:.3}, prev w={:.3}",
                    w[amax],
                    w[*p],
                    if *p > 0 { w[*p - 1] } else { f32::NAN },
                );
            }
            let lp = vecops::log_softmax(&logits);
            let next = tokens.get(pos + 1).copied();
            let top = vecops::argmax(&logits).unwrap();
            println!(
                "  predicted top token: {top}; target {:?} logprob {:.3}",
                next,
                next.map(|n| lp[n as usize]).unwrap_or(f32::NAN)
            );
        }
    }
    let _ = logits;
}

#[test]
fn print_corpus_perplexity_breakdown() {
    use longsight_model::{corpus, perplexity};
    let cfg = ModelConfig::tiny();
    let mut rng = SimRng::seed_from(11);
    let model = Model::new(ModelWeights::induction(
        &cfg,
        &InductionParams::default(),
        &mut rng,
    ));
    let text = corpus::generate(&corpus::CorpusConfig::long_book(cfg.vocab), 512, &mut rng);
    println!("predictable fraction: {:.3}", text.predictable_fraction());
    let r = perplexity::evaluate(&model, &text, &mut DenseBackend::new(), 16);
    println!(
        "CE {:.3} (uniform {:.3}); predictable CE {:?}",
        r.cross_entropy,
        (cfg.vocab as f64).ln(),
        r.predictable_cross_entropy
    );
}

/// Measures the sign-bit geometry of layer-1 (induction) keys and queries:
/// per-dimension imbalance and query/key concordance separation.
#[test]
fn print_sign_geometry() {
    use longsight_model::KvCache;
    use longsight_tensor::SignBits;

    let cfg = ModelConfig::tiny();
    let mut rng = SimRng::seed_from(11);
    let model = Model::new(ModelWeights::induction(
        &cfg,
        &InductionParams::default(),
        &mut rng,
    ));

    struct Collect {
        inner: DenseBackend,
        queries: Vec<Vec<f32>>,
    }
    impl AttentionBackend for Collect {
        fn attend(&mut self, req: &AttentionRequest<'_>) -> Vec<Vec<f32>> {
            if req.layer == 1 && req.kv_head == 0 {
                self.queries.push(req.queries[0].clone());
            }
            self.inner.attend(req)
        }
        fn label(&self) -> String {
            "collect".into()
        }
    }

    let mut cache: KvCache = model.new_cache();
    let mut col = Collect {
        inner: DenseBackend::new(),
        queries: Vec::new(),
    };
    let tokens: Vec<u32> = (0..512).map(|_| rng.below(cfg.vocab) as u32).collect();
    for (pos, &t) in tokens.iter().enumerate() {
        model.forward(t, pos, &mut cache, &mut col);
    }
    let keys = cache.head(1, 0).keys();
    let d = cfg.head_dim;
    let mut worst_k = 0.0f64;
    let mut mean_k = 0.0f64;
    for dim in 0..d {
        let neg = keys.iter().filter(|k| k[dim] < 0.0).count();
        let imb = (neg as f64 / keys.len() as f64 - 0.5).abs();
        worst_k = worst_k.max(imb);
        mean_k += imb / d as f64;
    }
    let mut worst_q = 0.0f64;
    let mut mean_q = 0.0f64;
    for dim in 0..d {
        let neg = col.queries.iter().filter(|q| q[dim] < 0.0).count();
        let imb = (neg as f64 / col.queries.len() as f64 - 0.5).abs();
        worst_q = worst_q.max(imb);
        mean_q += imb / d as f64;
    }
    println!("key sign imbalance: mean {mean_k:.3} worst {worst_k:.3}");
    println!("query sign imbalance: mean {mean_q:.3} worst {worst_q:.3}");

    // Concordance separation: matching vs random key for late queries.
    let q = &col.queries[400];
    let qs = SignBits::from_slice(q);
    let mut concs: Vec<u32> = (0..keys.len())
        .map(|i| qs.concordance(&SignBits::from_slice(keys.get(i))))
        .collect();
    concs.sort_unstable();
    println!(
        "concordance percentiles: min {} p50 {} p90 {} max {}",
        concs[0],
        concs[concs.len() / 2],
        concs[concs.len() * 9 / 10],
        concs[concs.len() - 1]
    );
}
