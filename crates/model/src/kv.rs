//! KV caches: per-layer, per-KV-head key/value history.

use longsight_tensor::FlatVecs;

/// Key and value history for one `(layer, kv_head)` pair.
///
/// Keys are stored **post-RoPE** (when the layer applies RoPE), matching the
/// paper: the KV cache holds exactly what attention consumes, and ITQ must be
/// applied at runtime because positional embeddings break distance invariance
/// (§5.4).
#[derive(Debug, Clone)]
pub struct HeadKv {
    keys: FlatVecs,
    values: FlatVecs,
}

impl HeadKv {
    /// Creates an empty history for head dimension `dim`.
    pub fn new(dim: usize) -> Self {
        Self {
            keys: FlatVecs::new(dim),
            values: FlatVecs::new(dim),
        }
    }

    /// Appends one token's key and value.
    ///
    /// # Panics
    ///
    /// Panics if either slice does not match the head dimension.
    pub fn push(&mut self, key: &[f32], value: &[f32]) {
        self.keys.push(key);
        self.values.push(value);
    }

    /// Number of cached tokens.
    pub fn len(&self) -> usize {
        self.keys.len()
    }

    /// Whether the cache is empty.
    pub fn is_empty(&self) -> bool {
        self.keys.is_empty()
    }

    /// The cached keys.
    pub fn keys(&self) -> &FlatVecs {
        &self.keys
    }

    /// The cached values.
    pub fn values(&self) -> &FlatVecs {
        &self.values
    }
}

/// Full KV cache for one user: `layers × kv_heads` independent histories —
/// the "vector databases" of paper §4 (e.g. 256 of them for Llama-3-8B).
#[derive(Debug, Clone)]
pub struct KvCache {
    heads: Vec<Vec<HeadKv>>,
}

impl KvCache {
    /// Creates an empty cache for `layers × kv_heads` heads of dimension `dim`.
    pub fn new(layers: usize, kv_heads: usize, dim: usize) -> Self {
        Self {
            heads: (0..layers)
                .map(|_| (0..kv_heads).map(|_| HeadKv::new(dim)).collect())
                .collect(),
        }
    }

    /// Borrows the history of `(layer, kv_head)`.
    ///
    /// # Panics
    ///
    /// Panics if out of range.
    pub fn head(&self, layer: usize, kv_head: usize) -> &HeadKv {
        &self.heads[layer][kv_head]
    }

    /// Mutably borrows the history of `(layer, kv_head)`.
    ///
    /// # Panics
    ///
    /// Panics if out of range.
    pub fn head_mut(&mut self, layer: usize, kv_head: usize) -> &mut HeadKv {
        &mut self.heads[layer][kv_head]
    }

    /// Number of cached tokens (taken from layer 0, head 0; all heads stay in
    /// lockstep during normal operation).
    pub fn seq_len(&self) -> usize {
        self.heads
            .first()
            .and_then(|l| l.first())
            .map_or(0, HeadKv::len)
    }

    /// Number of layers.
    pub fn layers(&self) -> usize {
        self.heads.len()
    }

    /// Number of KV heads per layer.
    pub fn kv_heads(&self) -> usize {
        self.heads.first().map_or(0, Vec::len)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cache_tracks_per_head_history() {
        let mut c = KvCache::new(2, 3, 4);
        assert_eq!(c.seq_len(), 0);
        c.head_mut(0, 0).push(&[1.0; 4], &[2.0; 4]);
        c.head_mut(1, 2).push(&[3.0; 4], &[4.0; 4]);
        assert_eq!(c.head(0, 0).len(), 1);
        assert_eq!(c.head(1, 2).keys().get(0), &[3.0; 4]);
        assert_eq!(c.layers(), 2);
        assert_eq!(c.kv_heads(), 3);
    }
}
