//! Decoder-only transformer forward pass with pluggable attention.

use crate::attention::{AttentionBackend, AttentionRequest};
use crate::kv::KvCache;
use crate::layers::{rmsnorm, swiglu_ffn};
use crate::weights::ModelWeights;
use crate::{ModelConfig, Rope};
use longsight_tensor::vecops;

/// A transformer model ready for token-by-token (decode-style) inference.
///
/// The forward pass follows the Llama architecture (paper Fig 1): RMSNorm →
/// GQA attention (+residual) → RMSNorm → SwiGLU FFN (+residual), with tied
/// embedding/unembedding. The attention computation itself is delegated to an
/// [`AttentionBackend`], which is how the dense baseline, the sliding-window
/// baseline, and LongSight's hybrid backend all run on the *same* model.
///
/// # Example
///
/// ```
/// use longsight_model::{DenseBackend, Model, ModelConfig, ModelWeights};
/// use longsight_tensor::SimRng;
///
/// let cfg = ModelConfig::tiny();
/// let mut rng = SimRng::seed_from(0);
/// let model = Model::new(ModelWeights::random(&cfg, &mut rng));
/// let mut cache = model.new_cache();
/// let logits = model.forward(3, 0, &mut cache, &mut DenseBackend::new());
/// assert_eq!(logits.len(), cfg.vocab);
/// ```
#[derive(Debug, Clone)]
pub struct Model {
    weights: ModelWeights,
    rope: Rope,
}

impl Model {
    /// Wraps a weight set for inference.
    pub fn new(weights: ModelWeights) -> Self {
        let rope = Rope::new(weights.config.head_dim, weights.config.rope_theta);
        Self { weights, rope }
    }

    /// The model configuration.
    pub fn config(&self) -> &ModelConfig {
        &self.weights.config
    }

    /// The underlying weights.
    pub fn weights(&self) -> &ModelWeights {
        &self.weights
    }

    /// Creates an empty KV cache shaped for this model.
    pub fn new_cache(&self) -> KvCache {
        let c = &self.weights.config;
        KvCache::new(c.layers, c.kv_heads, c.head_dim)
    }

    /// Runs one token through the model, appending to `cache` and returning
    /// the next-token logits.
    ///
    /// `pos` must equal `cache.seq_len()` — tokens are processed strictly in
    /// order, decode style.
    ///
    /// # Panics
    ///
    /// Panics if `token` is out of vocabulary or `pos` is out of sync with
    /// the cache.
    pub fn forward(
        &self,
        token: u32,
        pos: usize,
        cache: &mut KvCache,
        backend: &mut dyn AttentionBackend,
    ) -> Vec<f32> {
        let cfg = &self.weights.config;
        assert!(
            (token as usize) < cfg.vocab,
            "token {token} out of vocabulary"
        );
        assert_eq!(
            pos,
            cache.seq_len(),
            "position {pos} out of sync with cache"
        );

        let mut x: Vec<f32> = self.weights.embedding.row(token as usize).to_vec();
        let scale = 1.0 / (cfg.head_dim as f32).sqrt();
        let group = cfg.group_size();

        for (layer_idx, lw) in self.weights.layers.iter().enumerate() {
            let xn = rmsnorm(&x, &lw.attn_norm);

            // Project and cache K/V for every KV head, then attend per group.
            let mut attn_out = vec![0.0f32; cfg.hidden_dim()];
            for kv_head in 0..cfg.kv_heads {
                let mut k = lw.wk[kv_head].matvec(&xn);
                let v = lw.wv[kv_head].matvec(&xn);
                if lw.use_rope {
                    self.rope.apply_in_place(&mut k, pos);
                }
                cache.head_mut(layer_idx, kv_head).push(&k, &v);
            }
            for kv_head in 0..cfg.kv_heads {
                let queries: Vec<Vec<f32>> = (0..group)
                    .map(|g| {
                        let q_head = kv_head * group + g;
                        let mut q = lw.wq[q_head].matvec(&xn);
                        if lw.use_rope {
                            self.rope.apply_in_place(&mut q, pos);
                        }
                        q
                    })
                    .collect();
                let req = AttentionRequest {
                    layer: layer_idx,
                    kv_head,
                    position: pos,
                    queries: &queries,
                    history: cache.head(layer_idx, kv_head),
                    scale,
                };
                let outputs = backend.attend(&req);
                assert_eq!(
                    outputs.len(),
                    group,
                    "backend must return one output per query head"
                );
                for (g, o) in outputs.iter().enumerate() {
                    let q_head = kv_head * group + g;
                    // attn_out += Wo[q_head] · o
                    let projected = lw.wo[q_head].matvec(o);
                    vecops::axpy(1.0, &projected, &mut attn_out);
                }
            }
            vecops::axpy(1.0, &attn_out, &mut x);

            let xn2 = rmsnorm(&x, &lw.ffn_norm);
            let ffn = swiglu_ffn(&xn2, &lw.w_gate, &lw.w_up, &lw.w_down);
            vecops::axpy(1.0, &ffn, &mut x);
        }

        let final_x = rmsnorm(&x, &self.weights.final_norm);
        self.weights.embedding.matvec(&final_x)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::attention::{DenseBackend, SlidingWindowBackend};
    use crate::weights::{InductionParams, ModelWeights};
    use longsight_tensor::SimRng;

    #[test]
    fn forward_is_deterministic() {
        let cfg = ModelConfig::tiny();
        let mut rng = SimRng::seed_from(5);
        let model = Model::new(ModelWeights::random(&cfg, &mut rng));
        let run = || {
            let mut cache = model.new_cache();
            let mut backend = DenseBackend::new();
            let mut out = Vec::new();
            for (pos, tok) in [1u32, 2, 3, 4].iter().enumerate() {
                out = model.forward(*tok, pos, &mut cache, &mut backend);
            }
            out
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn cache_grows_one_token_per_forward() {
        let cfg = ModelConfig::tiny();
        let mut rng = SimRng::seed_from(6);
        let model = Model::new(ModelWeights::random(&cfg, &mut rng));
        let mut cache = model.new_cache();
        let mut backend = DenseBackend::new();
        for pos in 0..5 {
            model.forward(pos as u32 % 4, pos, &mut cache, &mut backend);
            assert_eq!(cache.seq_len(), pos + 1);
        }
    }

    #[test]
    #[should_panic(expected = "out of sync")]
    fn out_of_order_position_panics() {
        let cfg = ModelConfig::tiny();
        let mut rng = SimRng::seed_from(7);
        let model = Model::new(ModelWeights::random(&cfg, &mut rng));
        let mut cache = model.new_cache();
        let mut backend = DenseBackend::new();
        model.forward(0, 3, &mut cache, &mut backend);
    }

    #[test]
    fn window_backend_equals_dense_for_short_sequences() {
        let cfg = ModelConfig::tiny();
        let mut rng = SimRng::seed_from(8);
        let model = Model::new(ModelWeights::induction(
            &cfg,
            &InductionParams::default(),
            &mut rng,
        ));
        let tokens = [1u32, 5, 9, 1, 5];
        let mut c1 = model.new_cache();
        let mut c2 = model.new_cache();
        let mut dense = DenseBackend::new();
        let mut window = SlidingWindowBackend::new(64, 0);
        for (pos, &t) in tokens.iter().enumerate() {
            let a = model.forward(t, pos, &mut c1, &mut dense);
            let b = model.forward(t, pos, &mut c2, &mut window);
            for (x, y) in a.iter().zip(&b) {
                assert!((x - y).abs() < 1e-4);
            }
        }
    }
}
