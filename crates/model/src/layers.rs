//! Elementwise layers: RMSNorm and SwiGLU.

use longsight_tensor::vecops;
use longsight_tensor::Matrix;

/// RMSNorm: `x / rms(x) * gain`, the normalization used by Llama models.
///
/// # Panics
///
/// Panics if `x.len() != gain.len()`.
pub fn rmsnorm(x: &[f32], gain: &[f32]) -> Vec<f32> {
    assert_eq!(x.len(), gain.len(), "rmsnorm gain length mismatch");
    let r = vecops::rms(x, 1e-6);
    x.iter().zip(gain).map(|(v, g)| v / r * g).collect()
}

/// SiLU (swish) activation: `x * sigmoid(x)`.
#[inline]
pub fn silu(x: f32) -> f32 {
    x / (1.0 + (-x).exp())
}

/// SwiGLU feed-forward network: `W_down · (silu(W_gate·x) ⊙ (W_up·x))`.
///
/// # Panics
///
/// Panics on any shape mismatch between the weight matrices and `x`.
pub fn swiglu_ffn(x: &[f32], w_gate: &Matrix, w_up: &Matrix, w_down: &Matrix) -> Vec<f32> {
    let gate = w_gate.matvec(x);
    let up = w_up.matvec(x);
    let hidden: Vec<f32> = gate.iter().zip(&up).map(|(&g, &u)| silu(g) * u).collect();
    w_down.matvec(&hidden)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rmsnorm_produces_unit_rms_with_unit_gain() {
        let x = vec![3.0, -4.0, 5.0, 1.0];
        let g = vec![1.0; 4];
        let y = rmsnorm(&x, &g);
        assert!((vecops::rms(&y, 0.0) - 1.0).abs() < 1e-4);
    }

    #[test]
    fn rmsnorm_is_scale_invariant_in_direction() {
        let x = vec![1.0, 2.0, -1.0];
        let g = vec![1.0; 3];
        let a = rmsnorm(&x, &g);
        let scaled: Vec<f32> = x.iter().map(|v| v * 7.0).collect();
        let b = rmsnorm(&scaled, &g);
        for (p, q) in a.iter().zip(&b) {
            assert!((p - q).abs() < 1e-4);
        }
    }

    #[test]
    fn silu_known_values() {
        assert_eq!(silu(0.0), 0.0);
        assert!((silu(1.0) - 0.731_058_6).abs() < 1e-5);
        assert!(silu(-10.0).abs() < 1e-3);
        assert!((silu(10.0) - 10.0).abs() < 1e-3);
    }

    #[test]
    fn swiglu_zero_input_gives_zero_output() {
        let w = Matrix::identity(3);
        let out = swiglu_ffn(&[0.0; 3], &w, &w, &w);
        assert_eq!(out, vec![0.0; 3]);
    }
}
