//! The attention backend abstraction and reference backends.
//!
//! The transformer forward pass is generic over *how* attention over the KV
//! history is computed. The paper's `LongSightAttn` module "directly replaces
//! the Llama 3 attention module" (§A.1); here the same pluggability is the
//! [`AttentionBackend`] trait. `longsight-core` provides the hybrid
//! dense–sparse backend; this module provides the two reference points the
//! paper compares against:
//!
//! * [`DenseBackend`] — exact full attention (the quality ceiling),
//! * [`SlidingWindowBackend`] — window + attention-sink attention
//!   (StreamingLLM-style, the paper's software baseline in Fig 10).

use crate::kv::HeadKv;
use longsight_tensor::vecops;

/// One grouped-query attention request: all query heads that share a single
/// KV head, for one token position in one layer.
#[derive(Debug)]
pub struct AttentionRequest<'a> {
    /// Decoder layer index.
    pub layer: usize,
    /// KV head index within the layer.
    pub kv_head: usize,
    /// Token position of the query (the history has `position + 1` entries).
    pub position: usize,
    /// Post-RoPE query vectors, one per query head in the GQA group.
    pub queries: &'a [Vec<f32>],
    /// Key/value history for this `(layer, kv_head)`, including the current
    /// token.
    pub history: &'a HeadKv,
    /// Score scale, conventionally `1 / sqrt(head_dim)`.
    pub scale: f32,
}

/// A strategy for computing attention over the KV history.
///
/// Implementations receive `&mut self` so they can accumulate statistics
/// (e.g. filter ratios) or maintain device-side state across tokens.
pub trait AttentionBackend {
    /// Computes the attention output for each query head in the request's
    /// group. Each output has the head dimension.
    fn attend(&mut self, req: &AttentionRequest<'_>) -> Vec<Vec<f32>>;

    /// Short human-readable label for reports.
    fn label(&self) -> String;

    /// Called when a sequence ends; backends with per-sequence state reset
    /// here. The default does nothing.
    fn reset(&mut self) {}
}

/// Computes softmax attention over an explicit set of candidate token
/// indices.
///
/// Shared by every backend: dense attention passes `0..=position`, sparse
/// backends pass the union of window, sinks, and retrieved top-k indices.
///
/// # Panics
///
/// Panics if `candidates` is empty or contains an index beyond the history.
pub fn attend_over_indices(
    q: &[f32],
    history: &HeadKv,
    candidates: &[usize],
    scale: f32,
) -> Vec<f32> {
    assert!(
        !candidates.is_empty(),
        "attention needs at least one candidate"
    );
    let keys = history.keys();
    let values = history.values();
    let mut scores: Vec<f32> = candidates
        .iter()
        .map(|&i| vecops::dot(q, keys.get(i)) * scale)
        .collect();
    vecops::softmax_in_place(&mut scores);
    let mut out = vec![0.0f32; values.dim()];
    for (&i, &w) in candidates.iter().zip(&scores) {
        vecops::axpy(w, values.get(i), &mut out);
    }
    out
}

/// Computes softmax attention from precomputed raw scores over candidate
/// indices (used when scores were produced elsewhere, e.g. returned by the
/// simulated DReX device).
///
/// # Panics
///
/// Panics if lengths mismatch or `candidates` is empty.
pub fn attend_with_scores(history: &HeadKv, candidates: &[usize], raw_scores: &[f32]) -> Vec<f32> {
    assert_eq!(
        candidates.len(),
        raw_scores.len(),
        "score/candidate length mismatch"
    );
    assert!(
        !candidates.is_empty(),
        "attention needs at least one candidate"
    );
    let values = history.values();
    let mut weights = raw_scores.to_vec();
    vecops::softmax_in_place(&mut weights);
    let mut out = vec![0.0f32; values.dim()];
    for (&i, &w) in candidates.iter().zip(&weights) {
        vecops::axpy(w, values.get(i), &mut out);
    }
    out
}

/// Exact full (dense) attention over the entire history.
#[derive(Debug, Clone, Default)]
pub struct DenseBackend;

impl DenseBackend {
    /// Creates the dense backend.
    pub fn new() -> Self {
        Self
    }
}

impl AttentionBackend for DenseBackend {
    fn attend(&mut self, req: &AttentionRequest<'_>) -> Vec<Vec<f32>> {
        let candidates: Vec<usize> = (0..=req.position).collect();
        req.queries
            .iter()
            .map(|q| attend_over_indices(q, req.history, &candidates, req.scale))
            .collect()
    }

    fn label(&self) -> String {
        "dense".into()
    }
}

/// Sliding-window attention with attention-sink tokens (StreamingLLM-style).
///
/// Attends to the `sinks` earliest tokens plus the `window` most recent
/// tokens. This is the paper's software baseline: cheap, hardware friendly,
/// but blind to long-range dependencies outside the window.
#[derive(Debug, Clone)]
pub struct SlidingWindowBackend {
    window: usize,
    sinks: usize,
}

impl SlidingWindowBackend {
    /// Creates a backend with the given window size and sink-token count.
    ///
    /// # Panics
    ///
    /// Panics if `window == 0` (a query must at least see itself).
    pub fn new(window: usize, sinks: usize) -> Self {
        assert!(window > 0, "window must be positive");
        Self { window, sinks }
    }

    /// The candidate set for a query at `position`: sinks ∪ recent window.
    pub fn candidates(&self, position: usize) -> Vec<usize> {
        let total = position + 1;
        let window_start = total.saturating_sub(self.window);
        let mut c: Vec<usize> = (0..self.sinks.min(window_start)).collect();
        c.extend(window_start..total);
        c
    }
}

impl AttentionBackend for SlidingWindowBackend {
    fn attend(&mut self, req: &AttentionRequest<'_>) -> Vec<Vec<f32>> {
        let candidates = self.candidates(req.position);
        req.queries
            .iter()
            .map(|q| attend_over_indices(q, req.history, &candidates, req.scale))
            .collect()
    }

    fn label(&self) -> String {
        format!("window(W={},sinks={})", self.window, self.sinks)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn history_with(n: usize, dim: usize) -> HeadKv {
        let mut h = HeadKv::new(dim);
        for i in 0..n {
            let k: Vec<f32> = (0..dim).map(|d| ((i * 7 + d) as f32 * 0.3).sin()).collect();
            let v: Vec<f32> = (0..dim).map(|d| ((i * 3 + d) as f32 * 0.5).cos()).collect();
            h.push(&k, &v);
        }
        h
    }

    #[test]
    fn dense_attention_weights_sum_applies_values() {
        let h = history_with(4, 8);
        let q = vec![0.5; 8];
        let out = attend_over_indices(&q, &h, &[0, 1, 2, 3], 0.35);
        assert_eq!(out.len(), 8);
        assert!(out.iter().all(|x| x.is_finite()));
    }

    #[test]
    fn single_candidate_returns_its_value() {
        let h = history_with(3, 4);
        let q = vec![1.0; 4];
        let out = attend_over_indices(&q, &h, &[2], 0.5);
        assert_eq!(out, h.values().get(2));
    }

    #[test]
    fn window_candidates_include_sinks_and_recent() {
        let b = SlidingWindowBackend::new(3, 2);
        // pos 9 → tokens 0..=9, window covers 7, 8, 9; sinks 0, 1.
        assert_eq!(b.candidates(9), vec![0, 1, 7, 8, 9]);
        // Early positions: window covers everything; no duplicated sinks.
        assert_eq!(b.candidates(1), vec![0, 1]);
        assert_eq!(b.candidates(3), vec![0, 1, 2, 3]);
    }

    #[test]
    fn window_equals_dense_when_window_covers_history() {
        let h = history_with(5, 8);
        let q = vec![vec![0.1; 8], vec![-0.2; 8]];
        let req = AttentionRequest {
            layer: 0,
            kv_head: 0,
            position: 4,
            queries: &q,
            history: &h,
            scale: 0.35,
        };
        let dense = DenseBackend::new().attend(&req);
        let windowed = SlidingWindowBackend::new(100, 0).attend(&req);
        for (a, b) in dense.iter().zip(&windowed) {
            for (x, y) in a.iter().zip(b) {
                assert!((x - y).abs() < 1e-6);
            }
        }
    }

    #[test]
    fn attend_with_scores_matches_attend_over_indices() {
        let h = history_with(6, 8);
        let q = vec![0.3; 8];
        let cands = vec![1usize, 3, 5];
        let scale = 0.35;
        let raw: Vec<f32> = cands
            .iter()
            .map(|&i| vecops::dot(&q, h.keys().get(i)) * scale)
            .collect();
        let a = attend_over_indices(&q, &h, &cands, scale);
        let b = attend_with_scores(&h, &cands, &raw);
        for (x, y) in a.iter().zip(&b) {
            assert!((x - y).abs() < 1e-6);
        }
    }
}
