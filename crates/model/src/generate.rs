//! Autoregressive generation (the decode loop of paper Fig 1).

use crate::attention::AttentionBackend;
use crate::kv::KvCache;
use crate::transformer::Model;
use longsight_tensor::vecops;

/// Decoding strategy for picking the next token.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Sampling {
    /// Always the arg-max token.
    Greedy,
    /// Softmax sampling at the given temperature (requires a seed).
    Temperature {
        /// Softmax temperature (> 0).
        temperature: f32,
        /// RNG seed.
        seed: u64,
    },
}

/// A generation session: prompt prefill + token-by-token decode over a
/// pluggable attention backend.
///
/// # Example
///
/// ```
/// use longsight_model::{DenseBackend, Generator, Model, ModelConfig, ModelWeights, Sampling};
/// use longsight_tensor::SimRng;
///
/// let cfg = ModelConfig::tiny();
/// let mut rng = SimRng::seed_from(0);
/// let model = Model::new(ModelWeights::random(&cfg, &mut rng));
/// let mut backend = DenseBackend::new();
/// let mut gen = Generator::new(&model, &mut backend);
/// gen.prefill(&[1, 2, 3]);
/// let out = gen.decode(4, Sampling::Greedy);
/// assert_eq!(out.len(), 4);
/// ```
pub struct Generator<'a> {
    model: &'a Model,
    backend: &'a mut dyn AttentionBackend,
    cache: KvCache,
    position: usize,
    last_logits: Option<Vec<f32>>,
}

impl std::fmt::Debug for Generator<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Generator")
            .field("backend", &self.backend.label())
            .field("position", &self.position)
            .finish_non_exhaustive()
    }
}

impl<'a> Generator<'a> {
    /// Starts a fresh session (resets the backend's per-sequence state).
    pub fn new(model: &'a Model, backend: &'a mut dyn AttentionBackend) -> Self {
        backend.reset();
        Self {
            cache: model.new_cache(),
            model,
            backend,
            position: 0,
            last_logits: None,
        }
    }

    /// Current sequence length (prompt + generated).
    pub fn len(&self) -> usize {
        self.position
    }

    /// Whether nothing has been fed yet.
    pub fn is_empty(&self) -> bool {
        self.position == 0
    }

    /// Runs the prompt through the model (the prefill stage).
    ///
    /// # Panics
    ///
    /// Panics if any token is out of vocabulary.
    pub fn prefill(&mut self, prompt: &[u32]) {
        for &t in prompt {
            self.last_logits =
                Some(
                    self.model
                        .forward(t, self.position, &mut self.cache, self.backend),
                );
            self.position += 1;
        }
    }

    /// Generates `n` tokens autoregressively.
    ///
    /// # Panics
    ///
    /// Panics if called before any token was prefilled.
    pub fn decode(&mut self, n: usize, sampling: Sampling) -> Vec<u32> {
        assert!(
            self.last_logits.is_some(),
            "decode requires at least one prefilled token"
        );
        let mut rng = match sampling {
            Sampling::Temperature { seed, .. } => Some(longsight_tensor::SimRng::seed_from(seed)),
            Sampling::Greedy => None,
        };
        let mut out = Vec::with_capacity(n);
        for _ in 0..n {
            let logits = self.last_logits.as_ref().expect("checked above");
            let next = match sampling {
                Sampling::Greedy => vecops::argmax(logits).expect("non-empty vocabulary") as u32,
                Sampling::Temperature { temperature, .. } => {
                    assert!(temperature > 0.0, "temperature must be positive");
                    let mut probs: Vec<f32> = logits.iter().map(|l| l / temperature).collect();
                    vecops::softmax_in_place(&mut probs);
                    let weights: Vec<f64> = probs.iter().map(|&p| p as f64).collect();
                    rng.as_mut()
                        .expect("seeded above")
                        .weighted_choice(&weights) as u32
                }
            };
            out.push(next);
            self.last_logits =
                Some(
                    self.model
                        .forward(next, self.position, &mut self.cache, self.backend),
                );
            self.position += 1;
        }
        out
    }

    /// The logits produced by the most recent token.
    pub fn last_logits(&self) -> Option<&[f32]> {
        self.last_logits.as_deref()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::attention::{DenseBackend, SlidingWindowBackend};
    use crate::weights::{InductionParams, ModelWeights};
    use crate::ModelConfig;
    use longsight_tensor::SimRng;

    fn induction_model() -> Model {
        let cfg = ModelConfig::tiny();
        let mut rng = SimRng::seed_from(31);
        Model::new(ModelWeights::induction(
            &cfg,
            &InductionParams::default(),
            &mut rng,
        ))
    }

    #[test]
    fn greedy_generation_is_deterministic() {
        let model = induction_model();
        let run = || {
            let mut backend = DenseBackend::new();
            let mut g = Generator::new(&model, &mut backend);
            g.prefill(&[5, 6, 7, 8]);
            g.decode(6, Sampling::Greedy)
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn induction_model_copies_a_repeated_motif() {
        // Prompt: motif ... filler ... motif-prefix → the model should
        // greedily continue the motif (retrieving its first occurrence).
        let model = induction_model();
        let motif = [100u32, 200, 300, 400, 500];
        let mut prompt: Vec<u32> = motif.to_vec();
        prompt.extend([7u32, 13, 21, 42, 77, 91, 11, 23]);
        prompt.extend(&motif[..2]); // "100 200" — expect 300, 400, 500 next
        let mut backend = DenseBackend::new();
        let mut g = Generator::new(&model, &mut backend);
        g.prefill(&prompt);
        let out = g.decode(3, Sampling::Greedy);
        assert_eq!(out, vec![300, 400, 500], "induction should copy the motif");
    }

    #[test]
    fn window_backend_forgets_out_of_window_motifs() {
        let model = induction_model();
        let motif = [100u32, 200, 300, 400, 500];
        let mut prompt: Vec<u32> = motif.to_vec();
        // Push the motif far outside a 8-token window.
        prompt.extend((0..32).map(|i| (i * 13 % 900 + 24) as u32));
        prompt.extend(&motif[..2]);
        let mut windowed = SlidingWindowBackend::new(8, 0);
        let mut g = Generator::new(&model, &mut windowed);
        g.prefill(&prompt);
        let windowed_out = g.decode(3, Sampling::Greedy);
        assert_ne!(
            windowed_out,
            vec![300, 400, 500],
            "an 8-token window cannot retrieve the distant motif"
        );
    }

    #[test]
    fn temperature_sampling_respects_seed() {
        let model = induction_model();
        let sample = |seed| {
            let mut backend = DenseBackend::new();
            let mut g = Generator::new(&model, &mut backend);
            g.prefill(&[1, 2, 3]);
            g.decode(
                5,
                Sampling::Temperature {
                    temperature: 1.0,
                    seed,
                },
            )
        };
        assert_eq!(sample(1), sample(1));
        assert_ne!(sample(1), sample(2));
    }

    #[test]
    #[should_panic(expected = "decode requires")]
    fn decode_without_prefill_panics() {
        let model = induction_model();
        let mut backend = DenseBackend::new();
        let mut g = Generator::new(&model, &mut backend);
        let _ = g.decode(1, Sampling::Greedy);
    }
}
