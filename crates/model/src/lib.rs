//! Transformer inference substrate for the LongSight reproduction.
//!
//! This crate provides everything "model shaped" that the paper's experiments
//! need:
//!
//! * [`ModelConfig`] — Llama-3-1B/8B architecture presets (paper Table 1) and
//!   a tiny test configuration,
//! * [`ModelWeights`] — synthetic weight generation, including a
//!   hand-constructed *induction-head* transformer whose loss genuinely
//!   depends on long-range retrieval (see the `weights` module docs),
//! * [`Model`] — a decode-style GQA forward pass (RMSNorm, RoPE, SwiGLU)
//!   generic over an [`AttentionBackend`],
//! * reference backends: [`DenseBackend`] (exact attention) and
//!   [`SlidingWindowBackend`] (StreamingLLM-style window + sinks),
//! * [`corpus`] — synthetic Project-Gutenberg-like and concatenated-Wiki2-like
//!   corpora with ground-truth "this token is predictable via long-range
//!   retrieval" annotations,
//! * [`perplexity`] — the paper's quality metric,
//! * [`tracegen`] — long-context Q/K/V trace generation for algorithm
//!   experiments beyond the reach of a full forward pass.
//!
//! # Example
//!
//! ```
//! use longsight_model::{corpus, perplexity, DenseBackend, Model, ModelConfig};
//! use longsight_model::{InductionParams, ModelWeights};
//! use longsight_tensor::SimRng;
//!
//! let cfg = ModelConfig::tiny();
//! let mut rng = SimRng::seed_from(0);
//! let model = Model::new(ModelWeights::induction(&cfg, &InductionParams::default(), &mut rng));
//! let text = corpus::generate(&corpus::CorpusConfig::long_book(cfg.vocab), 256, &mut rng);
//! let report = perplexity::evaluate(&model, &text, &mut DenseBackend::new(), 8);
//! assert!(report.perplexity.is_finite());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod attention;
mod config;
pub mod corpus;
mod generate;
mod kv;
pub mod layers;
pub mod perplexity;
mod rope;
pub mod tracegen;
mod transformer;
mod weights;

pub use attention::{
    attend_over_indices, attend_with_scores, AttentionBackend, AttentionRequest, DenseBackend,
    SlidingWindowBackend,
};
pub use config::ModelConfig;
pub use generate::{Generator, Sampling};
pub use kv::{HeadKv, KvCache};
pub use rope::Rope;
pub use transformer::Model;
pub use weights::{InductionParams, LayerWeights, ModelWeights};
