//! Model weights, including the hand-constructed induction-head transformer.
//!
//! # Why constructed weights?
//!
//! We do not ship Llama checkpoints (see `DESIGN.md`). For the *quality*
//! experiments (paper Figs 3, 4, 10) the model must genuinely depend on
//! long-range context — otherwise "perplexity within 5 % of dense" is
//! trivially satisfied by any sparse method and the experiments are vacuous.
//!
//! [`ModelWeights::induction`] builds a transformer that implements the
//! classic *induction head* circuit by construction:
//!
//! * **Layer 0** — previous-token heads. Queries and keys read a direction
//!   shared by all token embeddings, so the pre-RoPE key is (nearly) a
//!   constant vector; the query is that vector rotated by −1 positions, so
//!   after RoPE the score peaks at relative distance −1. The value path
//!   copies the *current* token's identity through an orthonormal projection
//!   `P`, and the output projection writes it into a dedicated residual
//!   subspace `B` (columns of an orthonormal `T`).
//! * **Layers ≥ 1** — induction heads (NoPE: RoPE disabled for these layers,
//!   as in production interleaved-NoPE models, so content matching is
//!   position-invariant). Keys read the `B` subspace (i.e. "the token before
//!   me was X"), queries read the current token identity, so position `s`
//!   scores highly when `token[s−1] == token[t]`. The value returns token
//!   `s`'s identity and the output projection writes it back into embedding
//!   space — predicting that the current token will be followed by whatever
//!   followed its previous occurrence.
//!
//! On corpora with repeated motifs (see [`crate::corpus`]) this yields a model
//! whose loss *depends on retrieving a handful of distant keys with high
//! dot-product similarity* — exactly the regime LongSight exploits (§4).
//! The shared embedding direction also gives keys the strong DC component /
//! clustering that makes raw sign bits ineffective and ITQ valuable (§5.4).

use crate::{ModelConfig, Rope};
use longsight_tensor::{linalg, Matrix, SimRng};

/// Weights of one decoder layer, stored per attention head.
#[derive(Debug, Clone)]
pub struct LayerWeights {
    /// Query projections, one `head_dim × hidden` matrix per query head.
    pub wq: Vec<Matrix>,
    /// Key projections, one `head_dim × hidden` matrix per KV head.
    pub wk: Vec<Matrix>,
    /// Value projections, one `head_dim × hidden` matrix per KV head.
    pub wv: Vec<Matrix>,
    /// Output projections, one `hidden × head_dim` matrix per query head
    /// (their sum over heads is the usual `W_O`).
    pub wo: Vec<Matrix>,
    /// SwiGLU gate projection (`ffn_dim × hidden`).
    pub w_gate: Matrix,
    /// SwiGLU up projection (`ffn_dim × hidden`).
    pub w_up: Matrix,
    /// SwiGLU down projection (`hidden × ffn_dim`).
    pub w_down: Matrix,
    /// Pre-attention RMSNorm gain.
    pub attn_norm: Vec<f32>,
    /// Pre-FFN RMSNorm gain.
    pub ffn_norm: Vec<f32>,
    /// Whether RoPE is applied to this layer's queries and keys.
    pub use_rope: bool,
}

/// Full model weights.
#[derive(Debug, Clone)]
pub struct ModelWeights {
    /// Architecture this weight set was built for.
    pub config: ModelConfig,
    /// Token embedding table (`vocab × hidden`); also used (tied) as the
    /// unembedding.
    pub embedding: Matrix,
    /// Final RMSNorm gain.
    pub final_norm: Vec<f32>,
    /// Per-layer weights.
    pub layers: Vec<LayerWeights>,
}

/// Tunable constants of the induction construction.
#[derive(Debug, Clone)]
pub struct InductionParams {
    /// Weight of the shared embedding direction `u` (the DC component).
    pub common_weight: f32,
    /// Weight of the per-token identity component.
    pub identity_weight: f32,
    /// Softmax sharpness of the previous-token heads.
    pub prev_sharpness: f32,
    /// Softmax sharpness of the induction heads.
    pub induction_sharpness: f32,
    /// Output gain of the induction write-back into embedding space.
    pub induction_gain: f32,
    /// DC offset injected into induction-layer keys (reading the shared
    /// direction `u`). This reproduces the strong anisotropy of real LLaMA
    /// keys that defeats raw sign-concordance filtering (§5.4); it is nearly
    /// constant across positions, so it barely affects score *ranking*.
    pub key_dc: f32,
    /// DC offset injected into induction-layer *queries*, along the same
    /// per-head direction as `key_dc`. When queries and keys share a strong
    /// common component, the DC-dominated dimensions always agree and carry
    /// no filtering information — the sign-capacity loss ITQ repairs.
    pub query_dc: f32,
    /// Power-law exponent of the per-dimension content spectrum of the
    /// induction K/Q projections: dimension `i` is scaled by `(i+1)^-p`.
    /// Real LLaMA K/Q representations concentrate score-relevant variance in
    /// a few directions; with a noise floor underneath ([`Self::kq_noise`]),
    /// the low-variance dimensions' sign bits become coin flips — raw SCF
    /// loses discrimination while dot-product ranking (driven by the
    /// high-variance dims) is barely affected. ITQ re-spreads the signal
    /// across all sign bits.
    pub content_spectrum_power: f32,
    /// Independent noise added to the induction K/Q projections, relative to
    /// the content entry scale (the per-dimension noise floor).
    pub kq_noise: f32,
    /// Magnitude of the random FFN path (small, so it adds realism without
    /// destroying the circuit).
    pub ffn_gain: f32,
    /// Magnitude of dense random noise added to every projection.
    pub weight_noise: f32,
}

impl Default for InductionParams {
    fn default() -> Self {
        Self {
            common_weight: 0.8,
            identity_weight: 1.0,
            prev_sharpness: 16.0,
            induction_sharpness: 8.0,
            induction_gain: 1.5,
            key_dc: 0.2,
            query_dc: 0.0,
            content_spectrum_power: 0.5,
            kq_noise: 0.25,
            ffn_gain: 0.02,
            weight_noise: 0.02,
        }
    }
}

impl ModelWeights {
    /// Fully random (untrained) weights with `1/sqrt(fan_in)` scaling.
    ///
    /// Useful for smoke tests and for exercising code paths where prediction
    /// quality is irrelevant.
    ///
    /// # Panics
    ///
    /// Panics if the configuration is invalid.
    pub fn random(config: &ModelConfig, rng: &mut SimRng) -> Self {
        config.validate().expect("invalid model config");
        let h = config.hidden_dim();
        let d = config.head_dim;
        let scale_h = 1.0 / (h as f32).sqrt();
        let scale_f = 1.0 / (config.ffn_dim as f32).sqrt();
        let layers = (0..config.layers)
            .map(|_| {
                let mut mk = |rows: usize, cols: usize, s: f32| {
                    let mut m = Matrix::random_gaussian(rows, cols, rng);
                    m.scale_in_place(s);
                    m
                };
                LayerWeights {
                    wq: (0..config.q_heads).map(|_| mk(d, h, scale_h)).collect(),
                    wk: (0..config.kv_heads).map(|_| mk(d, h, scale_h)).collect(),
                    wv: (0..config.kv_heads).map(|_| mk(d, h, scale_h)).collect(),
                    wo: (0..config.q_heads)
                        .map(|_| mk(h, d, 1.0 / (d as f32).sqrt()))
                        .collect(),
                    w_gate: mk(config.ffn_dim, h, scale_h),
                    w_up: mk(config.ffn_dim, h, scale_h),
                    w_down: mk(h, config.ffn_dim, scale_f),
                    attn_norm: vec![1.0; h],
                    ffn_norm: vec![1.0; h],
                    use_rope: true,
                }
            })
            .collect();
        let mut embedding = Matrix::random_gaussian(config.vocab, h, rng);
        embedding.scale_in_place(scale_h);
        Self {
            config: config.clone(),
            embedding,
            final_norm: vec![1.0; h],
            layers,
        }
    }

    /// Hand-constructed induction-head transformer (see module docs).
    ///
    /// Layer 0 hosts previous-token heads (RoPE on); all later layers host
    /// induction heads (RoPE off). With a single-layer config the model
    /// cannot implement induction and degenerates to previous-token
    /// attention only.
    ///
    /// # Panics
    ///
    /// Panics if the configuration is invalid.
    pub fn induction(config: &ModelConfig, params: &InductionParams, rng: &mut SimRng) -> Self {
        config.validate().expect("invalid model config");
        let h = config.hidden_dim();
        let d = config.head_dim;
        let rope = Rope::new(d, config.rope_theta);
        let inv_sqrt_h = 1.0 / (h as f32).sqrt();

        // Per-KV-head orthonormal projections: P (identity readout) and
        // T (the residual subspace layer 0 writes and later layers read),
        // plus the shared DC direction u as the first basis column. A single
        // orthonormal basis keeps them all *exactly* mutually orthogonal:
        // the DC component then cannot pollute identity matching, which is
        // what limits the circuit's retrieval margin.
        let basis_cols = 2 * d * config.kv_heads + 1;
        assert!(
            basis_cols <= h,
            "induction construction needs hidden_dim >= 2 * head_dim * kv_heads + 1 \
             ({} > {})",
            basis_cols,
            h
        );
        let big = orthonormal_columns(h, basis_cols, rng);
        let u: Vec<f32> = big.col(0);
        let p_proj: Vec<Matrix> = (0..config.kv_heads)
            .map(|j| slice_columns(&big, 1 + 2 * d * j, d))
            .collect();
        let t_proj: Vec<Matrix> = (0..config.kv_heads)
            .map(|j| slice_columns(&big, 1 + 2 * d * j + d, d))
            .collect();

        // Embeddings: e_v = common·u + identity·η_v, with |η_v| ≈ 1.
        let embedding = {
            let mut e = Matrix::zeros(config.vocab, h);
            for v in 0..config.vocab {
                let eta = rng.normal_vec(h);
                for (val, (&uc, &nc)) in e.row_mut(v).iter_mut().zip(u.iter().zip(&eta)) {
                    *val = params.common_weight * uc + params.identity_weight * nc * inv_sqrt_h;
                }
            }
            e
        };

        let mut layers = Vec::with_capacity(config.layers);
        for layer in 0..config.layers {
            let lw = if layer == 0 {
                Self::build_prev_token_layer(config, params, &rope, &u, &p_proj, &t_proj, rng)
            } else {
                Self::build_induction_layer(config, params, &u, &p_proj, &t_proj, rng)
            };
            layers.push(lw);
        }

        Self {
            config: config.clone(),
            embedding,
            final_norm: vec![1.0; h],
            layers,
        }
    }

    fn build_prev_token_layer(
        config: &ModelConfig,
        params: &InductionParams,
        rope: &Rope,
        u: &[f32],
        p_proj: &[Matrix],
        t_proj: &[Matrix],
        rng: &mut SimRng,
    ) -> LayerWeights {
        let h = config.hidden_dim();
        let d = config.head_dim;
        let g = config.group_size();
        // RMSNormed inputs have |x̂| = sqrt(h); u·x̂ ≈ sqrt(h)·cos(u, x).
        // Normalize so the key magnitude is O(1).
        let read_u_scale = 1.0 / (h as f32).sqrt();

        let mut wk = Vec::with_capacity(config.kv_heads);
        let mut wv = Vec::with_capacity(config.kv_heads);
        let mut wq = Vec::with_capacity(config.q_heads);
        let mut wo = Vec::with_capacity(config.q_heads);
        // Concentrate key energy in the highest-frequency RoPE pairs: the dot
        // product as a function of relative distance is a sum of cosines
        // weighted by per-pair energy, and only fast-rotating pairs give a
        // sharp peak at distance −1 (slow pairs barely move per token). Using
        // the top three frequencies suppresses the aliasing a single cosine
        // would have.
        let n_freq_pairs = 3.min(d / 2);
        for j in 0..config.kv_heads {
            // Base key direction for this head.
            let mut k0 = vec![0.0f32; d];
            for p in 0..n_freq_pairs {
                k0[p] = rng.normal() as f32;
                k0[p + d / 2] = rng.normal() as f32;
            }
            longsight_tensor::vecops::normalize_in_place(&mut k0);
            // Key: k = k0 · (u·x̂) · read_u_scale  →  Wk = k0 ⊗ u · scale.
            let wk_j = outer(&k0, u, read_u_scale);
            wk.push(add_noise(wk_j, params.weight_noise, rng));
            // Value: current token identity through P_j.
            let wv_j = p_proj[j].transpose();
            wv.push(add_noise(wv_j, params.weight_noise, rng));
            // Queries: q0 = R_{-1} k0, sharpened.
            let mut q0 = k0.clone();
            rope.apply_signed(&mut q0, -1.0);
            for _ in 0..g {
                let wq_i = outer(&q0, u, read_u_scale * params.prev_sharpness * d as f32);
                wq.push(add_noise(wq_i, params.weight_noise, rng));
                // Output: write the (previous token's) identity into T_j.
                // Divide by the group size since every query head in the
                // group writes the same content.
                let mut wo_i = t_proj[j].clone();
                wo_i.scale_in_place(1.0 / g as f32);
                wo.push(add_noise(wo_i, params.weight_noise, rng));
            }
        }
        Self::finish_layer(config, params, wq, wk, wv, wo, true, rng)
    }

    fn build_induction_layer(
        config: &ModelConfig,
        params: &InductionParams,
        u: &[f32],
        p_proj: &[Matrix],
        t_proj: &[Matrix],
        rng: &mut SimRng,
    ) -> LayerWeights {
        let h = config.hidden_dim();
        let d = config.head_dim;
        let g = config.group_size();
        let n_induction = (config.layers - 1).max(1) as f32;
        let read_u_scale = 1.0 / (h as f32).sqrt();
        let mut wk = Vec::with_capacity(config.kv_heads);
        let mut wv = Vec::with_capacity(config.kv_heads);
        let mut wq = Vec::with_capacity(config.q_heads);
        let mut wo = Vec::with_capacity(config.q_heads);
        // Per-dimension content spectrum: score-relevant variance decays as
        // (i+1)^-p, reproducing the anisotropy of real K/Q representations.
        let spectrum: Vec<f32> = (0..d)
            .map(|i| (i as f32 + 1.0).powf(-params.content_spectrum_power))
            .collect();
        // The K/Q content rows have orthonormal-scale entries (~1/sqrt(h));
        // the noise floor is expressed relative to that scale.
        let kq_noise = params.kq_noise.max(params.weight_noise);
        for j in 0..config.kv_heads {
            // Key: read the "previous token identity" subspace T_j through
            // the content spectrum, plus a DC offset in a fixed direction b0
            // driven by the (near-constant) u-component of the residual
            // stream. The `d` factor brings the per-dimension offset to the
            // same order as the content.
            let mut b0 = rng.normal_vec(d);
            longsight_tensor::vecops::normalize_in_place(&mut b0);
            let wk_j = scale_rows(t_proj[j].transpose(), &spectrum).add(&outer(
                &b0,
                u,
                params.key_dc * read_u_scale * d as f32,
            ));
            wk.push(add_noise(wk_j, kq_noise, rng));
            // Value: current token identity (full rank — values are not
            // spectrum-shaped).
            wv.push(add_noise(p_proj[j].transpose(), params.weight_noise, rng));
            for _ in 0..g {
                // Query: current token identity, sharpened, optionally with
                // a DC component along the head's key-DC direction. The
                // query stays full-rank: ranking is an inner product against
                // the spectrum-shaped keys, so the score margin survives
                // while the keys' low-variance sign bits do not.
                let base =
                    p_proj[j]
                        .transpose()
                        .add(&outer(&b0, u, params.query_dc * read_u_scale));
                // Noise goes in before the sharpness scale so the noise
                // floor tracks the query magnitude (sign bits care about
                // ratios, not absolute scale).
                let mut wq_i = add_noise(base, params.weight_noise, rng);
                wq_i.scale_in_place(params.induction_sharpness * d as f32);
                wq.push(wq_i);
                // Output: write the retrieved identity back into embedding
                // space; compensate for the rank-d projection loss (h/d) and
                // split across induction layers and group members.
                let mut wo_i = p_proj[j].clone();
                wo_i.scale_in_place(
                    params.induction_gain * (h as f32 / d as f32) / (g as f32 * n_induction),
                );
                wo.push(add_noise(wo_i, params.weight_noise, rng));
            }
        }
        Self::finish_layer(config, params, wq, wk, wv, wo, false, rng)
    }

    #[allow(clippy::too_many_arguments)]
    fn finish_layer(
        config: &ModelConfig,
        params: &InductionParams,
        wq: Vec<Matrix>,
        wk: Vec<Matrix>,
        wv: Vec<Matrix>,
        wo: Vec<Matrix>,
        use_rope: bool,
        rng: &mut SimRng,
    ) -> LayerWeights {
        let h = config.hidden_dim();
        let scale_h = 1.0 / (h as f32).sqrt();
        let scale_f = params.ffn_gain / (config.ffn_dim as f32).sqrt();
        let mut w_gate = Matrix::random_gaussian(config.ffn_dim, h, rng);
        w_gate.scale_in_place(scale_h);
        let mut w_up = Matrix::random_gaussian(config.ffn_dim, h, rng);
        w_up.scale_in_place(scale_h);
        let mut w_down = Matrix::random_gaussian(h, config.ffn_dim, rng);
        w_down.scale_in_place(scale_f);
        LayerWeights {
            wq,
            wk,
            wv,
            wo,
            w_gate,
            w_up,
            w_down,
            attn_norm: vec![1.0; h],
            ffn_norm: vec![1.0; h],
            use_rope,
        }
    }
}

/// `out[r][c] = a[r] * b[c] * scale` — a rank-1 projection matrix.
fn outer(a: &[f32], b: &[f32], scale: f32) -> Matrix {
    Matrix::from_fn(a.len(), b.len(), |r, c| a[r] * b[c] * scale)
}

/// Scales row `r` of `m` by `scales[r]` (diagonal pre-multiplication).
fn scale_rows(mut m: Matrix, scales: &[f32]) -> Matrix {
    assert_eq!(m.rows(), scales.len(), "row-scale length mismatch");
    for (r, &s) in scales.iter().enumerate() {
        for v in m.row_mut(r) {
            *v *= s;
        }
    }
    m
}

fn add_noise(mut m: Matrix, noise: f32, rng: &mut SimRng) -> Matrix {
    if noise > 0.0 {
        let scale = noise / (m.cols() as f32).sqrt();
        for v in m.data_mut() {
            *v += rng.normal() as f32 * scale;
        }
    }
    m
}

/// First `k` columns of a random h×h orthogonal matrix, as an `h × k` matrix.
fn orthonormal_columns(h: usize, k: usize, rng: &mut SimRng) -> Matrix {
    assert!(
        k <= h,
        "cannot have more orthonormal columns than dimensions"
    );
    let q = linalg::random_orthogonal(h, rng);
    slice_columns(&q, 0, k)
}

/// Columns `[start, start+k)` of `m` as a new `rows × k` matrix.
fn slice_columns(m: &Matrix, start: usize, k: usize) -> Matrix {
    Matrix::from_fn(m.rows(), k, |r, c| m.get(r, start + c))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn random_weights_have_expected_shapes() {
        let cfg = ModelConfig::tiny();
        let mut rng = SimRng::seed_from(1);
        let w = ModelWeights::random(&cfg, &mut rng);
        assert_eq!(w.layers.len(), cfg.layers);
        let l = &w.layers[0];
        assert_eq!(l.wq.len(), cfg.q_heads);
        assert_eq!(l.wk.len(), cfg.kv_heads);
        assert_eq!(l.wq[0].rows(), cfg.head_dim);
        assert_eq!(l.wq[0].cols(), cfg.hidden_dim());
        assert_eq!(l.wo[0].rows(), cfg.hidden_dim());
        assert_eq!(l.wo[0].cols(), cfg.head_dim);
        assert_eq!(w.embedding.rows(), cfg.vocab);
    }

    #[test]
    fn induction_weights_rope_pattern() {
        let cfg = ModelConfig::tiny();
        let mut rng = SimRng::seed_from(2);
        let w = ModelWeights::induction(&cfg, &InductionParams::default(), &mut rng);
        assert!(
            w.layers[0].use_rope,
            "layer 0 must use RoPE (prev-token head)"
        );
        for l in &w.layers[1..] {
            assert!(!l.use_rope, "induction layers are NoPE");
        }
    }

    #[test]
    fn projection_subspaces_are_orthonormal() {
        let mut rng = SimRng::seed_from(3);
        let q = orthonormal_columns(32, 16, &mut rng);
        assert!(linalg::orthogonality_error(&q) < 1e-4);
    }

    #[test]
    #[should_panic(expected = "hidden_dim >= 2 * head_dim * kv_heads")]
    fn induction_rejects_too_narrow_models() {
        // head_dim * kv_heads * 2 = 2*32*2 = 128 > hidden... craft one.
        let cfg = ModelConfig {
            name: "narrow",
            layers: 2,
            q_heads: 2,
            kv_heads: 2,
            head_dim: 32,
            ffn_dim: 64,
            vocab: 16,
            rope_theta: 1e4,
        }; // hidden = 64 < 128 required
        let mut rng = SimRng::seed_from(4);
        let _ = ModelWeights::induction(&cfg, &InductionParams::default(), &mut rng);
    }
}
