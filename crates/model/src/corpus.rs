//! Synthetic corpora with controllable long-range structure.
//!
//! The paper evaluates on Project Gutenberg books (long contiguous text) and
//! concatenated WikiText-2 passages (§8.1.1). We reproduce the two *regimes*
//! rather than the datasets (see `DESIGN.md`):
//!
//! * [`CorpusKind::LongBook`] — one contiguous stream in which motifs
//!   (n-gram "phrases") recur at both short and very long ranges, like
//!   character names and phrases recurring across a book. Predicting a motif
//!   continuation requires attending to its previous occurrence, which may be
//!   hundreds of thousands of tokens back.
//! * [`CorpusKind::ConcatPassages`] — independent short passages stitched
//!   together; motifs recur only *within* a passage, so long-range attention
//!   helps less. This mirrors concatenated Wiki2.
//!
//! An induction-head model (see [`crate::ModelWeights::induction`]) achieves
//! low loss on motif continuations exactly when its attention mechanism can
//! retrieve the motif's previous occurrence.

use longsight_tensor::SimRng;

/// Which statistical regime to generate.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CorpusKind {
    /// One contiguous document with short- *and* long-range motif reuse
    /// (Project-Gutenberg-like).
    LongBook,
    /// Independent passages concatenated; motif reuse only within a passage
    /// (concatenated-WikiText-2-like).
    ConcatPassages,
}

impl std::fmt::Display for CorpusKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CorpusKind::LongBook => write!(f, "pg"),
            CorpusKind::ConcatPassages => write!(f, "wiki2"),
        }
    }
}

/// Parameters of the synthetic corpus generator.
#[derive(Debug, Clone)]
pub struct CorpusConfig {
    /// Regime to generate.
    pub kind: CorpusKind,
    /// Vocabulary size (must match the model's).
    pub vocab: usize,
    /// Number of distinct motifs in the library.
    pub motifs: usize,
    /// Length of each motif in tokens.
    pub motif_len: usize,
    /// Probability of starting a motif at a background position.
    pub motif_rate: f64,
    /// For `ConcatPassages`: passage length in tokens.
    pub passage_len: usize,
}

impl CorpusConfig {
    /// A long-book corpus sized for a model vocabulary.
    pub fn long_book(vocab: usize) -> Self {
        Self {
            kind: CorpusKind::LongBook,
            vocab,
            motifs: 64,
            motif_len: 12,
            motif_rate: 0.3,
            passage_len: 0,
        }
    }

    /// A concatenated-passages corpus sized for a model vocabulary.
    pub fn concat_passages(vocab: usize) -> Self {
        Self {
            kind: CorpusKind::ConcatPassages,
            vocab,
            motifs: 64,
            motif_len: 12,
            motif_rate: 0.3,
            passage_len: 1024,
        }
    }
}

/// A generated token sequence plus ground-truth annotations.
#[derive(Debug, Clone)]
pub struct Corpus {
    /// The token stream.
    pub tokens: Vec<u32>,
    /// `predictable[i]` is true when token `i` is a motif *continuation*
    /// (i.e. in-principle predictable from an earlier occurrence). The first
    /// token of a motif occurrence and all background tokens are not
    /// predictable.
    pub predictable: Vec<bool>,
}

impl Corpus {
    /// Fraction of predictable tokens.
    pub fn predictable_fraction(&self) -> f64 {
        if self.tokens.is_empty() {
            return 0.0;
        }
        self.predictable.iter().filter(|&&p| p).count() as f64 / self.tokens.len() as f64
    }
}

/// Generates `len` tokens under the given configuration.
///
/// # Panics
///
/// Panics if `vocab < 4` or `motif_len < 2`.
pub fn generate(cfg: &CorpusConfig, len: usize, rng: &mut SimRng) -> Corpus {
    assert!(cfg.vocab >= 4, "vocabulary too small");
    assert!(cfg.motif_len >= 2, "motifs must have at least 2 tokens");

    // Motif library: random token strings. Reserving no special tokens keeps
    // the generator simple; collisions between motifs are rare and harmless.
    let make_motifs = |rng: &mut SimRng| -> Vec<Vec<u32>> {
        (0..cfg.motifs)
            .map(|_| {
                (0..cfg.motif_len)
                    .map(|_| rng.below(cfg.vocab) as u32)
                    .collect()
            })
            .collect()
    };
    let mut motifs = make_motifs(rng);

    let mut tokens = Vec::with_capacity(len);
    let mut predictable = Vec::with_capacity(len);
    // Motifs already *seen* in the current scope (whole doc for LongBook,
    // current passage for ConcatPassages). A motif's first occurrence is not
    // predictable; repeats are.
    let mut seen: Vec<bool> = vec![false; cfg.motifs];
    let mut until_passage_end = cfg.passage_len;

    while tokens.len() < len {
        if cfg.kind == CorpusKind::ConcatPassages && until_passage_end == 0 {
            // Passage boundary: an unrelated "document" begins — fresh
            // motif library (no cross-passage reuse) and fresh memory.
            motifs = make_motifs(rng);
            seen.iter_mut().for_each(|s| *s = false);
            until_passage_end = cfg.passage_len;
        }
        if rng.coin(cfg.motif_rate) {
            // Emit a motif occurrence.
            let m = rng.below(cfg.motifs);
            let repeat = seen[m];
            seen[m] = true;
            for (i, &t) in motifs[m].iter().enumerate() {
                if tokens.len() >= len {
                    break;
                }
                tokens.push(t);
                // Continuations of a *repeated* motif are predictable via
                // induction from the earlier occurrence.
                predictable.push(repeat && i > 0);
                until_passage_end = until_passage_end.saturating_sub(1);
            }
        } else {
            tokens.push(rng.below(cfg.vocab) as u32);
            predictable.push(false);
            until_passage_end = until_passage_end.saturating_sub(1);
        }
    }
    tokens.truncate(len);
    predictable.truncate(len);
    Corpus {
        tokens,
        predictable,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generates_requested_length() {
        let mut rng = SimRng::seed_from(1);
        let c = generate(&CorpusConfig::long_book(256), 5000, &mut rng);
        assert_eq!(c.tokens.len(), 5000);
        assert_eq!(c.predictable.len(), 5000);
        assert!(c.tokens.iter().all(|&t| (t as usize) < 256));
    }

    #[test]
    fn long_book_has_predictable_tokens() {
        let mut rng = SimRng::seed_from(2);
        let c = generate(&CorpusConfig::long_book(256), 20_000, &mut rng);
        let frac = c.predictable_fraction();
        assert!(frac > 0.2, "expected substantial motif reuse, got {frac}");
    }

    #[test]
    fn first_motif_occurrences_are_not_predictable() {
        let mut rng = SimRng::seed_from(3);
        // With a single motif, the very first tokens can't be predictable.
        let cfg = CorpusConfig {
            motifs: 1,
            ..CorpusConfig::long_book(64)
        };
        let c = generate(&cfg, 100, &mut rng);
        let first_pred = c.predictable.iter().position(|&p| p);
        if let Some(i) = first_pred {
            // Some non-predictable (first-occurrence) tokens must precede it.
            assert!(i >= cfg.motif_len, "predictability began too early at {i}");
        }
    }

    #[test]
    fn passages_reset_motif_memory() {
        let mut rng = SimRng::seed_from(4);
        let mut cfg = CorpusConfig::concat_passages(256);
        cfg.passage_len = 64;
        cfg.motifs = 4;
        let c = generate(&cfg, 10_000, &mut rng);
        // Still has predictable tokens (repeats within passages)...
        assert!(c.predictable_fraction() > 0.05);
        // ...but fewer than the long-book regime with the same parameters.
        let mut rng2 = SimRng::seed_from(4);
        let mut long_cfg = cfg.clone();
        long_cfg.kind = CorpusKind::LongBook;
        long_cfg.passage_len = 0;
        let long = generate(&long_cfg, 10_000, &mut rng2);
        assert!(long.predictable_fraction() > c.predictable_fraction());
    }

    #[test]
    fn deterministic_given_seed() {
        let a = generate(
            &CorpusConfig::long_book(128),
            1000,
            &mut SimRng::seed_from(9),
        );
        let b = generate(
            &CorpusConfig::long_book(128),
            1000,
            &mut SimRng::seed_from(9),
        );
        assert_eq!(a.tokens, b.tokens);
    }
}
