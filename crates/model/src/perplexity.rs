//! Perplexity evaluation (paper §8.1.1).
//!
//! Perplexity is the paper's primary quality metric: it can be computed over
//! arbitrarily long contiguous sequences, unlike downstream benchmarks with
//! fixed context lengths. We evaluate decode-style: every token is fed
//! through the model in order and the cross-entropy of predicting the *next*
//! token is averaged.

use crate::attention::AttentionBackend;
use crate::corpus::Corpus;
use crate::transformer::Model;
use longsight_tensor::vecops;

/// Result of a perplexity evaluation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PerplexityReport {
    /// Mean next-token cross-entropy in nats.
    pub cross_entropy: f64,
    /// `exp(cross_entropy)`.
    pub perplexity: f64,
    /// Mean cross-entropy restricted to ground-truth *predictable* tokens
    /// (motif continuations), if annotations were provided. This isolates the
    /// long-range-retrieval ability the experiments care about.
    pub predictable_cross_entropy: Option<f64>,
    /// Number of scored positions.
    pub tokens: usize,
}

impl PerplexityReport {
    /// Relative perplexity increase of `self` over a `baseline` (e.g. dense
    /// attention), as a fraction: `ppl/base - 1`.
    pub fn relative_increase_over(&self, baseline: &PerplexityReport) -> f64 {
        self.perplexity / baseline.perplexity - 1.0
    }
}

/// Evaluates perplexity of `model` on `corpus` using the given attention
/// backend, scoring positions `[skip, len-1)`.
///
/// `skip` excludes a warm-up prefix (e.g. the first tokens have no context to
/// attend to). The backend's `reset` is called first, so per-sequence state
/// from a prior run cannot leak.
///
/// # Panics
///
/// Panics if fewer than two tokens would be scored.
pub fn evaluate(
    model: &Model,
    corpus: &Corpus,
    backend: &mut dyn AttentionBackend,
    skip: usize,
) -> PerplexityReport {
    let n = corpus.tokens.len();
    assert!(
        n >= skip + 2,
        "need at least two tokens after the skip prefix"
    );
    backend.reset();
    let mut cache = model.new_cache();

    let mut total_ce = 0.0f64;
    let mut count = 0usize;
    let mut pred_ce = 0.0f64;
    let mut pred_count = 0usize;

    for pos in 0..n - 1 {
        let logits = model.forward(corpus.tokens[pos], pos, &mut cache, backend);
        if pos + 1 < skip {
            continue;
        }
        let target = corpus.tokens[pos + 1] as usize;
        let log_probs = vecops::log_softmax(&logits);
        let ce = -(log_probs[target] as f64);
        total_ce += ce;
        count += 1;
        if corpus.predictable.get(pos + 1).copied().unwrap_or(false) {
            pred_ce += ce;
            pred_count += 1;
        }
    }

    let cross_entropy = total_ce / count as f64;
    PerplexityReport {
        cross_entropy,
        perplexity: cross_entropy.exp(),
        predictable_cross_entropy: (pred_count > 0).then(|| pred_ce / pred_count as f64),
        tokens: count,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::attention::DenseBackend;
    use crate::corpus::{generate, CorpusConfig};
    use crate::weights::{InductionParams, ModelWeights};
    use crate::ModelConfig;
    use longsight_tensor::SimRng;

    #[test]
    fn random_model_perplexity_is_near_uniform() {
        let cfg = ModelConfig::tiny();
        let mut rng = SimRng::seed_from(10);
        let model = Model::new(ModelWeights::random(&cfg, &mut rng));
        let corpus = generate(&CorpusConfig::long_book(cfg.vocab), 128, &mut rng);
        let r = evaluate(&model, &corpus, &mut DenseBackend::new(), 4);
        // An untrained model should be within a factor ~2 of uniform.
        let uniform = cfg.vocab as f64;
        assert!(
            r.perplexity > uniform / 3.0,
            "ppl {} vs uniform {}",
            r.perplexity,
            uniform
        );
        assert!(r.perplexity < uniform * 3.0);
    }

    #[test]
    fn induction_model_beats_random_model_on_motif_corpus() {
        let cfg = ModelConfig::tiny();
        let mut rng = SimRng::seed_from(11);
        let induction = Model::new(ModelWeights::induction(
            &cfg,
            &InductionParams::default(),
            &mut rng,
        ));
        let corpus = generate(&CorpusConfig::long_book(cfg.vocab), 512, &mut rng);
        let r = evaluate(&induction, &corpus, &mut DenseBackend::new(), 16);
        let uniform_ce = (cfg.vocab as f64).ln();
        assert!(
            r.cross_entropy < uniform_ce - 0.2,
            "induction model CE {} not clearly better than uniform {}",
            r.cross_entropy,
            uniform_ce
        );
        let pred = r
            .predictable_cross_entropy
            .expect("corpus has predictable tokens");
        assert!(
            pred < 0.5 * uniform_ce,
            "predictable-token CE {pred} should be far below uniform {uniform_ce}"
        );
    }
}
