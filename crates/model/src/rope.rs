//! Rotary positional embeddings (RoPE).
//!
//! Llama-style RoPE: dimension pairs `(i, i + d/2)` are rotated by angle
//! `pos · θ^(−2i/d)`. Because the rotation is applied *after* the K/Q
//! projections, it breaks the distance invariances ITQ relies on — which is
//! why the paper applies the ITQ rotation at runtime, after RoPE (§5.4).

/// Precomputed RoPE frequency table for one head dimension.
///
/// # Example
///
/// ```
/// use longsight_model::Rope;
///
/// let rope = Rope::new(8, 500_000.0);
/// let mut v = vec![1.0; 8];
/// rope.apply_in_place(&mut v, 0);
/// assert_eq!(v, vec![1.0; 8]); // position 0 is the identity
/// ```
#[derive(Debug, Clone)]
pub struct Rope {
    head_dim: usize,
    /// Per-pair inverse frequencies θ^(−2i/d), i in 0..d/2.
    inv_freq: Vec<f64>,
}

impl Rope {
    /// Builds the frequency table for a head dimension and base θ.
    ///
    /// # Panics
    ///
    /// Panics if `head_dim` is zero or odd.
    pub fn new(head_dim: usize, theta: f64) -> Self {
        assert!(
            head_dim > 0 && head_dim.is_multiple_of(2),
            "RoPE needs an even head dim"
        );
        let half = head_dim / 2;
        let inv_freq = (0..half)
            .map(|i| theta.powf(-2.0 * i as f64 / head_dim as f64))
            .collect();
        Self { head_dim, inv_freq }
    }

    /// Head dimension this table was built for.
    pub fn head_dim(&self) -> usize {
        self.head_dim
    }

    /// Rotates `v` in place for token position `pos`.
    ///
    /// # Panics
    ///
    /// Panics if `v.len() != head_dim`.
    pub fn apply_in_place(&self, v: &mut [f32], pos: usize) {
        assert_eq!(v.len(), self.head_dim, "RoPE dimension mismatch");
        let half = self.head_dim / 2;
        for i in 0..half {
            let angle = pos as f64 * self.inv_freq[i];
            let (sin, cos) = angle.sin_cos();
            let (a, b) = (v[i] as f64, v[i + half] as f64);
            v[i] = (a * cos - b * sin) as f32;
            v[i + half] = (a * sin + b * cos) as f32;
        }
    }

    /// Returns a rotated copy of `v` for position `pos`.
    ///
    /// # Panics
    ///
    /// Panics if `v.len() != head_dim`.
    pub fn apply(&self, v: &[f32], pos: usize) -> Vec<f32> {
        let mut out = v.to_vec();
        self.apply_in_place(&mut out, pos);
        out
    }

    /// Rotates `v` by a *signed, fractional* position offset.
    ///
    /// Used by the hand-constructed previous-token attention head, which
    /// needs a query equal to the base key rotated by −1 positions so that
    /// the RoPE dot product peaks at relative distance −1.
    ///
    /// # Panics
    ///
    /// Panics if `v.len() != head_dim`.
    pub fn apply_signed(&self, v: &mut [f32], pos: f64) {
        assert_eq!(v.len(), self.head_dim, "RoPE dimension mismatch");
        let half = self.head_dim / 2;
        for i in 0..half {
            let angle = pos * self.inv_freq[i];
            let (sin, cos) = angle.sin_cos();
            let (a, b) = (v[i] as f64, v[i + half] as f64);
            v[i] = (a * cos - b * sin) as f32;
            v[i + half] = (a * sin + b * cos) as f32;
        }
    }

    /// The per-pair rotation frequencies (radians per token).
    pub fn inv_freq(&self) -> &[f64] {
        &self.inv_freq
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use longsight_tensor::vecops;

    #[test]
    fn rotation_preserves_norm() {
        let rope = Rope::new(16, 500_000.0);
        let v: Vec<f32> = (0..16).map(|i| (i as f32 * 0.7).sin()).collect();
        for pos in [0usize, 1, 100, 10_000] {
            let r = rope.apply(&v, pos);
            assert!(
                (vecops::l2_norm(&r) - vecops::l2_norm(&v)).abs() < 1e-4,
                "norm changed at pos {pos}"
            );
        }
    }

    #[test]
    fn dot_product_depends_only_on_relative_position() {
        let rope = Rope::new(8, 10_000.0);
        let q: Vec<f32> = vec![1.0, -0.5, 0.3, 0.9, -1.2, 0.1, 0.4, -0.7];
        let k: Vec<f32> = vec![0.2, 0.8, -0.4, 0.5, 1.1, -0.3, -0.9, 0.6];
        let d1 = vecops::dot(&rope.apply(&q, 105), &rope.apply(&k, 100));
        let d2 = vecops::dot(&rope.apply(&q, 1005), &rope.apply(&k, 1000));
        assert!(
            (d1 - d2).abs() < 1e-3,
            "relative-position invariance violated: {d1} vs {d2}"
        );
    }

    #[test]
    fn position_zero_is_identity() {
        let rope = Rope::new(32, 500_000.0);
        let v: Vec<f32> = (0..32).map(|i| i as f32).collect();
        assert_eq!(rope.apply(&v, 0), v);
    }

    #[test]
    fn high_theta_means_slow_low_frequencies() {
        let rope = Rope::new(64, 500_000.0);
        // The slowest pair barely rotates even across 32K tokens.
        let slowest = rope.inv_freq()[31];
        assert!(slowest * 32_768.0 < 0.2, "slowest channel rotates too fast");
        // The fastest pair rotates ~1 rad/token.
        assert!((rope.inv_freq()[0] - 1.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "even head dim")]
    fn odd_dim_panics() {
        let _ = Rope::new(7, 1000.0);
    }
}
