//! Long-context Q/K/V trace generation.
//!
//! The quality experiments at 32K–128K+ context (paper Figs 3 and 4) need
//! key/query streams with realistic geometry, but a full forward pass at
//! those lengths is quadratic and needlessly slow — the filtering pipeline
//! only ever sees *post-projection, post-RoPE* queries and keys. This module
//! generates such streams directly, with the properties the paper's analysis
//! hinges on:
//!
//! * **Clustering + DC offset** — LLaMA K/Q representations are strongly
//!   clustered and anisotropic (§5.4), which is what defeats raw
//!   sign-concordance filtering and is fixed by ITQ. Keys here are drawn from
//!   a Gaussian mixture around a shared offset direction.
//! * **Sparse ground-truth relevance** — attention mass concentrates on a
//!   small set of past tokens whose keys have high dot-product similarity
//!   with the query (§1, corroborating \[12\]). Each generated query embeds a
//!   known set of relevant positions, giving exact recall ground truth.
//! * **RoPE** — content-matching energy lives in the low-frequency rotary
//!   dimensions (as in trained retrieval heads), so relevance survives
//!   rotation while the high-frequency dimensions decorrelate with distance.

use crate::Rope;
use longsight_tensor::{FlatVecs, SimRng};

/// Parameters of the trace generator.
#[derive(Debug, Clone)]
pub struct TraceConfig {
    /// Head dimension of keys/queries/values.
    pub head_dim: usize,
    /// Number of past tokens (keys) to generate.
    pub context_len: usize,
    /// Number of identity clusters keys are drawn from.
    pub clusters: usize,
    /// Magnitude of the shared DC offset (anisotropy knob; 0 = isotropic).
    pub dc_magnitude: f32,
    /// Within-cluster key noise.
    pub cluster_spread: f32,
    /// How many past positions each query genuinely attends to.
    pub relevant_per_query: usize,
    /// Weight of the relevant-key component in the query.
    pub relevance_strength: f32,
    /// Number of query probes to generate.
    pub queries: usize,
    /// RoPE base; `None` disables rotation.
    pub rope_theta: Option<f64>,
}

impl TraceConfig {
    /// A default configuration mirroring a Llama-3-8B KV head
    /// (`head_dim = 128`) at the given context length.
    pub fn llama_like(head_dim: usize, context_len: usize) -> Self {
        Self {
            head_dim,
            context_len,
            clusters: 48,
            dc_magnitude: 2.5,
            cluster_spread: 0.9,
            relevant_per_query: 4,
            relevance_strength: 3.0,
            queries: 32,
            rope_theta: Some(500_000.0),
        }
    }
}

/// One query probe with ground-truth relevant positions.
#[derive(Debug, Clone)]
pub struct QueryProbe {
    /// Query token position; the query may attend to keys `0..position`.
    pub position: usize,
    /// The (post-RoPE) query vector.
    pub q: Vec<f32>,
    /// Ground-truth relevant key positions (all `< position`).
    pub relevant: Vec<usize>,
}

/// A generated key/value stream plus query probes for one attention head.
#[derive(Debug, Clone)]
pub struct HeadTrace {
    /// Post-RoPE keys, one per past token.
    pub keys: FlatVecs,
    /// Values, one per past token.
    pub values: FlatVecs,
    /// Query probes.
    pub queries: Vec<QueryProbe>,
}

impl HeadTrace {
    /// Context length (number of keys).
    pub fn len(&self) -> usize {
        self.keys.len()
    }

    /// Whether the trace is empty.
    pub fn is_empty(&self) -> bool {
        self.keys.is_empty()
    }
}

/// Generates a head trace.
///
/// # Panics
///
/// Panics if `context_len < 2`, `head_dim` is odd, or
/// `relevant_per_query >= context_len`.
pub fn generate_head_trace(cfg: &TraceConfig, rng: &mut SimRng) -> HeadTrace {
    assert!(cfg.context_len >= 2, "context too short");
    assert!(
        cfg.head_dim.is_multiple_of(2),
        "head_dim must be even for RoPE"
    );
    assert!(
        cfg.relevant_per_query < cfg.context_len,
        "relevant_per_query must be below context_len"
    );
    let d = cfg.head_dim;
    let rope = cfg.rope_theta.map(|t| Rope::new(d, t));

    // Content mask: the low-frequency half of each rotary pair carries the
    // cluster/relevance content; high-frequency dims carry filler.
    let half = d / 2;
    let low_start = half / 2; // pairs with index >= half/2 rotate slowly
    let is_content_dim = |i: usize| -> bool {
        let pair = i % half;
        pair >= low_start
    };

    // Shared DC direction, confined to a *sparse* subset of content dims so
    // the per-dimension offset is large — this is what skews sign-bit
    // distributions the way real LLaMA keys are skewed (§5.4). It also
    // survives RoPE (content dims rotate slowly).
    let mut dc = vec![0.0f32; d];
    let content_dims: Vec<usize> = (0..d).filter(|&i| is_content_dim(i)).collect();
    let dc_support = (content_dims.len() / 4).max(1);
    for _ in 0..dc_support {
        let i = content_dims[rng.below(content_dims.len())];
        dc[i] = rng.normal() as f32;
    }
    longsight_tensor::vecops::normalize_in_place(&mut dc);

    // Cluster centers, in content dims.
    let centers: Vec<Vec<f32>> = (0..cfg.clusters.max(1))
        .map(|_| {
            let mut c = vec![0.0f32; d];
            for (i, v) in c.iter_mut().enumerate() {
                if is_content_dim(i) {
                    *v = rng.normal() as f32 * 0.5;
                }
            }
            c
        })
        .collect();

    // Keys: DC + cluster + spread noise (content dims) + filler (other dims),
    // then RoPE by absolute position. Pre-RoPE copies are kept to build
    // queries that target specific keys.
    let mut pre_keys = FlatVecs::with_capacity(d, cfg.context_len);
    let mut keys = FlatVecs::with_capacity(d, cfg.context_len);
    let mut values = FlatVecs::with_capacity(d, cfg.context_len);
    for pos in 0..cfg.context_len {
        let cluster = rng.below(centers.len());
        let mut k = vec![0.0f32; d];
        for (i, v) in k.iter_mut().enumerate() {
            if is_content_dim(i) {
                *v = cfg.dc_magnitude * dc[i]
                    + centers[cluster][i]
                    + cfg.cluster_spread * rng.normal() as f32;
            } else {
                *v = 0.6 * rng.normal() as f32;
            }
        }
        pre_keys.push(&k);
        if let Some(r) = &rope {
            r.apply_in_place(&mut k, pos);
        }
        keys.push(&k);
        // Values: cluster-correlated plus noise, so attention outputs carry
        // signal about which keys were selected.
        let v: Vec<f32> = (0..d)
            .map(|i| centers[cluster][i] + 0.3 * rng.normal() as f32)
            .collect();
        values.push(&v);
    }

    // Query probes: each targets `relevant_per_query` past keys — a few
    // recent, the rest spread over the whole history (long-range retrieval).
    let mut queries = Vec::with_capacity(cfg.queries);
    for _ in 0..cfg.queries {
        let position = cfg.context_len;
        let mut relevant = Vec::with_capacity(cfg.relevant_per_query);
        while relevant.len() < cfg.relevant_per_query {
            let idx = if rng.coin(0.25) {
                // Recent token.
                position - 1 - rng.below(64.min(position))
            } else {
                rng.below(position)
            };
            if !relevant.contains(&idx) {
                relevant.push(idx);
            }
        }
        relevant.sort_unstable();

        let mut q = vec![0.0f32; d];
        // Content: the (pre-RoPE) sum of relevant keys' content components.
        // Full weight per key (not the mean): each relevant key's individual
        // within-cluster component must stand out over cross-correlation
        // noise from the other keys, which dilution would destroy.
        for &ri in &relevant {
            let k = pre_keys.get(ri);
            for (i, v) in q.iter_mut().enumerate() {
                if is_content_dim(i) {
                    *v += k[i];
                }
            }
        }
        for (i, v) in q.iter_mut().enumerate() {
            if is_content_dim(i) {
                *v = cfg.relevance_strength * *v + 0.2 * rng.normal() as f32;
            } else {
                *v = 0.6 * rng.normal() as f32;
            }
        }
        if let Some(r) = &rope {
            r.apply_in_place(&mut q, position);
        }
        queries.push(QueryProbe {
            position,
            q,
            relevant,
        });
    }

    HeadTrace {
        keys,
        values,
        queries,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use longsight_tensor::vecops;

    fn small_cfg() -> TraceConfig {
        TraceConfig {
            head_dim: 64,
            context_len: 2048,
            clusters: 16,
            queries: 8,
            ..TraceConfig::llama_like(64, 2048)
        }
    }

    #[test]
    fn trace_has_requested_shape() {
        let mut rng = SimRng::seed_from(1);
        let t = generate_head_trace(&small_cfg(), &mut rng);
        assert_eq!(t.len(), 2048);
        assert_eq!(t.queries.len(), 8);
        assert_eq!(t.queries[0].relevant.len(), 4);
        assert!(t.queries[0].relevant.iter().all(|&i| i < 2048));
    }

    #[test]
    fn relevant_keys_score_higher_than_average() {
        let mut rng = SimRng::seed_from(2);
        let t = generate_head_trace(&small_cfg(), &mut rng);
        for probe in &t.queries {
            let scores: Vec<f32> = t.keys.iter().map(|k| vecops::dot(&probe.q, k)).collect();
            let mean: f32 = scores.iter().sum::<f32>() / scores.len() as f32;
            let rel_mean: f32 = probe.relevant.iter().map(|&i| scores[i]).sum::<f32>()
                / probe.relevant.len() as f32;
            assert!(
                rel_mean > mean,
                "relevant keys should outscore the average: {rel_mean} vs {mean}"
            );
        }
    }

    #[test]
    fn ground_truth_relevant_dominate_topk() {
        // The engineered relevance must be strong enough that exact top-k
        // retrieval finds a large share of the ground truth — otherwise the
        // recall experiments would be measuring noise.
        let mut rng = SimRng::seed_from(3);
        let t = generate_head_trace(&small_cfg(), &mut rng);
        let mut total_hits = 0usize;
        let mut total_rel = 0usize;
        for probe in &t.queries {
            let scores: Vec<f32> = t.keys.iter().map(|k| vecops::dot(&probe.q, k)).collect();
            let top = longsight_tensor::top_k_indices(&scores, 128);
            total_hits += probe.relevant.iter().filter(|i| top.contains(i)).count();
            total_rel += probe.relevant.len();
        }
        let recall = total_hits as f64 / total_rel as f64;
        assert!(
            recall > 0.5,
            "oracle top-128 recall of ground truth too low: {recall}"
        );
    }

    #[test]
    fn dc_offset_skews_sign_bits() {
        // With a strong DC component, some dimensions have heavily imbalanced
        // sign bits across keys — the pathology ITQ corrects.
        let mut rng = SimRng::seed_from(4);
        let t = generate_head_trace(&small_cfg(), &mut rng);
        let d = 64;
        let mut max_imbalance = 0.0f64;
        for dim in 0..d {
            let neg = t.keys.iter().filter(|k| k[dim] < 0.0).count();
            let frac = neg as f64 / t.len() as f64;
            max_imbalance = max_imbalance.max((frac - 0.5).abs());
        }
        assert!(
            max_imbalance > 0.25,
            "expected strongly imbalanced sign dimensions, max imbalance {max_imbalance}"
        );
    }

    #[test]
    fn no_rope_keeps_content_dims_static() {
        let mut rng = SimRng::seed_from(5);
        let mut cfg = small_cfg();
        cfg.rope_theta = None;
        let t = generate_head_trace(&cfg, &mut rng);
        assert_eq!(t.len(), cfg.context_len);
    }
}
