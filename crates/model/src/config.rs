//! Model configurations (paper Table 1).

/// Architecture hyperparameters of a Llama-style decoder-only transformer.
///
/// The two production presets reproduce Table 1 of the paper; [`ModelConfig::tiny`]
/// is a scaled-down configuration used by tests and the functional perplexity
/// experiments.
///
/// # Example
///
/// ```
/// let cfg = longsight_model::ModelConfig::llama3_8b();
/// assert_eq!(cfg.layers, 32);
/// assert_eq!(cfg.kv_heads, 8);
/// assert_eq!(cfg.head_dim, 128);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct ModelConfig {
    /// Human-readable name (e.g. `"Llama-3-8B"`).
    pub name: &'static str,
    /// Number of decoder layers.
    pub layers: usize,
    /// Number of query heads.
    pub q_heads: usize,
    /// Number of KV heads (GQA: `kv_heads <= q_heads`).
    pub kv_heads: usize,
    /// Per-head dimension of queries and keys (and values).
    pub head_dim: usize,
    /// FFN intermediate dimension.
    pub ffn_dim: usize,
    /// Vocabulary size.
    pub vocab: usize,
    /// RoPE base frequency θ.
    pub rope_theta: f64,
}

impl ModelConfig {
    /// Llama-3-1B per Table 1: GQA 32/8 heads, head dim 64, 16 layers.
    pub fn llama3_1b() -> Self {
        Self {
            name: "Llama-3-1B",
            layers: 16,
            q_heads: 32,
            kv_heads: 8,
            head_dim: 64,
            ffn_dim: 8192,
            vocab: 128_256,
            rope_theta: 500_000.0,
        }
    }

    /// Llama-3-8B per Table 1: GQA 32/8 heads, head dim 128, 32 layers.
    pub fn llama3_8b() -> Self {
        Self {
            name: "Llama-3-8B",
            layers: 32,
            q_heads: 32,
            kv_heads: 8,
            head_dim: 128,
            ffn_dim: 14_336,
            vocab: 128_256,
            rope_theta: 500_000.0,
        }
    }

    /// A tiny configuration for tests and functional (real-forward-pass)
    /// perplexity experiments. Keeps GQA (4 query heads per KV head) so the
    /// grouped-attention code paths are exercised.
    pub fn tiny() -> Self {
        Self {
            name: "Tiny",
            layers: 2,
            q_heads: 8,
            kv_heads: 2,
            head_dim: 32,
            ffn_dim: 256,
            vocab: 1024,
            rope_theta: 500_000.0,
        }
    }

    /// Validates internal consistency.
    ///
    /// # Errors
    ///
    /// Returns a description of the first violated constraint.
    pub fn validate(&self) -> Result<(), String> {
        if self.layers == 0 {
            return Err("layers must be positive".into());
        }
        if self.kv_heads == 0 || self.q_heads == 0 {
            return Err("head counts must be positive".into());
        }
        if !self.q_heads.is_multiple_of(self.kv_heads) {
            return Err(format!(
                "q_heads ({}) must be a multiple of kv_heads ({})",
                self.q_heads, self.kv_heads
            ));
        }
        if self.head_dim == 0 || !self.head_dim.is_multiple_of(2) {
            return Err("head_dim must be positive and even (RoPE pairs dimensions)".into());
        }
        Ok(())
    }

    /// Model (residual-stream) width: `q_heads * head_dim`.
    pub fn hidden_dim(&self) -> usize {
        self.q_heads * self.head_dim
    }

    /// Total KV projection width: `kv_heads * head_dim`.
    pub fn kv_dim(&self) -> usize {
        self.kv_heads * self.head_dim
    }

    /// Query heads per KV head (the GQA group size).
    pub fn group_size(&self) -> usize {
        self.q_heads / self.kv_heads
    }

    /// Bytes of BF16 KV cache per token across all layers and KV heads
    /// (2 bytes × 2 tensors × kv_heads × head_dim × layers).
    pub fn kv_bytes_per_token(&self) -> usize {
        2 * 2 * self.kv_dim() * self.layers
    }

    /// Bytes of BF16 weights (projections + FFN + embedding, untied head).
    pub fn weight_bytes(&self) -> usize {
        let h = self.hidden_dim();
        let per_layer = h * h            // Wq
            + 2 * self.kv_dim() * h      // Wk, Wv
            + h * h                      // Wo
            + 3 * self.ffn_dim * h; // gate, up, down
        2 * (self.layers * per_layer + 2 * self.vocab * h)
    }

    /// Number of independent KV vector databases per user:
    /// `kv_heads × layers` (paper §4, point 1).
    pub fn databases_per_user(&self) -> usize {
        self.kv_heads * self.layers
    }
}

impl std::fmt::Display for ModelConfig {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{} ({}L, {}q/{}kv heads, d={})",
            self.name, self.layers, self.q_heads, self.kv_heads, self.head_dim
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_llama3_1b_parameters() {
        let c = ModelConfig::llama3_1b();
        assert_eq!(
            (c.layers, c.q_heads, c.kv_heads, c.head_dim),
            (16, 32, 8, 64)
        );
        assert_eq!(c.hidden_dim(), 2048);
        assert_eq!(c.group_size(), 4);
        c.validate().unwrap();
    }

    #[test]
    fn table1_llama3_8b_parameters() {
        let c = ModelConfig::llama3_8b();
        assert_eq!(
            (c.layers, c.q_heads, c.kv_heads, c.head_dim),
            (32, 32, 8, 128)
        );
        assert_eq!(c.hidden_dim(), 4096);
        // 256 independent vector databases per user (paper §4).
        assert_eq!(c.databases_per_user(), 256);
        c.validate().unwrap();
    }

    #[test]
    fn kv_bytes_per_token_llama3_8b() {
        // 2 B × 2 (K+V) × 8 heads × 128 dim × 32 layers = 131,072 B/token.
        assert_eq!(ModelConfig::llama3_8b().kv_bytes_per_token(), 131_072);
    }

    #[test]
    fn kv_cache_at_1m_tokens_exceeds_h100_hbm() {
        // The paper's motivating observation: a 1M-token context for
        // Llama-3-8B needs ~122 GiB of KV cache, more than one H100's 80 GB.
        let bytes = ModelConfig::llama3_8b().kv_bytes_per_token() * 1_048_576;
        assert!(bytes > 80 * 1_000_000_000usize);
    }

    #[test]
    fn invalid_configs_are_rejected() {
        let mut c = ModelConfig::tiny();
        c.q_heads = 3; // not a multiple of kv_heads = 2
        assert!(c.validate().is_err());
        let mut c = ModelConfig::tiny();
        c.head_dim = 7; // odd
        assert!(c.validate().is_err());
        let mut c = ModelConfig::tiny();
        c.layers = 0;
        assert!(c.validate().is_err());
    }

    #[test]
    fn weight_bytes_is_plausible_for_8b() {
        // ~8B parameters × 2 bytes ≈ 16 GB (the paper quotes 16 GB of weights).
        let gb = ModelConfig::llama3_8b().weight_bytes() as f64 / 1e9;
        assert!((10.0..20.0).contains(&gb), "got {gb} GB");
    }
}
