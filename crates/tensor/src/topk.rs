//! Bounded top-*k* selection.
//!
//! The NMAs in DReX maintain a partial top-*k* list (hardware maximum
//! `k = 1,024`) while streaming scored keys out of DRAM. [`TopK`] models that
//! structure: a bounded min-heap keyed on score, with deterministic
//! tie-breaking on the index so simulation runs are reproducible.

use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// A `(score, index)` pair ordered by score, then by index (lower index wins
/// ties, matching "earlier token wins" determinism).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ScoredIndex {
    /// Similarity / attention score.
    pub score: f32,
    /// Identifier of the scored item (e.g. token position).
    pub index: usize,
}

impl ScoredIndex {
    /// Creates a new scored index.
    pub fn new(score: f32, index: usize) -> Self {
        Self { score, index }
    }
}

impl Eq for ScoredIndex {}

impl PartialOrd for ScoredIndex {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for ScoredIndex {
    fn cmp(&self, other: &Self) -> Ordering {
        // total_cmp gives a total order over floats (NaN sorts consistently);
        // reverse the index comparison so that for equal scores the *lower*
        // index is considered larger (kept preferentially).
        self.score
            .total_cmp(&other.score)
            .then_with(|| other.index.cmp(&self.index))
    }
}

/// Wrapper flipping the ordering so `BinaryHeap` acts as a min-heap.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct MinHeapEntry(ScoredIndex);

impl PartialOrd for MinHeapEntry {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for MinHeapEntry {
    fn cmp(&self, other: &Self) -> Ordering {
        other.0.cmp(&self.0)
    }
}

/// A bounded min-heap retaining the `k` highest-scoring entries seen so far.
///
/// # Example
///
/// ```
/// use longsight_tensor::TopK;
///
/// let mut top = TopK::new(2);
/// for (i, s) in [0.1, 0.9, 0.5, 0.7].iter().enumerate() {
///     top.push(*s, i);
/// }
/// let best = top.into_sorted_vec();
/// assert_eq!(best[0].index, 1); // 0.9
/// assert_eq!(best[1].index, 3); // 0.7
/// ```
#[derive(Debug, Clone)]
pub struct TopK {
    k: usize,
    heap: BinaryHeap<MinHeapEntry>,
}

impl TopK {
    /// Creates an empty selector keeping at most `k` entries.
    ///
    /// `k = 0` is allowed and keeps nothing.
    pub fn new(k: usize) -> Self {
        Self {
            k,
            heap: BinaryHeap::with_capacity(k.saturating_add(1)),
        }
    }

    /// The bound `k`.
    pub fn k(&self) -> usize {
        self.k
    }

    /// Number of entries currently retained.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// Whether no entries are retained.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Offers a `(score, index)` pair; keeps it only if it is among the `k`
    /// best seen so far. Returns `true` if the entry was retained.
    pub fn push(&mut self, score: f32, index: usize) -> bool {
        if self.k == 0 {
            return false;
        }
        let entry = MinHeapEntry(ScoredIndex::new(score, index));
        if self.heap.len() < self.k {
            self.heap.push(entry);
            return true;
        }
        // Full: replace the current minimum if strictly better.
        let min = self.heap.peek().expect("non-empty when full");
        if entry.0 > min.0 {
            self.heap.pop();
            self.heap.push(entry);
            true
        } else {
            false
        }
    }

    /// The smallest retained score, if any (the current admission threshold).
    pub fn min_score(&self) -> Option<f32> {
        self.heap.peek().map(|e| e.0.score)
    }

    /// Merges another selector's contents into this one (used when the DCC
    /// aggregates partial top-k lists from multiple NMAs).
    pub fn merge(&mut self, other: TopK) {
        for e in other.heap {
            self.push(e.0.score, e.0.index);
        }
    }

    /// Consumes the selector and returns the retained entries sorted by
    /// descending score (ties broken by ascending index).
    pub fn into_sorted_vec(self) -> Vec<ScoredIndex> {
        let mut v: Vec<ScoredIndex> = self.heap.into_iter().map(|e| e.0).collect();
        v.sort_by(|a, b| b.cmp(a));
        v
    }
}

impl Extend<ScoredIndex> for TopK {
    fn extend<T: IntoIterator<Item = ScoredIndex>>(&mut self, iter: T) {
        for s in iter {
            self.push(s.score, s.index);
        }
    }
}

/// Selects the indices of the `k` largest values of `scores`, descending.
///
/// Convenience wrapper over [`TopK`] for one-shot use.
pub fn top_k_indices(scores: &[f32], k: usize) -> Vec<usize> {
    let mut top = TopK::new(k);
    for (i, &s) in scores.iter().enumerate() {
        top.push(s, i);
    }
    top.into_sorted_vec().into_iter().map(|s| s.index).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matches_full_sort() {
        let scores: Vec<f32> = (0..100).map(|i| ((i * 31 % 97) as f32).sin()).collect();
        let got = top_k_indices(&scores, 10);
        let mut pairs: Vec<(f32, usize)> = scores.iter().copied().zip(0..).collect();
        pairs.sort_by(|a, b| b.0.total_cmp(&a.0).then(a.1.cmp(&b.1)));
        let want: Vec<usize> = pairs.into_iter().take(10).map(|(_, i)| i).collect();
        assert_eq!(got, want);
    }

    #[test]
    fn k_larger_than_input_returns_all() {
        let got = top_k_indices(&[3.0, 1.0, 2.0], 10);
        assert_eq!(got, vec![0, 2, 1]);
    }

    #[test]
    fn k_zero_returns_nothing() {
        assert!(top_k_indices(&[1.0, 2.0], 0).is_empty());
        let mut t = TopK::new(0);
        assert!(!t.push(5.0, 0));
        assert!(t.is_empty());
    }

    #[test]
    fn ties_prefer_lower_index() {
        let got = top_k_indices(&[1.0, 1.0, 1.0, 1.0], 2);
        assert_eq!(got, vec![0, 1]);
    }

    #[test]
    fn merge_equals_single_pass() {
        let scores: Vec<f32> = (0..64).map(|i| ((i * 7 % 23) as f32).cos()).collect();
        let mut a = TopK::new(8);
        let mut b = TopK::new(8);
        for (i, &s) in scores.iter().enumerate() {
            if i % 2 == 0 {
                a.push(s, i);
            } else {
                b.push(s, i);
            }
        }
        a.merge(b);
        let merged: Vec<usize> = a.into_sorted_vec().into_iter().map(|s| s.index).collect();
        assert_eq!(merged, top_k_indices(&scores, 8));
    }

    #[test]
    fn min_score_tracks_admission_threshold() {
        let mut t = TopK::new(2);
        assert_eq!(t.min_score(), None);
        t.push(1.0, 0);
        t.push(3.0, 1);
        assert_eq!(t.min_score(), Some(1.0));
        t.push(2.0, 2);
        assert_eq!(t.min_score(), Some(2.0));
    }
}
