//! Seeded random number generation for reproducible simulation.

use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

/// A seeded RNG with the Gaussian and categorical helpers the synthetic
/// weight/workload generators need.
///
/// Wrapping [`StdRng`] in a newtype keeps the `rand` crate out of the public
/// API of downstream crates and pins the distribution implementations (e.g.
/// Box–Muller for normals) so simulation outputs are stable across `rand`
/// versions.
///
/// # Example
///
/// ```
/// use longsight_tensor::SimRng;
///
/// let mut a = SimRng::seed_from(7);
/// let mut b = SimRng::seed_from(7);
/// assert_eq!(a.normal(), b.normal()); // deterministic given the seed
/// ```
#[derive(Debug)]
pub struct SimRng {
    inner: StdRng,
    /// Spare Gaussian deviate from the last Box–Muller draw.
    cached_normal: Option<f64>,
}

impl SimRng {
    /// Creates an RNG from a 64-bit seed.
    pub fn seed_from(seed: u64) -> Self {
        Self {
            inner: StdRng::seed_from_u64(seed),
            cached_normal: None,
        }
    }

    /// Derives an independent child RNG, keyed by `stream`.
    ///
    /// Used to give each layer/head its own reproducible stream regardless of
    /// the order in which they draw.
    pub fn fork(&mut self, stream: u64) -> SimRng {
        let base: u64 = self.inner.random();
        SimRng::seed_from(base ^ stream.wrapping_mul(0x9E37_79B9_7F4A_7C15))
    }

    /// Uniform `f64` in `[0, 1)`.
    pub fn uniform(&mut self) -> f64 {
        self.inner.random::<f64>()
    }

    /// Uniform integer in `[0, n)`.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    pub fn below(&mut self, n: usize) -> usize {
        assert!(n > 0, "below(0) is meaningless");
        self.inner.random_range(0..n)
    }

    /// Standard normal deviate via Box–Muller.
    pub fn normal(&mut self) -> f64 {
        if let Some(z) = self.cached_normal.take() {
            return z;
        }
        // Draw u1 in (0, 1] to avoid ln(0).
        let u1: f64 = 1.0 - self.inner.random::<f64>();
        let u2: f64 = self.inner.random::<f64>();
        let r = (-2.0 * u1.ln()).sqrt();
        let theta = 2.0 * std::f64::consts::PI * u2;
        self.cached_normal = Some(r * theta.sin());
        r * theta.cos()
    }

    /// Normal deviate with the given mean and standard deviation.
    pub fn normal_with(&mut self, mean: f64, std_dev: f64) -> f64 {
        mean + std_dev * self.normal()
    }

    /// Fills a fresh `f32` vector with i.i.d. `N(0, 1)` entries.
    pub fn normal_vec(&mut self, n: usize) -> Vec<f32> {
        (0..n).map(|_| self.normal() as f32).collect()
    }

    /// Samples an index from unnormalized non-negative weights.
    ///
    /// # Panics
    ///
    /// Panics if `weights` is empty or sums to zero.
    pub fn weighted_choice(&mut self, weights: &[f64]) -> usize {
        assert!(!weights.is_empty(), "weighted_choice over empty weights");
        let total: f64 = weights.iter().sum();
        assert!(total > 0.0, "weighted_choice weights sum to zero");
        let mut target = self.uniform() * total;
        for (i, &w) in weights.iter().enumerate() {
            target -= w;
            if target <= 0.0 {
                return i;
            }
        }
        weights.len() - 1
    }

    /// Bernoulli draw with probability `p` of `true`.
    pub fn coin(&mut self, p: f64) -> bool {
        self.uniform() < p
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_given_seed() {
        let mut a = SimRng::seed_from(99);
        let mut b = SimRng::seed_from(99);
        for _ in 0..32 {
            assert_eq!(a.normal().to_bits(), b.normal().to_bits());
            assert_eq!(a.below(1000), b.below(1000));
        }
    }

    #[test]
    fn forks_are_independent_streams() {
        let mut root = SimRng::seed_from(1);
        let mut c1 = root.fork(1);
        let mut c2 = root.fork(2);
        // Not a statistical test, just "they diverge".
        let a: Vec<u64> = (0..8).map(|_| c1.normal().to_bits()).collect();
        let b: Vec<u64> = (0..8).map(|_| c2.normal().to_bits()).collect();
        assert_ne!(a, b);
    }

    #[test]
    fn normal_moments_are_plausible() {
        let mut rng = SimRng::seed_from(1234);
        let n = 20_000;
        let samples: Vec<f64> = (0..n).map(|_| rng.normal()).collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var = samples.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / n as f64;
        assert!(mean.abs() < 0.03, "mean {mean} too far from 0");
        assert!((var - 1.0).abs() < 0.05, "variance {var} too far from 1");
    }

    #[test]
    fn weighted_choice_respects_weights() {
        let mut rng = SimRng::seed_from(5);
        let mut counts = [0usize; 3];
        for _ in 0..3000 {
            counts[rng.weighted_choice(&[1.0, 0.0, 3.0])] += 1;
        }
        assert_eq!(counts[1], 0);
        assert!(counts[2] > counts[0] * 2, "counts {counts:?}");
    }

    #[test]
    fn below_stays_in_range() {
        let mut rng = SimRng::seed_from(6);
        for _ in 0..100 {
            assert!(rng.below(7) < 7);
        }
    }
}
