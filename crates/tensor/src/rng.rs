//! Seeded random number generation for reproducible simulation.
//!
//! The generator is an in-repo **xoshiro256\*\*** (Blackman & Vigna) seeded
//! through **splitmix64**, the pairing the reference implementation
//! recommends. Carrying the ~30 lines of generator here, instead of
//! depending on an external crate, keeps the workspace's dependency graph
//! empty (builds are fully offline) and pins every simulated bit to this
//! repository: no upstream version bump can ever shift a golden value.

/// splitmix64 step: advances `state` and returns the next output.
///
/// Used only to expand a 64-bit seed into the 256-bit xoshiro state, as the
/// xoshiro authors prescribe (it guarantees a non-zero, well-mixed state for
/// every seed, including 0).
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// A seeded RNG with the Gaussian and categorical helpers the synthetic
/// weight/workload generators need.
///
/// Wrapping the raw generator in a newtype keeps its identity out of the
/// public API of downstream crates and pins the distribution implementations
/// (e.g. Box–Muller for normals) so simulation outputs are stable forever —
/// the golden-value tests below notarize the exact stream.
///
/// # Example
///
/// ```
/// use longsight_tensor::SimRng;
///
/// let mut a = SimRng::seed_from(7);
/// let mut b = SimRng::seed_from(7);
/// assert_eq!(a.normal(), b.normal()); // deterministic given the seed
/// ```
#[derive(Debug, Clone)]
pub struct SimRng {
    /// xoshiro256** state (never all-zero by construction).
    s: [u64; 4],
    /// Spare Gaussian deviate from the last Box–Muller draw.
    cached_normal: Option<f64>,
}

impl SimRng {
    /// Creates an RNG from a 64-bit seed.
    pub fn seed_from(seed: u64) -> Self {
        let mut sm = seed;
        Self {
            s: [
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
            ],
            cached_normal: None,
        }
    }

    /// The next raw 64-bit output (xoshiro256** scrambler + state update).
    pub fn next_u64(&mut self) -> u64 {
        let out = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        out
    }

    /// Derives an independent child RNG, keyed by `stream`.
    ///
    /// Used to give each layer/head its own reproducible stream regardless of
    /// the order in which they draw.
    pub fn fork(&mut self, stream: u64) -> SimRng {
        let base = self.next_u64();
        SimRng::seed_from(base ^ stream.wrapping_mul(0x9E37_79B9_7F4A_7C15))
    }

    /// Uniform `f64` in `[0, 1)` (53 high bits of one raw output).
    pub fn uniform(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform integer in `[0, n)` (Lemire's widening-multiply reduction).
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    pub fn below(&mut self, n: usize) -> usize {
        assert!(n > 0, "below(0) is meaningless");
        ((u128::from(self.next_u64()) * n as u128) >> 64) as usize
    }

    /// Standard normal deviate via Box–Muller.
    pub fn normal(&mut self) -> f64 {
        if let Some(z) = self.cached_normal.take() {
            return z;
        }
        // Draw u1 in (0, 1] to avoid ln(0).
        let u1: f64 = 1.0 - self.uniform();
        let u2: f64 = self.uniform();
        let r = (-2.0 * u1.ln()).sqrt();
        let theta = 2.0 * std::f64::consts::PI * u2;
        self.cached_normal = Some(r * theta.sin());
        r * theta.cos()
    }

    /// Normal deviate with the given mean and standard deviation.
    pub fn normal_with(&mut self, mean: f64, std_dev: f64) -> f64 {
        mean + std_dev * self.normal()
    }

    /// Fills a fresh `f32` vector with i.i.d. `N(0, 1)` entries.
    pub fn normal_vec(&mut self, n: usize) -> Vec<f32> {
        (0..n).map(|_| self.normal() as f32).collect()
    }

    /// Samples an index from unnormalized non-negative weights.
    ///
    /// # Panics
    ///
    /// Panics if `weights` is empty or sums to zero.
    pub fn weighted_choice(&mut self, weights: &[f64]) -> usize {
        assert!(!weights.is_empty(), "weighted_choice over empty weights");
        let total: f64 = weights.iter().sum();
        assert!(total > 0.0, "weighted_choice weights sum to zero");
        let mut target = self.uniform() * total;
        for (i, &w) in weights.iter().enumerate() {
            target -= w;
            if target <= 0.0 {
                return i;
            }
        }
        weights.len() - 1
    }

    /// Bernoulli draw with probability `p` of `true`.
    pub fn coin(&mut self, p: f64) -> bool {
        self.uniform() < p
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_given_seed() {
        let mut a = SimRng::seed_from(99);
        let mut b = SimRng::seed_from(99);
        for _ in 0..32 {
            assert_eq!(a.normal().to_bits(), b.normal().to_bits());
            assert_eq!(a.below(1000), b.below(1000));
        }
    }

    /// Pins the raw xoshiro256** stream for seed 0 — cross-checked against
    /// the reference C implementation seeded via splitmix64(0).
    #[test]
    fn golden_raw_stream_seed_zero() {
        let mut rng = SimRng::seed_from(0);
        let got: Vec<u64> = (0..4).map(|_| rng.next_u64()).collect();
        assert_eq!(
            got,
            vec![
                0x99EC_5F36_CB75_F2B4,
                0xBF6E_1F78_4956_452A,
                0x1A5F_849D_4933_E6E0,
                0x6AA5_94F1_262D_2D2C,
            ]
        );
    }

    /// Pins the derived distributions. These values notarize the exact
    /// stream every synthetic corpus/weight generator consumes; they must
    /// never change (all downstream goldens depend on them).
    #[test]
    fn golden_derived_values_seed_42() {
        let mut rng = SimRng::seed_from(42);
        let u: Vec<u64> = (0..4).map(|_| rng.uniform().to_bits()).collect();
        assert_eq!(
            u,
            vec![
                GOLDEN_UNIFORM_42[0],
                GOLDEN_UNIFORM_42[1],
                GOLDEN_UNIFORM_42[2],
                GOLDEN_UNIFORM_42[3]
            ]
        );
        let mut rng = SimRng::seed_from(42);
        let n: Vec<u64> = (0..4).map(|_| rng.normal().to_bits()).collect();
        assert_eq!(
            n,
            vec![
                GOLDEN_NORMAL_42[0],
                GOLDEN_NORMAL_42[1],
                GOLDEN_NORMAL_42[2],
                GOLDEN_NORMAL_42[3]
            ]
        );
        let mut rng = SimRng::seed_from(42);
        let b: Vec<usize> = (0..4).map(|_| rng.below(1_000_003)).collect();
        assert_eq!(b, GOLDEN_BELOW_42);
    }

    /// Golden bit patterns, generated once from this implementation and
    /// frozen. `uniform`/`normal` values stored as f64 bits to be exact.
    const GOLDEN_UNIFORM_42: [u64; 4] = [
        0x3FB5_780B_2E0C_2EC0,
        0x3FD8_4136_619B_444E,
        0x3FE5_C2EA_6647_3C93,
        0x3FED_9715_A8E0_766C,
    ];
    const GOLDEN_NORMAL_42: [u64; 4] = [
        0xBFD3_68A9_7C38_507C,
        0x3FD2_7628_399A_DBDA,
        0x3FF5_8040_C37F_1762,
        0xBFE6_03E4_8643_DB8F,
    ];
    const GOLDEN_BELOW_42: [usize; 4] = [83_863, 378_981, 680_045, 924_695];

    #[test]
    fn forks_are_independent_streams() {
        let mut root = SimRng::seed_from(1);
        let mut c1 = root.fork(1);
        let mut c2 = root.fork(2);
        // Not a statistical test, just "they diverge".
        let a: Vec<u64> = (0..8).map(|_| c1.normal().to_bits()).collect();
        let b: Vec<u64> = (0..8).map(|_| c2.normal().to_bits()).collect();
        assert_ne!(a, b);
    }

    #[test]
    fn normal_moments_are_plausible() {
        let mut rng = SimRng::seed_from(1234);
        let n = 20_000;
        let samples: Vec<f64> = (0..n).map(|_| rng.normal()).collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var = samples.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / n as f64;
        assert!(mean.abs() < 0.03, "mean {mean} too far from 0");
        assert!((var - 1.0).abs() < 0.05, "variance {var} too far from 1");
    }

    #[test]
    fn uniform_is_in_unit_interval_and_covers_it() {
        let mut rng = SimRng::seed_from(8);
        let mut lo = 1.0f64;
        let mut hi = 0.0f64;
        for _ in 0..10_000 {
            let u = rng.uniform();
            assert!((0.0..1.0).contains(&u));
            lo = lo.min(u);
            hi = hi.max(u);
        }
        assert!(lo < 0.01 && hi > 0.99, "poor coverage: [{lo}, {hi}]");
    }

    #[test]
    fn weighted_choice_respects_weights() {
        let mut rng = SimRng::seed_from(5);
        let mut counts = [0usize; 3];
        for _ in 0..3000 {
            counts[rng.weighted_choice(&[1.0, 0.0, 3.0])] += 1;
        }
        assert_eq!(counts[1], 0);
        assert!(counts[2] > counts[0] * 2, "counts {counts:?}");
    }

    #[test]
    fn below_stays_in_range() {
        let mut rng = SimRng::seed_from(6);
        for _ in 0..100 {
            assert!(rng.below(7) < 7);
        }
        // Lemire reduction is exhaustive over small ranges.
        let mut seen = [false; 7];
        for _ in 0..1000 {
            seen[rng.below(7)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }
}
