//! Bit-packed sign vectors for Sign-Concordance Filtering.
//!
//! LongSight's PFUs operate on one-bit quantized keys: only the sign bit of
//! each dimension is stored. [`SignBits`] packs those sign bits 64 per word
//! so that the concordance count — `D − popcount(SQ ⊕ SK)` — is a handful of
//! XOR and popcount instructions, exactly the operation the in-DRAM filter
//! units implement.

/// A bit-packed vector of sign bits.
///
/// Bit `i` is **1** when dimension `i` of the source vector is negative
/// (`x < 0.0`), **0** otherwise. Zero is treated as non-negative, matching the
/// paper's "sign bit of the full-precision representation" (IEEE-754 `+0.0`
/// has sign bit 0).
///
/// # Example
///
/// ```
/// use longsight_tensor::SignBits;
///
/// let q = SignBits::from_slice(&[1.0, -2.0, 3.0, -4.0]);
/// let k = SignBits::from_slice(&[1.0, -2.0, -3.0, 4.0]);
/// assert_eq!(q.concordance(&k), 2); // dims 0 and 1 agree
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct SignBits {
    dim: usize,
    words: Vec<u64>,
}

impl SignBits {
    /// Extracts the packed sign bits of `v`.
    ///
    /// `-0.0` and NaN compare as non-negative here: the bit is set only when
    /// `x < 0.0`, so packing is a pure function of that comparison.
    pub fn from_slice(v: &[f32]) -> Self {
        let dim = v.len();
        let mut packed = vec![0u64; dim.div_ceil(64)];
        for (i, &x) in v.iter().enumerate() {
            if x < 0.0 {
                packed[i / 64] |= 1u64 << (i % 64);
            }
        }
        Self { dim, words: packed }
    }

    /// Dimensionality of the source vector.
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// The packed words (little-bit-endian within each word).
    pub fn words(&self) -> &[u64] {
        &self.words
    }

    /// Returns the sign bit of dimension `i` (`true` = negative).
    ///
    /// # Panics
    ///
    /// Panics if `i >= dim`.
    pub fn bit(&self, i: usize) -> bool {
        assert!(i < self.dim, "sign bit index out of bounds");
        (self.words[i / 64] >> (i % 64)) & 1 == 1
    }

    /// Hamming distance: the number of dimensions whose signs **differ**.
    ///
    /// # Panics
    ///
    /// Panics if the dimensions differ.
    pub fn hamming(&self, other: &SignBits) -> u32 {
        assert_eq!(self.dim, other.dim, "sign vector dimension mismatch");
        self.words
            .iter()
            .zip(&other.words)
            .map(|(a, b)| (a ^ b).count_ones())
            .sum()
    }

    /// Sign concordance: the number of dimensions whose signs **match**,
    /// i.e. `D − hamming`. This is the quantity SCF thresholds.
    pub fn concordance(&self, other: &SignBits) -> u32 {
        self.dim as u32 - self.hamming(other)
    }

    /// Storage footprint in bytes when laid out in DRAM (one bit per
    /// dimension, rounded up to whole bytes). Used by the DReX capacity model.
    pub fn storage_bytes(dim: usize) -> usize {
        dim.div_ceil(8)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn naive_concordance(a: &[f32], b: &[f32]) -> u32 {
        a.iter()
            .zip(b)
            .filter(|(x, y)| (**x < 0.0) == (**y < 0.0))
            .count() as u32
    }

    #[test]
    fn concordance_matches_naive_on_odd_dims() {
        // 67 dims crosses a word boundary.
        let a: Vec<f32> = (0..67).map(|i| ((i * 37) % 13) as f32 - 6.0).collect();
        let b: Vec<f32> = (0..67).map(|i| ((i * 53) % 11) as f32 - 5.0).collect();
        let sa = SignBits::from_slice(&a);
        let sb = SignBits::from_slice(&b);
        assert_eq!(sa.concordance(&sb), naive_concordance(&a, &b));
        assert_eq!(sa.hamming(&sb) + sa.concordance(&sb), 67);
    }

    #[test]
    fn identical_vectors_have_full_concordance() {
        let v: Vec<f32> = (0..128).map(|i| (i as f32).sin()).collect();
        let s = SignBits::from_slice(&v);
        assert_eq!(s.concordance(&s), 128);
        assert_eq!(s.hamming(&s), 0);
    }

    #[test]
    fn negated_vector_has_zero_concordance_when_no_zeros() {
        let v: Vec<f32> = (0..64)
            .map(|i| (i as f32 + 0.5) * if i % 2 == 0 { 1.0 } else { -1.0 })
            .collect();
        let neg: Vec<f32> = v.iter().map(|x| -x).collect();
        let s = SignBits::from_slice(&v);
        let sn = SignBits::from_slice(&neg);
        assert_eq!(s.concordance(&sn), 0);
    }

    #[test]
    fn zero_and_negative_zero_are_non_negative() {
        let s = SignBits::from_slice(&[0.0, -0.0, -1.0]);
        assert!(!s.bit(0));
        assert!(!s.bit(1));
        assert!(s.bit(2));
    }

    #[test]
    fn storage_bytes_rounds_up() {
        assert_eq!(SignBits::storage_bytes(64), 8);
        assert_eq!(SignBits::storage_bytes(65), 9);
        assert_eq!(SignBits::storage_bytes(128), 16);
    }

    #[test]
    #[should_panic(expected = "dimension mismatch")]
    fn mismatched_dims_panic() {
        let a = SignBits::from_slice(&[1.0; 4]);
        let b = SignBits::from_slice(&[1.0; 5]);
        let _ = a.concordance(&b);
    }
}
