//! Bit-packed sign vectors for Sign-Concordance Filtering.
//!
//! LongSight's PFUs operate on one-bit quantized keys: only the sign bit of
//! each dimension is stored. [`SignBits`] packs those sign bits 64 per word
//! so that the concordance count — `D − popcount(SQ ⊕ SK)` — is a handful of
//! XOR and popcount instructions, exactly the operation the in-DRAM filter
//! units implement.

/// A bit-packed vector of sign bits.
///
/// Bit `i` is **1** when dimension `i` of the source vector is negative
/// (`x < 0.0`), **0** otherwise. Zero is treated as non-negative, matching the
/// paper's "sign bit of the full-precision representation" (IEEE-754 `+0.0`
/// has sign bit 0).
///
/// # Example
///
/// ```
/// use longsight_tensor::SignBits;
///
/// let q = SignBits::from_slice(&[1.0, -2.0, 3.0, -4.0]);
/// let k = SignBits::from_slice(&[1.0, -2.0, -3.0, 4.0]);
/// assert_eq!(q.concordance(&k), 2); // dims 0 and 1 agree
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct SignBits {
    dim: usize,
    words: Vec<u64>,
}

impl SignBits {
    /// Extracts the packed sign bits of `v`.
    ///
    /// `-0.0` and NaN compare as non-negative here: the bit is set only when
    /// `x < 0.0`, so packing is a pure function of that comparison.
    pub fn from_slice(v: &[f32]) -> Self {
        let dim = v.len();
        let mut packed = vec![0u64; dim.div_ceil(64)];
        for (i, &x) in v.iter().enumerate() {
            if x < 0.0 {
                packed[i / 64] |= 1u64 << (i % 64);
            }
        }
        Self { dim, words: packed }
    }

    /// Dimensionality of the source vector.
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// The packed words (little-bit-endian within each word).
    pub fn words(&self) -> &[u64] {
        &self.words
    }

    /// Returns the sign bit of dimension `i` (`true` = negative).
    ///
    /// # Panics
    ///
    /// Panics if `i >= dim`.
    pub fn bit(&self, i: usize) -> bool {
        assert!(i < self.dim, "sign bit index out of bounds");
        (self.words[i / 64] >> (i % 64)) & 1 == 1
    }

    /// Hamming distance: the number of dimensions whose signs **differ**.
    ///
    /// # Panics
    ///
    /// Panics if the dimensions differ.
    pub fn hamming(&self, other: &SignBits) -> u32 {
        assert_eq!(self.dim, other.dim, "sign vector dimension mismatch");
        self.words
            .iter()
            .zip(&other.words)
            .map(|(a, b)| (a ^ b).count_ones())
            .sum()
    }

    /// Sign concordance: the number of dimensions whose signs **match**,
    /// i.e. `D − hamming`. This is the quantity SCF thresholds.
    pub fn concordance(&self, other: &SignBits) -> u32 {
        self.dim as u32 - self.hamming(other)
    }

    /// Storage footprint in bytes when laid out in DRAM (one bit per
    /// dimension, rounded up to whole bytes). Used by the DReX capacity model.
    pub fn storage_bytes(dim: usize) -> usize {
        dim.div_ceil(8)
    }
}

/// A contiguous, append-only arena of bit-packed sign vectors — the
/// functional mirror of one `(layer, kv_head)` region of Key Sign Objects
/// laid out in DReX DRAM.
///
/// Where a `Vec<SignBits>` scatters every key's lanes behind its own heap
/// allocation, the arena stores all keys **key-major** in a single `u64`
/// buffer: key `i` owns words `[i·W, (i+1)·W)` with `W = ⌈dim/64⌉`. A block
/// kernel (`filter_block_packed` in `longsight-core`) can therefore stream
/// the lanes of 128 consecutive keys with no pointer chasing — the honest
/// model of the PFU's word-wide XOR/popcount running at internal DRAM
/// bandwidth (104.9 TB/s in the paper, §7.4).
///
/// The arena is append-only: keys enter when they leave the dense window
/// (the functional flush of Key Sign Objects to the device) and are only
/// discarded wholesale via [`SignArena::clear`].
///
/// # Example
///
/// ```
/// use longsight_tensor::{SignArena, SignBits};
///
/// let mut arena = SignArena::new(4);
/// arena.push_signs_of(&[1.0, -2.0, 3.0, -4.0]);
/// arena.push_signs_of(&[-1.0, 2.0, -3.0, 4.0]);
/// let q = SignBits::from_slice(&[1.0, -2.0, 3.0, -4.0]);
/// assert_eq!(arena.concordance(0, &q), 4);
/// assert_eq!(arena.concordance(1, &q), 0);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SignArena {
    dim: usize,
    words_per_key: usize,
    len: usize,
    words: Vec<u64>,
}

impl SignArena {
    /// Creates an empty arena for sign vectors of dimensionality `dim`.
    pub fn new(dim: usize) -> Self {
        Self {
            dim,
            words_per_key: dim.div_ceil(64),
            len: 0,
            words: Vec::new(),
        }
    }

    /// Dimensionality of every stored sign vector.
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// `u64` lanes per key (`⌈dim/64⌉`).
    pub fn words_per_key(&self) -> usize {
        self.words_per_key
    }

    /// Number of keys stored.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the arena holds no keys.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Discards every key (capacity is retained for reuse).
    pub fn clear(&mut self) {
        self.len = 0;
        self.words.clear();
    }

    /// Packs the sign bits of `v` directly into the arena tail — no
    /// intermediate [`SignBits`] allocation. Bit semantics match
    /// [`SignBits::from_slice`]: the bit is set only when `x < 0.0`, so
    /// `-0.0` and NaN pack as non-negative.
    ///
    /// # Panics
    ///
    /// Panics if `v.len() != dim`.
    pub fn push_signs_of(&mut self, v: &[f32]) {
        assert_eq!(v.len(), self.dim, "sign vector dimension mismatch");
        let base = self.words.len();
        self.words.resize(base + self.words_per_key, 0);
        for (i, &x) in v.iter().enumerate() {
            if x < 0.0 {
                self.words[base + i / 64] |= 1u64 << (i % 64);
            }
        }
        self.len += 1;
    }

    /// Appends an already-packed sign vector.
    ///
    /// # Panics
    ///
    /// Panics if `bits.dim() != dim`.
    pub fn push_bits(&mut self, bits: &SignBits) {
        assert_eq!(bits.dim(), self.dim, "sign vector dimension mismatch");
        self.words.extend_from_slice(bits.words());
        self.len += 1;
    }

    /// The packed lanes of key `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i >= len`.
    pub fn key_words(&self, i: usize) -> &[u64] {
        assert!(i < self.len, "key index out of bounds");
        &self.words[i * self.words_per_key..(i + 1) * self.words_per_key]
    }

    /// The contiguous lanes of keys `range` (key-major), the block-kernel
    /// input: `range.len() * words_per_key` words with no per-key
    /// indirection.
    ///
    /// # Panics
    ///
    /// Panics if the range exceeds `len`.
    pub fn lane_words(&self, range: core::ops::Range<usize>) -> &[u64] {
        assert!(
            range.start <= range.end && range.end <= self.len,
            "key range out of bounds"
        );
        &self.words[range.start * self.words_per_key..range.end * self.words_per_key]
    }

    /// Copies key `i` back out as a standalone [`SignBits`] (tests and
    /// diagnostics; the hot paths stay on the packed lanes).
    ///
    /// # Panics
    ///
    /// Panics if `i >= len`.
    pub fn get(&self, i: usize) -> SignBits {
        SignBits {
            dim: self.dim,
            words: self.key_words(i).to_vec(),
        }
    }

    /// Sign concordance of key `i` against `query` — identical to
    /// `query.concordance(&self.get(i))` without materializing the key.
    ///
    /// # Panics
    ///
    /// Panics if `i >= len` or the dimensions differ.
    pub fn concordance(&self, i: usize, query: &SignBits) -> u32 {
        assert_eq!(query.dim(), self.dim, "sign vector dimension mismatch");
        let hamming: u32 = self
            .key_words(i)
            .iter()
            .zip(query.words())
            .map(|(a, b)| (a ^ b).count_ones())
            .sum();
        self.dim as u32 - hamming
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn naive_concordance(a: &[f32], b: &[f32]) -> u32 {
        a.iter()
            .zip(b)
            .filter(|(x, y)| (**x < 0.0) == (**y < 0.0))
            .count() as u32
    }

    #[test]
    fn concordance_matches_naive_on_odd_dims() {
        // 67 dims crosses a word boundary.
        let a: Vec<f32> = (0..67).map(|i| ((i * 37) % 13) as f32 - 6.0).collect();
        let b: Vec<f32> = (0..67).map(|i| ((i * 53) % 11) as f32 - 5.0).collect();
        let sa = SignBits::from_slice(&a);
        let sb = SignBits::from_slice(&b);
        assert_eq!(sa.concordance(&sb), naive_concordance(&a, &b));
        assert_eq!(sa.hamming(&sb) + sa.concordance(&sb), 67);
    }

    #[test]
    fn identical_vectors_have_full_concordance() {
        let v: Vec<f32> = (0..128).map(|i| (i as f32).sin()).collect();
        let s = SignBits::from_slice(&v);
        assert_eq!(s.concordance(&s), 128);
        assert_eq!(s.hamming(&s), 0);
    }

    #[test]
    fn negated_vector_has_zero_concordance_when_no_zeros() {
        let v: Vec<f32> = (0..64)
            .map(|i| (i as f32 + 0.5) * if i % 2 == 0 { 1.0 } else { -1.0 })
            .collect();
        let neg: Vec<f32> = v.iter().map(|x| -x).collect();
        let s = SignBits::from_slice(&v);
        let sn = SignBits::from_slice(&neg);
        assert_eq!(s.concordance(&sn), 0);
    }

    #[test]
    fn zero_and_negative_zero_are_non_negative() {
        let s = SignBits::from_slice(&[0.0, -0.0, -1.0]);
        assert!(!s.bit(0));
        assert!(!s.bit(1));
        assert!(s.bit(2));
    }

    #[test]
    fn storage_bytes_rounds_up() {
        assert_eq!(SignBits::storage_bytes(64), 8);
        assert_eq!(SignBits::storage_bytes(65), 9);
        assert_eq!(SignBits::storage_bytes(128), 16);
    }

    #[test]
    #[should_panic(expected = "dimension mismatch")]
    fn mismatched_dims_panic() {
        let a = SignBits::from_slice(&[1.0; 4]);
        let b = SignBits::from_slice(&[1.0; 5]);
        let _ = a.concordance(&b);
    }
}
