//! Dense numeric kernels for the LongSight reproduction.
//!
//! This crate provides the small, self-contained numeric substrate that the
//! rest of the workspace builds on:
//!
//! * [`Matrix`] — a row-major `f32` matrix with the handful of BLAS-like
//!   operations the transformer substrate needs,
//! * [`vecops`] — vector kernels (dot products, softmax, normalization),
//! * [`linalg`] — Jacobi eigendecomposition and one-sided Jacobi SVD, used by
//!   the ITQ rotation trainer,
//! * [`SignBits`] — bit-packed sign vectors with popcount-based concordance,
//!   the data structure behind Sign-Concordance Filtering,
//! * [`SignArena`] — a contiguous key-major arena of packed sign lanes, the
//!   block-kernel layout mirroring a DReX Key Sign Object region,
//! * [`TopK`] — a bounded min-heap for top-*k* selection,
//! * [`Bf16`] — bfloat16 storage emulation (the paper's models run BF16),
//! * [`SimRng`] — a seeded in-repo xoshiro256** RNG with the Gaussian helpers
//!   the synthetic weight/workload generators need,
//! * [`check`] — a minimal seeded property-test runner used by the workspace's
//!   randomized test suites.
//!
//! Everything here is deterministic given a seed and free of unsafe code, with
//! no dependencies outside the standard library.
//!
//! # Example
//!
//! ```
//! use longsight_tensor::{Matrix, SimRng};
//!
//! let mut rng = SimRng::seed_from(42);
//! let a = Matrix::random_gaussian(4, 8, &mut rng);
//! let b = Matrix::random_gaussian(8, 3, &mut rng);
//! let c = a.matmul(&b);
//! assert_eq!((c.rows(), c.cols()), (4, 3));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod bf16;
pub mod check;
mod flatvecs;
pub mod linalg;
mod matrix;
mod rng;
mod sign;
mod topk;
pub mod vecops;

pub use bf16::{quantize_bf16_in_place, Bf16};
pub use flatvecs::FlatVecs;
pub use matrix::Matrix;
pub use rng::SimRng;
pub use sign::{SignArena, SignBits};
pub use topk::{top_k_indices, ScoredIndex, TopK};
