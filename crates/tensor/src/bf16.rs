//! bfloat16 storage emulation.
//!
//! The paper's models store Keys and Values in BF16 (Table 1). The simulator
//! computes in `f32` but models BF16 *storage*: rounding through [`Bf16`]
//! reproduces the precision the NMA sees when it reads full-precision keys
//! out of LPDDR, and `size_of::<Bf16>() == 2` drives the capacity math.

/// A bfloat16 value: the top 16 bits of an IEEE-754 `f32`.
///
/// Conversion from `f32` uses round-to-nearest-even, matching hardware BF16
/// conversion.
///
/// # Example
///
/// ```
/// use longsight_tensor::Bf16;
///
/// let x = Bf16::from_f32(1.0);
/// assert_eq!(x.to_f32(), 1.0);
/// let y = Bf16::from_f32(1.0 + 1e-4); // below BF16 resolution near 1.0
/// assert_eq!(y.to_f32(), 1.0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct Bf16(u16);

impl Bf16 {
    /// Positive zero.
    pub const ZERO: Bf16 = Bf16(0);

    /// Converts from `f32` with round-to-nearest-even.
    pub fn from_f32(x: f32) -> Self {
        let bits = x.to_bits();
        if x.is_nan() {
            // Preserve NaN; set the quiet bit so truncation can't make an Inf.
            return Bf16(((bits >> 16) as u16) | 0x0040);
        }
        // Round to nearest even on the truncated 16 bits.
        let lsb = (bits >> 16) & 1;
        let rounded = bits.wrapping_add(0x0000_7FFF + lsb);
        Bf16((rounded >> 16) as u16)
    }

    /// Converts back to `f32` (exact).
    pub fn to_f32(self) -> f32 {
        f32::from_bits((self.0 as u32) << 16)
    }

    /// Raw bit pattern.
    pub fn to_bits(self) -> u16 {
        self.0
    }

    /// Constructs from a raw bit pattern.
    pub fn from_bits(bits: u16) -> Self {
        Bf16(bits)
    }

    /// Storage size in bytes (2). Named constant for capacity models.
    pub const BYTES: usize = 2;
}

impl From<f32> for Bf16 {
    fn from(x: f32) -> Self {
        Bf16::from_f32(x)
    }
}

impl From<Bf16> for f32 {
    fn from(x: Bf16) -> Self {
        x.to_f32()
    }
}

impl std::fmt::Display for Bf16 {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.to_f32())
    }
}

/// Rounds every element of `v` through BF16 precision, in place.
pub fn quantize_bf16_in_place(v: &mut [f32]) {
    for x in v {
        *x = Bf16::from_f32(*x).to_f32();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exact_values_round_trip() {
        for &x in &[0.0f32, 1.0, -1.0, 0.5, -2.0, 256.0, 0.0078125, 65280.0] {
            assert_eq!(
                Bf16::from_f32(x).to_f32(),
                x,
                "value {x} should be BF16-exact"
            );
        }
    }

    #[test]
    fn rounding_is_nearest_even() {
        // 1.0 = 0x3F80_0000. The BF16 ulp near 1.0 is 2^-7 = 0.0078125.
        let ulp = 0.0078125f32;
        // Exactly halfway rounds to even (here: down, since 0x3F80 is even).
        let half = 1.0 + ulp / 2.0;
        assert_eq!(Bf16::from_f32(half).to_f32(), 1.0);
        // Just above halfway rounds up.
        let above = f32::from_bits((1.0f32 + ulp / 2.0).to_bits() + 1);
        assert_eq!(Bf16::from_f32(above).to_f32(), 1.0 + ulp);
    }

    #[test]
    fn nan_stays_nan_and_inf_stays_inf() {
        assert!(Bf16::from_f32(f32::NAN).to_f32().is_nan());
        assert_eq!(Bf16::from_f32(f32::INFINITY).to_f32(), f32::INFINITY);
        assert_eq!(
            Bf16::from_f32(f32::NEG_INFINITY).to_f32(),
            f32::NEG_INFINITY
        );
    }

    #[test]
    fn relative_error_bounded_by_bf16_epsilon() {
        // BF16 has 8 significand bits: relative error <= 2^-8 after RNE.
        let mut x = 0.123456f32;
        for _ in 0..100 {
            let q = Bf16::from_f32(x).to_f32();
            let rel = ((q - x) / x).abs();
            assert!(rel <= 1.0 / 256.0, "rel err {rel} too large for {x}");
            x *= 1.37;
        }
    }

    #[test]
    fn quantize_slice_in_place() {
        let mut v = vec![1.0 + 1e-4, -3.0];
        quantize_bf16_in_place(&mut v);
        assert_eq!(v, vec![1.0, -3.0]);
    }
}
