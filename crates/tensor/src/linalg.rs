//! Small dense linear algebra: Jacobi eigendecomposition and one-sided Jacobi
//! SVD.
//!
//! The ITQ rotation trainer (paper §5.4) solves an orthogonal Procrustes
//! problem each iteration: given `M = Xᵀ·B`, find the orthogonal `R`
//! minimizing `‖X·R − B‖`, which is `R = U·Vᵀ` from the SVD `M = U·Σ·Vᵀ`.
//! Head dimensions are at most 128 (Table 1), so an `O(d³)` Jacobi method is
//! more than fast enough and numerically robust.

use crate::{Matrix, SimRng};

/// Result of a symmetric eigendecomposition `A = V·diag(λ)·Vᵀ`.
#[derive(Debug, Clone)]
pub struct SymEigen {
    /// Eigenvalues in descending order.
    pub values: Vec<f32>,
    /// Eigenvectors as columns, in the same order as `values`.
    pub vectors: Matrix,
}

/// Result of a singular value decomposition `A = U·diag(σ)·Vᵀ`.
#[derive(Debug, Clone)]
pub struct Svd {
    /// Left singular vectors as columns.
    pub u: Matrix,
    /// Singular values in descending order.
    pub sigma: Vec<f32>,
    /// Right singular vectors as columns (i.e. `V`, not `Vᵀ`).
    pub v: Matrix,
}

const JACOBI_SWEEPS: usize = 60;
const JACOBI_TOL: f64 = 1e-12;

/// Symmetric eigendecomposition by the cyclic Jacobi method.
///
/// # Panics
///
/// Panics if `a` is not square.
pub fn eigen_sym(a: &Matrix) -> SymEigen {
    assert_eq!(a.rows(), a.cols(), "eigen_sym requires a square matrix");
    let n = a.rows();
    // Work in f64 for robustness.
    let mut m: Vec<f64> = a.data().iter().map(|&x| x as f64).collect();
    let mut v = vec![0.0f64; n * n];
    for i in 0..n {
        v[i * n + i] = 1.0;
    }
    let at = |m: &[f64], r: usize, c: usize| m[r * n + c];

    for _ in 0..JACOBI_SWEEPS {
        let mut off = 0.0f64;
        for p in 0..n {
            for q in (p + 1)..n {
                off += at(&m, p, q) * at(&m, p, q);
            }
        }
        if off.sqrt() < JACOBI_TOL {
            break;
        }
        for p in 0..n {
            for q in (p + 1)..n {
                let apq = at(&m, p, q);
                if apq.abs() < 1e-300 {
                    continue;
                }
                let app = at(&m, p, p);
                let aqq = at(&m, q, q);
                let theta = (aqq - app) / (2.0 * apq);
                let t = theta.signum() / (theta.abs() + (theta * theta + 1.0).sqrt());
                let c = 1.0 / (t * t + 1.0).sqrt();
                let s = t * c;
                // Rotate rows/cols p and q of m.
                for k in 0..n {
                    let mkp = at(&m, k, p);
                    let mkq = at(&m, k, q);
                    m[k * n + p] = c * mkp - s * mkq;
                    m[k * n + q] = s * mkp + c * mkq;
                }
                for k in 0..n {
                    let mpk = at(&m, p, k);
                    let mqk = at(&m, q, k);
                    m[p * n + k] = c * mpk - s * mqk;
                    m[q * n + k] = s * mpk + c * mqk;
                }
                // Accumulate eigenvectors.
                for k in 0..n {
                    let vkp = at(&v, k, p);
                    let vkq = at(&v, k, q);
                    v[k * n + p] = c * vkp - s * vkq;
                    v[k * n + q] = s * vkp + c * vkq;
                }
            }
        }
    }

    let mut order: Vec<usize> = (0..n).collect();
    order.sort_by(|&i, &j| at(&m, j, j).total_cmp(&at(&m, i, i)));
    let values: Vec<f32> = order.iter().map(|&i| at(&m, i, i) as f32).collect();
    let vectors = Matrix::from_fn(n, n, |r, c| at(&v, r, order[c]) as f32);
    SymEigen { values, vectors }
}

/// One-sided Jacobi SVD of a square matrix.
///
/// Orthogonalizes the columns of `A` by plane rotations accumulated into `V`;
/// the column norms become the singular values and the normalized columns
/// become `U`. Columns with (numerically) zero singular values have their `U`
/// columns completed to an orthonormal basis so that `U` is always orthogonal
/// — this is what the Procrustes solve requires.
///
/// # Panics
///
/// Panics if `a` is not square.
pub fn svd_square(a: &Matrix) -> Svd {
    assert_eq!(a.rows(), a.cols(), "svd_square requires a square matrix");
    let n = a.rows();
    let mut u: Vec<f64> = a.data().iter().map(|&x| x as f64).collect();
    let mut v = vec![0.0f64; n * n];
    for i in 0..n {
        v[i * n + i] = 1.0;
    }

    let col_dot = |m: &[f64], i: usize, j: usize| -> f64 {
        let mut s = 0.0;
        for r in 0..n {
            s += m[r * n + i] * m[r * n + j];
        }
        s
    };

    for _ in 0..JACOBI_SWEEPS {
        let mut converged = true;
        for p in 0..n {
            for q in (p + 1)..n {
                let alpha = col_dot(&u, p, p);
                let beta = col_dot(&u, q, q);
                let gamma = col_dot(&u, p, q);
                if gamma.abs() <= JACOBI_TOL * (alpha * beta).sqrt() || gamma == 0.0 {
                    continue;
                }
                converged = false;
                let zeta = (beta - alpha) / (2.0 * gamma);
                let t = zeta.signum() / (zeta.abs() + (1.0 + zeta * zeta).sqrt());
                let c = 1.0 / (1.0 + t * t).sqrt();
                let s = c * t;
                for r in 0..n {
                    let up = u[r * n + p];
                    let uq = u[r * n + q];
                    u[r * n + p] = c * up - s * uq;
                    u[r * n + q] = s * up + c * uq;
                }
                for r in 0..n {
                    let vp = v[r * n + p];
                    let vq = v[r * n + q];
                    v[r * n + p] = c * vp - s * vq;
                    v[r * n + q] = s * vp + c * vq;
                }
            }
        }
        if converged {
            break;
        }
    }

    // Extract singular values and normalize U's columns.
    let mut sigma: Vec<f64> = (0..n).map(|i| col_dot(&u, i, i).sqrt()).collect();
    let scale = sigma.iter().cloned().fold(0.0f64, f64::max).max(1e-300);
    for i in 0..n {
        if sigma[i] > scale * 1e-9 {
            for r in 0..n {
                u[r * n + i] /= sigma[i];
            }
        } else {
            sigma[i] = 0.0;
        }
    }
    // Complete zero columns of U to an orthonormal basis (Gram–Schmidt against
    // the nonzero columns and previously-completed ones).
    for i in 0..n {
        if sigma[i] > 0.0 {
            continue;
        }
        // Try basis vectors until one survives projection.
        let mut best: Option<Vec<f64>> = None;
        for e in 0..n {
            let mut cand = vec![0.0f64; n];
            cand[e] = 1.0;
            for j in 0..n {
                if j == i || (sigma[j] == 0.0 && j > i) {
                    continue;
                }
                let proj: f64 = (0..n).map(|r| cand[r] * u[r * n + j]).sum();
                for (r, c) in cand.iter_mut().enumerate() {
                    *c -= proj * u[r * n + j];
                }
            }
            let norm: f64 = cand.iter().map(|x| x * x).sum::<f64>().sqrt();
            if norm > 1e-6 {
                for c in &mut cand {
                    *c /= norm;
                }
                best = Some(cand);
                break;
            }
        }
        let col = best.expect("orthonormal completion must succeed for n basis vectors");
        for r in 0..n {
            u[r * n + i] = col[r];
        }
    }

    // Sort by descending singular value.
    let mut order: Vec<usize> = (0..n).collect();
    order.sort_by(|&i, &j| sigma[j].total_cmp(&sigma[i]));
    let su = Matrix::from_fn(n, n, |r, c| u[r * n + order[c]] as f32);
    let sv = Matrix::from_fn(n, n, |r, c| v[r * n + order[c]] as f32);
    let ss: Vec<f32> = order.iter().map(|&i| sigma[i] as f32).collect();
    Svd {
        u: su,
        sigma: ss,
        v: sv,
    }
}

/// Solves the orthogonal Procrustes problem: the orthogonal `R` maximizing
/// `trace(Rᵀ·M)`, i.e. `R = U·Vᵀ` where `M = U·Σ·Vᵀ`.
///
/// In ITQ, `M = Xᵀ·B` (data times binary codes) and the returned `R` is the
/// updated rotation.
///
/// # Panics
///
/// Panics if `m` is not square.
pub fn procrustes_rotation(m: &Matrix) -> Matrix {
    let svd = svd_square(m);
    svd.u.matmul(&svd.v.transpose())
}

/// Generates a Haar-ish random orthogonal matrix by Gram–Schmidt on a
/// Gaussian matrix.
pub fn random_orthogonal(n: usize, rng: &mut SimRng) -> Matrix {
    loop {
        let g = Matrix::random_gaussian(n, n, rng);
        if let Some(q) = gram_schmidt_columns(&g) {
            return q;
        }
        // Astronomically unlikely to loop: retry on degenerate draw.
    }
}

/// Orthonormalizes the columns of `m`; returns `None` if a column collapses.
fn gram_schmidt_columns(m: &Matrix) -> Option<Matrix> {
    let n = m.rows();
    let k = m.cols();
    let mut cols: Vec<Vec<f32>> = (0..k).map(|c| m.col(c)).collect();
    for i in 0..k {
        // Re-orthogonalize twice for stability (classical GS done twice).
        for _pass in 0..2 {
            for j in 0..i {
                let proj = crate::vecops::dot(&cols[i], &cols[j]);
                let (left, right) = cols.split_at_mut(i);
                crate::vecops::axpy(-proj, &left[j], &mut right[0]);
            }
        }
        let norm = crate::vecops::l2_norm(&cols[i]);
        if norm < 1e-6 {
            return None;
        }
        for x in &mut cols[i] {
            *x /= norm;
        }
    }
    Some(Matrix::from_fn(n, k, |r, c| cols[c][r]))
}

/// Maximum absolute deviation of `QᵀQ` from the identity — 0 for a perfectly
/// orthogonal matrix. Used in tests and to validate trained ITQ rotations.
pub fn orthogonality_error(q: &Matrix) -> f32 {
    let qtq = q.transpose().matmul(q);
    qtq.max_abs_diff(&Matrix::identity(q.cols()))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn reconstruct_svd(svd: &Svd) -> Matrix {
        let n = svd.sigma.len();
        let mut us = svd.u.clone();
        for r in 0..n {
            for c in 0..n {
                us.set(r, c, us.get(r, c) * svd.sigma[c]);
            }
        }
        us.matmul(&svd.v.transpose())
    }

    #[test]
    fn eigen_of_diagonal_matrix() {
        let a = Matrix::from_rows(&[
            vec![3.0, 0.0, 0.0],
            vec![0.0, 1.0, 0.0],
            vec![0.0, 0.0, 2.0],
        ]);
        let e = eigen_sym(&a);
        assert!((e.values[0] - 3.0).abs() < 1e-5);
        assert!((e.values[1] - 2.0).abs() < 1e-5);
        assert!((e.values[2] - 1.0).abs() < 1e-5);
    }

    #[test]
    fn eigen_reconstructs_symmetric_matrix() {
        let mut rng = SimRng::seed_from(11);
        let g = Matrix::random_gaussian(6, 6, &mut rng);
        let a = g.matmul(&g.transpose()); // symmetric PSD
        let e = eigen_sym(&a);
        // A ≈ V diag(λ) Vᵀ
        let n = 6;
        let mut vl = e.vectors.clone();
        for r in 0..n {
            for c in 0..n {
                vl.set(r, c, vl.get(r, c) * e.values[c]);
            }
        }
        let rec = vl.matmul(&e.vectors.transpose());
        assert!(rec.max_abs_diff(&a) < 1e-3 * a.frobenius_norm().max(1.0));
    }

    #[test]
    fn svd_reconstructs_random_matrix() {
        let mut rng = SimRng::seed_from(21);
        let a = Matrix::random_gaussian(8, 8, &mut rng);
        let svd = svd_square(&a);
        let rec = reconstruct_svd(&svd);
        assert!(rec.max_abs_diff(&a) < 1e-3);
        assert!(orthogonality_error(&svd.u) < 1e-4);
        assert!(orthogonality_error(&svd.v) < 1e-4);
        for w in svd.sigma.windows(2) {
            assert!(w[0] >= w[1], "singular values must be descending");
        }
    }

    #[test]
    fn svd_of_rank_deficient_matrix_completes_u() {
        // Rank-1 matrix: outer product.
        let u = [1.0f32, 2.0, 3.0];
        let v = [-1.0f32, 0.5, 2.0];
        let a = Matrix::from_fn(3, 3, |r, c| u[r] * v[c]);
        let svd = svd_square(&a);
        assert!(svd.sigma[1].abs() < 1e-4);
        assert!(svd.sigma[2].abs() < 1e-4);
        assert!(
            orthogonality_error(&svd.u) < 1e-4,
            "U must still be orthogonal"
        );
        let rec = reconstruct_svd(&svd);
        assert!(rec.max_abs_diff(&a) < 1e-3);
    }

    #[test]
    fn procrustes_recovers_a_known_rotation() {
        let mut rng = SimRng::seed_from(31);
        let r_true = random_orthogonal(5, &mut rng);
        let x = Matrix::random_gaussian(64, 5, &mut rng);
        let b = x.matmul(&r_true);
        // M = Xᵀ B; Procrustes on M should recover R (X is full rank w.h.p.).
        let m = x.transpose().matmul(&b);
        let r = procrustes_rotation(&m);
        assert!(r.max_abs_diff(&r_true) < 1e-3);
    }

    #[test]
    fn random_orthogonal_is_orthogonal() {
        let mut rng = SimRng::seed_from(41);
        for n in [2, 3, 8, 16] {
            let q = random_orthogonal(n, &mut rng);
            assert!(orthogonality_error(&q) < 1e-4, "n = {n}");
        }
    }
}
