//! Vector kernels: dot products, softmax, norms.
//!
//! These are the scalar building blocks of the attention math. They operate on
//! plain `&[f32]` slices so callers control allocation (C-CALLER-CONTROL).

/// Dot product of two equal-length slices.
///
/// # Panics
///
/// Panics if the slices have different lengths.
///
/// # Example
///
/// ```
/// assert_eq!(longsight_tensor::vecops::dot(&[1.0, 2.0], &[3.0, 4.0]), 11.0);
/// ```
#[inline]
pub fn dot(a: &[f32], b: &[f32]) -> f32 {
    assert_eq!(a.len(), b.len(), "dot length mismatch");
    // Unrolled-by-4 accumulation: keeps four independent dependency chains so
    // the compiler can vectorize without -ffast-math.
    let mut acc = [0.0f32; 4];
    let chunks = a.len() / 4;
    for i in 0..chunks {
        let j = i * 4;
        acc[0] += a[j] * b[j];
        acc[1] += a[j + 1] * b[j + 1];
        acc[2] += a[j + 2] * b[j + 2];
        acc[3] += a[j + 3] * b[j + 3];
    }
    let mut tail = 0.0;
    for j in chunks * 4..a.len() {
        tail += a[j] * b[j];
    }
    acc[0] + acc[1] + acc[2] + acc[3] + tail
}

/// `y += alpha * x` (the BLAS `axpy`).
///
/// # Panics
///
/// Panics if the slices have different lengths.
#[inline]
pub fn axpy(alpha: f32, x: &[f32], y: &mut [f32]) {
    assert_eq!(x.len(), y.len(), "axpy length mismatch");
    for (yi, xi) in y.iter_mut().zip(x) {
        *yi += alpha * xi;
    }
}

/// Euclidean (L2) norm.
#[inline]
pub fn l2_norm(v: &[f32]) -> f32 {
    dot(v, v).sqrt()
}

/// Normalizes `v` to unit L2 norm in place. Zero vectors are left unchanged.
pub fn normalize_in_place(v: &mut [f32]) {
    let n = l2_norm(v);
    if n > 0.0 {
        for x in v {
            *x /= n;
        }
    }
}

/// Cosine similarity; returns 0 when either vector is all zeros.
///
/// # Panics
///
/// Panics if the slices have different lengths.
pub fn cosine(a: &[f32], b: &[f32]) -> f32 {
    let na = l2_norm(a);
    let nb = l2_norm(b);
    if na == 0.0 || nb == 0.0 {
        return 0.0;
    }
    dot(a, b) / (na * nb)
}

/// Numerically-stable softmax, in place.
///
/// Subtracts the maximum before exponentiating. An empty slice is a no-op.
pub fn softmax_in_place(v: &mut [f32]) {
    if v.is_empty() {
        return;
    }
    let max = v.iter().copied().fold(f32::NEG_INFINITY, f32::max);
    let mut sum = 0.0;
    for x in v.iter_mut() {
        *x = (*x - max).exp();
        sum += *x;
    }
    if sum > 0.0 {
        for x in v.iter_mut() {
            *x /= sum;
        }
    }
}

/// Numerically-stable log-softmax, returning a new vector.
pub fn log_softmax(v: &[f32]) -> Vec<f32> {
    if v.is_empty() {
        return Vec::new();
    }
    let max = v.iter().copied().fold(f32::NEG_INFINITY, f32::max);
    let log_sum: f32 = v.iter().map(|x| (x - max).exp()).sum::<f32>().ln();
    v.iter().map(|x| x - max - log_sum).collect()
}

/// Index of the maximum element (first occurrence on ties); `None` for an
/// empty slice.
pub fn argmax(v: &[f32]) -> Option<usize> {
    let mut best: Option<(usize, f32)> = None;
    for (i, &x) in v.iter().enumerate() {
        match best {
            Some((_, b)) if x.total_cmp(&b).is_le() => {}
            _ => best = Some((i, x)),
        }
    }
    best.map(|(i, _)| i)
}

/// Root-mean-square of a slice, with epsilon guard (used by RMSNorm).
pub fn rms(v: &[f32], eps: f32) -> f32 {
    if v.is_empty() {
        return eps.sqrt();
    }
    let ms = v.iter().map(|x| x * x).sum::<f32>() / v.len() as f32;
    (ms + eps).sqrt()
}

/// Mean squared error between two equal-length slices.
///
/// # Panics
///
/// Panics if the slices have different lengths.
pub fn mse(a: &[f32], b: &[f32]) -> f32 {
    assert_eq!(a.len(), b.len(), "mse length mismatch");
    if a.is_empty() {
        return 0.0;
    }
    a.iter().zip(b).map(|(x, y)| (x - y) * (x - y)).sum::<f32>() / a.len() as f32
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dot_matches_naive() {
        let a: Vec<f32> = (0..131).map(|i| (i as f32).sin()).collect();
        let b: Vec<f32> = (0..131).map(|i| (i as f32).cos()).collect();
        let naive: f32 = a.iter().zip(&b).map(|(x, y)| x * y).sum();
        assert!((dot(&a, &b) - naive).abs() < 1e-4);
    }

    #[test]
    fn softmax_sums_to_one_and_is_shift_invariant() {
        let mut v = vec![1.0, 2.0, 3.0, 4.0];
        let mut shifted: Vec<f32> = v.iter().map(|x| x + 100.0).collect();
        softmax_in_place(&mut v);
        softmax_in_place(&mut shifted);
        assert!((v.iter().sum::<f32>() - 1.0).abs() < 1e-6);
        for (a, b) in v.iter().zip(&shifted) {
            assert!((a - b).abs() < 1e-6);
        }
    }

    #[test]
    fn softmax_handles_extreme_values() {
        let mut v = vec![1e30, -1e30, 0.0];
        softmax_in_place(&mut v);
        assert!((v[0] - 1.0).abs() < 1e-6);
        assert!(v.iter().all(|x| x.is_finite()));
    }

    #[test]
    fn log_softmax_consistent_with_softmax() {
        let v = vec![0.3, -1.2, 2.5, 0.0];
        let ls = log_softmax(&v);
        let mut sm = v.clone();
        softmax_in_place(&mut sm);
        for (l, s) in ls.iter().zip(&sm) {
            assert!((l.exp() - s).abs() < 1e-6);
        }
    }

    #[test]
    fn argmax_picks_first_max_of_ties_deterministically() {
        assert_eq!(argmax(&[1.0, 3.0, 3.0, 2.0]), Some(1));
        assert_eq!(argmax(&[]), None);
    }

    #[test]
    fn cosine_of_identical_unit_vectors_is_one() {
        let v = vec![0.6, 0.8];
        assert!((cosine(&v, &v) - 1.0).abs() < 1e-6);
        assert_eq!(cosine(&v, &[0.0, 0.0]), 0.0);
    }

    #[test]
    fn rms_of_unit_constant_vector() {
        let v = vec![1.0; 16];
        assert!((rms(&v, 0.0) - 1.0).abs() < 1e-6);
    }

    #[test]
    fn axpy_accumulates() {
        let x = vec![1.0, 2.0];
        let mut y = vec![10.0, 20.0];
        axpy(0.5, &x, &mut y);
        assert_eq!(y, vec![10.5, 21.0]);
    }

    #[test]
    fn normalize_makes_unit_norm() {
        let mut v = vec![3.0, 4.0];
        normalize_in_place(&mut v);
        assert!((l2_norm(&v) - 1.0).abs() < 1e-6);
        let mut z = vec![0.0, 0.0];
        normalize_in_place(&mut z);
        assert_eq!(z, vec![0.0, 0.0]);
    }
}
