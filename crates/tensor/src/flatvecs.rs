//! A cache-friendly store of equal-dimension vectors.

/// A growable collection of fixed-dimension `f32` vectors stored contiguously.
///
/// KV caches hold one key and one value vector per token per head; storing
/// them as `Vec<Vec<f32>>` would scatter every vector across the heap. This
/// keeps them in one buffer with O(1) slice access.
///
/// # Example
///
/// ```
/// use longsight_tensor::FlatVecs;
///
/// let mut kv = FlatVecs::new(4);
/// kv.push(&[1.0, 2.0, 3.0, 4.0]);
/// kv.push(&[5.0, 6.0, 7.0, 8.0]);
/// assert_eq!(kv.len(), 2);
/// assert_eq!(kv.get(1)[0], 5.0);
/// ```
#[derive(Debug, Clone, PartialEq, Default)]
pub struct FlatVecs {
    dim: usize,
    data: Vec<f32>,
}

impl FlatVecs {
    /// Creates an empty store of `dim`-dimensional vectors.
    ///
    /// # Panics
    ///
    /// Panics if `dim == 0`.
    pub fn new(dim: usize) -> Self {
        assert!(dim > 0, "FlatVecs dimension must be positive");
        Self {
            dim,
            data: Vec::new(),
        }
    }

    /// Creates an empty store with capacity for `n` vectors.
    pub fn with_capacity(dim: usize, n: usize) -> Self {
        assert!(dim > 0, "FlatVecs dimension must be positive");
        Self {
            dim,
            data: Vec::with_capacity(dim * n),
        }
    }

    /// Vector dimensionality.
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Number of stored vectors.
    pub fn len(&self) -> usize {
        self.data.len() / self.dim
    }

    /// Whether the store is empty.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Appends a vector.
    ///
    /// # Panics
    ///
    /// Panics if `v.len() != dim`.
    pub fn push(&mut self, v: &[f32]) {
        assert_eq!(v.len(), self.dim, "vector dimension mismatch on push");
        self.data.extend_from_slice(v);
    }

    /// Borrows vector `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i >= len`.
    #[inline]
    pub fn get(&self, i: usize) -> &[f32] {
        let start = i * self.dim;
        assert!(
            start + self.dim <= self.data.len(),
            "vector index out of bounds"
        );
        &self.data[start..start + self.dim]
    }

    /// Mutably borrows vector `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i >= len`.
    #[inline]
    pub fn get_mut(&mut self, i: usize) -> &mut [f32] {
        let start = i * self.dim;
        assert!(
            start + self.dim <= self.data.len(),
            "vector index out of bounds"
        );
        &mut self.data[start..start + self.dim]
    }

    /// Iterates over the stored vectors as slices.
    pub fn iter(&self) -> impl Iterator<Item = &[f32]> {
        self.data.chunks_exact(self.dim)
    }

    /// Removes all vectors, keeping the allocation.
    pub fn clear(&mut self) {
        self.data.clear();
    }

    /// Truncates to the first `n` vectors.
    pub fn truncate(&mut self, n: usize) {
        self.data.truncate(n * self.dim);
    }
}

impl Extend<Vec<f32>> for FlatVecs {
    fn extend<T: IntoIterator<Item = Vec<f32>>>(&mut self, iter: T) {
        for v in iter {
            self.push(&v);
        }
    }
}

impl<'a> IntoIterator for &'a FlatVecs {
    type Item = &'a [f32];
    type IntoIter = std::slice::ChunksExact<'a, f32>;

    fn into_iter(self) -> Self::IntoIter {
        self.data.chunks_exact(self.dim)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn push_get_round_trip() {
        let mut s = FlatVecs::new(3);
        s.push(&[1.0, 2.0, 3.0]);
        s.push(&[4.0, 5.0, 6.0]);
        assert_eq!(s.get(0), &[1.0, 2.0, 3.0]);
        assert_eq!(s.get(1), &[4.0, 5.0, 6.0]);
        assert_eq!(s.len(), 2);
        assert_eq!(s.iter().count(), 2);
    }

    #[test]
    fn borrowing_into_iterator_yields_slices() {
        let mut s = FlatVecs::new(2);
        s.extend([vec![1.0, 2.0], vec![3.0, 4.0]]);
        let rows: Vec<&[f32]> = (&s).into_iter().collect();
        assert_eq!(rows, vec![&[1.0, 2.0][..], &[3.0, 4.0][..]]);
    }

    #[test]
    fn truncate_and_clear() {
        let mut s = FlatVecs::new(2);
        s.push(&[1.0, 2.0]);
        s.push(&[3.0, 4.0]);
        s.truncate(1);
        assert_eq!(s.len(), 1);
        s.clear();
        assert!(s.is_empty());
    }

    #[test]
    #[should_panic(expected = "dimension mismatch")]
    fn wrong_dim_push_panics() {
        let mut s = FlatVecs::new(2);
        s.push(&[1.0]);
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn out_of_bounds_get_panics() {
        let s = FlatVecs::new(2);
        let _ = s.get(0);
    }
}
