//! A minimal row-major `f32` matrix.

use crate::SimRng;

/// A dense, row-major `f32` matrix.
///
/// This is intentionally small: only the operations the transformer substrate
/// and the ITQ trainer need are provided. All dimensions are checked with
/// panics (this is simulation code; shape bugs should fail loudly).
///
/// # Example
///
/// ```
/// use longsight_tensor::Matrix;
///
/// let i = Matrix::identity(3);
/// let m = Matrix::from_rows(&[vec![1.0, 2.0, 3.0], vec![4.0, 5.0, 6.0], vec![7.0, 8.0, 9.0]]);
/// assert_eq!(i.matmul(&m).data(), m.data());
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<f32>,
}

impl Matrix {
    /// Creates a matrix of zeros.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Self {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// Creates an identity matrix of size `n × n`.
    pub fn identity(n: usize) -> Self {
        let mut m = Self::zeros(n, n);
        for i in 0..n {
            m.set(i, i, 1.0);
        }
        m
    }

    /// Creates a matrix from a flat row-major buffer.
    ///
    /// # Panics
    ///
    /// Panics if `data.len() != rows * cols`.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f32>) -> Self {
        assert_eq!(
            data.len(),
            rows * cols,
            "matrix buffer length {} does not match {}x{}",
            data.len(),
            rows,
            cols
        );
        Self { rows, cols, data }
    }

    /// Creates a matrix from a slice of equal-length rows.
    ///
    /// # Panics
    ///
    /// Panics if the rows have differing lengths or `rows` is empty.
    pub fn from_rows(rows: &[Vec<f32>]) -> Self {
        assert!(!rows.is_empty(), "cannot build a matrix from zero rows");
        let cols = rows[0].len();
        let mut data = Vec::with_capacity(rows.len() * cols);
        for r in rows {
            assert_eq!(r.len(), cols, "ragged rows passed to Matrix::from_rows");
            data.extend_from_slice(r);
        }
        Self {
            rows: rows.len(),
            cols,
            data,
        }
    }

    /// Creates a matrix by evaluating `f(row, col)` for every element.
    pub fn from_fn(rows: usize, cols: usize, mut f: impl FnMut(usize, usize) -> f32) -> Self {
        let mut data = Vec::with_capacity(rows * cols);
        for r in 0..rows {
            for c in 0..cols {
                data.push(f(r, c));
            }
        }
        Self { rows, cols, data }
    }

    /// Creates a matrix with i.i.d. standard-Gaussian entries.
    pub fn random_gaussian(rows: usize, cols: usize, rng: &mut SimRng) -> Self {
        Self::from_fn(rows, cols, |_, _| rng.normal() as f32)
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// The underlying row-major buffer.
    pub fn data(&self) -> &[f32] {
        &self.data
    }

    /// Mutable access to the underlying row-major buffer.
    pub fn data_mut(&mut self) -> &mut [f32] {
        &mut self.data
    }

    /// Returns element `(r, c)`.
    ///
    /// # Panics
    ///
    /// Panics if out of bounds.
    #[inline]
    pub fn get(&self, r: usize, c: usize) -> f32 {
        assert!(r < self.rows && c < self.cols, "matrix index out of bounds");
        self.data[r * self.cols + c]
    }

    /// Sets element `(r, c)`.
    ///
    /// # Panics
    ///
    /// Panics if out of bounds.
    #[inline]
    pub fn set(&mut self, r: usize, c: usize, v: f32) {
        assert!(r < self.rows && c < self.cols, "matrix index out of bounds");
        self.data[r * self.cols + c] = v;
    }

    /// Borrows row `r` as a slice.
    ///
    /// # Panics
    ///
    /// Panics if `r >= rows`.
    #[inline]
    pub fn row(&self, r: usize) -> &[f32] {
        assert!(r < self.rows, "row index out of bounds");
        &self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Mutably borrows row `r` as a slice.
    ///
    /// # Panics
    ///
    /// Panics if `r >= rows`.
    #[inline]
    pub fn row_mut(&mut self, r: usize) -> &mut [f32] {
        assert!(r < self.rows, "row index out of bounds");
        &mut self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Copies column `c` into a new vector.
    ///
    /// # Panics
    ///
    /// Panics if `c >= cols`.
    pub fn col(&self, c: usize) -> Vec<f32> {
        assert!(c < self.cols, "column index out of bounds");
        (0..self.rows).map(|r| self.get(r, c)).collect()
    }

    /// Iterates over the rows as slices.
    pub fn iter_rows(&self) -> impl Iterator<Item = &[f32]> {
        self.data.chunks_exact(self.cols)
    }

    /// Returns the transpose.
    pub fn transpose(&self) -> Self {
        let mut t = Self::zeros(self.cols, self.rows);
        for r in 0..self.rows {
            for c in 0..self.cols {
                t.set(c, r, self.get(r, c));
            }
        }
        t
    }

    /// Dense matrix–matrix product `self · rhs`.
    ///
    /// # Panics
    ///
    /// Panics if `self.cols() != rhs.rows()`.
    pub fn matmul(&self, rhs: &Matrix) -> Matrix {
        assert_eq!(
            self.cols, rhs.rows,
            "matmul shape mismatch: {}x{} · {}x{}",
            self.rows, self.cols, rhs.rows, rhs.cols
        );
        let mut out = Matrix::zeros(self.rows, rhs.cols);
        // i-k-j loop order keeps the inner loop streaming over contiguous rows.
        for i in 0..self.rows {
            let a_row = self.row(i);
            let out_row = &mut out.data[i * rhs.cols..(i + 1) * rhs.cols];
            for (k, &a) in a_row.iter().enumerate() {
                if a == 0.0 {
                    continue;
                }
                let b_row = &rhs.data[k * rhs.cols..(k + 1) * rhs.cols];
                for (o, &b) in out_row.iter_mut().zip(b_row.iter()) {
                    *o += a * b;
                }
            }
        }
        out
    }

    /// Matrix–vector product `self · v`.
    ///
    /// # Panics
    ///
    /// Panics if `v.len() != self.cols()`.
    pub fn matvec(&self, v: &[f32]) -> Vec<f32> {
        assert_eq!(v.len(), self.cols, "matvec shape mismatch");
        self.iter_rows()
            .map(|row| crate::vecops::dot(row, v))
            .collect()
    }

    /// Vector–matrix product `v · self` (treats `v` as a row vector).
    ///
    /// # Panics
    ///
    /// Panics if `v.len() != self.rows()`.
    pub fn vecmat(&self, v: &[f32]) -> Vec<f32> {
        assert_eq!(v.len(), self.rows, "vecmat shape mismatch");
        let mut out = vec![0.0; self.cols];
        for (r, &x) in v.iter().enumerate() {
            if x == 0.0 {
                continue;
            }
            for (o, &m) in out.iter_mut().zip(self.row(r)) {
                *o += x * m;
            }
        }
        out
    }

    /// Elementwise sum `self + rhs`.
    ///
    /// # Panics
    ///
    /// Panics on shape mismatch.
    pub fn add(&self, rhs: &Matrix) -> Matrix {
        assert_eq!(
            (self.rows, self.cols),
            (rhs.rows, rhs.cols),
            "add shape mismatch"
        );
        let data = self
            .data
            .iter()
            .zip(&rhs.data)
            .map(|(a, b)| a + b)
            .collect();
        Matrix::from_vec(self.rows, self.cols, data)
    }

    /// Scales every element by `s` in place.
    pub fn scale_in_place(&mut self, s: f32) {
        for v in &mut self.data {
            *v *= s;
        }
    }

    /// Frobenius norm.
    pub fn frobenius_norm(&self) -> f32 {
        self.data.iter().map(|v| v * v).sum::<f32>().sqrt()
    }

    /// Maximum absolute element difference against `rhs`.
    ///
    /// # Panics
    ///
    /// Panics on shape mismatch.
    pub fn max_abs_diff(&self, rhs: &Matrix) -> f32 {
        assert_eq!(
            (self.rows, self.cols),
            (rhs.rows, rhs.cols),
            "max_abs_diff shape mismatch"
        );
        self.data
            .iter()
            .zip(&rhs.data)
            .map(|(a, b)| (a - b).abs())
            .fold(0.0, f32::max)
    }

    /// Mean of each column (the centroid of the row vectors).
    pub fn col_means(&self) -> Vec<f32> {
        let mut means = vec![0.0f32; self.cols];
        for row in self.iter_rows() {
            for (m, &v) in means.iter_mut().zip(row) {
                *m += v;
            }
        }
        let n = self.rows.max(1) as f32;
        for m in &mut means {
            *m /= n;
        }
        means
    }
}

impl Default for Matrix {
    fn default() -> Self {
        Matrix::zeros(0, 0)
    }
}

impl std::ops::Index<(usize, usize)> for Matrix {
    type Output = f32;

    fn index(&self, (r, c): (usize, usize)) -> &f32 {
        assert!(r < self.rows && c < self.cols, "matrix index out of bounds");
        &self.data[r * self.cols + c]
    }
}

impl std::ops::IndexMut<(usize, usize)> for Matrix {
    fn index_mut(&mut self, (r, c): (usize, usize)) -> &mut f32 {
        assert!(r < self.rows && c < self.cols, "matrix index out of bounds");
        &mut self.data[r * self.cols + c]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identity_matmul_is_noop() {
        let m = Matrix::from_rows(&[vec![1.0, 2.0], vec![3.0, 4.0]]);
        assert_eq!(Matrix::identity(2).matmul(&m), m);
        assert_eq!(m.matmul(&Matrix::identity(2)), m);
    }

    #[test]
    fn transpose_twice_round_trips() {
        let mut rng = SimRng::seed_from(1);
        let m = Matrix::random_gaussian(5, 7, &mut rng);
        assert_eq!(m.transpose().transpose(), m);
    }

    #[test]
    fn matvec_matches_matmul_with_column() {
        let mut rng = SimRng::seed_from(2);
        let m = Matrix::random_gaussian(4, 6, &mut rng);
        let v: Vec<f32> = (0..6).map(|i| i as f32 * 0.5 - 1.0).collect();
        let as_col = Matrix::from_vec(6, 1, v.clone());
        let prod = m.matmul(&as_col);
        let mv = m.matvec(&v);
        for (a, b) in prod.data().iter().zip(&mv) {
            assert!((a - b).abs() < 1e-5);
        }
    }

    #[test]
    fn vecmat_matches_transpose_matvec() {
        let mut rng = SimRng::seed_from(3);
        let m = Matrix::random_gaussian(4, 6, &mut rng);
        let v: Vec<f32> = (0..4).map(|i| (i as f32).sin()).collect();
        let a = m.vecmat(&v);
        let b = m.transpose().matvec(&v);
        for (x, y) in a.iter().zip(&b) {
            assert!((x - y).abs() < 1e-5);
        }
    }

    #[test]
    fn matmul_small_known_result() {
        let a = Matrix::from_rows(&[vec![1.0, 2.0], vec![3.0, 4.0]]);
        let b = Matrix::from_rows(&[vec![5.0, 6.0], vec![7.0, 8.0]]);
        let c = a.matmul(&b);
        assert_eq!(c.data(), &[19.0, 22.0, 43.0, 50.0]);
    }

    #[test]
    fn col_means_of_constant_rows() {
        let m = Matrix::from_rows(&[vec![1.0, 2.0], vec![3.0, 4.0]]);
        assert_eq!(m.col_means(), vec![2.0, 3.0]);
    }

    #[test]
    #[should_panic(expected = "matmul shape mismatch")]
    fn matmul_shape_mismatch_panics() {
        let a = Matrix::zeros(2, 3);
        let b = Matrix::zeros(2, 3);
        let _ = a.matmul(&b);
    }

    #[test]
    fn index_operators_match_accessors() {
        let mut m = Matrix::from_rows(&[vec![1.0, 2.0], vec![3.0, 4.0]]);
        assert_eq!(m[(1, 0)], 3.0);
        m[(0, 1)] = 9.0;
        assert_eq!(m.get(0, 1), 9.0);
    }

    #[test]
    fn add_and_scale() {
        let a = Matrix::from_rows(&[vec![1.0, -1.0]]);
        let mut b = a.add(&a);
        assert_eq!(b.data(), &[2.0, -2.0]);
        b.scale_in_place(0.5);
        assert_eq!(b.data(), &[1.0, -1.0]);
    }
}
