//! A minimal in-repo property-test runner.
//!
//! The workspace's test suites exercise invariants over randomized inputs
//! (the style `proptest` popularized), but the workspace itself must build
//! with **zero external dependencies** so offline `cargo build`/`cargo test`
//! always succeed. This module supplies the small fraction of a
//! property-testing framework those suites actually use:
//!
//! * [`Gen`] — a seeded input generator wrapping [`SimRng`], with helpers for
//!   the ranges and collections the tests draw from,
//! * [`run_cases`] — runs a property over `cases` deterministically derived
//!   seeds and reports the failing seed with replay instructions,
//! * [`run_seed`] — replays a property at one explicit seed (used both by the
//!   `LONGSIGHT_PROP_SEED` escape hatch and for pinned regression cases),
//! * [`prop_ensure!`](crate::prop_ensure) / [`prop_ensure_eq!`](crate::prop_ensure_eq) /
//!   [`prop_ensure_ne!`](crate::prop_ensure_ne) — assertion macros that
//!   return an `Err(String)` instead of panicking, so the runner can attach
//!   the case's seed to the failure.
//!
//! There is no shrinking: with fully deterministic per-case seeds, a failure
//! message names the exact seed to replay, which has proven sufficient for
//! simulator-sized inputs. Failures are replayed by name:
//!
//! ```text
//! LONGSIGHT_PROP_SEED=244 cargo test -p longsight-core --test proptests failing_case_name
//! ```
//!
//! # Example
//!
//! ```
//! use longsight_tensor::{check, prop_ensure};
//!
//! check::run_cases("abs_is_non_negative", 32, |g| {
//!     let x = g.f64_in(-100.0, 100.0);
//!     prop_ensure!(x.abs() >= 0.0, "abs({x}) was negative");
//!     Ok(())
//! });
//! ```

use crate::SimRng;

/// Environment variable that, when set, replays every property at exactly one
/// seed instead of sweeping the deterministic case schedule.
pub const SEED_ENV: &str = "LONGSIGHT_PROP_SEED";

/// A seeded generator for randomized test inputs.
///
/// Thin wrapper over [`SimRng`] so every property draws from the repo's own
/// pinned generator; the helpers mirror the ranges the test suites need.
pub struct Gen {
    rng: SimRng,
}

impl Gen {
    /// Creates a generator from an explicit seed.
    pub fn from_seed(seed: u64) -> Self {
        Self {
            rng: SimRng::seed_from(seed),
        }
    }

    /// Direct access to the underlying RNG (for tests that pass a `SimRng`
    /// into library code).
    pub fn rng(&mut self) -> &mut SimRng {
        &mut self.rng
    }

    /// Uniform `usize` in the half-open range `[lo, hi)`.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    pub fn usize_in(&mut self, lo: usize, hi: usize) -> usize {
        assert!(lo < hi, "empty range [{lo}, {hi})");
        lo + self.rng.below(hi - lo)
    }

    /// Uniform `u64` in the half-open range `[lo, hi)`.
    pub fn u64_in(&mut self, lo: u64, hi: u64) -> u64 {
        assert!(lo < hi, "empty range [{lo}, {hi})");
        lo + self.rng.below((hi - lo) as usize) as u64
    }

    /// Uniform `u32` in the half-open range `[lo, hi)`.
    pub fn u32_in(&mut self, lo: u32, hi: u32) -> u32 {
        self.u64_in(u64::from(lo), u64::from(hi)) as u32
    }

    /// Uniform `f64` in `[lo, hi)`.
    pub fn f64_in(&mut self, lo: f64, hi: f64) -> f64 {
        lo + self.rng.uniform() * (hi - lo)
    }

    /// Uniform `f32` in `[lo, hi)`.
    pub fn f32_in(&mut self, lo: f32, hi: f32) -> f32 {
        self.f64_in(f64::from(lo), f64::from(hi)) as f32
    }

    /// Fair coin flip.
    pub fn bool(&mut self) -> bool {
        self.rng.coin(0.5)
    }

    /// Vector of uniform `f32` in `[lo, hi)` with a length drawn from
    /// `[len_lo, len_hi)`.
    pub fn vec_f32(&mut self, len_lo: usize, len_hi: usize, lo: f32, hi: f32) -> Vec<f32> {
        let n = self.usize_in(len_lo, len_hi);
        (0..n).map(|_| self.f32_in(lo, hi)).collect()
    }

    /// Vector of uniform `f64` in `[lo, hi)` with a length drawn from
    /// `[len_lo, len_hi)`.
    pub fn vec_f64(&mut self, len_lo: usize, len_hi: usize, lo: f64, hi: f64) -> Vec<f64> {
        let n = self.usize_in(len_lo, len_hi);
        (0..n).map(|_| self.f64_in(lo, hi)).collect()
    }
}

/// FNV-1a hash of the property name; anchors the per-case seed schedule so
/// each property sweeps its own input sequence.
fn name_hash(name: &str) -> u64 {
    let mut h: u64 = 0xCBF2_9CE4_8422_2325;
    for b in name.bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

/// The deterministic seed for case `case` of property `name`.
pub fn case_seed(name: &str, case: u64) -> u64 {
    // Golden-ratio stride keeps consecutive case seeds well separated.
    name_hash(name) ^ case.wrapping_mul(0x9E37_79B9_7F4A_7C15)
}

/// Runs `prop` against `cases` deterministically seeded inputs.
///
/// Each case builds a [`Gen`] from [`case_seed`]`(name, i)`. If the property
/// returns `Err`, the runner panics with the failing seed and a ready-to-run
/// replay command. Setting [`SEED_ENV`] replays exactly that one seed instead
/// (this is how a reported failure is reproduced in isolation).
///
/// # Panics
///
/// Panics when the property fails for any case, or when [`SEED_ENV`] is set
/// to something that does not parse as a `u64`.
pub fn run_cases<F>(name: &str, cases: u64, prop: F)
where
    F: Fn(&mut Gen) -> Result<(), String>,
{
    if let Ok(v) = std::env::var(SEED_ENV) {
        let seed: u64 = v
            .trim()
            .parse()
            .unwrap_or_else(|_| panic!("{SEED_ENV}={v:?} is not a valid u64 seed"));
        run_seed(name, seed, &prop);
        return;
    }
    for case in 0..cases {
        let seed = case_seed(name, case);
        if let Err(msg) = prop(&mut Gen::from_seed(seed)) {
            panic!(
                "property `{name}` failed on case {case} (seed {seed}): {msg}\n\
                 replay with: {SEED_ENV}={seed} cargo test {name}"
            );
        }
    }
}

/// Replays `prop` at one explicit seed.
///
/// Used for pinned regression cases (seeds that once exposed a bug stay in
/// the suite as named `#[test]`s) and by [`run_cases`] when [`SEED_ENV`] is
/// set.
///
/// # Panics
///
/// Panics when the property fails.
pub fn run_seed<F>(name: &str, seed: u64, prop: F)
where
    F: Fn(&mut Gen) -> Result<(), String>,
{
    if let Err(msg) = prop(&mut Gen::from_seed(seed)) {
        panic!("property `{name}` failed at pinned seed {seed}: {msg}");
    }
}

/// Asserts a condition inside a property, returning `Err(String)` on failure
/// so the runner can report the case's seed.
///
/// `prop_ensure!(cond)` uses the stringified condition as the message;
/// `prop_ensure!(cond, "...", args...)` formats a custom one.
#[macro_export]
macro_rules! prop_ensure {
    ($cond:expr) => {
        if !$cond {
            return Err(format!(
                "assertion failed: {} at {}:{}",
                stringify!($cond),
                file!(),
                line!()
            ));
        }
    };
    ($cond:expr, $($arg:tt)+) => {
        if !$cond {
            return Err(format!($($arg)+));
        }
    };
}

/// Asserts two expressions are equal inside a property (values are included
/// in the failure message via `Debug`).
#[macro_export]
macro_rules! prop_ensure_eq {
    ($a:expr, $b:expr) => {{
        let (a, b) = (&$a, &$b);
        if a != b {
            return Err(format!(
                "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?} at {}:{}",
                stringify!($a),
                stringify!($b),
                a,
                b,
                file!(),
                line!()
            ));
        }
    }};
    ($a:expr, $b:expr, $($arg:tt)+) => {{
        let (a, b) = (&$a, &$b);
        if a != b {
            return Err(format!($($arg)+));
        }
    }};
}

/// Asserts two expressions are unequal inside a property.
#[macro_export]
macro_rules! prop_ensure_ne {
    ($a:expr, $b:expr) => {{
        let (a, b) = (&$a, &$b);
        if a == b {
            return Err(format!(
                "assertion failed: `{} != {}`\n  both: {:?} at {}:{}",
                stringify!($a),
                stringify!($b),
                a,
                file!(),
                line!()
            ));
        }
    }};
    ($a:expr, $b:expr, $($arg:tt)+) => {{
        let (a, b) = (&$a, &$b);
        if a == b {
            return Err(format!($($arg)+));
        }
    }};
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn case_seeds_are_deterministic_and_distinct() {
        assert_eq!(case_seed("x", 3), case_seed("x", 3));
        assert_ne!(case_seed("x", 3), case_seed("x", 4));
        assert_ne!(case_seed("x", 3), case_seed("y", 3));
    }

    #[test]
    fn passing_property_runs_all_cases() {
        let mut count = 0u64;
        // Fn (not FnMut) closure contract — count via a Cell.
        let hits = std::cell::Cell::new(0u64);
        run_cases("always_passes", 17, |g| {
            let _ = g.usize_in(0, 10);
            hits.set(hits.get() + 1);
            Ok(())
        });
        count += hits.get();
        assert_eq!(count, 17);
    }

    #[test]
    fn failing_property_reports_seed() {
        let err = std::panic::catch_unwind(|| {
            run_cases("always_fails", 8, |_| Err("boom".into()));
        })
        .expect_err("property must fail");
        let msg = err
            .downcast_ref::<String>()
            .expect("panic payload is a String");
        assert!(msg.contains("always_fails"), "{msg}");
        assert!(msg.contains("seed"), "{msg}");
        assert!(msg.contains("boom"), "{msg}");
    }

    #[test]
    fn gen_ranges_are_respected() {
        let mut g = Gen::from_seed(9);
        for _ in 0..200 {
            let u = g.usize_in(3, 9);
            assert!((3..9).contains(&u));
            let f = g.f32_in(-2.0, 5.0);
            assert!((-2.0..5.0).contains(&f));
            let v = g.vec_f32(1, 4, 0.0, 1.0);
            assert!((1..4).contains(&v.len()));
        }
    }

    #[test]
    fn ensure_macros_compile_and_fire() {
        fn prop(fail: bool) -> Result<(), String> {
            prop_ensure!(1 + 1 == 2);
            prop_ensure_eq!(2, 2);
            prop_ensure_ne!(2, 3);
            prop_ensure!(!fail, "requested failure");
            Ok(())
        }
        assert!(prop(false).is_ok());
        assert_eq!(prop(true).unwrap_err(), "requested failure");
    }
}
