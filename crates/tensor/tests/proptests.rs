//! Property-based tests for the tensor kernels.

use longsight_tensor::{linalg, vecops, Matrix, SignBits, SimRng, TopK};
use proptest::prelude::*;

fn finite_vec(len: std::ops::Range<usize>) -> impl Strategy<Value = Vec<f32>> {
    prop::collection::vec(-100.0f32..100.0, len)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn sign_concordance_matches_naive(v in finite_vec(1..200), w_seed in 0u64..1000) {
        let mut rng = SimRng::seed_from(w_seed);
        let w: Vec<f32> = (0..v.len()).map(|_| rng.normal() as f32).collect();
        let sv = SignBits::from_slice(&v);
        let sw = SignBits::from_slice(&w);
        let naive = v.iter().zip(&w)
            .filter(|(a, b)| (**a < 0.0) == (**b < 0.0))
            .count() as u32;
        prop_assert_eq!(sv.concordance(&sw), naive);
        prop_assert_eq!(sv.hamming(&sw) + sv.concordance(&sw), v.len() as u32);
    }

    #[test]
    fn topk_matches_sort(scores in finite_vec(0..300), k in 0usize..40) {
        let mut top = TopK::new(k);
        for (i, &s) in scores.iter().enumerate() {
            top.push(s, i);
        }
        let got: Vec<usize> = top.into_sorted_vec().into_iter().map(|s| s.index).collect();
        let mut pairs: Vec<(f32, usize)> = scores.iter().copied().zip(0..).collect();
        pairs.sort_by(|a, b| b.0.total_cmp(&a.0).then(a.1.cmp(&b.1)));
        let want: Vec<usize> = pairs.into_iter().take(k).map(|(_, i)| i).collect();
        prop_assert_eq!(got, want);
    }

    #[test]
    fn softmax_is_a_distribution(mut v in finite_vec(1..64)) {
        vecops::softmax_in_place(&mut v);
        let sum: f32 = v.iter().sum();
        prop_assert!((sum - 1.0).abs() < 1e-4);
        prop_assert!(v.iter().all(|x| (0.0..=1.0 + 1e-6).contains(x)));
    }

    #[test]
    fn softmax_preserves_argmax(v in finite_vec(2..64)) {
        let before = vecops::argmax(&v).unwrap();
        let mut sm = v.clone();
        vecops::softmax_in_place(&mut sm);
        // The max element keeps (one of) the max probabilities.
        let max_prob = sm.iter().cloned().fold(f32::NEG_INFINITY, f32::max);
        prop_assert!(sm[before] >= max_prob - 1e-6);
    }

    #[test]
    fn matmul_distributes_over_add(seed in 0u64..500) {
        let mut rng = SimRng::seed_from(seed);
        let a = Matrix::random_gaussian(4, 5, &mut rng);
        let b = Matrix::random_gaussian(5, 3, &mut rng);
        let c = Matrix::random_gaussian(5, 3, &mut rng);
        let lhs = a.matmul(&b.add(&c));
        let rhs = a.matmul(&b).add(&a.matmul(&c));
        prop_assert!(lhs.max_abs_diff(&rhs) < 1e-3);
    }

    #[test]
    fn random_orthogonal_preserves_norms(seed in 0u64..200, n in 2usize..12) {
        let mut rng = SimRng::seed_from(seed);
        let q = linalg::random_orthogonal(n, &mut rng);
        let v = rng.normal_vec(n);
        let rotated = q.matvec(&v);
        prop_assert!((vecops::l2_norm(&rotated) - vecops::l2_norm(&v)).abs() < 1e-3);
    }

    #[test]
    fn procrustes_output_is_orthogonal(seed in 0u64..200, n in 2usize..10) {
        let mut rng = SimRng::seed_from(seed);
        let m = Matrix::random_gaussian(n, n, &mut rng);
        let r = linalg::procrustes_rotation(&m);
        prop_assert!(linalg::orthogonality_error(&r) < 1e-3);
    }

    #[test]
    fn dot_is_symmetric(v in finite_vec(1..100), seed in 0u64..100) {
        let mut rng = SimRng::seed_from(seed);
        let w: Vec<f32> = (0..v.len()).map(|_| rng.normal() as f32).collect();
        let scale = v.iter().map(|x| x.abs()).fold(0.0f32, f32::max).max(1.0)
            * w.iter().map(|x| x.abs()).fold(0.0f32, f32::max).max(1.0)
            * v.len() as f32;
        prop_assert!((vecops::dot(&v, &w) - vecops::dot(&w, &v)).abs() <= 1e-5 * scale);
    }
}
