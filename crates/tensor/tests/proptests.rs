//! Property-based tests for the tensor kernels, on the in-repo
//! [`check`](longsight_tensor::check) runner.

use longsight_tensor::check::{run_cases, Gen};
use longsight_tensor::{
    linalg, prop_ensure, prop_ensure_eq, vecops, Matrix, SignBits, SimRng, TopK,
};

/// A finite `f32` vector in `[-100, 100)` with length drawn from `[lo, hi)`.
fn finite_vec(g: &mut Gen, lo: usize, hi: usize) -> Vec<f32> {
    g.vec_f32(lo, hi, -100.0, 100.0)
}

#[test]
fn sign_concordance_matches_naive() {
    run_cases("sign_concordance_matches_naive", 64, |g| {
        let v = finite_vec(g, 1, 200);
        let w_seed = g.u64_in(0, 1000);
        let mut rng = SimRng::seed_from(w_seed);
        let w: Vec<f32> = (0..v.len()).map(|_| rng.normal() as f32).collect();
        let sv = SignBits::from_slice(&v);
        let sw = SignBits::from_slice(&w);
        let naive = v
            .iter()
            .zip(&w)
            .filter(|(a, b)| (**a < 0.0) == (**b < 0.0))
            .count() as u32;
        prop_ensure_eq!(sv.concordance(&sw), naive);
        prop_ensure_eq!(sv.hamming(&sw) + sv.concordance(&sw), v.len() as u32);
        Ok(())
    });
}

#[test]
fn topk_matches_sort() {
    run_cases("topk_matches_sort", 64, |g| {
        let scores = finite_vec(g, 0, 300);
        let k = g.usize_in(0, 40);
        let mut top = TopK::new(k);
        for (i, &s) in scores.iter().enumerate() {
            top.push(s, i);
        }
        let got: Vec<usize> = top.into_sorted_vec().into_iter().map(|s| s.index).collect();
        let mut pairs: Vec<(f32, usize)> = scores.iter().copied().zip(0..).collect();
        pairs.sort_by(|a, b| b.0.total_cmp(&a.0).then(a.1.cmp(&b.1)));
        let want: Vec<usize> = pairs.into_iter().take(k).map(|(_, i)| i).collect();
        prop_ensure_eq!(got, want);
        Ok(())
    });
}

#[test]
fn softmax_is_a_distribution() {
    run_cases("softmax_is_a_distribution", 64, |g| {
        let mut v = finite_vec(g, 1, 64);
        vecops::softmax_in_place(&mut v);
        let sum: f32 = v.iter().sum();
        prop_ensure!((sum - 1.0).abs() < 1e-4);
        prop_ensure!(v.iter().all(|x| (0.0..=1.0 + 1e-6).contains(x)));
        Ok(())
    });
}

#[test]
fn softmax_preserves_argmax() {
    run_cases("softmax_preserves_argmax", 64, |g| {
        let v = finite_vec(g, 2, 64);
        let before = vecops::argmax(&v).unwrap();
        let mut sm = v.clone();
        vecops::softmax_in_place(&mut sm);
        // The max element keeps (one of) the max probabilities.
        let max_prob = sm.iter().cloned().fold(f32::NEG_INFINITY, f32::max);
        prop_ensure!(sm[before] >= max_prob - 1e-6);
        Ok(())
    });
}

#[test]
fn matmul_distributes_over_add() {
    run_cases("matmul_distributes_over_add", 64, |g| {
        let seed = g.u64_in(0, 500);
        let mut rng = SimRng::seed_from(seed);
        let a = Matrix::random_gaussian(4, 5, &mut rng);
        let b = Matrix::random_gaussian(5, 3, &mut rng);
        let c = Matrix::random_gaussian(5, 3, &mut rng);
        let lhs = a.matmul(&b.add(&c));
        let rhs = a.matmul(&b).add(&a.matmul(&c));
        prop_ensure!(lhs.max_abs_diff(&rhs) < 1e-3);
        Ok(())
    });
}

#[test]
fn random_orthogonal_preserves_norms() {
    run_cases("random_orthogonal_preserves_norms", 64, |g| {
        let seed = g.u64_in(0, 200);
        let n = g.usize_in(2, 12);
        let mut rng = SimRng::seed_from(seed);
        let q = linalg::random_orthogonal(n, &mut rng);
        let v = rng.normal_vec(n);
        let rotated = q.matvec(&v);
        prop_ensure!((vecops::l2_norm(&rotated) - vecops::l2_norm(&v)).abs() < 1e-3);
        Ok(())
    });
}

#[test]
fn procrustes_output_is_orthogonal() {
    run_cases("procrustes_output_is_orthogonal", 64, |g| {
        let seed = g.u64_in(0, 200);
        let n = g.usize_in(2, 10);
        let mut rng = SimRng::seed_from(seed);
        let m = Matrix::random_gaussian(n, n, &mut rng);
        let r = linalg::procrustes_rotation(&m);
        prop_ensure!(linalg::orthogonality_error(&r) < 1e-3);
        Ok(())
    });
}

#[test]
fn dot_is_symmetric() {
    run_cases("dot_is_symmetric", 64, |g| {
        let v = finite_vec(g, 1, 100);
        let seed = g.u64_in(0, 100);
        let mut rng = SimRng::seed_from(seed);
        let w: Vec<f32> = (0..v.len()).map(|_| rng.normal() as f32).collect();
        let scale = v.iter().map(|x| x.abs()).fold(0.0f32, f32::max).max(1.0)
            * w.iter().map(|x| x.abs()).fold(0.0f32, f32::max).max(1.0)
            * v.len() as f32;
        prop_ensure!((vecops::dot(&v, &w) - vecops::dot(&w, &v)).abs() <= 1e-5 * scale);
        Ok(())
    });
}
