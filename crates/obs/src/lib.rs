//! Deterministic observability for the LongSight simulators: a span-based
//! tracer keyed on **simulated time** plus a metrics registry, with Chrome
//! trace-event JSON, flat-text, and JSON exporters.
//!
//! Two guarantees shape the design:
//!
//! 1. **Bit-determinism at any thread count.** Spans carry simulated
//!    nanoseconds, never wall-clock readings, and recording happens on the
//!    serial control path of each simulator (worker closures in
//!    `longsight_exec::deterministic_map` stay pure). Two runs with the same
//!    seeds — at `LONGSIGHT_THREADS=1` or 64 — export byte-identical traces.
//! 2. **Zero cost when disabled.** [`Recorder::disabled`] allocates nothing
//!    (empty `Vec`s) and every mutating method early-returns on a single
//!    branch, so instrumented hot paths with recording off produce the exact
//!    same numbers (and goldens) as uninstrumented code.
//!
//! The exporter emits the Chrome trace-event format (the `traceEvents` array
//! of `ph:"X"` complete events, `ph:"i"` instants, and `ph:"M"` metadata),
//! loadable in `chrome://tracing` or <https://ui.perfetto.dev>. Each
//! [`TrackId`] becomes one "thread" row; spans on a track nest through a
//! per-track open stack while separate tracks overlap freely (that overlap is
//! the point: GPU window attention and the DReX offload path run
//! concurrently).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod json;
pub mod metrics;
pub mod timeseries;

pub use metrics::{Histogram, MetricsRegistry, DEFAULT_COUNT_EDGES, DEFAULT_MS_EDGES};
pub use timeseries::{BurnAlert, BurnConfig, BurnTotals, TimeSeries};

use json::{escape_into, fmt_f64};

/// Identifies one horizontal row ("thread") in the exported trace.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TrackId(u32);

/// Handle for a span opened with [`Recorder::open`], passed to
/// [`Recorder::close`]. The no-op recorder hands out an inert sentinel.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SpanId(u32);

const NOOP: u32 = u32::MAX;

/// A borrowed span/instant argument value; stored owned inside the recorder.
#[derive(Debug, Clone, Copy)]
pub enum ArgVal<'a> {
    /// An unsigned integer argument.
    U(u64),
    /// A floating-point argument.
    F(f64),
    /// A string argument.
    S(&'a str),
}

#[derive(Debug, Clone, PartialEq)]
enum OwnedArg {
    U(u64),
    F(f64),
    S(String),
}

/// A completed (or still-open) span. Times are simulated nanoseconds.
#[derive(Debug, Clone, PartialEq)]
pub struct Span {
    /// Track this span lives on.
    pub track: TrackId,
    /// Span name as shown in the trace viewer.
    pub name: String,
    /// Simulated start time in ns.
    pub start_ns: f64,
    /// Simulated end time in ns; `NaN` until closed.
    pub end_ns: f64,
    /// Enclosing span on the same track, if any.
    pub parent: Option<SpanId>,
    args: Vec<(&'static str, OwnedArg)>,
}

/// A zero-duration instant event (used for fault events).
#[derive(Debug, Clone, PartialEq)]
pub struct InstantEvent {
    /// Track this instant lives on.
    pub track: TrackId,
    /// Event name.
    pub name: String,
    /// Simulated timestamp in ns.
    pub ts_ns: f64,
    args: Vec<(&'static str, OwnedArg)>,
}

#[derive(Debug, Clone, PartialEq)]
struct Track {
    name: String,
    open: Vec<u32>,
}

/// The span + metrics recorder. All methods take `&mut self`; recording is
/// inherently serial, which is what makes the export order (and therefore
/// the export bytes) deterministic.
#[derive(Debug, Clone, PartialEq)]
pub struct Recorder {
    enabled: bool,
    tracks: Vec<Track>,
    spans: Vec<Span>,
    instants: Vec<InstantEvent>,
    /// Counters, gauges, and histograms recorded alongside the trace.
    pub metrics: MetricsRegistry,
    /// Windowed time-series sampler (disabled by default; see
    /// [`Recorder::enable_timeseries`]).
    pub timeseries: TimeSeries,
}

impl Default for Recorder {
    fn default() -> Self {
        Recorder::disabled()
    }
}

impl Recorder {
    /// A recorder that captures everything.
    pub fn enabled() -> Self {
        Recorder {
            enabled: true,
            tracks: Vec::new(),
            spans: Vec::new(),
            instants: Vec::new(),
            metrics: MetricsRegistry::default(),
            timeseries: TimeSeries::disabled(),
        }
    }

    /// The no-op recorder: allocates nothing, records nothing. Safe to
    /// construct on every call site that needs a default.
    pub fn disabled() -> Self {
        Recorder {
            enabled: false,
            tracks: Vec::new(),
            spans: Vec::new(),
            instants: Vec::new(),
            metrics: MetricsRegistry::default(),
            timeseries: TimeSeries::disabled(),
        }
    }

    /// Whether this recorder captures events. Instrumented code uses this to
    /// skip trace-only work (string formatting, re-simulation for detail).
    pub fn is_enabled(&self) -> bool {
        self.enabled
    }

    /// Switches on the windowed time-series sampler with the given base
    /// window (simulated ns) and burn-rate configuration. Timeseries
    /// recording is opt-in on top of an enabled recorder — trace/metrics-only
    /// runs keep their exports byte-identical because no series, tracks, or
    /// instants are created unless this has been called.
    pub fn enable_timeseries(&mut self, window_ns: f64, burn: BurnConfig) {
        self.timeseries = TimeSeries::enabled(window_ns, burn);
    }

    /// Interns a track by name, creating it on first use. Track order is the
    /// order of first `track()` calls.
    pub fn track(&mut self, name: &str) -> TrackId {
        if !self.enabled {
            return TrackId(NOOP);
        }
        if let Some(i) = self.tracks.iter().position(|t| t.name == name) {
            return TrackId(i as u32);
        }
        self.tracks.push(Track {
            name: name.to_string(),
            open: Vec::new(),
        });
        TrackId((self.tracks.len() - 1) as u32)
    }

    /// Opens a span at `start_ns` on `track`. The span nests under whatever
    /// span is currently open on the same track. Must be paired with
    /// [`close`](Recorder::close).
    pub fn open(&mut self, track: TrackId, name: &str, start_ns: f64) -> SpanId {
        self.open_with(track, name, start_ns, &[])
    }

    /// [`open`](Recorder::open) with key/value arguments.
    pub fn open_with(
        &mut self,
        track: TrackId,
        name: &str,
        start_ns: f64,
        args: &[(&'static str, ArgVal)],
    ) -> SpanId {
        if !self.enabled || track.0 == NOOP {
            return SpanId(NOOP);
        }
        let id = self.push_span(track, name, start_ns, f64::NAN, args);
        self.tracks[track.0 as usize].open.push(id.0);
        id
    }

    /// Closes an open span at `end_ns`.
    pub fn close(&mut self, id: SpanId, end_ns: f64) {
        if !self.enabled || id.0 == NOOP {
            return;
        }
        let span = &mut self.spans[id.0 as usize];
        span.end_ns = end_ns;
        let open = &mut self.tracks[span.track.0 as usize].open;
        if let Some(pos) = open.iter().rposition(|&s| s == id.0) {
            open.truncate(pos);
        }
    }

    /// Records a complete span in one call; it nests under the currently open
    /// span on `track` but does not itself go on the open stack.
    pub fn leaf(&mut self, track: TrackId, name: &str, start_ns: f64, end_ns: f64) {
        self.leaf_with(track, name, start_ns, end_ns, &[]);
    }

    /// [`leaf`](Recorder::leaf) with key/value arguments.
    pub fn leaf_with(
        &mut self,
        track: TrackId,
        name: &str,
        start_ns: f64,
        end_ns: f64,
        args: &[(&'static str, ArgVal)],
    ) {
        if !self.enabled || track.0 == NOOP {
            return;
        }
        self.push_span(track, name, start_ns, end_ns, args);
    }

    /// Records a zero-duration instant event.
    pub fn instant(&mut self, track: TrackId, name: &str, ts_ns: f64) {
        self.instant_with(track, name, ts_ns, &[]);
    }

    /// [`instant`](Recorder::instant) with key/value arguments.
    pub fn instant_with(
        &mut self,
        track: TrackId,
        name: &str,
        ts_ns: f64,
        args: &[(&'static str, ArgVal)],
    ) {
        if !self.enabled || track.0 == NOOP {
            return;
        }
        let args = args.iter().map(|(k, v)| (*k, OwnedArg::from(*v))).collect();
        self.instants.push(InstantEvent {
            track,
            name: name.to_string(),
            ts_ns,
            args,
        });
    }

    fn push_span(
        &mut self,
        track: TrackId,
        name: &str,
        start_ns: f64,
        end_ns: f64,
        args: &[(&'static str, ArgVal)],
    ) -> SpanId {
        let parent = self.tracks[track.0 as usize]
            .open
            .last()
            .map(|&i| SpanId(i));
        let args = args.iter().map(|(k, v)| (*k, OwnedArg::from(*v))).collect();
        self.spans.push(Span {
            track,
            name: name.to_string(),
            start_ns,
            end_ns,
            parent,
            args,
        });
        SpanId((self.spans.len() - 1) as u32)
    }

    /// Adds `delta` to a named counter (no-op when disabled).
    pub fn counter_add(&mut self, name: &str, delta: u64) {
        if self.enabled {
            self.metrics.counter_add(name, delta);
        }
    }

    /// Sets a named gauge (no-op when disabled).
    pub fn gauge_set(&mut self, name: &str, value: f64) {
        if self.enabled {
            self.metrics.gauge_set(name, value);
        }
    }

    /// Records one histogram observation (no-op when disabled).
    pub fn observe(&mut self, name: &str, value: f64) {
        if self.enabled {
            self.metrics.observe(name, value);
        }
    }

    /// All recorded spans, in creation order.
    pub fn spans(&self) -> &[Span] {
        &self.spans
    }

    /// All recorded instants, in creation order.
    pub fn instants(&self) -> &[InstantEvent] {
        &self.instants
    }

    /// Number of instants whose name starts with `prefix` (used by the
    /// fault-event parity test).
    pub fn instants_matching(&self, prefix: &str) -> usize {
        self.instants
            .iter()
            .filter(|i| i.name.starts_with(prefix))
            .count()
    }

    /// Checks span-tree invariants: every span closed, `end >= start`,
    /// children lie within their parent's interval on the same track, and the
    /// summed duration of direct children never exceeds the parent's.
    pub fn validate_well_formed(&self) -> Result<(), String> {
        const EPS: f64 = 1e-6; // ns; spans are f64 sums of f64 phase times
        let mut child_sum = vec![0.0f64; self.spans.len()];
        for (i, s) in self.spans.iter().enumerate() {
            if !s.end_ns.is_finite() {
                return Err(format!("span {i} ({}) was never closed", s.name));
            }
            if s.end_ns < s.start_ns - EPS {
                return Err(format!(
                    "span {i} ({}) ends before it starts: [{}, {}]",
                    s.name, s.start_ns, s.end_ns
                ));
            }
            if let Some(SpanId(p)) = s.parent {
                let parent = &self.spans[p as usize];
                if parent.track != s.track {
                    return Err(format!("span {i} ({}) nests across tracks", s.name));
                }
                if s.start_ns < parent.start_ns - EPS || s.end_ns > parent.end_ns + EPS {
                    return Err(format!(
                        "span {i} ({}) [{}, {}] escapes parent {} [{}, {}]",
                        s.name, s.start_ns, s.end_ns, parent.name, parent.start_ns, parent.end_ns
                    ));
                }
                child_sum[p as usize] += s.end_ns - s.start_ns;
            }
        }
        for (i, s) in self.spans.iter().enumerate() {
            let own = s.end_ns - s.start_ns;
            // Tolerance scales with magnitude: the sums are f64 additions of
            // the same terms that built the parent interval.
            if child_sum[i] > own + EPS + own.abs() * 1e-9 {
                return Err(format!(
                    "children of span {i} ({}) sum to {} ns > parent {} ns",
                    s.name, child_sum[i], own
                ));
            }
        }
        Ok(())
    }

    /// Exports the Chrome trace-event format: `{"traceEvents": [...]}` with
    /// `ph:"M"` thread metadata, `ph:"X"` complete events, and `ph:"i"`
    /// instants. Timestamps are microseconds (the format's unit), converted
    /// from simulated ns. Event order is creation order, so the output is
    /// byte-deterministic.
    pub fn chrome_trace_json(&self) -> String {
        let mut out = String::with_capacity(4096);
        out.push_str("{\"traceEvents\":[");
        // The process-name metadata event is always first, so every
        // subsequent event is comma-prefixed unconditionally.
        out.push_str(
            "{\"ph\":\"M\",\"pid\":1,\"name\":\"process_name\",\
             \"args\":{\"name\":\"longsight-sim\"}}",
        );
        for (i, t) in self.tracks.iter().enumerate() {
            out.push(',');
            out.push_str(&format!(
                "{{\"ph\":\"M\",\"pid\":1,\"tid\":{},\"name\":\"thread_name\",\"args\":{{\"name\":",
                i + 1
            ));
            escape_into(&mut out, &t.name);
            out.push_str("}}");
            out.push(',');
            out.push_str(&format!(
                "{{\"ph\":\"M\",\"pid\":1,\"tid\":{},\"name\":\"thread_sort_index\",\
                 \"args\":{{\"sort_index\":{}}}}}",
                i + 1,
                i + 1
            ));
        }
        for s in &self.spans {
            out.push(',');
            out.push_str("{\"ph\":\"X\",\"pid\":1,\"tid\":");
            out.push_str(&(s.track.0 as usize + 1).to_string());
            out.push_str(",\"name\":");
            escape_into(&mut out, &s.name);
            out.push_str(",\"ts\":");
            out.push_str(&fmt_f64(s.start_ns / 1000.0));
            out.push_str(",\"dur\":");
            out.push_str(&fmt_f64((s.end_ns - s.start_ns).max(0.0) / 1000.0));
            push_args(&mut out, &s.args);
            out.push('}');
        }
        for e in &self.instants {
            out.push(',');
            out.push_str("{\"ph\":\"i\",\"s\":\"t\",\"pid\":1,\"tid\":");
            out.push_str(&(e.track.0 as usize + 1).to_string());
            out.push_str(",\"name\":");
            escape_into(&mut out, &e.name);
            out.push_str(",\"ts\":");
            out.push_str(&fmt_f64(e.ts_ns / 1000.0));
            push_args(&mut out, &e.args);
            out.push('}');
        }
        out.push_str("]}");
        out
    }

    /// Machine-readable metrics JSON (see [`MetricsRegistry::to_json`]).
    pub fn metrics_json(&self) -> String {
        self.metrics.to_json()
    }

    /// Flat text report: metrics plus a per-track span/instant census.
    pub fn text_report(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "trace: {} spans, {} instants, {} tracks\n",
            self.spans.len(),
            self.instants.len(),
            self.tracks.len()
        ));
        for (i, t) in self.tracks.iter().enumerate() {
            let tid = TrackId(i as u32);
            let spans = self.spans.iter().filter(|s| s.track == tid).count();
            let instants = self.instants.iter().filter(|e| e.track == tid).count();
            out.push_str(&format!(
                "  track {name}: {spans} spans, {instants} instants\n",
                name = t.name
            ));
        }
        out.push_str(&self.metrics.to_text());
        out
    }
}

impl From<ArgVal<'_>> for OwnedArg {
    fn from(v: ArgVal<'_>) -> Self {
        match v {
            ArgVal::U(u) => OwnedArg::U(u),
            ArgVal::F(f) => OwnedArg::F(f),
            ArgVal::S(s) => OwnedArg::S(s.to_string()),
        }
    }
}

fn push_args(out: &mut String, args: &[(&'static str, OwnedArg)]) {
    if args.is_empty() {
        return;
    }
    out.push_str(",\"args\":{");
    for (i, (k, v)) in args.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        escape_into(out, k);
        out.push(':');
        match v {
            OwnedArg::U(u) => out.push_str(&u.to_string()),
            OwnedArg::F(f) => out.push_str(&fmt_f64(*f)),
            OwnedArg::S(s) => escape_into(out, s),
        }
    }
    out.push('}');
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_recorder_records_nothing_and_allocates_nothing() {
        let mut r = Recorder::disabled();
        let t = r.track("serving");
        let s = r.open(t, "step", 0.0);
        r.close(s, 100.0);
        r.leaf(t, "leaf", 0.0, 1.0);
        r.instant(t, "evt", 5.0);
        r.counter_add("c", 1);
        r.observe("h", 1.0);
        r.timeseries.gauge("g", 1.0, 2.0);
        r.timeseries.slo_sample(1.0, 9000.0);
        assert!(r.spans().is_empty());
        assert!(r.instants().is_empty());
        assert!(r.metrics.is_empty());
        assert!(r.timeseries.is_empty());
        assert!(!r.timeseries.is_enabled());
        // Empty Vec / empty registry: capacity 0 means no heap allocation.
        assert_eq!(r.spans.capacity(), 0);
        assert_eq!(r.instants.capacity(), 0);
        assert_eq!(r.tracks.capacity(), 0);
    }

    #[test]
    fn timeseries_is_opt_in_even_on_an_enabled_recorder() {
        let mut r = Recorder::enabled();
        r.timeseries.gauge("g", 1.0, 2.0);
        assert!(r.timeseries.is_empty());
        r.enable_timeseries(1e6, BurnConfig::default());
        r.timeseries.gauge("g", 1.0, 2.0);
        assert!(!r.timeseries.is_empty());
        assert_eq!(r.timeseries.window_ns(), 1e6);
    }

    #[test]
    fn spans_nest_per_track_via_open_stack() {
        let mut r = Recorder::enabled();
        let a = r.track("a");
        let b = r.track("b");
        let outer = r.open(a, "outer", 0.0);
        let other = r.open(b, "other", 0.0); // different track: no nesting
        let inner = r.open(a, "inner", 10.0);
        r.leaf(a, "leaf", 12.0, 15.0);
        r.close(inner, 40.0);
        r.close(other, 100.0);
        r.close(outer, 90.0);
        let spans = r.spans();
        assert_eq!(spans[0].parent, None); // outer
        assert_eq!(spans[1].parent, None); // other (track b)
        assert_eq!(spans[2].parent, Some(outer)); // inner
        assert_eq!(spans[3].parent, Some(inner)); // leaf
        r.validate_well_formed().unwrap();
    }

    #[test]
    fn well_formedness_catches_violations() {
        let mut r = Recorder::enabled();
        let t = r.track("t");
        let s = r.open(t, "open-forever", 0.0);
        assert!(r.validate_well_formed().is_err());
        r.close(s, 10.0);
        r.validate_well_formed().unwrap();

        let mut r = Recorder::enabled();
        let t = r.track("t");
        let p = r.open(t, "parent", 0.0);
        r.leaf(t, "escapee", 5.0, 20.0);
        r.close(p, 10.0);
        assert!(r.validate_well_formed().is_err());

        let mut r = Recorder::enabled();
        let t = r.track("t");
        let p = r.open(t, "parent", 0.0);
        r.leaf(t, "c1", 0.0, 6.0);
        r.leaf(t, "c2", 2.0, 9.0); // overlapping children oversubscribe
        r.close(p, 10.0);
        assert!(r.validate_well_formed().is_err());
    }

    #[test]
    fn chrome_export_parses_and_carries_events() {
        let mut r = Recorder::enabled();
        let t = r.track("serving \"q\"");
        let s = r.open_with(t, "step", 1000.0, &[("users", ArgVal::U(4))]);
        r.close(s, 3500.0);
        r.instant_with(t, "fault.replay", 2000.0, &[("slice", ArgVal::U(7))]);
        let out = r.chrome_trace_json();
        let v = json::parse(&out).expect("chrome trace must be valid JSON");
        let events = v.get("traceEvents").unwrap().as_arr().unwrap();
        // 1 process meta + 2 track meta + 1 span + 1 instant
        assert_eq!(events.len(), 5);
        let span = events
            .iter()
            .find(|e| e.get("ph").and_then(|p| p.as_str()) == Some("X"))
            .unwrap();
        assert_eq!(span.get("ts").unwrap().as_f64().unwrap(), 1.0);
        assert_eq!(span.get("dur").unwrap().as_f64().unwrap(), 2.5);
        assert_eq!(
            span.get("args").unwrap().get("users").unwrap().as_f64(),
            Some(4.0)
        );
    }

    #[test]
    fn track_interning_is_stable() {
        let mut r = Recorder::enabled();
        let a = r.track("x");
        let b = r.track("y");
        assert_eq!(r.track("x"), a);
        assert_eq!(r.track("y"), b);
        assert_ne!(a, b);
    }

    #[test]
    fn text_report_counts_by_track() {
        let mut r = Recorder::enabled();
        let t = r.track("gpu");
        r.leaf(t, "w", 0.0, 1.0);
        r.instant(t, "i", 0.5);
        r.counter_add("steps", 2);
        let text = r.text_report();
        assert!(text.contains("trace: 1 spans, 1 instants, 1 tracks"));
        assert!(text.contains("track gpu: 1 spans, 1 instants"));
        assert!(text.contains("counter   steps = 2"));
    }
}
