//! Minimal JSON support: string escaping, float formatting, and a strict
//! recursive-descent parser used to validate exported traces.
//!
//! The parser exists so the CI smoke gate (`longsight trace-validate`) and the
//! integration tests can round-trip exporter output without any external JSON
//! dependency. It accepts exactly RFC 8259 JSON (no comments, no trailing
//! commas) and preserves object key order, which keeps validation of the
//! deterministic exporters itself deterministic.

/// A parsed JSON value. Object keys keep their source order.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any JSON number, held as `f64`.
    Num(f64),
    /// A string (unescaped).
    Str(String),
    /// An array.
    Arr(Vec<Value>),
    /// An object, in source key order.
    Obj(Vec<(String, Value)>),
}

impl Value {
    /// Looks up a key in an object value; `None` for non-objects or misses.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The elements of an array value; `None` for non-arrays.
    pub fn as_arr(&self) -> Option<&[Value]> {
        match self {
            Value::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// The contents of a string value; `None` for non-strings.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The numeric value; `None` for non-numbers.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Num(n) => Some(*n),
            _ => None,
        }
    }
}

/// Appends `s` to `out` as a quoted JSON string with all required escapes.
pub fn escape_into(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Formats an `f64` for JSON output. Uses Rust's shortest round-trip
/// formatting (deterministic across platforms for the same bits); non-finite
/// values, which JSON cannot represent, become `null`.
pub fn fmt_f64(v: f64) -> String {
    if v.is_finite() {
        let s = format!("{v}");
        // `format!("{}")` never prints an exponent for the magnitudes the
        // simulators produce, but guard anyway: exponents are valid JSON.
        s
    } else {
        "null".to_string()
    }
}

/// Parses a complete JSON document. Trailing whitespace is allowed; any other
/// trailing content is an error. Errors carry a byte offset for diagnostics.
pub fn parse(src: &str) -> Result<Value, String> {
    let bytes = src.as_bytes();
    let mut pos = 0usize;
    let value = parse_value(bytes, &mut pos)?;
    skip_ws(bytes, &mut pos);
    if pos != bytes.len() {
        return Err(format!("trailing content at byte {pos}"));
    }
    Ok(value)
}

fn skip_ws(bytes: &[u8], pos: &mut usize) {
    while *pos < bytes.len() && matches!(bytes[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn parse_value(bytes: &[u8], pos: &mut usize) -> Result<Value, String> {
    skip_ws(bytes, pos);
    match bytes.get(*pos) {
        None => Err("unexpected end of input".to_string()),
        Some(b'{') => parse_object(bytes, pos),
        Some(b'[') => parse_array(bytes, pos),
        Some(b'"') => parse_string(bytes, pos).map(Value::Str),
        Some(b't') => parse_literal(bytes, pos, "true", Value::Bool(true)),
        Some(b'f') => parse_literal(bytes, pos, "false", Value::Bool(false)),
        Some(b'n') => parse_literal(bytes, pos, "null", Value::Null),
        Some(c) if *c == b'-' || c.is_ascii_digit() => parse_number(bytes, pos),
        Some(c) => Err(format!("unexpected byte {c:?} at {pos:?}", pos = *pos)),
    }
}

fn parse_literal(bytes: &[u8], pos: &mut usize, lit: &str, value: Value) -> Result<Value, String> {
    if bytes[*pos..].starts_with(lit.as_bytes()) {
        *pos += lit.len();
        Ok(value)
    } else {
        Err(format!("invalid literal at byte {pos}", pos = *pos))
    }
}

fn parse_number(bytes: &[u8], pos: &mut usize) -> Result<Value, String> {
    let start = *pos;
    if bytes.get(*pos) == Some(&b'-') {
        *pos += 1;
    }
    let int_start = *pos;
    let int_digits = eat_digits(bytes, pos);
    if int_digits == 0 {
        return Err(format!("invalid number at byte {start}"));
    }
    if int_digits > 1 && bytes[int_start] == b'0' {
        return Err(format!("leading zero in number at byte {start}"));
    }
    if bytes.get(*pos) == Some(&b'.') {
        *pos += 1;
        if eat_digits(bytes, pos) == 0 {
            return Err(format!("invalid fraction at byte {start}"));
        }
    }
    if matches!(bytes.get(*pos), Some(b'e') | Some(b'E')) {
        *pos += 1;
        if matches!(bytes.get(*pos), Some(b'+') | Some(b'-')) {
            *pos += 1;
        }
        if eat_digits(bytes, pos) == 0 {
            return Err(format!("invalid exponent at byte {start}"));
        }
    }
    let text = std::str::from_utf8(&bytes[start..*pos]).map_err(|e| e.to_string())?;
    text.parse::<f64>()
        .map(Value::Num)
        .map_err(|e| format!("bad number {text:?}: {e}"))
}

fn eat_digits(bytes: &[u8], pos: &mut usize) -> usize {
    let start = *pos;
    while matches!(bytes.get(*pos), Some(c) if c.is_ascii_digit()) {
        *pos += 1;
    }
    *pos - start
}

fn parse_string(bytes: &[u8], pos: &mut usize) -> Result<String, String> {
    debug_assert_eq!(bytes.get(*pos), Some(&b'"'));
    *pos += 1;
    let mut out = String::new();
    loop {
        match bytes.get(*pos) {
            None => return Err("unterminated string".to_string()),
            Some(b'"') => {
                *pos += 1;
                return Ok(out);
            }
            Some(b'\\') => {
                *pos += 1;
                match bytes.get(*pos) {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'b') => out.push('\u{8}'),
                    Some(b'f') => out.push('\u{c}'),
                    Some(b'n') => out.push('\n'),
                    Some(b'r') => out.push('\r'),
                    Some(b't') => out.push('\t'),
                    Some(b'u') => {
                        let cp = parse_hex4(bytes, *pos + 1)?;
                        *pos += 4;
                        // Surrogate pairs: a leading surrogate must be
                        // followed by `\uXXXX` with a trailing surrogate.
                        if (0xD800..0xDC00).contains(&cp) {
                            if bytes.get(*pos + 1) == Some(&b'\\')
                                && bytes.get(*pos + 2) == Some(&b'u')
                            {
                                let lo = parse_hex4(bytes, *pos + 3)?;
                                if (0xDC00..0xE000).contains(&lo) {
                                    *pos += 6;
                                    let c = 0x10000 + ((cp - 0xD800) << 10) + (lo - 0xDC00);
                                    out.push(
                                        char::from_u32(c)
                                            .ok_or("bad surrogate pair".to_string())?,
                                    );
                                } else {
                                    return Err("unpaired surrogate".to_string());
                                }
                            } else {
                                return Err("unpaired surrogate".to_string());
                            }
                        } else if (0xDC00..0xE000).contains(&cp) {
                            return Err("unpaired surrogate".to_string());
                        } else {
                            out.push(char::from_u32(cp).ok_or("bad codepoint".to_string())?);
                        }
                    }
                    _ => return Err(format!("bad escape at byte {pos}", pos = *pos)),
                }
                *pos += 1;
            }
            Some(c) if *c < 0x20 => {
                return Err(format!("control byte in string at {pos}", pos = *pos));
            }
            Some(_) => {
                // Consume one UTF-8 scalar; the source is a &str so bytes
                // here are always valid UTF-8.
                let s = &bytes[*pos..];
                let text = std::str::from_utf8(s).map_err(|e| e.to_string())?;
                let c = text.chars().next().ok_or("empty string tail")?;
                out.push(c);
                *pos += c.len_utf8();
            }
        }
    }
}

fn parse_hex4(bytes: &[u8], at: usize) -> Result<u32, String> {
    if at + 4 > bytes.len() {
        return Err("truncated \\u escape".to_string());
    }
    let text = std::str::from_utf8(&bytes[at..at + 4]).map_err(|e| e.to_string())?;
    u32::from_str_radix(text, 16).map_err(|e| format!("bad \\u escape: {e}"))
}

fn parse_array(bytes: &[u8], pos: &mut usize) -> Result<Value, String> {
    *pos += 1; // consume '['
    let mut items = Vec::new();
    skip_ws(bytes, pos);
    if bytes.get(*pos) == Some(&b']') {
        *pos += 1;
        return Ok(Value::Arr(items));
    }
    loop {
        items.push(parse_value(bytes, pos)?);
        skip_ws(bytes, pos);
        match bytes.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b']') => {
                *pos += 1;
                return Ok(Value::Arr(items));
            }
            _ => return Err(format!("expected ',' or ']' at byte {pos}", pos = *pos)),
        }
    }
}

fn parse_object(bytes: &[u8], pos: &mut usize) -> Result<Value, String> {
    *pos += 1; // consume '{'
    let mut fields = Vec::new();
    skip_ws(bytes, pos);
    if bytes.get(*pos) == Some(&b'}') {
        *pos += 1;
        return Ok(Value::Obj(fields));
    }
    loop {
        skip_ws(bytes, pos);
        if bytes.get(*pos) != Some(&b'"') {
            return Err(format!("expected object key at byte {pos}", pos = *pos));
        }
        let key = parse_string(bytes, pos)?;
        skip_ws(bytes, pos);
        if bytes.get(*pos) != Some(&b':') {
            return Err(format!("expected ':' at byte {pos}", pos = *pos));
        }
        *pos += 1;
        let value = parse_value(bytes, pos)?;
        fields.push((key, value));
        skip_ws(bytes, pos);
        match bytes.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b'}') => {
                *pos += 1;
                return Ok(Value::Obj(fields));
            }
            _ => return Err(format!("expected ',' or '}}' at byte {pos}", pos = *pos)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_scalars() {
        assert_eq!(parse("null").unwrap(), Value::Null);
        assert_eq!(parse("true").unwrap(), Value::Bool(true));
        assert_eq!(parse(" -12.5e2 ").unwrap(), Value::Num(-1250.0));
        assert_eq!(
            parse("\"a\\nb\\u0041\"").unwrap(),
            Value::Str("a\nbA".to_string())
        );
    }

    #[test]
    fn parses_nested_containers_in_order() {
        let v = parse(r#"{"b":[1,2,{"x":null}],"a":false}"#).unwrap();
        let Value::Obj(fields) = &v else {
            panic!("not an object")
        };
        assert_eq!(fields[0].0, "b");
        assert_eq!(fields[1].0, "a");
        assert_eq!(v.get("b").unwrap().as_arr().unwrap().len(), 3);
    }

    #[test]
    fn rejects_malformed_documents() {
        for bad in [
            "",
            "{",
            "[1,]",
            "{\"a\":}",
            "01",
            "\"\\q\"",
            "tru",
            "1 2",
            "{\"a\" 1}",
        ] {
            assert!(parse(bad).is_err(), "accepted {bad:?}");
        }
    }

    #[test]
    fn escape_round_trips() {
        let s = "quote \" backslash \\ newline \n tab \t unicode \u{1F600} ctrl \u{1}";
        let mut enc = String::new();
        escape_into(&mut enc, s);
        assert_eq!(parse(&enc).unwrap(), Value::Str(s.to_string()));
    }

    #[test]
    fn surrogate_pair_parses() {
        assert_eq!(
            parse("\"\\ud83d\\ude00\"").unwrap(),
            Value::Str("\u{1F600}".to_string())
        );
        assert!(parse("\"\\ud83d\"").is_err());
    }

    #[test]
    fn fmt_f64_is_round_trip_clean() {
        for v in [0.0, 1.5, 1234567.875, 0.001953125, -42.0] {
            let s = fmt_f64(v);
            assert_eq!(s.parse::<f64>().unwrap(), v);
        }
        assert_eq!(fmt_f64(f64::NAN), "null");
    }
}
