//! A registry of named counters, gauges, and fixed-bucket histograms.
//!
//! Everything is ordinary owned data behind `&mut` — no atomics, no locks —
//! because all recording in this workspace happens on the (serial) simulation
//! control path. Metrics are reported in **first-registration order**, which
//! is a pure function of the simulation control flow and therefore identical
//! at any thread count. Name lookup goes through a side index map, so the
//! hot-path record calls stay O(1) while the export order stays the ordered
//! `Vec` of first registration.

use crate::json::{escape_into, fmt_f64};
use std::collections::HashMap;

/// Default histogram bucket edges in milliseconds, chosen to straddle the
/// token-latency SLO band (tens of ms) with roughly log-spaced resolution.
pub const DEFAULT_MS_EDGES: [f64; 15] = [
    0.1, 0.2, 0.5, 1.0, 2.0, 5.0, 10.0, 20.0, 50.0, 100.0, 200.0, 500.0, 1000.0, 2000.0, 5000.0,
];

/// Default bucket edges for dimensionless quantities (token, page, and
/// request counts): log-spaced from one to a million. Millisecond edges
/// would bucket a 4096-token count into the `> 5 s` overflow bin and make
/// the histogram useless, so [`MetricsRegistry::observe`] picks edges from
/// the metric's unit suffix instead of defaulting everything to time.
pub const DEFAULT_COUNT_EDGES: [f64; 15] = [
    1.0,
    2.0,
    5.0,
    10.0,
    20.0,
    50.0,
    100.0,
    200.0,
    500.0,
    1000.0,
    2000.0,
    5000.0,
    10_000.0,
    100_000.0,
    1_000_000.0,
];

/// Unit-appropriate default edges for an unregistered histogram name: names
/// with a time-unit suffix (`_ns`, `_us`, `_ms`, `_s`) get the millisecond
/// SLO-band edges, anything else is treated as a count.
fn default_edges_for(name: &str) -> &'static [f64] {
    if name.ends_with("_ms")
        || name.ends_with("_us")
        || name.ends_with("_ns")
        || name.ends_with("_s")
    {
        &DEFAULT_MS_EDGES
    } else {
        &DEFAULT_COUNT_EDGES
    }
}

/// A fixed-bucket histogram: `counts[i]` counts observations `<= edges[i]`,
/// with one overflow bucket at the end.
#[derive(Debug, Clone, PartialEq)]
pub struct Histogram {
    /// Upper bucket edges, strictly increasing.
    pub edges: Vec<f64>,
    /// Per-bucket observation counts; `counts.len() == edges.len() + 1`.
    pub counts: Vec<u64>,
    /// Total number of observations.
    pub count: u64,
    /// Sum of all observed values.
    pub sum: f64,
    /// Smallest observed value (`f64::INFINITY` when empty).
    pub min: f64,
    /// Largest observed value (`f64::NEG_INFINITY` when empty).
    pub max: f64,
}

impl Histogram {
    pub(crate) fn new(edges: &[f64]) -> Self {
        Histogram {
            edges: edges.to_vec(),
            counts: vec![0; edges.len() + 1],
            count: 0,
            sum: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    pub(crate) fn observe(&mut self, value: f64) {
        let idx = self
            .edges
            .iter()
            .position(|&e| value <= e)
            .unwrap_or(self.edges.len());
        self.counts[idx] += 1;
        self.count += 1;
        self.sum += value;
        self.min = self.min.min(value);
        self.max = self.max.max(value);
    }

    /// Mean observed value, or 0 when empty.
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum / self.count as f64
        }
    }

    /// Bucketed nearest-rank quantile estimate: the upper edge of the bucket
    /// holding the `ceil(p·count)`-th observation, clamped to the observed
    /// `[min, max]` range (the overflow bucket reports `max`). Returns 0 for
    /// an empty histogram. The estimate is conservative (an upper bound
    /// within bucket resolution) and a pure function of the counts, so it is
    /// deterministic across reruns and thread counts.
    pub fn quantile(&self, p: f64) -> f64 {
        if self.count == 0 {
            return 0.0;
        }
        let rank = ((p * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut cum = 0u64;
        for (i, &c) in self.counts.iter().enumerate() {
            cum += c;
            if cum >= rank {
                let edge = if i < self.edges.len() {
                    self.edges[i]
                } else {
                    self.max
                };
                return edge.min(self.max).max(self.min);
            }
        }
        self.max
    }
}

/// Named counters, gauges, and histograms in stable registration order, with
/// an index map over each family so hot-path recording never rescans the
/// name lists.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct MetricsRegistry {
    counters: Vec<(String, u64)>,
    gauges: Vec<(String, f64)>,
    histograms: Vec<(String, Histogram)>,
    counter_index: HashMap<String, usize>,
    gauge_index: HashMap<String, usize>,
    histogram_index: HashMap<String, usize>,
}

impl MetricsRegistry {
    /// Adds `delta` to the named counter, creating it at zero on first use.
    pub fn counter_add(&mut self, name: &str, delta: u64) {
        match self.counter_index.get(name) {
            Some(&i) => self.counters[i].1 += delta,
            None => {
                self.counter_index
                    .insert(name.to_string(), self.counters.len());
                self.counters.push((name.to_string(), delta));
            }
        }
    }

    /// Sets the named gauge, creating it on first use.
    pub fn gauge_set(&mut self, name: &str, value: f64) {
        match self.gauge_index.get(name) {
            Some(&i) => self.gauges[i].1 = value,
            None => {
                self.gauge_index.insert(name.to_string(), self.gauges.len());
                self.gauges.push((name.to_string(), value));
            }
        }
    }

    /// Registers a histogram with explicit bucket edges. Re-registering an
    /// existing name keeps the original edges (first registration wins, so
    /// ordering and shape stay stable).
    pub fn register_histogram(&mut self, name: &str, edges: &[f64]) {
        if !self.histogram_index.contains_key(name) {
            self.histogram_index
                .insert(name.to_string(), self.histograms.len());
            self.histograms
                .push((name.to_string(), Histogram::new(edges)));
        }
    }

    /// Records one observation into the named histogram. Prefer registering
    /// the histogram with explicit edges via
    /// [`MetricsRegistry::register_histogram`] first; an unregistered name
    /// is created with unit-appropriate defaults inferred from its suffix —
    /// [`DEFAULT_MS_EDGES`] for time-suffixed names (`_ns`/`_us`/`_ms`/`_s`)
    /// and [`DEFAULT_COUNT_EDGES`] for everything else — never blindly with
    /// millisecond buckets.
    pub fn observe(&mut self, name: &str, value: f64) {
        if let Some(&i) = self.histogram_index.get(name) {
            self.histograms[i].1.observe(value);
            return;
        }
        let mut h = Histogram::new(default_edges_for(name));
        h.observe(value);
        self.histogram_index
            .insert(name.to_string(), self.histograms.len());
        self.histograms.push((name.to_string(), h));
    }

    /// The current value of a counter, if registered.
    pub fn counter(&self, name: &str) -> Option<u64> {
        self.counter_index.get(name).map(|&i| self.counters[i].1)
    }

    /// The current value of a gauge, if registered.
    pub fn gauge(&self, name: &str) -> Option<f64> {
        self.gauge_index.get(name).map(|&i| self.gauges[i].1)
    }

    /// The named histogram, if registered.
    pub fn histogram(&self, name: &str) -> Option<&Histogram> {
        self.histogram_index
            .get(name)
            .map(|&i| &self.histograms[i].1)
    }

    /// True when nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.counters.is_empty() && self.gauges.is_empty() && self.histograms.is_empty()
    }

    /// Machine-readable JSON dump in registration order.
    pub fn to_json(&self) -> String {
        let mut out = String::with_capacity(256);
        out.push_str("{\"counters\":{");
        for (i, (name, v)) in self.counters.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            escape_into(&mut out, name);
            out.push(':');
            out.push_str(&v.to_string());
        }
        out.push_str("},\"gauges\":{");
        for (i, (name, v)) in self.gauges.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            escape_into(&mut out, name);
            out.push(':');
            out.push_str(&fmt_f64(*v));
        }
        out.push_str("},\"histograms\":{");
        for (i, (name, h)) in self.histograms.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            escape_into(&mut out, name);
            out.push_str(":{\"edges\":[");
            for (j, e) in h.edges.iter().enumerate() {
                if j > 0 {
                    out.push(',');
                }
                out.push_str(&fmt_f64(*e));
            }
            out.push_str("],\"counts\":[");
            for (j, c) in h.counts.iter().enumerate() {
                if j > 0 {
                    out.push(',');
                }
                out.push_str(&c.to_string());
            }
            out.push_str("],\"count\":");
            out.push_str(&h.count.to_string());
            out.push_str(",\"sum\":");
            out.push_str(&fmt_f64(h.sum));
            if h.count > 0 {
                out.push_str(",\"min\":");
                out.push_str(&fmt_f64(h.min));
                out.push_str(",\"max\":");
                out.push_str(&fmt_f64(h.max));
            }
            out.push('}');
        }
        out.push_str("}}");
        out
    }

    /// Flat human-readable report in registration order.
    pub fn to_text(&self) -> String {
        let mut out = String::new();
        for (name, v) in &self.counters {
            out.push_str(&format!("counter   {name} = {v}\n"));
        }
        for (name, v) in &self.gauges {
            out.push_str(&format!("gauge     {name} = {v}\n"));
        }
        for (name, h) in &self.histograms {
            if h.count == 0 {
                out.push_str(&format!("histogram {name}: empty\n"));
            } else {
                out.push_str(&format!(
                    "histogram {name}: count {} mean {:.4} min {:.4} max {:.4}\n",
                    h.count,
                    h.mean(),
                    h.min,
                    h.max
                ));
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_and_gauges_keep_registration_order() {
        let mut m = MetricsRegistry::default();
        m.counter_add("b", 1);
        m.counter_add("a", 2);
        m.counter_add("b", 3);
        m.gauge_set("z", 1.5);
        m.gauge_set("z", 2.5);
        assert_eq!(m.counter("b"), Some(4));
        assert_eq!(m.counter("a"), Some(2));
        assert_eq!(m.gauge("z"), Some(2.5));
        let json = m.to_json();
        assert!(json.find("\"b\"").unwrap() < json.find("\"a\"").unwrap());
        crate::json::parse(&json).expect("metrics JSON must parse");
    }

    #[test]
    fn index_map_survives_many_registrations() {
        // Order is first registration; lookups hit the right slots after
        // interleaved creation across all three families.
        let mut m = MetricsRegistry::default();
        for i in 0..64 {
            m.counter_add(&format!("c{i}"), i);
            m.gauge_set(&format!("g{i}"), i as f64);
            m.observe(&format!("h{i}_ms"), i as f64);
        }
        for i in (0..64).rev() {
            m.counter_add(&format!("c{i}"), 1);
        }
        assert_eq!(m.counter("c0"), Some(1));
        assert_eq!(m.counter("c63"), Some(64));
        assert_eq!(m.gauge("g7"), Some(7.0));
        assert_eq!(m.histogram("h9_ms").unwrap().count, 1);
        let json = m.to_json();
        assert!(json.find("\"c0\"").unwrap() < json.find("\"c63\"").unwrap());
    }

    #[test]
    fn histogram_buckets_and_overflow() {
        let mut m = MetricsRegistry::default();
        m.register_histogram("lat", &[1.0, 10.0]);
        for v in [0.5, 1.0, 5.0, 100.0] {
            m.observe("lat", v);
        }
        let h = m.histogram("lat").unwrap();
        assert_eq!(h.counts, vec![2, 1, 1]);
        assert_eq!(h.count, 4);
        assert_eq!(h.min, 0.5);
        assert_eq!(h.max, 100.0);
        assert!((h.mean() - 26.625).abs() < 1e-12);
    }

    #[test]
    fn unregistered_observe_infers_edges_from_the_unit_suffix() {
        let mut m = MetricsRegistry::default();
        m.observe("token_latency_ms", 3.0);
        assert_eq!(
            m.histogram("token_latency_ms").unwrap().edges,
            DEFAULT_MS_EDGES.to_vec()
        );
        // A token count lands in count buckets, not the > 5 s overflow bin.
        m.observe("degraded_tokens", 4096.0);
        let h = m.histogram("degraded_tokens").unwrap();
        assert_eq!(h.edges, DEFAULT_COUNT_EDGES.to_vec());
        assert_eq!(h.counts[h.edges.len()], 0, "must not overflow: {h:?}");
    }

    #[test]
    fn explicit_registration_wins_over_inferred_defaults() {
        let mut m = MetricsRegistry::default();
        m.register_histogram("pages", &[8.0, 64.0]);
        m.register_histogram("pages", &[1.0]); // first registration wins
        m.observe("pages", 32.0);
        let h = m.histogram("pages").unwrap();
        assert_eq!(h.edges, vec![8.0, 64.0]);
        assert_eq!(h.counts, vec![0, 1, 0]);
    }

    #[test]
    fn quantile_is_a_clamped_bucket_upper_bound() {
        let mut m = MetricsRegistry::default();
        m.register_histogram("q", &[1.0, 10.0, 100.0]);
        assert_eq!(m.histogram("q").unwrap().quantile(0.99), 0.0); // empty
        for v in [0.5, 2.0, 3.0, 4.0, 150.0] {
            m.observe("q", v);
        }
        let h = m.histogram("q").unwrap();
        assert_eq!(h.quantile(0.5), 10.0); // rank 3 of 5 sits in (1, 10]
        assert_eq!(h.quantile(0.99), 150.0); // overflow bucket reports max
        assert_eq!(h.quantile(0.0), 1.0); // first bucket's upper edge

        let mut low = Histogram::new(&[1.0, 10.0]);
        low.observe(0.25); // all mass below the first edge
        assert_eq!(low.quantile(0.5), 0.25); // clamped to the observed max
    }
}
