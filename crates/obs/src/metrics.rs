//! A registry of named counters, gauges, and fixed-bucket histograms.
//!
//! Everything is ordinary owned data behind `&mut` — no atomics, no locks —
//! because all recording in this workspace happens on the (serial) simulation
//! control path. Metrics are reported in **first-registration order**, which
//! is a pure function of the simulation control flow and therefore identical
//! at any thread count.

use crate::json::{escape_into, fmt_f64};

/// Default histogram bucket edges in milliseconds, chosen to straddle the
/// token-latency SLO band (tens of ms) with roughly log-spaced resolution.
pub const DEFAULT_MS_EDGES: [f64; 15] = [
    0.1, 0.2, 0.5, 1.0, 2.0, 5.0, 10.0, 20.0, 50.0, 100.0, 200.0, 500.0, 1000.0, 2000.0, 5000.0,
];

/// A fixed-bucket histogram: `counts[i]` counts observations `<= edges[i]`,
/// with one overflow bucket at the end.
#[derive(Debug, Clone, PartialEq)]
pub struct Histogram {
    /// Upper bucket edges, strictly increasing.
    pub edges: Vec<f64>,
    /// Per-bucket observation counts; `counts.len() == edges.len() + 1`.
    pub counts: Vec<u64>,
    /// Total number of observations.
    pub count: u64,
    /// Sum of all observed values.
    pub sum: f64,
    /// Smallest observed value (`f64::INFINITY` when empty).
    pub min: f64,
    /// Largest observed value (`f64::NEG_INFINITY` when empty).
    pub max: f64,
}

impl Histogram {
    fn new(edges: &[f64]) -> Self {
        Histogram {
            edges: edges.to_vec(),
            counts: vec![0; edges.len() + 1],
            count: 0,
            sum: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    fn observe(&mut self, value: f64) {
        let idx = self
            .edges
            .iter()
            .position(|&e| value <= e)
            .unwrap_or(self.edges.len());
        self.counts[idx] += 1;
        self.count += 1;
        self.sum += value;
        self.min = self.min.min(value);
        self.max = self.max.max(value);
    }

    /// Mean observed value, or 0 when empty.
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum / self.count as f64
        }
    }
}

/// Named counters, gauges, and histograms in stable registration order.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct MetricsRegistry {
    counters: Vec<(String, u64)>,
    gauges: Vec<(String, f64)>,
    histograms: Vec<(String, Histogram)>,
}

impl MetricsRegistry {
    /// Adds `delta` to the named counter, creating it at zero on first use.
    pub fn counter_add(&mut self, name: &str, delta: u64) {
        match self.counters.iter_mut().find(|(n, _)| n == name) {
            Some((_, v)) => *v += delta,
            None => self.counters.push((name.to_string(), delta)),
        }
    }

    /// Sets the named gauge, creating it on first use.
    pub fn gauge_set(&mut self, name: &str, value: f64) {
        match self.gauges.iter_mut().find(|(n, _)| n == name) {
            Some((_, v)) => *v = value,
            None => self.gauges.push((name.to_string(), value)),
        }
    }

    /// Registers a histogram with explicit bucket edges. Re-registering an
    /// existing name keeps the original edges (first registration wins, so
    /// ordering and shape stay stable).
    pub fn register_histogram(&mut self, name: &str, edges: &[f64]) {
        if !self.histograms.iter().any(|(n, _)| n == name) {
            self.histograms
                .push((name.to_string(), Histogram::new(edges)));
        }
    }

    /// Records one observation into the named histogram, creating it with
    /// [`DEFAULT_MS_EDGES`] on first use.
    pub fn observe(&mut self, name: &str, value: f64) {
        if let Some((_, h)) = self.histograms.iter_mut().find(|(n, _)| n == name) {
            h.observe(value);
            return;
        }
        let mut h = Histogram::new(&DEFAULT_MS_EDGES);
        h.observe(value);
        self.histograms.push((name.to_string(), h));
    }

    /// The current value of a counter, if registered.
    pub fn counter(&self, name: &str) -> Option<u64> {
        self.counters
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, v)| *v)
    }

    /// The current value of a gauge, if registered.
    pub fn gauge(&self, name: &str) -> Option<f64> {
        self.gauges.iter().find(|(n, _)| n == name).map(|(_, v)| *v)
    }

    /// The named histogram, if registered.
    pub fn histogram(&self, name: &str) -> Option<&Histogram> {
        self.histograms
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, h)| h)
    }

    /// True when nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.counters.is_empty() && self.gauges.is_empty() && self.histograms.is_empty()
    }

    /// Machine-readable JSON dump in registration order.
    pub fn to_json(&self) -> String {
        let mut out = String::with_capacity(256);
        out.push_str("{\"counters\":{");
        for (i, (name, v)) in self.counters.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            escape_into(&mut out, name);
            out.push(':');
            out.push_str(&v.to_string());
        }
        out.push_str("},\"gauges\":{");
        for (i, (name, v)) in self.gauges.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            escape_into(&mut out, name);
            out.push(':');
            out.push_str(&fmt_f64(*v));
        }
        out.push_str("},\"histograms\":{");
        for (i, (name, h)) in self.histograms.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            escape_into(&mut out, name);
            out.push_str(":{\"edges\":[");
            for (j, e) in h.edges.iter().enumerate() {
                if j > 0 {
                    out.push(',');
                }
                out.push_str(&fmt_f64(*e));
            }
            out.push_str("],\"counts\":[");
            for (j, c) in h.counts.iter().enumerate() {
                if j > 0 {
                    out.push(',');
                }
                out.push_str(&c.to_string());
            }
            out.push_str("],\"count\":");
            out.push_str(&h.count.to_string());
            out.push_str(",\"sum\":");
            out.push_str(&fmt_f64(h.sum));
            if h.count > 0 {
                out.push_str(",\"min\":");
                out.push_str(&fmt_f64(h.min));
                out.push_str(",\"max\":");
                out.push_str(&fmt_f64(h.max));
            }
            out.push('}');
        }
        out.push_str("}}");
        out
    }

    /// Flat human-readable report in registration order.
    pub fn to_text(&self) -> String {
        let mut out = String::new();
        for (name, v) in &self.counters {
            out.push_str(&format!("counter   {name} = {v}\n"));
        }
        for (name, v) in &self.gauges {
            out.push_str(&format!("gauge     {name} = {v}\n"));
        }
        for (name, h) in &self.histograms {
            if h.count == 0 {
                out.push_str(&format!("histogram {name}: empty\n"));
            } else {
                out.push_str(&format!(
                    "histogram {name}: count {} mean {:.4} min {:.4} max {:.4}\n",
                    h.count,
                    h.mean(),
                    h.min,
                    h.max
                ));
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_and_gauges_keep_registration_order() {
        let mut m = MetricsRegistry::default();
        m.counter_add("b", 1);
        m.counter_add("a", 2);
        m.counter_add("b", 3);
        m.gauge_set("z", 1.5);
        m.gauge_set("z", 2.5);
        assert_eq!(m.counter("b"), Some(4));
        assert_eq!(m.counter("a"), Some(2));
        assert_eq!(m.gauge("z"), Some(2.5));
        let json = m.to_json();
        assert!(json.find("\"b\"").unwrap() < json.find("\"a\"").unwrap());
        crate::json::parse(&json).expect("metrics JSON must parse");
    }

    #[test]
    fn histogram_buckets_and_overflow() {
        let mut m = MetricsRegistry::default();
        m.register_histogram("lat", &[1.0, 10.0]);
        for v in [0.5, 1.0, 5.0, 100.0] {
            m.observe("lat", v);
        }
        let h = m.histogram("lat").unwrap();
        assert_eq!(h.counts, vec![2, 1, 1]);
        assert_eq!(h.count, 4);
        assert_eq!(h.min, 0.5);
        assert_eq!(h.max, 100.0);
        assert!((h.mean() - 26.625).abs() < 1e-12);
    }

    #[test]
    fn default_edges_used_on_first_observe() {
        let mut m = MetricsRegistry::default();
        m.observe("x", 3.0);
        let h = m.histogram("x").unwrap();
        assert_eq!(h.edges.len(), DEFAULT_MS_EDGES.len());
        assert_eq!(h.count, 1);
    }
}
