//! Windowed time-series telemetry driven entirely by simulated time.
//!
//! The sampler slices the simulated clock into fixed `window_ns` intervals
//! and keeps one value per window per named series. Series register
//! themselves on first touch, and because all recording happens on the
//! serial simulation control path, registration order — and therefore every
//! exported byte — is a pure function of the workload, identical across
//! reruns and thread counts.
//!
//! Three series kinds cover everything the serving paths need:
//!
//! - **gauge** — last value written in each window (queue depth, page
//!   occupancy, breaker state). Export forward-fills windows with no sample
//!   from the previous value so step plots do not drop to zero between
//!   samples.
//! - **rate** — values summed within each window (admits, sheds,
//!   redispatches, degraded tokens per window).
//! - **quantile** — a fixed-bucket [`Histogram`] per window, exported as
//!   `<name>.p50` / `<name>.p99` columns (per-window latency quantiles).
//!
//! On top of the sampler sits a multi-window SLO **burn-rate engine**: every
//! interactive completion is classified against the interactive deadline
//! (`BurnConfig::slo_ms`), per-window good/miss totals are kept, and at
//! finalize time each window's burn rate — the miss fraction divided by the
//! error budget — is evaluated over a fast and a slow trailing window. A
//! window where *both* exceed the alert threshold is an alert window
//! (standard multi-window multi-burn-rate alerting: the fast window catches
//! the onset, the slow window suppresses blips).
//!
//! Like [`crate::Recorder::disabled`], the disabled sampler allocates
//! nothing and every record call is an early-return.

use crate::json::{escape_into, fmt_f64};
use crate::metrics::{Histogram, DEFAULT_MS_EDGES};
use std::collections::HashMap;

/// Configuration for the SLO burn-rate engine. All windows are expressed as
/// multiples of the sampler's base window so burn series align with every
/// other exported column.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BurnConfig {
    /// Interactive deadline in milliseconds; a completion above this is a
    /// deadline miss. Matches the breaker's SLO threshold by default.
    pub slo_ms: f64,
    /// Error budget as a miss fraction (0.05 = 5% of interactive requests
    /// may miss the deadline before the budget is exhausted).
    pub budget: f64,
    /// Fast alert window, in base windows (catches onset).
    pub fast_windows: usize,
    /// Slow alert window, in base windows (suppresses blips).
    pub slow_windows: usize,
    /// Alert when both fast and slow burn rates reach this multiple of the
    /// budget (1.0 = burning budget exactly at the sustainable rate).
    pub threshold: f64,
}

impl Default for BurnConfig {
    fn default() -> Self {
        BurnConfig {
            slo_ms: 2500.0,
            budget: 0.05,
            fast_windows: 2,
            slow_windows: 8,
            threshold: 1.0,
        }
    }
}

/// One alert window produced by the burn-rate engine.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BurnAlert {
    /// Index of the base window that alerted.
    pub window: usize,
    /// Start of that window in simulated ns (instant timestamp).
    pub t_ns: f64,
    /// Fast-window burn rate at that point (multiples of budget).
    pub fast: f64,
    /// Slow-window burn rate at that point.
    pub slow: f64,
}

/// Whole-run error-budget accounting, computed at finalize time.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BurnTotals {
    /// Interactive deadline in milliseconds (from [`BurnConfig`]).
    pub slo_ms: f64,
    /// Error budget as a miss fraction (from [`BurnConfig`]).
    pub budget: f64,
    /// Interactive completions observed.
    pub completions: u64,
    /// Interactive completions above the deadline.
    pub misses: u64,
    /// Fraction of the error budget consumed over the run
    /// (`miss_fraction / budget`; 1.0 = exhausted).
    pub consumed: f64,
}

#[derive(Debug, Clone, PartialEq)]
enum SeriesData {
    /// Last value written per window (`None` = no sample in that window).
    Gauge(Vec<Option<f64>>),
    /// Values summed per window.
    Rate(Vec<f64>),
    /// One histogram per window.
    Quantile(Vec<Option<Histogram>>),
}

#[derive(Debug, Clone, PartialEq)]
struct Series {
    name: String,
    data: SeriesData,
}

/// The windowed sampler. Embedded in [`crate::Recorder`]; disabled by
/// default and enabled explicitly via [`crate::Recorder::enable_timeseries`].
#[derive(Debug, Clone, PartialEq)]
pub struct TimeSeries {
    enabled: bool,
    window_ns: f64,
    burn: BurnConfig,
    series: Vec<Series>,
    index: HashMap<String, usize>,
    slo_good: Vec<u64>,
    slo_miss: Vec<u64>,
}

impl TimeSeries {
    /// A disabled sampler: every record call is a no-op and nothing is
    /// allocated (all vectors have capacity zero).
    pub fn disabled() -> Self {
        TimeSeries {
            enabled: false,
            window_ns: 0.0,
            burn: BurnConfig::default(),
            series: Vec::new(),
            index: HashMap::new(),
            slo_good: Vec::new(),
            slo_miss: Vec::new(),
        }
    }

    /// An enabled sampler with the given base window (simulated ns) and
    /// burn-rate configuration.
    ///
    /// # Panics
    /// If `window_ns` is not a positive finite number, or either burn window
    /// is zero.
    pub fn enabled(window_ns: f64, burn: BurnConfig) -> Self {
        assert!(
            window_ns.is_finite() && window_ns > 0.0,
            "timeseries window must be positive and finite, got {window_ns}"
        );
        assert!(
            burn.fast_windows >= 1 && burn.slow_windows >= 1,
            "burn windows must be at least one base window"
        );
        TimeSeries {
            enabled: true,
            window_ns,
            burn,
            series: Vec::new(),
            index: HashMap::new(),
            slo_good: Vec::new(),
            slo_miss: Vec::new(),
        }
    }

    /// Whether this sampler records anything.
    pub fn is_enabled(&self) -> bool {
        self.enabled
    }

    /// Base window length in simulated ns (0 when disabled).
    pub fn window_ns(&self) -> f64 {
        self.window_ns
    }

    /// The burn-rate configuration.
    pub fn burn_config(&self) -> &BurnConfig {
        &self.burn
    }

    fn window_of(&self, t_ns: f64) -> usize {
        if t_ns.is_finite() && t_ns > 0.0 {
            (t_ns / self.window_ns) as usize
        } else {
            0
        }
    }

    fn series_slot(&mut self, name: &str, make: fn() -> SeriesData) -> &mut SeriesData {
        let i = match self.index.get(name) {
            Some(&i) => i,
            None => {
                let i = self.series.len();
                self.index.insert(name.to_string(), i);
                self.series.push(Series {
                    name: name.to_string(),
                    data: make(),
                });
                i
            }
        };
        &mut self.series[i].data
    }

    /// Records a gauge sample: the last write in a window wins.
    pub fn gauge(&mut self, name: &str, t_ns: f64, value: f64) {
        if !self.enabled {
            return;
        }
        let w = self.window_of(t_ns);
        match self.series_slot(name, || SeriesData::Gauge(Vec::new())) {
            SeriesData::Gauge(v) => {
                if v.len() <= w {
                    v.resize(w + 1, None);
                }
                v[w] = Some(value);
            }
            _ => panic!("timeseries series {name} is not a gauge"),
        }
    }

    /// Adds `delta` to a rate series in the window containing `t_ns`.
    pub fn rate_add(&mut self, name: &str, t_ns: f64, delta: f64) {
        if !self.enabled {
            return;
        }
        let w = self.window_of(t_ns);
        match self.series_slot(name, || SeriesData::Rate(Vec::new())) {
            SeriesData::Rate(v) => {
                if v.len() <= w {
                    v.resize(w + 1, 0.0);
                }
                v[w] += delta;
            }
            _ => panic!("timeseries series {name} is not a rate"),
        }
    }

    /// Records one observation into a per-window quantile series (exported
    /// as `<name>.p50` / `<name>.p99`). Buckets use the millisecond SLO-band
    /// edges, matching the latency quantities this is meant for.
    pub fn observe_ms(&mut self, name: &str, t_ns: f64, value: f64) {
        if !self.enabled {
            return;
        }
        let w = self.window_of(t_ns);
        match self.series_slot(name, || SeriesData::Quantile(Vec::new())) {
            SeriesData::Quantile(v) => {
                if v.len() <= w {
                    v.resize(w + 1, None);
                }
                v[w].get_or_insert_with(|| Histogram::new(&DEFAULT_MS_EDGES))
                    .observe(value);
            }
            _ => panic!("timeseries series {name} is not a quantile series"),
        }
    }

    /// Feeds one interactive completion to the burn-rate engine.
    pub fn slo_sample(&mut self, t_ns: f64, latency_ms: f64) {
        if !self.enabled {
            return;
        }
        let w = self.window_of(t_ns);
        if self.slo_good.len() <= w {
            self.slo_good.resize(w + 1, 0);
            self.slo_miss.resize(w + 1, 0);
        }
        if latency_ms > self.burn.slo_ms {
            self.slo_miss[w] += 1;
        } else {
            self.slo_good[w] += 1;
        }
    }

    /// True when no samples of any kind have been recorded.
    pub fn is_empty(&self) -> bool {
        self.series.is_empty() && self.slo_good.is_empty()
    }

    /// Number of base windows covered by the recorded data.
    pub fn windows(&self) -> usize {
        let mut n = self.slo_good.len();
        for s in &self.series {
            n = n.max(match &s.data {
                SeriesData::Gauge(v) => v.len(),
                SeriesData::Rate(v) => v.len(),
                SeriesData::Quantile(v) => v.len(),
            });
        }
        n
    }

    /// Burn rate (multiples of budget) over the trailing `span` windows
    /// ending at window `w`, or `None` when that span saw no interactive
    /// completions.
    fn burn_over(&self, w: usize, span: usize) -> Option<f64> {
        let lo = (w + 1).saturating_sub(span);
        let mut good = 0u64;
        let mut miss = 0u64;
        for i in lo..=w {
            if i < self.slo_good.len() {
                good += self.slo_good[i];
                miss += self.slo_miss[i];
            }
        }
        let total = good + miss;
        if total == 0 {
            return None;
        }
        Some(miss as f64 / total as f64 / self.burn.budget)
    }

    /// Evaluates the multi-window burn-rate alert over every recorded
    /// window. Deterministic: a pure function of the per-window totals.
    pub fn burn_alerts(&self) -> Vec<BurnAlert> {
        let mut out = Vec::new();
        if !self.enabled {
            return out;
        }
        for w in 0..self.slo_good.len() {
            let (Some(fast), Some(slow)) = (
                self.burn_over(w, self.burn.fast_windows),
                self.burn_over(w, self.burn.slow_windows),
            ) else {
                continue;
            };
            if fast >= self.burn.threshold && slow >= self.burn.threshold {
                out.push(BurnAlert {
                    window: w,
                    t_ns: w as f64 * self.window_ns,
                    fast,
                    slow,
                });
            }
        }
        out
    }

    /// Whole-run error-budget totals.
    pub fn burn_totals(&self) -> BurnTotals {
        let good: u64 = self.slo_good.iter().sum();
        let miss: u64 = self.slo_miss.iter().sum();
        let total = good + miss;
        let consumed = if total == 0 {
            0.0
        } else {
            miss as f64 / total as f64 / self.burn.budget
        };
        BurnTotals {
            slo_ms: self.burn.slo_ms,
            budget: self.burn.budget,
            completions: total,
            misses: miss,
            consumed,
        }
    }

    /// Expands every series to aligned per-window columns in registration
    /// order: gauges forward-filled (leading empty windows report 0),
    /// rates zero-filled, quantile series expanded to `.p50`/`.p99` columns
    /// (`None` for windows with no observations). When the burn engine saw
    /// any samples, derived `slo.good`, `slo.miss`, `slo.burn.fast`,
    /// `slo.burn.slow`, and `slo.burn.alert` columns are appended.
    pub fn columns(&self) -> Vec<(String, Vec<Option<f64>>)> {
        let n = self.windows();
        let mut out = Vec::with_capacity(self.series.len() + 5);
        for s in &self.series {
            match &s.data {
                SeriesData::Gauge(v) => {
                    let mut col = Vec::with_capacity(n);
                    let mut last = 0.0;
                    for w in 0..n {
                        if let Some(x) = v.get(w).copied().flatten() {
                            last = x;
                        }
                        col.push(Some(last));
                    }
                    out.push((s.name.clone(), col));
                }
                SeriesData::Rate(v) => {
                    let col = (0..n)
                        .map(|w| Some(v.get(w).copied().unwrap_or(0.0)))
                        .collect();
                    out.push((s.name.clone(), col));
                }
                SeriesData::Quantile(v) => {
                    for (suffix, p) in [(".p50", 0.5), (".p99", 0.99)] {
                        let col = (0..n)
                            .map(|w| v.get(w).and_then(|h| h.as_ref()).map(|h| h.quantile(p)))
                            .collect();
                        out.push((format!("{}{suffix}", s.name), col));
                    }
                }
            }
        }
        if !self.slo_good.is_empty() {
            let get = |v: &Vec<u64>, w: usize| v.get(w).copied().unwrap_or(0) as f64;
            out.push((
                "slo.good".to_string(),
                (0..n).map(|w| Some(get(&self.slo_good, w))).collect(),
            ));
            out.push((
                "slo.miss".to_string(),
                (0..n).map(|w| Some(get(&self.slo_miss, w))).collect(),
            ));
            out.push((
                "slo.burn.fast".to_string(),
                (0..n)
                    .map(|w| self.burn_over(w, self.burn.fast_windows))
                    .collect(),
            ));
            out.push((
                "slo.burn.slow".to_string(),
                (0..n)
                    .map(|w| self.burn_over(w, self.burn.slow_windows))
                    .collect(),
            ));
            let alerts = self.burn_alerts();
            let mut alert_col = vec![Some(0.0); n];
            for a in &alerts {
                if a.window < n {
                    alert_col[a.window] = Some(1.0);
                }
            }
            out.push(("slo.burn.alert".to_string(), alert_col));
        }
        out
    }

    /// Tab-separated export: one row per window, one column per series,
    /// `-` for windows with no value. The first column is the window start
    /// in simulated milliseconds. Empty when the sampler is disabled.
    pub fn to_tsv(&self) -> String {
        if !self.enabled {
            return String::new();
        }
        let cols = self.columns();
        let mut out = String::with_capacity(1024);
        out.push_str("# longsight timeseries v1\n");
        out.push_str(&format!("# window_ns {}\n", fmt_f64(self.window_ns)));
        out.push_str("window_ms");
        for (name, _) in &cols {
            out.push('\t');
            out.push_str(name);
        }
        out.push('\n');
        for w in 0..self.windows() {
            out.push_str(&fmt_f64(w as f64 * self.window_ns / 1e6));
            for (_, col) in &cols {
                out.push('\t');
                match col.get(w).copied().flatten() {
                    Some(v) => out.push_str(&fmt_f64(v)),
                    None => out.push('-'),
                }
            }
            out.push('\n');
        }
        out
    }

    /// JSON export: `{"window_ns":..,"windows":..,"series":[{"name":..,
    /// "values":[..]},..]}` with `null` for windows with no value. Empty
    /// when the sampler is disabled.
    pub fn to_json(&self) -> String {
        if !self.enabled {
            return String::new();
        }
        let cols = self.columns();
        let n = self.windows();
        let mut out = String::with_capacity(1024);
        out.push_str("{\"window_ns\":");
        out.push_str(&fmt_f64(self.window_ns));
        out.push_str(",\"windows\":");
        out.push_str(&n.to_string());
        out.push_str(",\"series\":[");
        for (i, (name, col)) in cols.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str("{\"name\":");
            escape_into(&mut out, name);
            out.push_str(",\"values\":[");
            for w in 0..n {
                if w > 0 {
                    out.push(',');
                }
                match col.get(w).copied().flatten() {
                    Some(v) => out.push_str(&fmt_f64(v)),
                    None => out.push_str("null"),
                }
            }
            out.push_str("]}");
        }
        out.push_str("]}");
        out
    }
}

/// A parsed timeseries export — the common shape behind the TSV and JSON
/// formats, consumed by `longsight dashboard` and `longsight perf-diff`.
#[derive(Debug, Clone, PartialEq)]
pub struct Export {
    /// Base window length in simulated ns.
    pub window_ns: f64,
    /// Aligned per-window columns in export order.
    pub columns: Vec<(String, Vec<Option<f64>>)>,
}

impl Export {
    /// Number of windows (length of the longest column).
    pub fn windows(&self) -> usize {
        self.columns.iter().map(|(_, c)| c.len()).max().unwrap_or(0)
    }

    /// Parses either export format, sniffing JSON by the leading `{`.
    pub fn parse(src: &str) -> Result<Export, String> {
        if src.trim_start().starts_with('{') {
            Export::parse_json(src)
        } else {
            Export::parse_tsv(src)
        }
    }

    fn parse_json(src: &str) -> Result<Export, String> {
        use crate::json::Value;
        let v = crate::json::parse(src).map_err(|e| format!("invalid JSON: {e}"))?;
        let window_ns = v
            .get("window_ns")
            .and_then(Value::as_f64)
            .ok_or("timeseries JSON missing numeric window_ns")?;
        let series = v
            .get("series")
            .and_then(Value::as_arr)
            .ok_or("timeseries JSON missing series array")?;
        let mut columns = Vec::with_capacity(series.len());
        for s in series {
            let name = s
                .get("name")
                .and_then(Value::as_str)
                .ok_or("series entry missing name")?
                .to_string();
            let vals = s
                .get("values")
                .and_then(Value::as_arr)
                .ok_or_else(|| format!("series {name} missing values array"))?;
            let mut col = Vec::with_capacity(vals.len());
            for v in vals {
                col.push(match v {
                    Value::Num(n) => Some(*n),
                    Value::Null => None,
                    _ => return Err(format!("series {name} has a non-numeric value")),
                });
            }
            columns.push((name, col));
        }
        Ok(Export { window_ns, columns })
    }

    fn parse_tsv(src: &str) -> Result<Export, String> {
        let mut window_ns = None;
        let mut names: Option<Vec<String>> = None;
        let mut cols: Vec<Vec<Option<f64>>> = Vec::new();
        let mut rows = 0usize;
        for (lineno, line) in src.lines().enumerate() {
            let line = line.trim_end_matches('\r');
            if line.is_empty() {
                continue;
            }
            if let Some(rest) = line.strip_prefix('#') {
                let rest = rest.trim();
                if let Some(v) = rest.strip_prefix("window_ns ") {
                    window_ns = Some(
                        v.trim()
                            .parse::<f64>()
                            .map_err(|_| format!("line {}: bad window_ns", lineno + 1))?,
                    );
                }
                continue;
            }
            let fields: Vec<&str> = line.split('\t').collect();
            match &names {
                None => {
                    if fields.first() != Some(&"window_ms") {
                        return Err(format!(
                            "line {}: expected header starting with window_ms",
                            lineno + 1
                        ));
                    }
                    names = Some(fields[1..].iter().map(|s| s.to_string()).collect());
                    cols = vec![Vec::new(); fields.len() - 1];
                }
                Some(names) => {
                    if fields.len() != names.len() + 1 {
                        return Err(format!(
                            "line {}: {} fields, header has {}",
                            lineno + 1,
                            fields.len(),
                            names.len() + 1
                        ));
                    }
                    for (i, f) in fields[1..].iter().enumerate() {
                        cols[i].push(if *f == "-" {
                            None
                        } else {
                            Some(
                                f.parse::<f64>()
                                    .map_err(|_| format!("line {}: bad value {f:?}", lineno + 1))?,
                            )
                        });
                    }
                    rows += 1;
                }
            }
        }
        let names = names.ok_or("no header row found (not a timeseries export?)")?;
        let window_ns = window_ns.ok_or("missing '# window_ns' comment")?;
        let _ = rows;
        Ok(Export {
            window_ns,
            columns: names.into_iter().zip(cols).collect(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_sampler_records_and_allocates_nothing() {
        let mut ts = TimeSeries::disabled();
        ts.gauge("q", 1e9, 3.0);
        ts.rate_add("r", 1e9, 1.0);
        ts.observe_ms("lat_ms", 1e9, 12.0);
        ts.slo_sample(1e9, 9000.0);
        assert!(ts.is_empty());
        assert_eq!(ts.series.capacity(), 0);
        assert_eq!(ts.index.capacity(), 0);
        assert_eq!(ts.slo_good.capacity(), 0);
        assert_eq!(ts.slo_miss.capacity(), 0);
        assert!(ts.burn_alerts().is_empty());
        assert_eq!(ts.burn_totals().completions, 0);
    }

    #[test]
    fn gauge_forward_fills_and_rate_zero_fills() {
        let mut ts = TimeSeries::enabled(100.0, BurnConfig::default());
        ts.gauge("g", 50.0, 2.0); // window 0
        ts.gauge("g", 350.0, 5.0); // window 3
        ts.rate_add("r", 150.0, 1.0); // window 1
        ts.rate_add("r", 160.0, 2.0); // window 1
        let cols = ts.columns();
        assert_eq!(cols[0].0, "g");
        assert_eq!(
            cols[0].1,
            vec![Some(2.0), Some(2.0), Some(2.0), Some(5.0)],
            "gauge must forward-fill"
        );
        assert_eq!(cols[1].0, "r");
        assert_eq!(cols[1].1, vec![Some(0.0), Some(3.0), Some(0.0), Some(0.0)]);
    }

    #[test]
    fn quantile_series_exports_p50_and_p99_columns() {
        let mut ts = TimeSeries::enabled(100.0, BurnConfig::default());
        for v in [1.0, 1.5, 40.0] {
            ts.observe_ms("lat", 10.0, v);
        }
        ts.gauge("g", 250.0, 1.0); // extends to window 2
        let cols = ts.columns();
        let names: Vec<&str> = cols.iter().map(|(n, _)| n.as_str()).collect();
        assert_eq!(names, vec!["lat.p50", "lat.p99", "g"]);
        assert_eq!(cols[0].1[0], Some(2.0)); // p50 of {1, 1.5, 40} in (1,2] bucket
        assert_eq!(cols[0].1[1], None); // empty window stays empty
        assert_eq!(cols[1].1[0], Some(40.0)); // p99 clamped to max
    }

    #[test]
    fn burn_alert_requires_fast_and_slow_windows() {
        let cfg = BurnConfig {
            slo_ms: 100.0,
            budget: 0.1,
            fast_windows: 1,
            slow_windows: 4,
            threshold: 1.0,
        };
        let mut ts = TimeSeries::enabled(100.0, cfg);
        // Windows 0..3: all good. Window 4: all misses — fast burn is 10x
        // budget, slow burn over windows 1..=4 is 25% miss = 2.5x budget.
        for w in 0..4 {
            for _ in 0..3 {
                ts.slo_sample(w as f64 * 100.0 + 1.0, 10.0);
            }
        }
        for _ in 0..3 {
            ts.slo_sample(401.0, 500.0);
        }
        let alerts = ts.burn_alerts();
        assert_eq!(alerts.len(), 1);
        assert_eq!(alerts[0].window, 4);
        assert!((alerts[0].fast - 10.0).abs() < 1e-9);
        assert!((alerts[0].slow - 2.5).abs() < 1e-9);
        let t = ts.burn_totals();
        assert_eq!((t.completions, t.misses), (15, 3));
        assert!((t.consumed - 2.0).abs() < 1e-9); // 20% misses on a 10% budget
    }

    #[test]
    fn single_window_blip_does_not_alert_the_slow_window() {
        let cfg = BurnConfig {
            slo_ms: 100.0,
            budget: 0.1,
            fast_windows: 1,
            slow_windows: 8,
            threshold: 2.0,
        };
        let mut ts = TimeSeries::enabled(100.0, cfg);
        for w in 0..8 {
            for _ in 0..10 {
                ts.slo_sample(w as f64 * 100.0 + 1.0, 10.0);
            }
        }
        ts.slo_sample(701.0, 500.0); // one miss among 81 samples
        assert!(ts.burn_alerts().is_empty());
    }

    #[test]
    fn tsv_and_json_round_trip_through_export_parse() {
        let mut ts = TimeSeries::enabled(1e6, BurnConfig::default());
        ts.gauge("r0.queue.interactive", 0.5e6, 2.0);
        ts.rate_add("fleet.admit", 1.5e6, 1.0);
        ts.observe_ms("lat.request_ms", 2.5e6, 42.0);
        ts.slo_sample(2.5e6, 42.0);
        let a = Export::parse(&ts.to_tsv()).expect("tsv parses");
        let b = Export::parse(&ts.to_json()).expect("json parses");
        assert_eq!(a, b);
        assert_eq!(a.window_ns, 1e6);
        assert_eq!(a.windows(), 3);
        let names: Vec<&str> = a.columns.iter().map(|(n, _)| n.as_str()).collect();
        assert!(names.contains(&"slo.burn.alert"), "names: {names:?}");
    }

    #[test]
    fn export_parse_rejects_malformed_inputs() {
        assert!(Export::parse("").is_err());
        assert!(Export::parse("not\ta\theader\n1\t2\t3\n").is_err());
        assert!(Export::parse("# window_ns 100\nwindow_ms\ta\n0\tbogus\n").is_err());
        assert!(Export::parse("# window_ns 100\nwindow_ms\ta\tb\n0\t1\n").is_err());
        assert!(Export::parse("{\"nope\":1}").is_err());
    }
}
