//! Quantized approximate-score filtering — the DynaX-style baseline
//! (paper §3.2).
//!
//! DynaX "leverag\[es\] sparsity within query vectors and employ\[s\] 4- or 6-bit
//! quantization for queries and keys to reduce the cost of computing
//! approximate attention scores", then builds a block mask from those scores.
//! Its fundamental bound, which the paper calls out: even at 4 bits with a
//! quarter of the query dims surviving, at least `¼ · 6/16 ≈ 9.4 %` of the
//! Keys' memory footprint must be loaded to evaluate scores — whereas SCF
//! reads only the 1-bit sign plane (`1/16 = 6.25 %` of BF16, and the PFUs
//! read it *in place* without moving it to an accelerator at all).

use longsight_tensor::TopK;

/// A symmetrically-quantized vector: `bits`-wide signed codes plus one scale.
#[derive(Debug, Clone, PartialEq)]
pub struct QuantVec {
    codes: Vec<i8>,
    scale: f32,
    bits: u32,
}

impl QuantVec {
    /// Quantizes `v` to `bits` (2..=8) signed levels with a per-vector scale.
    ///
    /// # Panics
    ///
    /// Panics unless `2 <= bits <= 8`.
    pub fn quantize(v: &[f32], bits: u32) -> Self {
        assert!(
            (2..=8).contains(&bits),
            "supported code widths are 2..=8 bits"
        );
        let max_code = ((1i32 << (bits - 1)) - 1) as f32;
        let amax = v.iter().fold(0.0f32, |m, x| m.max(x.abs()));
        let scale = if amax > 0.0 { amax / max_code } else { 1.0 };
        let codes = v
            .iter()
            .map(|&x| (x / scale).round().clamp(-max_code, max_code) as i8)
            .collect();
        Self { codes, scale, bits }
    }

    /// Code width in bits.
    pub fn bits(&self) -> u32 {
        self.bits
    }

    /// Dimensionality.
    pub fn dim(&self) -> usize {
        self.codes.len()
    }

    /// Dequantized copy.
    pub fn dequantize(&self) -> Vec<f32> {
        self.codes.iter().map(|&c| c as f32 * self.scale).collect()
    }

    /// Approximate dot product against another quantized vector.
    ///
    /// # Panics
    ///
    /// Panics on dimension mismatch.
    pub fn dot(&self, other: &QuantVec) -> f32 {
        assert_eq!(self.dim(), other.dim(), "quantized dot dimension mismatch");
        let acc: i32 = self
            .codes
            .iter()
            .zip(&other.codes)
            .map(|(&a, &b)| a as i32 * b as i32)
            .sum();
        acc as f32 * self.scale * other.scale
    }

    /// Storage bytes when packed at `bits` per dimension (plus the scale).
    pub fn storage_bytes(&self) -> usize {
        (self.dim() * self.bits as usize).div_ceil(8) + 4
    }
}

/// DynaX-style filter: rank keys by quantized approximate scores and keep
/// the top `keep` for full-precision evaluation.
#[derive(Debug, Clone)]
pub struct QuantFilter {
    bits: u32,
}

impl QuantFilter {
    /// A filter computing approximate scores at `bits` precision.
    pub fn new(bits: u32) -> Self {
        Self { bits }
    }

    /// Selects the `keep` highest approximate-score keys.
    pub fn select(&self, q: &[f32], keys: &[Vec<f32>], keep: usize) -> Vec<usize> {
        let qq = QuantVec::quantize(q, self.bits);
        let mut top = TopK::new(keep);
        for (i, k) in keys.iter().enumerate() {
            let kq = QuantVec::quantize(k, self.bits);
            top.push(qq.dot(&kq), i);
        }
        top.into_sorted_vec().into_iter().map(|s| s.index).collect()
    }

    /// Fraction of the BF16 key footprint that must be *loaded* to compute
    /// the approximate scores (the paper's ≈9.4 % bound for DynaX with
    /// quarter-density queries at 6 bits; here for dense queries).
    pub fn bytes_loaded_fraction(&self) -> f64 {
        self.bits as f64 / 16.0
    }
}

/// SCF's equivalent load fraction: one sign bit per BF16 dimension.
pub const SCF_BYTES_LOADED_FRACTION: f64 = 1.0 / 16.0;

#[cfg(test)]
mod tests {
    use super::*;
    use longsight_tensor::{top_k_indices, vecops, SimRng};

    #[test]
    fn quantization_round_trips_within_step_size() {
        let mut rng = SimRng::seed_from(1);
        let v = rng.normal_vec(64);
        for bits in [4u32, 6, 8] {
            let q = QuantVec::quantize(&v, bits);
            let back = q.dequantize();
            let max_code = ((1i32 << (bits - 1)) - 1) as f32;
            let amax = v.iter().fold(0.0f32, |m, x| m.max(x.abs()));
            let step = amax / max_code;
            for (a, b) in v.iter().zip(&back) {
                assert!(
                    (a - b).abs() <= step / 2.0 + 1e-6,
                    "{bits}-bit error too large"
                );
            }
        }
    }

    #[test]
    fn approximate_dot_tracks_exact_dot() {
        let mut rng = SimRng::seed_from(2);
        let a = rng.normal_vec(128);
        let b = rng.normal_vec(128);
        let exact = vecops::dot(&a, &b);
        let approx = QuantVec::quantize(&a, 6).dot(&QuantVec::quantize(&b, 6));
        // 6-bit symmetric quantization keeps relative error modest on
        // Gaussian data.
        assert!(
            (approx - exact).abs() < 0.15 * exact.abs().max(vecops::l2_norm(&a)),
            "approx {approx} vs exact {exact}"
        );
    }

    #[test]
    fn more_bits_mean_better_selection() {
        let mut rng = SimRng::seed_from(3);
        let keys: Vec<Vec<f32>> = (0..512).map(|_| rng.normal_vec(64)).collect();
        let q = rng.normal_vec(64);
        let scores: Vec<f32> = keys.iter().map(|k| vecops::dot(&q, k)).collect();
        let truth = top_k_indices(&scores, 32);
        let recall = |bits: u32| {
            let got = QuantFilter::new(bits).select(&q, &keys, 32);
            truth.iter().filter(|i| got.contains(i)).count()
        };
        let r4 = recall(4);
        let r8 = recall(8);
        assert!(r8 >= r4, "8-bit recall {r8} must be >= 4-bit {r4}");
        assert!(
            r8 >= 28,
            "8-bit approximate scores should nearly match exact"
        );
    }

    #[test]
    fn paper_load_fraction_bound() {
        // §3.2: DynaX with quarter-density queries at 6 bits must load at
        // least 1/4 · 6/16 ≈ 9.4 % of the key footprint. Dense-query variants
        // load bits/16; SCF loads 1/16 = 6.25 %.
        let f6 = QuantFilter::new(6).bytes_loaded_fraction() / 4.0;
        assert!((f6 - 0.09375).abs() < 1e-12);
        assert!(SCF_BYTES_LOADED_FRACTION < f6);
        assert!(QuantFilter::new(4).bytes_loaded_fraction() > SCF_BYTES_LOADED_FRACTION);
    }

    #[test]
    fn storage_accounting() {
        let q = QuantVec::quantize(&[1.0; 128], 4);
        assert_eq!(q.storage_bytes(), 64 + 4);
        let q8 = QuantVec::quantize(&[1.0; 128], 8);
        assert_eq!(q8.storage_bytes(), 128 + 4);
    }

    #[test]
    #[should_panic(expected = "supported code widths")]
    fn silly_bit_widths_panic() {
        let _ = QuantVec::quantize(&[1.0], 1);
    }
}
