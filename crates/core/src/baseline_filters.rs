//! Algorithmic filtering baselines (paper §3.1, §5.1).
//!
//! * [`blockwise_surviving_indices`] — block-granular selection as in NSA /
//!   DynaX: a whole 128-key block is kept or dropped. The paper argues
//!   per-token filtering "improves quality" because block granularity caps
//!   achievable sparsity (§3.1: "it imposes a limitation on the achievable
//!   overall sparsity due to its coarse granularity").
//! * [`LshFilter`] — Reformer-style locality-sensitive hashing: random
//!   hyperplane signatures with multi-table lookup. Keys are candidates when
//!   they collide with the query in at least one table. Included as the
//!   software-sparse-attention comparator the paper discusses.

use crate::scf::PFU_BLOCK_KEYS;
use longsight_tensor::{vecops, Matrix, SignBits, SimRng};

/// Block-granular SCF: a block survives when the *best* key in it passes the
/// threshold; all of its keys are then fetched and scored.
///
/// Returns the indices of every key in every surviving block.
pub fn blockwise_surviving_indices(
    query: &SignBits,
    keys: &[SignBits],
    threshold: u32,
    block: usize,
) -> Vec<usize> {
    assert!(block > 0, "block size must be positive");
    let mut out = Vec::new();
    for (b, chunk) in keys.chunks(block).enumerate() {
        let pass = chunk.iter().any(|k| query.concordance(k) >= threshold);
        if pass {
            let start = b * block;
            out.extend(start..start + chunk.len());
        }
    }
    out
}

/// Cost/quality comparison point between per-token and blockwise filtering
/// at the same threshold.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GranularityComparison {
    /// Keys fetched by per-token filtering.
    pub per_token_fetched: usize,
    /// Keys fetched by block-granular filtering.
    pub blockwise_fetched: usize,
}

impl GranularityComparison {
    /// How many times more keys blockwise filtering fetches.
    pub fn blockwise_overfetch(&self) -> f64 {
        if self.per_token_fetched == 0 {
            return if self.blockwise_fetched == 0 {
                1.0
            } else {
                f64::INFINITY
            };
        }
        self.blockwise_fetched as f64 / self.per_token_fetched as f64
    }
}

/// Evaluates both granularities on one query over a key-sign stream.
pub fn compare_granularity(
    query: &SignBits,
    keys: &[SignBits],
    threshold: u32,
) -> GranularityComparison {
    let per_token = crate::scf::surviving_indices(query, keys, threshold).len();
    let blockwise = blockwise_surviving_indices(query, keys, threshold, PFU_BLOCK_KEYS).len();
    GranularityComparison {
        per_token_fetched: per_token,
        blockwise_fetched: blockwise,
    }
}

/// Reformer-style LSH candidate filter: `tables` independent signatures of
/// `bits` random hyperplanes each; a key is a candidate when any table's
/// signature matches the query's exactly.
#[derive(Debug, Clone)]
pub struct LshFilter {
    /// Hyperplanes per table: `tables × bits` rows of dimension `dim`.
    planes: Vec<Matrix>,
    bits: usize,
}

impl LshFilter {
    /// Builds a filter with `tables` hash tables of `bits` hyperplanes over
    /// dimension `dim`.
    ///
    /// # Panics
    ///
    /// Panics if any parameter is zero or `bits > 64`.
    pub fn new(dim: usize, tables: usize, bits: usize, rng: &mut SimRng) -> Self {
        assert!(
            dim > 0 && tables > 0 && bits > 0,
            "LSH parameters must be positive"
        );
        assert!(bits <= 64, "signatures are stored in u64");
        let planes = (0..tables)
            .map(|_| Matrix::random_gaussian(bits, dim, rng))
            .collect();
        Self { planes, bits }
    }

    /// Number of hash tables.
    pub fn tables(&self) -> usize {
        self.planes.len()
    }

    /// Signature bits per table.
    pub fn bits(&self) -> usize {
        self.bits
    }

    /// The per-table signatures of a vector.
    pub fn signatures(&self, v: &[f32]) -> Vec<u64> {
        self.planes
            .iter()
            .map(|p| {
                let mut sig = 0u64;
                for (i, row) in p.iter_rows().enumerate() {
                    if vecops::dot(row, v) >= 0.0 {
                        sig |= 1 << i;
                    }
                }
                sig
            })
            .collect()
    }

    /// Indices of keys colliding with the query in at least one table.
    ///
    /// `key_sigs[i]` must be the output of [`Self::signatures`] for key `i`.
    pub fn candidates(&self, query_sigs: &[u64], key_sigs: &[Vec<u64>]) -> Vec<usize> {
        key_sigs
            .iter()
            .enumerate()
            .filter(|(_, ks)| ks.iter().zip(query_sigs).any(|(a, b)| a == b))
            .map(|(i, _)| i)
            .collect()
    }

    /// Per-key filtering cost in bit operations (signature comparison),
    /// relative to SCF's single packed-popcount pass. Reformer's filtering
    /// is linear per token too, but with `tables × bits` hyperplane dot
    /// products at *build* time per key — the overhead §3.1 highlights.
    pub fn signature_build_flops(&self, dim: usize) -> usize {
        self.tables() * self.bits * 2 * dim
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use longsight_tensor::top_k_indices;

    fn clustered_keys(n: usize, dim: usize, rng: &mut SimRng) -> Vec<Vec<f32>> {
        let centers: Vec<Vec<f32>> = (0..8).map(|_| rng.normal_vec(dim)).collect();
        (0..n)
            .map(|i| {
                let c = &centers[i % centers.len()];
                c.iter().map(|x| x + 0.4 * rng.normal() as f32).collect()
            })
            .collect()
    }

    #[test]
    fn blockwise_is_a_superset_of_per_token() {
        let mut rng = SimRng::seed_from(1);
        let keys: Vec<Vec<f32>> = (0..1000).map(|_| rng.normal_vec(32)).collect();
        let signs: Vec<SignBits> = keys.iter().map(|k| SignBits::from_slice(k)).collect();
        let q = SignBits::from_slice(&rng.normal_vec(32));
        let per_token = crate::scf::surviving_indices(&q, &signs, 20);
        let blockwise = blockwise_surviving_indices(&q, &signs, 20, 128);
        for i in &per_token {
            assert!(
                blockwise.contains(i),
                "blockwise must contain every per-token survivor"
            );
        }
    }

    #[test]
    fn blockwise_overfetches_substantially_at_high_thresholds() {
        // The paper's §3.1 point: block granularity caps sparsity. At a
        // threshold where per-token filtering keeps a few percent, blockwise
        // keeps whole 128-key blocks.
        let mut rng = SimRng::seed_from(2);
        let keys: Vec<Vec<f32>> = (0..4096).map(|_| rng.normal_vec(32)).collect();
        let signs: Vec<SignBits> = keys.iter().map(|k| SignBits::from_slice(k)).collect();
        let q = SignBits::from_slice(&rng.normal_vec(32));
        let cmp = compare_granularity(&q, &signs, 22);
        assert!(
            cmp.blockwise_overfetch() > 3.0,
            "expected large overfetch, got {:.2} ({} vs {})",
            cmp.blockwise_overfetch(),
            cmp.blockwise_fetched,
            cmp.per_token_fetched
        );
    }

    #[test]
    fn lsh_signatures_are_deterministic_and_similarity_sensitive() {
        let mut rng = SimRng::seed_from(3);
        let f = LshFilter::new(32, 4, 10, &mut rng);
        let v = rng.normal_vec(32);
        assert_eq!(f.signatures(&v), f.signatures(&v));
        // A near-duplicate shares most signature bits; an unrelated vector
        // collides less often. Statistical over several probes.
        let mut near_coll = 0;
        let mut far_coll = 0;
        for s in 0..40 {
            let mut rng2 = SimRng::seed_from(100 + s);
            let base = rng2.normal_vec(32);
            let near: Vec<f32> = base
                .iter()
                .map(|x| x + 0.05 * rng2.normal() as f32)
                .collect();
            let far = rng2.normal_vec(32);
            let bs = f.signatures(&base);
            if f.candidates(&bs, &[f.signatures(&near)]).len() == 1 {
                near_coll += 1;
            }
            if f.candidates(&bs, &[f.signatures(&far)]).len() == 1 {
                far_coll += 1;
            }
        }
        assert!(
            near_coll > far_coll,
            "near vectors must collide more often ({near_coll} vs {far_coll})"
        );
    }

    #[test]
    fn scf_with_matched_cost_beats_lsh_recall_on_clustered_keys() {
        // The comparison the paper implies: at similar candidate-set sizes,
        // SCF (with ITQ geometry assumptions met) retains more of the true
        // top-k than multi-table LSH on clustered keys.
        let mut rng = SimRng::seed_from(4);
        let dim = 64;
        let keys = clustered_keys(2048, dim, &mut rng);
        let signs: Vec<SignBits> = keys.iter().map(|k| SignBits::from_slice(k)).collect();
        let lsh = LshFilter::new(dim, 6, 9, &mut rng);
        let key_sigs: Vec<Vec<u64>> = keys.iter().map(|k| lsh.signatures(k)).collect();

        let mut scf_recall = 0.0;
        let mut lsh_recall = 0.0;
        let probes = 12;
        for p in 0..probes {
            // Query near one of the keys (a genuine neighbor query).
            let target = &keys[(p * 97) % keys.len()];
            let q: Vec<f32> = target
                .iter()
                .map(|x| x + 0.3 * rng.normal() as f32)
                .collect();
            let scores: Vec<f32> = keys.iter().map(|k| vecops::dot(&q, k)).collect();
            let truth = top_k_indices(&scores, 16);

            let qs = SignBits::from_slice(&q);
            // Pick the SCF threshold whose candidate count is closest to
            // LSH's (cost-matched comparison).
            let lsh_cands = lsh.candidates(&lsh.signatures(&q), &key_sigs);
            let mut scf_cands = Vec::new();
            let mut best_diff = usize::MAX;
            for th in 0..=dim as u32 {
                let c = crate::scf::surviving_indices(&qs, &signs, th);
                let diff = c.len().abs_diff(lsh_cands.len());
                if diff < best_diff {
                    best_diff = diff;
                    scf_cands = c;
                }
            }
            scf_recall += truth.iter().filter(|i| scf_cands.contains(i)).count() as f64;
            lsh_recall += truth.iter().filter(|i| lsh_cands.contains(i)).count() as f64;
        }
        assert!(
            scf_recall >= lsh_recall,
            "cost-matched SCF should not trail LSH: {scf_recall} vs {lsh_recall}"
        );
    }
}
