//! LongSight's sparse-attention algorithm (the paper's primary contribution).
//!
//! The pipeline has three stages (paper §5): **filtering** via
//! Sign-Concordance Filtering (`scf`), full-precision **scoring**, and
//! top-*k* **ranking** — wrapped in a hybrid strategy that keeps a dense
//! sliding window plus attention sinks on the "GPU" side
//! ([`LongSightBackend`]). `itq` provides the Iterative Quantization
//! rotation that rebalances sign bits on clustered keys; [`training`] fits
//! those rotations from live model traces; [`tuner`] implements the paper's
//! greedy per-head threshold tuning; [`trace_eval`] measures retrieval
//! quality on long-context traces.
//!
//! # Example
//!
//! ```
//! use longsight_core::{HybridConfig, LongSightBackend, RotationTable, ThresholdTable};
//! use longsight_model::{corpus, perplexity, Model, ModelConfig};
//! use longsight_model::{InductionParams, ModelWeights};
//! use longsight_tensor::SimRng;
//!
//! let cfg = ModelConfig::tiny();
//! let mut rng = SimRng::seed_from(0);
//! let model = Model::new(ModelWeights::induction(&cfg, &InductionParams::default(), &mut rng));
//! let text = corpus::generate(&corpus::CorpusConfig::long_book(cfg.vocab), 192, &mut rng);
//!
//! let mut hybrid = LongSightBackend::new(
//!     HybridConfig { window: 64, sinks: 16, top_k: 32 },
//!     ThresholdTable::zeros(cfg.layers, cfg.kv_heads),
//!     RotationTable::identity(cfg.layers, cfg.kv_heads, cfg.head_dim),
//! );
//! let report = perplexity::evaluate(&model, &text, &mut hybrid, 16);
//! assert!(report.perplexity.is_finite());
//! println!("filter ratio: {:.1}x", hybrid.stats().filter_ratio_nonwindow());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod baseline_filters;
mod hybrid;
mod itq;
pub mod quant_filter;
mod scf;
mod stats;
pub mod trace_eval;
pub mod training;
pub mod tuner;

pub use baseline_filters::{
    blockwise_surviving_indices, compare_granularity, GranularityComparison, LshFilter,
};
pub use hybrid::{HybridConfig, LongSightBackend};
pub use itq::{ItqConfig, ItqRotation, RotationTable};
pub use quant_filter::{QuantFilter, QuantVec, SCF_BYTES_LOADED_FRACTION};
pub use scf::{
    filter_block, filter_block_packed, scf_pass, surviving_indices, ThresholdTable, PFU_BLOCK_KEYS,
    PFU_MAX_QUERIES,
};
pub use stats::{FilterStats, PerHeadStats};
