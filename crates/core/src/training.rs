//! ITQ rotation training from live model traces (paper §5.4).
//!
//! The paper trains one ITQ rotation per KV head on a 1K-token sequence of
//! post-embedding (post-RoPE) Key and Query vectors. [`train_rotations`] does
//! exactly that: it runs the model densely over a calibration prefix,
//! recording every head's queries, takes the (post-RoPE) keys from the KV
//! cache, and fits a rotation per `(layer, kv_head)`.

use crate::itq::{ItqConfig, ItqRotation, RotationTable};
use longsight_model::{AttentionBackend, AttentionRequest, DenseBackend, Model};
use longsight_tensor::Matrix;

/// A pass-through backend that records the queries each head receives.
#[derive(Debug)]
struct QueryRecorder {
    inner: DenseBackend,
    kv_heads: usize,
    /// Recorded queries per `(layer * kv_heads + head)`.
    queries: Vec<Vec<Vec<f32>>>,
}

impl QueryRecorder {
    fn new(layers: usize, kv_heads: usize) -> Self {
        Self {
            inner: DenseBackend::new(),
            kv_heads,
            queries: vec![Vec::new(); layers * kv_heads],
        }
    }
}

impl AttentionBackend for QueryRecorder {
    fn attend(&mut self, req: &AttentionRequest<'_>) -> Vec<Vec<f32>> {
        let idx = req.layer * self.kv_heads + req.kv_head;
        for q in req.queries {
            self.queries[idx].push(q.clone());
        }
        self.inner.attend(req)
    }

    fn label(&self) -> String {
        "query-recorder".into()
    }
}

/// Trains per-head ITQ rotations on a calibration token sequence.
///
/// The paper uses a 1K-token sequence; training "takes under a minute for
/// Llama-3-8B and requires no task-specific data".
///
/// # Panics
///
/// Panics if `calibration_tokens` is empty.
pub fn train_rotations(
    model: &Model,
    calibration_tokens: &[u32],
    itq: &ItqConfig,
) -> RotationTable {
    assert!(
        !calibration_tokens.is_empty(),
        "calibration sequence is empty"
    );
    let cfg = model.config().clone();
    let mut cache = model.new_cache();
    let mut recorder = QueryRecorder::new(cfg.layers, cfg.kv_heads);
    for (pos, &t) in calibration_tokens.iter().enumerate() {
        model.forward(t, pos, &mut cache, &mut recorder);
    }

    // The recorder keeps the queries available (the paper's training set
    // includes them); see the note below for why the default fit uses keys
    // only.
    let _recorded_queries = &recorder.queries;

    RotationTable::from_fn(cfg.layers, cfg.kv_heads, |layer, head| {
        let keys = cache.head(layer, head).keys();
        // Deviation from the paper (documented in DESIGN.md): the rotation is
        // fit on **keys only**. The paper trains on "Key and Query vectors";
        // with our synthetic geometry the query distribution differs enough
        // from the keys' that including queries measurably degrades the
        // rotation's concordance separation. Keys are what the Key Sign
        // Objects quantize, so balancing their sign bits is the objective
        // that matters; queries are rotated by the same matrix either way.
        //
        // Sign bits are scale-invariant, but the ITQ objective is not:
        // normalize every training row.
        let mut data = Vec::with_capacity(keys.len() * cfg.head_dim);
        for k in keys.iter() {
            let n = longsight_tensor::vecops::l2_norm(k);
            if n > 0.0 {
                data.extend(k.iter().map(|x| x / n));
            } else {
                data.extend_from_slice(k);
            }
        }
        let matrix = Matrix::from_vec(keys.len(), cfg.head_dim, data);
        // Derive a distinct deterministic seed per head.
        let head_cfg = ItqConfig {
            iterations: itq.iterations,
            seed: itq
                .seed
                .wrapping_mul(0x9E37_79B9)
                .wrapping_add((layer * cfg.kv_heads + head) as u64),
        };
        ItqRotation::train(&matrix, &head_cfg)
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use longsight_model::{InductionParams, ModelConfig, ModelWeights};
    use longsight_tensor::{linalg, SimRng};

    #[test]
    fn trains_a_rotation_per_head() {
        let cfg = ModelConfig::tiny();
        let mut rng = SimRng::seed_from(7);
        let model = Model::new(ModelWeights::induction(
            &cfg,
            &InductionParams::default(),
            &mut rng,
        ));
        let tokens: Vec<u32> = (0..96).map(|_| rng.below(cfg.vocab) as u32).collect();
        let table = train_rotations(
            &model,
            &tokens,
            &ItqConfig {
                iterations: 12,
                seed: 1,
            },
        );
        for l in 0..cfg.layers {
            for h in 0..cfg.kv_heads {
                let r = table.get(l, h);
                assert_eq!(r.dim(), cfg.head_dim);
                assert!(
                    linalg::orthogonality_error(r.matrix()) < 1e-3,
                    "rotation ({l},{h}) must be orthogonal"
                );
            }
        }
        // Heads must get distinct rotations (independent seeds/data).
        let a = table.get(0, 0).matrix();
        let b = table.get(0, 1).matrix();
        assert!(a.max_abs_diff(b) > 1e-3);
    }
}
